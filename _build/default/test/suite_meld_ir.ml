(* White-box tests of the melding code generation: the IR shapes
   Algorithm 2 must produce for specific inputs — select insertion and
   reuse, entry phis (paper Fig. 4), exit-branch melding (B_T'/B_F'),
   unpredication block structure, loop-subgraph melding. *)

open Darm_ir
module C = Darm_core
module D = Dsl

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let count_op f op =
  Ssa.fold_instrs f (fun acc i -> if i.Ssa.op = op then acc + 1 else acc) 0

let melded f =
  let stats = C.Pass.run ~verify_each:true f in
  (f, stats)

(* Both sides compute x*K + tid with a different constant K: the mul
   and add meld, K needs one select; the tid operand is shared. *)
let test_select_insertion_and_sharing () =
  let f =
    D.build_kernel ~name:"sel" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        let g = D.gep ctx a tid in
        let r = D.local ctx ~name:"r" Types.I32 in
        D.if_ ctx
          (D.eq ctx (D.and_ ctx tid (D.i32 1)) (D.i32 0))
          (fun () ->
            let v = D.load ctx g in
            D.set ctx r (D.add ctx (D.mul ctx v (D.i32 3)) tid))
          (fun () ->
            let v = D.load ctx g in
            D.set ctx r (D.add ctx (D.mul ctx v (D.i32 5)) tid));
        D.store ctx (D.get ctx r) g)
  in
  let f, stats = melded f in
  check "melded once" true (stats.C.Pass.melds_applied = 1);
  (* one select for the 3-vs-5 constant; identical operands (v, tid)
     must NOT get selects *)
  check_int "exactly one select" 1 (count_op f Op.Select);
  (* the two loads must have melded into one *)
  check_int "one load" 1 (count_op f Op.Load)

let test_identical_sides_need_no_select () =
  let f =
    D.build_kernel ~name:"nosel" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        let g = D.gep ctx a tid in
        let body () = D.store ctx (D.add ctx (D.load ctx g) (D.i32 1)) g in
        D.if_ ctx (D.eq ctx (D.and_ ctx tid (D.i32 1)) (D.i32 0)) body body)
  in
  let f, stats = melded f in
  check "melded" true (stats.C.Pass.melds_applied = 1);
  check_int "no selects at all" 0 (count_op f Op.Select);
  (* fully melded identical diamond collapses into straight-line code *)
  check_int "no conditional branches left" 0 (count_op f Op.Condbr)

(* Fig. 4: a definition on the false path, before the melded subgraph,
   used inside it -> entry phi with undef on the true edge. *)
let test_entry_phi_for_one_sided_def () =
  let f =
    D.build_kernel ~name:"fig4" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        let g = D.gep ctx a tid in
        D.if_ ctx
          (D.eq ctx (D.and_ ctx tid (D.i32 1)) (D.i32 0))
          (fun () ->
            (* true path: one plain block pair to meld *)
            D.store ctx (D.add ctx (D.load ctx g) (D.i32 100)) g)
          (fun () ->
            (* false path: %x defined first, then a meldable block that
               uses it *)
            let x = D.mul ctx (D.load ctx g) (D.i32 7) in
            (* an extra block boundary so x sits outside the melded
               subgraph *)
            D.if_then ctx (D.sgt ctx x (D.i32 (-1))) (fun () -> ());
            D.store ctx (D.add ctx x (D.i32 100)) g))
  in
  let stats = C.Pass.run ~verify_each:true f in
  check "melded something" true (stats.C.Pass.melds_applied >= 1);
  check "entry phi inserted (Fig. 4 preprocessing)" true
    (stats.C.Pass.meld_stats.C.Meld.entry_phis >= 1
    || (* or the meld covered the def too, which is also fine *)
       stats.C.Pass.meld_stats.C.Meld.melded_pairs > 0);
  (* semantics checked by simulation in the fuzz/end2end suites; here we
     verify the phi has an undef edge *)
  Verify.run_exn f

let test_exit_branch_melding_structure () =
  (* the sb2-like shape: after melding, the melded exit must route
     through two fresh blocks so the exit phis can distinguish paths *)
  let f =
    D.build_kernel ~name:"exits" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        let g = D.gep ctx a tid in
        let r = D.local ctx ~name:"r" Types.I32 in
        D.set ctx r (D.i32 0);
        D.if_ ctx
          (D.eq ctx (D.and_ ctx tid (D.i32 1)) (D.i32 0))
          (fun () ->
            D.if_then ctx (D.slt ctx (D.load ctx g) (D.i32 50)) (fun () ->
                D.set ctx r (D.i32 1)))
          (fun () ->
            D.if_then ctx (D.slt ctx (D.load ctx g) (D.i32 50)) (fun () ->
                D.set ctx r (D.i32 2)));
        D.store ctx (D.get ctx r) g)
  in
  let f, stats = melded f in
  check "melded" true (stats.C.Pass.melds_applied >= 1);
  (* r's reaching definitions differ per path (1 on true, 2 on false);
     after melding the distinction survives as phi copies in the melded
     block whose values are disambiguated through the fresh exit blocks
     (B_T'/B_F') or as selects *)
  let has_const c =
    Ssa.fold_instrs f
      (fun acc i ->
        acc
        || (i.Ssa.op = Op.Phi
           && Array.exists (fun v -> Ssa.value_equal v (Ssa.Int c)) i.Ssa.operands))
      false
  in
  let has_select = count_op f Op.Select > 0 in
  check "paths distinguished" true ((has_const 1 && has_const 2) || has_select);
  (* the exit destination must have gained distinguishable predecessors *)
  check "multiple phis survive" true (count_op f Op.Phi >= 2)

let test_unpredication_guards_stores () =
  (* distinct store counts on the two sides: the unaligned store must end
     up in a guarded block, never speculated *)
  let f =
    D.build_kernel ~name:"guard" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        let g = D.gep ctx a tid in
        let g2 = D.gep ctx a (D.add ctx tid (D.i32 64)) in
        D.if_ ctx
          (D.eq ctx (D.and_ ctx tid (D.i32 1)) (D.i32 0))
          (fun () ->
            D.store ctx (D.i32 1) g;
            (* extra store only on the true path *)
            D.store ctx (D.i32 2) g2)
          (fun () -> D.store ctx (D.i32 3) g))
  in
  let config = { C.Pass.default_config with unpredicate = false } in
  let stats = C.Pass.run ~config ~verify_each:true f in
  check "melded" true (stats.C.Pass.melds_applied = 1);
  (* even with unpredication off, the store run must be guarded *)
  check "a guarded run exists" true
    (stats.C.Pass.meld_stats.C.Meld.unpredicated_runs >= 1);
  (* the guard must branch on the region condition *)
  check "guard block present" true
    (List.exists
       (fun b ->
         let n = b.Ssa.bname in
         String.length n > 6 && String.sub n (String.length n - 6) 6 = ".split")
       f.Ssa.blocks_list)

let test_loop_subgraph_melding () =
  (* PCM's shape in miniature: both sides are structurally identical
     loops; DARM must meld them into one loop *)
  let f =
    D.build_kernel ~name:"loops" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        let g = D.gep ctx a tid in
        let emit_side c0 =
          let acc = D.local ctx ~name:"acc" Types.I32 in
          D.set ctx acc (D.i32 c0);
          D.for_up ctx ~from:(D.i32 0) ~until:(D.i32 4) (fun iv ->
              D.set ctx acc
                (D.add ctx (D.get ctx acc) (D.mul ctx iv (D.load ctx g))));
          D.store ctx (D.get ctx acc) g
        in
        D.if_ ctx
          (D.eq ctx (D.and_ ctx tid (D.i32 1)) (D.i32 0))
          (fun () -> emit_side 10)
          (fun () -> emit_side 20))
  in
  let nloops_before =
    List.length (Darm_analysis.Loops.compute f).Darm_analysis.Loops.loops
  in
  check_int "two loops before" 2 nloops_before;
  let f, stats = melded f in
  check "melded" true (stats.C.Pass.melds_applied >= 1);
  let nloops_after =
    List.length (Darm_analysis.Loops.compute f).Darm_analysis.Loops.loops
  in
  check_int "one loop after" 1 nloops_after

let test_no_meld_across_different_structures () =
  (* a loop on one side, straight-line on the other: not isomorphic *)
  let f =
    D.build_kernel ~name:"asym" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        let g = D.gep ctx a tid in
        D.if_ ctx
          (D.eq ctx (D.and_ ctx tid (D.i32 1)) (D.i32 0))
          (fun () ->
            let acc = D.local ctx ~name:"acc" Types.I32 in
            D.set ctx acc (D.i32 0);
            D.for_up ctx ~from:(D.i32 0) ~until:(D.i32 4) (fun iv ->
                D.set ctx acc (D.add ctx (D.get ctx acc) iv));
            D.store ctx (D.get ctx acc) g)
          (fun () -> D.store ctx (D.i32 6) g))
  in
  let stats = C.Pass.run ~verify_each:true f in
  (* Definition 6 case 2 (region vs single block) is out of scope, so
     the loop subgraph must survive unmelded; the matching single-block
     tails of the two paths may still meld *)
  let nloops =
    List.length (Darm_analysis.Loops.compute f).Darm_analysis.Loops.loops
  in
  Alcotest.(check int) "loop survives" 1 nloops;
  check "pass terminated cleanly" true (stats.C.Pass.iterations <= 4)

let test_meld_preserves_instruction_order_within_thread () =
  (* stores of one thread must retain program order after melding;
     observable through a kernel storing twice to the same cell *)
  let build () =
    D.build_kernel ~name:"order" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        let g = D.gep ctx a tid in
        D.if_ ctx
          (D.eq ctx (D.and_ ctx tid (D.i32 1)) (D.i32 0))
          (fun () ->
            D.store ctx (D.i32 1) g;
            D.store ctx (D.i32 2) g)
          (fun () ->
            D.store ctx (D.i32 3) g;
            D.store ctx (D.i32 4) g))
  in
  let module Memory = Darm_sim.Memory in
  let run f =
    let g = Memory.create ~space:Memory.Sp_global 64 in
    let a = Memory.alloc g 64 in
    ignore
      (Darm_sim.Simulator.run f ~args:[| a |] ~global:g
         { Darm_sim.Simulator.grid_dim = 1; block_dim = 64 });
    Memory.read_int_array g a 64
  in
  let base = run (build ()) in
  let f = build () in
  ignore (C.Pass.run ~verify_each:true f);
  let opt = run f in
  Alcotest.(check (array int)) "last store wins consistently" base opt

let suites =
  [
    ( "meld-ir",
      [
        Alcotest.test_case "select insertion and sharing" `Quick
          test_select_insertion_and_sharing;
        Alcotest.test_case "identical sides need no select" `Quick
          test_identical_sides_need_no_select;
        Alcotest.test_case "entry phi for one-sided def" `Quick
          test_entry_phi_for_one_sided_def;
        Alcotest.test_case "exit branch melding" `Quick
          test_exit_branch_melding_structure;
        Alcotest.test_case "unpredication guards stores" `Quick
          test_unpredication_guards_stores;
        Alcotest.test_case "loop subgraph melding" `Quick
          test_loop_subgraph_melding;
        Alcotest.test_case "asymmetric structures skipped" `Quick
          test_no_meld_across_different_structures;
        Alcotest.test_case "per-thread store order" `Quick
          test_meld_preserves_instruction_order_within_thread;
      ] );
  ]
