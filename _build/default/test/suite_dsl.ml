(* The SSA-construction DSL (Braun et al.): pruned phis, sealing, loops,
   and the behaviours kernels depend on — verified both structurally and
   by simulation. *)

open Darm_ir
module D = Dsl
module Sim = Darm_sim.Simulator
module Memory = Darm_sim.Memory

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let count_phis f =
  Ssa.fold_instrs f (fun acc i -> if i.Ssa.op = Op.Phi then acc + 1 else acc) 0

let run1 f n args_mk =
  let g = Memory.create ~space:Memory.Sp_global (4 * n) in
  let args = args_mk g in
  ignore (Sim.run f ~args ~global:g { Sim.grid_dim = 1; block_dim = n });
  g

let test_no_phi_for_straightline () =
  let f =
    D.build_kernel ~name:"s" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let v = D.local ctx ~name:"v" Types.I32 in
        D.set ctx v (D.i32 1);
        D.set ctx v (D.add ctx (D.get ctx v) (D.i32 2));
        D.store ctx (D.get ctx v) (D.gep ctx a (D.tid ctx)))
  in
  check_int "straight-line code needs no phis" 0 (count_phis f)

let test_no_phi_when_var_unchanged_in_branch () =
  (* pruned SSA: a variable not assigned in either arm must not get a
     join phi *)
  let f =
    D.build_kernel ~name:"p" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        let v = D.local ctx ~name:"v" Types.I32 in
        D.set ctx v (D.i32 7);
        D.if_ ctx
          (D.slt ctx t (D.i32 3))
          (fun () -> D.store ctx (D.i32 0) (D.gep ctx a t))
          (fun () -> D.store ctx (D.i32 1) (D.gep ctx a t));
        D.store ctx (D.get ctx v) (D.gep ctx a (D.add ctx t (D.i32 32))))
  in
  check_int "no phi for unassigned variable" 0 (count_phis f)

let test_phi_only_for_assigned_branch_var () =
  let f =
    D.build_kernel ~name:"q" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        let v = D.local ctx ~name:"v" Types.I32 in
        let w = D.local ctx ~name:"w" Types.I32 in
        D.set ctx v (D.i32 1);
        D.set ctx w (D.i32 2);
        D.if_ ctx
          (D.slt ctx t (D.i32 3))
          (fun () -> D.set ctx v (D.i32 10))
          (fun () -> ());
        D.store ctx (D.add ctx (D.get ctx v) (D.get ctx w))
          (D.gep ctx a t))
  in
  check_int "exactly one phi (for v)" 1 (count_phis f)

let test_while_cond_uses_loop_phi () =
  (* a while condition reading a loop-modified variable must read the
     phi, not the pre-loop value: checked by behaviour *)
  let f =
    D.build_kernel ~name:"w" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        let v = D.local ctx ~name:"v" Types.I32 in
        D.set ctx v (D.i32 0);
        D.while_ ctx
          (fun () -> D.slt ctx (D.get ctx v) t)
          (fun () -> D.set ctx v (D.add ctx (D.get ctx v) (D.i32 2)));
        D.store ctx (D.get ctx v) (D.gep ctx a t))
  in
  let g = run1 f 16 (fun g -> [| Memory.alloc g 16 |]) in
  let out = Memory.read_int_array g (Memory.Rptr (Memory.Sp_global, 0)) 16 in
  (* smallest even value >= t *)
  let expected = Array.init 16 (fun t -> (t + 1) / 2 * 2) in
  Alcotest.(check (array int)) "loop condition sees updates" expected out

let test_nested_loops_independent_vars () =
  let f =
    D.build_kernel ~name:"nl" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        let acc = D.local ctx ~name:"acc" Types.I32 in
        D.set ctx acc (D.i32 0);
        D.for_up ctx ~name:"i" ~from:(D.i32 0) ~until:(D.i32 3) (fun _ ->
            D.for_up ctx ~name:"j" ~from:(D.i32 0) ~until:(D.i32 3) (fun _ ->
                D.set ctx acc (D.add ctx (D.get ctx acc) (D.i32 1))));
        D.store ctx (D.get ctx acc) (D.gep ctx a t))
  in
  let g = run1 f 8 (fun g -> [| Memory.alloc g 8 |]) in
  let out = Memory.read_int_array g (Memory.Rptr (Memory.Sp_global, 0)) 8 in
  Alcotest.(check (array int)) "9 iterations" (Array.make 8 9) out

let test_uninitialized_read_is_undef () =
  let f =
    D.build_kernel ~name:"u" ~params:[]
      (fun ctx _ ->
        let v = D.local ctx ~name:"v" Types.I32 in
        (* read without any set: the value is undef, usable only where
           poison semantics allow *)
        ignore (D.add ctx (D.get ctx v) (D.i32 1)))
  in
  Verify.run_exn f;
  let uses_undef =
    Ssa.fold_instrs f
      (fun acc i ->
        acc
        || Array.exists
             (fun v -> match v with Ssa.Undef _ -> true | _ -> false)
             i.Ssa.operands)
      false
  in
  check "reads undef" true uses_undef

let test_pointer_typed_variables () =
  (* double buffering via pointer-typed vars, as merge sort uses *)
  let f =
    D.build_kernel ~name:"pv" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        let s1 = D.shared_array ctx 32 in
        let s2 = D.shared_array ctx 32 in
        let src = D.local ctx ~name:"src" (Types.Ptr Types.Shared) in
        let dst = D.local ctx ~name:"dst" (Types.Ptr Types.Shared) in
        D.set ctx src s1;
        D.set ctx dst s2;
        D.store ctx t (D.gep ctx (D.get ctx src) t);
        D.sync ctx;
        D.for_up ctx ~from:(D.i32 0) ~until:(D.i32 2) (fun _ ->
            let sv = D.get ctx src and dv = D.get ctx dst in
            D.store ctx
              (D.add ctx (D.load ctx (D.gep ctx sv t)) (D.i32 1))
              (D.gep ctx dv t);
            D.sync ctx;
            D.set ctx src dv;
            D.set ctx dst sv);
        D.store ctx (D.load ctx (D.gep ctx (D.get ctx src) t))
          (D.gep ctx a t))
  in
  let g = run1 f 32 (fun g -> [| Memory.alloc g 32 |]) in
  let out = Memory.read_int_array g (Memory.Rptr (Memory.Sp_global, 0)) 32 in
  Alcotest.(check (array int)) "ping-pong" (Array.init 32 (fun t -> t + 2)) out

let test_type_mismatch_rejected () =
  try
    ignore
      (D.build_kernel ~name:"bad" ~params:[]
         (fun ctx _ ->
           let v = D.local ctx ~name:"v" Types.I32 in
           D.set ctx v (D.i1 true)));
    Alcotest.fail "expected a type error"
  with Invalid_argument _ -> ()

let test_for_with_custom_step () =
  let f =
    D.build_kernel ~name:"step" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        let acc = D.local ctx ~name:"acc" Types.I32 in
        D.set ctx acc (D.i32 0);
        (* k = 1, 2, 4, 8, 16 *)
        D.for_ ctx ~name:"k" ~from:(D.i32 1)
          ~cmp:(fun c kv -> D.sle c kv (D.i32 16))
          ~step:(fun c kv -> D.mul c kv (D.i32 2))
          (fun kv -> D.set ctx acc (D.add ctx (D.get ctx acc) kv));
        D.store ctx (D.get ctx acc) (D.gep ctx a t))
  in
  let g = run1 f 4 (fun g -> [| Memory.alloc g 4 |]) in
  let out = Memory.read_int_array g (Memory.Rptr (Memory.Sp_global, 0)) 4 in
  Alcotest.(check (array int)) "geometric loop" (Array.make 4 31) out

let test_float_pipeline () =
  (* the F32 path end to end: DSL, verifier, simulator *)
  let f =
    D.build_kernel ~name:"fp" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        let x = D.sitofp ctx t in
        let y = D.fmul ctx x (D.f32 0.5) in
        let z = D.fadd ctx y (D.f32 1.0) in
        let r = D.select ctx (D.fcmp ctx Op.Fogt z (D.f32 3.0)) (D.f32 3.0) z in
        D.store ctx (D.fptosi ctx (D.fmul ctx r (D.f32 10.0)))
          (D.gep ctx a t))
  in
  let g = run1 f 16 (fun g -> [| Memory.alloc g 16 |]) in
  let out = Memory.read_int_array g (Memory.Rptr (Memory.Sp_global, 0)) 16 in
  let expected =
    Array.init 16 (fun t ->
        let z = (float_of_int t *. 0.5) +. 1.0 in
        int_of_float (Float.min z 3.0 *. 10.0))
  in
  Alcotest.(check (array int)) "float math" expected out

let suites =
  [
    ( "dsl",
      [
        Alcotest.test_case "no phi straight-line" `Quick
          test_no_phi_for_straightline;
        Alcotest.test_case "pruned phi (unassigned)" `Quick
          test_no_phi_when_var_unchanged_in_branch;
        Alcotest.test_case "phi only for assigned" `Quick
          test_phi_only_for_assigned_branch_var;
        Alcotest.test_case "while cond uses loop phi" `Quick
          test_while_cond_uses_loop_phi;
        Alcotest.test_case "nested loop vars" `Quick
          test_nested_loops_independent_vars;
        Alcotest.test_case "uninitialized is undef" `Quick
          test_uninitialized_read_is_undef;
        Alcotest.test_case "pointer-typed vars" `Quick
          test_pointer_typed_variables;
        Alcotest.test_case "type mismatch rejected" `Quick
          test_type_mismatch_rejected;
        Alcotest.test_case "custom step loop" `Quick test_for_with_custom_step;
        Alcotest.test_case "float pipeline" `Quick test_float_pipeline;
      ] );
  ]
