(* Region detection, subgraph decomposition, isomorphism, profitability
   and the melding pass at the IR level. *)

open Darm_ir
module A = Darm_analysis
module C = Darm_core
module D = Dsl

let check = Alcotest.(check bool)

(* SB2-shaped divergent region builder used across these tests *)
let if_then_region_func () =
  D.build_kernel ~name:"sb2ish"
    ~params:[ ("a", Types.Ptr Types.Global); ("p", Types.Ptr Types.Global) ]
    (fun ctx params ->
      let a, p = match params with [ a; p ] -> (a, p) | _ -> assert false in
      let t = D.tid ctx in
      let ga = D.gep ctx a t in
      let gp = D.gep ctx p t in
      D.if_ ctx
        (D.eq ctx (D.and_ ctx t (D.i32 1)) (D.i32 0))
        (fun () ->
          let v = D.load ctx ga in
          D.if_then ctx (D.slt ctx v (D.i32 100)) (fun () ->
              D.store ctx (D.add ctx v (D.i32 1)) ga))
        (fun () ->
          let v = D.load ctx gp in
          D.if_then ctx (D.slt ctx v (D.i32 100)) (fun () ->
              D.store ctx (D.add ctx v (D.i32 1)) gp)))

let detect_region f =
  let dvg = A.Divergence.compute f in
  let dt = A.Domtree.compute f in
  let pdt = A.Domtree.compute_post f in
  let r =
    List.fold_left
      (fun acc b ->
        match acc with
        | Some _ -> acc
        | None -> C.Region.detect f dvg dt pdt b)
      None
      (A.Cfg.reachable_blocks f)
  in
  (r, pdt)

let test_detect_meldable_region () =
  let f = if_then_region_func () in
  let r, _ = detect_region f in
  check "region found" true (r <> None)

let test_if_then_not_meldable () =
  (* if-then without else: the false successor post-dominates the true *)
  let f =
    D.build_kernel ~name:"ifthen" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        D.if_then ctx
          (D.eq ctx (D.and_ ctx t (D.i32 1)) (D.i32 0))
          (fun () -> D.store ctx (D.i32 1) (D.gep ctx a t)))
  in
  let r, _ = detect_region f in
  check "no meldable region" true (r = None)

let test_uniform_region_not_detected () =
  let f =
    D.build_kernel ~name:"uni"
      ~params:[ ("a", Types.Ptr Types.Global); ("n", Types.I32) ]
      (fun ctx params ->
        let a, n = match params with [ a; n ] -> (a, n) | _ -> assert false in
        let t = D.tid ctx in
        D.if_ ctx
          (D.slt ctx n (D.i32 0))
          (fun () -> D.store ctx (D.i32 1) (D.gep ctx a t))
          (fun () -> D.store ctx (D.i32 2) (D.gep ctx a t)))
  in
  let r, _ = detect_region f in
  check "uniform branch not a divergent region" true (r = None)

let test_subgraph_decomposition () =
  let f = if_then_region_func () in
  let r, pdt = detect_region f in
  match r with
  | None -> Alcotest.fail "no region"
  | Some r ->
      let ts = C.Region.true_subgraphs pdt r in
      let fs = C.Region.false_subgraphs pdt r in
      (* each side: the if-then region [cond+then] then the join block *)
      check "true side has >= 2 subgraphs" true (List.length ts >= 2);
      check "false side same count" true
        (List.length ts = List.length fs);
      let first = List.hd ts in
      check "first subgraph has 2 blocks" true
        (C.Region.subgraph_size first = 2)

let test_isomorphism_match () =
  let f = if_then_region_func () in
  let r, pdt = detect_region f in
  match r with
  | None -> Alcotest.fail "no region"
  | Some r ->
      let ts = C.Region.true_subgraphs pdt r in
      let fs = C.Region.false_subgraphs pdt r in
      let st = List.hd ts and sf = List.hd fs in
      (match C.Isomorphism.match_subgraphs st sf with
      | None -> Alcotest.fail "expected isomorphic subgraphs"
      | Some pairs ->
          check "pairs cover subgraph" true
            (List.length pairs = C.Region.subgraph_size st);
          (* first pair must be the two entries *)
          let e1, e2 = List.hd pairs in
          check "entry pair" true
            (e1.Ssa.bid = st.C.Region.sg_entry.Ssa.bid
            && e2.Ssa.bid = sf.C.Region.sg_entry.Ssa.bid));
      (* a 2-block subgraph cannot match a 1-block one *)
      let single = List.nth ts 1 in
      check "size mismatch rejected" true
        (C.Isomorphism.match_subgraphs single sf = None
        || C.Region.subgraph_size single = C.Region.subgraph_size sf)

let test_profitability_identical_blocks () =
  let lat = A.Latency.default in
  let f = if_then_region_func () in
  let r, pdt = detect_region f in
  match r with
  | None -> Alcotest.fail "no region"
  | Some r ->
      let st = List.hd (C.Region.true_subgraphs pdt r) in
      let sf = List.hd (C.Region.false_subgraphs pdt r) in
      (match C.Isomorphism.match_subgraphs st sf with
      | None -> Alcotest.fail "not isomorphic"
      | Some pairs ->
          let p = C.Profitability.fp_s lat pairs in
          (* identical instruction mix: profitability near the 0.5 optimum *)
          check "profitability ~0.5" true (p > 0.45 && p <= 0.5))

let test_fp_b_identical_profile () =
  let lat = A.Latency.default in
  let mk_blk () =
    let b = Ssa.mk_block "b" in
    let i1 = Ssa.mk_instr (Op.Ibin Op.Add) [| Ssa.Int 1; Ssa.Int 2 |] [||] Types.I32 in
    let i2 = Ssa.mk_instr (Op.Ibin Op.Mul) [| Ssa.Instr i1; Ssa.Int 2 |] [||] Types.I32 in
    Ssa.append_instr b i1;
    Ssa.append_instr b i2;
    Ssa.append_instr b (Ssa.mk_instr Op.Br [||] [| b |] Types.Void);
    b
  in
  let b1 = mk_blk () and b2 = mk_blk () in
  Alcotest.(check (float 0.001)) "0.5 for identical profiles" 0.5
    (C.Profitability.fp_b lat b1 b2)

let test_fp_b_disjoint_profile () =
  let lat = A.Latency.default in
  let b1 = Ssa.mk_block "b1" in
  Ssa.append_instr b1
    (Ssa.mk_instr (Op.Ibin Op.Add) [| Ssa.Int 1; Ssa.Int 2 |] [||] Types.I32);
  Ssa.append_instr b1 (Ssa.mk_instr Op.Br [||] [| b1 |] Types.Void);
  let b2 = Ssa.mk_block "b2" in
  Ssa.append_instr b2
    (Ssa.mk_instr (Op.Fbin Op.Fadd) [| Ssa.Float 1.; Ssa.Float 2. |] [||] Types.F32);
  Ssa.append_instr b2 (Ssa.mk_instr Op.Br [||] [| b2 |] Types.Void);
  (* only the branch class is shared *)
  check "low profitability" true (C.Profitability.fp_b lat b1 b2 < 0.4)

let test_pass_melds_if_then_region () =
  let f = if_then_region_func () in
  let stats = C.Pass.run ~verify_each:true f in
  check "at least one meld" true (stats.C.Pass.melds_applied >= 1);
  Verify.run_exn f

let test_pass_leaves_uniform_code_alone () =
  let f =
    D.build_kernel ~name:"uni2"
      ~params:[ ("a", Types.Ptr Types.Global); ("n", Types.I32) ]
      (fun ctx params ->
        let a, n = match params with [ a; n ] -> (a, n) | _ -> assert false in
        let t = D.tid ctx in
        D.if_ ctx
          (D.slt ctx n (D.i32 0))
          (fun () -> D.store ctx (D.i32 1) (D.gep ctx a t))
          (fun () -> D.store ctx (D.i32 2) (D.gep ctx a t)))
  in
  let before = Printer.func_to_string f in
  let stats = C.Pass.run ~verify_each:true f in
  check "no melds" true (stats.C.Pass.melds_applied = 0);
  Alcotest.(check string) "IR unchanged" before (Printer.func_to_string f)

let test_pass_respects_threshold () =
  let f = if_then_region_func () in
  let config =
    { C.Pass.default_config with threshold = 0.99 (* nothing reaches this *) }
  in
  let stats = C.Pass.run ~config ~verify_each:true f in
  check "no melds above impossible threshold" true
    (stats.C.Pass.melds_applied = 0)

let test_branch_fusion_rejects_complex () =
  (* branch fusion only handles diamonds; the SB2 shape must be skipped *)
  let f = if_then_region_func () in
  let stats = C.Pass.run_branch_fusion ~verify_each:true f in
  check "no fusion on complex CF" true (stats.C.Pass.melds_applied = 0)

let test_branch_fusion_handles_diamond () =
  let f = Testlib.diamond_func () in
  let stats = C.Pass.run_branch_fusion ~verify_each:true f in
  check "diamond fused" true (stats.C.Pass.melds_applied >= 1);
  Verify.run_exn f

let test_meld_stats_accounting () =
  let f = if_then_region_func () in
  let stats = C.Pass.run ~verify_each:true f in
  let m = stats.C.Pass.meld_stats in
  check "melded pairs counted" true (m.C.Meld.melded_pairs > 0)

let suites =
  [
    ( "melding",
      [
        Alcotest.test_case "detect meldable region" `Quick
          test_detect_meldable_region;
        Alcotest.test_case "if-then not meldable" `Quick
          test_if_then_not_meldable;
        Alcotest.test_case "uniform region not detected" `Quick
          test_uniform_region_not_detected;
        Alcotest.test_case "subgraph decomposition" `Quick
          test_subgraph_decomposition;
        Alcotest.test_case "isomorphism match" `Quick test_isomorphism_match;
        Alcotest.test_case "profitability identical" `Quick
          test_profitability_identical_blocks;
        Alcotest.test_case "fp_b identical profile" `Quick
          test_fp_b_identical_profile;
        Alcotest.test_case "fp_b disjoint profile" `Quick
          test_fp_b_disjoint_profile;
        Alcotest.test_case "pass melds if-then region" `Quick
          test_pass_melds_if_then_region;
        Alcotest.test_case "pass leaves uniform code" `Quick
          test_pass_leaves_uniform_code_alone;
        Alcotest.test_case "pass respects threshold" `Quick
          test_pass_respects_threshold;
        Alcotest.test_case "branch fusion rejects complex" `Quick
          test_branch_fusion_rejects_complex;
        Alcotest.test_case "branch fusion handles diamond" `Quick
          test_branch_fusion_handles_diamond;
        Alcotest.test_case "meld stats" `Quick test_meld_stats_accounting;
      ] );
  ]
