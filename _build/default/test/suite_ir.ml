(* IR construction, printing, verification and the SSA-building DSL. *)

open Darm_ir
module D = Dsl

let check = Alcotest.(check bool)

let test_types () =
  Alcotest.(check string) "ptr str" "ptr(shared)"
    (Types.to_string (Types.Ptr Types.Shared));
  check "join same" true (Types.join_ptr Types.Global Types.Global = Types.Global);
  check "join mixed" true (Types.join_ptr Types.Global Types.Shared = Types.Flat);
  check "pointer" true (Types.is_pointer (Types.Ptr Types.Flat));
  check "not pointer" false (Types.is_pointer Types.I32)

let test_op_classification () =
  check "store side effect" true (Op.has_side_effect Op.Store);
  check "sdiv side effect" true (Op.has_side_effect (Op.Ibin Op.Sdiv));
  check "add pure" false (Op.has_side_effect (Op.Ibin Op.Add));
  check "load unsafe" true (Op.unsafe_to_speculate Op.Load);
  check "add speculatable" false (Op.unsafe_to_speculate (Op.Ibin Op.Add));
  check "br terminator" true (Op.is_terminator Op.Br);
  check "phi not term" false (Op.is_terminator Op.Phi);
  check "select alu" true (Op.is_alu Op.Select);
  check "load not alu" false (Op.is_alu Op.Load);
  check "load memory" true (Op.is_memory Op.Load)

let test_builder_types () =
  let f = Ssa.mk_func "t" [] in
  let b = Builder.create f in
  let blk = Builder.add_block b "entry" in
  Builder.position_at_end b blk;
  let x = Builder.add b (Builder.i32 1) (Builder.i32 2) in
  check "add ty" true (Ssa.value_ty x = Types.I32);
  let c = Builder.ins_icmp b Op.Islt x (Builder.i32 5) in
  check "icmp ty" true (Ssa.value_ty c = Types.I1);
  (try
     ignore (Builder.ins_ibin b Op.Add c c);
     Alcotest.fail "expected type error"
   with Invalid_argument _ -> ());
  (try
     ignore (Builder.ins_select b x x x);
     Alcotest.fail "expected select cond type error"
   with Invalid_argument _ -> ())

let test_select_ptr_join () =
  let f = Ssa.mk_func "t" [] in
  let b = Builder.create f in
  let blk = Builder.add_block b "entry" in
  Builder.position_at_end b blk;
  let g = Builder.ins_alloc_shared b 4 in
  let p =
    Ssa.Param { Ssa.pname = "g"; pty = Types.Ptr Types.Global; pindex = 0 }
  in
  let c = Builder.i1 true in
  let s = Builder.ins_select b c g p in
  check "select ptr degrades to flat" true
    (Ssa.value_ty s = Types.Ptr Types.Flat)

let test_verifier_catches_missing_terminator () =
  let f = Ssa.mk_func "broken" [] in
  let blk = Ssa.mk_block "entry" in
  Ssa.append_block f blk;
  let i = Ssa.mk_instr (Op.Ibin Op.Add) [| Ssa.Int 1; Ssa.Int 2 |] [||] Types.I32 in
  Ssa.append_instr blk i;
  check "verifier fails" true (Verify.run f <> [])

let test_verifier_catches_use_before_def () =
  let f = Ssa.mk_func "broken2" [] in
  let blk = Ssa.mk_block "entry" in
  Ssa.append_block f blk;
  let a = Ssa.mk_instr (Op.Ibin Op.Add) [| Ssa.Int 1; Ssa.Int 2 |] [||] Types.I32 in
  let b = Ssa.mk_instr (Op.Ibin Op.Add) [| Ssa.Instr a; Ssa.Int 1 |] [||] Types.I32 in
  (* b placed before a *)
  Ssa.append_instr blk b;
  Ssa.append_instr blk a;
  let r = Ssa.mk_instr Op.Ret [||] [||] Types.Void in
  Ssa.append_instr blk r;
  check "dominance violation found" true (Verify.run f <> [])

let test_verifier_catches_phi_mismatch () =
  let f = Ssa.mk_func "broken3" [] in
  let e = Ssa.mk_block "entry" in
  let j = Ssa.mk_block "join" in
  Ssa.append_block f e;
  Ssa.append_block f j;
  Ssa.append_instr e (Ssa.mk_instr Op.Br [||] [| j |] Types.Void);
  let phi = Ssa.mk_instr Op.Phi [||] [||] Types.I32 in
  Ssa.append_instr j phi;
  (* phi has no incoming for pred entry *)
  Ssa.append_instr j (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
  check "phi mismatch found" true (Verify.run f <> [])

let test_verifier_type_checks () =
  let mk_broken build =
    let f = Ssa.mk_func "ty" [] in
    let blk = Ssa.mk_block "entry" in
    Ssa.append_block f blk;
    build blk;
    Ssa.append_instr blk (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
    Verify.run f <> []
  in
  check "add of floats rejected" true
    (mk_broken (fun b ->
         Ssa.append_instr b
           (Ssa.mk_instr (Op.Ibin Op.Add)
              [| Ssa.Float 1.; Ssa.Float 2. |]
              [||] Types.I32)));
  check "load of int rejected" true
    (mk_broken (fun b ->
         Ssa.append_instr b
           (Ssa.mk_instr Op.Load [| Ssa.Int 3 |] [||] Types.I32)));
  check "select cond i32 rejected" true
    (mk_broken (fun b ->
         Ssa.append_instr b
           (Ssa.mk_instr Op.Select
              [| Ssa.Int 1; Ssa.Int 2; Ssa.Int 3 |]
              [||] Types.I32)));
  check "gep float index rejected" true
    (mk_broken (fun b ->
         Ssa.append_instr b
           (Ssa.mk_instr Op.Gep
              [| Ssa.Undef (Types.Ptr Types.Global); Ssa.Float 1. |]
              [||] (Types.Ptr Types.Global))));
  check "phi of mixed scalars rejected" true
    (mk_broken (fun b ->
         let phi = Ssa.mk_instr Op.Phi [| Ssa.Float 1. |] [||] Types.I32 in
         (* structurally also wrong, but the type error must be among
            the reports *)
         Ssa.append_instr b phi));
  (* well-typed cross-space select is accepted *)
  let f = Ssa.mk_func "ok" [] in
  let blk = Ssa.mk_block "entry" in
  Ssa.append_block f blk;
  Ssa.append_instr blk
    (Ssa.mk_instr Op.Select
       [| Ssa.Bool true;
          Ssa.Undef (Types.Ptr Types.Shared);
          Ssa.Undef (Types.Ptr Types.Global) |]
       [||] (Types.Ptr Types.Flat));
  Ssa.append_instr blk (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
  check "cross-space select accepted" true (Verify.run f = [])

let test_dsl_diamond_verifies () =
  let f = Testlib.diamond_func () in
  Verify.run_exn f;
  check "has blocks" true (List.length f.Ssa.blocks_list >= 4)

let test_dsl_loop_phis () =
  let f =
    D.build_kernel ~name:"loop" ~params:[ ("n", Types.I32) ]
      (fun ctx params ->
        let n = List.hd params in
        let acc = D.local ctx ~name:"acc" Types.I32 in
        D.set ctx acc (D.i32 0);
        D.for_up ctx ~from:(D.i32 0) ~until:n (fun iv ->
            D.set ctx acc (D.add ctx (D.get ctx acc) iv));
        ignore (D.get ctx acc))
  in
  Verify.run_exn f;
  (* the loop header must contain phis for acc and i *)
  let header =
    List.find (fun b -> b.Ssa.bname = "while.head") f.Ssa.blocks_list
  in
  check "two loop phis" true (List.length (Ssa.phis header) = 2)

let test_dsl_nested_if_in_loop () =
  let f =
    D.build_kernel ~name:"nest" ~params:[ ("n", Types.I32) ]
      (fun ctx params ->
        let n = List.hd params in
        let acc = D.local ctx ~name:"acc" Types.I32 in
        D.set ctx acc (D.i32 0);
        D.for_up ctx ~from:(D.i32 0) ~until:n (fun iv ->
            D.if_ ctx
              (D.eq ctx (D.and_ ctx iv (D.i32 1)) (D.i32 0))
              (fun () -> D.set ctx acc (D.add ctx (D.get ctx acc) iv))
              (fun () -> D.set ctx acc (D.sub ctx (D.get ctx acc) iv)));
        ignore (D.get ctx acc))
  in
  Verify.run_exn f

let test_printer_names_stable () =
  let f = Testlib.diamond_func () in
  let s1 = Printer.func_to_string f in
  let s2 = Printer.func_to_string f in
  Alcotest.(check string) "printing is deterministic" s1 s2;
  check "mentions kernel name" true
    (String.length s1 > 0
    && String.sub s1 0 15 = "kernel @diamond")

let test_replace_all_uses () =
  let f = Ssa.mk_func "rauw" [] in
  let blk = Ssa.mk_block "entry" in
  Ssa.append_block f blk;
  let a = Ssa.mk_instr (Op.Ibin Op.Add) [| Ssa.Int 1; Ssa.Int 2 |] [||] Types.I32 in
  let b = Ssa.mk_instr (Op.Ibin Op.Mul) [| Ssa.Instr a; Ssa.Instr a |] [||] Types.I32 in
  Ssa.append_instr blk a;
  Ssa.append_instr blk b;
  Ssa.append_instr blk (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
  Ssa.replace_all_uses f ~old_v:(Ssa.Instr a) ~new_v:(Ssa.Int 7);
  check "both operands replaced" true
    (Array.for_all (fun v -> Ssa.value_equal v (Ssa.Int 7)) b.Ssa.operands)

let test_users () =
  let f = Ssa.mk_func "users" [] in
  let blk = Ssa.mk_block "entry" in
  Ssa.append_block f blk;
  let a = Ssa.mk_instr (Op.Ibin Op.Add) [| Ssa.Int 1; Ssa.Int 2 |] [||] Types.I32 in
  let b = Ssa.mk_instr (Op.Ibin Op.Mul) [| Ssa.Instr a; Ssa.Int 3 |] [||] Types.I32 in
  let c = Ssa.mk_instr (Op.Ibin Op.Sub) [| Ssa.Int 3; Ssa.Int 1 |] [||] Types.I32 in
  List.iter (Ssa.append_instr blk) [ a; b; c ];
  Ssa.append_instr blk (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
  check "one user" true
    (match Ssa.users f (Ssa.Instr a) with [ u ] -> u.Ssa.id = b.Ssa.id | _ -> false)

let suites =
  [
    ( "ir",
      [
        Alcotest.test_case "types" `Quick test_types;
        Alcotest.test_case "op classification" `Quick test_op_classification;
        Alcotest.test_case "builder type checking" `Quick test_builder_types;
        Alcotest.test_case "select ptr join" `Quick test_select_ptr_join;
        Alcotest.test_case "verifier: missing terminator" `Quick
          test_verifier_catches_missing_terminator;
        Alcotest.test_case "verifier: use before def" `Quick
          test_verifier_catches_use_before_def;
        Alcotest.test_case "verifier: phi mismatch" `Quick
          test_verifier_catches_phi_mismatch;
        Alcotest.test_case "verifier: type checks" `Quick
          test_verifier_type_checks;
        Alcotest.test_case "dsl diamond verifies" `Quick
          test_dsl_diamond_verifies;
        Alcotest.test_case "dsl loop phis" `Quick test_dsl_loop_phis;
        Alcotest.test_case "dsl nested if in loop" `Quick
          test_dsl_nested_if_in_loop;
        Alcotest.test_case "printer deterministic" `Quick
          test_printer_names_stable;
        Alcotest.test_case "replace_all_uses" `Quick test_replace_all_uses;
        Alcotest.test_case "users" `Quick test_users;
      ] );
  ]
