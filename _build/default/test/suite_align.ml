(* Sequence alignment and instruction-alignment scoring. *)

open Darm_ir
module Seq = Darm_align.Sequence
module IA = Darm_align.Instr_align

let check = Alcotest.(check bool)

let char_score a b = if a = b then Some 2. else None

let render al =
  String.concat ""
    (List.map
       (function
         | Seq.Both (a, _) -> Printf.sprintf "(%c)" a
         | Seq.Left a -> Printf.sprintf "<%c" a
         | Seq.Right b -> Printf.sprintf ">%c" b)
       al)

let test_nw_identical () =
  let a = [| 'a'; 'b'; 'c' |] in
  let al, score =
    Seq.needleman_wunsch ~score:char_score ~gap_open:(-1.) ~gap_extend:(-0.5)
      a a
  in
  Alcotest.(check string) "all match" "(a)(b)(c)" (render al);
  Alcotest.(check (float 0.001)) "score" 6. score

let test_nw_gap () =
  let a = [| 'a'; 'b'; 'c'; 'd' |] and b = [| 'a'; 'd' |] in
  let al, _ =
    Seq.needleman_wunsch ~score:char_score ~gap_open:(-1.) ~gap_extend:(-0.5)
      a b
  in
  Alcotest.(check string) "gap run" "(a)<b<c(d)" (render al)

let test_nw_affine_prefers_one_run () =
  (* with expensive open / free extend, gaps should cluster *)
  let a = [| 'x'; 'x'; 'a'; 'b' |] and b = [| 'a'; 'b' |] in
  let al, _ =
    Seq.needleman_wunsch ~score:char_score ~gap_open:(-3.) ~gap_extend:0. a b
  in
  Alcotest.(check string) "one clustered run" "<x<x(a)(b)" (render al)

let test_nw_forbidden_pairs () =
  (* None score must never align *)
  let score a b = if a = b && a <> 'z' then Some 1. else None in
  let a = [| 'z' |] and b = [| 'z' |] in
  let al, _ =
    Seq.needleman_wunsch ~score ~gap_open:(-1.) ~gap_extend:(-1.) a b
  in
  check "z never aligned with z" true
    (List.for_all (function Seq.Both _ -> false | _ -> true) al)

let test_nw_order_preserved () =
  let a = [| 'a'; 'b' |] and b = [| 'b'; 'a' |] in
  let al, _ =
    Seq.needleman_wunsch ~score:char_score ~gap_open:(-1.) ~gap_extend:(-1.)
      a b
  in
  (* only one of the two letters can match without breaking order *)
  let matches =
    List.length (List.filter (function Seq.Both _ -> true | _ -> false) al)
  in
  check "at most one match" true (matches <= 1)

let test_sw_local () =
  let a = [| 'x'; 'a'; 'b'; 'c'; 'y' |] and b = [| 'q'; 'a'; 'b'; 'c' |] in
  let al, score = Seq.smith_waterman ~score:char_score ~gap:(-1.) a b in
  Alcotest.(check string) "local window" "(a)(b)(c)" (render al);
  Alcotest.(check (float 0.001)) "score" 6. score

let test_sw_empty_when_nothing_matches () =
  let a = [| 'a' |] and b = [| 'b' |] in
  let al, score = Seq.smith_waterman ~score:char_score ~gap:(-1.) a b in
  check "empty" true (al = []);
  Alcotest.(check (float 0.001)) "zero" 0. score

(* --- instruction-level matching --- *)

let mk op operands ty = Ssa.mk_instr op operands [||] ty

let test_match_instrs () =
  let a = mk (Op.Ibin Op.Add) [| Ssa.Int 1; Ssa.Int 2 |] Types.I32 in
  let b = mk (Op.Ibin Op.Add) [| Ssa.Int 3; Ssa.Int 4 |] Types.I32 in
  let c = mk (Op.Ibin Op.Sub) [| Ssa.Int 3; Ssa.Int 4 |] Types.I32 in
  check "same opcode matches" true (IA.match_instrs a b);
  check "different opcode does not" false (IA.match_instrs a c)

let test_match_loads_cross_space () =
  let lsh = mk Op.Load [| Ssa.Undef (Types.Ptr Types.Shared) |] Types.I32 in
  let lgl = mk Op.Load [| Ssa.Undef (Types.Ptr Types.Global) |] Types.I32 in
  let st =
    mk Op.Store [| Ssa.Int 0; Ssa.Undef (Types.Ptr Types.Shared) |] Types.Void
  in
  check "loads of different spaces match" true (IA.match_instrs lsh lgl);
  check "load does not match store" false (IA.match_instrs lsh st)

let test_fp_i_scoring () =
  let c = Darm_analysis.Latency.default in
  let x = Ssa.Int 1 and y = Ssa.Int 2 in
  let a = mk (Op.Ibin Op.Add) [| x; y |] Types.I32 in
  let b_same = mk (Op.Ibin Op.Add) [| x; y |] Types.I32 in
  let b_diff = mk (Op.Ibin Op.Add) [| Ssa.Int 9; Ssa.Int 8 |] Types.I32 in
  (match IA.fp_i c a b_same with
  | Some s -> Alcotest.(check (float 0.001)) "no selects" (float_of_int c.Darm_analysis.Latency.alu) s
  | None -> Alcotest.fail "expected match");
  match IA.fp_i c a b_diff, IA.fp_i c a b_same with
  | Some sd, Some ss -> check "selects reduce profit" true (sd < ss)
  | _ -> Alcotest.fail "expected matches"

let test_fp_i_memory_dominates () =
  (* melding a shared load saves far more than melding an add *)
  let c = Darm_analysis.Latency.default in
  let p = Ssa.Undef (Types.Ptr Types.Shared) in
  let l1 = mk Op.Load [| p |] Types.I32 in
  let l2 = mk Op.Load [| p |] Types.I32 in
  let a1 = mk (Op.Ibin Op.Add) [| Ssa.Int 1; Ssa.Int 2 |] Types.I32 in
  let a2 = mk (Op.Ibin Op.Add) [| Ssa.Int 1; Ssa.Int 2 |] Types.I32 in
  match IA.fp_i c l1 l2, IA.fp_i c a1 a2 with
  | Some sl, Some sa -> check "load >> add" true (sl > sa *. 4.)
  | _ -> Alcotest.fail "expected matches"

let suites =
  [
    ( "align",
      [
        Alcotest.test_case "nw identical" `Quick test_nw_identical;
        Alcotest.test_case "nw gap" `Quick test_nw_gap;
        Alcotest.test_case "nw affine clustering" `Quick
          test_nw_affine_prefers_one_run;
        Alcotest.test_case "nw forbidden pairs" `Quick test_nw_forbidden_pairs;
        Alcotest.test_case "nw order preserved" `Quick test_nw_order_preserved;
        Alcotest.test_case "sw local window" `Quick test_sw_local;
        Alcotest.test_case "sw empty" `Quick test_sw_empty_when_nothing_matches;
        Alcotest.test_case "match_instrs" `Quick test_match_instrs;
        Alcotest.test_case "match loads cross-space" `Quick
          test_match_loads_cross_space;
        Alcotest.test_case "fp_i scoring" `Quick test_fp_i_scoring;
        Alcotest.test_case "fp_i memory dominates" `Quick
          test_fp_i_memory_dominates;
      ] );
  ]
