(* End-to-end: every benchmark kernel, baseline vs DARM-melded, must
   produce identical memory and match the host reference; melding must
   reduce simulated cycles on the divergent kernels. *)

module K = Darm_kernels
module C = Darm_core
module Metrics = Darm_sim.Metrics

let check = Alcotest.(check bool)

let equiv ?transform kernel ~block_size ~n ~seed =
  Testlib.check_equivalence ?transform kernel ~block_size ~n ~seed

let test_sb_equivalence (kernel : K.Kernel.t) () =
  List.iter
    (fun block_size ->
      ignore (equiv kernel ~block_size ~n:256 ~seed:42))
    [ 64; 128 ]

let test_sb_speedup (kernel : K.Kernel.t) () =
  let base, meld = equiv kernel ~block_size:64 ~n:256 ~seed:7 in
  check
    (Printf.sprintf "%s: melding reduces cycles (%d -> %d)"
       kernel.K.Kernel.tag base.Metrics.cycles meld.Metrics.cycles)
    true
    (meld.Metrics.cycles < base.Metrics.cycles)

let test_sb_divergence_reduced (kernel : K.Kernel.t) () =
  let base, meld = equiv kernel ~block_size:64 ~n:256 ~seed:3 in
  check "dynamic divergence reduced" true
    (meld.Metrics.divergent_branches <= base.Metrics.divergent_branches)

let test_unpredication_off_still_correct () =
  let config = { C.Pass.default_config with unpredicate = false } in
  let transform f = ignore (C.Pass.run ~config ~verify_each:true f) in
  List.iter
    (fun kernel -> ignore (equiv ~transform kernel ~block_size:64 ~n:128 ~seed:11))
    [ K.Sb.sb1; K.Sb.sb2; K.Sb.sb3; K.Sb.sb1_r; K.Sb.sb2_r; K.Sb.sb3_r ]

let test_branch_fusion_equivalence () =
  let transform f = ignore (C.Pass.run_branch_fusion ~verify_each:true f) in
  List.iter
    (fun kernel -> ignore (equiv ~transform kernel ~block_size:64 ~n:128 ~seed:13))
    [ K.Sb.sb1; K.Sb.sb2; K.Sb.sb3 ]

let test_seeds_property (kernel : K.Kernel.t) () =
  (* qcheck: correctness for arbitrary seeds *)
  let t =
    QCheck2.Test.make ~count:8
      ~name:(kernel.K.Kernel.tag ^ " equivalence for random seeds")
      QCheck2.Gen.small_int
      (fun seed ->
        ignore (equiv kernel ~block_size:64 ~n:128 ~seed);
        true)
  in
  QCheck_alcotest.to_alcotest t |> fun (_, _, f) -> f ()

let sb_cases =
  List.concat_map
    (fun k ->
      [
        Alcotest.test_case
          (k.K.Kernel.tag ^ " equivalence")
          `Quick (test_sb_equivalence k);
        Alcotest.test_case (k.K.Kernel.tag ^ " speedup") `Quick
          (test_sb_speedup k);
      ]
      (* the -R variants trade warp splits for unpredication guard
         branches, so the dynamic split count is only guaranteed to drop
         when the paths align perfectly *)
      @
      if String.length k.K.Kernel.tag <= 3 then
        [
          Alcotest.test_case
            (k.K.Kernel.tag ^ " divergence reduced")
            `Quick
            (test_sb_divergence_reduced k);
        ]
      else [])
    K.Sb.all

(* --- real-world kernels --- *)

let test_real_equivalence (kernel : K.Kernel.t) ~block_sizes ~n () =
  List.iter
    (fun block_size ->
      ignore (equiv kernel ~block_size ~n ~seed:17))
    block_sizes

let test_real_speedup (kernel : K.Kernel.t) ~block_size ~n () =
  let base, meld = equiv kernel ~block_size ~n ~seed:23 in
  check
    (Printf.sprintf "%s: melding reduces cycles (%d -> %d)"
       kernel.K.Kernel.tag base.Metrics.cycles meld.Metrics.cycles)
    true
    (meld.Metrics.cycles < base.Metrics.cycles)

let real_cases =
  [
    Alcotest.test_case "BIT equivalence" `Quick
      (test_real_equivalence K.Bitonic.kernel ~block_sizes:[ 64; 128 ] ~n:256);
    Alcotest.test_case "BIT speedup" `Quick
      (test_real_speedup K.Bitonic.kernel ~block_size:128 ~n:256);
    Alcotest.test_case "LUD equivalence" `Quick
      (test_real_equivalence K.Lud.kernel ~block_sizes:[ 16; 32; 64; 128 ]
         ~n:256);
    Alcotest.test_case "LUD speedup when divergent" `Quick
      (test_real_speedup K.Lud.kernel ~block_size:32 ~n:256);
    Alcotest.test_case "DCT equivalence" `Quick
      (test_real_equivalence K.Dct.kernel ~block_sizes:[ 64; 128 ] ~n:512);
    Alcotest.test_case "MS equivalence" `Quick
      (test_real_equivalence K.Mergesort.kernel ~block_sizes:[ 64; 128 ]
         ~n:256);
    Alcotest.test_case "PCM equivalence" `Quick
      (test_real_equivalence K.Pcm.kernel ~block_sizes:[ 64 ] ~n:1024);
    Alcotest.test_case "PCM speedup" `Quick
      (test_real_speedup K.Pcm.kernel ~block_size:64 ~n:1024);
    Alcotest.test_case "baseline sanity: BIT sorts" `Quick (fun () ->
        let inst =
          K.Bitonic.kernel.K.Kernel.make ~seed:3 ~block_size:64 ~n:128
        in
        ignore (Testlib.run_instance inst);
        Testlib.show_mismatch "bitonic baseline vs sorted reference"
          (inst.K.Kernel.read_result ())
          (inst.K.Kernel.reference ()));
  ]

(* flat-address-space melding (paper Fig. 10's flat counters) *)
let test_flat_melding () =
  let kernel = K.Patterns.flat_meld in
  let base, meld = equiv kernel ~block_size:64 ~n:256 ~seed:9 in
  check "no flat accesses in the baseline" true
    (base.Metrics.mem_flat = 0);
  check "melding created flat accesses" true (meld.Metrics.mem_flat > 0);
  check "and removed split shared/global ones" true
    (meld.Metrics.mem_shared < base.Metrics.mem_shared
    && meld.Metrics.mem_global <= base.Metrics.mem_global)

let test_fdct_float_melding () =
  let base, meld =
    equiv K.Fdct.kernel ~block_size:64 ~n:256 ~seed:5
  in
  check "float kernel speeds up" true
    (meld.Metrics.cycles < base.Metrics.cycles)

let suites =
  [
    ( "end2end",
      sb_cases @ real_cases
      @ [
          Alcotest.test_case "unpredication off still correct" `Quick
            test_unpredication_off_still_correct;
          Alcotest.test_case "branch fusion equivalence" `Quick
            test_branch_fusion_equivalence;
          Alcotest.test_case "SB1 random seeds" `Slow
            (test_seeds_property K.Sb.sb1);
          Alcotest.test_case "SB3 random seeds" `Slow
            (test_seeds_property K.Sb.sb3);
          Alcotest.test_case "flat-space melding" `Quick (fun () ->
              test_flat_melding ());
          Alcotest.test_case "FDCT float melding" `Quick (fun () ->
              test_fdct_float_melding ());
        ] );
  ]

