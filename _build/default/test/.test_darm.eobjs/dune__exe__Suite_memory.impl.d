test/suite_memory.ml: Alcotest Darm_ir Darm_sim List Op Parser Printer Printf String Verify
