test/suite_melding.ml: Alcotest Darm_analysis Darm_core Darm_ir Dsl List Op Printer Ssa Testlib Types Verify
