test/suite_transforms.ml: Alcotest Array Darm_ir Darm_kernels Darm_transforms Dsl List Op Ssa Testlib Types Verify
