test/suite_sim.ml: Alcotest Array Darm_ir Darm_sim Dsl List String Testlib Types
