test/suite_i32.ml: Alcotest Darm_ir Darm_sim Darm_transforms I32 Int32 List Op Option Printf QCheck2 QCheck_alcotest
