test/suite_hip_kernels.ml: Alcotest Darm_core Darm_frontend Darm_ir Darm_kernels Darm_sim List Printf Ssa Testlib Verify
