test/suite_meld_ir.ml: Alcotest Array Darm_analysis Darm_core Darm_ir Darm_sim Dsl List Op Ssa String Types Verify
