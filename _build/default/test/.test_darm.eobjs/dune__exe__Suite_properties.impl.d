test/suite_properties.ml: Array Darm_align Darm_analysis Darm_core Darm_ir Darm_kernels Darm_sim Float Hashtbl List Op QCheck2 QCheck_alcotest Ssa String
