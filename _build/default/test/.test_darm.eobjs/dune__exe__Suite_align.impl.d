test/suite_align.ml: Alcotest Darm_align Darm_analysis Darm_ir List Op Printf Ssa String Types
