test/suite_end2end.ml: Alcotest Darm_core Darm_kernels Darm_sim List Printf QCheck2 QCheck_alcotest String Testlib
