test/testlib.ml: Alcotest Array Darm_core Darm_ir Darm_kernels Darm_sim Dsl Printf Ssa Types Verify
