test/suite_parallel.ml: Alcotest Darm_harness Darm_kernels Darm_sim Filename List Printf String
