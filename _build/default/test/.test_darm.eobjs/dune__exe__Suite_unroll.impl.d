test/suite_unroll.ml: Alcotest Array Darm_analysis Darm_core Darm_ir Darm_kernels Darm_sim Darm_transforms Dsl List String Types Verify
