test/suite_fuzz.ml: Alcotest Darm_core Darm_ir Darm_kernels Darm_transforms List Printf String
