test/suite_dsl.ml: Alcotest Array Darm_ir Darm_sim Dsl Float List Op Ssa Types Verify
