test/suite_ir.ml: Alcotest Array Builder Darm_ir Dsl List Op Printer Ssa String Testlib Types Verify
