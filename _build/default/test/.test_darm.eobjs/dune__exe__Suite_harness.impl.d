test/suite_harness.ml: Alcotest Darm_harness Darm_ir Darm_kernels Darm_sim List String
