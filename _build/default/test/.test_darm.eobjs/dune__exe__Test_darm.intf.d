test/test_darm.mli:
