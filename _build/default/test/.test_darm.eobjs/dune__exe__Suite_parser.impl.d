test/suite_parser.ml: Alcotest Array Darm_core Darm_ir Darm_kernels Darm_sim List Parser Printer Ssa String Verify
