test/suite_regions.ml: Alcotest Darm_analysis Darm_core Darm_ir Dsl Hashtbl List Op Ssa Types Verify
