test/suite_frontend.ml: Alcotest Array Darm_core Darm_frontend Darm_ir Darm_kernels Darm_sim List Ssa String Verify
