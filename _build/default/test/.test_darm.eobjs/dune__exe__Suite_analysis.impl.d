test/suite_analysis.ml: Alcotest Darm_analysis Darm_ir Dsl List Op Ssa Testlib Types
