(* The simulator's memory model and the printer's opcode coverage. *)

open Darm_ir
module Memory = Darm_sim.Memory

let check = Alcotest.(check bool)

let test_alloc_and_rw () =
  let m = Memory.create ~space:Memory.Sp_global 16 in
  let p1 = Memory.alloc m 4 in
  let p2 = Memory.alloc m 4 in
  (match p1, p2 with
  | Memory.Rptr (Memory.Sp_global, 0), Memory.Rptr (Memory.Sp_global, 4) -> ()
  | _ -> Alcotest.fail "bump allocation offsets");
  Memory.write m 2 (Memory.Rint 42);
  check "read back" true (Memory.read m 2 = Memory.Rint 42);
  check "fresh cells are undef" true (Memory.read m 3 = Memory.Rundef)

let test_alloc_exhaustion () =
  let m = Memory.create ~space:Memory.Sp_shared 8 in
  ignore (Memory.alloc m 8);
  try
    ignore (Memory.alloc m 1);
    Alcotest.fail "expected out-of-memory"
  with Memory.Fault _ -> ()

let test_bounds () =
  let m = Memory.create ~space:Memory.Sp_global 4 in
  (try
     ignore (Memory.read m 4);
     Alcotest.fail "expected oob read"
   with Memory.Fault _ -> ());
  (try
     Memory.write m (-1) (Memory.Rint 0);
     Alcotest.fail "expected oob write"
   with Memory.Fault _ -> ())

let test_conversions () =
  check "int" true (Memory.to_int (Memory.Rint 7) = 7);
  check "bool true" true (Memory.to_int (Memory.Rbool true) = 1);
  check "float widen" true (Memory.to_float (Memory.Rint 3) = 3.);
  (try
     ignore (Memory.to_int Memory.Rundef);
     Alcotest.fail "expected a fault"
   with Memory.Fault _ -> ())

let test_array_helpers () =
  let m = Memory.create ~space:Memory.Sp_global 16 in
  let p = Memory.alloc_of_int_array m [| 5; 6; 7 |] in
  Alcotest.(check (array int)) "roundtrip" [| 5; 6; 7 |]
    (Memory.read_int_array m p 3);
  let pf = Memory.alloc_of_float_array m [| 1.5; 2.5 |] in
  check "float roundtrip" true
    (Memory.read_float_array m pf 2 = [| 1.5; 2.5 |])

(* Every opcode must print, and (for the value-producing, parseable ones)
   survive a print/parse round-trip inside a block. *)
let test_printer_opcode_coverage () =
  let ops : Op.t list =
    [
      Op.Ibin Op.Add; Op.Ibin Op.Sub; Op.Ibin Op.Mul; Op.Ibin Op.Sdiv;
      Op.Ibin Op.Srem; Op.Ibin Op.And; Op.Ibin Op.Or; Op.Ibin Op.Xor;
      Op.Ibin Op.Shl; Op.Ibin Op.Lshr; Op.Ibin Op.Ashr; Op.Ibin Op.Smin;
      Op.Ibin Op.Smax; Op.Fbin Op.Fadd; Op.Fbin Op.Fsub; Op.Fbin Op.Fmul;
      Op.Fbin Op.Fdiv; Op.Fbin Op.Fmin; Op.Fbin Op.Fmax; Op.Icmp Op.Ieq;
      Op.Icmp Op.Ine; Op.Icmp Op.Islt; Op.Icmp Op.Isle; Op.Icmp Op.Isgt;
      Op.Icmp Op.Isge; Op.Fcmp Op.Foeq; Op.Fcmp Op.Fone; Op.Fcmp Op.Folt;
      Op.Fcmp Op.Fole; Op.Fcmp Op.Fogt; Op.Fcmp Op.Foge; Op.Not;
      Op.Select; Op.Load; Op.Store; Op.Gep; Op.Phi; Op.Br; Op.Condbr;
      Op.Ret; Op.Thread_idx; Op.Block_idx; Op.Block_dim; Op.Grid_dim;
      Op.Syncthreads; Op.Alloc_shared 4; Op.Sitofp; Op.Fptosi;
      Op.Addrspace_cast;
    ]
  in
  List.iter
    (fun op ->
      check
        (Printf.sprintf "op %s has a printable name" (Op.to_string op))
        true
        (String.length (Op.to_string op) > 0))
    ops;
  (* a function exercising one instruction of each printable class must
     round-trip through the parser *)
  let src =
    {|
kernel @all_ops(%a: ptr(global), %x: f32) {
entry:
  %0 = thread.idx
  %1 = block.idx
  %2 = block.dim
  %3 = grid.dim
  %4 = alloc.shared 8
  %5 = add %0, %1
  %6 = sub %5, %2
  %7 = mul %6, 2
  %8 = sdiv %7, 3
  %9 = srem %8, 5
  %10 = and %9, 7
  %11 = or %10, 1
  %12 = xor %11, 2
  %13 = shl %12, 1
  %14 = lshr %13, 1
  %15 = ashr %14, 1
  %16 = smin %15, %0
  %17 = smax %16, %1
  %18 = icmp slt %17, 100
  %19 = not %18
  %20 = select %19, %17, 0
  %21 = sitofp %20
  %22 = fadd %21, %x
  %23 = fsub %22, 1.0
  %24 = fmul %23, 2.0
  %25 = fdiv %24, 3.0
  %26 = fmin %25, %x
  %27 = fmax %26, %x
  %28 = fcmp ogt %27, 0.0
  %29 = fptosi %27
  %30 = gep %a, %29
  %31 = addrspace.cast %30
  %32 = load i32, %30
  store %32, %30
  syncthreads
  condbr %28, t, e
t:
  br join
e:
  br join
join:
  %33 = phi i32 [1, t], [2, e]
  store %33, %30
  ret
}
|}
  in
  match Parser.parse_func src with
  | Ok f ->
      Verify.run_exn f;
      let text = Printer.func_to_string f in
      (match Parser.parse_func text with
      | Ok f2 ->
          Verify.run_exn f2;
          Alcotest.(check string)
            "all-ops roundtrip" text
            (Printer.func_to_string f2)
      | Error e -> Alcotest.failf "re-parse: %s" e)
  | Error e -> Alcotest.failf "parse: %s" e

let suites =
  [
    ( "memory",
      [
        Alcotest.test_case "alloc and rw" `Quick test_alloc_and_rw;
        Alcotest.test_case "alloc exhaustion" `Quick test_alloc_exhaustion;
        Alcotest.test_case "bounds" `Quick test_bounds;
        Alcotest.test_case "conversions" `Quick test_conversions;
        Alcotest.test_case "array helpers" `Quick test_array_helpers;
        Alcotest.test_case "printer opcode coverage" `Quick
          test_printer_opcode_coverage;
      ] );
  ]
