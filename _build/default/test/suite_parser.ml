(* Textual IR parser: round-trips, error reporting, tolerance. *)

open Darm_ir
module K = Darm_kernels

let check = Alcotest.(check bool)

let roundtrip_stable (f : Ssa.func) =
  let t1 = Printer.func_to_string f in
  match Parser.parse_func t1 with
  | Error e -> Alcotest.failf "parse error: %s\nsource:\n%s" e t1
  | Ok f2 ->
      Verify.run_exn f2;
      let t2 = Printer.func_to_string f2 in
      Alcotest.(check string) "round-trip is stable" t1 t2

let test_roundtrip_all_kernels () =
  List.iter
    (fun (k : K.Kernel.t) ->
      let block_size = List.hd k.K.Kernel.block_sizes in
      let inst = k.K.Kernel.make ~seed:1 ~block_size ~n:k.K.Kernel.default_n in
      roundtrip_stable inst.K.Kernel.func)
    K.Registry.all

let test_roundtrip_melded_kernels () =
  (* melded IR exercises selects, flat pointers, unpredication blocks *)
  List.iter
    (fun (k : K.Kernel.t) ->
      let block_size = List.hd k.K.Kernel.block_sizes in
      let inst = k.K.Kernel.make ~seed:1 ~block_size ~n:k.K.Kernel.default_n in
      ignore (Darm_core.Pass.run inst.K.Kernel.func);
      roundtrip_stable inst.K.Kernel.func)
    [ K.Sb.sb3_r; K.Bitonic.kernel; K.Patterns.flat_meld ]

let parse_err (src : string) : string =
  match Parser.parse_func src with
  | Ok _ -> Alcotest.failf "expected a parse error for:\n%s" src
  | Error e -> e

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_error_unknown_opcode () =
  let e =
    parse_err "kernel @k() {\nentry:\n  %0 = frobnicate 1, 2\n  ret\n}\n"
  in
  check "mentions opcode" true (contains e "frobnicate")

let test_error_use_before_def () =
  let e =
    parse_err "kernel @k() {\nentry:\n  %0 = add %1, 2\n  %1 = add 1, 2\n  ret\n}\n"
  in
  check "reports use before definition" true
    (contains e "before definition")

let test_error_phi_forward_ref_ok () =
  (* forward references ARE legal for phis (loop-carried values) *)
  let src =
    "kernel @k() {\n\
     entry:\n\
    \  br head\n\
     head:\n\
    \  %0 = phi i32 [0, entry], [%1, head]\n\
    \  %1 = add %0, 1\n\
    \  %2 = icmp slt %1, 10\n\
    \  condbr %2, head, done\n\
     done:\n\
    \  ret\n\
     }\n"
  in
  match Parser.parse_func src with
  | Ok f -> Verify.run_exn f
  | Error e -> Alcotest.failf "loop phi should parse: %s" e

let test_error_bad_addrspace () =
  let e = parse_err "kernel @k(%p: ptr(banana)) {\nentry:\n  ret\n}\n" in
  check "reports address space" true (contains e "address space")

let test_error_unclosed_body () =
  let e = parse_err "kernel @k() {\nentry:\n  ret\n" in
  check "reports eof" true (contains e "end of file")

let test_error_bad_literal () =
  let e = parse_err "kernel @k() {\nentry:\n  %0 = add 12x4, 1\n  ret\n}\n" in
  check "reports literal" true (contains e "literal")

let test_comments_and_whitespace () =
  let src =
    "; a leading comment\n\
     kernel @k(%a: ptr(global)) {   ; trailing comment\n\
     entry:\n\
    \   %0   =   thread.idx\n\n\n\
    \  %1 = gep %a, %0 ; index\n\
    \  store 7, %1\n\
    \  ret\n\
     }\n"
  in
  match Parser.parse_func src with
  | Ok f ->
      Verify.run_exn f;
      check "three instrs + ret" true
        (List.length (Ssa.entry_block f).Ssa.instrs = 4)
  | Error e -> Alcotest.failf "should parse: %s" e

let test_parse_then_simulate () =
  (* a hand-written .cir kernel must behave as written *)
  let src =
    "kernel @double(%a: ptr(global)) {\n\
     entry:\n\
    \  %0 = thread.idx\n\
    \  %1 = gep %a, %0\n\
    \  %2 = load i32, %1\n\
    \  %3 = mul %2, 2\n\
    \  store %3, %1\n\
    \  ret\n\
     }\n"
  in
  match Parser.parse_func src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok f ->
      let module Memory = Darm_sim.Memory in
      let g = Memory.create ~space:Memory.Sp_global 16 in
      let a = Memory.alloc_of_int_array g (Array.init 16 (fun i -> i)) in
      ignore
        (Darm_sim.Simulator.run f ~args:[| a |] ~global:g
           { Darm_sim.Simulator.grid_dim = 1; block_dim = 16 });
      Alcotest.(check (array int))
        "doubled"
        (Array.init 16 (fun i -> 2 * i))
        (Memory.read_int_array g a 16)

let test_undef_literal () =
  let src =
    "kernel @k(%a: ptr(global)) {\n\
     entry:\n\
    \  %0 = thread.idx\n\
    \  %1 = select true, %0, undef:i32\n\
    \  %2 = gep %a, %1\n\
    \  store %1, %2\n\
    \  ret\n\
     }\n"
  in
  match Parser.parse_func src with
  | Ok f -> Verify.run_exn f
  | Error e -> Alcotest.failf "undef should parse: %s" e

let test_module_with_two_kernels () =
  let src = "kernel @a() {\nentry:\n  ret\n}\nkernel @b() {\nentry:\n  ret\n}\n" in
  match Parser.parse_module ~name:"m" src with
  | Ok m -> check "two kernels" true (List.length m.Ssa.funcs = 2)
  | Error e -> Alcotest.failf "module should parse: %s" e

let suites =
  [
    ( "parser",
      [
        Alcotest.test_case "roundtrip all kernels" `Quick
          test_roundtrip_all_kernels;
        Alcotest.test_case "roundtrip melded kernels" `Quick
          test_roundtrip_melded_kernels;
        Alcotest.test_case "error: unknown opcode" `Quick
          test_error_unknown_opcode;
        Alcotest.test_case "error: use before def" `Quick
          test_error_use_before_def;
        Alcotest.test_case "loop phi forward ref" `Quick
          test_error_phi_forward_ref_ok;
        Alcotest.test_case "error: bad addrspace" `Quick
          test_error_bad_addrspace;
        Alcotest.test_case "error: unclosed body" `Quick
          test_error_unclosed_body;
        Alcotest.test_case "error: bad literal" `Quick test_error_bad_literal;
        Alcotest.test_case "comments and whitespace" `Quick
          test_comments_and_whitespace;
        Alcotest.test_case "parse then simulate" `Quick
          test_parse_then_simulate;
        Alcotest.test_case "undef literal" `Quick test_undef_literal;
        Alcotest.test_case "two-kernel module" `Quick
          test_module_with_two_kernels;
      ] );
  ]
