(* The Mini-HIP frontend: parsing, type checking, lowering, and
   source-level equivalence with the builder-constructed kernels. *)

open Darm_ir
module F = Darm_frontend
module Sim = Darm_sim.Simulator
module Memory = Darm_sim.Memory

let check = Alcotest.(check bool)

let compile_one (src : string) : Ssa.func =
  match F.Lower.compile ~name:"test" src with
  | Ok { Ssa.funcs = [ f ]; _ } ->
      Verify.run_exn f;
      f
  | Ok _ -> Alcotest.fail "expected exactly one kernel"
  | Error e -> Alcotest.failf "compile error: %s" e

let expect_error (src : string) : string =
  match F.Lower.compile ~name:"test" src with
  | Ok _ -> Alcotest.failf "expected a compile error for:\n%s" src
  | Error e -> e

let run_ints f ~block ~args_global =
  let g = Memory.create ~space:Memory.Sp_global 4096 in
  let ptrs = List.map (fun a -> Memory.alloc_of_int_array g a) args_global in
  ignore
    (Sim.run f ~args:(Array.of_list ptrs) ~global:g
       { Sim.grid_dim = 1; block_dim = block });
  (g, ptrs)

let test_saxpy_style () =
  let f =
    compile_one
      {|
kernel scale(int* a, int* b) {
  int i = threadIdx();
  b[i] = a[i] * 3 + 1;
}
|}
  in
  let input = Array.init 32 (fun i -> i) in
  let g, ptrs = run_ints f ~block:32 ~args_global:[ input; Array.make 32 0 ] in
  let out = Memory.read_int_array g (List.nth ptrs 1) 32 in
  Alcotest.(check (array int)) "scaled" (Array.map (fun v -> (v * 3) + 1) input) out

let test_control_flow_and_shared () =
  let f =
    compile_one
      {|
kernel oddeven(int* a) {
  __shared__ int s[64];
  int t = threadIdx();
  s[t] = a[t];
  __syncthreads();
  if ((t & 1) == 0) {
    s[t] = s[t] * 2;
  } else {
    s[t] = s[t] + 100;
  }
  __syncthreads();
  a[t] = s[t];
}
|}
  in
  let input = Array.init 64 (fun i -> i) in
  let g, ptrs = run_ints f ~block:64 ~args_global:[ input ] in
  let out = Memory.read_int_array g (List.hd ptrs) 64 in
  let expected =
    Array.map (fun v -> if v land 1 = 0 then v * 2 else v + 100) input
  in
  Alcotest.(check (array int)) "odd/even" expected out;
  (* and DARM melds the region *)
  let stats = Darm_core.Pass.run ~verify_each:true f in
  check "melds" true (stats.Darm_core.Pass.melds_applied >= 1)

let test_for_loop_and_opassign () =
  let f =
    compile_one
      {|
kernel sums(int* a) {
  int t = threadIdx();
  int acc = 0;
  for (int i = 0; i < t; i++) {
    acc += i;
  }
  a[t] = acc;
}
|}
  in
  let g, ptrs = run_ints f ~block:16 ~args_global:[ Array.make 16 0 ] in
  let out = Memory.read_int_array g (List.hd ptrs) 16 in
  Alcotest.(check (array int)) "triangular"
    (Array.init 16 (fun t -> t * (t - 1) / 2))
    out

let test_short_circuit_guards_division () =
  (* C semantics: the right operand of && must not evaluate when the
     left is false — here that would divide by zero *)
  let f =
    compile_one
      {|
kernel guard(int* a) {
  int t = threadIdx();
  int d = t % 4;
  if (d != 0 && 100 / d > 30) {
    a[t] = 1;
  } else {
    a[t] = 0;
  }
}
|}
  in
  let g, ptrs = run_ints f ~block:16 ~args_global:[ Array.make 16 9 ] in
  let out = Memory.read_int_array g (List.hd ptrs) 16 in
  let expected =
    Array.init 16 (fun t ->
        let d = t mod 4 in
        if d <> 0 && 100 / d > 30 then 1 else 0)
  in
  Alcotest.(check (array int)) "no div-by-zero trap" expected out

let test_ternary_evaluates_one_arm () =
  (* the not-taken arm indexes out of bounds; C evaluates only one *)
  let f =
    compile_one
      {|
kernel tern(int* a) {
  int t = threadIdx();
  int v = t < 8 ? a[t] : a[t + 100000];
  a[t] = t < 8 ? v + 1 : 0;
}
|}
  in
  let input = Array.init 8 (fun i -> i * 5) in
  let g, ptrs = run_ints f ~block:8 ~args_global:[ input ] in
  let out = Memory.read_int_array g (List.hd ptrs) 8 in
  Alcotest.(check (array int)) "lazy ternary"
    (Array.map (fun v -> v + 1) input)
    out

let test_float_kernel () =
  let f =
    compile_one
      {|
kernel halve(float* x, int* out) {
  int t = threadIdx();
  float v = x[t] * 0.5f;
  float c = v > 10.0 ? 10.0 : v;
  out[t] = int(max(c, 0.0));
}
|}
  in
  ignore f (* verified in compile_one; float path exercised *)

let test_bitonic_hip_matches_builder () =
  (* the paper's Fig. 1 kernel written in Mini-HIP must sort exactly like
     the builder-constructed version *)
  let src =
    {|
__global__ void bitonic(int* values) {
  __shared__ int shared[64];
  int tid = threadIdx();
  int gid = blockIdx() * blockDim() + tid;
  shared[tid] = values[gid];
  __syncthreads();
  for (int k = 2; k <= 64; k *= 2) {
    for (int j = k / 2; j > 0; j /= 2) {
      int ixj = tid ^ j;
      if (ixj > tid) {
        if ((tid & k) == 0) {
          if (shared[ixj] < shared[tid]) {
            int tmp = shared[tid];
            shared[tid] = shared[ixj];
            shared[ixj] = tmp;
          }
        } else {
          if (shared[ixj] > shared[tid]) {
            int tmp = shared[tid];
            shared[tid] = shared[ixj];
            shared[ixj] = tmp;
          }
        }
      }
      __syncthreads();
    }
  }
  values[gid] = shared[tid];
}
|}
  in
  let f = compile_one src in
  let stats = Darm_core.Pass.run ~verify_each:true f in
  check "hip bitonic melds" true (stats.Darm_core.Pass.melds_applied >= 1);
  let input = Darm_kernels.Kernel.random_int_array ~seed:7 ~n:128 ~bound:1000 in
  let g = Memory.create ~space:Memory.Sp_global 128 in
  let pv = Memory.alloc_of_int_array g input in
  ignore
    (Sim.run f ~args:[| pv |] ~global:g { Sim.grid_dim = 2; block_dim = 64 });
  let out = Memory.read_int_array g pv 128 in
  let expected =
    let a = Array.copy input in
    let b0 = Array.sub a 0 64 and b1 = Array.sub a 64 64 in
    Array.sort compare b0;
    Array.sort compare b1;
    Array.append b0 b1
  in
  Alcotest.(check (array int)) "per-block sorted" expected out

let test_type_errors () =
  let e1 =
    expect_error "kernel k(int* a) { a[0] = 1.5; }"
  in
  check "int/float store" true (String.length e1 > 0);
  let e2 = expect_error "kernel k(int* a) { if (a[0]) { a[0] = 1; } }" in
  check "int condition" true (String.length e2 > 0);
  let e3 = expect_error "kernel k(int n) { n = 3; }" in
  check "assign to parameter" true (String.length e3 > 0);
  let e4 = expect_error "kernel k(int* a) { b[0] = 1; }" in
  check "unknown identifier" true (String.length e4 > 0)

let test_parse_errors () =
  let e1 = expect_error "kernel k(int* a) { if (1 < ) {} }" in
  check "expression error" true (String.length e1 > 0);
  let e2 = expect_error "kernel k(int* a) { a[0] = 1 " in
  check "unterminated" true (String.length e2 > 0);
  let e3 = expect_error "kernel k(wat x) {}" in
  check "bad type" true (String.length e3 > 0)

let test_comments_and_suffixes () =
  let f =
    compile_one
      {|
// line comment
kernel k(float* x) {
  /* block
     comment */
  int t = threadIdx();
  x[t] = 2.5f; // trailing
}
|}
  in
  ignore f

let suites =
  [
    ( "frontend",
      [
        Alcotest.test_case "saxpy style" `Quick test_saxpy_style;
        Alcotest.test_case "control flow + shared" `Quick
          test_control_flow_and_shared;
        Alcotest.test_case "for loop and +=" `Quick
          test_for_loop_and_opassign;
        Alcotest.test_case "short-circuit &&" `Quick
          test_short_circuit_guards_division;
        Alcotest.test_case "lazy ternary" `Quick
          test_ternary_evaluates_one_arm;
        Alcotest.test_case "float kernel" `Quick test_float_kernel;
        Alcotest.test_case "bitonic.hip sorts and melds" `Quick
          test_bitonic_hip_matches_builder;
        Alcotest.test_case "type errors" `Quick test_type_errors;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "comments and suffixes" `Quick
          test_comments_and_suffixes;
      ] );
  ]
