(* Differential property tests of the two's-complement i32 ALU: the
   simulator's evaluator and the constant folder must agree with an
   independent oracle built on the stdlib's Int32 (true 32-bit machine
   arithmetic), including at the wrap-around boundaries the seed
   implementation got wrong. *)

open Darm_ir
module Sim = Darm_sim.Simulator
module CF = Darm_transforms.Constfold

let qcheck t = QCheck_alcotest.to_alcotest t

let min_i32 = -0x80000000
let max_i32 = 0x7FFFFFFF

(* ------------------------------------------------------------------ *)
(* Oracle: evaluate through Int32, the one integer type in the stdlib
   with real 32-bit semantics.  Int32.of_int truncates modulo 2^32,
   matching I32.to_i32 on arbitrary native ints.  C leaves
   INT_MIN / -1 undefined, the IR wraps it; the oracle pins the
   wrapped value explicitly rather than trusting Int32.div with it. *)
let oracle (op : Op.ibinop) (x : int) (y : int) : int option =
  let a = Int32.of_int x and b = Int32.of_int y in
  let sh = Int32.to_int b land 31 in
  let r =
    match op with
    | Op.Add -> Some (Int32.add a b)
    | Op.Sub -> Some (Int32.sub a b)
    | Op.Mul -> Some (Int32.mul a b)
    | Op.Sdiv ->
        if b = 0l then None
        else if a = Int32.min_int && b = -1l then Some Int32.min_int
        else Some (Int32.div a b)
    | Op.Srem ->
        if b = 0l then None
        else if a = Int32.min_int && b = -1l then Some 0l
        else Some (Int32.rem a b)
    | Op.And -> Some (Int32.logand a b)
    | Op.Or -> Some (Int32.logor a b)
    | Op.Xor -> Some (Int32.logxor a b)
    | Op.Shl -> Some (Int32.shift_left a sh)
    | Op.Lshr -> Some (Int32.shift_right_logical a sh)
    | Op.Ashr -> Some (Int32.shift_right a sh)
    | Op.Smin -> Some (if Int32.compare a b <= 0 then a else b)
    | Op.Smax -> Some (if Int32.compare a b >= 0 then a else b)
  in
  Option.map Int32.to_int r

let all_ibinops : Op.ibinop list =
  [
    Op.Add; Op.Sub; Op.Mul; Op.Sdiv; Op.Srem; Op.And; Op.Or; Op.Xor;
    Op.Shl; Op.Lshr; Op.Ashr; Op.Smin; Op.Smax;
  ]

let ibinop_name (op : Op.ibinop) : string =
  match op with
  | Op.Add -> "add" | Op.Sub -> "sub" | Op.Mul -> "mul"
  | Op.Sdiv -> "sdiv" | Op.Srem -> "srem" | Op.And -> "and"
  | Op.Or -> "or" | Op.Xor -> "xor" | Op.Shl -> "shl"
  | Op.Lshr -> "lshr" | Op.Ashr -> "ashr" | Op.Smin -> "smin"
  | Op.Smax -> "smax"

(* operands concentrated on the overflow boundaries, plus arbitrary
   native ints well outside the i32 range (operands must be
   canonicalized before evaluation, so out-of-range inputs exercise
   the truncation path) *)
let operand_gen : int QCheck2.Gen.t =
  QCheck2.Gen.(
    oneof
      [
        oneofl
          [
            min_i32; min_i32 + 1; -1; 0; 1; 2; 31; 32; max_i32;
            max_i32 - 1; 0x55555555; -0x55555556;
          ];
        int_range min_i32 max_i32;
        int_range (-0x4000_0000_0000_0000) 0x3FFF_FFFF_FFFF_FFFF;
      ])

let case_gen : (Op.ibinop * int * int) QCheck2.Gen.t =
  QCheck2.Gen.(
    map2
      (fun op (x, y) -> (op, x, y))
      (oneofl all_ibinops)
      (pair operand_gen operand_gen))

let print_case (op, x, y) = Printf.sprintf "%s %d %d" (ibinop_name op) x y

let sim_eval (op : Op.ibinop) x y : int option =
  match Sim.eval_ibin op x y with
  | v -> Some v
  | exception Sim.Sim_error _ -> None

let test_simulator_matches_oracle =
  qcheck
    (QCheck2.Test.make ~count:2000 ~print:print_case
       ~name:"simulator eval_ibin = Int32 oracle" case_gen
       (fun (op, x, y) -> sim_eval op x y = oracle op x y))

let test_constfold_matches_oracle =
  qcheck
    (QCheck2.Test.make ~count:2000 ~print:print_case
       ~name:"constfold fold_ibin = Int32 oracle" case_gen
       (fun (op, x, y) -> CF.fold_ibin op x y = oracle op x y))

let test_constfold_matches_simulator =
  qcheck
    (QCheck2.Test.make ~count:2000 ~print:print_case
       ~name:"constfold and simulator agree" case_gen
       (fun (op, x, y) -> CF.fold_ibin op x y = sim_eval op x y))

let test_icmp_matches_int32 =
  let preds =
    [
      (Op.Ieq, "eq", fun c -> c = 0);
      (Op.Ine, "ne", fun c -> c <> 0);
      (Op.Islt, "slt", fun c -> c < 0);
      (Op.Isle, "sle", fun c -> c <= 0);
      (Op.Isgt, "sgt", fun c -> c > 0);
      (Op.Isge, "sge", fun c -> c >= 0);
    ]
  in
  qcheck
    (QCheck2.Test.make ~count:2000
       ~print:(fun (i, x, y) ->
         let _, name, _ = List.nth preds i in
         Printf.sprintf "%s %d %d" name x y)
       ~name:"fold_icmp = Int32 compare"
       QCheck2.Gen.(
         map2
           (fun i (x, y) -> (i, x, y))
           (int_range 0 5)
           (pair operand_gen operand_gen))
       (fun (i, x, y) ->
         let pred, _, of_cmp = List.nth preds i in
         CF.fold_icmp pred x y
         = of_cmp (Int32.compare (Int32.of_int x) (Int32.of_int y))))

(* ------------------------------------------------------------------ *)
(* Pinned boundary cases — the exact values the seed implementation
   evaluated in native 63-bit arithmetic. *)

let check_eval name op x y expected () =
  Alcotest.(check int) name expected (Sim.eval_ibin op x y)

let unit_cases =
  [
    Alcotest.test_case "add wraps at max_int32" `Quick
      (check_eval "max+1" Op.Add max_i32 1 min_i32);
    Alcotest.test_case "sub wraps at min_int32" `Quick
      (check_eval "min-1" Op.Sub min_i32 1 max_i32);
    Alcotest.test_case "mul wraps" `Quick
      (check_eval "65536*65536" Op.Mul 65536 65536 0);
    Alcotest.test_case "mul keeps low bits" `Quick
      (check_eval "k*k" Op.Mul 123456789 987654321
         (Int32.to_int (Int32.mul 123456789l 987654321l)));
    Alcotest.test_case "shl into the sign bit" `Quick
      (check_eval "1<<31" Op.Shl 1 31 min_i32);
    Alcotest.test_case "shl then ashr sign-extends" `Quick
      (check_eval "(1<<31)>>31" Op.Ashr min_i32 31 (-1));
    Alcotest.test_case "lshr of negative is logical" `Quick
      (check_eval "-1 lshr 1" Op.Lshr (-1) 1 max_i32);
    Alcotest.test_case "ashr truncates first" `Quick
      (* 2^32 + 8 is 8 as an i32; a native asr would see 2^32 *)
      (check_eval "(2^32+8) ashr 1" Op.Ashr 0x100000008 1 4);
    Alcotest.test_case "shift count is masked to 5 bits" `Quick
      (check_eval "1<<33" Op.Shl 1 33 2);
    Alcotest.test_case "sdiv min/-1 wraps" `Quick
      (check_eval "min/-1" Op.Sdiv min_i32 (-1) min_i32);
    Alcotest.test_case "sdiv by zero traps" `Quick (fun () ->
        match Sim.eval_ibin Op.Sdiv 1 0 with
        | _ -> Alcotest.fail "expected Sim_error"
        | exception Sim.Sim_error _ -> ());
    Alcotest.test_case "srem by zero traps" `Quick (fun () ->
        match Sim.eval_ibin Op.Srem 1 0 with
        | _ -> Alcotest.fail "expected Sim_error"
        | exception Sim.Sim_error _ -> ());
    Alcotest.test_case "sdiv/srem by zero does not fold" `Quick (fun () ->
        Alcotest.(check bool)
          "no fold" true
          (CF.fold_ibin Op.Sdiv 1 0 = None && CF.fold_ibin Op.Srem 1 0 = None));
    Alcotest.test_case "to_i32/of_i32 round trip" `Quick (fun () ->
        List.iter
          (fun v ->
            Alcotest.(check int)
              (Printf.sprintf "canon %d" v)
              (Int32.to_int (Int32.of_int v))
              (I32.to_i32 v);
            Alcotest.(check int)
              (Printf.sprintf "low bits %d" v)
              (Int32.to_int (Int32.of_int v) land 0xFFFFFFFF)
              (I32.of_i32 (I32.to_i32 v)))
          [ min_i32; -1; 0; 1; max_i32; 0x123456789; -0x123456789 ]);
  ]

let suites =
  [
    ( "i32",
      unit_cases
      @ [
          test_simulator_matches_oracle;
          test_constfold_matches_oracle;
          test_constfold_matches_simulator;
          test_icmp_matches_int32;
        ] );
  ]
