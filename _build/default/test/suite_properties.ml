(* Property-based tests (qcheck): alignment optimality and legality,
   analysis invariants over randomly generated kernels, simulator
   determinism, profitability bounds. *)

open Darm_ir
module Seq = Darm_align.Sequence
module A = Darm_analysis
module RK = Darm_kernels.Random_kernel

let qcheck t = QCheck_alcotest.to_alcotest t

let small_string_gen =
  QCheck2.Gen.(string_size ~gen:(char_range 'a' 'd') (0 -- 6))

(* brute-force optimal global alignment score for the linear-gap case *)
let brute_force_score ~(score : char -> char -> float option) ~(gap : float)
    (a : string) (b : string) : float =
  let n = String.length a and m = String.length b in
  let memo = Hashtbl.create 64 in
  let rec go i j =
    if i = n && j = m then 0.
    else
      match Hashtbl.find_opt memo (i, j) with
      | Some v -> v
      | None ->
          let candidates =
            (if i < n then [ gap +. go (i + 1) j ] else [])
            @ (if j < m then [ gap +. go i (j + 1) ] else [])
            @
            if i < n && j < m then
              match score a.[i] b.[j] with
              | Some s -> [ s +. go (i + 1) (j + 1) ]
              | None -> []
            else []
          in
          let v = List.fold_left max neg_infinity candidates in
          (* at the boundary, gaps are the only move, so candidates is
             never empty unless both are exhausted *)
          Hashtbl.replace memo (i, j) v;
          v
  in
  go 0 0

let char_score a b = if a = b then Some 2. else None

let test_nw_matches_brute_force =
  qcheck
    (QCheck2.Test.make ~count:200 ~name:"NW score equals brute force"
       QCheck2.Gen.(pair small_string_gen small_string_gen)
       (fun (a, b) ->
         let arr s = Array.init (String.length s) (String.get s) in
         let _, nw =
           Seq.needleman_wunsch ~score:char_score ~gap_open:(-1.)
             ~gap_extend:(-1.) (arr a) (arr b)
         in
         let bf = brute_force_score ~score:char_score ~gap:(-1.) a b in
         Float.abs (nw -. bf) < 1e-9))

let test_nw_alignment_is_legal =
  qcheck
    (QCheck2.Test.make ~count:200
       ~name:"NW alignment covers both sequences in order"
       QCheck2.Gen.(pair small_string_gen small_string_gen)
       (fun (a, b) ->
         let arr s = Array.init (String.length s) (String.get s) in
         let al, _ =
           Seq.needleman_wunsch ~score:char_score ~gap_open:(-1.)
             ~gap_extend:(-0.5) (arr a) (arr b)
         in
         let left =
           List.filter_map
             (function Seq.Both (x, _) | Seq.Left x -> Some x | _ -> None)
             al
         in
         let right =
           List.filter_map
             (function Seq.Both (_, y) | Seq.Right y -> Some y | _ -> None)
             al
         in
         (* every element appears exactly once, in sequence order *)
         String.init (List.length left) (List.nth left) = a
         && String.init (List.length right) (List.nth right) = b))

let test_sw_never_negative =
  qcheck
    (QCheck2.Test.make ~count:200 ~name:"SW score is non-negative"
       QCheck2.Gen.(pair small_string_gen small_string_gen)
       (fun (a, b) ->
         let arr s = Array.init (String.length s) (String.get s) in
         let _, s = Seq.smith_waterman ~score:char_score ~gap:(-1.) (arr a) (arr b) in
         s >= 0.))

(* --- invariants of the analyses over random kernels --- *)

let gen_cfg = { RK.default_cfg with array_size = 64; max_depth = 2; stmts_per_block = 2 }

let random_func seed = RK.generate ~cfg:gen_cfg ~seed ()

let test_domtree_invariants =
  qcheck
    (QCheck2.Test.make ~count:40 ~name:"dominator-tree invariants"
       QCheck2.Gen.small_int
       (fun seed ->
         let f = random_func seed in
         let dt = A.Domtree.compute f in
         let entry = Ssa.entry_block f in
         let blocks = A.Cfg.reachable_blocks f in
         List.for_all
           (fun b ->
             A.Domtree.dominates dt entry b
             && A.Domtree.dominates dt b b
             &&
             match A.Domtree.idom dt b with
             | None -> b.Ssa.bid = entry.Ssa.bid
             | Some d ->
                 A.Domtree.strictly_dominates dt d b
                 (* the idom dominates every other strict dominator's
                    candidate: it must be dominated by all of them *)
                 && List.for_all
                      (fun c ->
                        if A.Domtree.strictly_dominates dt c b then
                          A.Domtree.dominates dt c d
                        else true)
                      blocks)
           blocks))

let test_postdom_invariants =
  qcheck
    (QCheck2.Test.make ~count:40 ~name:"post-dominator invariants"
       QCheck2.Gen.small_int
       (fun seed ->
         let f = random_func seed in
         let pdt = A.Domtree.compute_post f in
         let exits = A.Cfg.exit_blocks f in
         List.for_all
           (fun b ->
             (* every reachable block is post-dominated by itself, and
                its ipdom (when not the virtual exit) post-dominates it *)
             A.Domtree.dominates pdt b b
             &&
             match A.Domtree.idom pdt b with
             | None -> true
             | Some p -> A.Domtree.strictly_dominates pdt p b)
           (A.Cfg.reachable_blocks f)
         && List.for_all
              (fun e ->
                match A.Domtree.idom pdt e with None -> true | Some _ -> false)
              exits))

let test_divergence_requires_tid =
  qcheck
    (QCheck2.Test.make ~count:40
       ~name:"divergent values are data/sync dependent on thread.idx"
       QCheck2.Gen.small_int
       (fun seed ->
         let f = random_func seed in
         let dvg = A.Divergence.compute f in
         (* our random kernels always read thread.idx, so at least the
            tid itself is divergent; and no divergence at all implies no
            divergent branches *)
         let has_divergent_instr =
           Ssa.fold_instrs f
             (fun acc i -> acc || A.Divergence.is_divergent_instr dvg i)
             false
         in
         (not has_divergent_instr)
         || Ssa.fold_instrs f
              (fun acc i -> acc || i.Ssa.op = Op.Thread_idx)
              false))

let test_fp_b_bounds =
  qcheck
    (QCheck2.Test.make ~count:40 ~name:"FP_B is within [0, 0.5]"
       QCheck2.Gen.small_int
       (fun seed ->
         let f = random_func seed in
         let lat = A.Latency.default in
         let blocks = A.Cfg.reachable_blocks f in
         List.for_all
           (fun b1 ->
             List.for_all
               (fun b2 ->
                 let p = Darm_core.Profitability.fp_b lat b1 b2 in
                 p >= 0. && p <= 0.5 +. 1e-9)
               blocks)
           blocks))

let test_simulator_deterministic =
  qcheck
    (QCheck2.Test.make ~count:20 ~name:"simulation is deterministic"
       QCheck2.Gen.small_int
       (fun seed ->
         let run () =
           let inst = RK.instance ~cfg:gen_cfg ~seed ~block_size:64 () in
           let m =
             Darm_sim.Simulator.run inst.Darm_kernels.Kernel.func
               ~args:inst.Darm_kernels.Kernel.args
               ~global:inst.Darm_kernels.Kernel.global
               inst.Darm_kernels.Kernel.launch
           in
           (m.Darm_sim.Metrics.cycles, inst.Darm_kernels.Kernel.read_result ())
         in
         let c1, o1 = run () and c2, o2 = run () in
         c1 = c2 && Darm_kernels.Kernel.rv_array_equal o1 o2))

let test_meld_idempotent =
  qcheck
    (QCheck2.Test.make ~count:20 ~name:"melding reaches a fixpoint"
       QCheck2.Gen.small_int
       (fun seed ->
         let f = random_func seed in
         ignore (Darm_core.Pass.run f);
         (* a second run must find nothing left to meld *)
         let again = Darm_core.Pass.run f in
         again.Darm_core.Pass.melds_applied = 0))

let suites =
  [
    ( "properties",
      [
        test_nw_matches_brute_force;
        test_nw_alignment_is_legal;
        test_sw_never_negative;
        test_domtree_invariants;
        test_postdom_invariants;
        test_divergence_requires_tid;
        test_fp_b_bounds;
        test_simulator_deterministic;
        test_meld_idempotent;
      ] );
  ]
