(* Loop unrolling: shape detection, semantics, and the unroll-then-meld
   synergy the paper attributes to HIPCC's pipeline. *)

open Darm_ir
module T = Darm_transforms
module D = Dsl
module RK = Darm_kernels.Random_kernel
module Sim = Darm_sim.Simulator
module Memory = Darm_sim.Memory

let check = Alcotest.(check bool)

let count_loops f = List.length (Darm_analysis.Loops.compute f).Darm_analysis.Loops.loops

let sum_kernel trip =
  D.build_kernel ~name:"sum" ~params:[ ("out", Types.Ptr Types.Global) ]
    (fun ctx params ->
      let out = List.hd params in
      let t = D.tid ctx in
      let acc = D.local ctx ~name:"acc" Types.I32 in
      D.set ctx acc (D.i32 0);
      D.for_up ctx ~from:(D.i32 0) ~until:(D.i32 trip) (fun iv ->
          D.set ctx acc (D.add ctx (D.get ctx acc) (D.mul ctx iv t)));
      D.store ctx (D.get ctx acc) (D.gep ctx out t))

let run_sum f n =
  let g = Memory.create ~space:Memory.Sp_global n in
  let out = Memory.alloc g n in
  ignore (Sim.run f ~args:[| out |] ~global:g { Sim.grid_dim = 1; block_dim = n });
  Memory.read_int_array g out n

let test_unroll_counted_loop () =
  let f = sum_kernel 5 in
  check "one loop before" true (count_loops f = 1);
  let n = T.Loop_unroll.run f in
  Verify.run_exn f;
  check "one loop unrolled" true (n = 1);
  check "no loops after" true (count_loops f = 0);
  let out = run_sum f 8 in
  let expected = Array.init 8 (fun t -> 10 * t) in
  Alcotest.(check (array int)) "sums preserved" expected out

let test_unroll_trip_zero () =
  let f = sum_kernel 0 in
  let n = T.Loop_unroll.run f in
  Verify.run_exn f;
  check "unrolled" true (n = 1);
  let out = run_sum f 4 in
  Alcotest.(check (array int)) "all zero" [| 0; 0; 0; 0 |] out

let test_unroll_respects_max_trip () =
  let f = sum_kernel 100 in
  let n = T.Loop_unroll.run ~max_trip:16 f in
  check "too long: not unrolled" true (n = 0 && count_loops f = 1)

let test_unroll_skips_dynamic_bounds () =
  let f =
    D.build_kernel ~name:"dyn" ~params:[ ("out", Types.Ptr Types.Global); ("n", Types.I32) ]
      (fun ctx params ->
        let out, n = match params with [ o; n ] -> (o, n) | _ -> assert false in
        let t = D.tid ctx in
        let acc = D.local ctx ~name:"acc" Types.I32 in
        D.set ctx acc (D.i32 0);
        D.for_up ctx ~from:(D.i32 0) ~until:n (fun iv ->
            D.set ctx acc (D.add ctx (D.get ctx acc) iv));
        D.store ctx (D.get ctx acc) (D.gep ctx out t))
  in
  check "dynamic bound not unrolled" true (T.Loop_unroll.run f = 0)

let test_unroll_nested () =
  let f =
    D.build_kernel ~name:"nested" ~params:[ ("out", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let out = List.hd params in
        let t = D.tid ctx in
        let acc = D.local ctx ~name:"acc" Types.I32 in
        D.set ctx acc (D.i32 0);
        D.for_up ctx ~name:"i" ~from:(D.i32 0) ~until:(D.i32 3) (fun iv ->
            D.for_up ctx ~name:"j" ~from:(D.i32 0) ~until:(D.i32 2) (fun jv ->
                D.set ctx acc
                  (D.add ctx (D.get ctx acc) (D.mul ctx iv jv))));
        D.store ctx (D.get ctx acc) (D.gep ctx out t))
  in
  let n = T.Loop_unroll.run f in
  Verify.run_exn f;
  (* the inner loop is unrolled once per outer iteration after the outer
     unroll, or inside-out: either way no loops remain *)
  check "all loops gone" true (n >= 2 && count_loops f = 0);
  let out = run_sum f 4 in
  (* sum over i<3, j<2 of i*j = (0+1+2)*(0+1) = 3 *)
  Alcotest.(check (array int)) "nested sums" [| 3; 3; 3; 3 |] out

let test_unroll_divergent_body () =
  (* unrolling a loop whose body contains a divergent if/else must
     preserve semantics; afterwards DARM can meld each instance *)
  let build () =
    D.build_kernel ~name:"divloop" ~params:[ ("out", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let out = List.hd params in
        let t = D.tid ctx in
        let acc = D.local ctx ~name:"acc" Types.I32 in
        D.set ctx acc t;
        D.for_up ctx ~from:(D.i32 0) ~until:(D.i32 4) (fun iv ->
            D.if_ ctx
              (D.eq ctx (D.and_ ctx (D.add ctx t iv) (D.i32 1)) (D.i32 0))
              (fun () ->
                D.set ctx acc (D.add ctx (D.get ctx acc) (D.mul ctx iv (D.i32 3))))
              (fun () ->
                D.set ctx acc (D.sub ctx (D.get ctx acc) (D.mul ctx iv (D.i32 3)))));
        D.store ctx (D.get ctx acc) (D.gep ctx out t))
  in
  let base = build () in
  let opt = build () in
  let unrolled = T.Loop_unroll.run opt in
  Verify.run_exn opt;
  check "unrolled" true (unrolled = 1);
  let stats = Darm_core.Pass.run ~verify_each:true opt in
  check "unroll exposes melds" true (stats.Darm_core.Pass.melds_applied >= 1);
  let out_base = run_sum base 16 in
  let out_opt = run_sum opt 16 in
  Alcotest.(check (array int)) "unroll+meld preserves output" out_base out_opt

let test_unroll_fuzz () =
  let failures = ref [] in
  let transform f =
    ignore (T.Loop_unroll.run ~max_trip:8 f);
    Verify.run_exn f;
    ignore (Darm_core.Pass.run ~verify_each:true f)
  in
  List.iter
    (fun seed ->
      match
        RK.check_transform
          ~cfg:{ RK.default_cfg with array_size = 128; max_depth = 2; stmts_per_block = 3 }
          ~seed ~block_size:64 ~transform ()
      with
      | Ok () -> ()
      | Error e -> failures := e :: !failures)
    [ 200; 201; 202; 203; 204; 205; 206; 207; 208; 209;
      210; 211; 212; 213; 214; 215; 216; 217; 218; 219 ];
  match !failures with
  | [] -> ()
  | fs ->
      Alcotest.failf "unroll+meld: %d failure(s):\n%s" (List.length fs)
        (String.concat "\n" fs)

let suites =
  [
    ( "unroll",
      [
        Alcotest.test_case "counted loop" `Quick test_unroll_counted_loop;
        Alcotest.test_case "trip zero" `Quick test_unroll_trip_zero;
        Alcotest.test_case "max trip" `Quick test_unroll_respects_max_trip;
        Alcotest.test_case "dynamic bounds skipped" `Quick
          test_unroll_skips_dynamic_bounds;
        Alcotest.test_case "nested loops" `Quick test_unroll_nested;
        Alcotest.test_case "divergent body + meld" `Quick
          test_unroll_divergent_body;
        Alcotest.test_case "fuzz unroll+meld" `Quick test_unroll_fuzz;
      ] );
  ]
