(* Every paper kernel written in Mini-HIP source must behave exactly
   like its builder-constructed twin: we run the compiled source on the
   builder instance's own inputs and require the host-reference
   output — before AND after melding. *)

open Darm_ir
module K = Darm_kernels
module Sim = Darm_sim.Simulator

let n_for tag =
  match tag with "PCM" -> 512 | _ -> 256

let compile_hip (src : string) : Ssa.func =
  match Darm_frontend.Lower.compile ~name:"hip" src with
  | Ok { Ssa.funcs = [ f ]; _ } ->
      Verify.run_exn f;
      f
  | Ok _ -> Alcotest.fail "expected one kernel"
  | Error e -> Alcotest.failf "mini-hip compile error: %s" e

let check_source (tag : string) (src : string) ~(meld : bool) () =
  let kernel =
    match K.Registry.find tag with
    | Some k -> k
    | None -> Alcotest.failf "unknown kernel %s" tag
  in
  let inst = kernel.K.Kernel.make ~seed:5 ~block_size:64 ~n:(n_for tag) in
  let f = compile_hip src in
  if meld then begin
    let stats = Darm_core.Pass.run ~verify_each:true f in
    ignore stats
  end;
  ignore
    (Sim.run f ~args:inst.K.Kernel.args ~global:inst.K.Kernel.global
       inst.K.Kernel.launch);
  Testlib.show_mismatch
    (Printf.sprintf "%s.hip%s vs host reference" tag
       (if meld then " (melded)" else ""))
    (inst.K.Kernel.read_result ())
    (inst.K.Kernel.reference ())

let suites =
  [
    ( "hip-kernels",
      List.concat_map
        (fun (tag, src) ->
          [
            Alcotest.test_case (tag ^ ".hip baseline") `Quick
              (check_source tag src ~meld:false);
            Alcotest.test_case (tag ^ ".hip melded") `Quick
              (check_source tag src ~meld:true);
          ])
        K.Hip_sources.all );
  ]
