(* The experiment harness itself: geomean, sweeps, correctness gating,
   CSV export. *)

module E = Darm_harness.Experiment
module K = Darm_kernels

let check = Alcotest.(check bool)

let test_geomean () =
  Alcotest.(check (float 1e-9)) "empty" 1. (E.geomean []);
  Alcotest.(check (float 1e-9)) "singleton" 2. (E.geomean [ 2. ]);
  Alcotest.(check (float 1e-9)) "2 and 8" 4. (E.geomean [ 2.; 8. ]);
  Alcotest.(check (float 1e-6)) "identity" 1. (E.geomean [ 0.5; 2. ])

let test_sweep_covers_block_sizes () =
  let kernel = K.Sb.sb1 in
  let results = E.sweep ~n:128 kernel in
  Alcotest.(check int)
    "one result per block size"
    (List.length kernel.K.Kernel.block_sizes)
    (List.length results);
  List.iter
    (fun (r : E.result) ->
      check "correct" true r.E.correct;
      check "positive cycles" true (r.E.base.Darm_sim.Metrics.cycles > 0))
    results

let test_identity_transform_is_neutral () =
  let r =
    E.run ~transform:E.identity_transform K.Sb.sb1 ~block_size:64 ~n:128
  in
  check "no rewrites" true (r.E.rewrites = 0);
  Alcotest.(check (float 1e-9)) "speedup 1.0" 1.0 (E.speedup r);
  check "correct" true r.E.correct

let test_broken_transform_is_detected () =
  (* a transform that corrupts the kernel (changes a constant) must trip
     the built-in equivalence check, never pass silently *)
  let sabotage =
    {
      E.t_name = "sabotage";
      t_apply =
        (fun f ->
          let changed = ref 0 in
          Darm_ir.Ssa.iter_instrs f (fun i ->
              if !changed = 0 then
                match i.Darm_ir.Ssa.op, i.Darm_ir.Ssa.operands with
                | Darm_ir.Op.Ibin Darm_ir.Op.Add, [| a; Darm_ir.Ssa.Int k |] ->
                    i.Darm_ir.Ssa.operands <- [| a; Darm_ir.Ssa.Int (k + 1) |];
                    incr changed
                | _ -> ());
          !changed);
    }
  in
  let r = E.run ~transform:sabotage K.Sb.sb1 ~block_size:64 ~n:128 in
  check "sabotage applied" true (r.E.rewrites = 1);
  check "corruption detected" false r.E.correct

let test_csv_export_shape () =
  let r = E.run K.Sb.sb1 ~block_size:64 ~n:128 in
  let row = Darm_harness.Csv_export.result_row r in
  let fields = String.split_on_char ',' row in
  let header_fields =
    String.split_on_char ',' Darm_harness.Csv_export.header
  in
  Alcotest.(check int)
    "row arity matches header" (List.length header_fields)
    (List.length fields);
  check "row names the kernel" true (List.hd fields = "SB1")

let test_registry_tags_unique () =
  let tags = K.Registry.tags () in
  let sorted = List.sort_uniq compare tags in
  Alcotest.(check int) "no duplicate tags" (List.length tags)
    (List.length sorted);
  check "find is case-insensitive" true
    (match K.Registry.find "bit" with
    | Some k -> k.K.Kernel.tag = "BIT"
    | None -> false);
  check "unknown tag" true (K.Registry.find "NOPE" = None)

let test_makespan () =
  let module M = Darm_sim.Metrics in
  let m = M.create () in
  m.M.block_cycles <- [ 10; 20; 30; 40 ];
  m.M.cycles <- 100;
  Alcotest.(check int) "1 cu = total" 100 (M.makespan m ~num_cus:1);
  (* LPT over [40;30;20;10] on 2 CUs: {40,10} {30,20} -> 50 *)
  Alcotest.(check int) "2 cus" 50 (M.makespan m ~num_cus:2);
  (* more CUs than blocks: bounded by the largest block *)
  Alcotest.(check int) "8 cus" 40 (M.makespan m ~num_cus:8)

let test_block_cycles_recorded () =
  let r = E.run ~transform:E.identity_transform K.Sb.sb1 ~block_size:64 ~n:256 in
  let bc = r.E.base.Darm_sim.Metrics.block_cycles in
  Alcotest.(check int) "one entry per block" 4 (List.length bc);
  Alcotest.(check int) "entries sum to total" r.E.base.Darm_sim.Metrics.cycles
    (List.fold_left ( + ) 0 bc)

let test_metrics_add () =
  let module M = Darm_sim.Metrics in
  let a = M.create () and b = M.create () in
  a.M.cycles <- 10;
  b.M.cycles <- 5;
  a.M.mem_shared <- 3;
  b.M.mem_shared <- 4;
  M.add a b;
  Alcotest.(check int) "cycles" 15 a.M.cycles;
  Alcotest.(check int) "shared" 7 a.M.mem_shared

let suites =
  [
    ( "harness",
      [
        Alcotest.test_case "geomean" `Quick test_geomean;
        Alcotest.test_case "sweep coverage" `Quick
          test_sweep_covers_block_sizes;
        Alcotest.test_case "identity transform" `Quick
          test_identity_transform_is_neutral;
        Alcotest.test_case "broken transform detected" `Quick
          test_broken_transform_is_detected;
        Alcotest.test_case "csv row shape" `Quick test_csv_export_shape;
        Alcotest.test_case "registry tags" `Quick test_registry_tags_unique;
        Alcotest.test_case "metrics add" `Quick test_metrics_add;
        Alcotest.test_case "makespan" `Quick test_makespan;
        Alcotest.test_case "block cycles recorded" `Quick
          test_block_cycles_recorded;
      ] );
  ]
