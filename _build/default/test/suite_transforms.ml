(* SimplifyCFG, DCE, constant folding, if-conversion. *)

open Darm_ir
module T = Darm_transforms
module D = Dsl

let check = Alcotest.(check bool)

let test_constfold_basic () =
  let f =
    D.build_kernel ~name:"cf" ~params:[ ("out", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let out = List.hd params in
        let v = D.add ctx (D.i32 2) (D.i32 3) in
        let v = D.mul ctx v (D.i32 1) in
        D.store ctx v (D.gep ctx out (D.i32 0)))
  in
  check "folded" true (T.Constfold.run f);
  ignore (T.Dce.run f);
  Verify.run_exn f;
  let remaining_binops =
    Ssa.fold_instrs f
      (fun acc i -> match i.Ssa.op with Op.Ibin _ -> acc + 1 | _ -> acc)
      0
  in
  check "no binops left" true (remaining_binops = 0)

let test_constfold_select () =
  let i =
    Ssa.mk_instr Op.Select [| Ssa.Bool true; Ssa.Int 4; Ssa.Int 5 |] [||]
      Types.I32
  in
  check "select true" true (T.Constfold.fold_instr i = Some (Ssa.Int 4));
  let j =
    Ssa.mk_instr Op.Select [| Ssa.Undef Types.I1; Ssa.Int 4; Ssa.Int 4 |] [||]
      Types.I32
  in
  check "select same arms" true (T.Constfold.fold_instr j = Some (Ssa.Int 4))

let test_constfold_no_div_by_zero () =
  let i =
    Ssa.mk_instr (Op.Ibin Op.Sdiv) [| Ssa.Int 4; Ssa.Int 0 |] [||] Types.I32
  in
  check "sdiv by 0 not folded" true (T.Constfold.fold_instr i = None)

let test_dce_removes_dead_pure () =
  let f =
    D.build_kernel ~name:"dce" ~params:[ ("out", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let out = List.hd params in
        let t = D.tid ctx in
        let _dead = D.add ctx t (D.i32 1) in
        D.store ctx t (D.gep ctx out t))
  in
  check "removed" true (T.Dce.run f);
  Verify.run_exn f

let test_dce_keeps_stores () =
  let f =
    D.build_kernel ~name:"dce2" ~params:[ ("out", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let out = List.hd params in
        D.store ctx (D.i32 1) (D.gep ctx out (D.i32 0)))
  in
  ignore (T.Dce.run f);
  let stores =
    Ssa.fold_instrs f
      (fun acc i -> if i.Ssa.op = Op.Store then acc + 1 else acc)
      0
  in
  check "store survives" true (stores = 1)

let test_simplify_collapses_empty_diamond () =
  let f =
    D.build_kernel ~name:"empty_diamond" ~params:[]
      (fun ctx _ ->
        let t = D.tid ctx in
        D.if_ ctx (D.slt ctx t (D.i32 1)) (fun () -> ()) (fun () -> ()))
  in
  ignore (T.Simplify_cfg.run f);
  ignore (T.Dce.run f);
  ignore (T.Simplify_cfg.run f);
  Verify.run_exn f;
  check "single block remains" true (List.length f.Ssa.blocks_list = 1)

let test_simplify_constant_branch () =
  let f =
    D.build_kernel ~name:"constbr" ~params:[ ("out", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let out = List.hd params in
        let r = D.local ctx ~name:"r" Types.I32 in
        D.if_ ctx (D.i1 true)
          (fun () -> D.set ctx r (D.i32 1))
          (fun () -> D.set ctx r (D.i32 2));
        D.store ctx (D.get ctx r) (D.gep ctx out (D.i32 0)))
  in
  ignore (T.Simplify_cfg.run f);
  ignore (T.Dce.run f);
  Verify.run_exn f;
  check "one block" true (List.length f.Ssa.blocks_list = 1);
  (* the surviving store must store 1 *)
  let stored =
    Ssa.fold_instrs f
      (fun acc i ->
        if i.Ssa.op = Op.Store then Some i.Ssa.operands.(0) else acc)
      None
  in
  check "store folded to 1" true
    (match stored with Some (Ssa.Int 1) -> true | _ -> false)

let test_if_convert_diamond () =
  let f = Testlib.diamond_func () in
  check "converted" true (T.Simplify_cfg.if_convert ~max_cost:20 f);
  Verify.run_exn f;
  let selects =
    Ssa.fold_instrs f
      (fun acc i -> if i.Ssa.op = Op.Select then acc + 1 else acc)
      0
  in
  check "select introduced" true (selects >= 1);
  check "flat cfg" true (List.length f.Ssa.blocks_list = 1)

let test_if_convert_refuses_stores () =
  let f =
    D.build_kernel ~name:"store_diamond"
      ~params:[ ("out", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let out = List.hd params in
        let t = D.tid ctx in
        D.if_ ctx
          (D.slt ctx t (D.i32 1))
          (fun () -> D.store ctx (D.i32 1) (D.gep ctx out t))
          (fun () -> D.store ctx (D.i32 2) (D.gep ctx out t)))
  in
  let n_blocks = List.length f.Ssa.blocks_list in
  check "not converted" false (T.Simplify_cfg.if_convert f);
  check "cfg unchanged" true (List.length f.Ssa.blocks_list = n_blocks)

let test_simplify_preserves_semantics () =
  (* random diamond program: simplify+dce must not change the output *)
  let kernel = Darm_kernels.Sb.sb1 in
  let transform f =
    ignore (T.Simplify_cfg.run f);
    ignore (T.Constfold.run f);
    ignore (T.Dce.run f)
  in
  ignore (Testlib.check_equivalence ~transform kernel ~block_size:64 ~n:128 ~seed:5)

let test_tail_merge_identical_diamond () =
  (* both arms store the same computation: tails must merge *)
  let f =
    D.build_kernel ~name:"tm" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        let g = D.gep ctx a t in
        D.if_ ctx
          (D.eq ctx (D.and_ ctx t (D.i32 1)) (D.i32 0))
          (fun () ->
            let v = D.load ctx g in
            D.store ctx (D.add ctx v (D.i32 1)) g)
          (fun () ->
            let v = D.load ctx g in
            D.store ctx (D.add ctx v (D.i32 1)) g))
  in
  let merges = T.Tail_merge.run f in
  Verify.run_exn f;
  check "merged" true (merges >= 1)

let test_tail_merge_rejects_different_code () =
  let f =
    D.build_kernel ~name:"tm2" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        let g = D.gep ctx a t in
        D.if_ ctx
          (D.eq ctx (D.and_ ctx t (D.i32 1)) (D.i32 0))
          (fun () -> D.store ctx (D.i32 1) g)
          (fun () -> D.store ctx (D.i32 2) g))
  in
  let merges = T.Tail_merge.run f in
  check "no merge for different stores" true (merges = 0)

let test_tail_merge_partial_suffix () =
  (* arms differ at the head but share the trailing store *)
  let f =
    D.build_kernel ~name:"tm3" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        let g = D.gep ctx a t in
        let r = D.local ctx ~name:"r" Types.I32 in
        D.if_ ctx
          (D.eq ctx (D.and_ ctx t (D.i32 1)) (D.i32 0))
          (fun () ->
            D.set ctx r (D.mul ctx t (D.i32 3));
            D.store ctx (D.i32 7) g)
          (fun () ->
            D.set ctx r (D.add ctx t (D.i32 9));
            D.store ctx (D.i32 7) g);
        D.store ctx (D.get ctx r) (D.gep ctx a (D.add ctx t (D.i32 64))))
  in
  let merges = T.Tail_merge.run f in
  Verify.run_exn f;
  check "partial merge" true (merges >= 1)

let test_tail_merge_preserves_semantics () =
  let transform f = ignore (T.Tail_merge.run f) in
  List.iter
    (fun kernel ->
      ignore
        (Testlib.check_equivalence ~transform kernel ~block_size:64 ~n:128
           ~seed:21))
    [ Darm_kernels.Sb.sb1; Darm_kernels.Sb.sb2; Darm_kernels.Sb.sb3 ]

let suites =
  [
    ( "transforms",
      [
        Alcotest.test_case "constfold basic" `Quick test_constfold_basic;
        Alcotest.test_case "constfold select" `Quick test_constfold_select;
        Alcotest.test_case "constfold div-by-zero" `Quick
          test_constfold_no_div_by_zero;
        Alcotest.test_case "dce removes dead" `Quick test_dce_removes_dead_pure;
        Alcotest.test_case "dce keeps stores" `Quick test_dce_keeps_stores;
        Alcotest.test_case "simplify empty diamond" `Quick
          test_simplify_collapses_empty_diamond;
        Alcotest.test_case "simplify constant branch" `Quick
          test_simplify_constant_branch;
        Alcotest.test_case "if-convert diamond" `Quick test_if_convert_diamond;
        Alcotest.test_case "if-convert refuses stores" `Quick
          test_if_convert_refuses_stores;
        Alcotest.test_case "simplify preserves semantics" `Quick
          test_simplify_preserves_semantics;
        Alcotest.test_case "tail merge identical diamond" `Quick
          test_tail_merge_identical_diamond;
        Alcotest.test_case "tail merge rejects different" `Quick
          test_tail_merge_rejects_different_code;
        Alcotest.test_case "tail merge partial suffix" `Quick
          test_tail_merge_partial_suffix;
        Alcotest.test_case "tail merge preserves semantics" `Quick
          test_tail_merge_preserves_semantics;
      ] );
  ]
