(* Region machinery unit tests: edge splitting, exit/entry
   normalization, subgraph cut points, side closure — on hand-built and
   DSL-built CFGs. *)

open Darm_ir
module A = Darm_analysis
module C = Darm_core
module D = Dsl

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* entry --c--> (l | r) both -> join(phi) -> ret *)
let diamond_with_phi () =
  let f = Ssa.mk_func "d" [] in
  let e = Ssa.mk_block "entry"
  and l = Ssa.mk_block "l"
  and r = Ssa.mk_block "r"
  and j = Ssa.mk_block "join" in
  List.iter (Ssa.append_block f) [ e; l; r; j ];
  let tid = Ssa.mk_instr Op.Thread_idx [||] [||] Types.I32 in
  Ssa.append_instr e tid;
  let c =
    Ssa.mk_instr (Op.Icmp Op.Islt) [| Ssa.Instr tid; Ssa.Int 3 |] [||] Types.I1
  in
  Ssa.append_instr e c;
  Ssa.append_instr e
    (Ssa.mk_instr Op.Condbr [| Ssa.Instr c |] [| l; r |] Types.Void);
  Ssa.append_instr l (Ssa.mk_instr Op.Br [||] [| j |] Types.Void);
  Ssa.append_instr r (Ssa.mk_instr Op.Br [||] [| j |] Types.Void);
  let phi = Ssa.mk_instr Op.Phi [||] [||] Types.I32 in
  Ssa.append_instr j phi;
  Ssa.set_phi_incoming phi [ (Ssa.Int 1, l); (Ssa.Int 2, r) ];
  Ssa.append_instr j (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
  (f, e, l, r, j, phi)

let test_split_edges_merges_phis () =
  let f, _, l, r, j, phi = diamond_with_phi () in
  let q = C.Simplify_region.split_edges f ~srcs:[ l; r ] ~dest:j ~name:"q" in
  Verify.run_exn f;
  (* j's phi now has a single incoming, from q; q holds the merged phi *)
  check_int "one incoming" 1 (List.length (Ssa.phi_incoming phi));
  (match Ssa.phi_incoming phi with
  | [ (Ssa.Instr merged, blk) ] ->
      check "incoming from q" true (blk.Ssa.bid = q.Ssa.bid);
      check "merged is a phi" true (merged.Ssa.op = Op.Phi);
      check_int "merged has both values" 2
        (List.length (Ssa.phi_incoming merged))
  | _ -> Alcotest.fail "expected a single merged incoming");
  (* l and r now branch to q *)
  check "l rewired" true
    (match Ssa.successors l with [ s ] -> s.Ssa.bid = q.Ssa.bid | _ -> false);
  check "r rewired" true
    (match Ssa.successors r with [ s ] -> s.Ssa.bid = q.Ssa.bid | _ -> false)

let test_split_single_edge_keeps_value () =
  let f, _, l, _, j, phi = diamond_with_phi () in
  ignore (C.Simplify_region.split_edges f ~srcs:[ l ] ~dest:j ~name:"q");
  Verify.run_exn f;
  (* the value stays inline: no merged phi needed for one source *)
  check_int "still two incomings" 2 (List.length (Ssa.phi_incoming phi));
  check "value 1 preserved" true
    (List.exists
       (fun (v, _) -> Ssa.value_equal v (Ssa.Int 1))
       (Ssa.phi_incoming phi))

let detect_first f =
  let dvg = A.Divergence.compute f in
  let dt = A.Domtree.compute f in
  let pdt = A.Domtree.compute_post f in
  ( List.fold_left
      (fun acc b ->
        match acc with
        | Some _ -> acc
        | None -> C.Region.detect f dvg dt pdt b)
      None
      (A.Cfg.reachable_blocks f),
    pdt )

(* multi-subgraph side: two sequential if-thens inside the true path *)
let multi_subgraph_func () =
  D.build_kernel ~name:"multi" ~params:[ ("a", Types.Ptr Types.Global) ]
    (fun ctx params ->
      let a = List.hd params in
      let tid = D.tid ctx in
      let g = D.gep ctx a tid in
      let side () =
        D.if_then ctx (D.slt ctx (D.load ctx g) (D.i32 10)) (fun () ->
            D.store ctx (D.i32 1) g);
        D.if_then ctx (D.sgt ctx (D.load ctx g) (D.i32 90)) (fun () ->
            D.store ctx (D.i32 2) g)
      in
      D.if_ ctx (D.eq ctx (D.and_ ctx tid (D.i32 1)) (D.i32 0)) side side)

let test_cut_points_order () =
  let f = multi_subgraph_func () in
  let r, pdt = detect_first f in
  match r with
  | None -> Alcotest.fail "no region"
  | Some r ->
      let ts = C.Region.true_subgraphs pdt r in
      (* two if-then regions and their join blocks *)
      check "at least 3 subgraphs" true (List.length ts >= 3);
      (* first subgraph entry is the true successor *)
      check "first entry is t_succ" true
        ((List.hd ts).C.Region.sg_entry.Ssa.bid = r.C.Region.r_t_succ.Ssa.bid);
      (* subgraphs are disjoint and ordered: each entry post-dominates the
         previous entry *)
      let rec ordered = function
        | a :: (b :: _ as rest) ->
            A.Domtree.dominates pdt b.C.Region.sg_entry a.C.Region.sg_entry
            && ordered rest
        | _ -> true
      in
      check "post-dominance order" true (ordered ts);
      (* block sets are disjoint *)
      let seen = Hashtbl.create 16 in
      List.iter
        (fun sg ->
          List.iter
            (fun b ->
              check "disjoint subgraphs" false (Hashtbl.mem seen b.Ssa.bid);
              Hashtbl.replace seen b.Ssa.bid ())
            (C.Region.subgraph_block_list sg))
        ts

let test_normalize_exit_dedicated_block () =
  let f = multi_subgraph_func () in
  let r, pdt = detect_first f in
  match r with
  | None -> Alcotest.fail "no region"
  | Some r ->
      let sg = List.hd (C.Region.true_subgraphs pdt r) in
      let sg = C.Simplify_region.normalize_exit f sg in
      Verify.run_exn f;
      let src = sg.C.Region.sg_exit_src in
      check "exit src is dedicated" true
        ((Ssa.terminator src).Ssa.op = Op.Br);
      check "exit src in subgraph" true (C.Region.in_subgraph sg src);
      check_int "single exit edge" 1
        (List.length (C.Simplify_region.exit_sources sg))

let test_normalize_entry_splits_condbr_pred () =
  let f = multi_subgraph_func () in
  let r, pdt = detect_first f in
  match r with
  | None -> Alcotest.fail "no region"
  | Some r ->
      let sg = List.hd (C.Region.true_subgraphs pdt r) in
      let sg = C.Simplify_region.normalize_exit f sg in
      let _, pre = C.Simplify_region.normalize_entry f sg in
      Verify.run_exn f;
      (* the region entry ends in condbr, so a fresh pre block must have
         been inserted, ending in an unconditional branch *)
      check "pre is unconditional" true ((Ssa.terminator pre).Ssa.op = Op.Br);
      check "pre is not the region entry" true
        (pre.Ssa.bid <> r.C.Region.r_entry.Ssa.bid)

let test_region_sides_exclude_exit () =
  let f = multi_subgraph_func () in
  let r, _ = detect_first f in
  match r with
  | None -> Alcotest.fail "no region"
  | Some r ->
      check "exit not in true side" false
        (List.exists
           (fun b -> b.Ssa.bid = r.C.Region.r_exit.Ssa.bid)
           r.C.Region.r_t_side);
      check "entry not in sides" false
        (List.exists
           (fun b -> b.Ssa.bid = r.C.Region.r_entry.Ssa.bid)
           (r.C.Region.r_t_side @ r.C.Region.r_f_side))

let test_isomorphism_rejects_swapped_arms () =
  (* same shapes but with the conditional arms swapped: the edge-ordered
     isomorphism must still match entry-to-entry (condbr arms correspond
     positionally), so a T-side if-then whose *false* arm leaves cannot
     match an F-side if-then whose *true* arm leaves *)
  let f =
    D.build_kernel ~name:"swapped" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        let g = D.gep ctx a tid in
        D.if_ ctx
          (D.eq ctx (D.and_ ctx tid (D.i32 1)) (D.i32 0))
          (fun () ->
            D.if_then ctx (D.slt ctx (D.load ctx g) (D.i32 10)) (fun () ->
                D.store ctx (D.i32 1) g))
          (fun () ->
            (* if_ with an empty then-side: the store is on the false arm *)
            D.if_ ctx
              (D.slt ctx (D.load ctx g) (D.i32 10))
              (fun () -> ())
              (fun () -> D.store ctx (D.i32 1) g)))
  in
  let r, pdt = detect_first f in
  match r with
  | None -> Alcotest.fail "no region"
  | Some r -> (
      let ts = C.Region.true_subgraphs pdt r in
      let fs = C.Region.false_subgraphs pdt r in
      let st = List.hd ts and sf = List.hd fs in
      (* sizes differ (2 vs 3 blocks) or the match fails on arm order;
         either way the pair must be rejected *)
      match C.Isomorphism.match_subgraphs st sf with
      | None -> ()
      | Some _ ->
          check "sizes happen to match" true
            (C.Region.subgraph_size st = C.Region.subgraph_size sf))

let suites =
  [
    ( "regions",
      [
        Alcotest.test_case "split_edges merges phis" `Quick
          test_split_edges_merges_phis;
        Alcotest.test_case "split single edge" `Quick
          test_split_single_edge_keeps_value;
        Alcotest.test_case "cut-point order" `Quick test_cut_points_order;
        Alcotest.test_case "normalize_exit" `Quick
          test_normalize_exit_dedicated_block;
        Alcotest.test_case "normalize_entry" `Quick
          test_normalize_entry_splits_condbr_pred;
        Alcotest.test_case "sides exclude entry/exit" `Quick
          test_region_sides_exclude_exit;
        Alcotest.test_case "isomorphism arm order" `Quick
          test_isomorphism_rejects_swapped_arms;
      ] );
  ]
