(* The SIMT simulator: basic execution, reconvergence, barriers,
   metrics. *)

open Darm_ir
module D = Dsl
module Sim = Darm_sim.Simulator
module Memory = Darm_sim.Memory
module Metrics = Darm_sim.Metrics

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_simple ?(grid = 1) ?(block = 64) f args global =
  Sim.run f ~args ~global { Sim.grid_dim = grid; block_dim = block }

let test_copy_kernel () =
  let f =
    D.build_kernel ~name:"copy"
      ~params:[ ("src", Types.Ptr Types.Global); ("dst", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let src, dst =
          match params with [ s; d ] -> (s, d) | _ -> assert false
        in
        let gid = D.add ctx (D.mul ctx (D.bid ctx) (D.bdim ctx)) (D.tid ctx) in
        D.store ctx (D.load ctx (D.gep ctx src gid)) (D.gep ctx dst gid))
  in
  let n = 128 in
  let g = Memory.create ~space:Memory.Sp_global (2 * n) in
  let input = Array.init n (fun i -> i * 3) in
  let src = Memory.alloc_of_int_array g input in
  let dst = Memory.alloc g n in
  let _ = run_simple ~grid:2 ~block:64 f [| src; dst |] g in
  Alcotest.(check (array int)) "copied" input (Memory.read_int_array g dst n)

let test_divergent_diamond_semantics () =
  let f = Testlib.diamond_func () in
  let n = 64 in
  let g = Memory.create ~space:Memory.Sp_global (2 * n) in
  let input = Array.init n (fun i -> if i mod 2 = 0 then i else -i) in
  let src = Memory.alloc_of_int_array g input in
  let dst = Memory.alloc g n in
  let m = run_simple ~block:n f [| src; dst |] g in
  let expected =
    Array.map (fun v -> if v < 0 then -v * 2 else v * 3) input
  in
  Alcotest.(check (array int)) "diamond" expected (Memory.read_int_array g dst n);
  check "warp split recorded" true (m.Metrics.divergent_branches > 0);
  check "reconvergence recorded" true (m.Metrics.reconvergences > 0)

let test_uniform_branch_no_split () =
  let f = Testlib.diamond_func () in
  let n = 64 in
  let g = Memory.create ~space:Memory.Sp_global (2 * n) in
  (* all positive: every lane takes the same side *)
  let input = Array.init n (fun i -> i + 1) in
  let src = Memory.alloc_of_int_array g input in
  let dst = Memory.alloc g n in
  let m = run_simple ~block:n f [| src; dst |] g in
  check_int "no divergence" 0 m.Metrics.divergent_branches

let test_divergence_costs_cycles () =
  let f1 = Testlib.diamond_func () in
  let f2 = Testlib.diamond_func () in
  let n = 64 in
  let mk input =
    let g = Memory.create ~space:Memory.Sp_global (2 * n) in
    let src = Memory.alloc_of_int_array g input in
    let dst = Memory.alloc g n in
    (g, src, dst)
  in
  let g1, s1, d1 = mk (Array.init n (fun i -> i + 1)) in
  let g2, s2, d2 = mk (Array.init n (fun i -> if i mod 2 = 0 then i + 1 else -i - 1)) in
  let m_uniform = run_simple ~block:n f1 [| s1; d1 |] g1 in
  let m_divergent = run_simple ~block:n f2 [| s2; d2 |] g2 in
  check "divergence is slower" true
    (m_divergent.Metrics.cycles > m_uniform.Metrics.cycles)

let test_alu_utilization_drops_under_divergence () =
  let f1 = Testlib.diamond_func () in
  let f2 = Testlib.diamond_func () in
  let n = 64 in
  let mk input =
    let g = Memory.create ~space:Memory.Sp_global (2 * n) in
    let src = Memory.alloc_of_int_array g input in
    let dst = Memory.alloc g n in
    (g, src, dst)
  in
  let g1, s1, d1 = mk (Array.init n (fun i -> i + 1)) in
  let g2, s2, d2 = mk (Array.init n (fun i -> if i mod 2 = 0 then i + 1 else -i - 1)) in
  let m_u = run_simple ~block:n f1 [| s1; d1 |] g1 in
  let m_d = run_simple ~block:n f2 [| s2; d2 |] g2 in
  check "utilization drops" true
    (Metrics.alu_utilization m_d ~warp_size:64
    < Metrics.alu_utilization m_u ~warp_size:64)

let test_loop_execution () =
  (* out[tid] = sum(0..tid) *)
  let f =
    D.build_kernel ~name:"sumloop" ~params:[ ("out", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let out = List.hd params in
        let t = D.tid ctx in
        let acc = D.local ctx ~name:"acc" Types.I32 in
        D.set ctx acc (D.i32 0);
        D.for_up ctx ~from:(D.i32 0) ~until:t (fun iv ->
            D.set ctx acc (D.add ctx (D.get ctx acc) iv));
        D.store ctx (D.get ctx acc) (D.gep ctx out t))
  in
  let n = 32 in
  let g = Memory.create ~space:Memory.Sp_global n in
  let out = Memory.alloc g n in
  let _ = run_simple ~block:n f [| out |] g in
  let expected = Array.init n (fun i -> i * (i - 1) / 2) in
  Alcotest.(check (array int)) "sums" expected (Memory.read_int_array g out n)

let test_shared_memory_and_barrier () =
  (* reverse within a block through shared memory *)
  let bs = 64 in
  let f =
    D.build_kernel ~name:"reverse" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        let s = D.shared_array ctx bs in
        D.store ctx (D.load ctx (D.gep ctx a t)) (D.gep ctx s t);
        D.sync ctx;
        let rev = D.sub ctx (D.i32 (bs - 1)) t in
        D.store ctx (D.load ctx (D.gep ctx s rev)) (D.gep ctx a t))
  in
  let g = Memory.create ~space:Memory.Sp_global bs in
  let input = Array.init bs (fun i -> i) in
  let a = Memory.alloc_of_int_array g input in
  let m = run_simple ~block:bs f [| a |] g in
  let expected = Array.init bs (fun i -> bs - 1 - i) in
  Alcotest.(check (array int)) "reversed" expected (Memory.read_int_array g a bs);
  check "barrier counted" true (m.Metrics.barriers > 0);
  check "shared memory counted" true (m.Metrics.mem_shared > 0)

let test_cross_warp_barrier () =
  (* two warps exchange through shared memory: block 128, warp 64 *)
  let bs = 128 in
  let f =
    D.build_kernel ~name:"xwarp" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        let s = D.shared_array ctx bs in
        D.store ctx (D.load ctx (D.gep ctx a t)) (D.gep ctx s t);
        D.sync ctx;
        let partner = D.xor ctx t (D.i32 64) in
        D.store ctx (D.load ctx (D.gep ctx s partner)) (D.gep ctx a t))
  in
  let g = Memory.create ~space:Memory.Sp_global bs in
  let input = Array.init bs (fun i -> i * 7) in
  let a = Memory.alloc_of_int_array g input in
  let _ = run_simple ~block:bs f [| a |] g in
  let expected = Array.init bs (fun i -> (i lxor 64) * 7) in
  Alcotest.(check (array int)) "exchanged" expected
    (Memory.read_int_array g a bs)

let test_partial_warp () =
  (* block smaller than the warp: inactive lanes must not store *)
  let f =
    D.build_kernel ~name:"partial" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        D.store ctx (D.i32 1) (D.gep ctx a t))
  in
  let g = Memory.create ~space:Memory.Sp_global 64 in
  let a = Memory.alloc_of_int_array g (Array.make 64 0) in
  let _ = run_simple ~block:16 f [| a |] g in
  let out = Memory.read_int_array g a 64 in
  check "first 16 set" true (Array.for_all (fun v -> v = 1) (Array.sub out 0 16));
  check "rest untouched" true
    (Array.for_all (fun v -> v = 0) (Array.sub out 16 48))

let test_oob_load_faults () =
  let f =
    D.build_kernel ~name:"oob" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        ignore (D.load ctx (D.gep ctx a (D.i32 999999))))
  in
  let g = Memory.create ~space:Memory.Sp_global 4 in
  let a = Memory.alloc g 4 in
  (try
     ignore (run_simple ~block:1 f [| a |] g);
     Alcotest.fail "expected a fault"
   with Memory.Fault _ -> ())

let test_div_by_zero_traps () =
  let f =
    D.build_kernel ~name:"divz" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        let v = D.load ctx (D.gep ctx a t) in
        D.store ctx (D.sdiv ctx (D.i32 100) v) (D.gep ctx a t))
  in
  let g = Memory.create ~space:Memory.Sp_global 4 in
  let a = Memory.alloc_of_int_array g [| 1; 0; 2; 4 |] in
  (try
     ignore (run_simple ~block:4 f [| a |] g);
     Alcotest.fail "expected a trap"
   with Sim.Sim_error _ -> ())

let test_nested_divergence () =
  (* nested divergent branches exercise the SIMT stack depth > 2 *)
  let f =
    D.build_kernel ~name:"nestdiv" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        let r = D.local ctx ~name:"r" Types.I32 in
        D.set ctx r (D.i32 0);
        D.if_ ctx
          (D.eq ctx (D.and_ ctx t (D.i32 1)) (D.i32 0))
          (fun () ->
            D.if_ ctx
              (D.eq ctx (D.and_ ctx t (D.i32 2)) (D.i32 0))
              (fun () -> D.set ctx r (D.i32 1))
              (fun () -> D.set ctx r (D.i32 2)))
          (fun () ->
            D.if_ ctx
              (D.eq ctx (D.and_ ctx t (D.i32 2)) (D.i32 0))
              (fun () -> D.set ctx r (D.i32 3))
              (fun () -> D.set ctx r (D.i32 4)));
        D.store ctx (D.get ctx r) (D.gep ctx a t))
  in
  let n = 64 in
  let g = Memory.create ~space:Memory.Sp_global n in
  let a = Memory.alloc g n in
  let _ = run_simple ~block:n f [| a |] g in
  let expected =
    Array.init n (fun t ->
        if t land 1 = 0 then if t land 2 = 0 then 1 else 2
        else if t land 2 = 0 then 3
        else 4)
  in
  Alcotest.(check (array int)) "nested" expected (Memory.read_int_array g a n)

(* memory-coalescing transaction counters *)
let test_coalescing_counters () =
  let build stride name =
    D.build_kernel ~name ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        let idx = D.mul ctx t (D.i32 stride) in
        D.store ctx t (D.gep ctx a idx))
  in
  let run f size =
    let g = Memory.create ~space:Memory.Sp_global size in
    let a = Memory.alloc g size in
    run_simple ~block:64 f [| a |] g
  in
  let m1 = run (build 1 "coalesced") 64 in
  let m8 = run (build 8 "strided") 512 in
  (* unit stride: 64 lanes over 64 cells = 2 transactions of 32;
     stride 8: 64 lanes spread over 512 cells = 16 transactions *)
  Alcotest.(check int) "coalesced txns" 2 m1.Metrics.global_transactions;
  Alcotest.(check int) "strided txns" 16 m8.Metrics.global_transactions;
  check "ratio orders correctly" true
    (Metrics.transactions_per_access m1 < Metrics.transactions_per_access m8)

(* shared-memory bank conflicts *)
let test_bank_conflicts () =
  let build stride name =
    D.build_kernel ~name ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        let s = D.shared_array ctx 2048 in
        let idx = D.mul ctx t (D.i32 stride) in
        D.store ctx t (D.gep ctx s idx);
        D.sync ctx;
        D.store ctx (D.load ctx (D.gep ctx s idx)) (D.gep ctx a t))
  in
  let run f =
    let g = Memory.create ~space:Memory.Sp_global 64 in
    let a = Memory.alloc g 64 in
    run_simple ~block:64 f [| a |] g
  in
  let m1 = run (build 1 "unit_stride") in
  let m32 = run (build 32 "bank_clash") in
  (* unit stride hits every bank once; stride 32 puts all 64 lanes in
     one bank *)
  Alcotest.(check int) "no conflicts at stride 1" 0 m1.Metrics.bank_conflicts;
  check "stride 32 conflicts heavily" true (m32.Metrics.bank_conflicts > 50)

(* execution trace shows divergent serialization *)
let test_trace_shows_serialization () =
  let f = Testlib.diamond_func () in
  let events = ref [] in
  let config =
    { Sim.default_config with trace = Some (fun s -> events := s :: !events) }
  in
  let n = 64 in
  let g = Memory.create ~space:Memory.Sp_global (2 * n) in
  let input = Array.init n (fun i -> if i mod 2 = 0 then i + 1 else -i - 1) in
  let src = Memory.alloc_of_int_array g input in
  let dst = Memory.alloc g n in
  ignore (Sim.run ~config f ~args:[| src; dst |] ~global:g
            { Sim.grid_dim = 1; block_dim = n });
  let events = List.rev !events in
  (* both arms of the diamond must appear, each with a 32-lane mask *)
  let has sub = List.exists (fun e ->
      let n = String.length e and m = String.length sub in
      let rec go i = i + m <= n && (String.sub e i m = sub || go (i+1)) in
      go 0) events
  in
  check "true arm traced" true (has "if.then");
  check "false arm traced" true (has "if.else");
  check "half masks" true (has "mask=32")

let suites =
  [
    ( "simulator",
      [
        Alcotest.test_case "copy kernel" `Quick test_copy_kernel;
        Alcotest.test_case "divergent diamond" `Quick
          test_divergent_diamond_semantics;
        Alcotest.test_case "uniform branch no split" `Quick
          test_uniform_branch_no_split;
        Alcotest.test_case "divergence costs cycles" `Quick
          test_divergence_costs_cycles;
        Alcotest.test_case "alu utilization drop" `Quick
          test_alu_utilization_drops_under_divergence;
        Alcotest.test_case "loop execution" `Quick test_loop_execution;
        Alcotest.test_case "shared memory + barrier" `Quick
          test_shared_memory_and_barrier;
        Alcotest.test_case "cross-warp barrier" `Quick test_cross_warp_barrier;
        Alcotest.test_case "partial warp" `Quick test_partial_warp;
        Alcotest.test_case "oob load faults" `Quick test_oob_load_faults;
        Alcotest.test_case "div by zero traps" `Quick test_div_by_zero_traps;
        Alcotest.test_case "nested divergence" `Quick test_nested_divergence;
        Alcotest.test_case "coalescing counters" `Quick (fun () ->
            test_coalescing_counters ());
        Alcotest.test_case "bank conflicts" `Quick (fun () ->
            test_bank_conflicts ());
        Alcotest.test_case "trace serialization" `Quick (fun () ->
            test_trace_shows_serialization ());
      ] );
  ]
