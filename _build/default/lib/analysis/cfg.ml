(** CFG traversal utilities shared by the analyses. *)

open Darm_ir.Ssa

(** Blocks reachable from the entry, in depth-first preorder. *)
let reachable_blocks (f : func) : block list =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  let rec dfs b =
    if not (Hashtbl.mem seen b.bid) then begin
      Hashtbl.replace seen b.bid ();
      acc := b :: !acc;
      List.iter dfs (successors b)
    end
  in
  dfs (entry_block f);
  List.rev !acc

(** Reverse postorder over reachable blocks — the canonical iteration
    order for forward dataflow. *)
let reverse_postorder (f : func) : block list =
  let seen = Hashtbl.create 32 in
  let post = ref [] in
  let rec dfs b =
    if not (Hashtbl.mem seen b.bid) then begin
      Hashtbl.replace seen b.bid ();
      List.iter dfs (successors b);
      post := b :: !post
    end
  in
  dfs (entry_block f);
  !post

(** Blocks reachable from [src] without entering any block in [stop]
    (the [stop] blocks themselves are not included).  [src] is included
    (unless it is in [stop]). *)
let reachable_without (src : block) ~(stop : block list) : block list =
  let stop_ids = List.map (fun b -> b.bid) stop in
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec dfs b =
    if (not (List.mem b.bid stop_ids)) && not (Hashtbl.mem seen b.bid) then begin
      Hashtbl.replace seen b.bid ();
      acc := b :: !acc;
      List.iter dfs (successors b)
    end
  in
  dfs src;
  List.rev !acc

(** Remove blocks not reachable from the entry; incoming phi entries from
    removed blocks are dropped. *)
let remove_unreachable (f : func) : bool =
  let reach = reachable_blocks f in
  let keep = Hashtbl.create 32 in
  List.iter (fun b -> Hashtbl.replace keep b.bid ()) reach;
  let dead = List.filter (fun b -> not (Hashtbl.mem keep b.bid)) f.blocks_list in
  if dead = [] then false
  else begin
    List.iter
      (fun live ->
        List.iter (fun d -> phi_remove_incoming live ~pred:d) dead)
      reach;
    List.iter (fun d -> remove_block f d) dead;
    true
  end

(** All blocks ending in [Ret]. *)
let exit_blocks (f : func) : block list =
  List.filter
    (fun b -> has_terminator b && (terminator b).op = Darm_ir.Op.Ret)
    f.blocks_list
