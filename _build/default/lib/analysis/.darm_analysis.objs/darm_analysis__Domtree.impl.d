lib/analysis/domtree.ml: Array Cfg Darm_ir Hashtbl List
