lib/analysis/latency.mli: Darm_ir Ssa Types
