lib/analysis/loops.ml: Cfg Darm_ir Domtree Hashtbl List
