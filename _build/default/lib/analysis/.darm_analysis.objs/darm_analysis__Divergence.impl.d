lib/analysis/divergence.ml: Array Buffer Cfg Darm_ir Domtree Hashtbl List Op Printer Printf Types
