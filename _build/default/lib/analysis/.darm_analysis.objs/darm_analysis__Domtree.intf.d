lib/analysis/domtree.mli: Darm_ir Ssa
