lib/analysis/cfg.ml: Darm_ir Hashtbl List
