lib/analysis/divergence.mli: Darm_ir Domtree Ssa
