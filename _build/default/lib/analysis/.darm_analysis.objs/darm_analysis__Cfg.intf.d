lib/analysis/cfg.mli: Darm_ir Ssa
