lib/analysis/loops.mli: Darm_ir Hashtbl Ssa
