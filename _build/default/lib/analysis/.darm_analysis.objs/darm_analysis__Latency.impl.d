lib/analysis/latency.ml: Array Darm_ir List Op Ssa Types
