(** CFG traversal utilities shared by the analyses. *)

open Darm_ir

(** Blocks reachable from the entry, in depth-first preorder. *)
val reachable_blocks : Ssa.func -> Ssa.block list

(** Reverse postorder over reachable blocks — the canonical iteration
    order for forward dataflow. *)
val reverse_postorder : Ssa.func -> Ssa.block list

(** Blocks reachable from [src] without entering any block in [stop]
    (the [stop] blocks themselves are not included).  [src] is included
    unless it is in [stop]. *)
val reachable_without : Ssa.block -> stop:Ssa.block list -> Ssa.block list

(** Remove blocks not reachable from the entry; incoming phi entries
    from removed blocks are dropped.  Returns [true] when anything was
    removed. *)
val remove_unreachable : Ssa.func -> bool

(** All blocks ending in [Ret]. *)
val exit_blocks : Ssa.func -> Ssa.block list
