(** Static per-instruction latency model.

    Used in two places with the same numbers, exactly as in the paper:
    the melding profitability heuristics FP_B / FP_S / FP_I
    (compile-time cost model) and the SIMT simulator's cycle accounting
    (runtime cost model).

    The values are issue-cost approximations in the spirit of the AMD
    Vega ISA: cheap integer ALU, moderately expensive multiplies and
    floating point, LDS (shared) accesses an order of magnitude above
    ALU, and global/flat memory several times beyond that.  The paper's
    observation that "melding shared memory instructions is more
    beneficial than melding ALU instructions" falls directly out of this
    ordering. *)

open Darm_ir

type config = {
  alu : int;
  mul : int;
  div : int;
  falu : int;
  fdiv : int;
  cast : int;
  select : int;
  branch : int;
  shared_mem : int;
  global_mem : int;
  flat_mem : int;
  barrier : int;
  intrinsic : int;
}

val default : config

(** Address space actually accessed by a memory instruction, from the
    static type of its pointer operand. *)
val mem_space : Ssa.instr -> Types.addrspace option

val mem_latency : config -> Types.addrspace -> int

val of_instr : config -> Ssa.instr -> int

(** Canonical instruction-class key: opcode plus address space for
    memory operations (a shared and a global load have very different
    costs).  Used for diagnostics; the melding profitability uses plain
    opcodes as its class set Q, see {!Darm_core.Profitability}. *)
val class_of : Ssa.instr -> string

(** Total static latency of a block — lat(b) in the paper. *)
val block_latency : config -> Ssa.block -> int
