(** Static per-instruction latency model.

    Used in two places with the same numbers, exactly as in the paper:
    - the melding profitability heuristics FP_B / FP_S / FP_I
      (compile-time cost model), and
    - the SIMT simulator's cycle accounting (runtime cost model).

    The values are issue-cost approximations in the spirit of the AMD
    Vega ISA: cheap integer ALU, moderately expensive multiplies and
    floating point, LDS (shared) accesses an order of magnitude above
    ALU, and global/flat memory several times beyond that.  The paper's
    observation that "melding shared memory instructions is more
    beneficial than melding ALU instructions" falls directly out of this
    ordering. *)

open Darm_ir

type config = {
  alu : int;
  mul : int;
  div : int;
  falu : int;
  fdiv : int;
  cast : int;
  select : int;
  branch : int;
  shared_mem : int;
  global_mem : int;
  flat_mem : int;
  barrier : int;
  intrinsic : int;
}

let default : config =
  {
    alu = 1;
    mul = 4;
    div = 16;
    falu = 4;
    fdiv = 16;
    cast = 2;
    select = 1;
    branch = 2;
    shared_mem = 24;
    global_mem = 96;
    flat_mem = 100;
    barrier = 8;
    intrinsic = 1;
  }

(** Address space actually accessed by a memory instruction, from the
    static type of its pointer operand. *)
let mem_space (i : Ssa.instr) : Types.addrspace option =
  let ptr_operand =
    match i.op with
    | Op.Load -> Some i.operands.(0)
    | Op.Store -> Some i.operands.(1)
    | _ -> None
  in
  match ptr_operand with
  | None -> None
  | Some p -> (
      match Ssa.value_ty p with Types.Ptr a -> Some a | _ -> None)

let mem_latency (c : config) = function
  | Types.Global -> c.global_mem
  | Types.Shared -> c.shared_mem
  | Types.Flat -> c.flat_mem

let of_instr (c : config) (i : Ssa.instr) : int =
  match i.op with
  | Op.Ibin (Op.Mul) -> c.mul
  | Op.Ibin (Op.Sdiv | Op.Srem) -> c.div
  | Op.Ibin _ -> c.alu
  | Op.Fbin (Op.Fdiv) -> c.fdiv
  | Op.Fbin _ -> c.falu
  | Op.Icmp _ | Op.Fcmp _ | Op.Not -> c.alu
  | Op.Select -> c.select
  | Op.Gep -> c.alu
  | Op.Load | Op.Store -> (
      match mem_space i with
      | Some a -> mem_latency c a
      | None -> c.global_mem)
  | Op.Phi -> 0 (* resolved on edges; no issue slot *)
  | Op.Br | Op.Condbr -> c.branch
  | Op.Ret -> 1
  | Op.Thread_idx | Op.Block_idx | Op.Block_dim | Op.Grid_dim -> c.intrinsic
  | Op.Syncthreads -> c.barrier
  | Op.Alloc_shared _ -> 0
  | Op.Sitofp | Op.Fptosi | Op.Addrspace_cast -> c.cast

(** Canonical instruction-class key for the opcode-frequency profile used
    by FP_B: opcode plus address space for memory operations, so a shared
    load and a global load count as different classes (they have very
    different costs). *)
let class_of (i : Ssa.instr) : string =
  match i.op with
  | Op.Load | Op.Store -> (
      let base = Op.to_string i.op in
      match mem_space i with
      | Some a -> base ^ "." ^ Types.addrspace_to_string a
      | None -> base)
  | op -> Op.to_string op

(** Total static latency of a block — [lat(b)] in the paper. *)
let block_latency (c : config) (b : Ssa.block) : int =
  List.fold_left (fun acc i -> acc + of_instr c i) 0 b.instrs
