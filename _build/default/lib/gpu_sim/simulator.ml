(** SIMT execution engine with IPDOM-based reconvergence.

    Models the execution substrate of the paper's evaluation platform
    (an AMD Vega-class GPU) at the fidelity the evaluation needs:

    - threads are grouped into warps ([warp_size] lanes, default 64 like
      an AMD wavefront) that issue instructions in lock-step under an
      active mask;
    - each warp maintains a SIMT reconvergence stack: a divergent
      conditional branch pushes one frame per taken arm with the
      reconvergence point set to the branch block's immediate
      post-dominator, and the parent frame resumes there once both arms
      have drained — the IPDOM reconvergence scheme of §I/§II;
    - every issued instruction costs its {!Darm_analysis.Latency} value
      in cycles {e per issue}, so a divergent region pays for both arms
      serially while a melded region pays once — the first-order effect
      behind all of the paper's speedups;
    - [syncthreads] suspends a warp until every warp of its block
      reaches the barrier;
    - the counters of {!Metrics} correspond to the rocprof counters used
      in §VI (ALU utilization, vector/LDS/flat memory instructions).

    The interpreter is also the correctness oracle: tests run the same
    kernel before and after melding and require bit-identical memory. *)

open Darm_ir
open Darm_ir.Ssa
open Memory

type config = {
  warp_size : int;
  latency : Darm_analysis.Latency.config;
  max_cycles_per_warp : int;  (** runaway-loop guard *)
  trace : (string -> unit) option;
      (** called once per executed basic block with
          "block=<name> warp=<tid_base> mask=<popcount>"; shows the
          serialization order of divergent execution *)
}

let default_config : config =
  {
    warp_size = 64;
    latency = Darm_analysis.Latency.default;
    max_cycles_per_warp = 400_000_000;
    trace = None;
  }

exception Sim_error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Sim_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Per-function static context *)

type fctx = {
  fn : func;
  ipdom : (int, block option) Hashtbl.t;  (** block id -> reconvergence pt *)
  shared_layout : (int, int) Hashtbl.t;   (** alloc_shared id -> offset *)
  shared_size : int;
}

let prepare (fn : func) : fctx =
  Verify.run_exn fn;
  let pdt = Darm_analysis.Domtree.compute_post fn in
  let ipdom = Hashtbl.create 32 in
  List.iter
    (fun b -> Hashtbl.replace ipdom b.bid (Darm_analysis.Domtree.idom pdt b))
    fn.blocks_list;
  let shared_layout = Hashtbl.create 4 in
  let off = ref 0 in
  iter_instrs fn (fun i ->
      match i.op with
      | Op.Alloc_shared n ->
          Hashtbl.replace shared_layout i.id !off;
          off := !off + n
      | _ -> ());
  { fn; ipdom; shared_layout; shared_size = !off }

(* ------------------------------------------------------------------ *)
(* Warp state *)

type frame = {
  mutable pc : block;
  mutable ip : int;  (** resume index into [pc.instrs] (for barriers) *)
  rpc : block option;  (** pop when [pc] reaches this block *)
  mask : bool array;
}

type warp_status = Running | At_barrier | Finished

type warp = {
  tid_base : int;  (** thread index (within block) of lane 0 *)
  regs : (int, rv array) Hashtbl.t;
  pred : block option array;  (** per-lane predecessor block *)
  mutable stack : frame list;
  mutable status : warp_status;
}

type launch_ctx = {
  cfg : config;
  fctx : fctx;
  args : rv array;
  global : Memory.t;
  shared : Memory.t;
  block_idx : int;
  block_dim : int;
  grid_dim : int;
  metrics : Metrics.t;
}

(* ------------------------------------------------------------------ *)
(* Value evaluation *)

let reg_file (w : warp) (cfg : config) (i : instr) : rv array =
  match Hashtbl.find_opt w.regs i.id with
  | Some a -> a
  | None ->
      let a = Array.make cfg.warp_size Rundef in
      Hashtbl.replace w.regs i.id a;
      a

let eval_value (ctx : launch_ctx) (w : warp) (lane : int) (v : value) : rv =
  match v with
  | Int n -> Rint n
  | Bool b -> Rbool b
  | Float x -> Rfloat x
  | Undef _ -> Rundef
  | Param p -> ctx.args.(p.pindex)
  | Instr i -> (
      match Hashtbl.find_opt w.regs i.id with
      | Some a -> a.(lane)
      | None -> Rundef)

let as_int (what : string) = function
  | Rint n -> n
  | Rbool true -> 1
  | Rbool false -> 0
  | Rundef -> errf "%s: use of undef integer" what
  | Rfloat _ | Rptr _ -> errf "%s: expected integer" what

let as_bool (what : string) = function
  | Rbool b -> b
  | Rint n -> n <> 0
  | Rundef -> errf "%s: use of undef condition" what
  | Rfloat _ | Rptr _ -> errf "%s: expected boolean" what

let as_float (what : string) = function
  | Rfloat x -> x
  | Rint n -> float_of_int n
  | Rundef -> errf "%s: use of undef float" what
  | Rbool _ | Rptr _ -> errf "%s: expected float" what

let as_ptr (what : string) = function
  | Rptr (s, o) -> (s, o)
  | Rundef -> errf "%s: dereference of undef pointer" what
  | Rint _ | Rbool _ | Rfloat _ -> errf "%s: expected pointer" what

let mem_for (ctx : launch_ctx) = function
  | Sp_global -> ctx.global
  | Sp_shared -> ctx.shared

let eval_ibin (op : Op.ibinop) (x : int) (y : int) : int =
  match op with
  | Op.Add -> x + y
  | Op.Sub -> x - y
  | Op.Mul -> x * y
  | Op.Sdiv -> if y = 0 then errf "sdiv by zero" else x / y
  | Op.Srem -> if y = 0 then errf "srem by zero" else x mod y
  | Op.And -> x land y
  | Op.Or -> x lor y
  | Op.Xor -> x lxor y
  | Op.Shl -> (x lsl (y land 31)) land 0xFFFFFFFF
  | Op.Lshr -> (x land 0xFFFFFFFF) lsr (y land 31)
  | Op.Ashr -> x asr (y land 31)
  | Op.Smin -> min x y
  | Op.Smax -> max x y

let eval_fbin (op : Op.fbinop) (x : float) (y : float) : float =
  match op with
  | Op.Fadd -> x +. y
  | Op.Fsub -> x -. y
  | Op.Fmul -> x *. y
  | Op.Fdiv -> x /. y
  | Op.Fmin -> Float.min x y
  | Op.Fmax -> Float.max x y

let eval_icmp (p : Op.icmp_pred) (x : int) (y : int) : bool =
  match p with
  | Op.Ieq -> x = y
  | Op.Ine -> x <> y
  | Op.Islt -> x < y
  | Op.Isle -> x <= y
  | Op.Isgt -> x > y
  | Op.Isge -> x >= y

let eval_fcmp (p : Op.fcmp_pred) (x : float) (y : float) : bool =
  match p with
  | Op.Foeq -> x = y
  | Op.Fone -> x <> y
  | Op.Folt -> x < y
  | Op.Fole -> x <= y
  | Op.Fogt -> x > y
  | Op.Foge -> x >= y

(* ------------------------------------------------------------------ *)
(* Cost accounting *)

let account (ctx : launch_ctx) (i : instr) (mask : bool array) : unit =
  let m = ctx.metrics in
  let lat = Darm_analysis.Latency.of_instr ctx.cfg.latency i in
  m.cycles <- m.cycles + lat;
  m.instructions <- m.instructions + 1;
  if Op.is_alu i.op then begin
    let active = Array.fold_left (fun a b -> if b then a + 1 else a) 0 mask in
    m.alu_issues <- m.alu_issues + 1;
    m.alu_active_lanes <- m.alu_active_lanes + active
  end;
  if Op.is_memory i.op then begin
    match value_ty (if i.op = Op.Store then i.operands.(1) else i.operands.(0))
    with
    | Types.Ptr Types.Global -> m.mem_global <- m.mem_global + 1
    | Types.Ptr Types.Shared -> m.mem_shared <- m.mem_shared + 1
    | Types.Ptr Types.Flat -> m.mem_flat <- m.mem_flat + 1
    | _ -> ()
  end

(* Memory coalescing: a warp-wide global access is served in 32-cell
   transactions; the counter records how many distinct segments the
   active lanes touch (rocprof's memory-transaction counters).  Shared
   accesses instead hit 32 word-interleaved banks; lanes touching
   different addresses in the same bank serialize (bank conflicts). *)
let account_transactions (ctx : launch_ctx) (w : warp) (i : instr)
    (mask : bool array) ~(ptr_index : int) : unit =
  let ptr_ty = value_ty i.operands.(ptr_index) in
  match ptr_ty with
  | Types.Ptr (Types.Global | Types.Flat | Types.Shared) ->
      let segments = Hashtbl.create 8 in
      (* the 32 LDS banks serve the wavefront in 32-lane phases *)
      let phase = ref 0 in
      while !phase < ctx.cfg.warp_size do
        let banks : (int, int list) Hashtbl.t = Hashtbl.create 8 in
        for lane = !phase to min (ctx.cfg.warp_size - 1) (!phase + 31) do
          if mask.(lane) then
            match eval_value ctx w lane i.operands.(ptr_index) with
            | Rptr (Sp_global, off) -> Hashtbl.replace segments (off / 32) ()
            | Rptr (Sp_shared, off) ->
                let bank = off land 31 in
                let cur =
                  Option.value ~default:[] (Hashtbl.find_opt banks bank)
                in
                if not (List.mem off cur) then
                  Hashtbl.replace banks bank (off :: cur)
            | _ -> ()
        done;
        let worst_bank =
          Hashtbl.fold (fun _ offs acc -> max acc (List.length offs)) banks 0
        in
        if worst_bank > 1 then
          ctx.metrics.bank_conflicts <-
            ctx.metrics.bank_conflicts + (worst_bank - 1);
        phase := !phase + 32
      done;
      let n = Hashtbl.length segments in
      if n > 0 then begin
        ctx.metrics.global_transactions <-
          ctx.metrics.global_transactions + n;
        ctx.metrics.global_accesses <- ctx.metrics.global_accesses + 1
      end
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Instruction execution *)

let popcount (mask : bool array) =
  Array.fold_left (fun a b -> if b then a + 1 else a) 0 mask

(** Execute all phis of the block simultaneously (two-phase read/commit)
    for the active lanes of [frame]. *)
let exec_phis (ctx : launch_ctx) (w : warp) (frame : frame) : unit =
  let ph = phis frame.pc in
  if ph <> [] then begin
    let staged =
      List.map
        (fun phi ->
          let values =
            Array.init ctx.cfg.warp_size (fun lane ->
                if frame.mask.(lane) then
                  match w.pred.(lane) with
                  | None -> Rundef
                  | Some pb -> (
                      match phi_incoming_for phi pb with
                      | Some v -> eval_value ctx w lane v
                      | None ->
                          errf "phi in %s has no incoming for pred %s"
                            frame.pc.bname pb.bname)
                else Rundef)
          in
          (phi, values))
        ph
    in
    List.iter
      (fun (phi, values) ->
        let file = reg_file w ctx.cfg phi in
        Array.iteri
          (fun lane v -> if frame.mask.(lane) then file.(lane) <- v)
          values)
      staged
  end

exception Poison

(** Execute one non-phi, non-terminator instruction under the mask.

    Undef ({e poison}) semantics follow LLVM and real hardware: pure ALU
    operations on undef produce undef (melding executes gap instructions
    speculatively, and their discarded wrong-side results may depend on
    undef entry-phi values); dereferencing an undef pointer, dividing by
    an undef value or branching on an undef condition is a genuine
    error and traps. *)
let exec_instr (ctx : launch_ctx) (w : warp) (frame : frame) (i : instr) :
    unit =
  account ctx i frame.mask;
  let fail_context msg =
    errf "%s (instr %d, op %s, block %s)" msg i.id (Op.to_string i.op)
      (match i.parent with Some b -> b.bname | None -> "?")
  in
  let mask = frame.mask in
  let per_lane (f : int -> rv) : unit =
    let file = reg_file w ctx.cfg i in
    for lane = 0 to ctx.cfg.warp_size - 1 do
      if mask.(lane) then
        file.(lane) <- (try f lane with Poison -> Rundef)
    done
  in
  (* strict operand fetch for operations that must not see undef *)
  let opv_strict k lane =
    match eval_value ctx w lane i.operands.(k) with
    | Rundef ->
        fail_context
          (Printf.sprintf "operand %d is undef in lane %d" k lane)
    | v -> v
  in
  (* poisoning operand fetch for pure ALU operations *)
  let opv k lane =
    match eval_value ctx w lane i.operands.(k) with
    | Rundef -> raise Poison
    | v -> v
  in
  ignore opv_strict;
  match i.op with
  | Op.Ibin ((Op.Sdiv | Op.Srem) as op) ->
      per_lane (fun l ->
          Rint
            (eval_ibin op
               (as_int "ibin" (opv_strict 0 l))
               (as_int "ibin" (opv_strict 1 l))))
  | Op.Ibin op ->
      per_lane (fun l ->
          Rint (eval_ibin op (as_int "ibin" (opv 0 l)) (as_int "ibin" (opv 1 l))))
  | Op.Fbin op ->
      per_lane (fun l ->
          Rfloat
            (eval_fbin op (as_float "fbin" (opv 0 l))
               (as_float "fbin" (opv 1 l))))
  | Op.Icmp p ->
      per_lane (fun l ->
          Rbool
            (eval_icmp p (as_int "icmp" (opv 0 l)) (as_int "icmp" (opv 1 l))))
  | Op.Fcmp p ->
      per_lane (fun l ->
          Rbool
            (eval_fcmp p
               (as_float "fcmp" (opv 0 l))
               (as_float "fcmp" (opv 1 l))))
  | Op.Not -> per_lane (fun l -> Rbool (not (as_bool "not" (opv 0 l))))
  | Op.Select ->
      per_lane (fun l ->
          (* the not-taken arm may be undef without poisoning the result *)
          if as_bool "select" (opv 0 l) then
            eval_value ctx w l i.operands.(1)
          else eval_value ctx w l i.operands.(2))
  | Op.Load ->
      account_transactions ctx w i mask ~ptr_index:0;
      per_lane (fun l ->
          let sp, off = as_ptr "load" (opv_strict 0 l) in
          Memory.read (mem_for ctx sp) off)
  | Op.Store ->
      account_transactions ctx w i mask ~ptr_index:1;
      for lane = 0 to ctx.cfg.warp_size - 1 do
        if mask.(lane) then begin
          let v = eval_value ctx w lane i.operands.(0) in
          let sp, off = as_ptr "store" (opv_strict 1 lane) in
          Memory.write (mem_for ctx sp) off v
        end
      done
  | Op.Gep ->
      per_lane (fun l ->
          let sp, off = as_ptr "gep" (opv 0 l) in
          Rptr (sp, off + as_int "gep" (opv 1 l)))
  | Op.Thread_idx -> per_lane (fun l -> Rint (w.tid_base + l))
  | Op.Block_idx -> per_lane (fun _ -> Rint ctx.block_idx)
  | Op.Block_dim -> per_lane (fun _ -> Rint ctx.block_dim)
  | Op.Grid_dim -> per_lane (fun _ -> Rint ctx.grid_dim)
  | Op.Alloc_shared _ ->
      let off = Hashtbl.find ctx.fctx.shared_layout i.id in
      per_lane (fun _ -> Rptr (Sp_shared, off))
  | Op.Sitofp -> per_lane (fun l -> Rfloat (float_of_int (as_int "sitofp" (opv 0 l))))
  | Op.Fptosi -> per_lane (fun l -> Rint (int_of_float (as_float "fptosi" (opv 0 l))))
  | Op.Addrspace_cast -> per_lane (fun l -> opv 0 l)
  | Op.Syncthreads | Op.Phi | Op.Br | Op.Condbr | Op.Ret ->
      errf "exec_instr: %s handled elsewhere" (Op.to_string i.op)

(* ------------------------------------------------------------------ *)
(* Control flow *)

let set_pred_for_mask (w : warp) (mask : bool array) (b : block) : unit =
  Array.iteri (fun lane m -> if m then w.pred.(lane) <- Some b) mask

(** Execute the terminator of the top frame, updating the stack. *)
let exec_terminator (ctx : launch_ctx) (w : warp) (frame : frame) (t : instr) :
    unit =
  account ctx t frame.mask;
  match t.op with
  | Op.Ret -> w.stack <- List.tl w.stack
  | Op.Br ->
      set_pred_for_mask w frame.mask frame.pc;
      frame.pc <- t.blocks.(0);
      frame.ip <- 0
  | Op.Condbr ->
      let tmask = Array.make ctx.cfg.warp_size false in
      let fmask = Array.make ctx.cfg.warp_size false in
      for lane = 0 to ctx.cfg.warp_size - 1 do
        if frame.mask.(lane) then
          if as_bool "condbr" (eval_value ctx w lane t.operands.(0)) then
            tmask.(lane) <- true
          else fmask.(lane) <- true
      done;
      let cur = frame.pc in
      let tcount = popcount tmask and fcount = popcount fmask in
      if fcount = 0 then begin
        set_pred_for_mask w frame.mask cur;
        frame.pc <- t.blocks.(0);
        frame.ip <- 0
      end
      else if tcount = 0 then begin
        set_pred_for_mask w frame.mask cur;
        frame.pc <- t.blocks.(1);
        frame.ip <- 0
      end
      else begin
        (* the warp splits: IPDOM reconvergence *)
        ctx.metrics.divergent_branches <- ctx.metrics.divergent_branches + 1;
        set_pred_for_mask w frame.mask cur;
        let rpc = Hashtbl.find ctx.fctx.ipdom cur.bid in
        let t_frame =
          { pc = t.blocks.(0); ip = 0; rpc; mask = tmask }
        in
        let f_frame =
          { pc = t.blocks.(1); ip = 0; rpc; mask = fmask }
        in
        match rpc with
        | Some r ->
            frame.pc <- r;
            frame.ip <- 0;
            w.stack <- t_frame :: f_frame :: w.stack
        | None ->
            (* no reconvergence point: both arms run to completion *)
            w.stack <- t_frame :: f_frame :: List.tl w.stack
      end
  | _ -> errf "exec_terminator: %s is not a terminator" (Op.to_string t.op)

(** Run the warp until it finishes or reaches a barrier. *)
let run_warp (ctx : launch_ctx) (w : warp) : unit =
  let budget = ref ctx.cfg.max_cycles_per_warp in
  let continue_ = ref true in
  while !continue_ do
    if !budget <= 0 then errf "cycle budget exhausted (runaway loop?)";
    match w.stack with
    | [] ->
        w.status <- Finished;
        continue_ := false
    | frame :: rest -> (
        match frame.rpc with
        | Some r when r.bid = frame.pc.bid ->
            (* reconverged: drop the frame, the parent resumes at r *)
            ctx.metrics.reconvergences <- ctx.metrics.reconvergences + 1;
            w.stack <- rest
        | _ ->
            (match ctx.cfg.trace with
            | Some emit when frame.ip = 0 ->
                emit
                  (Printf.sprintf "block=%s warp=%d mask=%d"
                     frame.pc.bname w.tid_base (popcount frame.mask))
            | _ -> ());
            if frame.ip = 0 then exec_phis ctx w frame;
            (* execute from the resume index *)
            let instrs = frame.pc.instrs in
            let n = List.length instrs in
            let rec exec_from k lst =
              match lst with
              | [] -> errf "block %s has no terminator" frame.pc.bname
              | i :: tl ->
                  if k < frame.ip || i.op = Op.Phi then exec_from (k + 1) tl
                  else if Op.is_terminator i.op then begin
                    exec_terminator ctx w frame i;
                    decr budget
                  end
                  else if i.op = Op.Syncthreads then begin
                    account ctx i frame.mask;
                    ctx.metrics.barriers <- ctx.metrics.barriers + 1;
                    if List.length w.stack > 1 then
                      errf "syncthreads in divergent control flow";
                    frame.ip <- k + 1;
                    w.status <- At_barrier
                  end
                  else begin
                    exec_instr ctx w frame i;
                    decr budget;
                    exec_from (k + 1) tl
                  end
            in
            ignore n;
            exec_from 0 instrs;
            if w.status = At_barrier then continue_ := false)
  done

(* ------------------------------------------------------------------ *)
(* Grid launch *)

type launch = { grid_dim : int; block_dim : int }

(** [run ?config fn ~args ~global launch] executes the kernel over the
    whole grid and returns the collected metrics.  [args] bind the
    function parameters positionally. *)
let run ?(config = default_config) (fn : func) ~(args : rv array)
    ~(global : Memory.t) (launch : launch) : Metrics.t =
  if List.length fn.params <> Array.length args then
    errf "kernel @%s expects %d arguments, got %d" fn.fname
      (List.length fn.params) (Array.length args);
  let fctx = prepare fn in
  let metrics = Metrics.create () in
  for block_idx = 0 to launch.grid_dim - 1 do
    let cycles_before = metrics.cycles in
    let shared =
      Memory.create ~space:Sp_shared (max fctx.shared_size 1)
    in
    let ctx =
      {
        cfg = config;
        fctx;
        args;
        global;
        shared;
        block_idx;
        block_dim = launch.block_dim;
        grid_dim = launch.grid_dim;
        metrics;
      }
    in
    let nwarps =
      (launch.block_dim + config.warp_size - 1) / config.warp_size
    in
    let warps =
      Array.init nwarps (fun wi ->
          let tid_base = wi * config.warp_size in
          let live = min config.warp_size (launch.block_dim - tid_base) in
          let mask = Array.init config.warp_size (fun l -> l < live) in
          {
            tid_base;
            regs = Hashtbl.create 64;
            pred = Array.make config.warp_size None;
            stack =
              [ { pc = entry_block fn; ip = 0; rpc = None; mask } ];
            status = Running;
          })
    in
    (* phase execution: run every warp to its next barrier or the end;
       release the barrier when all non-finished warps have reached it *)
    let all_done () =
      Array.for_all (fun w -> w.status = Finished) warps
    in
    let guard = ref 0 in
    while not (all_done ()) do
      incr guard;
      if !guard > 1_000_000 then errf "barrier deadlock";
      Array.iter
        (fun w -> if w.status = Running then run_warp ctx w)
        warps;
      (* all running warps have now either finished or hit a barrier *)
      let at_barrier =
        Array.exists (fun w -> w.status = At_barrier) warps
      in
      if at_barrier then
        Array.iter
          (fun w -> if w.status = At_barrier then w.status <- Running)
          warps
    done;
    metrics.block_cycles <-
      (metrics.cycles - cycles_before) :: metrics.block_cycles
  done;
  metrics
