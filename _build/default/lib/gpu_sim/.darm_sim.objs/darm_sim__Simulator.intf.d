lib/gpu_sim/simulator.mli: Darm_analysis Darm_ir Memory Metrics Op Ssa
