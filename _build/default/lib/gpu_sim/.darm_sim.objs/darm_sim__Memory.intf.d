lib/gpu_sim/memory.mli:
