lib/gpu_sim/memory.ml: Array Printf
