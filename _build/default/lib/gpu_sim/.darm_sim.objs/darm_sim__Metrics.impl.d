lib/gpu_sim/metrics.ml: Array List Printf
