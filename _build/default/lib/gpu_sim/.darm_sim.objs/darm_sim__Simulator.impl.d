lib/gpu_sim/simulator.ml: Array Darm_analysis Darm_ir Float Hashtbl I32 List Memory Metrics Op Printf Types Verify
