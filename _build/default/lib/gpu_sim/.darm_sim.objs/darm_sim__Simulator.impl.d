lib/gpu_sim/simulator.ml: Array Darm_analysis Darm_ir Float Hashtbl List Memory Metrics Op Option Printf Types Verify
