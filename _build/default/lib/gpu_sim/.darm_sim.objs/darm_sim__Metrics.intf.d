lib/gpu_sim/metrics.mli:
