(** Runtime values and memories of the SIMT simulator.

    Pointers are (concrete space, offset) pairs; the {e static} pointer
    type may be [Flat] after melding, but at runtime every pointer knows
    which memory it addresses — exactly like flat addressing on real
    GPUs. *)

type space = Sp_global | Sp_shared

type rv =
  | Rint of int
  | Rbool of bool
  | Rfloat of float
  | Rptr of space * int
  | Rundef

exception Fault of string

let faultf fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

(** A linear memory with bump allocation (the launcher owns one global
    memory; each thread block owns one shared memory). *)
type t = { cells : rv array; mutable brk : int; space : space }

let create ~(space : space) (size : int) : t =
  { cells = Array.make size Rundef; brk = 0; space }

let size (m : t) = Array.length m.cells

(** Allocate [n] cells, returning the base pointer. *)
let alloc (m : t) (n : int) : rv =
  if m.brk + n > Array.length m.cells then
    faultf "out of memory: requested %d cells at brk %d (size %d)" n m.brk
      (Array.length m.cells);
  let base = m.brk in
  m.brk <- m.brk + n;
  Rptr (m.space, base)

let read (m : t) (off : int) : rv =
  if off < 0 || off >= Array.length m.cells then
    faultf "load out of bounds: offset %d (size %d)" off (Array.length m.cells)
  else m.cells.(off)

let write (m : t) (off : int) (v : rv) : unit =
  if off < 0 || off >= Array.length m.cells then
    faultf "store out of bounds: offset %d (size %d)" off
      (Array.length m.cells)
  else m.cells.(off) <- v

(* Convenience conversions for test harnesses *)

let to_int = function
  | Rint n -> n
  | Rbool true -> 1
  | Rbool false -> 0
  | Rfloat _ | Rptr _ | Rundef -> raise (Fault "expected an integer value")

let to_float = function
  | Rfloat x -> x
  | Rint n -> float_of_int n
  | Rbool _ | Rptr _ | Rundef -> raise (Fault "expected a float value")

(** Copy an OCaml int array into memory at a freshly allocated buffer. *)
let alloc_of_int_array (m : t) (a : int array) : rv =
  let ptr = alloc m (Array.length a) in
  (match ptr with
  | Rptr (_, base) ->
      Array.iteri (fun k v -> m.cells.(base + k) <- Rint v) a
  | _ -> assert false);
  ptr

let alloc_of_float_array (m : t) (a : float array) : rv =
  let ptr = alloc m (Array.length a) in
  (match ptr with
  | Rptr (_, base) ->
      Array.iteri (fun k v -> m.cells.(base + k) <- Rfloat v) a
  | _ -> assert false);
  ptr

(** Read back [n] cells from [ptr] as an int array. *)
let read_int_array (m : t) (ptr : rv) (n : int) : int array =
  match ptr with
  | Rptr (_, base) -> Array.init n (fun k -> to_int (read m (base + k)))
  | _ -> raise (Fault "read_int_array: not a pointer")

let read_float_array (m : t) (ptr : rv) (n : int) : float array =
  match ptr with
  | Rptr (_, base) -> Array.init n (fun k -> to_float (read m (base + k)))
  | _ -> raise (Fault "read_float_array: not a pointer")
