(** Runtime values and memories of the SIMT simulator.

    Pointers are (concrete space, offset) pairs; the static pointer type
    may be flat after melding, but at runtime every pointer knows which
    memory it addresses — exactly like flat addressing on real GPUs. *)

type space = Sp_global | Sp_shared

type rv =
  | Rint of int
  | Rbool of bool
  | Rfloat of float
  | Rptr of space * int
  | Rundef

exception Fault of string

(** A linear memory with bump allocation (the launcher owns one global
    memory; each thread block owns one shared memory). *)
type t

val create : space:space -> int -> t
val size : t -> int

(** Allocate [n] cells, returning the base pointer. *)
val alloc : t -> int -> rv

val read : t -> int -> rv
val write : t -> int -> rv -> unit

val to_int : rv -> int
val to_float : rv -> float

val alloc_of_int_array : t -> int array -> rv
val alloc_of_float_array : t -> float array -> rv
val read_int_array : t -> rv -> int -> int array
val read_float_array : t -> rv -> int -> float array
