(** IR well-formedness and SSA verifier.

    Run after every transformation in the test suites; a passing
    verifier means the function can be printed, parsed back, simulated
    and further transformed.  Checks: block/terminator structure, phi
    incoming lists matching the predecessor sets, and def-use dominance
    (including per-edge dominance for phi operands). *)

type error = { msg : string }

(** [run f] returns the list of well-formedness violations in [f]; an
    empty list means the function verifies. *)
val run : Ssa.func -> error list

exception Invalid_ir of string

(** Like {!run} but raises {!Invalid_ir} with a readable report (the
    violations plus the offending IR) on the first failure. *)
val run_exn : Ssa.func -> unit
