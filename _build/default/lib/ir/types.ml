(** First-class types of the DARM IR.

    The IR is a small, typed, SSA-form intermediate representation modelled
    on the subset of LLVM-IR that the DARM/CFM melding transformation
    manipulates.  Pointer types carry an address space, mirroring the GPU
    memory hierarchy: [Global] is device memory (LLVM addrspace 1), [Shared]
    is on-chip scratchpad / LDS (addrspace 3) and [Flat] is the generic
    address space (addrspace 0) obtained when pointers of distinct spaces
    are merged, e.g. by a [select]. *)

type addrspace =
  | Global  (** off-chip device memory *)
  | Shared  (** per-block scratchpad (LDS / CUDA shared memory) *)
  | Flat    (** generic address space; may alias global or shared *)

type ty =
  | I1              (** booleans / branch conditions *)
  | I32             (** 32-bit integers *)
  | F32             (** 32-bit floats *)
  | Ptr of addrspace
  | Void            (** result type of stores, branches, barriers *)

let addrspace_equal (a : addrspace) (b : addrspace) = a = b

let equal (a : ty) (b : ty) = a = b

(** [join_ptr a b] is the address space of a pointer that may point into
    either [a] or [b]; distinct concrete spaces degrade to [Flat]. *)
let join_ptr (a : addrspace) (b : addrspace) : addrspace =
  if addrspace_equal a b then a else Flat

let addrspace_to_string = function
  | Global -> "global"
  | Shared -> "shared"
  | Flat -> "flat"

let to_string = function
  | I1 -> "i1"
  | I32 -> "i32"
  | F32 -> "f32"
  | Ptr a -> Printf.sprintf "ptr(%s)" (addrspace_to_string a)
  | Void -> "void"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let is_pointer = function Ptr _ -> true | I1 | I32 | F32 | Void -> false
