(** Low-level, position-based IR builder.

    A builder holds a current insertion block; each [ins_*] function
    appends one instruction there and returns its result {!Ssa.value}.
    Types are inferred and checked at construction time, so malformed
    instructions fail fast instead of surfacing later in the verifier. *)

open Ssa

type t = {
  func : func;
  mutable cursor : block option;
}

let create (f : func) : t = { func = f; cursor = None }

let func (b : t) = b.func

(** Create a fresh block named [name] (uniquified), append it to the
    function and return it.  Does not move the cursor. *)
let add_block (b : t) (name : string) : block =
  let blk = mk_block name in
  append_block b.func blk;
  blk

let position_at_end (b : t) (blk : block) = b.cursor <- Some blk

let insertion_block (b : t) : block =
  match b.cursor with
  | Some blk -> blk
  | None -> invalid_arg "Builder: no insertion block set"

let insert (b : t) (i : instr) : value =
  append_instr (insertion_block b) i;
  Instr i

let ins_ibin (b : t) (op : Op.ibinop) (x : value) (y : value) : value =
  if not (Types.equal (value_ty x) Types.I32 && Types.equal (value_ty y) Types.I32)
  then invalid_arg ("Builder.ins_ibin: operands must be i32 for "
                    ^ Op.ibinop_to_string op);
  insert b (mk_instr (Op.Ibin op) [| x; y |] [||] Types.I32)

let ins_fbin (b : t) (op : Op.fbinop) (x : value) (y : value) : value =
  if not (Types.equal (value_ty x) Types.F32 && Types.equal (value_ty y) Types.F32)
  then invalid_arg "Builder.ins_fbin: operands must be f32";
  insert b (mk_instr (Op.Fbin op) [| x; y |] [||] Types.F32)

let ins_icmp (b : t) (p : Op.icmp_pred) (x : value) (y : value) : value =
  if not (Types.equal (value_ty x) (value_ty y)) then
    invalid_arg "Builder.ins_icmp: operand types differ";
  insert b (mk_instr (Op.Icmp p) [| x; y |] [||] Types.I1)

let ins_fcmp (b : t) (p : Op.fcmp_pred) (x : value) (y : value) : value =
  insert b (mk_instr (Op.Fcmp p) [| x; y |] [||] Types.I1)

let ins_not (b : t) (x : value) : value =
  if not (Types.equal (value_ty x) Types.I1) then
    invalid_arg "Builder.ins_not: operand must be i1";
  insert b (mk_instr Op.Not [| x |] [||] Types.I1)

let ins_select (b : t) (c : value) (tv : value) (fv : value) : value =
  if not (Types.equal (value_ty c) Types.I1) then
    invalid_arg "Builder.ins_select: condition must be i1";
  let ty =
    match value_ty tv, value_ty fv with
    | Types.Ptr a, Types.Ptr b2 -> Types.Ptr (Types.join_ptr a b2)
    | ta, tb when Types.equal ta tb -> ta
    | _ -> invalid_arg "Builder.ins_select: arm types incompatible"
  in
  insert b (mk_instr Op.Select [| c; tv; fv |] [||] ty)

let ins_load (b : t) (ptr : value) : value =
  (match value_ty ptr with
  | Types.Ptr _ -> ()
  | _ -> invalid_arg "Builder.ins_load: operand must be a pointer");
  insert b (mk_instr Op.Load [| ptr |] [||] Types.I32)

(** Load producing a float; address spaces are untyped w.r.t. element
    type, the kernel author chooses the view. *)
let ins_load_f (b : t) (ptr : value) : value =
  (match value_ty ptr with
  | Types.Ptr _ -> ()
  | _ -> invalid_arg "Builder.ins_load_f: operand must be a pointer");
  insert b (mk_instr Op.Load [| ptr |] [||] Types.F32)

let ins_store (b : t) (v : value) (ptr : value) : value =
  (match value_ty ptr with
  | Types.Ptr _ -> ()
  | _ -> invalid_arg "Builder.ins_store: destination must be a pointer");
  insert b (mk_instr Op.Store [| v; ptr |] [||] Types.Void)

let ins_gep (b : t) (ptr : value) (idx : value) : value =
  let space =
    match value_ty ptr with
    | Types.Ptr a -> a
    | _ -> invalid_arg "Builder.ins_gep: base must be a pointer"
  in
  if not (Types.equal (value_ty idx) Types.I32) then
    invalid_arg "Builder.ins_gep: index must be i32";
  insert b (mk_instr Op.Gep [| ptr; idx |] [||] (Types.Ptr space))

(** Create an (initially empty) phi of type [ty] at the start of the
    current block. *)
let ins_phi (b : t) (ty : Types.ty) : instr =
  let i = mk_instr Op.Phi [||] [||] ty in
  let blk = insertion_block b in
  let ps, rest = List.partition (fun x -> x.op = Op.Phi) blk.instrs in
  i.parent <- Some blk;
  blk.instrs <- ps @ (i :: rest);
  i

let ins_br (b : t) (dest : block) : unit =
  ignore (insert b (mk_instr Op.Br [||] [| dest |] Types.Void))

let ins_condbr (b : t) (c : value) (t_dest : block) (f_dest : block) : unit =
  if not (Types.equal (value_ty c) Types.I1) then
    invalid_arg "Builder.ins_condbr: condition must be i1";
  ignore (insert b (mk_instr Op.Condbr [| c |] [| t_dest; f_dest |] Types.Void))

let ins_ret (b : t) : unit = ignore (insert b (mk_instr Op.Ret [||] [||] Types.Void))

let ins_thread_idx (b : t) : value =
  insert b (mk_instr Op.Thread_idx [||] [||] Types.I32)

let ins_block_idx (b : t) : value =
  insert b (mk_instr Op.Block_idx [||] [||] Types.I32)

let ins_block_dim (b : t) : value =
  insert b (mk_instr Op.Block_dim [||] [||] Types.I32)

let ins_grid_dim (b : t) : value =
  insert b (mk_instr Op.Grid_dim [||] [||] Types.I32)

let ins_syncthreads (b : t) : unit =
  ignore (insert b (mk_instr Op.Syncthreads [||] [||] Types.Void))

let ins_alloc_shared (b : t) (n : int) : value =
  if n <= 0 then invalid_arg "Builder.ins_alloc_shared: size must be positive";
  insert b (mk_instr (Op.Alloc_shared n) [||] [||] (Types.Ptr Types.Shared))

let ins_sitofp (b : t) (x : value) : value =
  insert b (mk_instr Op.Sitofp [| x |] [||] Types.F32)

let ins_fptosi (b : t) (x : value) : value =
  insert b (mk_instr Op.Fptosi [| x |] [||] Types.I32)

(* Convenience arithmetic wrappers *)

let add b x y = ins_ibin b Op.Add x y
let sub b x y = ins_ibin b Op.Sub x y
let mul b x y = ins_ibin b Op.Mul x y
let sdiv b x y = ins_ibin b Op.Sdiv x y
let srem b x y = ins_ibin b Op.Srem x y
let and_ b x y = ins_ibin b Op.And x y
let or_ b x y = ins_ibin b Op.Or x y
let xor b x y = ins_ibin b Op.Xor x y
let shl b x y = ins_ibin b Op.Shl x y
let lshr b x y = ins_ibin b Op.Lshr x y
let i32 n : value = Int n
let i1 v : value = Bool v
let f32 x : value = Float x
