(** Graphviz export of control-flow graphs.

    Each basic block becomes a record node listing its instructions;
    conditional-branch edges are labelled [T]/[F].  With
    [~highlight_divergent] the caller can mark blocks (e.g. those ending
    in divergent branches) to be filled — the rendering the paper's
    Figure 5 uses to walk through the melding stages. *)

open Ssa

let escape (s : string) : string =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '<' | '>' | '{' | '}' | '|' ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\l"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** [func_to_dot ?highlight f] renders the CFG as a dot digraph.
    [highlight] selects blocks drawn with a filled background. *)
let func_to_dot ?(highlight = fun (_ : block) -> false) (f : func) : string =
  let names = Printer.assign_names f in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" f.fname);
  Buffer.add_string buf "  node [shape=record, fontname=\"monospace\"];\n";
  List.iter
    (fun b ->
      let label =
        Printer.block_str names b ^ ":\n"
        ^ String.concat "\n"
            (List.map (fun i -> "  " ^ Printer.instr_str names i) b.instrs)
        ^ "\n"
      in
      let style =
        if highlight b then ", style=filled, fillcolor=lightsalmon" else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  b%d [label=\"%s\"%s];\n" b.bid (escape label)
           style))
    f.blocks_list;
  List.iter
    (fun b ->
      if has_terminator b then begin
        let t = terminator b in
        match t.op, Array.to_list t.blocks with
        | Op.Condbr, [ td; fd ] ->
            Buffer.add_string buf
              (Printf.sprintf "  b%d -> b%d [label=\"T\"];\n" b.bid td.bid);
            Buffer.add_string buf
              (Printf.sprintf "  b%d -> b%d [label=\"F\"];\n" b.bid fd.bid)
        | _, dests ->
            List.iter
              (fun d ->
                Buffer.add_string buf
                  (Printf.sprintf "  b%d -> b%d;\n" b.bid d.bid))
              dests
      end)
    f.blocks_list;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
