(** Parser for the textual IR format emitted by {!Printer} — a
    hand-written lexer and recursive-descent parser, so kernels can be
    stored in `.cir` files, inspected, edited and fed back through the
    pipeline (and so tests can round-trip printer output).

    Grammar (informal):
    {v
    module  := kernel*
    kernel  := "kernel" "@" NAME "(" param-list ")" "{" block+ "}"
    param   := "%" NAME ":" ty
    ty      := "i1" | "i32" | "f32" | "void" | "ptr" "(" space ")"
    block   := NAME ":" instr*
    instr   := ("%" NAME "=")? rhs
    value   := INT | FLOAT | "true" | "false" | "undef" ":" ty | "%" NAME
    v}

    Forward references are legal only where SSA allows them (phi
    operands); everything else must be defined textually before use,
    which the verifier re-checks afterwards. *)

open Ssa

type token =
  | T_ident of string   (* identifiers, opcodes, labels *)
  | T_local of string   (* %name *)
  | T_global of string  (* @name *)
  | T_int of int
  | T_float of float
  | T_lparen | T_rparen | T_lbrace | T_rbrace
  | T_lbracket | T_rbracket
  | T_colon | T_comma | T_equals
  | T_eof

exception Parse_error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '.' || c = '_' || c = '-'

let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let push t = toks := (t, !line) :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = ';' then begin
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '%' || c = '@' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      if !j = start then errf "line %d: empty name after '%c'" !line c;
      let name = String.sub src start (!j - start) in
      push (if c = '%' then T_local name else T_global name);
      i := !j
    end
    else if
      c = '-' || (c >= '0' && c <= '9')
    then begin
      (* integer, or a hex float in OCaml %h form: [-]0x1.8p+3, or nan/inf
         handled under identifiers *)
      let start = !i in
      let j = ref !i in
      if src.[!j] = '-' then incr j;
      while
        !j < n
        && (is_ident_char src.[!j] || src.[!j] = '+'
           || (src.[!j] = '-' && !j > start && (src.[!j - 1] = 'p' || src.[!j - 1] = 'P')))
      do
        incr j
      done;
      let text = String.sub src start (!j - start) in
      (match int_of_string_opt text with
      | Some v -> push (T_int v)
      | None -> (
          match float_of_string_opt text with
          | Some f -> push (T_float f)
          | None -> errf "line %d: bad numeric literal %S" !line text));
      i := !j
    end
    else if is_ident_char c then begin
      let start = !i in
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      let text = String.sub src start (!j - start) in
      (* identifiers that are float literals: nan, inf, infinity *)
      (match text with
      | "nan" -> push (T_float Float.nan)
      | "inf" | "infinity" -> push (T_float Float.infinity)
      | _ -> push (T_ident text));
      i := !j
    end
    else begin
      (match c with
      | '(' -> push T_lparen
      | ')' -> push T_rparen
      | '{' -> push T_lbrace
      | '}' -> push T_rbrace
      | '[' -> push T_lbracket
      | ']' -> push T_rbracket
      | ':' -> push T_colon
      | ',' -> push T_comma
      | '=' -> push T_equals
      | _ -> errf "line %d: unexpected character %C" !line c);
      incr i
    end;
    ignore (peek 0)
  done;
  List.rev ((T_eof, !line) :: !toks)

(* ------------------------------------------------------------------ *)
(* Parser state *)

type stream = { mutable toks : (token * int) list }

let peek (s : stream) : token =
  match s.toks with (t, _) :: _ -> t | [] -> T_eof

let line_of (s : stream) : int =
  match s.toks with (_, l) :: _ -> l | [] -> 0

let advance (s : stream) : token =
  match s.toks with
  | (t, _) :: rest ->
      s.toks <- rest;
      t
  | [] -> T_eof

let expect (s : stream) (t : token) (what : string) : unit =
  let got = advance s in
  if got <> t then errf "line %d: expected %s" (line_of s) what

let expect_ident (s : stream) (what : string) : string =
  match advance s with
  | T_ident x -> x
  | _ -> errf "line %d: expected %s" (line_of s) what

(* symbolic operands, resolved once the defining instruction exists *)
type sym =
  | S_int of int
  | S_float of float
  | S_bool of bool
  | S_undef of Types.ty
  | S_ref of string

let parse_ty (s : stream) : Types.ty =
  match advance s with
  | T_ident "i1" -> Types.I1
  | T_ident "i32" -> Types.I32
  | T_ident "f32" -> Types.F32
  | T_ident "void" -> Types.Void
  | T_ident "ptr" ->
      expect s T_lparen "'(' after ptr";
      let space =
        match expect_ident s "address space" with
        | "global" -> Types.Global
        | "shared" -> Types.Shared
        | "flat" -> Types.Flat
        | other -> errf "line %d: bad address space %s" (line_of s) other
      in
      expect s T_rparen "')' after address space";
      Types.Ptr space
  | _ -> errf "line %d: expected a type" (line_of s)

let parse_value (s : stream) : sym =
  match advance s with
  | T_int v -> S_int v
  | T_float f -> S_float f
  | T_ident "true" -> S_bool true
  | T_ident "false" -> S_bool false
  | T_ident "undef" ->
      expect s T_colon "':' after undef";
      S_undef (parse_ty s)
  | T_local name -> S_ref name
  | _ -> errf "line %d: expected a value" (line_of s)

(* parsed instruction awaiting operand/type resolution *)
type proto = {
  p_result : string option;
  p_op : Op.t;
  p_syms : sym list;
  p_labels : string list;  (* branch targets / phi incoming blocks *)
  p_ty : Types.ty option;  (* explicit type (phi, load) *)
  p_line : int;
}

let binop_of_name = function
  | "add" -> Some (Op.Ibin Op.Add)
  | "sub" -> Some (Op.Ibin Op.Sub)
  | "mul" -> Some (Op.Ibin Op.Mul)
  | "sdiv" -> Some (Op.Ibin Op.Sdiv)
  | "srem" -> Some (Op.Ibin Op.Srem)
  | "and" -> Some (Op.Ibin Op.And)
  | "or" -> Some (Op.Ibin Op.Or)
  | "xor" -> Some (Op.Ibin Op.Xor)
  | "shl" -> Some (Op.Ibin Op.Shl)
  | "lshr" -> Some (Op.Ibin Op.Lshr)
  | "ashr" -> Some (Op.Ibin Op.Ashr)
  | "smin" -> Some (Op.Ibin Op.Smin)
  | "smax" -> Some (Op.Ibin Op.Smax)
  | "fadd" -> Some (Op.Fbin Op.Fadd)
  | "fsub" -> Some (Op.Fbin Op.Fsub)
  | "fmul" -> Some (Op.Fbin Op.Fmul)
  | "fdiv" -> Some (Op.Fbin Op.Fdiv)
  | "fmin" -> Some (Op.Fbin Op.Fmin)
  | "fmax" -> Some (Op.Fbin Op.Fmax)
  | _ -> None

let icmp_pred_of_name = function
  | "eq" -> Op.Ieq
  | "ne" -> Op.Ine
  | "slt" -> Op.Islt
  | "sle" -> Op.Isle
  | "sgt" -> Op.Isgt
  | "sge" -> Op.Isge
  | p -> errf "unknown icmp predicate %s" p

let fcmp_pred_of_name = function
  | "oeq" -> Op.Foeq
  | "one" -> Op.Fone
  | "olt" -> Op.Folt
  | "ole" -> Op.Fole
  | "ogt" -> Op.Fogt
  | "oge" -> Op.Foge
  | p -> errf "unknown fcmp predicate %s" p

(* comma-separated values until end of operand list *)
let rec parse_value_list (s : stream) (acc : sym list) : sym list =
  let v = parse_value s in
  if peek s = T_comma then begin
    ignore (advance s);
    parse_value_list s (v :: acc)
  end
  else List.rev (v :: acc)

let parse_rhs (s : stream) (p_result : string option) : proto =
  let p_line = line_of s in
  let mk ?ty ?(syms = []) ?(labels = []) op =
    { p_result; p_op = op; p_syms = syms; p_labels = labels; p_ty = ty; p_line }
  in
  let opname = expect_ident s "an opcode" in
  match opname with
  | "phi" ->
      let ty = parse_ty s in
      let rec pairs acc_v acc_b =
        expect s T_lbracket "'[' in phi";
        let v = parse_value s in
        expect s T_comma "',' in phi pair";
        let b = expect_ident s "phi incoming label" in
        expect s T_rbracket "']' in phi";
        if peek s = T_comma then begin
          ignore (advance s);
          pairs (v :: acc_v) (b :: acc_b)
        end
        else (List.rev (v :: acc_v), List.rev (b :: acc_b))
      in
      let syms, labels = pairs [] [] in
      mk ~ty ~syms ~labels Op.Phi
  | "br" ->
      let l = expect_ident s "branch target" in
      mk ~labels:[ l ] Op.Br
  | "condbr" ->
      let c = parse_value s in
      expect s T_comma "',' after condbr condition";
      let lt = expect_ident s "true target" in
      expect s T_comma "',' between condbr targets";
      let lf = expect_ident s "false target" in
      mk ~syms:[ c ] ~labels:[ lt; lf ] Op.Condbr
  | "ret" -> mk Op.Ret
  | "store" ->
      let v = parse_value s in
      expect s T_comma "',' in store";
      let p = parse_value s in
      mk ~syms:[ v; p ] Op.Store
  | "load" ->
      let ty = parse_ty s in
      expect s T_comma "',' in load";
      let p = parse_value s in
      mk ~ty ~syms:[ p ] Op.Load
  | "icmp" ->
      let pred = icmp_pred_of_name (expect_ident s "icmp predicate") in
      mk ~syms:(parse_value_list s []) (Op.Icmp pred)
  | "fcmp" ->
      let pred = fcmp_pred_of_name (expect_ident s "fcmp predicate") in
      mk ~syms:(parse_value_list s []) (Op.Fcmp pred)
  | "not" -> mk ~syms:(parse_value_list s []) Op.Not
  | "select" -> mk ~syms:(parse_value_list s []) Op.Select
  | "gep" -> mk ~syms:(parse_value_list s []) Op.Gep
  | "thread.idx" -> mk Op.Thread_idx
  | "block.idx" -> mk Op.Block_idx
  | "block.dim" -> mk Op.Block_dim
  | "grid.dim" -> mk Op.Grid_dim
  | "syncthreads" -> mk Op.Syncthreads
  | "alloc.shared" -> (
      match advance s with
      | T_int sz -> mk (Op.Alloc_shared sz)
      | _ -> errf "line %d: alloc.shared needs a size" p_line)
  | "sitofp" -> mk ~syms:(parse_value_list s []) Op.Sitofp
  | "fptosi" -> mk ~syms:(parse_value_list s []) Op.Fptosi
  | "addrspace.cast" -> mk ~syms:(parse_value_list s []) Op.Addrspace_cast
  | other -> (
      match binop_of_name other with
      | Some op -> mk ~syms:(parse_value_list s []) op
      | None -> errf "line %d: unknown opcode %s" p_line other)

(* ------------------------------------------------------------------ *)
(* Function assembly *)

let infer_ty (op : Op.t) (operands : value array) (explicit : Types.ty option)
    : Types.ty =
  match explicit with
  | Some t -> t
  | None -> (
      match op with
      | Op.Ibin _ -> Types.I32
      | Op.Fbin _ -> Types.F32
      | Op.Icmp _ | Op.Fcmp _ | Op.Not -> Types.I1
      | Op.Select -> (
          match value_ty operands.(1), value_ty operands.(2) with
          | Types.Ptr a, Types.Ptr b -> Types.Ptr (Types.join_ptr a b)
          | t, _ -> t)
      | Op.Gep -> (
          match value_ty operands.(0) with
          | Types.Ptr a -> Types.Ptr a
          | _ -> errf "gep base is not a pointer")
      | Op.Thread_idx | Op.Block_idx | Op.Block_dim | Op.Grid_dim -> Types.I32
      | Op.Alloc_shared _ -> Types.Ptr Types.Shared
      | Op.Sitofp -> Types.F32
      | Op.Fptosi -> Types.I32
      | Op.Addrspace_cast -> Types.Ptr Types.Flat
      | Op.Store | Op.Br | Op.Condbr | Op.Ret | Op.Syncthreads -> Types.Void
      | Op.Phi | Op.Load -> errf "phi/load require an explicit type")

(* is the upcoming token sequence `IDENT :` (i.e. a new block label)? *)
let at_label (s : stream) : bool =
  match s.toks with
  | (T_ident _, _) :: (T_colon, _) :: _ -> true
  | _ -> false

let parse_kernel (s : stream) : func =
  expect s (T_ident "kernel") "'kernel'";
  let fname =
    match advance s with
    | T_global n -> n
    | _ -> errf "line %d: expected @name after 'kernel'" (line_of s)
  in
  expect s T_lparen "'(' opening the parameter list";
  let rec parse_params acc idx =
    match peek s with
    | T_rparen ->
        ignore (advance s);
        List.rev acc
    | T_local pname ->
        ignore (advance s);
        expect s T_colon "':' after parameter name";
        let pty = parse_ty s in
        let p = { pname; pty; pindex = idx } in
        if peek s = T_comma then ignore (advance s);
        parse_params (p :: acc) (idx + 1)
    | _ -> errf "line %d: expected a parameter or ')'" (line_of s)
  in
  let params = parse_params [] 0 in
  expect s T_lbrace "'{' opening the function body";
  (* parse blocks into protos *)
  let block_tbl : (string, block) Hashtbl.t = Hashtbl.create 16 in
  let block_order : block list ref = ref [] in
  let block_of name =
    match Hashtbl.find_opt block_tbl name with
    | Some b -> b
    | None ->
        let b = mk_block name in
        Hashtbl.replace block_tbl name b;
        b
  in
  let parsed : (block * proto list) list ref = ref [] in
  let rec parse_blocks () =
    match peek s with
    | T_rbrace -> ignore (advance s)
    | T_ident label when at_label s ->
        ignore (advance s);
        ignore (advance s) (* ':' *);
        let b = block_of label in
        block_order := b :: !block_order;
        let rec instrs acc =
          match peek s with
          | T_rbrace | T_eof -> List.rev acc
          | T_ident _ when at_label s -> List.rev acc
          | T_local name ->
              ignore (advance s);
              expect s T_equals "'=' after result name";
              instrs (parse_rhs s (Some name) :: acc)
          | T_ident _ -> instrs (parse_rhs s None :: acc)
          | _ ->
              errf "line %d: expected an instruction or block label"
                (line_of s)
        in
        parsed := (b, instrs []) :: !parsed;
        parse_blocks ()
    | T_eof -> errf "unexpected end of file inside @%s" fname
    | _ -> errf "line %d: expected a block label or '}'" (line_of s)
  in
  parse_blocks ();
  let parsed = List.rev !parsed in
  (* resolution environment: %name -> value, seeded with the params *)
  let env : (string, value) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace env p.pname (Param p)) params;
  let resolve_now (sym : sym) (line : int) : value =
    match sym with
    | S_int v -> Int v
    | S_float f -> Float f
    | S_bool b -> Bool b
    | S_undef t -> Undef t
    | S_ref name -> (
        match Hashtbl.find_opt env name with
        | Some v -> v
        | None -> errf "line %d: %%%s used before definition" line name)
  in
  (* pre-register phi results so any instruction may reference them *)
  List.iter
    (fun (_, protos) ->
      List.iter
        (fun p ->
          if p.p_op = Op.Phi then
            match p.p_result, p.p_ty with
            | Some name, Some ty ->
                Hashtbl.replace env name (Instr (mk_instr Op.Phi [||] [||] ty))
            | _ -> errf "line %d: phi needs a result and a type" p.p_line)
        protos)
    parsed;
  (* create instructions in order *)
  let pending_phis : (instr * proto) list ref = ref [] in
  let f = mk_func fname params in
  List.iter
    (fun (b, protos) ->
      append_block f b;
      List.iter
        (fun p ->
          let i =
            if p.p_op = Op.Phi then begin
              let i =
                match p.p_result with
                | Some name -> (
                    match Hashtbl.find env name with
                    | Instr i -> i
                    | _ -> assert false)
                | None -> errf "line %d: phi without result" p.p_line
              in
              pending_phis := (i, p) :: !pending_phis;
              i
            end
            else begin
              let operands =
                Array.of_list
                  (List.map (fun sym -> resolve_now sym p.p_line) p.p_syms)
              in
              let targets = Array.of_list (List.map block_of p.p_labels) in
              let ty = infer_ty p.p_op operands p.p_ty in
              let i = mk_instr p.p_op operands targets ty in
              (match p.p_result with
              | Some name -> Hashtbl.replace env name (Instr i)
              | None -> ());
              i
            end
          in
          append_instr b i)
        protos)
    parsed;
  (* second pass: phi incoming lists *)
  List.iter
    (fun (i, p) ->
      let values = List.map (fun sym -> resolve_now sym p.p_line) p.p_syms in
      let blocks = List.map block_of p.p_labels in
      set_phi_incoming i (List.combine values blocks))
    !pending_phis;
  f

(* ------------------------------------------------------------------ *)
(* Entry points *)

(** Parse a module (a sequence of kernels) from a string. *)
let parse_module ~(name : string) (src : string) : (modul, string) result =
  match
    let s = { toks = tokenize src } in
    let m = mk_module name in
    let rec kernels () =
      match peek s with
      | T_eof -> ()
      | T_ident "kernel" ->
          m.funcs <- m.funcs @ [ parse_kernel s ];
          kernels ()
      | _ -> errf "line %d: expected 'kernel' or end of file" (line_of s)
    in
    kernels ();
    m
  with
  | m -> Ok m
  | exception Parse_error msg -> Error msg

(** Parse a single function from a string. *)
let parse_func (src : string) : (func, string) result =
  match parse_module ~name:"<string>" src with
  | Ok { funcs = [ f ]; _ } -> Ok f
  | Ok _ -> Error "expected exactly one kernel"
  | Error e -> Error e

let parse_file (path : string) : (modul, string) result =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    src
  with
  | src -> parse_module ~name:(Filename.basename path) src
  | exception Sys_error e -> Error e
