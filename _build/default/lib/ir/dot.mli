(** Graphviz export of control-flow graphs: each basic block becomes a
    record node listing its instructions, conditional edges are
    labelled T/F, and [highlight] marks blocks (e.g. divergent branches)
    with a filled background. *)

val escape : string -> string

val func_to_dot : ?highlight:(Ssa.block -> bool) -> Ssa.func -> string
