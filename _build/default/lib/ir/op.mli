(** Instruction opcodes and their static classification.

    The opcode set covers what GPU kernels compiled from HIP/CUDA to
    LLVM-IR use on the paths the melding transformation cares about:
    integer/float ALU operations, comparisons, selects, memory accesses,
    [phi] nodes, branches, and the GPU intrinsics (thread/block indices,
    barrier, shared-memory allocation). *)

type icmp_pred = Ieq | Ine | Islt | Isle | Isgt | Isge

type fcmp_pred = Foeq | Fone | Folt | Fole | Fogt | Foge

type ibinop =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor | Shl | Lshr | Ashr
  | Smin | Smax

type fbinop = Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax

type t =
  | Ibin of ibinop          (** operands: [a; b] *)
  | Fbin of fbinop          (** operands: [a; b] *)
  | Icmp of icmp_pred       (** operands: [a; b], result i1 *)
  | Fcmp of fcmp_pred       (** operands: [a; b], result i1 *)
  | Not                     (** operand: [a : i1] *)
  | Select                  (** operands: [cond; tval; fval] *)
  | Load                    (** operands: [ptr] *)
  | Store                   (** operands: [value; ptr], result void *)
  | Gep                     (** operands: [ptr; index] — element indexing *)
  | Phi                     (** operands: incoming values; blocks: sources *)
  | Br                      (** blocks: [dest] *)
  | Condbr                  (** operands: [cond]; blocks: [tdest; fdest] *)
  | Ret                     (** kernel exit *)
  | Thread_idx              (** intrinsic: thread index within block *)
  | Block_idx               (** intrinsic: block index within grid *)
  | Block_dim               (** intrinsic: threads per block *)
  | Grid_dim                (** intrinsic: blocks per grid *)
  | Syncthreads             (** intrinsic: block-wide barrier *)
  | Alloc_shared of int     (** static shared-memory array of [n] elements *)
  | Sitofp                  (** operand: [a : i32], result f32 *)
  | Fptosi                  (** operand: [a : f32], result i32 *)
  | Addrspace_cast          (** operand: [ptr], result ptr(flat) *)

val equal : t -> t -> bool

val is_terminator : t -> bool

(** Instructions observable from outside the defining thread or whose
    execution can trap; these may never be executed speculatively and
    may not be removed by dead-code elimination. *)
val has_side_effect : t -> bool

(** Side effects plus memory reads (which can fault on an address that
    is only valid on the guarded path): never hoist these out of their
    guarding branch. *)
val unsafe_to_speculate : t -> bool

(** ALU-class instructions for the utilization metric: everything issued
    to the vector ALU, i.e. neither memory traffic nor control flow. *)
val is_alu : t -> bool

val is_memory : t -> bool

val icmp_to_string : icmp_pred -> string
val fcmp_to_string : fcmp_pred -> string
val ibinop_to_string : ibinop -> string
val fbinop_to_string : fbinop -> string
val to_string : t -> string
