(** First-class types of the DARM IR.

    Pointer types carry an address space mirroring the GPU memory
    hierarchy; merging pointers of distinct spaces (e.g. with a [select]
    during melding) degrades to the generic {!Flat} space, exactly as in
    LLVM's addrspace model. *)

type addrspace =
  | Global  (** off-chip device memory *)
  | Shared  (** per-block scratchpad (LDS / CUDA shared memory) *)
  | Flat    (** generic address space; may alias global or shared *)

type ty =
  | I1              (** booleans / branch conditions *)
  | I32             (** 32-bit integers *)
  | F32             (** 32-bit floats *)
  | Ptr of addrspace
  | Void            (** result type of stores, branches, barriers *)

val addrspace_equal : addrspace -> addrspace -> bool

val equal : ty -> ty -> bool

(** [join_ptr a b] is the address space of a pointer that may point into
    either [a] or [b]; distinct concrete spaces degrade to [Flat]. *)
val join_ptr : addrspace -> addrspace -> addrspace

val addrspace_to_string : addrspace -> string

val to_string : ty -> string

val pp : Format.formatter -> ty -> unit

val is_pointer : ty -> bool
