lib/ir/verify.mli: Ssa
