lib/ir/builder.mli: Op Ssa Types
