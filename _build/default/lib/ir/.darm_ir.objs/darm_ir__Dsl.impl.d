lib/ir/dsl.ml: Array Builder Hashtbl List Op Printf Ssa Types Verify
