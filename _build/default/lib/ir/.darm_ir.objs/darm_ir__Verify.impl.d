lib/ir/verify.ml: Array Hashtbl List Op Printer Printf Ssa String Types
