lib/ir/dsl.mli: Op Ssa Types
