lib/ir/parser.ml: Array Filename Float Hashtbl List Op Printf Ssa String Types
