lib/ir/printer.mli: Format Hashtbl Ssa
