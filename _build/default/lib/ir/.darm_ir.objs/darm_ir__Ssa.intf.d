lib/ir/ssa.mli: Hashtbl Op Types
