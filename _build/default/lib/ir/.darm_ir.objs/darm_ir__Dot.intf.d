lib/ir/dot.mli: Ssa
