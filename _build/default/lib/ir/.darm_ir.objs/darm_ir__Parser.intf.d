lib/ir/parser.mli: Ssa
