lib/ir/ssa.ml: Array Atomic Float Hashtbl List Op String Types
