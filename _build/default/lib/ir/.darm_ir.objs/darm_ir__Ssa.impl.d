lib/ir/ssa.ml: Array Float Hashtbl List Op String Types
