lib/ir/types.ml: Format Printf
