lib/ir/i32.mli: Op
