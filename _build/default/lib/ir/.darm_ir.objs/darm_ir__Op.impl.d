lib/ir/op.ml: Printf
