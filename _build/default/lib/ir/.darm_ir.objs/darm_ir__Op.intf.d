lib/ir/op.mli:
