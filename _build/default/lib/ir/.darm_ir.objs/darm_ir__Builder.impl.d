lib/ir/builder.ml: List Op Ssa Types
