lib/ir/dot.ml: Array Buffer List Op Printer Printf Ssa String
