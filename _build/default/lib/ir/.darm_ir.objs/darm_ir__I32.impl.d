lib/ir/i32.ml: Op
