lib/ir/printer.ml: Array Buffer Format Hashtbl List Op Printf Ssa String Types
