(** Instruction opcodes and their static classification.

    The opcode set covers what GPU kernels compiled from HIP/CUDA to
    LLVM-IR actually use on the paths the melding transformation cares
    about: integer/float ALU ops, comparisons, selects, memory accesses
    with address spaces, [phi] nodes, branches and the GPU intrinsics
    (thread/block indices, barrier, shared-memory allocation). *)

type icmp_pred = Ieq | Ine | Islt | Isle | Isgt | Isge

type fcmp_pred = Foeq | Fone | Folt | Fole | Fogt | Foge

type ibinop =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor | Shl | Lshr | Ashr
  | Smin | Smax

type fbinop = Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax

type t =
  | Ibin of ibinop          (** operands: [a; b] *)
  | Fbin of fbinop          (** operands: [a; b] *)
  | Icmp of icmp_pred       (** operands: [a; b], result i1 *)
  | Fcmp of fcmp_pred       (** operands: [a; b], result i1 *)
  | Not                     (** operand: [a : i1] *)
  | Select                  (** operands: [cond; tval; fval] *)
  | Load                    (** operands: [ptr] *)
  | Store                   (** operands: [value; ptr], result void *)
  | Gep                     (** operands: [ptr; index] — element indexing *)
  | Phi                     (** operands: incoming values; [blocks]: sources *)
  | Br                      (** [blocks]: [dest] *)
  | Condbr                  (** operands: [cond]; [blocks]: [tdest; fdest] *)
  | Ret                     (** kernel exit *)
  | Thread_idx              (** intrinsic: thread index within block *)
  | Block_idx               (** intrinsic: block index within grid *)
  | Block_dim               (** intrinsic: threads per block *)
  | Grid_dim                (** intrinsic: blocks per grid *)
  | Syncthreads             (** intrinsic: block-wide barrier *)
  | Alloc_shared of int     (** static shared-memory array of [n] elements *)
  | Sitofp                  (** operand: [a : i32], result f32 *)
  | Fptosi                  (** operand: [a : f32], result i32 *)
  | Addrspace_cast          (** operand: [ptr], result ptr(flat) *)

let equal (a : t) (b : t) = a = b

let is_terminator = function
  | Br | Condbr | Ret -> true
  | Ibin _ | Fbin _ | Icmp _ | Fcmp _ | Not | Select | Load | Store | Gep
  | Phi | Thread_idx | Block_idx | Block_dim | Grid_dim | Syncthreads
  | Alloc_shared _ | Sitofp | Fptosi | Addrspace_cast -> false

(** Instructions observable from outside the defining thread or whose
    execution can trap; these may never be executed speculatively and may
    not be removed by dead-code elimination. *)
let has_side_effect = function
  | Store | Syncthreads | Ret | Br | Condbr -> true
  | Ibin (Sdiv | Srem) -> true (* may trap on zero *)
  | Ibin _ | Fbin _ | Icmp _ | Fcmp _ | Not | Select | Load | Gep | Phi
  | Thread_idx | Block_idx | Block_dim | Grid_dim | Alloc_shared _
  | Sitofp | Fptosi | Addrspace_cast -> false

(** Instructions that are unsafe to hoist out of their guarding branch:
    side effects plus memory reads (which can fault on an address that is
    only valid on the guarded path). *)
let unsafe_to_speculate op = has_side_effect op || op = Load

(** ALU-class instructions for the utilization metric: everything issued
    to the vector ALU, i.e. neither memory traffic nor control flow. *)
let is_alu = function
  | Ibin _ | Fbin _ | Icmp _ | Fcmp _ | Not | Select | Gep
  | Sitofp | Fptosi | Addrspace_cast -> true
  | Load | Store | Phi | Br | Condbr | Ret | Thread_idx | Block_idx
  | Block_dim | Grid_dim | Syncthreads | Alloc_shared _ -> false

let is_memory = function
  | Load | Store -> true
  | Ibin _ | Fbin _ | Icmp _ | Fcmp _ | Not | Select | Gep | Phi | Br
  | Condbr | Ret | Thread_idx | Block_idx | Block_dim | Grid_dim
  | Syncthreads | Alloc_shared _ | Sitofp | Fptosi | Addrspace_cast -> false

let icmp_to_string = function
  | Ieq -> "eq" | Ine -> "ne" | Islt -> "slt" | Isle -> "sle"
  | Isgt -> "sgt" | Isge -> "sge"

let fcmp_to_string = function
  | Foeq -> "oeq" | Fone -> "one" | Folt -> "olt" | Fole -> "ole"
  | Fogt -> "ogt" | Foge -> "oge"

let ibinop_to_string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv"
  | Srem -> "srem" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"
  | Smin -> "smin" | Smax -> "smax"

let fbinop_to_string = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Fmin -> "fmin" | Fmax -> "fmax"

let to_string = function
  | Ibin b -> ibinop_to_string b
  | Fbin b -> fbinop_to_string b
  | Icmp p -> "icmp " ^ icmp_to_string p
  | Fcmp p -> "fcmp " ^ fcmp_to_string p
  | Not -> "not"
  | Select -> "select"
  | Load -> "load"
  | Store -> "store"
  | Gep -> "gep"
  | Phi -> "phi"
  | Br -> "br"
  | Condbr -> "condbr"
  | Ret -> "ret"
  | Thread_idx -> "thread.idx"
  | Block_idx -> "block.idx"
  | Block_dim -> "block.dim"
  | Grid_dim -> "grid.dim"
  | Syncthreads -> "syncthreads"
  | Alloc_shared n -> Printf.sprintf "alloc.shared %d" n
  | Sitofp -> "sitofp"
  | Fptosi -> "fptosi"
  | Addrspace_cast -> "addrspace.cast"
