(** Textual form of the IR, in an LLVM-like syntax that {!Parser} reads
    back.

    {v
    kernel @saxpy(%x: ptr(global), %n: i32) {
    entry:
      %0 = thread.idx
      %1 = icmp slt %0, %n
      condbr %1, body, exit
    ...
    }
    v} *)

type names = {
  val_names : (int, string) Hashtbl.t;  (** instr id -> printable name *)
  blk_names : (int, string) Hashtbl.t;  (** block id -> printable name *)
}

(** Assign stable, human-readable names: blocks keep their [bname]
    (uniquified on collision), instruction results are numbered in block
    order. *)
val assign_names : Ssa.func -> names

val value_str : names -> Ssa.value -> string
val block_str : names -> Ssa.block -> string
val instr_str : names -> Ssa.instr -> string

val func_to_string : Ssa.func -> string
val module_to_string : Ssa.modul -> string

val pp_func : Format.formatter -> Ssa.func -> unit
val pp_module : Format.formatter -> Ssa.modul -> unit

(** Compact structural summary of the CFG: one line per block listing
    its successors — handy in debug logs and tests. *)
val cfg_summary : Ssa.func -> string
