(** Structured kernel eDSL with on-the-fly SSA construction.

    Kernels are written with mutable [var]s and structured control flow
    ([if_] / [while_] / [for_]); the DSL lowers them to pruned SSA using
    the algorithm of Braun et al. (CC 2013, "Simple and Efficient
    Construction of Static Single Assignment Form"): variable reads
    introduce phi nodes lazily, blocks are sealed once all their
    predecessors are known, and trivial phis are removed recursively.

    This plays the role of Clang + mem2reg in the paper's pipeline: the
    evaluation kernels (bitonic sort, LUD, ...) are written against this
    API and come out as the same shape of SSA CFG that HIPCC would
    produce. *)

open Ssa

type var = { vid : int; vty : Types.ty; vname : string }

type ctx = {
  func : func;
  builder : Builder.t;
  mutable cur : block;
  mutable terminated : bool;
  sealed : (int, unit) Hashtbl.t;  (** block id -> sealed *)
  current_def : (int * int, value) Hashtbl.t;  (** (var, block) -> value *)
  incomplete : (int, (var * instr) list) Hashtbl.t;
      (** block id -> phis awaiting operands *)
  mutable var_count : int;
}

(* ------------------------------------------------------------------ *)
(* Braun et al. SSA construction *)

let write_variable ctx (v : var) (b : block) (value : value) =
  Hashtbl.replace ctx.current_def (v.vid, b.bid) value

let new_phi ctx (v : var) (b : block) : instr =
  let i = mk_instr Op.Phi [||] [||] v.vty in
  i.parent <- Some b;
  let ps, rest = List.partition (fun x -> x.op = Op.Phi) b.instrs in
  b.instrs <- ps @ (i :: rest);
  ignore ctx;
  i

let block_preds ctx (b : block) : block list =
  let tbl = predecessors ctx.func in
  preds_of tbl b

(* Remove phi if all its operands are the same value (or itself). *)
let rec try_remove_trivial_phi ctx (phi : instr) : value =
  let same = ref None in
  let trivial = ref true in
  Array.iter
    (fun op ->
      match op with
      | Instr i when i.id = phi.id -> ()
      | v -> (
          match !same with
          | None -> same := Some v
          | Some s -> if not (value_equal s v) then trivial := false))
    phi.operands;
  if not !trivial then Instr phi
  else begin
    let replacement =
      match !same with Some v -> v | None -> Undef phi.ty
    in
    (* Users that are phis may become trivial in turn. *)
    let phi_users =
      List.filter
        (fun u -> u.op = Op.Phi && u.id <> phi.id)
        (users ctx.func (Instr phi))
    in
    replace_all_uses ctx.func ~old_v:(Instr phi) ~new_v:replacement;
    (match phi.parent with Some b -> remove_instr b phi | None -> ());
    (* Fix current_def entries still pointing at the removed phi. *)
    let to_fix =
      Hashtbl.fold
        (fun k v acc ->
          if value_equal v (Instr phi) then k :: acc else acc)
        ctx.current_def []
    in
    List.iter
      (fun k -> Hashtbl.replace ctx.current_def k replacement)
      to_fix;
    List.iter (fun u -> ignore (try_remove_trivial_phi ctx u)) phi_users;
    replacement
  end

let rec read_variable ctx (v : var) (b : block) : value =
  match Hashtbl.find_opt ctx.current_def (v.vid, b.bid) with
  | Some value -> value
  | None -> read_variable_recursive ctx v b

and read_variable_recursive ctx (v : var) (b : block) : value =
  let value =
    if not (Hashtbl.mem ctx.sealed b.bid) then begin
      let phi = new_phi ctx v b in
      let cur = try Hashtbl.find ctx.incomplete b.bid with Not_found -> [] in
      Hashtbl.replace ctx.incomplete b.bid ((v, phi) :: cur);
      Instr phi
    end
    else
      match block_preds ctx b with
      | [ p ] -> read_variable ctx v p
      | [] -> Undef v.vty (* entry block, variable never written *)
      | _ :: _ :: _ ->
          let phi = new_phi ctx v b in
          write_variable ctx v b (Instr phi);
          add_phi_operands ctx v phi
  in
  write_variable ctx v b value;
  value

and add_phi_operands ctx (v : var) (phi : instr) : value =
  let b = match phi.parent with Some b -> b | None -> assert false in
  let preds = block_preds ctx b in
  List.iter
    (fun p ->
      let value = read_variable ctx v p in
      phi_add_incoming phi value p)
    preds;
  try_remove_trivial_phi ctx phi

let seal_block ctx (b : block) =
  if not (Hashtbl.mem ctx.sealed b.bid) then begin
    let pending =
      try Hashtbl.find ctx.incomplete b.bid with Not_found -> []
    in
    Hashtbl.replace ctx.sealed b.bid ();
    Hashtbl.remove ctx.incomplete b.bid;
    List.iter (fun (v, phi) -> ignore (add_phi_operands ctx v phi)) pending
  end

(* ------------------------------------------------------------------ *)
(* Cursor helpers *)

let at ctx : Builder.t =
  Builder.position_at_end ctx.builder ctx.cur;
  ctx.builder

let move_to ctx (b : block) =
  ctx.cur <- b;
  ctx.terminated <- false

let terminate_with_br ctx (dest : block) =
  if not ctx.terminated then begin
    Builder.ins_br (at ctx) dest;
    ctx.terminated <- true
  end

(* ------------------------------------------------------------------ *)
(* Public API: variables *)

let local ctx ?(name = "v") (ty : Types.ty) : var =
  ctx.var_count <- ctx.var_count + 1;
  { vid = ctx.var_count; vty = ty; vname = name }

let set ctx (v : var) (value : value) =
  if not (Types.equal (value_ty value) v.vty) then
    invalid_arg
      (Printf.sprintf "Dsl.set: variable %s has type %s, value has type %s"
         v.vname (Types.to_string v.vty)
         (Types.to_string (value_ty value)));
  write_variable ctx v ctx.cur value

let get ctx (v : var) : value = read_variable ctx v ctx.cur

(* ------------------------------------------------------------------ *)
(* Public API: expressions (all inserted into the current block) *)

let i32 = Builder.i32
let i1 = Builder.i1
let f32 = Builder.f32
let add ctx a b = Builder.add (at ctx) a b
let sub ctx a b = Builder.sub (at ctx) a b
let mul ctx a b = Builder.mul (at ctx) a b
let sdiv ctx a b = Builder.sdiv (at ctx) a b
let srem ctx a b = Builder.srem (at ctx) a b
let and_ ctx a b = Builder.and_ (at ctx) a b
let or_ ctx a b = Builder.or_ (at ctx) a b
let xor ctx a b = Builder.xor (at ctx) a b
let shl ctx a b = Builder.shl (at ctx) a b
let lshr ctx a b = Builder.lshr (at ctx) a b
let smin ctx a b = Builder.ins_ibin (at ctx) Op.Smin a b
let smax ctx a b = Builder.ins_ibin (at ctx) Op.Smax a b
let fadd ctx a b = Builder.ins_fbin (at ctx) Op.Fadd a b
let fsub ctx a b = Builder.ins_fbin (at ctx) Op.Fsub a b
let fmul ctx a b = Builder.ins_fbin (at ctx) Op.Fmul a b
let fdiv ctx a b = Builder.ins_fbin (at ctx) Op.Fdiv a b
let fmin ctx a b = Builder.ins_fbin (at ctx) Op.Fmin a b
let fmax ctx a b = Builder.ins_fbin (at ctx) Op.Fmax a b
let icmp ctx p a b = Builder.ins_icmp (at ctx) p a b
let eq ctx a b = icmp ctx Op.Ieq a b
let ne ctx a b = icmp ctx Op.Ine a b
let slt ctx a b = icmp ctx Op.Islt a b
let sle ctx a b = icmp ctx Op.Isle a b
let sgt ctx a b = icmp ctx Op.Isgt a b
let sge ctx a b = icmp ctx Op.Isge a b
let fcmp ctx p a b = Builder.ins_fcmp (at ctx) p a b
let not_ ctx a = Builder.ins_not (at ctx) a
let select ctx c a b = Builder.ins_select (at ctx) c a b
let load ctx p = Builder.ins_load (at ctx) p
let load_f ctx p = Builder.ins_load_f (at ctx) p
let store ctx v p = ignore (Builder.ins_store (at ctx) v p)
let gep ctx p i = Builder.ins_gep (at ctx) p i
let sitofp ctx a = Builder.ins_sitofp (at ctx) a
let fptosi ctx a = Builder.ins_fptosi (at ctx) a
let tid ctx = Builder.ins_thread_idx (at ctx)
let bid ctx = Builder.ins_block_idx (at ctx)
let bdim ctx = Builder.ins_block_dim (at ctx)
let gdim ctx = Builder.ins_grid_dim (at ctx)
let sync ctx = Builder.ins_syncthreads (at ctx)

(** Allocate a per-block shared-memory array; hoisted to the entry block
    like LLVM allocas / CUDA [__shared__] declarations. *)
let shared_array ctx (n : int) : value =
  let entry = entry_block ctx.func in
  let i = mk_instr (Op.Alloc_shared n) [||] [||] (Types.Ptr Types.Shared) in
  i.parent <- Some entry;
  let ps, rest = List.partition (fun x -> x.op = Op.Phi) entry.instrs in
  entry.instrs <- ps @ (i :: rest);
  Instr i

(* ------------------------------------------------------------------ *)
(* Public API: structured control flow *)

let fresh_block ctx (name : string) : block =
  Builder.add_block ctx.builder name

let if_ ctx (cond : value) (then_f : unit -> unit) (else_f : unit -> unit) =
  let then_b = fresh_block ctx "if.then" in
  let else_b = fresh_block ctx "if.else" in
  let end_b = fresh_block ctx "if.end" in
  Builder.ins_condbr (at ctx) cond then_b else_b;
  ctx.terminated <- true;
  seal_block ctx then_b;
  seal_block ctx else_b;
  move_to ctx then_b;
  then_f ();
  terminate_with_br ctx end_b;
  move_to ctx else_b;
  else_f ();
  terminate_with_br ctx end_b;
  seal_block ctx end_b;
  move_to ctx end_b

let if_then ctx (cond : value) (then_f : unit -> unit) =
  let then_b = fresh_block ctx "if.then" in
  let end_b = fresh_block ctx "if.end" in
  Builder.ins_condbr (at ctx) cond then_b end_b;
  ctx.terminated <- true;
  seal_block ctx then_b;
  move_to ctx then_b;
  then_f ();
  terminate_with_br ctx end_b;
  seal_block ctx end_b;
  move_to ctx end_b

(** [while_ ctx cond body]: [cond] is evaluated in the (unsealed) loop
    header so variable reads inside it correctly become loop phis. *)
let while_ ctx (cond_f : unit -> value) (body_f : unit -> unit) =
  let head = fresh_block ctx "while.head" in
  terminate_with_br ctx head;
  move_to ctx head;
  let c = cond_f () in
  let body_b = fresh_block ctx "while.body" in
  let end_b = fresh_block ctx "while.end" in
  Builder.ins_condbr (at ctx) c body_b end_b;
  ctx.terminated <- true;
  seal_block ctx body_b;
  move_to ctx body_b;
  body_f ();
  terminate_with_br ctx head;
  seal_block ctx head;
  seal_block ctx end_b;
  move_to ctx end_b

(** Counted loop [for i = from; cmp i bound; i = step i]. *)
let for_ ctx ?(name = "i") ~(from : value) ~(cmp : ctx -> value -> value)
    ~(step : ctx -> value -> value) (body_f : value -> unit) =
  let i = local ctx ~name Types.I32 in
  set ctx i from;
  while_ ctx
    (fun () -> cmp ctx (get ctx i))
    (fun () ->
      let iv = get ctx i in
      body_f iv;
      set ctx i (step ctx (get ctx i)))

(** Simple ascending loop [for i = from; i < until; i += 1]. *)
let for_up ctx ?(name = "i") ~(from : value) ~(until : value)
    (body_f : value -> unit) =
  for_ ctx ~name ~from
    ~cmp:(fun c iv -> slt c iv until)
    ~step:(fun c iv -> add c iv (i32 1))
    body_f

(* ------------------------------------------------------------------ *)
(* Kernel construction *)

(** [build_kernel ~name ~params body] constructs a fully-sealed SSA
    function.  [body] receives the context and the parameter values in
    declaration order. *)
let build_kernel ~(name : string) ~(params : (string * Types.ty) list)
    (body : ctx -> value list -> unit) : func =
  let ps =
    List.mapi (fun k (pname, pty) -> { pname; pty; pindex = k }) params
  in
  let f = mk_func name ps in
  let builder = Builder.create f in
  let entry = Builder.add_block builder "entry" in
  let ctx =
    {
      func = f;
      builder;
      cur = entry;
      terminated = false;
      sealed = Hashtbl.create 16;
      current_def = Hashtbl.create 64;
      incomplete = Hashtbl.create 16;
      var_count = 0;
    }
  in
  seal_block ctx entry;
  body ctx (List.map (fun p -> Param p) ps);
  if not ctx.terminated then begin
    Builder.ins_ret (at ctx);
    ctx.terminated <- true
  end;
  Verify.run_exn f;
  f
