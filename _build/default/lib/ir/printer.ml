(** Textual form of the IR, in an LLVM-like syntax that {!Parser} can read
    back.

    Example output:
    {v
    kernel @saxpy(%x: ptr(global), %n: i32) {
    entry:
      %0 = thread.idx
      %1 = icmp slt %0, %n
      condbr %1, body, exit
    body:
      ...
    }
    v} *)

open Ssa

type names = {
  val_names : (int, string) Hashtbl.t;  (** instr id -> printable name *)
  blk_names : (int, string) Hashtbl.t;  (** block id -> printable name *)
}

(** Assign stable, human-readable names: blocks keep their [bname]
    (uniquified on collision), instruction results are numbered in block
    order. *)
let assign_names (f : func) : names =
  let val_names = Hashtbl.create 64 in
  let blk_names = Hashtbl.create 16 in
  let used = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let base = if b.bname = "" then "bb" else b.bname in
      let name =
        if Hashtbl.mem used base then begin
          let rec pick k =
            let cand = Printf.sprintf "%s.%d" base k in
            if Hashtbl.mem used cand then pick (k + 1) else cand
          in
          pick 1
        end
        else base
      in
      Hashtbl.replace used name ();
      Hashtbl.replace blk_names b.bid name)
    f.blocks_list;
  let counter = ref 0 in
  iter_instrs f (fun i ->
      if not (Types.equal i.ty Types.Void) then begin
        Hashtbl.replace val_names i.id (string_of_int !counter);
        incr counter
      end);
  { val_names; blk_names }

let value_str (n : names) (v : value) : string =
  match v with
  | Int k -> string_of_int k
  | Bool true -> "true"
  | Bool false -> "false"
  | Float x -> Printf.sprintf "%h" x
  | Undef t -> "undef:" ^ Types.to_string t
  | Param p -> "%" ^ p.pname
  | Instr i -> (
      match Hashtbl.find_opt n.val_names i.id with
      | Some s -> "%" ^ s
      | None -> Printf.sprintf "%%?%d" i.id)

let block_str (n : names) (b : block) : string =
  match Hashtbl.find_opt n.blk_names b.bid with
  | Some s -> s
  | None -> Printf.sprintf "?blk%d" b.bid

let instr_str (n : names) (i : instr) : string =
  let v = value_str n in
  let ops () =
    String.concat ", " (Array.to_list (Array.map v i.operands))
  in
  let rhs =
    match i.op with
    | Op.Phi ->
        let pairs =
          List.map
            (fun (value, blk) ->
              Printf.sprintf "[%s, %s]" (v value) (block_str n blk))
            (phi_incoming i)
        in
        Printf.sprintf "phi %s %s" (Types.to_string i.ty)
          (String.concat ", " pairs)
    | Op.Br -> Printf.sprintf "br %s" (block_str n i.blocks.(0))
    | Op.Condbr ->
        Printf.sprintf "condbr %s, %s, %s"
          (v i.operands.(0))
          (block_str n i.blocks.(0))
          (block_str n i.blocks.(1))
    | Op.Ret -> "ret"
    | Op.Store ->
        Printf.sprintf "store %s, %s" (v i.operands.(0)) (v i.operands.(1))
    | Op.Syncthreads -> "syncthreads"
    | Op.Load ->
        Printf.sprintf "load %s, %s" (Types.to_string i.ty) (v i.operands.(0))
    | _ when Array.length i.operands = 0 -> Op.to_string i.op
    | _ -> Printf.sprintf "%s %s" (Op.to_string i.op) (ops ())
  in
  if Types.equal i.ty Types.Void then rhs
  else Printf.sprintf "%%%s = %s"
         (match Hashtbl.find_opt n.val_names i.id with
         | Some s -> s
         | None -> Printf.sprintf "?%d" i.id)
         rhs

let func_to_string (f : func) : string =
  let n = assign_names f in
  let buf = Buffer.create 1024 in
  let params =
    String.concat ", "
      (List.map
         (fun p -> Printf.sprintf "%%%s: %s" p.pname (Types.to_string p.pty))
         f.params)
  in
  Buffer.add_string buf (Printf.sprintf "kernel @%s(%s) {\n" f.fname params);
  List.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf "%s:\n" (block_str n b));
      List.iter
        (fun i ->
          Buffer.add_string buf (Printf.sprintf "  %s\n" (instr_str n i)))
        b.instrs)
    f.blocks_list;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let module_to_string (m : modul) : string =
  String.concat "\n" (List.map func_to_string m.funcs)

let pp_func fmt f = Format.pp_print_string fmt (func_to_string f)

let pp_module fmt m = Format.pp_print_string fmt (module_to_string m)

(** Compact structural summary of the CFG: one line per block listing its
    successors, handy in debug logs and tests. *)
let cfg_summary (f : func) : string =
  let n = assign_names f in
  String.concat "\n"
    (List.map
       (fun b ->
         Printf.sprintf "%s -> [%s]" (block_str n b)
           (String.concat ", " (List.map (block_str n) (successors b))))
       f.blocks_list)
