(** Structured kernel eDSL with on-the-fly SSA construction.

    Kernels are written with mutable {!var}s and structured control flow
    ([if_] / [while_] / [for_]); the DSL lowers them to pruned SSA using
    the algorithm of Braun et al. (CC 2013, "Simple and Efficient
    Construction of Static Single Assignment Form"): variable reads
    introduce phi nodes lazily, blocks are sealed once all their
    predecessors are known, and trivial phis are removed recursively.

    This plays the role of Clang + mem2reg in the paper's pipeline: the
    evaluation kernels are written against this API and come out as the
    same shape of SSA CFG that HIPCC would produce.  Every function here
    operates on the {e current block} of the context and appends
    instructions in order. *)

type var
(** A mutable local variable (an abstract register, not an alloca). *)

type ctx

(** {2 Kernel construction} *)

(** [build_kernel ~name ~params body] constructs a fully-sealed,
    verified SSA function.  [body] receives the context and the
    parameter values in declaration order.  A [ret] is appended if the
    body leaves the final block unterminated. *)
val build_kernel :
  name:string ->
  params:(string * Types.ty) list ->
  (ctx -> Ssa.value list -> unit) ->
  Ssa.func

(** {2 Variables} *)

val local : ctx -> ?name:string -> Types.ty -> var
val set : ctx -> var -> Ssa.value -> unit
val get : ctx -> var -> Ssa.value

(** {2 Expressions} *)

val i32 : int -> Ssa.value
val i1 : bool -> Ssa.value
val f32 : float -> Ssa.value
val add : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val sub : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val mul : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val sdiv : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val srem : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val and_ : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val or_ : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val xor : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val shl : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val lshr : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val smin : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val smax : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val fadd : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val fsub : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val fmul : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val fdiv : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val fmin : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val fmax : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val icmp : ctx -> Op.icmp_pred -> Ssa.value -> Ssa.value -> Ssa.value
val eq : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val ne : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val slt : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val sle : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val sgt : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val sge : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val fcmp : ctx -> Op.fcmp_pred -> Ssa.value -> Ssa.value -> Ssa.value
val not_ : ctx -> Ssa.value -> Ssa.value
val select : ctx -> Ssa.value -> Ssa.value -> Ssa.value -> Ssa.value
val load : ctx -> Ssa.value -> Ssa.value
val load_f : ctx -> Ssa.value -> Ssa.value
val store : ctx -> Ssa.value -> Ssa.value -> unit
val gep : ctx -> Ssa.value -> Ssa.value -> Ssa.value
val sitofp : ctx -> Ssa.value -> Ssa.value
val fptosi : ctx -> Ssa.value -> Ssa.value
val tid : ctx -> Ssa.value
val bid : ctx -> Ssa.value
val bdim : ctx -> Ssa.value
val gdim : ctx -> Ssa.value
val sync : ctx -> unit

(** Allocate a per-block shared-memory array; hoisted to the entry block
    like LLVM allocas / CUDA [__shared__] declarations. *)
val shared_array : ctx -> int -> Ssa.value

(** {2 Structured control flow} *)

val fresh_block : ctx -> string -> Ssa.block

val if_ : ctx -> Ssa.value -> (unit -> unit) -> (unit -> unit) -> unit
val if_then : ctx -> Ssa.value -> (unit -> unit) -> unit

(** [while_ ctx cond body]: [cond] is evaluated in the (unsealed) loop
    header so variable reads inside it correctly become loop phis. *)
val while_ : ctx -> (unit -> Ssa.value) -> (unit -> unit) -> unit

(** Counted loop [for i = from; cmp i; i = step i]. *)
val for_ :
  ctx ->
  ?name:string ->
  from:Ssa.value ->
  cmp:(ctx -> Ssa.value -> Ssa.value) ->
  step:(ctx -> Ssa.value -> Ssa.value) ->
  (Ssa.value -> unit) ->
  unit

(** Simple ascending loop [for i = from; i < until; i += 1]. *)
val for_up :
  ctx ->
  ?name:string ->
  from:Ssa.value ->
  until:Ssa.value ->
  (Ssa.value -> unit) ->
  unit
