(** Core SSA data structures: values, instructions, basic blocks,
    functions and modules, plus the mutation primitives used by
    transformations.

    The representation is deliberately LLVM-like and mutable:
    instructions carry operand arrays that may reference other
    instructions directly, blocks own an ordered instruction list whose
    last element is the unique terminator, and control-flow edges live
    in the terminator's [blocks] array.  [phi] nodes pair each operand
    with the corresponding incoming block in [blocks].

    Invariants (checked by {!Verify}):
    - every reachable block ends in exactly one terminator, which is its
      last instruction;
    - [phi] nodes appear only as a prefix of a block and have exactly
      one incoming entry per CFG predecessor;
    - every instruction operand is defined by an instruction that
      dominates the use (for [phi] uses: dominates the incoming edge's
      source). *)

type value =
  | Int of int
  | Bool of bool
  | Float of float
  | Undef of Types.ty
  | Param of param
  | Instr of instr

and param = { pname : string; pty : Types.ty; pindex : int }

and instr = {
  id : int;  (** unique within a process; never reused *)
  mutable op : Op.t;
  mutable operands : value array;
  mutable blocks : block array;
      (** [phi]: incoming blocks, index-aligned with [operands];
          [br]: the destination; [condbr]: [| then; else |] *)
  mutable ty : Types.ty;
  mutable parent : block option;
}

and block = {
  bid : int;
  mutable bname : string;
  mutable instrs : instr list;  (** in execution order; last = terminator *)
  mutable bparent : func option;
}

and func = {
  fname : string;
  params : param list;
  mutable blocks_list : block list;  (** first element is the entry block *)
}

type modul = { mname : string; mutable funcs : func list }

val fresh_id : unit -> int

(** {2 Construction} *)

val mk_instr :
  ?name:string -> Op.t -> value array -> block array -> Types.ty -> instr

val mk_block : string -> block
val mk_func : string -> param list -> func
val mk_module : string -> modul

val value_ty : value -> Types.ty

(** Physical equality for instruction results (by id), structural
    equality for constants, undefs and parameters. *)
val value_equal : value -> value -> bool

(** {2 Block contents and ordering} *)

val entry_block : func -> block

(** The block's final instruction; raises [Invalid_argument] when the
    block is empty. *)
val terminator : block -> instr

val has_terminator : block -> bool
val phis : block -> instr list
val non_phis : block -> instr list

(** Body instructions: everything that is neither a [phi] nor the
    terminator. *)
val body : block -> instr list

val successors : block -> block list

val append_instr : block -> instr -> unit
val insert_before_terminator : block -> instr -> unit
val insert_before : instr -> instr -> unit
val insert_after_phis : block -> instr -> unit
val remove_instr : block -> instr -> unit
val append_block : func -> block -> unit
val remove_block : func -> block -> unit

(** {2 Iteration} *)

val iter_instrs : func -> (instr -> unit) -> unit
val fold_instrs : func -> ('a -> instr -> 'a) -> 'a -> 'a

(** {2 CFG edges} *)

(** Map from block id to predecessor blocks, recomputed on demand. *)
val predecessors : func -> (int, block list) Hashtbl.t

val preds_of : (int, block list) Hashtbl.t -> block -> block list

(** Replace every control-flow edge [src -> old_dest] with
    [src -> new_dest] in [src]'s terminator.  Phi nodes in the old and
    new destinations are {e not} adjusted; callers handle them
    explicitly. *)
val redirect_edge : block -> old_dest:block -> new_dest:block -> unit

(** {2 Phi helpers} *)

val phi_incoming : instr -> (value * block) list
val set_phi_incoming : instr -> (value * block) list -> unit
val phi_add_incoming : instr -> value -> block -> unit
val phi_incoming_for : instr -> block -> value option

val phi_replace_incoming_block :
  block -> old_pred:block -> new_pred:block -> unit

val phi_remove_incoming : block -> pred:block -> unit

(** {2 Use replacement} *)

(** Replace every use of [old_v] as an operand anywhere in the function
    by [new_v]. *)
val replace_all_uses : func -> old_v:value -> new_v:value -> unit

(** All instructions in the function that use [v] as an operand. *)
val users : func -> value -> instr list
