(** Two's-complement 32-bit integer semantics, shared between the
    constant folder and the SIMT simulator so the two can never
    diverge.  The canonical representation of an i32 value is the
    sign-extended OCaml [int] in [-2^31, 2^31 - 1]. *)

(** Low-32-bit mask, [0xFFFFFFFF]. *)
val mask : int

(** Unsigned 32-bit view: the low 32 bits of the argument. *)
val of_i32 : int -> int

(** Canonical i32: truncate to 32 bits and sign-extend. *)
val to_i32 : int -> int

(** Evaluate an integer binary operation under i32 semantics: operands
    are truncated, [Add]/[Sub]/[Mul] wrap modulo 2^32, shift amounts
    are masked to [0, 31], [Shl] sign-extends its truncated result,
    [Ashr]/[Lshr] operate on the truncated 32-bit value.  Returns
    [None] for division or remainder by zero. *)
val eval : Op.ibinop -> int -> int -> int option

(** Signed i32 comparison (operands truncated first). *)
val compare_i32 : Op.icmp_pred -> int -> int -> bool
