(** Low-level, position-based IR builder.

    A builder holds a current insertion block; each [ins_*] function
    appends one instruction there and returns its result {!Ssa.value}.
    Types are inferred and checked at construction time, so malformed
    instructions fail fast ([Invalid_argument]) instead of surfacing
    later in the verifier. *)

type t

val create : Ssa.func -> t
val func : t -> Ssa.func

(** Create a fresh block named [name], append it to the function and
    return it.  Does not move the cursor. *)
val add_block : t -> string -> Ssa.block

val position_at_end : t -> Ssa.block -> unit
val insertion_block : t -> Ssa.block

(** {2 Instructions} *)

val ins_ibin : t -> Op.ibinop -> Ssa.value -> Ssa.value -> Ssa.value
val ins_fbin : t -> Op.fbinop -> Ssa.value -> Ssa.value -> Ssa.value
val ins_icmp : t -> Op.icmp_pred -> Ssa.value -> Ssa.value -> Ssa.value
val ins_fcmp : t -> Op.fcmp_pred -> Ssa.value -> Ssa.value -> Ssa.value
val ins_not : t -> Ssa.value -> Ssa.value

(** Select over pointers of different address spaces yields a flat
    pointer ({!Types.join_ptr}). *)
val ins_select : t -> Ssa.value -> Ssa.value -> Ssa.value -> Ssa.value

val ins_load : t -> Ssa.value -> Ssa.value

(** Load producing a float; memory is untyped w.r.t. element type, the
    kernel author chooses the view. *)
val ins_load_f : t -> Ssa.value -> Ssa.value

val ins_store : t -> Ssa.value -> Ssa.value -> Ssa.value
val ins_gep : t -> Ssa.value -> Ssa.value -> Ssa.value

(** Create an (initially empty) phi of the given type at the start of
    the current block. *)
val ins_phi : t -> Types.ty -> Ssa.instr

val ins_br : t -> Ssa.block -> unit
val ins_condbr : t -> Ssa.value -> Ssa.block -> Ssa.block -> unit
val ins_ret : t -> unit
val ins_thread_idx : t -> Ssa.value
val ins_block_idx : t -> Ssa.value
val ins_block_dim : t -> Ssa.value
val ins_grid_dim : t -> Ssa.value
val ins_syncthreads : t -> unit
val ins_alloc_shared : t -> int -> Ssa.value
val ins_sitofp : t -> Ssa.value -> Ssa.value
val ins_fptosi : t -> Ssa.value -> Ssa.value

(** {2 Convenience wrappers} *)

val add : t -> Ssa.value -> Ssa.value -> Ssa.value
val sub : t -> Ssa.value -> Ssa.value -> Ssa.value
val mul : t -> Ssa.value -> Ssa.value -> Ssa.value
val sdiv : t -> Ssa.value -> Ssa.value -> Ssa.value
val srem : t -> Ssa.value -> Ssa.value -> Ssa.value
val and_ : t -> Ssa.value -> Ssa.value -> Ssa.value
val or_ : t -> Ssa.value -> Ssa.value -> Ssa.value
val xor : t -> Ssa.value -> Ssa.value -> Ssa.value
val shl : t -> Ssa.value -> Ssa.value -> Ssa.value
val lshr : t -> Ssa.value -> Ssa.value -> Ssa.value
val i32 : int -> Ssa.value
val i1 : bool -> Ssa.value
val f32 : float -> Ssa.value
