(** Parser for the textual IR format emitted by {!Printer} — a
    hand-written lexer and recursive-descent parser, so kernels can be
    stored in [.cir] files, inspected, edited and fed back through the
    pipeline (and so tests can round-trip printer output).

    Forward references are legal only where SSA allows them (phi
    operands); everything else must be defined textually before use,
    which {!Verify} re-checks afterwards.  [;] starts a comment running
    to the end of the line. *)

exception Parse_error of string

(** Parse a module (a sequence of kernels) from a string. *)
val parse_module : name:string -> string -> (Ssa.modul, string) result

(** Parse a string containing exactly one kernel. *)
val parse_func : string -> (Ssa.func, string) result

val parse_file : string -> (Ssa.modul, string) result
