(** Instruction-level alignment: the match predicate and the FP_I scoring
    function of the paper (§IV-C), applied through Needleman–Wunsch.

    Two instructions are meldable ("match") under the criteria of Rocha
    et al. (Function Merging, PLDI'20), restricted to our IR: identical
    opcode, identical operand count, compatible operand and result types.
    Loads (and stores) of different address spaces still match — the
    melded access goes through a select of the two pointers, which
    degrades to the flat address space.  This is the mechanism behind the
    paper's flat-instruction counter changes (Fig. 10).

    FP_I(I1, I2) = lat(I1) - N_s * l_sel when the instructions match
    (N_s = number of select instructions needed for diverging operands),
    0 when they do not — in which case both must execute, so nothing is
    saved.  A gap run costs two branches regardless of its length, hence
    the affine gap with zero extension cost. *)

open Darm_ir
open Darm_ir.Ssa
module Latency = Darm_analysis.Latency

(** Result and operand types compatible for melding: equal, or both
    pointers (possibly of different address spaces). *)
let types_compatible (a : Types.ty) (b : Types.ty) : bool =
  Types.equal a b || (Types.is_pointer a && Types.is_pointer b)

let match_instrs (i1 : instr) (i2 : instr) : bool =
  Op.equal i1.op i2.op
  && Array.length i1.operands = Array.length i2.operands
  && types_compatible i1.ty i2.ty
  && Array.for_all2
       (fun a b -> types_compatible (value_ty a) (value_ty b))
       i1.operands i2.operands

(** Number of operand positions that need a select because the operands
    are (statically) different values.  An over-approximation of the
    post-melding count: operands that map to the same melded instruction
    collapse later, the paper accepts the same imprecision. *)
let selects_needed (i1 : instr) (i2 : instr) : int =
  let n = ref 0 in
  Array.iteri
    (fun k a -> if not (value_equal a i2.operands.(k)) then incr n)
    i1.operands;
  !n

let fp_i (c : Latency.config) (i1 : instr) (i2 : instr) : float option =
  if not (match_instrs i1 i2) then None
  else
    let saved = Latency.of_instr c i1 in
    let select_cost = selects_needed i1 i2 * c.select in
    Some (float_of_int (saved - select_cost))

(** Optimal alignment of the body instructions (no phis, no terminator)
    of two basic blocks. *)
let align_blocks (c : Latency.config) (b1 : block) (b2 : block) :
    (instr, instr) Sequence.aligned list =
  let body1 = Array.of_list (body b1) in
  let body2 = Array.of_list (body b2) in
  let gap = float_of_int (-2 * c.branch) in
  let alignment, _score =
    Sequence.needleman_wunsch ~score:(fp_i c) ~gap_open:gap ~gap_extend:0.
      body1 body2
  in
  alignment
