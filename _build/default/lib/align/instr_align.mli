(** Instruction-level alignment: the match predicate and the FP_I
    scoring function of the paper (§IV-C), applied through
    Needleman–Wunsch.

    FP_I(I1, I2) = lat(I1) - N_s * l_sel when the instructions match
    (N_s = number of selects needed for diverging operands), undefined
    (no alignment allowed) when they do not.  A gap run costs two
    branches regardless of its length, hence the affine gap with zero
    extension cost in {!align_blocks}. *)

open Darm_ir

(** Result and operand types compatible for melding: equal, or both
    pointers (possibly of different address spaces — the melded access
    degrades to flat addressing). *)
val types_compatible : Types.ty -> Types.ty -> bool

(** Meldability under the criteria of Rocha et al. (Function Merging,
    PLDI'20): identical opcode, identical operand count, compatible
    operand and result types. *)
val match_instrs : Ssa.instr -> Ssa.instr -> bool

(** Number of operand positions that statically differ — an
    over-approximation of the selects the meld will need. *)
val selects_needed : Ssa.instr -> Ssa.instr -> int

val fp_i :
  Darm_analysis.Latency.config -> Ssa.instr -> Ssa.instr -> float option

(** Optimal alignment of the body instructions (no phis, no terminator)
    of two basic blocks. *)
val align_blocks :
  Darm_analysis.Latency.config ->
  Ssa.block ->
  Ssa.block ->
  (Ssa.instr, Ssa.instr) Sequence.aligned list
