(** Generic pairwise sequence alignment.

    Two algorithms, both parameterised by a scoring function:
    - {!needleman_wunsch}: global alignment with affine gap penalties
      (Gotoh's algorithm) — used for instruction alignment, where the
      paper's gap cost is two branches per gap {e run}, independent of
      run length;
    - {!smith_waterman}: local alignment with linear gaps — provided for
      the subgraph-alignment formulation of the paper (the default
      melding pipeline uses the greedy pairing instead, as the paper's
      implementation does). *)

type ('a, 'b) aligned =
  | Both of 'a * 'b   (** proper alignment: "I-I" pair *)
  | Left of 'a        (** item of the first sequence aligned with a gap *)
  | Right of 'b       (** item of the second sequence aligned with a gap *)

let neg_inf = neg_infinity

(** [needleman_wunsch ~score ~gap_open ~gap_extend a b] computes an
    optimal global alignment.  [score x y] returns [None] when [x] and
    [y] must not be aligned (e.g. a load against a store) and [Some s]
    for a permitted alignment of benefit [s].  [gap_open] and
    [gap_extend] are non-positive costs for starting and extending a run
    of gaps.  Returns the alignment in order plus its total score. *)
let needleman_wunsch ~(score : 'a -> 'b -> float option)
    ~(gap_open : float) ~(gap_extend : float) (a : 'a array) (b : 'b array) :
    ('a, 'b) aligned list * float =
  let n = Array.length a and m = Array.length b in
  (* dp.(i).(j) considers a[0..i-1] vs b[0..j-1].
     Three matrices: mm = last move was a match, gx = last move consumed
     from a (gap in b), gy = last move consumed from b (gap in a). *)
  let mm = Array.make_matrix (n + 1) (m + 1) neg_inf in
  let gx = Array.make_matrix (n + 1) (m + 1) neg_inf in
  let gy = Array.make_matrix (n + 1) (m + 1) neg_inf in
  mm.(0).(0) <- 0.;
  for i = 1 to n do
    gx.(i).(0) <- gap_open +. (float_of_int (i - 1) *. gap_extend)
  done;
  for j = 1 to m do
    gy.(0).(j) <- gap_open +. (float_of_int (j - 1) *. gap_extend)
  done;
  let max3 x y z = max x (max y z) in
  for i = 1 to n do
    for j = 1 to m do
      (match score a.(i - 1) b.(j - 1) with
      | Some s ->
          mm.(i).(j) <-
            s +. max3 mm.(i - 1).(j - 1) gx.(i - 1).(j - 1) gy.(i - 1).(j - 1)
      | None -> mm.(i).(j) <- neg_inf);
      gx.(i).(j) <-
        max3
          (mm.(i - 1).(j) +. gap_open)
          (gx.(i - 1).(j) +. gap_extend)
          (gy.(i - 1).(j) +. gap_open);
      gy.(i).(j) <-
        max3
          (mm.(i).(j - 1) +. gap_open)
          (gy.(i).(j - 1) +. gap_extend)
          (gx.(i).(j - 1) +. gap_open)
    done
  done;
  (* traceback *)
  let best i j = max3 mm.(i).(j) gx.(i).(j) gy.(i).(j) in
  let rec walk i j acc =
    if i = 0 && j = 0 then acc
    else if i > 0 && j > 0 && best i j = mm.(i).(j) then
      walk (i - 1) (j - 1) (Both (a.(i - 1), b.(j - 1)) :: acc)
    else if i > 0 && (j = 0 || best i j = gx.(i).(j)) then
      walk (i - 1) j (Left a.(i - 1) :: acc)
    else walk i (j - 1) (Right b.(j - 1) :: acc)
  in
  let total = best n m in
  (walk n m [], total)

(** [smith_waterman ~score ~gap a b] computes the best-scoring local
    alignment (a contiguous aligned window of both sequences) with linear
    gap penalty [gap <= 0].  Returns the aligned window and its score
    (0 and [] when nothing scores positively). *)
let smith_waterman ~(score : 'a -> 'b -> float option) ~(gap : float)
    (a : 'a array) (b : 'b array) : ('a, 'b) aligned list * float =
  let n = Array.length a and m = Array.length b in
  let h = Array.make_matrix (n + 1) (m + 1) 0. in
  let best = ref 0. and best_ij = ref (0, 0) in
  for i = 1 to n do
    for j = 1 to m do
      let diag =
        match score a.(i - 1) b.(j - 1) with
        | Some s -> h.(i - 1).(j - 1) +. s
        | None -> neg_inf
      in
      let v = max 0. (max diag (max (h.(i - 1).(j) +. gap) (h.(i).(j - 1) +. gap))) in
      h.(i).(j) <- v;
      if v > !best then begin
        best := v;
        best_ij := (i, j)
      end
    done
  done;
  let rec walk i j acc =
    if h.(i).(j) = 0. then acc
    else
      let diag =
        match score a.(i - 1) b.(j - 1) with
        | Some s -> h.(i - 1).(j - 1) +. s
        | None -> neg_inf
      in
      if i > 0 && j > 0 && h.(i).(j) = diag then
        walk (i - 1) (j - 1) (Both (a.(i - 1), b.(j - 1)) :: acc)
      else if i > 0 && h.(i).(j) = h.(i - 1).(j) +. gap then
        walk (i - 1) j (Left a.(i - 1) :: acc)
      else walk i (j - 1) (Right b.(j - 1) :: acc)
  in
  let i0, j0 = !best_ij in
  (walk i0 j0 [], !best)
