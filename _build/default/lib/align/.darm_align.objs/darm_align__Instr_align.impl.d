lib/align/instr_align.ml: Array Darm_analysis Darm_ir Op Sequence Types
