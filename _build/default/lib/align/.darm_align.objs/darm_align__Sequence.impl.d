lib/align/sequence.ml: Array
