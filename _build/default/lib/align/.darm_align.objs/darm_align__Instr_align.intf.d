lib/align/instr_align.mli: Darm_analysis Darm_ir Sequence Ssa Types
