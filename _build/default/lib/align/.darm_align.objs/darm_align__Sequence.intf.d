lib/align/sequence.mli:
