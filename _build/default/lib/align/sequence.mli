(** Generic pairwise sequence alignment.

    Two algorithms, both parameterised by a scoring function:
    {!needleman_wunsch} (global alignment with affine gap penalties,
    Gotoh's algorithm) — used for instruction alignment, where the
    paper's gap cost is two branches per gap {e run}, independent of run
    length — and {!smith_waterman} (local alignment with linear gaps),
    provided for the subgraph-alignment formulation of §IV-C. *)

type ('a, 'b) aligned =
  | Both of 'a * 'b   (** proper alignment: "I-I" pair *)
  | Left of 'a        (** item of the first sequence aligned with a gap *)
  | Right of 'b       (** item of the second sequence aligned with a gap *)

(** [needleman_wunsch ~score ~gap_open ~gap_extend a b] computes an
    optimal global alignment.  [score x y] returns [None] when [x] and
    [y] must not be aligned (e.g. a load against a store) and [Some s]
    for a permitted alignment of benefit [s].  [gap_open] and
    [gap_extend] are non-positive costs for starting and extending a run
    of gaps.  Returns the alignment in order plus its total score. *)
val needleman_wunsch :
  score:('a -> 'b -> float option) ->
  gap_open:float ->
  gap_extend:float ->
  'a array ->
  'b array ->
  ('a, 'b) aligned list * float

(** [smith_waterman ~score ~gap a b] computes the best-scoring local
    alignment (a contiguous aligned window of both sequences) with
    linear gap penalty [gap <= 0].  Returns the aligned window and its
    score (0 and [[]] when nothing scores positively). *)
val smith_waterman :
  score:('a -> 'b -> float option) ->
  gap:float ->
  'a array ->
  'b array ->
  ('a, 'b) aligned list * float
