(** Random divergent-kernel generator for differential testing.

    Generates structured, race-free kernels over two global arrays and a
    shared scratchpad, with random arithmetic, nested divergent branches
    and small bounded loops.  Every memory index is masked to the array
    size and trapping operations are excluded, so any generated kernel
    is safe to execute for any input.

    The intended property (test suites and [darm_opt fuzz]): for every
    seed, the kernel's observable output is identical before and after
    any semantics-preserving transformation — the untransformed
    simulation is the oracle. *)

open Darm_ir

type cfg = {
  max_depth : int;       (** nesting depth of if/loop constructs *)
  stmts_per_block : int; (** statements per block (upper bound) *)
  array_size : int;      (** power of two *)
  use_shared : bool;
}

val default_cfg : cfg

(** Generate a kernel; deterministic in [seed]. *)
val generate : ?cfg:cfg -> seed:int -> unit -> Ssa.func

(** Build a runnable instance around a generated kernel (the [reference]
    accessor is empty: differential testing uses the untransformed run
    as the oracle). *)
val instance : ?cfg:cfg -> seed:int -> block_size:int -> unit -> Kernel.instance

(** Run the kernel untransformed and transformed on the same input;
    [Error] carries a description of the first output mismatch or the
    exception raised. *)
val check_transform :
  ?cfg:cfg ->
  seed:int ->
  block_size:int ->
  transform:(Ssa.func -> unit) ->
  unit ->
  (unit, string) result
