(** Parallel bottom-up merge sort per thread block, double-buffered in
    shared memory; the merge loop's data-dependent diamond is the
    meldable region. *)

val build : block_size:int -> Darm_ir.Ssa.func
val kernel : Kernel.t
