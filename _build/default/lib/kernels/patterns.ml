(** Dedicated control-flow-pattern kernels for the Table I capability
    matrix.  Unlike the SB benchmarks (whose two paths touch different
    arrays), [identical_diamond] duplicates {e literally identical}
    instruction sequences on both sides of a divergent branch — the one
    pattern classic tail merging can fully eliminate. *)

open Darm_ir
module Memory = Darm_sim.Memory
module D = Dsl

let identical_diamond : Kernel.t =
  let build ~block_size:_ =
    D.build_kernel ~name:"identical_diamond"
      ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        let gid = D.add ctx (D.mul ctx (D.bid ctx) (D.bdim ctx)) tid in
        let g = D.gep ctx a gid in
        let body () =
          let v = D.load ctx g in
          let v = D.add ctx (D.mul ctx v (D.i32 3)) (D.i32 1) in
          D.store ctx v g
        in
        (* the branch is divergent, but both sides are the same code:
           compilers emit this shape from macro expansion and inlining *)
        D.if_ ctx
          (D.eq ctx (D.and_ ctx tid (D.i32 1)) (D.i32 0))
          body body)
  in
  let make ~seed ~block_size ~n =
    let n = max block_size (n - (n mod block_size)) in
    let input = Kernel.random_int_array ~seed ~n ~bound:1000 in
    let global = Memory.create ~space:Memory.Sp_global n in
    let pa = Memory.alloc_of_int_array global input in
    {
      Kernel.func = build ~block_size;
      global;
      args = [| pa |];
      launch =
        { Darm_sim.Simulator.grid_dim = n / block_size; block_dim = block_size };
      read_result = (fun () -> Memory.read_int_array global pa n |> Kernel.ints);
      reference =
        (fun () -> Kernel.ints (Array.map (fun v -> (v * 3) + 1) input));
    }
  in
  {
    Kernel.name = "identical diamond";
    tag = "IDENT";
    description = "divergent diamond whose two paths are identical code";
    default_n = 1024;
    block_sizes = [ 64; 128; 256 ];
    make;
  }

(** A kernel whose divergent paths access {e different address spaces}
    with the same instruction sequence: the true path updates a shared
    scratch slot, the false path a global cell.  Melding the two loads
    (and stores) forces the access through a [select] of mixed-space
    pointers, which degrades to the {e flat} address space — the
    mechanism behind the flat-instruction counter changes in the paper's
    Fig. 10. *)
let flat_meld : Kernel.t =
  let build ~block_size =
    D.build_kernel ~name:"flat_meld"
      ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        let gid = D.add ctx (D.mul ctx (D.bid ctx) (D.bdim ctx)) tid in
        let s = D.shared_array ctx block_size in
        (* stage the first half of the block's data in shared memory *)
        let p_shared = D.gep ctx s tid in
        D.store ctx (D.load ctx (D.gep ctx a gid)) p_shared;
        D.sync ctx;
        let p_global = D.gep ctx a gid in
        D.if_ ctx
          (D.eq ctx (D.and_ ctx tid (D.i32 1)) (D.i32 0))
          (fun () ->
            let v = D.load ctx p_shared in
            D.store ctx (D.add ctx (D.mul ctx v (D.i32 3)) (D.i32 1)) p_shared)
          (fun () ->
            let v = D.load ctx p_global in
            D.store ctx (D.add ctx (D.mul ctx v (D.i32 3)) (D.i32 1)) p_global);
        D.sync ctx;
        (* write the shared half back *)
        D.if_then ctx
          (D.eq ctx (D.and_ ctx tid (D.i32 1)) (D.i32 0))
          (fun () -> D.store ctx (D.load ctx p_shared) p_global))
  in
  let make ~seed ~block_size ~n =
    let n = max block_size (n - (n mod block_size)) in
    let input = Kernel.random_int_array ~seed ~n ~bound:1000 in
    let global = Memory.create ~space:Memory.Sp_global n in
    let pa = Memory.alloc_of_int_array global input in
    {
      Kernel.func = build ~block_size;
      global;
      args = [| pa |];
      launch =
        { Darm_sim.Simulator.grid_dim = n / block_size; block_dim = block_size };
      read_result = (fun () -> Memory.read_int_array global pa n |> Kernel.ints);
      reference =
        (fun () -> Kernel.ints (Array.map (fun v -> (v * 3) + 1) input));
    }
  in
  {
    Kernel.name = "mixed address-space diamond";
    tag = "FLAT";
    description =
      "identical code over shared (true path) and global (false path) \
       memory; melding produces flat accesses";
    default_n = 1024;
    block_sizes = [ 64; 128; 256 ];
    make;
  }
