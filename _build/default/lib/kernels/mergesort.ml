(** Parallel bottom-up merge sort (paper §VI-A "Merge sort").

    Each thread block sorts its bucket in shared memory with a
    double-buffered bottom-up merge.  The merge step's inner loop has
    the classic data-dependent diamond

    {v if (src[i] <= src[j]) dst[k] = src[i++]; else dst[k] = src[j++] v}

    which is meldable by both branch fusion and DARM (simple diamond,
    near-identical instruction sequences). *)

open Darm_ir
module Memory = Darm_sim.Memory
module D = Dsl

(* non-short-circuit boolean connectives over i1 (operands are pure) *)
let b_and ctx a b = D.select ctx a b (D.i1 false)
let b_or ctx a b = D.select ctx a (D.i1 true) b

let build ~(block_size : int) : Ssa.func =
  if block_size land (block_size - 1) <> 0 then
    invalid_arg "Mergesort.build: block size must be a power of two";
  let bs = block_size in
  D.build_kernel ~name:"merge_sort"
    ~params:[ ("values", Types.Ptr Types.Global) ]
    (fun ctx params ->
      let values = List.hd params in
      let tid = D.tid ctx in
      let gid = D.add ctx (D.mul ctx (D.bid ctx) (D.bdim ctx)) tid in
      let s1 = D.shared_array ctx bs in
      let s2 = D.shared_array ctx bs in
      D.store ctx (D.load ctx (D.gep ctx values gid)) (D.gep ctx s1 tid);
      D.sync ctx;
      let src = D.local ctx ~name:"src" (Types.Ptr Types.Shared) in
      let dst = D.local ctx ~name:"dst" (Types.Ptr Types.Shared) in
      D.set ctx src s1;
      D.set ctx dst s2;
      let width = D.local ctx ~name:"width" Types.I32 in
      D.set ctx width (D.i32 1);
      D.while_ ctx
        (fun () -> D.slt ctx (D.get ctx width) (D.i32 bs))
        (fun () ->
          let w = D.get ctx width in
          let w2 = D.mul ctx w (D.i32 2) in
          let is_merger =
            D.eq ctx (D.srem ctx tid w2) (D.i32 0)
          in
          D.if_then ctx is_merger (fun () ->
              let sv = D.get ctx src and dv = D.get ctx dst in
              let i = D.local ctx ~name:"i" Types.I32 in
              let j = D.local ctx ~name:"j" Types.I32 in
              let iend = D.add ctx tid w in
              let jend = D.add ctx tid w2 in
              D.set ctx i tid;
              D.set ctx j iend;
              D.for_up ctx ~name:"k" ~from:tid ~until:jend (fun kv ->
                  let iv = D.get ctx i and jv = D.get ctx j in
                  (* clamped speculative loads; the select below only
                     uses the in-range one *)
                  let av =
                    D.load ctx
                      (D.gep ctx sv (D.smin ctx iv (D.i32 (bs - 1))))
                  in
                  let bv =
                    D.load ctx
                      (D.gep ctx sv (D.smin ctx jv (D.i32 (bs - 1))))
                  in
                  let take_left =
                    b_or ctx
                      (D.sge ctx jv jend)
                      (b_and ctx (D.slt ctx iv iend) (D.sle ctx av bv))
                  in
                  let p_out = D.gep ctx dv kv in
                  D.if_ ctx take_left
                    (fun () ->
                      D.store ctx av p_out;
                      D.set ctx i (D.add ctx (D.get ctx i) (D.i32 1)))
                    (fun () ->
                      D.store ctx bv p_out;
                      D.set ctx j (D.add ctx (D.get ctx j) (D.i32 1)))));
          D.sync ctx;
          let tmp = D.get ctx src in
          D.set ctx src (D.get ctx dst);
          D.set ctx dst tmp;
          D.set ctx width w2);
      D.store ctx (D.load ctx (D.gep ctx (D.get ctx src) tid))
        (D.gep ctx values gid))

let kernel : Kernel.t =
  let make ~seed ~block_size ~n =
    let n = max block_size (n - (n mod block_size)) in
    let input = Kernel.random_int_array ~seed ~n ~bound:100000 in
    let global = Memory.create ~space:Memory.Sp_global n in
    let pv = Memory.alloc_of_int_array global input in
    {
      Kernel.func = build ~block_size;
      global;
      args = [| pv |];
      launch =
        { Darm_sim.Simulator.grid_dim = n / block_size; block_dim = block_size };
      read_result =
        (fun () -> Memory.read_int_array global pv n |> Kernel.ints);
      reference =
        (fun () ->
          let out = Array.copy input in
          let nblocks = n / block_size in
          for b = 0 to nblocks - 1 do
            let bucket = Array.sub out (b * block_size) block_size in
            Array.sort compare bucket;
            Array.blit bucket 0 out (b * block_size) block_size
          done;
          Kernel.ints out);
    }
  in
  {
    Kernel.name = "Merge sort";
    tag = "MS";
    description =
      "bottom-up merge sort per thread block; data-dependent diamond in \
       the merge loop";
    default_n = 1024;
    block_sizes = [ 64; 128; 256; 512 ];
    make;
  }
