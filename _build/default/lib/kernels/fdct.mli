(** Floating-point DCT quantization (extension workload): the {!Dct}
    pattern over f32 coefficients, exercising float alignment and
    melding end to end. *)

val build : block_size:int -> Darm_ir.Ssa.func
val kernel : Kernel.t
