(** Floating-point DCT quantization (extension workload).

    The same sign-dependent quantization pattern as {!Dct}, but over f32
    coefficients: divergent paths full of [fmul]/[fdiv]/[fcmp] that the
    melder must align and disambiguate with float selects.  Not part of
    the paper's figure set; exercises the F32 side of the IR, alignment
    and simulator end to end. *)

open Darm_ir
module Memory = Darm_sim.Memory
module D = Dsl

let build ~block_size:_ : Ssa.func =
  D.build_kernel ~name:"fdct_quantize"
    ~params:
      [ ("plane", Types.Ptr Types.Global); ("quant", Types.Ptr Types.Global) ]
    (fun ctx params ->
      let plane, quant =
        match params with [ p; q ] -> (p, q) | _ -> assert false
      in
      let tid = D.tid ctx in
      let gid = D.add ctx (D.mul ctx (D.bid ctx) (D.bdim ctx)) tid in
      let v = D.load_f ctx (D.gep ctx plane gid) in
      let q = D.load_f ctx (D.gep ctx quant (D.and_ ctx gid (D.i32 63))) in
      let r = D.local ctx ~name:"r" Types.F32 in
      D.if_ ctx
        (D.fcmp ctx Op.Foge v (D.f32 0.))
        (fun () ->
          let scaled = D.fdiv ctx v q in
          let rounded = D.fadd ctx scaled (D.f32 0.5) in
          D.set ctx r (D.fmul ctx rounded q))
        (fun () ->
          let scaled = D.fdiv ctx v q in
          let rounded = D.fsub ctx scaled (D.f32 0.5) in
          D.set ctx r (D.fmul ctx rounded q));
      D.store ctx (D.get ctx r) (D.gep ctx plane gid))

let host_one (v : float) (q : float) : float =
  if v >= 0. then (v /. q +. 0.5) *. q else (v /. q -. 0.5) *. q

let kernel : Kernel.t =
  let make ~seed ~block_size ~n =
    let n = max block_size (n - (n mod block_size)) in
    let next = Kernel.rng seed in
    let plane =
      Array.init n (fun _ -> float_of_int (next () mod 2000 - 1000) /. 8.)
    in
    let quant =
      Array.init 64 (fun _ -> float_of_int (1 + (next () mod 31)))
    in
    let global = Memory.create ~space:Memory.Sp_global (n + 64) in
    let pplane = Memory.alloc_of_float_array global plane in
    let pquant = Memory.alloc_of_float_array global quant in
    {
      Kernel.func = build ~block_size;
      global;
      args = [| pplane; pquant |];
      launch =
        { Darm_sim.Simulator.grid_dim = n / block_size; block_dim = block_size };
      read_result =
        (fun () ->
          Memory.read_float_array global pplane n
          |> Array.map (fun x -> Memory.Rfloat x));
      reference =
        (fun () ->
          Array.mapi
            (fun k v -> Memory.Rfloat (host_one v quant.(k land 63)))
            plane);
    }
  in
  {
    Kernel.name = "DCT quantization (f32)";
    tag = "FDCT";
    description =
      "sign-dependent quantization over f32 coefficients; float-heavy \
       divergent diamond";
    default_n = 2048;
    block_sizes = [ 64; 128; 256 ];
    make;
  }
