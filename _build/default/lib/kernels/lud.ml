(** LUD perimeter (Rodinia) — simplified to the structure that matters
    for the evaluation.

    The real [lud_perimeter] kernel splits each thread block in half:
    the first half updates the row strip of the tile perimeter, the
    second half the column strip, with long unrolled update sequences on
    both sides.  Reproduced here:

    - the branch [tid < block_dim/2] is thread-dependent, so it is
      statically divergent, but it is {e dynamically} divergent only
      when [block_dim/2] is smaller than the warp width (paper: LUD is
      divergent only at block sizes 16/32/64 on a 64-wide machine);
    - both sides are long straight-line blocks (manually unrolled
      [steps] update steps), which is why LUD dominates the
      instruction-alignment compile time in Table II;
    - the diamond shape is exactly what branch fusion can also handle
      (Table I / §VI-A). *)

open Darm_ir
module Memory = Darm_sim.Memory
module D = Dsl

let steps = 16

(* per-step multiplier constants, same for kernel and reference *)
let step_const (c : int) = (c * 7) + 3

let build ~(block_size : int) : Ssa.func =
  let half = block_size / 2 in
  D.build_kernel ~name:"lud_perimeter"
    ~params:
      [
        ("row", Types.Ptr Types.Global);
        ("col", Types.Ptr Types.Global);
        ("diag", Types.Ptr Types.Global);
        ("dn", Types.I32);
      ]
    (fun ctx params ->
      let row, col, diag, dn =
        match params with
        | [ r; c; d; n ] -> (r, c, d, n)
        | _ -> assert false
      in
      let tid = D.tid ctx in
      let emit_side (arr : Ssa.value) (local_tid : Ssa.value) =
        let i =
          D.add ctx (D.mul ctx (D.bid ctx) (D.i32 half)) local_tid
        in
        let acc = D.local ctx ~name:"acc" Types.I32 in
        D.set ctx acc (D.load ctx (D.gep ctx arr i));
        for c = 0 to steps - 1 do
          let idx = D.srem ctx (D.add ctx i (D.i32 c)) dn in
          let d = D.load ctx (D.gep ctx diag idx) in
          let t = D.mul ctx d (D.i32 (step_const c)) in
          D.set ctx acc (D.add ctx (D.xor ctx (D.get ctx acc) t) (D.i32 c))
        done;
        D.store ctx (D.get ctx acc) (D.gep ctx arr i)
      in
      D.if_ ctx
        (D.slt ctx tid (D.i32 half))
        (fun () -> emit_side row tid)
        (fun () -> emit_side col (D.sub ctx tid (D.i32 half))))

(* host mirror of one side *)
let host_side (arr : int array) (diag : int array) (i : int) : unit =
  let dn = Array.length diag in
  let acc = ref arr.(i) in
  for c = 0 to steps - 1 do
    let d = diag.((i + c) mod dn) in
    acc := (!acc lxor (d * step_const c)) + c
  done;
  arr.(i) <- !acc

let kernel : Kernel.t =
  let make ~seed ~block_size ~n =
    let half = max 1 (block_size / 2) in
    let n = max half (n - (n mod half)) in
    let row = Kernel.random_int_array ~seed ~n ~bound:1000 in
    let col = Kernel.random_int_array ~seed:(seed + 1) ~n ~bound:1000 in
    let dn = 64 in
    let diag = Kernel.random_int_array ~seed:(seed + 2) ~n:dn ~bound:100 in
    let global = Memory.create ~space:Memory.Sp_global ((2 * n) + dn) in
    let prow = Memory.alloc_of_int_array global row in
    let pcol = Memory.alloc_of_int_array global col in
    let pdiag = Memory.alloc_of_int_array global diag in
    {
      Kernel.func = build ~block_size;
      global;
      args = [| prow; pcol; pdiag; Memory.Rint dn |];
      launch =
        { Darm_sim.Simulator.grid_dim = n / half; block_dim = block_size };
      read_result =
        (fun () ->
          Array.append
            (Memory.read_int_array global prow n)
            (Memory.read_int_array global pcol n)
          |> Kernel.ints);
      reference =
        (fun () ->
          let r = Array.copy row and c = Array.copy col in
          for i = 0 to n - 1 do
            host_side r diag i;
            host_side c diag i
          done;
          Array.append r c |> Kernel.ints);
    }
  in
  {
    Kernel.name = "LU decomposition (perimeter)";
    tag = "LUD";
    description =
      "row/column strip updates split across the thread block; large \
       diamond whose divergence depends on the block size";
    default_n = 1024;
    block_sizes = [ 16; 32; 64; 128; 256 ];
    make;
  }
