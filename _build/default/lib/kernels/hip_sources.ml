(** The evaluation kernels written in Mini-HIP source (block size 64).

    Each source compiles through {!Darm_frontend} to the same behaviour
    as the corresponding builder-constructed kernel in this library; the
    test suite runs both on identical inputs and requires identical
    outputs.  They double as documentation: this is what a user's
    HIP-style code looks like before DARM melds it. *)

(* The synthetic benchmarks share one skeleton (paper Fig. 6); the
   differences are the pattern of the divergent body and the two
   computations. *)

let sb_skeleton ~(true_body : string) ~(false_body : string) : string =
  Printf.sprintf
    {|
__global__ void sb(int* a, int* b, int* p, int* q) {
  __shared__ int sa[64];
  __shared__ int sb_[64];
  __shared__ int sp[64];
  __shared__ int sq[64];
  int t = threadIdx();
  int gid = blockIdx() * blockDim() + t;
  sa[t] = a[gid];
  sb_[t] = b[gid];
  sp[t] = p[gid];
  sq[t] = q[gid];
  __syncthreads();
  for (int i = 0; i < 4; i++) {
    for (int j = 0; j < 4; j++) {
      if (((t + i + j) & 1) == 0) {
%s
      } else {
%s
      }
    }
  }
  __syncthreads();
  a[gid] = sa[t];
  p[gid] = sp[t];
}
|}
    true_body false_body

(* x := x*y + x + (i + j) over (arr, aux) *)
let comp_mul_add arr aux =
  Printf.sprintf "        %s[t] = %s[t] * %s[t] + %s[t] + (i + j);" arr arr
    aux arr

(* x := (x ^ y) + (x >> 1) + 3*j *)
let comp_xor_shift arr aux =
  Printf.sprintf "        %s[t] = (%s[t] ^ %s[t]) + (%s[t] >> 1) + 3 * j;"
    arr arr aux arr

(* x := x + y*2 - i *)
let comp_addsub arr aux =
  Printf.sprintf "        %s[t] = %s[t] + %s[t] * 2 - i;" arr arr aux

(* x := max(x, y) + (y & 7) *)
let comp_max_mask arr aux =
  Printf.sprintf "        %s[t] = max(%s[t], %s[t]) + (%s[t] & 7);" arr arr
    aux aux

let guarded comp arr aux =
  Printf.sprintf "        if (%s[t] < %s[t]) {\n  %s\n        }" arr aux
    (comp arr aux)

let guarded2 comp arr aux =
  Printf.sprintf "        if (%s[t] > j * 4) {\n  %s\n        }" arr
    (comp arr aux)

let sb1 =
  sb_skeleton
    ~true_body:(comp_mul_add "sa" "sb_")
    ~false_body:(comp_mul_add "sp" "sq")

let sb1_r =
  sb_skeleton
    ~true_body:(comp_mul_add "sa" "sb_")
    ~false_body:(comp_xor_shift "sp" "sq")

let sb2 =
  sb_skeleton
    ~true_body:(guarded comp_mul_add "sa" "sb_")
    ~false_body:(guarded comp_mul_add "sp" "sq")

let sb2_r =
  sb_skeleton
    ~true_body:(guarded comp_mul_add "sa" "sb_")
    ~false_body:(guarded comp_xor_shift "sp" "sq")

let sb3 =
  sb_skeleton
    ~true_body:
      (guarded comp_mul_add "sa" "sb_" ^ "\n"
      ^ guarded2 comp_addsub "sa" "sb_")
    ~false_body:
      (guarded comp_mul_add "sp" "sq" ^ "\n"
      ^ guarded2 comp_addsub "sp" "sq")

let sb3_r =
  sb_skeleton
    ~true_body:
      (guarded comp_mul_add "sa" "sb_" ^ "\n"
      ^ guarded2 comp_addsub "sa" "sb_")
    ~false_body:
      (guarded comp_xor_shift "sp" "sq" ^ "\n"
      ^ guarded2 comp_max_mask "sp" "sq")

(* The paper's running example, Fig. 1 (block size 64). *)
let bitonic =
  {|
__global__ void bitonic(int* values) {
  __shared__ int shared[64];
  int tid = threadIdx();
  int gid = blockIdx() * blockDim() + tid;
  shared[tid] = values[gid];
  __syncthreads();
  for (int k = 2; k <= 64; k *= 2) {
    for (int j = k / 2; j > 0; j /= 2) {
      int ixj = tid ^ j;
      if (ixj > tid) {
        if ((tid & k) == 0) {
          if (shared[ixj] < shared[tid]) {
            int tmp = shared[tid];
            shared[tid] = shared[ixj];
            shared[ixj] = tmp;
          }
        } else {
          if (shared[ixj] > shared[tid]) {
            int tmp = shared[tid];
            shared[tid] = shared[ixj];
            shared[ixj] = tmp;
          }
        }
      }
      __syncthreads();
    }
  }
  values[gid] = shared[tid];
}
|}

let dct =
  {|
__global__ void dct_quantize(int* plane, int* quant) {
  int t = threadIdx();
  int gid = blockIdx() * blockDim() + t;
  int v = plane[gid];
  int q = quant[gid & 63];
  int r = 0;
  if (v >= 0) {
    r = (v + q / 2) / q * q;
  } else {
    int av = 0 - v;
    r = 0 - ((av + q / 2) / q * q);
  }
  plane[gid] = r;
}
|}

(* Bottom-up merge sort in shared memory; the builder version's pointer
   double-buffering becomes base-offset arithmetic into one array. *)
let mergesort =
  {|
__global__ void merge_sort(int* values) {
  __shared__ int s[128];
  int t = threadIdx();
  int gid = blockIdx() * blockDim() + t;
  s[t] = values[gid];
  __syncthreads();
  int srcbase = 0;
  int dstbase = 64;
  for (int width = 1; width < 64; width *= 2) {
    if (t % (2 * width) == 0) {
      int i = t;
      int j = t + width;
      int iend = t + width;
      int jend = t + 2 * width;
      for (int k = t; k < jend; k++) {
        int av = s[srcbase + min(i, 63)];
        int bv = s[srcbase + min(j, 63)];
        if (j >= jend || (i < iend && av <= bv)) {
          s[dstbase + k] = av;
          i++;
        } else {
          s[dstbase + k] = bv;
          j++;
        }
      }
    }
    __syncthreads();
    int tmp = srcbase;
    srcbase = dstbase;
    dstbase = tmp;
  }
  values[gid] = s[srcbase + t];
}
|}

(* LUD perimeter: the 16 unrolled update steps of the builder version as
   a counted loop (same value semantics). *)
let lud =
  {|
__global__ void lud_perimeter(int* row, int* col, int* diag, int dn) {
  int t = threadIdx();
  if (t < 32) {
    int i = blockIdx() * 32 + t;
    int acc = row[i];
    for (int c = 0; c < 16; c++) {
      acc = (acc ^ (diag[(i + c) % dn] * (c * 7 + 3))) + c;
    }
    row[i] = acc;
  } else {
    int t2 = t - 32;
    int i = blockIdx() * 32 + t2;
    int acc = col[i];
    for (int c = 0; c < 16; c++) {
      acc = (acc ^ (diag[(i + c) % dn] * (c * 7 + 3))) + c;
    }
    col[i] = acc;
  }
}
|}

(* PCM bucket merge (bucket length 8, block size 64): even threads build
   the lower half of the pair's merge forwards, odd threads the upper
   half backwards. *)
let pcm =
  {|
__global__ void pcm_merge(int* src, int* dst) {
  __shared__ int s_in[512];
  __shared__ int s_out[512];
  int t = threadIdx();
  int gid = blockIdx() * blockDim() + t;
  for (int e = 0; e < 8; e++) {
    s_in[t * 8 + e] = src[gid * 8 + e];
  }
  __syncthreads();
  int pair_base = (t & 65534) * 8;
  int a_base = pair_base;
  int b_base = pair_base + 8;
  if ((t & 1) == 0) {
    int i = 0;
    int j = 0;
    for (int k = 0; k < 8; k++) {
      int av = s_in[a_base + min(i, 7)];
      int bv = s_in[b_base + min(j, 7)];
      if (j >= 8 || (i < 8 && av <= bv)) {
        s_out[a_base + k] = av;
        i++;
      } else {
        s_out[a_base + k] = bv;
        j++;
      }
    }
  } else {
    int i = 7;
    int j = 7;
    for (int k = 0; k < 8; k++) {
      int av = s_in[a_base + max(i, 0)];
      int bv = s_in[b_base + max(j, 0)];
      if (j < 0 || (i >= 0 && av > bv)) {
        s_out[b_base + 7 - k] = av;
        i--;
      } else {
        s_out[b_base + 7 - k] = bv;
        j--;
      }
    }
  }
  __syncthreads();
  for (int e = 0; e < 8; e++) {
    dst[gid * 8 + e] = s_out[t * 8 + e];
  }
}
|}

let fdct =
  {|
__global__ void fdct_quantize(float* plane, float* quant) {
  int t = threadIdx();
  int gid = blockIdx() * blockDim() + t;
  float v = plane[gid];
  float q = quant[gid & 63];
  float r = 0.0;
  if (v >= 0.0) {
    r = (v / q + 0.5) * q;
  } else {
    r = (v / q - 0.5) * q;
  }
  plane[gid] = r;
}
|}

(** (tag, source) pairs matched against the builder kernels at block
    size 64 by the test suite. *)
let all : (string * string) list =
  [
    ("SB1", sb1);
    ("SB1-R", sb1_r);
    ("SB2", sb2);
    ("SB2-R", sb2_r);
    ("SB3", sb3);
    ("SB3-R", sb3_r);
    ("BIT", bitonic);
    ("DCT", dct);
    ("MS", mergesort);
    ("LUD", lud);
    ("PCM", pcm);
    ("FDCT", fdct);
  ]
