(** Random divergent-kernel generator for differential testing.

    Generates structured kernels over two global arrays (and optionally
    a shared scratch array) with random arithmetic, nested divergent
    branches and small bounded loops.  Every memory index is masked to
    the array size, and trapping operations are excluded, so any
    generated kernel is safe to execute for any input.

    The intended property (used by the test suite and `darm_opt fuzz`):
    for every seed, the kernel's observable output is identical before
    and after any semantics-preserving transformation — melding, branch
    fusion, tail merging, SimplifyCFG, DCE.  No host-side reference is
    needed; the untransformed simulation is the oracle. *)

open Darm_ir
module Memory = Darm_sim.Memory
module D = Dsl

type cfg = {
  max_depth : int;       (** nesting depth of if/loop constructs *)
  stmts_per_block : int; (** statements per block (upper bound) *)
  array_size : int;      (** power of two *)
  use_shared : bool;
}

let default_cfg =
  { max_depth = 3; stmts_per_block = 4; array_size = 256; use_shared = true }

(* Race-freedom discipline: divergent-path melding reorders code from
   the two sides of a branch, which is only semantics-preserving for
   data-race-free kernels (the usual compiler assumption; racy GPU code
   is undefined).  The generator therefore only emits:
   - loads from read-only arrays ([a] and the shared scratch, which is
     written once before a barrier) at arbitrary masked indices, and
   - loads/stores of the thread's own cell of the output array [b]. *)
type gen_state = {
  rng : Random.State.t;
  ctx : D.ctx;
  vars : D.var array;        (** mutable integer locals *)
  ro_arrays : Ssa.value list;  (** read-only: any masked index is safe *)
  own_cell : Ssa.value;      (** this thread's private output cell *)
  mask : Ssa.value;          (** array_size - 1 *)
  gid : Ssa.value;
  tid : Ssa.value;
}

let pick g (choices : 'a array) : 'a =
  choices.(Random.State.int g.rng (Array.length choices))

let rand g n = Random.State.int g.rng n

(* a random pure i32 expression over the current variable pool *)
let rec gen_expr g (depth : int) : Ssa.value =
  let leaf () =
    match rand g 5 with
    | 0 -> D.i32 (rand g 64)
    | 1 -> g.gid
    | 2 -> g.tid
    | 3 -> D.get g.ctx (pick g g.vars)
    | _ -> (
        match rand g 3 with
        | 0 -> D.load g.ctx g.own_cell
        | _ ->
            let arr = pick g (Array.of_list g.ro_arrays) in
            let idx = D.and_ g.ctx (D.get g.ctx (pick g g.vars)) g.mask in
            D.load g.ctx (D.gep g.ctx arr idx))
  in
  if depth = 0 then leaf ()
  else
    match rand g 9 with
    | 0 -> D.add g.ctx (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 1 -> D.sub g.ctx (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 2 -> D.mul g.ctx (gen_expr g (depth - 1)) (D.i32 (1 + rand g 7))
    | 3 -> D.xor g.ctx (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 4 -> D.and_ g.ctx (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 5 -> D.smin g.ctx (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 6 -> D.smax g.ctx (gen_expr g (depth - 1)) (gen_expr g (depth - 1))
    | 7 ->
        D.select g.ctx (gen_cond g)
          (gen_expr g (depth - 1))
          (gen_expr g (depth - 1))
    | _ -> leaf ()

and gen_cond g : Ssa.value =
  let a = gen_expr g 1 and b = gen_expr g 1 in
  match rand g 4 with
  | 0 -> D.slt g.ctx a b
  | 1 -> D.sle g.ctx a b
  | 2 -> D.eq g.ctx (D.and_ g.ctx a (D.i32 3)) (D.i32 (rand g 4))
  | _ -> D.sgt g.ctx a b

let gen_store g = D.store g.ctx (gen_expr g 2) g.own_cell

let rec gen_stmt g (depth : int) =
  match rand g (if depth > 0 then 6 else 2) with
  | 0 -> D.set g.ctx (pick g g.vars) (gen_expr g 2)
  | 1 -> gen_store g
  | 2 ->
      (* divergent if/else: similar shapes on both sides feed the
         melder *)
      D.if_ g.ctx (gen_cond g)
        (fun () -> gen_block g (depth - 1))
        (fun () -> gen_block g (depth - 1))
  | 3 -> D.if_then g.ctx (gen_cond g) (fun () -> gen_block g (depth - 1))
  | 4 ->
      let trip = 1 + rand g 3 in
      D.for_up g.ctx ~from:(D.i32 0) ~until:(D.i32 trip) (fun iv ->
          D.set g.ctx (pick g g.vars)
            (D.add g.ctx (D.get g.ctx (pick g g.vars)) iv);
          gen_block g (depth - 1))
  | _ -> D.set g.ctx (pick g g.vars) (gen_expr g 2)

and gen_block g (depth : int) =
  let n = 1 + rand g (max 1 default_cfg.stmts_per_block) in
  for _ = 1 to n do
    gen_stmt g depth
  done

(** Generate a kernel; deterministic in [seed]. *)
let generate ?(cfg = default_cfg) ~(seed : int) () : Ssa.func =
  D.build_kernel
    ~name:(Printf.sprintf "fuzz_%d" seed)
    ~params:[ ("a", Types.Ptr Types.Global); ("b", Types.Ptr Types.Global) ]
    (fun ctx params ->
      let a, b = match params with [ a; b ] -> (a, b) | _ -> assert false in
      let rng = Random.State.make [| seed; 0x9E3779B9 |] in
      let tid = D.tid ctx in
      let gid = D.add ctx (D.mul ctx (D.bid ctx) (D.bdim ctx)) tid in
      let mask_c = D.i32 (cfg.array_size - 1) in
      let own_cell = D.gep ctx b (D.and_ ctx gid mask_c) in
      let ro_arrays =
        if cfg.use_shared then begin
          let s = D.shared_array ctx cfg.array_size in
          (* the threads cooperatively seed the whole scratchpad (the
             block may be smaller than the array), then a uniform barrier
             makes it effectively read-only for the divergent code *)
          let bd = D.bdim ctx in
          let rounds = D.sdiv ctx (D.i32 cfg.array_size) bd in
          let rounds = D.smax ctx rounds (D.i32 1) in
          D.for_up ctx ~name:"seedr" ~from:(D.i32 0) ~until:rounds (fun e ->
              let idx =
                D.and_ ctx (D.add ctx tid (D.mul ctx e bd)) mask_c
              in
              D.store ctx
                (D.add ctx (D.mul ctx idx (D.i32 3))
                   (D.load ctx (D.gep ctx a idx)))
                (D.gep ctx s idx));
          D.sync ctx;
          [ a; s ]
        end
        else [ a ]
      in
      let g =
        {
          rng;
          ctx;
          vars =
            Array.init 4 (fun k ->
                let v = D.local ctx ~name:(Printf.sprintf "v%d" k) Types.I32 in
                D.set ctx v
                  (match k with
                  | 0 -> gid
                  | 1 -> tid
                  | 2 -> D.i32 (Random.State.int rng 100)
                  | _ -> D.load ctx (D.gep ctx a (D.and_ ctx gid (D.i32 (cfg.array_size - 1)))));
                v);
          ro_arrays;
          own_cell;
          mask = mask_c;
          gid;
          tid;
        }
      in
      gen_block g cfg.max_depth;
      (* make the variable state observable *)
      let out = D.add ctx (D.get ctx g.vars.(0)) (D.get ctx g.vars.(1)) in
      let out = D.xor ctx out (D.get ctx g.vars.(2)) in
      let out = D.add ctx out (D.get ctx g.vars.(3)) in
      D.store ctx out (D.gep ctx b (D.and_ ctx gid g.mask)))

(** Build a runnable instance around a generated kernel. *)
let instance ?(cfg = default_cfg) ~(seed : int) ~(block_size : int) () :
    Kernel.instance =
  let n = cfg.array_size in
  let a_init = Kernel.random_int_array ~seed:(seed + 1) ~n ~bound:1000 in
  let b_init = Kernel.random_int_array ~seed:(seed + 2) ~n ~bound:1000 in
  let global = Memory.create ~space:Memory.Sp_global (2 * n) in
  let pa = Memory.alloc_of_int_array global a_init in
  let pb = Memory.alloc_of_int_array global b_init in
  {
    Kernel.func = generate ~cfg ~seed ();
    global;
    args = [| pa; pb |];
    launch =
      {
        Darm_sim.Simulator.grid_dim = max 1 (n / block_size);
        block_dim = block_size;
      };
    read_result =
      (fun () ->
        Array.append
          (Memory.read_int_array global pa n)
          (Memory.read_int_array global pb n)
        |> Kernel.ints);
    reference = (fun () -> [||]);
    (* differential testing: the untransformed run is the oracle *)
  }

(** Differential check: run the kernel untransformed and transformed on
    the same input; returns [Ok ()] or a failure description. *)
let check_transform ?(cfg = default_cfg) ~(seed : int) ~(block_size : int)
    ~(transform : Ssa.func -> unit) () : (unit, string) result =
  let sim_cfg =
    {
      Darm_sim.Simulator.default_config with
      max_cycles_per_warp = 10_000_000;
    }
  in
  let run inst =
    ignore
      (Darm_sim.Simulator.run ~config:sim_cfg inst.Kernel.func
         ~args:inst.Kernel.args ~global:inst.Kernel.global inst.Kernel.launch);
    inst.Kernel.read_result ()
  in
  let base_inst = instance ~cfg ~seed ~block_size () in
  let opt_inst = instance ~cfg ~seed ~block_size () in
  match
    transform opt_inst.Kernel.func;
    Verify.run_exn opt_inst.Kernel.func;
    (run base_inst, run opt_inst)
  with
  | base_out, opt_out ->
      if Kernel.rv_array_equal base_out opt_out then Ok ()
      else
        let k =
          match Kernel.first_mismatch base_out opt_out with
          | Some k -> k
          | None -> -1
        in
        Error
          (Printf.sprintf
             "seed %d bs %d: outputs differ at index %d (%s vs %s)" seed
             block_size k
             (Kernel.rv_to_string base_out.(k))
             (Kernel.rv_to_string opt_out.(k)))
  | exception e ->
      Error (Printf.sprintf "seed %d bs %d: %s" seed block_size
               (Printexc.to_string e))
