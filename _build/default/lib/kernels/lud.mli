(** LUD perimeter (Rodinia), simplified to the structure that matters:
    a large diamond splitting the block into row/column halves with long
    unrolled update sequences; dynamically divergent only when half the
    block is narrower than the warp. *)

val build : block_size:int -> Darm_ir.Ssa.func
val kernel : Kernel.t
