(** Common benchmark-kernel interface.

    A kernel bundles the IR builder with a deterministic workload: given
    a block size, an element count and a seed it produces a fresh
    {!instance} — IR function, populated global memory, launch geometry,
    and accessors for the observable output plus a host-side reference.
    Fresh instances are required because transformations mutate the IR
    in place; the baseline and the transformed run each get their own. *)

open Darm_ir
module Memory = Darm_sim.Memory
module Simulator = Darm_sim.Simulator

type instance = {
  func : Ssa.func;
  global : Memory.t;
  args : Memory.rv array;
  launch : Simulator.launch;
  read_result : unit -> Memory.rv array;
      (** observable output after execution *)
  reference : unit -> Memory.rv array;
      (** host-side expected output for the same input *)
}

type t = {
  name : string;
  tag : string;  (** short label used in figures: SB1, BIT, LUD, ... *)
  description : string;
  default_n : int;
  block_sizes : int list;  (** the block-size sweep of the evaluation *)
  make : seed:int -> block_size:int -> n:int -> instance;
}

(** Deterministic pseudo-random generator, so baseline and transformed
    instances see identical inputs for a given seed. *)
val rng : int -> unit -> int

val random_int_array : seed:int -> n:int -> bound:int -> int array

val rv_equal : Memory.rv -> Memory.rv -> bool
val rv_array_equal : Memory.rv array -> Memory.rv array -> bool
val rv_to_string : Memory.rv -> string

(** First index (if any) where two outputs disagree — for error
    reporting. *)
val first_mismatch : Memory.rv array -> Memory.rv array -> int option

val ints : int array -> Memory.rv array
