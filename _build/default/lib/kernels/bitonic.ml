(** Bitonic sort — the paper's running example (Fig. 1).

    Each thread block sorts one bucket of [block_size] elements in shared
    memory.  The inner comparison direction depends on [(tid & k)], a
    thread-dependent value, so the if/else around the two compare-swap
    variants is the meldable divergent region: both sides are if-then
    subgraphs over shared-memory loads and stores. *)

open Darm_ir
module Memory = Darm_sim.Memory
module D = Dsl

let build ~(block_size : int) : Ssa.func =
  if block_size land (block_size - 1) <> 0 then
    invalid_arg "Bitonic.build: block size must be a power of two";
  D.build_kernel ~name:"bitonic_sort"
    ~params:[ ("values", Types.Ptr Types.Global) ]
    (fun ctx params ->
      let values = List.hd params in
      let tid = D.tid ctx in
      let gid = D.add ctx (D.mul ctx (D.bid ctx) (D.bdim ctx)) tid in
      let shared = D.shared_array ctx block_size in
      D.store ctx (D.load ctx (D.gep ctx values gid)) (D.gep ctx shared tid);
      D.sync ctx;
      let k = D.local ctx ~name:"k" Types.I32 in
      D.set ctx k (D.i32 2);
      D.while_ ctx
        (fun () -> D.sle ctx (D.get ctx k) (D.i32 block_size))
        (fun () ->
          let j = D.local ctx ~name:"j" Types.I32 in
          D.set ctx j (D.sdiv ctx (D.get ctx k) (D.i32 2));
          D.while_ ctx
            (fun () -> D.sgt ctx (D.get ctx j) (D.i32 0))
            (fun () ->
              let jv = D.get ctx j in
              let kv = D.get ctx k in
              let ixj = D.xor ctx tid jv in
              D.if_then ctx (D.sgt ctx ixj tid) (fun () ->
                  let p_tid = D.gep ctx shared tid in
                  let p_ixj = D.gep ctx shared ixj in
                  let swap () =
                    let a = D.load ctx p_tid in
                    let b = D.load ctx p_ixj in
                    D.store ctx b p_tid;
                    D.store ctx a p_ixj
                  in
                  D.if_ ctx
                    (D.eq ctx (D.and_ ctx tid kv) (D.i32 0))
                    (fun () ->
                      (* ascending: swap if shared[ixj] < shared[tid] *)
                      let c =
                        D.slt ctx (D.load ctx p_ixj) (D.load ctx p_tid)
                      in
                      D.if_then ctx c swap)
                    (fun () ->
                      (* descending: swap if shared[ixj] > shared[tid] *)
                      let c =
                        D.sgt ctx (D.load ctx p_ixj) (D.load ctx p_tid)
                      in
                      D.if_then ctx c swap));
              D.sync ctx;
              D.set ctx j (D.sdiv ctx (D.get ctx j) (D.i32 2)));
          D.set ctx k (D.mul ctx (D.get ctx k) (D.i32 2)));
      D.store ctx (D.load ctx (D.gep ctx shared tid)) (D.gep ctx values gid))

let kernel : Kernel.t =
  let make ~seed ~block_size ~n =
    let n = max block_size (n - (n mod block_size)) in
    let input = Kernel.random_int_array ~seed ~n ~bound:100000 in
    let global = Memory.create ~space:Memory.Sp_global n in
    let pv = Memory.alloc_of_int_array global input in
    {
      Kernel.func = build ~block_size;
      global;
      args = [| pv |];
      launch =
        { Darm_sim.Simulator.grid_dim = n / block_size; block_dim = block_size };
      read_result =
        (fun () -> Memory.read_int_array global pv n |> Kernel.ints);
      reference =
        (fun () ->
          (* each block's bucket sorted ascending *)
          let out = Array.copy input in
          let nblocks = n / block_size in
          for b = 0 to nblocks - 1 do
            let bucket = Array.sub out (b * block_size) block_size in
            Array.sort compare bucket;
            Array.blit bucket 0 out (b * block_size) block_size
          done;
          Kernel.ints out);
    }
  in
  {
    Kernel.name = "Bitonic sort";
    tag = "BIT";
    description =
      "parallel bitonic sort per thread block; odd-even divergence with \
       complex meldable control flow (paper Fig. 1)";
    default_n = 2048;
    block_sizes = [ 64; 128; 256; 512; 1024 ];
    make;
  }
