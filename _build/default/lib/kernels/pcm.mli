(** Partition and Concurrent Merge: odd/even thread pairs merge adjacent
    sorted buckets in shared memory with forward/backward merge loops —
    parity-divergent isomorphic loop subgraphs with nested
    data-dependent branches (the paper's most complex control flow). *)

val bucket_len : int
val build : block_size:int -> Darm_ir.Ssa.func
val kernel : Kernel.t
