(** Common benchmark-kernel interface.

    A kernel bundles the IR builder with a deterministic workload: given
    a block size, an element count and a seed it produces a fresh
    {!instance} — IR function, populated global memory, launch geometry,
    and accessors for the observable output plus a host-side reference.
    Fresh instances are required because transformations mutate the IR
    in place; the baseline and the melded run each get their own. *)

open Darm_ir
module Memory = Darm_sim.Memory
module Simulator = Darm_sim.Simulator

type instance = {
  func : Ssa.func;
  global : Memory.t;
  args : Memory.rv array;
  launch : Simulator.launch;
  read_result : unit -> Memory.rv array;
      (** observable output after execution *)
  reference : unit -> Memory.rv array;
      (** host-side expected output for the same input *)
}

type t = {
  name : string;
  tag : string;  (** short label used in figures: SB1, BIT, LUD, ... *)
  description : string;
  default_n : int;
  block_sizes : int list;  (** the block-size sweep of the evaluation *)
  make : seed:int -> block_size:int -> n:int -> instance;
}

(** Deterministic pseudo-random generator so baseline/melded instances
    see identical inputs for a given seed. *)
let rng (seed : int) : unit -> int =
  let state = ref (seed land 0x3FFFFFFF) in
  fun () ->
    (* xorshift-ish; positive 30-bit results *)
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 17) in
    let x = x lxor (x lsl 5) in
    state := x land 0x3FFFFFFF;
    !state

let random_int_array ~(seed : int) ~(n : int) ~(bound : int) : int array =
  let next = rng seed in
  Array.init n (fun _ -> next () mod bound)

let rv_equal (a : Memory.rv) (b : Memory.rv) : bool =
  match a, b with
  | Memory.Rint x, Memory.Rint y -> x = y
  | Memory.Rbool x, Memory.Rbool y -> x = y
  | Memory.Rfloat x, Memory.Rfloat y -> Float.abs (x -. y) < 1e-5
  | Memory.Rundef, Memory.Rundef -> true
  | Memory.Rptr (s, o), Memory.Rptr (s', o') -> s = s' && o = o'
  | _ -> false

let rv_array_equal (a : Memory.rv array) (b : Memory.rv array) : bool =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun k v -> if not (rv_equal v b.(k)) then ok := false) a;
  !ok

let rv_to_string = function
  | Memory.Rint n -> string_of_int n
  | Memory.Rbool b -> string_of_bool b
  | Memory.Rfloat x -> string_of_float x
  | Memory.Rptr (_, o) -> Printf.sprintf "ptr:%d" o
  | Memory.Rundef -> "undef"

(** First index (if any) where the two outputs disagree — for error
    reporting in the test suites. *)
let first_mismatch (a : Memory.rv array) (b : Memory.rv array) : int option =
  let n = min (Array.length a) (Array.length b) in
  let rec go k =
    if k >= n then if Array.length a <> Array.length b then Some n else None
    else if rv_equal a.(k) b.(k) then go (k + 1)
    else Some k
  in
  go 0

let ints (a : int array) : Memory.rv array =
  Array.map (fun v -> Memory.Rint v) a
