(** DCT quantization (CUDA samples) — in-place quantization of a DCT
    plane with different rounding for positive and negative
    coefficients, i.e. data-dependent diamond divergence.

    The two sides contain signed division (unsafe to speculate), so this
    kernel exercises the mandatory unpredication path.  The paper sees
    essentially neutral performance here (Fig. 8, "statistically
    insignificant slow down"): there is little to save because the
    region is short and ALU-only. *)

open Darm_ir
module Memory = Darm_sim.Memory
module D = Dsl

let quant_entries = 64

let build ~block_size:_ : Ssa.func =
  D.build_kernel ~name:"dct_quantize"
    ~params:
      [ ("plane", Types.Ptr Types.Global); ("quant", Types.Ptr Types.Global) ]
    (fun ctx params ->
      let plane, quant =
        match params with [ p; q ] -> (p, q) | _ -> assert false
      in
      let tid = D.tid ctx in
      let gid = D.add ctx (D.mul ctx (D.bid ctx) (D.bdim ctx)) tid in
      let v = D.load ctx (D.gep ctx plane gid) in
      let q =
        D.load ctx
          (D.gep ctx quant (D.and_ ctx gid (D.i32 (quant_entries - 1))))
      in
      let r = D.local ctx ~name:"r" Types.I32 in
      D.if_ ctx
        (D.sge ctx v (D.i32 0))
        (fun () ->
          let rounded = D.add ctx v (D.sdiv ctx q (D.i32 2)) in
          let quot = D.sdiv ctx rounded q in
          D.set ctx r (D.mul ctx quot q))
        (fun () ->
          let av = D.sub ctx (D.i32 0) v in
          let rounded = D.add ctx av (D.sdiv ctx q (D.i32 2)) in
          let quot = D.sdiv ctx rounded q in
          D.set ctx r (D.sub ctx (D.i32 0) (D.mul ctx quot q)));
      D.store ctx (D.get ctx r) (D.gep ctx plane gid))

let host (plane : int array) (quant : int array) : unit =
  Array.iteri
    (fun k v ->
      let q = quant.(k land (quant_entries - 1)) in
      plane.(k) <-
        (if v >= 0 then (v + (q / 2)) / q * q
         else -((-v + (q / 2)) / q * q)))
    plane

let kernel : Kernel.t =
  let make ~seed ~block_size ~n =
    let n = max block_size (n - (n mod block_size)) in
    let plane =
      Array.map (fun v -> v - 500) (Kernel.random_int_array ~seed ~n ~bound:1000)
    in
    let quant =
      Array.map (fun v -> 1 + v)
        (Kernel.random_int_array ~seed:(seed + 1) ~n:quant_entries ~bound:31)
    in
    let global = Memory.create ~space:Memory.Sp_global (n + quant_entries) in
    let pplane = Memory.alloc_of_int_array global plane in
    let pquant = Memory.alloc_of_int_array global quant in
    {
      Kernel.func = build ~block_size;
      global;
      args = [| pplane; pquant |];
      launch =
        { Darm_sim.Simulator.grid_dim = n / block_size; block_dim = block_size };
      read_result =
        (fun () -> Memory.read_int_array global pplane n |> Kernel.ints);
      reference =
        (fun () ->
          let p = Array.copy plane in
          host p quant;
          Kernel.ints p);
    }
  in
  {
    Kernel.name = "DCT quantization";
    tag = "DCT";
    description =
      "sign-dependent quantization of a DCT plane; short ALU diamond with \
       trapping division";
    default_n = 4096;
    block_sizes = [ 64; 128; 256; 512; 1024 ];
    make;
  }
