(** DCT quantization (CUDA samples): sign-dependent rounding, i.e.
    data-dependent diamond divergence with trapping division (exercises
    mandatory unpredication). *)

val build : block_size:int -> Darm_ir.Ssa.func
val host : int array -> int array -> unit
val kernel : Kernel.t
