(** Synthetic benchmarks SB1–SB3 and their -R variants (paper §VI-A,
    Fig. 6): two nested loops whose inner body holds a divergent
    if-then-else whose true path touches arrays [a, b] and false path
    [p, q].  SB1 = diamond, SB2 = if-then region per side, SB3 = two
    if-then regions per side; -R variants use distinct instruction
    sequences on the two paths. *)

val sb1 : Kernel.t
val sb1_r : Kernel.t
val sb2 : Kernel.t
val sb2_r : Kernel.t
val sb3 : Kernel.t
val sb3_r : Kernel.t
val all : Kernel.t list
