(** Bitonic sort — the paper's running example (Fig. 1): per-block
    sorting in shared memory; the (tid & k)-dependent comparison
    direction is the meldable divergent region. *)

val build : block_size:int -> Darm_ir.Ssa.func
val kernel : Kernel.t
