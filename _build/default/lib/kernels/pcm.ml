(** Partition and Concurrent Merge (PCM) — parallel sorting based on
    Batcher's odd-even merge (paper §VI-A).

    Sorted buckets of [bucket_len] elements live in shared memory; each
    even/odd thread pair merges two adjacent buckets, the even thread
    producing the lower half with a forward merge and the odd thread the
    upper half with a backward merge.  The parity branch is the
    divergent region and each side is a {e loop} containing nested
    data-dependent branches — the most complex control flow in the
    evaluation, far beyond what branch fusion handles, and rich in
    shared-memory instructions (the paper's best case together with
    bitonic sort). *)

open Darm_ir
module Memory = Darm_sim.Memory
module D = Dsl

let bucket_len = 8

let b_and ctx a b = D.select ctx a b (D.i1 false)
let b_or ctx a b = D.select ctx a (D.i1 true) b

let build ~(block_size : int) : Ssa.func =
  let bs = block_size in
  let l = bucket_len in
  D.build_kernel ~name:"pcm_merge"
    ~params:[ ("src", Types.Ptr Types.Global); ("dst", Types.Ptr Types.Global) ]
    (fun ctx params ->
      let src, dst =
        match params with [ s; d ] -> (s, d) | _ -> assert false
      in
      let tid = D.tid ctx in
      let gid = D.add ctx (D.mul ctx (D.bid ctx) (D.bdim ctx)) tid in
      let s_in = D.shared_array ctx (bs * l) in
      let s_out = D.shared_array ctx (bs * l) in
      (* stage the thread's bucket into shared memory *)
      D.for_up ctx ~name:"e" ~from:(D.i32 0) ~until:(D.i32 l) (fun e ->
          let v = D.load ctx (D.gep ctx src (D.add ctx (D.mul ctx gid (D.i32 l)) e)) in
          D.store ctx v (D.gep ctx s_in (D.add ctx (D.mul ctx tid (D.i32 l)) e)));
      D.sync ctx;
      let pair_base =
        D.mul ctx (D.and_ ctx tid (D.i32 (lnot 1 land 0xFFFF))) (D.i32 l)
      in
      let a_base = pair_base in
      let b_base = D.add ctx pair_base (D.i32 l) in
      D.if_ ctx
        (D.eq ctx (D.and_ ctx tid (D.i32 1)) (D.i32 0))
        (fun () ->
          (* even thread: lower half, forward merge *)
          let i = D.local ctx ~name:"i" Types.I32 in
          let j = D.local ctx ~name:"j" Types.I32 in
          D.set ctx i (D.i32 0);
          D.set ctx j (D.i32 0);
          D.for_up ctx ~name:"k" ~from:(D.i32 0) ~until:(D.i32 l) (fun kv ->
              let iv = D.get ctx i and jv = D.get ctx j in
              let av =
                D.load ctx
                  (D.gep ctx s_in
                     (D.add ctx a_base (D.smin ctx iv (D.i32 (l - 1)))))
              in
              let bv =
                D.load ctx
                  (D.gep ctx s_in
                     (D.add ctx b_base (D.smin ctx jv (D.i32 (l - 1)))))
              in
              let take_a =
                b_or ctx
                  (D.sge ctx jv (D.i32 l))
                  (b_and ctx (D.slt ctx iv (D.i32 l)) (D.sle ctx av bv))
              in
              let p_out = D.gep ctx s_out (D.add ctx a_base kv) in
              D.if_ ctx take_a
                (fun () ->
                  D.store ctx av p_out;
                  D.set ctx i (D.add ctx (D.get ctx i) (D.i32 1)))
                (fun () ->
                  D.store ctx bv p_out;
                  D.set ctx j (D.add ctx (D.get ctx j) (D.i32 1)))))
        (fun () ->
          (* odd thread: upper half, backward merge *)
          let i = D.local ctx ~name:"i" Types.I32 in
          let j = D.local ctx ~name:"j" Types.I32 in
          D.set ctx i (D.i32 (l - 1));
          D.set ctx j (D.i32 (l - 1));
          D.for_up ctx ~name:"k" ~from:(D.i32 0) ~until:(D.i32 l) (fun kv ->
              let iv = D.get ctx i and jv = D.get ctx j in
              let av =
                D.load ctx
                  (D.gep ctx s_in
                     (D.add ctx a_base (D.smax ctx iv (D.i32 0))))
              in
              let bv =
                D.load ctx
                  (D.gep ctx s_in
                     (D.add ctx b_base (D.smax ctx jv (D.i32 0))))
              in
              let take_a =
                b_or ctx
                  (D.slt ctx jv (D.i32 0))
                  (b_and ctx (D.sge ctx iv (D.i32 0)) (D.sgt ctx av bv))
              in
              let p_out =
                D.gep ctx s_out
                  (D.add ctx b_base (D.sub ctx (D.i32 (l - 1)) kv))
              in
              D.if_ ctx take_a
                (fun () ->
                  D.store ctx av p_out;
                  D.set ctx i (D.sub ctx (D.get ctx i) (D.i32 1)))
                (fun () ->
                  D.store ctx bv p_out;
                  D.set ctx j (D.sub ctx (D.get ctx j) (D.i32 1)))));
      D.sync ctx;
      D.for_up ctx ~name:"e" ~from:(D.i32 0) ~until:(D.i32 l) (fun e ->
          let v = D.load ctx (D.gep ctx s_out (D.add ctx (D.mul ctx tid (D.i32 l)) e)) in
          D.store ctx v (D.gep ctx dst (D.add ctx (D.mul ctx gid (D.i32 l)) e))))

let kernel : Kernel.t =
  let make ~seed ~block_size ~n =
    let l = bucket_len in
    (* n counts elements; round to a whole number of bucket pairs/blocks *)
    let elems_per_block = block_size * l in
    let n = max elems_per_block (n - (n mod elems_per_block)) in
    let nbuckets = n / l in
    let raw = Kernel.random_int_array ~seed ~n ~bound:100000 in
    (* pre-sort each bucket: PCM merges sorted buckets *)
    let input = Array.copy raw in
    for b = 0 to nbuckets - 1 do
      let bucket = Array.sub input (b * l) l in
      Array.sort compare bucket;
      Array.blit bucket 0 input (b * l) l
    done;
    let global = Memory.create ~space:Memory.Sp_global (2 * n) in
    let psrc = Memory.alloc_of_int_array global input in
    let pdst = Memory.alloc global n in
    {
      Kernel.func = build ~block_size;
      global;
      args = [| psrc; pdst |];
      launch =
        {
          Darm_sim.Simulator.grid_dim = nbuckets / block_size;
          block_dim = block_size;
        };
      read_result =
        (fun () -> Memory.read_int_array global pdst n |> Kernel.ints);
      reference =
        (fun () ->
          (* merge each adjacent bucket pair *)
          let out = Array.copy input in
          let npairs = nbuckets / 2 in
          for p = 0 to npairs - 1 do
            let merged =
              Array.sub input (p * 2 * l) (2 * l)
            in
            Array.sort compare merged;
            Array.blit merged 0 out (p * 2 * l) (2 * l)
          done;
          Kernel.ints out);
    }
  in
  {
    Kernel.name = "Partition and Concurrent Merge";
    tag = "PCM";
    description =
      "odd-even merging of sorted buckets; parity-divergent loops with \
       nested data-dependent branches over shared memory";
    default_n = 2048;
    block_sizes = [ 64; 128; 256; 512 ];
    make;
  }
