(** Dedicated control-flow-pattern kernels: the literally-identical
    diamond for Table I's tail-merging row, and the mixed
    address-space diamond whose melding produces flat accesses
    (paper Fig. 10's flat counters). *)

val identical_diamond : Kernel.t
val flat_meld : Kernel.t
