lib/kernels/kernel.ml: Array Darm_ir Darm_sim Float Printf Ssa
