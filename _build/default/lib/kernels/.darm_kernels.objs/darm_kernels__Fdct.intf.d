lib/kernels/fdct.mli: Darm_ir Kernel
