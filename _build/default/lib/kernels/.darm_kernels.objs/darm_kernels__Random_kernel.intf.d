lib/kernels/random_kernel.mli: Darm_ir Kernel Ssa
