lib/kernels/bitonic.ml: Array Darm_ir Darm_sim Dsl Kernel List Ssa Types
