lib/kernels/hip_sources.ml: Printf
