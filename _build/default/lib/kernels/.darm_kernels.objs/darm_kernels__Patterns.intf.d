lib/kernels/patterns.mli: Kernel
