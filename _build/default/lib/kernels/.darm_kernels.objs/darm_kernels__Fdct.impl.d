lib/kernels/fdct.ml: Array Darm_ir Darm_sim Dsl Kernel Op Ssa Types
