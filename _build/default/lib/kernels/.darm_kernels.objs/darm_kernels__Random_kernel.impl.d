lib/kernels/random_kernel.ml: Array Darm_ir Darm_sim Dsl Kernel Printexc Printf Random Ssa Types Verify
