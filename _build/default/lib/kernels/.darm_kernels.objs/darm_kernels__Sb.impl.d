lib/kernels/sb.ml: Array Darm_ir Darm_sim Dsl Kernel String Types
