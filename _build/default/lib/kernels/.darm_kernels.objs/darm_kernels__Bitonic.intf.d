lib/kernels/bitonic.mli: Darm_ir Kernel
