lib/kernels/dct.mli: Darm_ir Kernel
