lib/kernels/patterns.ml: Array Darm_ir Darm_sim Dsl Kernel List Types
