lib/kernels/sb.mli: Kernel
