lib/kernels/mergesort.mli: Darm_ir Kernel
