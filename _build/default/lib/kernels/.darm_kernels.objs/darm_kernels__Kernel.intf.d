lib/kernels/kernel.mli: Darm_ir Darm_sim Ssa
