lib/kernels/lud.ml: Array Darm_ir Darm_sim Dsl Kernel Ssa Types
