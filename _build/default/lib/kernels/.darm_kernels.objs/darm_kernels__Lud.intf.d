lib/kernels/lud.mli: Darm_ir Kernel
