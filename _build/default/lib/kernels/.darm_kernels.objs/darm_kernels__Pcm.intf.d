lib/kernels/pcm.mli: Darm_ir Kernel
