lib/kernels/registry.ml: Bitonic Dct Fdct Kernel List Lud Mergesort Patterns Pcm Sb String
