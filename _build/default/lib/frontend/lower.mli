(** Lowering Mini-HIP ASTs to SSA through {!Darm_ir.Dsl}, with a
    lightweight type checker (int/float/bool scalars, pointer arrays);
    short-circuit [&&]/[||] and the ternary operator lower to real
    branches so only the C-mandated operands evaluate. *)

open Darm_ir

exception Error of string

val lower_kernel : Ast.kernel -> Ssa.func

(** Compile a Mini-HIP source string into a verified IR module. *)
val compile : name:string -> string -> (Ssa.modul, string) result

val compile_file : string -> (Ssa.modul, string) result
