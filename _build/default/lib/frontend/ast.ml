(** Abstract syntax of Mini-HIP, the C-like kernel language accepted by
    {!Parse} and lowered to SSA by {!Lower}.

    The surface language covers what the paper's HIP/CUDA kernels use:
    integer/float/bool scalars, global pointer parameters, [__shared__]
    arrays, arithmetic with C precedence, short-circuit [&&]/[||],
    if/else, while, for, [__syncthreads()], and the thread-geometry
    builtins. *)

type sty = S_int | S_float | S_bool

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Band | Bor | Bxor
  | Land | Lor  (** short-circuit *)

type expr =
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | Var of string
  | Index of string * expr      (** [a\[i\]]: load through array [a] *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Ternary of expr * expr * expr  (** [c ? a : b] *)
  | Call of string * expr list
      (** builtins: threadIdx, blockIdx, blockDim, gridDim, min, max,
          float(int), int(float) *)

type lvalue =
  | L_var of string
  | L_index of string * expr

type stmt =
  | Decl of sty * string * expr option
  | Shared_decl of sty * string * int  (** [__shared__ int s\[N\];] *)
  | Assign of lvalue * expr
  | Op_assign of lvalue * binop * expr  (** [x += e] and friends *)
  | If of expr * block * block option
  | While of expr * block
  | For of stmt option * expr option * stmt option * block
  | Sync
  | Expr_stmt of expr
  | Block of block

and block = stmt list

type param = {
  p_name : string;
  p_sty : sty;
  p_pointer : bool;  (** pointer parameters live in global memory *)
}

type kernel = { k_name : string; k_params : param list; k_body : block }

type program = kernel list
