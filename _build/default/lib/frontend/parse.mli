(** Hand-written lexer and recursive-descent parser for Mini-HIP:
    C operator precedence, [//] and [/* */] comments, line-numbered
    errors. *)

exception Error of string

val parse_program : string -> (Ast.program, string) result
