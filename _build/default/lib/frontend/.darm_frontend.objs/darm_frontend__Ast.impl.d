lib/frontend/ast.ml:
