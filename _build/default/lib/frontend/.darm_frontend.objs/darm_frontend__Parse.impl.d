lib/frontend/parse.ml: Ast List Option Printf String
