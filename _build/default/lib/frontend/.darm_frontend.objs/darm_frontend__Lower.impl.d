lib/frontend/lower.ml: Ast Darm_ir Dsl Filename List Op Option Parse Printf Ssa Types
