lib/frontend/lower.mli: Ast Darm_ir Ssa
