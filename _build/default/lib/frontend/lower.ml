(** Lowering Mini-HIP ASTs to SSA through the {!Darm_ir.Dsl} builder
    (which performs the on-the-fly SSA construction).

    A small bidirectional-free type checker runs along the way: every
    expression is elaborated together with its surface type, and
    mismatches (float + int, branching on an int, indexing a scalar)
    are reported with source-level names. *)

open Ast
open Darm_ir
module D = Dsl

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let sty_name = function S_int -> "int" | S_float -> "float" | S_bool -> "bool"

let ty_of_sty = function
  | S_int -> Types.I32
  | S_float -> Types.F32
  | S_bool -> Types.I1

type binding =
  | B_var of D.var * sty         (** mutable local *)
  | B_val of Ssa.value * sty     (** immutable scalar parameter *)
  | B_array of Ssa.value * sty   (** pointer: parameter or shared array *)

type env = (string * binding) list

let lookup (env : env) (name : string) : binding =
  match List.assoc_opt name env with
  | Some b -> b
  | None -> errf "unknown identifier %s" name

(* ------------------------------------------------------------------ *)
(* Expressions *)

let rec lower_expr (ctx : D.ctx) (env : env) (e : expr) : Ssa.value * sty =
  match e with
  | Int_lit v -> (D.i32 v, S_int)
  | Float_lit f -> (D.f32 f, S_float)
  | Bool_lit b -> (D.i1 b, S_bool)
  | Var name -> (
      match lookup env name with
      | B_var (v, sty) -> (D.get ctx v, sty)
      | B_val (v, sty) -> (v, sty)
      | B_array _ -> errf "%s is an array; index it" name)
  | Index (name, idx) -> (
      match lookup env name with
      | B_array (ptr, sty) ->
          let iv = lower_expr_expect ctx env idx S_int "array index" in
          let cell = D.gep ctx ptr iv in
          let v =
            match sty with
            | S_float -> D.load_f ctx cell
            | S_int | S_bool -> D.load ctx cell
          in
          (v, sty)
      | _ -> errf "%s is not an array" name)
  | Unary (Neg, e) -> (
      match lower_expr ctx env e with
      | v, S_int -> (D.sub ctx (D.i32 0) v, S_int)
      | v, S_float -> (D.fsub ctx (D.f32 0.) v, S_float)
      | _, S_bool -> errf "cannot negate a bool")
  | Unary (Not, e) ->
      let v = lower_expr_expect ctx env e S_bool "operand of !" in
      (D.not_ ctx v, S_bool)
  | Binary (Land, a, b) ->
      (* proper short circuit: b evaluates only when a holds *)
      let r = D.local ctx ~name:"and" Types.I1 in
      let av = lower_expr_expect ctx env a S_bool "operand of &&" in
      D.set ctx r (D.i1 false);
      D.if_then ctx av (fun () ->
          D.set ctx r (lower_expr_expect ctx env b S_bool "operand of &&"));
      (D.get ctx r, S_bool)
  | Binary (Lor, a, b) ->
      let r = D.local ctx ~name:"or" Types.I1 in
      let av = lower_expr_expect ctx env a S_bool "operand of ||" in
      D.set ctx r (D.i1 true);
      D.if_ ctx av
        (fun () -> ())
        (fun () ->
          D.set ctx r (lower_expr_expect ctx env b S_bool "operand of ||"));
      (D.get ctx r, S_bool)
  | Binary (op, a, b) -> lower_binary ctx env op a b
  | Ternary (c, t, f) ->
      let cv = lower_expr_expect ctx env c S_bool "ternary condition" in
      (* C evaluates exactly one arm, and arms may load memory: lower
         through a variable and a branch *)
      let tmp = ref None in
      D.if_ ctx cv
        (fun () ->
          let v, sty = lower_expr ctx env t in
          let var = D.local ctx ~name:"sel" (ty_of_sty sty) in
          D.set ctx var v;
          tmp := Some (var, sty))
        (fun () ->
          match !tmp with
          | Some (var, sty) ->
              let v = lower_expr_expect ctx env f sty "ternary arm" in
              D.set ctx var v
          | None -> errf "internal: ternary arm ordering");
      let var, sty = Option.get !tmp in
      (D.get ctx var, sty)
  | Call (name, args) -> lower_call ctx env name args

and lower_expr_expect ctx env e (want : sty) (what : string) : Ssa.value =
  let v, got = lower_expr ctx env e in
  if got <> want then
    errf "%s has type %s, expected %s" what (sty_name got) (sty_name want);
  v

and lower_binary ctx env op a b : Ssa.value * sty =
  let av, aty = lower_expr ctx env a in
  let bv, bty = lower_expr ctx env b in
  if aty <> bty then
    errf "operands of a binary operator differ: %s vs %s" (sty_name aty)
      (sty_name bty);
  let int_only mk = if aty = S_int then (mk ctx av bv, S_int)
    else errf "operator needs int operands, got %s" (sty_name aty)
  in
  let arith mki mkf =
    match aty with
    | S_int -> (mki ctx av bv, S_int)
    | S_float -> (mkf ctx av bv, S_float)
    | S_bool -> errf "arithmetic on bool"
  in
  let compare ip fp =
    match aty with
    | S_int -> (D.icmp ctx ip av bv, S_bool)
    | S_float -> (D.fcmp ctx fp av bv, S_bool)
    | S_bool -> errf "ordered comparison on bool"
  in
  match op with
  | Add -> arith D.add D.fadd
  | Sub -> arith D.sub D.fsub
  | Mul -> arith D.mul D.fmul
  | Div -> arith D.sdiv D.fdiv
  | Rem -> int_only D.srem
  | Shl -> int_only D.shl
  | Shr -> int_only D.lshr
  | Band -> int_only D.and_
  | Bor -> int_only D.or_
  | Bxor -> int_only D.xor
  | Lt -> compare Op.Islt Op.Folt
  | Le -> compare Op.Isle Op.Fole
  | Gt -> compare Op.Isgt Op.Fogt
  | Ge -> compare Op.Isge Op.Foge
  | Eq -> (
      match aty with
      | S_int -> (D.eq ctx av bv, S_bool)
      | S_float -> (D.fcmp ctx Op.Foeq av bv, S_bool)
      | S_bool -> (D.eq ctx (D.select ctx av (D.i32 1) (D.i32 0))
                     (D.select ctx bv (D.i32 1) (D.i32 0)), S_bool))
  | Ne -> (
      match aty with
      | S_int -> (D.ne ctx av bv, S_bool)
      | S_float -> (D.fcmp ctx Op.Fone av bv, S_bool)
      | S_bool -> (D.ne ctx (D.select ctx av (D.i32 1) (D.i32 0))
                     (D.select ctx bv (D.i32 1) (D.i32 0)), S_bool))
  | Land | Lor -> assert false (* handled in lower_expr *)

and lower_call ctx env name args : Ssa.value * sty =
  let nullary mk sty =
    match args with
    | [] -> (mk ctx, sty)
    | _ -> errf "%s takes no arguments" name
  in
  let binary_minmax imk fmk =
    match args with
    | [ a; b ] -> (
        let av, aty = lower_expr ctx env a in
        let bv, bty = lower_expr ctx env b in
        if aty <> bty then errf "%s: operand types differ" name;
        match aty with
        | S_int -> (imk ctx av bv, S_int)
        | S_float -> (fmk ctx av bv, S_float)
        | S_bool -> errf "%s on bool" name)
    | _ -> errf "%s takes two arguments" name
  in
  match name with
  | "threadIdx" -> nullary D.tid S_int
  | "blockIdx" -> nullary D.bid S_int
  | "blockDim" -> nullary D.bdim S_int
  | "gridDim" -> nullary D.gdim S_int
  | "min" -> binary_minmax D.smin D.fmin
  | "max" -> binary_minmax D.smax D.fmax
  | "float" -> (
      match args with
      | [ a ] -> (D.sitofp ctx (lower_expr_expect ctx env a S_int "float()"), S_float)
      | _ -> errf "float() takes one argument")
  | "int" -> (
      match args with
      | [ a ] -> (D.fptosi ctx (lower_expr_expect ctx env a S_float "int()"), S_int)
      | _ -> errf "int() takes one argument")
  | other -> errf "unknown builtin %s" other

(* ------------------------------------------------------------------ *)
(* Statements *)

let lower_assign ctx env (lv : lvalue) (v : Ssa.value) (sty : sty) : unit =
  match lv with
  | L_var name -> (
      match lookup env name with
      | B_var (var, want) ->
          if want <> sty then
            errf "assigning %s to %s variable %s" (sty_name sty)
              (sty_name want) name;
          D.set ctx var v
      | B_val _ -> errf "%s is a parameter; parameters are immutable" name
      | B_array _ -> errf "%s is an array; assign to an element" name)
  | L_index (name, idx) -> (
      match lookup env name with
      | B_array (ptr, want) ->
          if want <> sty then
            errf "storing %s into %s array %s" (sty_name sty)
              (sty_name want) name;
          let iv = lower_expr_expect ctx env idx S_int "array index" in
          D.store ctx v (D.gep ctx ptr iv)
      | _ -> errf "%s is not an array" name)

let lvalue_read ctx env (lv : lvalue) : Ssa.value * sty =
  match lv with
  | L_var name -> lower_expr ctx env (Var name)
  | L_index (name, idx) -> lower_expr ctx env (Index (name, idx))

let rec lower_stmt (ctx : D.ctx) (env : env) (st : stmt) : env =
  match st with
  | Decl (sty, name, init) ->
      let var = D.local ctx ~name (ty_of_sty sty) in
      (match init with
      | Some e ->
          let v = lower_expr_expect ctx env e sty ("initializer of " ^ name) in
          D.set ctx var v
      | None -> ());
      (name, B_var (var, sty)) :: env
  | Shared_decl (sty, name, size) ->
      let ptr = D.shared_array ctx size in
      (name, B_array (ptr, sty)) :: env
  | Assign (lv, e) ->
      let v, sty = lower_expr ctx env e in
      lower_assign ctx env lv v sty;
      env
  | Op_assign (lv, op, e) ->
      let cur, _ = lvalue_read ctx env lv in
      ignore cur;
      (* rebuild as lv = lv <op> e, reusing the binary typing rules *)
      let combined =
        Binary
          ( op,
            (match lv with
            | L_var n -> Var n
            | L_index (n, i) -> Index (n, i)),
            e )
      in
      let v, sty = lower_expr ctx env combined in
      lower_assign ctx env lv v sty;
      env
  | If (c, then_b, else_b) ->
      let cv = lower_expr_expect ctx env c S_bool "if condition" in
      (match else_b with
      | Some else_b ->
          D.if_ ctx cv
            (fun () -> lower_block ctx env then_b)
            (fun () -> lower_block ctx env else_b)
      | None -> D.if_then ctx cv (fun () -> lower_block ctx env then_b));
      env
  | While (c, body) ->
      D.while_ ctx
        (fun () -> lower_expr_expect ctx env c S_bool "while condition")
        (fun () -> lower_block ctx env body);
      env
  | For (init, cond, step, body) ->
      let env' =
        match init with Some st -> lower_stmt ctx env st | None -> env
      in
      D.while_ ctx
        (fun () ->
          match cond with
          | Some c -> lower_expr_expect ctx env' c S_bool "for condition"
          | None -> D.i1 true)
        (fun () ->
          lower_block ctx env' body;
          match step with
          | Some st -> ignore (lower_stmt ctx env' st)
          | None -> ());
      env
  | Sync ->
      D.sync ctx;
      env
  | Expr_stmt (Call ("__syncthreads", [])) ->
      D.sync ctx;
      env
  | Expr_stmt e ->
      ignore (lower_expr ctx env e);
      env
  | Block b ->
      lower_block ctx env b;
      env

and lower_block ctx env (b : block) : unit =
  ignore (List.fold_left (fun env st -> lower_stmt ctx env st) env b)

(* ------------------------------------------------------------------ *)
(* Kernels *)

let lower_kernel (k : kernel) : Ssa.func =
  let params =
    List.map
      (fun p ->
        ( p.p_name,
          if p.p_pointer then Types.Ptr Types.Global else ty_of_sty p.p_sty ))
      k.k_params
  in
  D.build_kernel ~name:k.k_name ~params (fun ctx values ->
      let env =
        List.map2
          (fun p v ->
            ( p.p_name,
              if p.p_pointer then B_array (v, p.p_sty)
              else B_val (v, p.p_sty) ))
          k.k_params values
      in
      lower_block ctx env k.k_body)

(** Compile a Mini-HIP source string into an IR module. *)
let compile ~(name : string) (src : string) : (Ssa.modul, string) result =
  match Parse.parse_program src with
  | Error e -> Error e
  | Ok kernels -> (
      match
        let m = Ssa.mk_module name in
        m.Ssa.funcs <- List.map lower_kernel kernels;
        m
      with
      | m -> Ok m
      | exception Error e -> Error e
      | exception Invalid_argument e -> Error e)

let compile_file (path : string) : (Ssa.modul, string) result =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    src
  with
  | src -> compile ~name:(Filename.basename path) src
  | exception Sys_error e -> Error e
