(** Hand-written lexer and recursive-descent parser for Mini-HIP.

    Expression parsing uses precedence climbing with the C operator
    table; statements are the usual C statement forms.  Both [//] line
    comments and [/* */] block comments are accepted.  Errors carry
    line numbers. *)

open Ast

exception Error of string

let errf fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | PUNCT of string  (* operators and delimiters, longest-match *)
  | EOF

let puncts =
  (* order matters: longest first *)
  [ "<<="; ">>="; "&&"; "||"; "=="; "!="; "<="; ">="; "<<"; ">>"; "+=";
    "-="; "*="; "/="; "%="; "&="; "|="; "^="; "++"; "--"; "("; ")"; "{";
    "}"; "["; "]"; ";"; ","; "+"; "-"; "*"; "/"; "%"; "<"; ">"; "="; "&";
    "|"; "^"; "!"; "?"; ":"; "~" ]

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let fin = ref false in
      while not !fin do
        if !i + 1 >= n then errf "line %d: unterminated comment" !line;
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          fin := true;
          i := !i + 2
        end
        else incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && (is_digit src.[!i] || src.[!i] = '.') do
        incr i
      done;
      (* a trailing f suffix, as in C float literals *)
      let text = String.sub src start (!i - start) in
      let has_f = !i < n && src.[!i] = 'f' in
      if has_f then incr i;
      if String.contains text '.' || has_f then
        match float_of_string_opt text with
        | Some f -> push (FLOAT f)
        | None -> errf "line %d: bad float literal %S" !line text
      else begin
        match int_of_string_opt text with
        | Some v -> push (INT v)
        | None -> errf "line %d: bad integer literal %S" !line text
      end
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      push (IDENT (String.sub src start (!i - start)))
    end
    else begin
      let matched =
        List.find_opt
          (fun p ->
            let l = String.length p in
            !i + l <= n && String.sub src !i l = p)
          puncts
      in
      match matched with
      | Some p ->
          push (PUNCT p);
          i := !i + String.length p
      | None -> errf "line %d: unexpected character %C" !line c
    end
  done;
  List.rev ((EOF, !line) :: !toks)

(* ------------------------------------------------------------------ *)
(* Token stream *)

type stream = { mutable toks : (token * int) list }

let peek s = match s.toks with (t, _) :: _ -> t | [] -> EOF
let peek2 s = match s.toks with _ :: (t, _) :: _ -> t | _ -> EOF
let line_of s = match s.toks with (_, l) :: _ -> l | [] -> 0

let advance s =
  match s.toks with
  | (t, _) :: rest ->
      s.toks <- rest;
      t
  | [] -> EOF

let eat_punct s p =
  match advance s with
  | PUNCT q when q = p -> ()
  | _ -> errf "line %d: expected %S" (line_of s) p

let eat_ident s what =
  match advance s with
  | IDENT x -> x
  | _ -> errf "line %d: expected %s" (line_of s) what

let accept_punct s p =
  match peek s with
  | PUNCT q when q = p ->
      ignore (advance s);
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Types *)

let sty_of_name = function
  | "int" -> Some S_int
  | "float" -> Some S_float
  | "bool" -> Some S_bool
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing *)

let binop_of_punct = function
  | "*" -> Some (Mul, 10)
  | "/" -> Some (Div, 10)
  | "%" -> Some (Rem, 10)
  | "+" -> Some (Add, 9)
  | "-" -> Some (Sub, 9)
  | "<<" -> Some (Shl, 8)
  | ">>" -> Some (Shr, 8)
  | "<" -> Some (Lt, 7)
  | "<=" -> Some (Le, 7)
  | ">" -> Some (Gt, 7)
  | ">=" -> Some (Ge, 7)
  | "==" -> Some (Eq, 6)
  | "!=" -> Some (Ne, 6)
  | "&" -> Some (Band, 5)
  | "^" -> Some (Bxor, 4)
  | "|" -> Some (Bor, 3)
  | "&&" -> Some (Land, 2)
  | "||" -> Some (Lor, 1)
  | _ -> None

let rec parse_expr (s : stream) : expr = parse_ternary s

and parse_ternary s =
  let c = parse_binary s 1 in
  if accept_punct s "?" then begin
    let t = parse_expr s in
    eat_punct s ":";
    let f = parse_expr s in
    Ternary (c, t, f)
  end
  else c

and parse_binary s min_prec =
  let lhs = ref (parse_unary s) in
  let continue_ = ref true in
  while !continue_ do
    match peek s with
    | PUNCT p -> (
        match binop_of_punct p with
        | Some (op, prec) when prec >= min_prec ->
            ignore (advance s);
            let rhs = parse_binary s (prec + 1) in
            lhs := Binary (op, !lhs, rhs)
        | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary s =
  if accept_punct s "-" then Unary (Neg, parse_unary s)
  else if accept_punct s "!" then Unary (Not, parse_unary s)
  else parse_primary s

and parse_primary s =
  match advance s with
  | INT v -> Int_lit v
  | FLOAT f -> Float_lit f
  | IDENT "true" -> Bool_lit true
  | IDENT "false" -> Bool_lit false
  | IDENT name ->
      if accept_punct s "(" then begin
        (* builtin call *)
        let args = ref [] in
        if not (accept_punct s ")") then begin
          let rec loop () =
            args := parse_expr s :: !args;
            if accept_punct s "," then loop () else eat_punct s ")"
          in
          loop ()
        end;
        Call (name, List.rev !args)
      end
      else if accept_punct s "[" then begin
        let idx = parse_expr s in
        eat_punct s "]";
        Index (name, idx)
      end
      else Var name
  | PUNCT "(" ->
      let e = parse_expr s in
      eat_punct s ")";
      e
  | _ -> errf "line %d: expected an expression" (line_of s)

(* ------------------------------------------------------------------ *)
(* Statements *)

let parse_lvalue_from_ident s (name : string) : lvalue =
  if accept_punct s "[" then begin
    let idx = parse_expr s in
    eat_punct s "]";
    L_index (name, idx)
  end
  else L_var name

let op_assign_of_punct = function
  | "+=" -> Some Add
  | "-=" -> Some Sub
  | "*=" -> Some Mul
  | "/=" -> Some Div
  | "%=" -> Some Rem
  | "&=" -> Some Band
  | "|=" -> Some Bor
  | "^=" -> Some Bxor
  | _ -> None

(* assignment or expression statement, without the trailing ';' (shared
   with for-headers) *)
let rec parse_simple_stmt (s : stream) : stmt =
  match peek s with
  | IDENT name when sty_of_name name <> None && (match peek2 s with IDENT _ -> true | _ -> false) ->
      let sty = Option.get (sty_of_name (eat_ident s "type")) in
      let var = eat_ident s "a variable name" in
      let init = if accept_punct s "=" then Some (parse_expr s) else None in
      Decl (sty, var, init)
  | IDENT name -> (
      ignore (advance s);
      match peek s with
      | PUNCT "(" ->
          (* call statement, e.g. __syncthreads() *)
          s.toks <- (IDENT name, line_of s) :: s.toks;
          let e = parse_expr s in
          Expr_stmt e
      | _ -> (
          let lv = parse_lvalue_from_ident s name in
          match advance s with
          | PUNCT "=" -> Assign (lv, parse_expr s)
          | PUNCT "++" -> Op_assign (lv, Add, Int_lit 1)
          | PUNCT "--" -> Op_assign (lv, Sub, Int_lit 1)
          | PUNCT p -> (
              match op_assign_of_punct p with
              | Some op -> Op_assign (lv, op, parse_expr s)
              | None ->
                  errf "line %d: expected an assignment operator" (line_of s))
          | _ -> errf "line %d: expected an assignment" (line_of s)))
  | _ -> errf "line %d: expected a statement" (line_of s)

and parse_stmt (s : stream) : stmt =
  match peek s with
  | PUNCT "{" -> Block (parse_block s)
  | IDENT "__shared__" ->
      ignore (advance s);
      let sty =
        match sty_of_name (eat_ident s "element type") with
        | Some t -> t
        | None -> errf "line %d: bad shared element type" (line_of s)
      in
      let name = eat_ident s "array name" in
      eat_punct s "[";
      let size =
        match advance s with
        | INT v -> v
        | _ -> errf "line %d: shared array size must be a literal" (line_of s)
      in
      eat_punct s "]";
      eat_punct s ";";
      Shared_decl (sty, name, size)
  | IDENT "if" ->
      ignore (advance s);
      eat_punct s "(";
      let c = parse_expr s in
      eat_punct s ")";
      let then_b = parse_block_or_stmt s in
      let else_b =
        if peek s = IDENT "else" then begin
          ignore (advance s);
          Some (parse_block_or_stmt s)
        end
        else None
      in
      If (c, then_b, else_b)
  | IDENT "while" ->
      ignore (advance s);
      eat_punct s "(";
      let c = parse_expr s in
      eat_punct s ")";
      While (c, parse_block_or_stmt s)
  | IDENT "for" ->
      ignore (advance s);
      eat_punct s "(";
      let init =
        if peek s = PUNCT ";" then None else Some (parse_simple_stmt s)
      in
      eat_punct s ";";
      let cond = if peek s = PUNCT ";" then None else Some (parse_expr s) in
      eat_punct s ";";
      let step =
        if peek s = PUNCT ")" then None else Some (parse_simple_stmt s)
      in
      eat_punct s ")";
      For (init, cond, step, parse_block_or_stmt s)
  | IDENT "__syncthreads" ->
      ignore (advance s);
      eat_punct s "(";
      eat_punct s ")";
      eat_punct s ";";
      Sync
  | _ ->
      let st = parse_simple_stmt s in
      eat_punct s ";";
      st

and parse_block (s : stream) : block =
  eat_punct s "{";
  let stmts = ref [] in
  while peek s <> PUNCT "}" do
    if peek s = EOF then errf "unexpected end of file in a block";
    stmts := parse_stmt s :: !stmts
  done;
  eat_punct s "}";
  List.rev !stmts

and parse_block_or_stmt (s : stream) : block =
  if peek s = PUNCT "{" then parse_block s else [ parse_stmt s ]

(* ------------------------------------------------------------------ *)
(* Kernels *)

let parse_param (s : stream) : param =
  (* [global] type [*] name — 'global' is optional noise, pointers are
     always global *)
  let _ = if peek s = IDENT "global" then ignore (advance s) in
  let sty =
    match sty_of_name (eat_ident s "parameter type") with
    | Some t -> t
    | None -> errf "line %d: bad parameter type" (line_of s)
  in
  let pointer = accept_punct s "*" in
  let name = eat_ident s "parameter name" in
  { p_name = name; p_sty = sty; p_pointer = pointer }

let parse_kernel (s : stream) : kernel =
  (match advance s with
  | IDENT ("kernel" | "__global__") -> ()
  | _ -> errf "line %d: expected 'kernel'" (line_of s));
  (* optional 'void' return type, as in CUDA *)
  if peek s = IDENT "void" then ignore (advance s);
  let name = eat_ident s "kernel name" in
  eat_punct s "(";
  let params = ref [] in
  if not (accept_punct s ")") then begin
    let rec loop () =
      params := parse_param s :: !params;
      if accept_punct s "," then loop () else eat_punct s ")"
    in
    loop ()
  end;
  let body = parse_block s in
  { k_name = name; k_params = List.rev !params; k_body = body }

let parse_program (src : string) : (program, string) result =
  match
    let s = { toks = tokenize src } in
    let kernels = ref [] in
    while peek s <> EOF do
      kernels := parse_kernel s :: !kernels
    done;
    List.rev !kernels
  with
  | p -> Ok p
  | exception Error msg -> Error msg
