(** Melding profitability heuristics FP_B and FP_S (paper §IV-C).

    FP_B(b1, b2) approximates the fraction of thread cycles saved by
    melding two basic blocks, assuming every instruction class common to
    both blocks melds:

    FP_B = (Σ_i min(freq(i,b1), freq(i,b2)) · w_i) / (lat(b1) + lat(b2))

    Two blocks with identical opcode-frequency profiles score 0.5 — the
    best case, where the pair executes in the cycles of one block.  FP_S
    lifts FP_B to isomorphic subgraphs as the latency-weighted average
    over corresponding block pairs.

    The class set Q is the plain opcode (as in the paper): a shared and
    a global load are the same class, meldable into one flat access;
    their weight w_i is the cheaper of the two latencies.  Phis and
    terminators are excluded — phis occupy no issue slot, and counting
    terminators would make a pair of empty blocks look 0.5-profitable
    (the pass would then meld its own freshly created exit blocks
    forever). *)

open Darm_ir
module Latency = Darm_analysis.Latency

(** Instruction-class frequency profile of a block's body. *)
val block_profile : Ssa.block -> (string, int) Hashtbl.t

(** w_i per class present in the block. *)
val class_weight : Latency.config -> Ssa.block -> (string, int) Hashtbl.t

(** Static latency of the block's body instructions — lat(b). *)
val body_latency : Latency.config -> Ssa.block -> int

(** Block-pair melding profitability, in [0, 0.5]. *)
val fp_b : Latency.config -> Ssa.block -> Ssa.block -> float

(** Subgraph-pair melding profitability over an isomorphic block
    correspondence. *)
val fp_s : Latency.config -> (Ssa.block * Ssa.block) list -> float
