(** Melding profitability heuristics FP_B and FP_S (paper §IV-C).

    FP_B(b1, b2) approximates the fraction of thread cycles saved by
    melding two basic blocks, assuming every instruction class common to
    both blocks melds:

    FP_B = (Σ_i min(freq(i,b1), freq(i,b2)) · w_i) / (lat(b1) + lat(b2))

    Two blocks with identical opcode-frequency profiles score 0.5 — the
    best case, where the pair executes in the cycles of one block.

    FP_S lifts FP_B to isomorphic subgraphs as the latency-weighted
    average over corresponding block pairs, i.e. the fraction of the
    subgraph pair's total cycles saved. *)

open Darm_ir.Ssa
module Latency = Darm_analysis.Latency

(* Only body instructions participate: phis do not occupy issue slots
   and terminators exist in every block, so counting them would make a
   pair of empty blocks look 0.5-profitable and the pass would meld its
   own freshly created exit blocks forever. *)
let profiled (b : block) : instr list =
  List.filter
    (fun i -> i.op <> Darm_ir.Op.Phi && not (Darm_ir.Op.is_terminator i.op))
    b.instrs

(* The class set Q is the plain opcode, as in the paper: a shared and a
   global load are the same class (they are meldable into one flat
   access), even though their latencies differ. *)
let class_key (i : instr) : string = Darm_ir.Op.to_string i.op

(** Instruction-class frequency profile of a block. *)
let block_profile (b : block) : (string, int) Hashtbl.t =
  let t = Hashtbl.create 16 in
  List.iter
    (fun i ->
      let key = class_key i in
      Hashtbl.replace t key
        (1 + Option.value ~default:0 (Hashtbl.find_opt t key)))
    (profiled b);
  t

(** Latency of an instruction class — w_i in the paper.  When the two
    sides disagree (e.g. shared vs global memory), the cheaper latency
    is the conservative estimate of what melding can save. *)
let class_weight (c : Latency.config) (b : block) : (string, int) Hashtbl.t =
  let t = Hashtbl.create 16 in
  List.iter
    (fun i ->
      let key = class_key i in
      let lat = Latency.of_instr c i in
      let lat =
        match Hashtbl.find_opt t key with
        | Some prev -> min prev lat
        | None -> lat
      in
      Hashtbl.replace t key lat)
    (profiled b);
  t

(** Static latency of a block's body instructions — lat(b). *)
let body_latency (c : Latency.config) (b : block) : int =
  List.fold_left (fun acc i -> acc + Latency.of_instr c i) 0 (profiled b)

let fp_b (c : Latency.config) (b1 : block) (b2 : block) : float =
  let p1 = block_profile b1 and p2 = block_profile b2 in
  let w1 = class_weight c b1 in
  let w2 = class_weight c b2 in
  let saved = ref 0 in
  Hashtbl.iter
    (fun cls f1 ->
      match Hashtbl.find_opt p2 cls with
      | Some f2 ->
          let wi =
            match Hashtbl.find_opt w1 cls, Hashtbl.find_opt w2 cls with
            | Some x, Some y -> min x y
            | Some x, None | None, Some x -> x
            | None, None -> 1
          in
          saved := !saved + (min f1 f2 * wi)
      | None -> ())
    p1;
  let denom = body_latency c b1 + body_latency c b2 in
  if denom = 0 then 0. else float_of_int !saved /. float_of_int denom

(** FP_S over an isomorphic block correspondence [o]. *)
let fp_s (c : Latency.config) (o : (block * block) list) : float =
  let num = ref 0. and denom = ref 0. in
  List.iter
    (fun (b1, b2) ->
      let lat =
        float_of_int (body_latency c b1 + body_latency c b2)
      in
      num := !num +. (fp_b c b1 b2 *. lat);
      denom := !denom +. lat)
    o;
  if !denom = 0. then 0. else !num /. !denom
