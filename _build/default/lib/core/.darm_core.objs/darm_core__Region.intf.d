lib/core/region.mli: Darm_analysis Darm_ir Hashtbl Ssa
