lib/core/meld.ml: Array Darm_align Darm_analysis Darm_ir Hashtbl List Op Printf Region Types
