lib/core/pass.ml: Array Darm_align Darm_analysis Darm_ir Darm_transforms Isomorphism List Meld Profitability Region Simplify_region
