lib/core/profitability.mli: Darm_analysis Darm_ir Hashtbl Ssa
