lib/core/isomorphism.ml: Array Darm_ir Hashtbl List Region
