lib/core/profitability.ml: Darm_analysis Darm_ir Hashtbl List Option
