lib/core/region.ml: Array Darm_analysis Darm_ir Hashtbl List
