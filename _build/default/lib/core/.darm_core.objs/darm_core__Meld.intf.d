lib/core/meld.mli: Darm_analysis Darm_ir Region Ssa
