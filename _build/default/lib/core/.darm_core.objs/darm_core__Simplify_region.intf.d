lib/core/simplify_region.mli: Darm_ir Region Ssa
