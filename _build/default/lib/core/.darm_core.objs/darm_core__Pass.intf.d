lib/core/pass.mli: Darm_analysis Darm_ir Meld Ssa
