lib/core/isomorphism.mli: Darm_ir Region Ssa
