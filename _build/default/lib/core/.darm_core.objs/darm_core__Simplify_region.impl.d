lib/core/simplify_region.ml: Darm_ir Hashtbl List Op Region Types
