(** Structural matching of SESE subgraphs (paper Definition 6).

    Two subgraphs are meldable when they are isomorphic as rooted,
    edge-ordered CFGs: a simultaneous traversal from the two entries
    must match terminator kinds and successor positions (the true/false
    arms of conditional branches correspond pairwise), and edges leaving
    the subgraphs must leave simultaneously.  The single-block case
    (Definition 6 case 3) falls out as isomorphism of one-node graphs;
    the mixed region-vs-block case (case 2) is rejected, as in the
    paper's implementation. *)

open Darm_ir

(** [match_subgraphs s1 s2] returns the block correspondence in
    pre-order (entry first, dominating blocks before dominated ones —
    the linearization order required by Algorithm 2), or [None] when the
    subgraphs are not isomorphic. *)
val match_subgraphs :
  Region.subgraph -> Region.subgraph -> (Ssa.block * Ssa.block) list option
