(** Structural matching of SESE subgraphs (paper Definition 6).

    Two subgraphs are meldable when they are isomorphic as rooted,
    edge-ordered CFGs: a simultaneous traversal from the two entries must
    match terminator kinds and successor positions (the true/false arms
    of conditional branches correspond pairwise), and edges leaving the
    subgraphs must leave simultaneously.  The single-block/single-block
    case (Definition 6 case 3) falls out as isomorphism of one-node
    graphs.

    The mixed case (simple region vs. single block, Definition 6 case 2)
    is not melded by this implementation — as in the paper, melding
    non-isomorphic shapes requires restructuring one side and "is usually
    expensive"; the paper's own evaluation only exercises the isomorphic
    cases. *)

open Darm_ir.Ssa

(** [match_subgraphs s1 s2] returns the block correspondence in pre-order
    (entry first, dominating blocks before dominated ones — the
    linearization order required by Algorithm 2), or [None] when the
    subgraphs are not isomorphic. *)
let match_subgraphs (s1 : Region.subgraph) (s2 : Region.subgraph) :
    (block * block) list option =
  if Region.subgraph_size s1 <> Region.subgraph_size s2 then None
  else begin
    let fwd = Hashtbl.create 8 and bwd = Hashtbl.create 8 in
    let order = ref [] in
    let exception Mismatch in
    let rec visit (a : block) (b : block) =
      match Hashtbl.find_opt fwd a.bid, Hashtbl.find_opt bwd b.bid with
      | Some b', _ when b'.bid <> b.bid -> raise Mismatch
      | _, Some a' when a'.bid <> a.bid -> raise Mismatch
      | Some _, Some _ -> () (* already matched consistently *)
      | Some _, None | None, Some _ -> raise Mismatch
      | None, None ->
          Hashtbl.replace fwd a.bid b;
          Hashtbl.replace bwd b.bid a;
          order := (a, b) :: !order;
          let ta = terminator a and tb = terminator b in
          let same_kind =
            match ta.op, tb.op with
            | Darm_ir.Op.Br, Darm_ir.Op.Br -> true
            | Darm_ir.Op.Condbr, Darm_ir.Op.Condbr -> true
            | _ -> false
          in
          if not same_kind then raise Mismatch;
          if Array.length ta.blocks <> Array.length tb.blocks then
            raise Mismatch;
          Array.iteri
            (fun k sa ->
              let sb = tb.blocks.(k) in
              let a_internal = Region.in_subgraph s1 sa in
              let b_internal = Region.in_subgraph s2 sb in
              match a_internal, b_internal with
              | true, true -> visit sa sb
              | false, false ->
                  (* both leave; exits are unique per subgraph *)
                  if
                    sa.bid <> s1.sg_exit_dest.bid
                    || sb.bid <> s2.sg_exit_dest.bid
                  then raise Mismatch
              | true, false | false, true -> raise Mismatch)
            ta.blocks
    in
    match visit s1.sg_entry s2.sg_entry with
    | () ->
        if
          Hashtbl.length fwd = Region.subgraph_size s1
          && Hashtbl.length bwd = Region.subgraph_size s2
        then Some (List.rev !order)
        else None
    | exception Mismatch -> None
  end
