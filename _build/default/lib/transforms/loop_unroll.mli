(** Full unrolling of simple counted loops.

    The paper's pipeline relies on HIPCC's aggressive unrolling: bitonic
    sort's meldable region appears in every unrolled instance of the
    inner loop body, and PCM's multiple isomorphic subgraphs per path
    come from unrolled loops (§VI-E).  This pass provides the same
    enabling transformation for loops whose header is the only exiting
    block and whose induction variable has constant init/step/bound. *)

open Darm_ir
module Loops = Darm_analysis.Loops

type counted_loop

(** Match the unrollable shape and evaluate the trip count
    ([<= max_trip]). *)
val analyze : Ssa.func -> Loops.loop -> max_trip:int -> counted_loop option

(** Fully unroll; the original loop blocks are removed. *)
val unroll : Ssa.func -> counted_loop -> unit

(** Fully unroll every simple counted loop with trip count at most
    [max_trip], repeating until none qualify (nested counted loops
    unroll inside-out).  Returns the number of loops unrolled. *)
val run : ?max_trip:int -> Ssa.func -> int
