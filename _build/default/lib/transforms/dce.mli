(** Dead-code elimination: removes instructions without side effects
    whose results are unused, iterating to a fixpoint. *)

val run : Darm_ir.Ssa.func -> bool
