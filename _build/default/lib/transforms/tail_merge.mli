(** Tail merging (cross-jumping) — the restrictive baseline of Table I.

    When two predecessors of a block end in identical instruction
    suffixes, the common suffix is hoisted into a fresh shared block and
    both predecessors jump there.  Unlike melding this requires exactly
    equal instructions (same opcodes and operands, up to references into
    the suffix itself).  On the IPDOM execution model the payoff is
    earlier reconvergence: the merged tail becomes the new immediate
    post-dominator of the divergent branch. *)

open Darm_ir

(** One merging round; [min_suffix] is the minimum number of identical
    instructions worth sharing. *)
val run_once : ?min_suffix:int -> Ssa.func -> bool

(** Merge to a fixpoint; returns the number of merges applied. *)
val run : ?min_suffix:int -> Ssa.func -> int
