(** Constant folding of individual instructions (arithmetic on literals,
    algebraic identities, select simplification). *)

open Darm_ir

val fold_ibin : Op.ibinop -> int -> int -> int option
val fold_icmp : Op.icmp_pred -> int -> int -> bool

(** Try to fold one instruction to a constant value. *)
val fold_instr : Ssa.instr -> Ssa.value option

(** Fold everything foldable to a fixpoint; returns [true] if anything
    changed.  Folded instructions become dead and are left for
    {!Dce}. *)
val run : Ssa.func -> bool
