lib/transforms/loop_unroll.mli: Darm_analysis Darm_ir Ssa
