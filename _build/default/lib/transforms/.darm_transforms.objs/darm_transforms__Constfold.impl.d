lib/transforms/constfold.ml: Array Darm_ir I32 Op Option
