lib/transforms/constfold.ml: Array Darm_ir Op Option
