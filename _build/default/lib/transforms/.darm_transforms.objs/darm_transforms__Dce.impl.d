lib/transforms/dce.ml: Array Darm_ir Hashtbl List Op Option
