lib/transforms/tail_merge.ml: Array Darm_ir Hashtbl List Op Simplify_cfg Types
