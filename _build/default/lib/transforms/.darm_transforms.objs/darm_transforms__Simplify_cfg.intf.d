lib/transforms/simplify_cfg.mli: Darm_ir Ssa
