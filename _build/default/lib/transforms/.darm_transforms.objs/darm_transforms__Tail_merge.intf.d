lib/transforms/tail_merge.mli: Darm_ir Ssa
