lib/transforms/constfold.mli: Darm_ir Op Ssa
