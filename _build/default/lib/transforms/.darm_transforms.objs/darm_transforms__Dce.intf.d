lib/transforms/dce.mli: Darm_ir
