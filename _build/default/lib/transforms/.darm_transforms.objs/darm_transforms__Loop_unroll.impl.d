lib/transforms/loop_unroll.ml: Array Darm_analysis Darm_ir Hashtbl List Op Option Printf Types
