lib/transforms/simplify_cfg.ml: Array Darm_analysis Darm_ir List Op
