(** Dead-code elimination: removes instructions without side effects whose
    results are unused, iterating until a fixpoint. *)

open Darm_ir
open Darm_ir.Ssa

let run (f : func) : bool =
  let changed = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    (* one pass: count uses, then sweep *)
    let use_count = Hashtbl.create 64 in
    iter_instrs f (fun i ->
        Array.iter
          (fun v ->
            match v with
            | Instr d ->
                Hashtbl.replace use_count d.id
                  (1 + Option.value ~default:0 (Hashtbl.find_opt use_count d.id))
            | Int _ | Bool _ | Float _ | Undef _ | Param _ -> ())
          i.operands);
    List.iter
      (fun b ->
        let dead =
          List.filter
            (fun i ->
              (not (Op.has_side_effect i.op))
              && (not (Op.is_terminator i.op))
              && Option.value ~default:0 (Hashtbl.find_opt use_count i.id) = 0)
            b.instrs
        in
        List.iter
          (fun i ->
            remove_instr b i;
            progress := true;
            changed := true)
          dead)
      f.blocks_list
  done;
  !changed
