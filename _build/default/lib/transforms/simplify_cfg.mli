(** CFG clean-up in the spirit of LLVM's SimplifyCFG: the melding pass
    relies on it (and on its own post-optimizations, paper §IV-F) to
    tidy up after subgraph melding.

    Rewrites, iterated to a fixpoint: unreachable-block removal, folding
    of constant and identical-destination conditional branches, trivial
    phi removal, merging a block into its unique predecessor, and
    removal of empty forwarding blocks (when no phi conflict arises). *)

open Darm_ir

val remove_trivial_phis : Ssa.func -> bool
val fold_branches : Ssa.func -> bool
val merge_into_predecessor : Ssa.func -> bool
val remove_forwarding_blocks : Ssa.func -> bool

(** Run all clean-ups to a fixpoint; [true] if the function changed. *)
val run : Ssa.func -> bool

(** Cost-bounded if-conversion of triangles and diamonds whose side
    blocks contain only speculatable instructions: sides fold into the
    branch block and join phis become selects.  Models the
    re-predication by later LLVM passes that the paper observes on
    bitonic sort (§VI-C). *)
val if_convert : ?max_cost:int -> Ssa.func -> bool
