(** Tail merging (cross-jumping) — the restrictive baseline of Table I.

    When two predecessors of a block end in {e identical} instruction
    suffixes, the common suffix is hoisted into a fresh shared block and
    both predecessors jump there.  Unlike melding this requires the
    instructions to be exactly equal (same opcodes {e and} same
    operands, up to references into the suffix itself), so it only helps
    divergent branches whose paths literally duplicate code.

    On the IPDOM execution model the payoff is earlier reconvergence:
    the merged tail becomes the new immediate post-dominator of the
    divergent branch. *)

open Darm_ir
open Darm_ir.Ssa

(* Do i1 (in b1's suffix) and i2 (in b2's suffix) perform the identical
   operation?  [pairing] maps already-matched suffix instructions of b2
   to their b1 counterparts. *)
let instr_identical (pairing : (int, instr) Hashtbl.t) (i1 : instr)
    (i2 : instr) : bool =
  Op.equal i1.op i2.op
  && Types.equal i1.ty i2.ty
  && Array.length i1.operands = Array.length i2.operands
  && Array.length i1.blocks = Array.length i2.blocks
  && (i1.op <> Op.Phi)
  && Array.for_all2
       (fun v1 v2 ->
         value_equal v1 v2
         ||
         match v2 with
         | Instr d2 -> (
             match Hashtbl.find_opt pairing d2.id with
             | Some d1 -> value_equal v1 (Instr d1)
             | None -> false)
         | _ -> false)
       i1.operands i2.operands
  && Array.for_all2 (fun a b -> a.bid = b.bid) i1.blocks i2.blocks

(* longest common suffix of body instructions (terminators excluded,
   both must be plain Br to the same target) *)
let common_suffix (b1 : block) (b2 : block) : (instr * instr) list =
  let body b =
    List.filter
      (fun i -> i.op <> Op.Phi && not (Op.is_terminator i.op))
      b.instrs
  in
  let l1 = body b1 and l2 = body b2 in
  let n1 = List.length l1 and n2 = List.length l2 in
  (* SSA operands point backwards, so the pairing must be built front to
     back within each candidate suffix; try the longest length first. *)
  let last_k l n k = List.filteri (fun idx _ -> idx >= n - k) l in
  let check k : (instr * instr) list option =
    let s1 = last_k l1 n1 k and s2 = last_k l2 n2 k in
    let pairing = Hashtbl.create 8 in
    let ok =
      List.for_all2
        (fun i1 i2 ->
          if instr_identical pairing i1 i2 then begin
            Hashtbl.replace pairing i2.id i1;
            true
          end
          else false)
        s1 s2
    in
    if ok then Some (List.combine s1 s2) else None
  in
  let rec longest k =
    if k = 0 then []
    else match check k with Some s -> s | None -> longest (k - 1)
  in
  longest (min n1 n2)

let merge_pair (f : func) (b1 : block) (b2 : block) (dest : block)
    (suffix : (instr * instr) list) : unit =
  let m = mk_block (b1.bname ^ ".tail") in
  append_block f m;
  (* move b1's suffix instructions into m; drop b2's *)
  List.iter
    (fun (i1, i2) ->
      remove_instr b1 i1;
      append_instr m i1;
      replace_all_uses f ~old_v:(Instr i2) ~new_v:(Instr i1);
      remove_instr b2 i2)
    suffix;
  let jump = mk_instr Op.Br [||] [| dest |] Types.Void in
  append_instr m jump;
  (* b1/b2 now branch to m instead of dest *)
  redirect_edge b1 ~old_dest:dest ~new_dest:m;
  redirect_edge b2 ~old_dest:dest ~new_dest:m;
  (* phis in dest: one incoming from m; conflicting values get a phi in
     m *)
  List.iter
    (fun phi ->
      match phi_incoming_for phi b1, phi_incoming_for phi b2 with
      | Some v1, Some v2 ->
          let merged_value =
            if value_equal v1 v2 then v1
            else begin
              let pm = mk_instr Op.Phi [||] [||] phi.ty in
              pm.parent <- Some m;
              m.instrs <- pm :: m.instrs;
              set_phi_incoming pm [ (v1, b1); (v2, b2) ];
              Instr pm
            end
          in
          let rest =
            List.filter
              (fun (_, blk) -> blk.bid <> b1.bid && blk.bid <> b2.bid)
              (phi_incoming phi)
          in
          set_phi_incoming phi ((merged_value, m) :: rest)
      | _ -> ())
    (phis dest)

(** One merging round; [min_suffix] is the minimum number of identical
    instructions worth sharing.  Returns [true] if a merge happened. *)
let run_once ?(min_suffix = 1) (f : func) : bool =
  let preds = predecessors f in
  let try_block (dest : block) : bool =
    let brs =
      List.filter
        (fun p ->
          has_terminator p
          && (terminator p).op = Op.Br
          && p.bid <> dest.bid)
        (preds_of preds dest)
    in
    let rec pairs = function
      | [] -> false
      | b1 :: rest ->
          let merged =
            List.exists
              (fun b2 ->
                let suffix = common_suffix b1 b2 in
                if List.length suffix >= min_suffix then begin
                  merge_pair f b1 b2 dest suffix;
                  true
                end
                else false)
              rest
          in
          if merged then true else pairs rest
    in
    pairs brs
  in
  List.exists try_block f.blocks_list

(** Merge to a fixpoint; returns the number of merges applied. *)
let run ?(min_suffix = 1) (f : func) : int =
  let count = ref 0 in
  while run_once ~min_suffix f do
    incr count;
    ignore (Simplify_cfg.run f)
  done;
  !count
