(** CFG clean-up in the spirit of LLVM's SimplifyCFG: the paper relies on
    it (and on the melding pass's own post-optimizations, §IV-F) to tidy
    up after subgraph melding.

    Rewrites, iterated to a fixpoint:
    - unreachable block removal;
    - folding of conditional branches on constants and of conditional
      branches with identical destinations;
    - removal of trivial phis (single incoming, or all incomings equal);
    - merging a block into its unique predecessor;
    - removal of empty forwarding blocks (threading their predecessors
      through, when no phi conflict arises);
    - optional if-conversion of small pure triangles and diamonds into
      [select]s (this is what "later optimization passes decide to
      predicate them again" in §VI-C refers to). *)

open Darm_ir
open Darm_ir.Ssa

let remove_trivial_phis (f : func) : bool =
  let changed = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    iter_instrs f (fun i ->
        if i.op = Op.Phi && i.parent <> None then begin
          let distinct =
            List.filter
              (fun (v, _) -> not (value_equal v (Instr i)))
              (phi_incoming i)
            |> List.map fst
          in
          let all_same =
            match distinct with
            | [] -> Some (Undef i.ty)
            | v :: rest ->
                if List.for_all (value_equal v) rest then Some v else None
          in
          match all_same with
          | Some v ->
              replace_all_uses f ~old_v:(Instr i) ~new_v:v;
              (match i.parent with
              | Some b -> remove_instr b i
              | None -> ());
              progress := true;
              changed := true
          | None -> ()
        end)
  done;
  !changed

(* condbr on a constant, or with two identical destinations -> br *)
let fold_branches (f : func) : bool =
  let changed = ref false in
  List.iter
    (fun b ->
      if has_terminator b then begin
        let t = terminator b in
        if t.op = Op.Condbr then begin
          let tdest = t.blocks.(0) and fdest = t.blocks.(1) in
          let to_unconditional ~(dead : block option) (dest : block) =
            (match dead with
            | Some d when d.bid <> dest.bid -> phi_remove_incoming d ~pred:b
            | _ -> ());
            t.op <- Op.Br;
            t.operands <- [||];
            t.blocks <- [| dest |];
            changed := true
          in
          if tdest.bid = fdest.bid then to_unconditional ~dead:None tdest
          else
            match t.operands.(0) with
            | Bool true -> to_unconditional ~dead:(Some fdest) tdest
            | Bool false -> to_unconditional ~dead:(Some tdest) fdest
            | _ -> ()
        end
      end)
    f.blocks_list;
  !changed

(* Merge b into its unique predecessor p when p unconditionally branches
   to b and b is p's only successor continuation. *)
let merge_into_predecessor (f : func) : bool =
  let changed = ref false in
  let preds = predecessors f in
  let entry = entry_block f in
  let candidates =
    List.filter
      (fun b ->
        b.bid <> entry.bid
        &&
        match preds_of preds b with
        | [ p ] ->
            has_terminator p
            && (terminator p).op = Op.Br
            && List.length (successors p) = 1
        | _ -> false)
      f.blocks_list
  in
  List.iter
    (fun b ->
      match preds_of preds b with
      | [ p ] when has_terminator p && (terminator p).op = Op.Br
                   && (match successors p with
                      | [ s ] -> s.bid = b.bid
                      | _ -> false)
                   && p.bid <> b.bid ->
          (* phis in b have a single incoming (from p): fold them *)
          List.iter
            (fun phi ->
              let v =
                match phi_incoming phi with
                | [ (v, _) ] -> v
                | _ -> Instr phi (* shouldn't happen; leave as-is *)
              in
              if not (value_equal v (Instr phi)) then begin
                replace_all_uses f ~old_v:(Instr phi) ~new_v:v;
                remove_instr b phi
              end)
            (phis b);
          (* drop p's terminator, move b's instructions into p *)
          let t = terminator p in
          remove_instr p t;
          List.iter
            (fun i ->
              i.parent <- Some p;
              p.instrs <- p.instrs @ [ i ])
            b.instrs;
          b.instrs <- [];
          (* successors of b now come from p *)
          List.iter
            (fun s -> phi_replace_incoming_block s ~old_pred:b ~new_pred:p)
            (successors p);
          remove_block f b;
          changed := true
      | _ -> ())
    candidates;
  !changed

(* Remove blocks that contain only `br dest` by threading predecessors
   directly to dest, unless that would create a phi conflict. *)
let remove_forwarding_blocks (f : func) : bool =
  let changed = ref false in
  let entry = entry_block f in
  let forwarding =
    List.filter
      (fun b ->
        b.bid <> entry.bid
        && (match b.instrs with
           | [ t ] -> t.op = Op.Br
           | _ -> false))
      f.blocks_list
  in
  List.iter
    (fun b ->
      if
        (* earlier removals in this batch change the CFG: recheck *)
        List.exists (fun x -> x.bid = b.bid) f.blocks_list
        && (match b.instrs with [ t ] -> t.op = Op.Br | _ -> false)
      then begin
      let dest = (terminator b).blocks.(0) in
      if dest.bid <> b.bid then begin
        (* predecessors must be fresh: the batch mutates the CFG *)
        let preds = predecessors f in
        let bpreds = preds_of preds b in
        (* Conflict: a phi in dest would need two different values for the
           same predecessor edge, or a pred already reaches dest. *)
        let ok =
          bpreds <> []
          && List.for_all
               (fun phi ->
                 let v_via_b = phi_incoming_for phi b in
                 List.for_all
                   (fun p ->
                     match phi_incoming_for phi p with
                     | None -> true
                     | Some v_direct -> (
                         match v_via_b with
                         | Some v -> value_equal v v_direct
                         | None -> true))
                   bpreds)
               (phis dest)
          (* a predecessor branching to both b and dest with phis is fine
             only if values agree, which the check above covers; but a
             pred reaching dest twice via b is representable only if no
             duplicate incoming arises. *)
          && List.for_all
               (fun p ->
                 not
                   (List.exists (fun s -> s.bid = dest.bid) (successors p))
                 || phis dest = [])
               bpreds
        in
        if ok then begin
          List.iter
            (fun phi ->
              match phi_incoming_for phi b with
              | None -> ()
              | Some v ->
                  let without_b =
                    List.filter
                      (fun (_, blk) -> blk.bid <> b.bid)
                      (phi_incoming phi)
                  in
                  let additions =
                    List.filter_map
                      (fun p ->
                        if
                          List.exists
                            (fun (_, blk) -> blk.bid = p.bid)
                            without_b
                        then None
                        else Some (v, p))
                      bpreds
                  in
                  set_phi_incoming phi (without_b @ additions))
            (phis dest);
          List.iter
            (fun p -> redirect_edge p ~old_dest:b ~new_dest:dest)
            bpreds;
          remove_block f b;
          changed := true
        end
      end
      end)
    forwarding;
  !changed

let one_round (f : func) : bool =
  let c1 = Darm_analysis.Cfg.remove_unreachable f in
  let c2 = fold_branches f in
  let c3 = remove_trivial_phis f in
  let c4 = merge_into_predecessor f in
  let c5 = remove_forwarding_blocks f in
  c1 || c2 || c3 || c4 || c5

(** Run clean-up to a fixpoint; returns [true] if the function changed. *)
let run (f : func) : bool =
  let changed = ref false in
  let progress = ref true in
  let fuel = ref 1000 in
  while !progress && !fuel > 0 do
    decr fuel;
    progress := one_round f;
    if !progress then changed := true
  done;
  !changed

(* ------------------------------------------------------------------ *)
(* If-conversion *)

(** Cost-bounded if-conversion of triangles
    [B -> (T | J), T -> J] and diamonds [B -> (T | F) -> J] whose side
    blocks contain only speculatable instructions: the side blocks are
    folded into [B] and the phis in [J] become selects.  This models the
    re-predication by later LLVM passes that the paper observes on
    bitonic sort (§VI-C). *)
let if_convert ?(max_cost = 8) (f : func) : bool =
  let lat = Darm_analysis.Latency.default in
  let changed = ref false in
  let preds = predecessors f in
  let speculatable b =
    List.for_all (fun i -> not (Op.unsafe_to_speculate i.op)) (body b)
    && phis b = []
    && (terminator b).op = Op.Br
    && List.length (preds_of preds b) = 1
  in
  let cost b =
    List.fold_left
      (fun acc i -> acc + Darm_analysis.Latency.of_instr lat i)
      0 (body b)
  in
  let hoist_into (dst : block) (side : block) =
    let t = terminator dst in
    List.iter (fun i -> remove_instr side i; insert_before t i) (body side)
  in
  List.iter
    (fun b ->
      if has_terminator b && (terminator b).op = Op.Condbr then begin
        let t = terminator b in
        let cond = t.operands.(0) in
        let tdest = t.blocks.(0) and fdest = t.blocks.(1) in
        if tdest.bid <> fdest.bid then begin
          let join_of blk =
            match successors blk with [ j ] -> Some j | _ -> None
          in
          let diamond () =
            match join_of tdest, join_of fdest with
            | Some j1, Some j2
              when j1.bid = j2.bid && speculatable tdest && speculatable fdest
                   && cost tdest + cost fdest <= max_cost
                   && j1.bid <> b.bid ->
                Some (tdest, fdest, j1)
            | _ -> None
          in
          let triangle () =
            (* true side is the side block, false goes straight to join *)
            match join_of tdest with
            | Some j
              when j.bid = fdest.bid && speculatable tdest
                   && cost tdest <= max_cost && j.bid <> b.bid ->
                Some (tdest, j)
            | _ -> None
          in
          let triangle_f () =
            match join_of fdest with
            | Some j
              when j.bid = tdest.bid && speculatable fdest
                   && cost fdest <= max_cost && j.bid <> b.bid ->
                Some (fdest, j)
            | _ -> None
          in
          match diamond () with
          | Some (tb, fb, j) ->
              hoist_into b tb;
              hoist_into b fb;
              (* phis in j: select between tb and fb incomings *)
              List.iter
                (fun phi ->
                  match phi_incoming_for phi tb, phi_incoming_for phi fb with
                  | Some vt, Some vf ->
                      let sel =
                        mk_instr Op.Select [| cond; vt; vf |] [||] phi.ty
                      in
                      insert_before (terminator b) sel;
                      let rest =
                        List.filter
                          (fun (_, blk) ->
                            blk.bid <> tb.bid && blk.bid <> fb.bid)
                          (phi_incoming phi)
                      in
                      set_phi_incoming phi ((Instr sel, b) :: rest)
                  | _ -> ())
                (phis j);
              t.op <- Op.Br;
              t.operands <- [||];
              t.blocks <- [| j |];
              remove_block f tb;
              remove_block f fb;
              changed := true
          | None -> (
              let do_triangle side j ~side_is_true =
                hoist_into b side;
                List.iter
                  (fun phi ->
                    match
                      phi_incoming_for phi side, phi_incoming_for phi b
                    with
                    | Some vs, Some vb ->
                        let tv, fv =
                          if side_is_true then vs, vb else vb, vs
                        in
                        let sel =
                          mk_instr Op.Select [| cond; tv; fv |] [||] phi.ty
                        in
                        insert_before (terminator b) sel;
                        let rest =
                          List.filter
                            (fun (_, blk) ->
                              blk.bid <> side.bid && blk.bid <> b.bid)
                            (phi_incoming phi)
                        in
                        set_phi_incoming phi ((Instr sel, b) :: rest)
                    | _ -> ())
                  (phis j);
                t.op <- Op.Br;
                t.operands <- [||];
                t.blocks <- [| j |];
                remove_block f side;
                changed := true
              in
              match triangle () with
              | Some (side, j) -> do_triangle side j ~side_is_true:true
              | None -> (
                  match triangle_f () with
                  | Some (side, j) -> do_triangle side j ~side_is_true:false
                  | None -> ()))
        end
      end)
    f.blocks_list;
  if !changed then ignore (run f);
  !changed
