(** Full unrolling of simple counted loops.

    The paper's pipeline relies on HIPCC's aggressive unrolling: bitonic
    sort's meldable region appears in every unrolled instance of the
    inner loop body (Fig. 5a "the resulting CFG consists of multiple
    repeated segments"), and PCM's multiple isomorphic subgraphs per path
    come from unrolled loops (§VI-E).  This pass provides the same
    enabling transformation.

    A loop is unrollable when:
    - it is a natural loop whose header is the only exiting block
      (the shape the {!Darm_ir.Dsl} while/for constructs emit);
    - the header has exactly two predecessors (preheader and a unique
      latch);
    - the exit condition is [icmp pred (phi iv) (const)] with [iv]'s
      initial value and its step both constant, so the trip count is a
      compile-time constant [n <= max_trip].

    Unrolling replaces the loop with [n] cloned copies of its blocks in
    sequence; loop-carried phis become direct value substitutions, and
    uses of loop values after the loop are rewired to the last
    iteration's clones. *)

open Darm_ir
open Darm_ir.Ssa
module Loops = Darm_analysis.Loops

type counted_loop = {
  cl_loop : Loops.loop;
  cl_preheader : block;
  cl_latch : block;
  cl_exit : block;        (** the header's out-of-loop successor *)
  cl_body_entry : block;  (** the header's in-loop successor *)
  cl_trip : int;
}

(* Evaluate the trip count of [icmp pred iv bound] where iv starts at
   [init] and is updated by a constant-step add/sub each iteration. *)
let trip_count (pred : Op.icmp_pred) ~(init : int) ~(step : int)
    ~(bound : int) ~(max_trip : int) : int option =
  let holds v =
    match pred with
    | Op.Islt -> v < bound
    | Op.Isle -> v <= bound
    | Op.Isgt -> v > bound
    | Op.Isge -> v >= bound
    | Op.Ieq -> v = bound
    | Op.Ine -> v <> bound
  in
  let rec go v n = if not (holds v) then Some n
    else if n > max_trip then None
    else go (v + step) (n + 1)
  in
  if step = 0 then None else go init 0

(* Match the shape described in the module docstring. *)
let analyze (f : func) (l : Loops.loop) ~(max_trip : int) :
    counted_loop option =
  let preds_tbl = predecessors f in
  let header = l.Loops.header in
  match l.Loops.latches, preds_of preds_tbl header with
  | [ latch ], [ p1; p2 ] ->
      let preheader = if p1.bid = latch.bid then p2 else p1 in
      if preheader.bid = latch.bid then None
      else if not (has_terminator header) then None
      else begin
        let t = terminator header in
        match t.op with
        | Op.Condbr -> (
            let tdest = t.blocks.(0) and fdest = t.blocks.(1) in
            let in_l b = Loops.in_loop l b in
            let body_entry, exit_ =
              if in_l tdest && not (in_l fdest) then (Some tdest, Some fdest)
              else if in_l fdest && not (in_l tdest) then
                (None, None) (* inverted loops unsupported *)
              else (None, None)
            in
            match body_entry, exit_ with
            | Some body_entry, Some exit_ -> (
                (* every other exit edge would break the "header is the
                   only exiting block" requirement *)
                let exits = Loops.exit_edges l in
                if
                  List.exists (fun (src, _) -> src.bid <> header.bid) exits
                then None
                else
                  match t.operands.(0) with
                  | Instr cmp when (match cmp.op with Op.Icmp _ -> true | _ -> false) -> (
                      let pred =
                        match cmp.op with Op.Icmp p -> p | _ -> assert false
                      in
                      match cmp.operands.(0), cmp.operands.(1) with
                      | Instr iv, Int bound
                        when iv.op = Op.Phi
                             && (match iv.parent with
                                | Some b -> b.bid = header.bid
                                | None -> false) -> (
                          let init = phi_incoming_for iv preheader in
                          let next = phi_incoming_for iv latch in
                          match init, next with
                          | Some (Int init), Some (Instr upd) -> (
                              let step =
                                match upd.op, Array.to_list upd.operands with
                                | Op.Ibin Op.Add, [ Instr v; Int s ]
                                  when v.id = iv.id ->
                                    Some s
                                | Op.Ibin Op.Add, [ Int s; Instr v ]
                                  when v.id = iv.id ->
                                    Some s
                                | Op.Ibin Op.Sub, [ Instr v; Int s ]
                                  when v.id = iv.id ->
                                    Some (-s)
                                | _ -> None
                              in
                              match step with
                              | Some step -> (
                                  match
                                    trip_count pred ~init ~step ~bound
                                      ~max_trip
                                  with
                                  | Some trip ->
                                      Some
                                        {
                                          cl_loop = l;
                                          cl_preheader = preheader;
                                          cl_latch = latch;
                                          cl_exit = exit_;
                                          cl_body_entry = body_entry;
                                          cl_trip = trip;
                                        }
                                  | None -> None)
                              | None -> None)
                          | _ -> None)
                      | _ -> None)
                  | _ -> None)
            | _ -> None)
        | _ -> None
      end
  | _ -> None

(* Clone one iteration of the loop: all loop blocks, with values mapped
   through [vmap] (loop-carried phis and previous clones) and branch
   targets through [bmap].  The header's phis are not cloned (vmap
   substitutes them) and its terminator is replaced by a jump to the
   iteration's body entry (or, for the final check, to the exit). *)
let clone_iteration (f : func) (cl : counted_loop) ~(iter : int)
    ~(vmap : (int, value) Hashtbl.t) : (int, block) Hashtbl.t =
  let l = cl.cl_loop in
  let header = l.Loops.header in
  let bmap = Hashtbl.create 8 in
  let loop_blocks = Loops.blocks_of l in
  List.iter
    (fun b ->
      let nb = mk_block (Printf.sprintf "%s.it%d" b.bname iter) in
      append_block f nb;
      Hashtbl.replace bmap b.bid nb)
    loop_blocks;
  (* phi incoming sources always refer to edges within this iteration;
     branch targets to the header are the back edge into the *next*
     iteration and stay unmapped (the driver rewires them) *)
  let map_block_phi b =
    match Hashtbl.find_opt bmap b.bid with Some nb -> nb | None -> b
  in
  let map_block_target b =
    if b.bid = header.bid then b else map_block_phi b
  in
  (* Two passes, so references across blocks resolve regardless of block
     order (phi cycles, nested loops that were not unrollable):
     first create every clone and register it in [vmap], then fill in
     operands and phi incomings. *)
  let fixups : (instr * instr) list ref = ref [] in
  List.iter
    (fun b ->
      let nb = Hashtbl.find bmap b.bid in
      List.iter
        (fun i ->
          if b.bid = header.bid && i.op = Op.Phi then ()
            (* header phis are substituted via vmap *)
          else if b.bid = header.bid && Op.is_terminator i.op then begin
            (* the trip count is static: always continue into the body *)
            let j =
              mk_instr Op.Br [||]
                [| map_block_phi cl.cl_body_entry |]
                Types.Void
            in
            append_instr nb j
          end
          else begin
            let clone = mk_instr i.op [||] [||] i.ty in
            append_instr nb clone;
            if not (Types.equal i.ty Types.Void) || i.op = Op.Phi then
              Hashtbl.replace vmap i.id (Instr clone);
            fixups := (clone, i) :: !fixups
          end)
        b.instrs)
    loop_blocks;
  let map_value v =
    match v with
    | Instr d -> (
        match Hashtbl.find_opt vmap d.id with Some v' -> v' | None -> v)
    | _ -> v
  in
  List.iter
    (fun (clone, orig) ->
      if orig.op = Op.Phi then
        set_phi_incoming clone
          (List.map
             (fun (v, src) -> (map_value v, map_block_phi src))
             (phi_incoming orig))
      else begin
        clone.operands <- Array.map map_value orig.operands;
        clone.blocks <- Array.map map_block_target orig.blocks
      end)
    !fixups;
  bmap

(** Fully unroll [cl]; the original loop blocks are removed. *)
let unroll (f : func) (cl : counted_loop) : unit =
  let l = cl.cl_loop in
  let header = l.Loops.header in
  let header_phis = phis header in
  (* running values of the loop-carried phis, starting at the
     preheader's incoming values *)
  let carried = Hashtbl.create 8 in
  List.iter
    (fun phi ->
      match phi_incoming_for phi cl.cl_preheader with
      | Some v -> Hashtbl.replace carried phi.id v
      | None -> invalid_arg "Loop_unroll: phi misses preheader incoming")
    header_phis;
  let prev_tail = ref cl.cl_preheader in
  for iter = 0 to cl.cl_trip - 1 do
    let vmap = Hashtbl.create 32 in
    Hashtbl.iter (fun k v -> Hashtbl.replace vmap k v) carried;
    let bmap = clone_iteration f cl ~iter ~vmap in
    let new_header = Hashtbl.find bmap header.bid in
    let new_latch = Hashtbl.find bmap cl.cl_latch.bid in
    (* link the previous tail to this iteration's header: for later
       iterations the previous latch clone still targets the original
       header (clone_iteration leaves back edges unmapped) *)
    redirect_edge !prev_tail ~old_dest:header ~new_dest:new_header;
    (* update carried values from the latch's incoming *)
    List.iter
      (fun phi ->
        match phi_incoming_for phi cl.cl_latch with
        | Some v ->
            let mapped =
              match v with
              | Instr d -> (
                  match Hashtbl.find_opt vmap d.id with
                  | Some v' -> v'
                  | None -> v)
              | _ -> v
            in
            Hashtbl.replace carried phi.id mapped
        | None -> invalid_arg "Loop_unroll: phi misses latch incoming")
      header_phis;
    prev_tail := new_latch
  done;
  (* Epilogue: the loop exits after one final evaluation of the header
     (its phis take the carried values, its body instructions run once
     more).  Cloning it keeps every header-defined value available to
     code after the loop. *)
  let epi = mk_block (header.bname ^ ".epilogue") in
  append_block f epi;
  let evmap = Hashtbl.create 16 in
  Hashtbl.iter (fun k v -> Hashtbl.replace evmap k v) carried;
  let map_value v =
    match v with
    | Instr d -> (
        match Hashtbl.find_opt evmap d.id with Some v' -> v' | None -> v)
    | _ -> v
  in
  List.iter
    (fun i ->
      if i.op = Op.Phi || Op.is_terminator i.op then ()
      else begin
        let clone =
          mk_instr i.op (Array.map map_value i.operands) [||] i.ty
        in
        append_instr epi clone;
        if not (Types.equal i.ty Types.Void) then
          Hashtbl.replace evmap i.id (Instr clone)
      end)
    header.instrs;
  append_instr epi (mk_instr Op.Br [||] [| cl.cl_exit |] Types.Void);
  redirect_edge !prev_tail ~old_dest:header ~new_dest:epi;
  (* external uses of loop values can only reference header-defined
     values (nothing else dominates the exit); map them to the epilogue *)
  let in_loop_block i =
    match i.parent with Some b -> Loops.in_loop l b | None -> false
  in
  iter_instrs f (fun u ->
      if not (in_loop_block u) && u.parent != Some epi then
        u.operands <-
          Array.map
            (fun v ->
              match v with
              | Instr d when in_loop_block d ->
                  Option.value ~default:v (Hashtbl.find_opt evmap d.id)
              | _ -> v)
            u.operands);
  phi_replace_incoming_block cl.cl_exit ~old_pred:header ~new_pred:epi;
  (* drop the original loop *)
  List.iter (fun b -> remove_block f b) (Loops.blocks_of l)

(** Fully unroll every simple counted loop with trip count at most
    [max_trip], repeating until no more loops qualify (so nested counted
    loops unroll inside-out).  Returns the number of loops unrolled. *)
let run ?(max_trip = 16) (f : func) : int =
  let count = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    let li = Loops.compute f in
    let candidate =
      List.fold_left
        (fun acc l ->
          match acc with
          | Some _ -> acc
          | None ->
              (* only innermost loops (no other loop nested within) *)
              let is_innermost =
                not
                  (List.exists
                     (fun l2 ->
                       l2 != l
                       && Hashtbl.mem l.Loops.body l2.Loops.header.bid)
                     li.Loops.loops)
              in
              if is_innermost then analyze f l ~max_trip else None)
        None li.Loops.loops
    in
    match candidate with
    | Some cl ->
        unroll f cl;
        ignore (Darm_analysis.Cfg.remove_unreachable f);
        incr count;
        progress := true
    | None -> ()
  done;
  !count
