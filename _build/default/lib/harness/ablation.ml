(** Ablation studies for the design choices called out in DESIGN.md:

    - unpredication on/off (paper §IV-E);
    - melding-profitability threshold sweep (the [threshold] of
      Algorithm 1);
    - select-latency sensitivity of the FP_I scoring;
    - re-predication by later passes (if-conversion after melding,
      the §VI-C bitonic effect). *)

module Kernel = Darm_kernels.Kernel
module Pass = Darm_core.Pass
module Latency = Darm_analysis.Latency
module E = Experiment

let pf = Printf.printf

let run_with (config : Pass.config) (kernel : Kernel.t) ~block_size :
    E.result =
  E.run ~transform:(E.darm_transform ~config ()) kernel ~block_size

let unpredication_ablation () =
  pf "\n-- ablation: unpredication on/off --\n";
  pf "%-8s %14s %14s\n" "bench" "unpred=on" "unpred=off";
  List.iter
    (fun (kernel : Kernel.t) ->
      let block_size = List.hd kernel.Kernel.block_sizes in
      let on =
        run_with { Pass.default_config with unpredicate = true } kernel
          ~block_size
      in
      let off =
        run_with { Pass.default_config with unpredicate = false } kernel
          ~block_size
      in
      pf "%-8s %13.2fx %13.2fx%s\n" kernel.Kernel.tag (E.speedup on)
        (E.speedup off)
        (if on.E.correct && off.E.correct then "" else "  (INCORRECT)"))
    [ Darm_kernels.Sb.sb1_r; Darm_kernels.Sb.sb3_r; Darm_kernels.Bitonic.kernel ]

let threshold_ablation () =
  pf "\n-- ablation: melding profitability threshold --\n";
  let kernel = Darm_kernels.Sb.sb3 in
  pf "%-12s %10s %10s\n" "threshold" "melds" "speedup";
  List.iter
    (fun threshold ->
      let r =
        run_with { Pass.default_config with threshold } kernel ~block_size:64
      in
      pf "%-12.2f %10d %9.2fx\n" threshold r.E.rewrites (E.speedup r))
    [ 0.05; 0.1; 0.2; 0.3; 0.45; 0.6 ]

let select_latency_ablation () =
  pf "\n-- ablation: select latency in FP_I --\n";
  let kernel = Darm_kernels.Sb.sb1_r in
  pf "%-12s %10s %10s\n" "l_sel" "melds" "speedup";
  List.iter
    (fun select ->
      let config =
        {
          Pass.default_config with
          latency = { Latency.default with select };
        }
      in
      let r = run_with config kernel ~block_size:64 in
      pf "%-12d %10d %9.2fx\n" select r.E.rewrites (E.speedup r))
    [ 0; 1; 4; 16 ]

let pairing_ablation () =
  pf "\n-- ablation: greedy vs alignment subgraph pairing --\n";
  pf "%-8s %14s %14s\n" "bench" "greedy" "alignment";
  List.iter
    (fun (kernel : Kernel.t) ->
      let block_size = List.hd kernel.Kernel.block_sizes in
      let g = run_with Pass.default_config kernel ~block_size in
      let a =
        run_with
          { Pass.default_config with pairing = Pass.Alignment }
          kernel ~block_size
      in
      pf "%-8s %13.2fx %13.2fx%s\n" kernel.Kernel.tag (E.speedup g)
        (E.speedup a)
        (if g.E.correct && a.E.correct then "" else "  (INCORRECT)"))
    [
      Darm_kernels.Sb.sb3;
      Darm_kernels.Sb.sb3_r;
      Darm_kernels.Bitonic.kernel;
      Darm_kernels.Pcm.kernel;
    ]

let repredication_ablation () =
  pf "\n-- ablation: re-predication by later passes (paper SVI-C) --\n";
  let kernel = Darm_kernels.Bitonic.kernel in
  let block_size = 128 in
  let plain = run_with Pass.default_config kernel ~block_size in
  let repred =
    run_with { Pass.default_config with if_convert_after = true } kernel
      ~block_size
  in
  pf "DARM:                %5.2fx\n" (E.speedup plain);
  pf "DARM + if-convert:   %5.2fx%s\n" (E.speedup repred)
    (if repred.E.correct then "" else "  (INCORRECT)")

let memory_latency_ablation () =
  pf "\n-- ablation: why melding shared memory wins (paper SVI-D) --\n";
  pf "SB1's melded region is shared-memory-heavy; if LDS were as cheap\n";
  pf "as the ALU, melding would save far less:\n";
  pf "%-26s %10s\n" "latency model" "speedup";
  let with_shared shared_mem =
    let sim =
      {
        Darm_sim.Simulator.default_config with
        latency = { Latency.default with shared_mem };
      }
    in
    E.speedup (E.run ~sim Darm_kernels.Sb.sb1 ~block_size:64)
  in
  pf "%-26s %9.2fx\n" "LDS = default (24 cycles)"
    (with_shared Latency.default.Latency.shared_mem);
  pf "%-26s %9.2fx\n" "LDS = 8 cycles" (with_shared 8);
  pf "%-26s %9.2fx\n" "LDS = 1 cycle (ALU-cheap)" (with_shared 1)

let multi_cu_ablation () =
  pf "\n-- ablation: does the speedup survive multi-CU scheduling? --\n";
  pf "%-8s %10s %10s %10s\n" "bench" "1 CU" "8 CUs" "64 CUs";
  List.iter
    (fun (kernel : Kernel.t) ->
      let block_size = List.hd kernel.Kernel.block_sizes in
      let r = E.run kernel ~block_size in
      let speed cus =
        float_of_int (Darm_sim.Metrics.makespan r.E.base ~num_cus:cus)
        /. float_of_int (Darm_sim.Metrics.makespan r.E.opt ~num_cus:cus)
      in
      pf "%-8s %9.2fx %9.2fx %9.2fx\n" kernel.Kernel.tag (speed 1) (speed 8)
        (speed 64))
    [ Darm_kernels.Sb.sb1; Darm_kernels.Bitonic.kernel; Darm_kernels.Pcm.kernel ]

let warp_size_ablation () =
  pf "\n-- ablation: warp width (wave32 vs wave64) --\n";
  pf "LUD's branch splits the block in half, so it is dynamically\n";
  pf "divergent only when half the block is narrower than the warp:\n";
  pf "%-10s %12s %12s\n" "block size" "wave32" "wave64";
  List.iter
    (fun block_size ->
      let speed warp_size =
        let sim =
          { Darm_sim.Simulator.default_config with warp_size }
        in
        E.speedup (E.run ~sim Darm_kernels.Lud.kernel ~block_size)
      in
      pf "%-10d %11.2fx %11.2fx\n" block_size (speed 32) (speed 64))
    [ 16; 32; 64; 128; 256 ]

let run () =
  pf "\n== Ablation studies ==\n";
  unpredication_ablation ();
  threshold_ablation ();
  pairing_ablation ();
  select_latency_ablation ();
  warp_size_ablation ();
  memory_latency_ablation ();
  multi_cu_ablation ();
  repredication_ablation ()
