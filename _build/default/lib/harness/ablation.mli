(** Ablation studies beyond the paper: unpredication on/off, the melding
    profitability threshold, the select-latency term of FP_I, greedy vs
    alignment subgraph pairing, warp width, and post-meld
    re-predication. *)

val run : unit -> unit
