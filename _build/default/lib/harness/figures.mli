(** Reproduction of every figure and table of the paper's evaluation
    (§VI).  Each function runs the experiment and prints the same
    rows/series the paper reports, with the paper's headline numbers
    quoted alongside; see EXPERIMENTS.md for the recorded
    paper-vs-measured comparison. *)

module E = Experiment

(** Synthetic benchmark speedups per block size, with geomean. *)
val fig7 : ?n:int -> unit -> E.result list

(** Real-world benchmark speedups per block size ('+' = best baseline
    block size); GM, GM-best, and the speedup spread over input seeds. *)
val fig8 : ?n:int -> unit -> E.result list

(** ALU utilization, baseline vs DARM, at each benchmark's
    best-improvement block size.  Returns (tag, baseline%, darm%). *)
val fig9 : ?n:int -> unit -> (string * float * float) list

(** Memory instruction counters after DARM normalized to baseline.
    Returns (tag, vector, shared, flat). *)
val fig10 : ?n:int -> unit -> (string * float * float * float) list

(** Capability matrix: tail merging / branch fusion / DARM on the three
    control-flow pattern classes. *)
val table1 : ?n:int -> unit -> unit

(** Compile time of the pass pipelines, averaged over [reps] runs. *)
val table2 : ?reps:int -> unit -> unit
