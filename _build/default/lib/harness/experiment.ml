(** Experiment runner: executes a kernel baseline-vs-transformed on the
    simulator and collects the paper's metrics. *)

module Kernel = Darm_kernels.Kernel
module Registry = Darm_kernels.Registry
module Sim = Darm_sim.Simulator
module Metrics = Darm_sim.Metrics
module Pass = Darm_core.Pass

type transform = {
  t_name : string;
  t_apply : Darm_ir.Ssa.func -> int;  (** returns #rewrites applied *)
}

let darm_transform ?(config = Pass.default_config) () : transform =
  {
    t_name = "DARM";
    t_apply =
      (fun f ->
        let stats = Pass.run ~config f in
        stats.Pass.melds_applied);
  }

let branch_fusion_transform : transform =
  {
    t_name = "branch-fusion";
    t_apply =
      (fun f ->
        let stats = Pass.run_branch_fusion f in
        stats.Pass.melds_applied);
  }

let tail_merge_transform : transform =
  { t_name = "tail-merging"; t_apply = Darm_transforms.Tail_merge.run }

let identity_transform : transform =
  { t_name = "baseline"; t_apply = (fun _ -> 0) }

type result = {
  tag : string;
  block_size : int;
  transform_name : string;
  rewrites : int;  (** melds / merges applied *)
  base : Metrics.t;
  opt : Metrics.t;
  correct : bool;  (** transformed output == baseline output == reference *)
}

let speedup (r : result) : float =
  if r.opt.Metrics.cycles = 0 then 1.
  else float_of_int r.base.Metrics.cycles /. float_of_int r.opt.Metrics.cycles

let sim_config = Sim.default_config

let run_instance ?(config = sim_config) (inst : Kernel.instance) : Metrics.t =
  Sim.run ~config inst.Kernel.func ~args:inst.Kernel.args
    ~global:inst.Kernel.global inst.Kernel.launch

(** Run [kernel] at [block_size] with and without [transform]; check
    output equivalence against the host reference as a built-in sanity
    gate.  [sim] overrides the machine model (e.g. the warp width). *)
let run ?(transform = darm_transform ()) ?(seed = 2022) ?n ?sim
    (kernel : Kernel.t) ~(block_size : int) : result =
  let n = Option.value ~default:kernel.Kernel.default_n n in
  let base_inst = kernel.Kernel.make ~seed ~block_size ~n in
  let opt_inst = kernel.Kernel.make ~seed ~block_size ~n in
  let rewrites = transform.t_apply opt_inst.Kernel.func in
  Darm_ir.Verify.run_exn opt_inst.Kernel.func;
  let base = run_instance ?config:sim base_inst in
  let opt = run_instance ?config:sim opt_inst in
  let out_base = base_inst.Kernel.read_result () in
  let out_opt = opt_inst.Kernel.read_result () in
  let expected = base_inst.Kernel.reference () in
  let correct =
    Kernel.rv_array_equal out_base expected
    && Kernel.rv_array_equal out_opt out_base
  in
  {
    tag = kernel.Kernel.tag;
    block_size;
    transform_name = transform.t_name;
    rewrites;
    base;
    opt;
    correct;
  }

(** Sweep a kernel over its block sizes. *)
let sweep ?transform ?seed ?n (kernel : Kernel.t) : result list =
  List.map
    (fun block_size -> run ?transform ?seed ?n kernel ~block_size)
    kernel.Kernel.block_sizes

let geomean (xs : float list) : float =
  match xs with
  | [] -> 1.
  | _ ->
      exp (List.fold_left (fun a x -> a +. log x) 0. xs
           /. float_of_int (List.length xs))
