(** Experiment runner: executes a kernel baseline-vs-transformed on the
    simulator and collects the paper's metrics, with a built-in output
    equivalence check against the host reference. *)

module Kernel = Darm_kernels.Kernel
module Sim = Darm_sim.Simulator
module Metrics = Darm_sim.Metrics
module Pass = Darm_core.Pass

type transform = {
  t_name : string;
  t_apply : Darm_ir.Ssa.func -> int;  (** returns #rewrites applied *)
}

val darm_transform : ?config:Pass.config -> unit -> transform
val branch_fusion_transform : transform
val tail_merge_transform : transform
val identity_transform : transform

type result = {
  tag : string;
  block_size : int;
  transform_name : string;
  rewrites : int;
  base : Metrics.t;
  opt : Metrics.t;
  correct : bool;
      (** transformed output == baseline output == reference *)
}

val speedup : result -> float

val sim_config : Sim.config

val run_instance : ?config:Sim.config -> Kernel.instance -> Metrics.t

(** Run [kernel] at [block_size] with and without [transform]; [sim]
    overrides the machine model (e.g. the warp width). *)
val run :
  ?transform:transform ->
  ?seed:int ->
  ?n:int ->
  ?sim:Sim.config ->
  Kernel.t ->
  block_size:int ->
  result

(** Sweep a kernel over its block sizes. *)
val sweep : ?transform:transform -> ?seed:int -> ?n:int -> Kernel.t -> result list

val geomean : float list -> float
