lib/harness/ablation.mli:
