lib/harness/parallel_sweep.mli:
