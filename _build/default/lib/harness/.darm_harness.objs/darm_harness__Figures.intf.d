lib/harness/figures.mli: Experiment
