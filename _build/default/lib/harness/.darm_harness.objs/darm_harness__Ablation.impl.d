lib/harness/ablation.ml: Darm_analysis Darm_core Darm_kernels Darm_sim Experiment List Printf
