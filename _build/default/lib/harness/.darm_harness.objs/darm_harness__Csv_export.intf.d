lib/harness/csv_export.mli: Experiment
