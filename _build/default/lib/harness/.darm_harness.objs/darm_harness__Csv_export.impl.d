lib/harness/csv_export.ml: Darm_kernels Darm_sim Experiment Filename List Printf Unix
