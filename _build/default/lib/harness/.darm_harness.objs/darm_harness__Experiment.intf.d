lib/harness/experiment.mli: Darm_core Darm_ir Darm_kernels Darm_sim
