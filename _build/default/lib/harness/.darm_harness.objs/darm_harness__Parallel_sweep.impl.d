lib/harness/parallel_sweep.ml: Array Atomic Domain List Printf String Sys
