lib/harness/figures.ml: Darm_core Darm_kernels Darm_sim Darm_transforms Experiment List Printf String Unix
