lib/harness/figures.ml: Darm_core Darm_kernels Darm_sim Darm_transforms Experiment List Parallel_sweep Printf String Unix
