lib/harness/experiment.ml: Darm_core Darm_ir Darm_kernels Darm_sim Darm_transforms List Option
