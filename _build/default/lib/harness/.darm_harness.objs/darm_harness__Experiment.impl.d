lib/harness/experiment.ml: Darm_core Darm_ir Darm_kernels Darm_sim Darm_transforms Fun Hashtbl List Mutex Option Parallel_sweep Printf
