(** Reproduction of every figure and table of the paper's evaluation
    (§VI).  Each [figN]/[tableN] function runs the experiment and prints
    the same rows/series the paper reports; {!Experiment} supplies the
    raw data. *)

module Kernel = Darm_kernels.Kernel
module Registry = Darm_kernels.Registry
module Metrics = Darm_sim.Metrics
module E = Experiment

let pf = Printf.printf

let hr () = pf "%s\n" (String.make 78 '-')

let warp_size = E.sim_config.Darm_sim.Simulator.warp_size

let check_banner (results : E.result list) =
  let bad = List.filter (fun r -> not r.E.correct) results in
  if bad <> [] then begin
    pf "!! CORRECTNESS FAILURES:\n";
    List.iter
      (fun r -> pf "!!   %s bs=%d (%s)\n" r.E.tag r.E.block_size r.E.transform_name)
      bad
  end

(* ------------------------------------------------------------------ *)

(** Figure 7: synthetic benchmark speedups per block size, with the
    geometric mean. *)
let fig7 ?n () : E.result list =
  pf "\n== Figure 7: synthetic benchmark performance (DARM vs baseline) ==\n";
  pf "%-8s" "bench";
  List.iter (fun bs -> pf "%8s" ("bs" ^ string_of_int bs))
    [ 64; 128; 256; 512; 1024 ];
  pf "\n";
  hr ();
  let all =
    List.concat_map
      (fun kernel ->
        let results = E.sweep ?n kernel in
        pf "%-8s" kernel.Kernel.tag;
        List.iter (fun r -> pf "%8.2f" (E.speedup r)) results;
        pf "\n";
        results)
      Registry.synthetic
  in
  let gm = E.geomean (List.map E.speedup all) in
  hr ();
  pf "%-8s%8.2f   (paper: 1.32x geomean)\n" "GM" gm;
  check_banner all;
  all

(** Figure 8: real-world benchmark speedups per block size; '+' marks
    the block size with the best baseline runtime; GM and GM-best.
    Each configuration runs over three input seeds; the printed value is
    the mean speedup (the spread is tiny, matching the paper's "error
    bars ... negligible"). *)
let fig8 ?n () : E.result list =
  pf "\n== Figure 8: real-world benchmark performance (DARM vs baseline) ==\n";
  pf "   (mean speedup over 3 input seeds; max spread printed at the end)\n";
  let all = ref [] in
  let best_speedups = ref [] in
  let max_spread = ref 0. in
  List.iter
    (fun kernel ->
      let results = E.sweep ?n kernel in
      (* spread across seeds at the first block size *)
      let speeds =
        List.map
          (fun seed ->
            E.speedup
              (E.run ~seed ?n kernel
                 ~block_size:(List.hd kernel.Kernel.block_sizes)))
          [ 11; 22; 33 ]
      in
      let spread =
        List.fold_left max neg_infinity speeds
        -. List.fold_left min infinity speeds
      in
      if spread > !max_spread then max_spread := spread;
      all := !all @ results;
      (* best baseline block size = fewest baseline cycles *)
      let best =
        List.fold_left
          (fun acc r ->
            match acc with
            | None -> Some r
            | Some b ->
                if r.E.base.Metrics.cycles < b.E.base.Metrics.cycles then
                  Some r
                else acc)
          None results
      in
      pf "%-6s" kernel.Kernel.tag;
      List.iter
        (fun r ->
          let mark =
            match best with
            | Some b when b.E.block_size = r.E.block_size -> "+"
            | _ -> ""
          in
          pf "  bs%-4d %5.2f%-1s" r.E.block_size (E.speedup r) mark)
        results;
      pf "\n";
      match best with
      | Some b -> best_speedups := E.speedup b :: !best_speedups
      | None -> ())
    Registry.real_world;
  hr ();
  pf "GM      %5.2f   (paper: 1.15x geomean)\n"
    (E.geomean (List.map E.speedup !all));
  pf "GM-best %5.2f   (paper: slightly above GM)\n"
    (E.geomean !best_speedups);
  pf "max speedup spread across seeds: %.4f (paper: negligible)\n"
    !max_spread;
  check_banner !all;
  !all

(* block size with the largest DARM improvement, as §VI-C/D use *)
let best_improvement_config (kernel : Kernel.t) ?n () : E.result =
  let results = E.sweep ?n kernel in
  List.fold_left
    (fun acc r -> if E.speedup r > E.speedup acc then r else acc)
    (List.hd results) (List.tl results)

(** Figure 9: ALU utilization, baseline vs DARM, at each benchmark's
    best-improvement block size. *)
let fig9 ?n () : (string * float * float) list =
  pf "\n== Figure 9: ALU utilization %% (baseline vs DARM) ==\n";
  pf "%-8s %10s %10s %8s\n" "bench" "baseline" "DARM" "delta";
  hr ();
  List.map
    (fun kernel ->
      let r = best_improvement_config kernel ?n () in
      let u_base = Metrics.alu_utilization r.E.base ~warp_size in
      let u_darm = Metrics.alu_utilization r.E.opt ~warp_size in
      pf "%-8s %9.1f%% %9.1f%% %+7.1f%%   (bs=%d)\n" r.E.tag u_base u_darm
        (u_darm -. u_base) r.E.block_size;
      (r.E.tag, u_base, u_darm))
    (Registry.synthetic @ Registry.real_world)

(** Figure 10: memory instruction counters after DARM, normalized to the
    baseline (vector/global, LDS/shared, flat). *)
let fig10 ?n () : (string * float * float * float) list =
  pf "\n== Figure 10: normalized memory instruction counters (DARM/base) ==\n";
  pf "%-8s %10s %10s %10s\n" "bench" "vector" "shared" "flat";
  hr ();
  let norm a b =
    if b = 0 then if a = 0 then 1. else float_of_int (a + 1)
    else float_of_int a /. float_of_int b
  in
  List.map
    (fun kernel ->
      let r = best_improvement_config kernel ?n () in
      let v = norm r.E.opt.Metrics.mem_global r.E.base.Metrics.mem_global in
      let s = norm r.E.opt.Metrics.mem_shared r.E.base.Metrics.mem_shared in
      let fl = norm r.E.opt.Metrics.mem_flat r.E.base.Metrics.mem_flat in
      pf "%-8s %10.2f %10.2f %10.2f   (bs=%d)\n" r.E.tag v s fl
        r.E.block_size;
      (r.E.tag, v, s, fl))
    (Registry.synthetic @ Registry.real_world)

(* ------------------------------------------------------------------ *)

(** Table I: capability matrix of tail merging / branch fusion / DARM on
    the three control-flow-pattern classes.  A technique "handles" a
    pattern when it removes (almost) all dynamic warp splits. *)
let table1 ?(n = 256) () : unit =
  pf "\n== Table I: divergence-reduction capability matrix ==\n";
  let patterns =
    [
      ("diamond, identical paths", Darm_kernels.Patterns.identical_diamond);
      ("diamond, distinct paths", Darm_kernels.Sb.sb1_r);
      ("complex control flow", Darm_kernels.Sb.sb3);
    ]
  in
  let techniques =
    [
      E.tail_merge_transform;
      E.branch_fusion_transform;
      E.darm_transform ();
    ]
  in
  pf "%-28s %14s %14s %14s\n" "pattern" "tail-merging" "branch-fusion" "DARM";
  hr ();
  List.iter
    (fun (label, kernel) ->
      pf "%-28s" label;
      List.iter
        (fun t ->
          let r = E.run ~transform:t kernel ~block_size:64 ~n in
          let residual =
            if r.E.base.Metrics.divergent_branches = 0 then 0.
            else
              float_of_int r.E.opt.Metrics.divergent_branches
              /. float_of_int r.E.base.Metrics.divergent_branches
          in
          (* "yes": the divergent serialization is (nearly) gone;
             "partial": the technique applied and helps, but divergence
             remains (e.g. unpredication guards, inner melded branches) *)
          let verdict =
            if not r.E.correct then "BROKEN"
            else if r.E.rewrites = 0 then "no"
            else if residual <= 0.10 then "yes"
            else if E.speedup r > 1.02 then "partial"
            else "no"
          in
          pf " %13s " verdict)
        techniques;
      pf "\n")
    patterns;
  pf "(paper: tail merging only partial on identical diamonds; branch \n";
  pf " fusion up to diamonds; DARM handles all three)\n"

(** Table II: compile time of the melding pass, normalized to the
    baseline cleanup pipeline, averaged over [reps] runs. *)
let table2 ?(reps = 5) () : unit =
  pf "\n== Table II: average compile time (pass pipeline) ==\n";
  pf "%-6s %12s %12s %12s\n" "bench" "O3 (ms)" "DARM (ms)" "normalized";
  hr ();
  let time_ms f =
    let t0 = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. t0) *. 1000.
  in
  List.iter
    (fun kernel ->
      let block_size = List.nth kernel.Kernel.block_sizes 1 in
      let baseline_ms = ref 0. and darm_ms = ref 0. in
      (* both timings include IR construction (the frontend analogue) so
         the "normalized" column compares full device-code pipelines, as
         the paper does *)
      let cleanup f =
        ignore (Darm_transforms.Simplify_cfg.run f);
        ignore (Darm_transforms.Constfold.run f);
        ignore (Darm_transforms.Dce.run f)
      in
      for _ = 1 to reps do
        baseline_ms :=
          !baseline_ms
          +. time_ms (fun () ->
                 let inst =
                   kernel.Kernel.make ~seed:1 ~block_size
                     ~n:kernel.Kernel.default_n
                 in
                 cleanup inst.Kernel.func);
        darm_ms :=
          !darm_ms
          +. time_ms (fun () ->
                 let inst =
                   kernel.Kernel.make ~seed:1 ~block_size
                     ~n:kernel.Kernel.default_n
                 in
                 cleanup inst.Kernel.func;
                 ignore (Darm_core.Pass.run inst.Kernel.func))
      done;
      let b = !baseline_ms /. float_of_int reps in
      let d = !darm_ms /. float_of_int reps in
      pf "%-6s %12.3f %12.3f %12.4f\n" kernel.Kernel.tag b d
        (if b > 0. then d /. b else 0.))
    Registry.real_world;
  pf "(paper: LUD 1.57x and PCM 1.18x slower to compile; rest ~1.0x)\n"
