examples/minihip_frontend.ml: Array Darm_core Darm_frontend Darm_ir Darm_sim List Printer Printf Ssa Verify
