examples/divergence_report.ml: Darm_analysis Darm_harness Darm_kernels Darm_sim List Printf String
