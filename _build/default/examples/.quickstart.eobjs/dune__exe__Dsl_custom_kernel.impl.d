examples/dsl_custom_kernel.ml: Array Darm_core Darm_ir Darm_sim Dsl Parser Printer Printf Types Verify
