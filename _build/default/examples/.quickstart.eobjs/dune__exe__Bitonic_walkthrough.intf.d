examples/bitonic_walkthrough.mli:
