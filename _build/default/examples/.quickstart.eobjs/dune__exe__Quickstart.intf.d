examples/quickstart.mli:
