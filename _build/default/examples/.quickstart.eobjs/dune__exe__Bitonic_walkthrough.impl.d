examples/bitonic_walkthrough.ml: Darm_analysis Darm_core Darm_harness Darm_ir Darm_kernels List Printer Printf Ssa
