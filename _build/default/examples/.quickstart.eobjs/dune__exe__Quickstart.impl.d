examples/quickstart.ml: Array Darm_analysis Darm_core Darm_ir Darm_sim Dsl List Printer Printf Ssa Types
