examples/dsl_custom_kernel.mli:
