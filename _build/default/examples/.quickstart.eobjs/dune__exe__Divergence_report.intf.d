examples/divergence_report.mli:
