examples/minihip_frontend.mli:
