(* Writing your own kernel against the public API: a histogram-style
   kernel with three-way divergence, round-tripped through the textual
   IR format, then optimized and simulated.

     dune exec examples/dsl_custom_kernel.exe
*)

open Darm_ir
module D = Dsl
module Sim = Darm_sim.Simulator
module Memory = Darm_sim.Memory

(* Classify each element into small/medium/large and update a per-block
   shared counter table; nested divergent branches, all meldable.  The
   else-side of the outer branch recomputes a scaled value exactly like
   the then-side does, so DARM finds profitable alignments. *)
let make () =
  D.build_kernel ~name:"classify"
    ~params:[ ("inp", Types.Ptr Types.Global); ("out", Types.Ptr Types.Global) ]
    (fun ctx params ->
      let inp, out =
        match params with [ a; b ] -> (a, b) | _ -> assert false
      in
      let tid = D.tid ctx in
      let gid = D.add ctx (D.mul ctx (D.bid ctx) (D.bdim ctx)) tid in
      let v = D.load ctx (D.gep ctx inp gid) in
      let r = D.local ctx ~name:"r" Types.I32 in
      D.if_ ctx
        (D.slt ctx v (D.i32 100))
        (fun () ->
          (* small: scale up *)
          let t = D.mul ctx v (D.i32 9) in
          let t = D.add ctx t (D.i32 7) in
          D.set ctx r t)
        (fun () ->
          D.if_ ctx
            (D.slt ctx v (D.i32 1000))
            (fun () ->
              (* medium: same instruction mix as "small" *)
              let t = D.mul ctx v (D.i32 3) in
              let t = D.add ctx t (D.i32 1) in
              D.set ctx r t)
            (fun () ->
              (* large: saturate *)
              D.set ctx r (D.i32 9999)));
      D.store ctx (D.get ctx r) (D.gep ctx out gid))

let host v =
  if v < 100 then (v * 9) + 7 else if v < 1000 then (v * 3) + 1 else 9999

let () =
  let f = make () in

  (* round-trip through the textual format: print, parse, verify *)
  let text = Printer.func_to_string f in
  print_endline "=== kernel (textual IR) ===";
  print_string text;
  let f =
    match Parser.parse_func text with
    | Ok f ->
        Verify.run_exn f;
        print_endline ";; round-trip through the parser: ok";
        f
    | Error e -> failwith ("parse error: " ^ e)
  in

  (* optimize *)
  let stats = Darm_core.Pass.run ~verify_each:true f in
  Printf.printf "\nDARM applied %d meld(s)\n" stats.Darm_core.Pass.melds_applied;

  (* simulate and check against the host mirror *)
  let n = 512 in
  let g = Memory.create ~space:Memory.Sp_global (2 * n) in
  let input = Array.init n (fun i -> (i * i * 13) mod 2000) in
  let inp = Memory.alloc_of_int_array g input in
  let out = Memory.alloc g n in
  let metrics =
    Sim.run f ~args:[| inp; out |] ~global:g
      { Sim.grid_dim = n / 128; block_dim = 128 }
  in
  let got = Memory.read_int_array g out n in
  let expected = Array.map host input in
  assert (got = expected);
  Printf.printf "simulated %d threads, output matches the host mirror\n" n;
  Printf.printf "%s\n" (Darm_sim.Metrics.to_string metrics ~warp_size:64)
