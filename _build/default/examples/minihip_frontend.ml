(* Compiling kernels from Mini-HIP source (the C-like frontend): parse,
   lower to SSA, meld, and simulate — no OCaml kernel-building required.

     dune exec examples/minihip_frontend.exe
*)

open Darm_ir
module Sim = Darm_sim.Simulator
module Memory = Darm_sim.Memory

(* The paper's motivating pattern, §III, straight from C-like source:
   both sides of the thread-dependent branch do a compare-and-swap over
   shared memory with opposite directions. *)
let source =
  {|
// one sorting step per thread pair, direction by thread parity
__global__ void oddeven_step(int* values) {
  __shared__ int s[128];
  int t = threadIdx();
  s[t] = values[t];
  __syncthreads();
  int partner = t ^ 1;
  if ((t & 1) == 0) {
    if (s[partner] < s[t]) {
      int tmp = s[t]; s[t] = s[partner]; s[partner] = tmp;
    }
  } else {
    /* odd threads only re-read; their even partner did the swap */
    s[t] = s[t];
  }
  __syncthreads();
  values[t] = s[t];
}
|}

let () =
  print_endline "=== Mini-HIP source ===";
  print_string source;
  let m =
    match Darm_frontend.Lower.compile ~name:"example" source with
    | Ok m -> m
    | Error e -> failwith ("compile error: " ^ e)
  in
  let f = List.hd m.Ssa.funcs in
  Verify.run_exn f;
  print_endline "\n=== lowered SSA ===";
  print_string (Printer.func_to_string f);

  let stats = Darm_core.Pass.run ~verify_each:true f in
  Printf.printf "\n=== after DARM (%d meld(s)) ===\n"
    stats.Darm_core.Pass.melds_applied;
  print_string (Printer.func_to_string f);

  (* run it *)
  let n = 128 in
  let input = Array.init n (fun i -> (i * 37) mod 101) in
  let g = Memory.create ~space:Memory.Sp_global n in
  let pv = Memory.alloc_of_int_array g input in
  let metrics =
    Sim.run f ~args:[| pv |] ~global:g { Sim.grid_dim = 1; block_dim = n }
  in
  let out = Memory.read_int_array g pv n in
  (* each even/odd pair must be ordered *)
  let ok = ref true in
  for p = 0 to (n / 2) - 1 do
    if out.(2 * p) > out.((2 * p) + 1) then ok := false
  done;
  Printf.printf "\npairs ordered: %b\n%s\n" !ok
    (Darm_sim.Metrics.to_string metrics ~warp_size:64)
