(* Quickstart: build a small divergent GPU kernel with the DSL, run the
   DARM melding pass, and measure the effect on the SIMT simulator.

     dune exec examples/quickstart.exe
*)

open Darm_ir
module D = Dsl
module Sim = Darm_sim.Simulator
module Memory = Darm_sim.Memory
module Metrics = Darm_sim.Metrics

(* A kernel with classic odd/even thread divergence: even threads
   smooth their element with the right neighbour, odd threads with the
   left one.  Both paths are the same shape, so DARM can meld them. *)
let make_kernel () =
  D.build_kernel ~name:"smooth"
    ~params:[ ("inp", Types.Ptr Types.Global); ("out", Types.Ptr Types.Global);
              ("n", Types.I32) ]
    (fun ctx params ->
      let inp, out, n =
        match params with [ a; b; c ] -> (a, b, c) | _ -> assert false
      in
      let tid = D.tid ctx in
      let gid = D.add ctx (D.mul ctx (D.bid ctx) (D.bdim ctx)) tid in
      let clamp v = D.smax ctx (D.i32 0) (D.smin ctx v (D.sub ctx n (D.i32 1))) in
      let result = D.local ctx ~name:"result" Types.I32 in
      D.if_ ctx
        (D.eq ctx (D.and_ ctx gid (D.i32 1)) (D.i32 0))
        (fun () ->
          let here = D.load ctx (D.gep ctx inp gid) in
          let right = D.load ctx (D.gep ctx inp (clamp (D.add ctx gid (D.i32 1)))) in
          D.set ctx result (D.sdiv ctx (D.add ctx here right) (D.i32 2)))
        (fun () ->
          let here = D.load ctx (D.gep ctx inp gid) in
          let left = D.load ctx (D.gep ctx inp (clamp (D.sub ctx gid (D.i32 1)))) in
          D.set ctx result (D.sdiv ctx (D.add ctx here left) (D.i32 2)));
      D.store ctx (D.get ctx result) (D.gep ctx out gid))

let simulate f =
  let n = 256 in
  let g = Memory.create ~space:Memory.Sp_global (2 * n) in
  let input = Array.init n (fun i -> (i * 37) mod 101) in
  let inp = Memory.alloc_of_int_array g input in
  let out = Memory.alloc g n in
  let metrics =
    Sim.run f ~args:[| inp; out; Memory.Rint n |] ~global:g
      { Sim.grid_dim = n / 64; block_dim = 64 }
  in
  (metrics, Memory.read_int_array g out n)

let () =
  print_endline "=== 1. the kernel, as built by the DSL ===";
  let f = make_kernel () in
  print_string (Printer.func_to_string f);

  print_endline "\n=== 2. divergence analysis ===";
  let dvg = Darm_analysis.Divergence.compute f in
  List.iter
    (fun b -> Printf.printf "divergent branch at block %s\n" b.Ssa.bname)
    (Darm_analysis.Divergence.divergent_branches dvg f);

  print_endline "\n=== 3. baseline simulation ===";
  let base_metrics, base_out = simulate f in
  Printf.printf "%s\n" (Metrics.to_string base_metrics ~warp_size:64);

  print_endline "\n=== 4. DARM melding ===";
  let stats = Darm_core.Pass.run ~verify_each:true f in
  Printf.printf "melds applied: %d (aligned instruction pairs: %d, selects: %d)\n"
    stats.Darm_core.Pass.melds_applied
    stats.Darm_core.Pass.meld_stats.Darm_core.Meld.melded_pairs
    stats.Darm_core.Pass.meld_stats.Darm_core.Meld.selects_inserted;
  print_string (Printer.func_to_string f);

  print_endline "\n=== 5. melded simulation ===";
  let meld_metrics, meld_out = simulate f in
  Printf.printf "%s\n" (Metrics.to_string meld_metrics ~warp_size:64);
  assert (base_out = meld_out);
  Printf.printf "\noutputs identical; speedup %.2fx\n"
    (float_of_int base_metrics.Metrics.cycles
    /. float_of_int meld_metrics.Metrics.cycles)
