(* Divergence analysis as a standalone tool: print, for every
   benchmark kernel, which branches are divergent and how much dynamic
   divergence the simulator actually observes — static analysis vs
   dynamic truth, side by side.

     dune exec examples/divergence_report.exe
*)

module A = Darm_analysis
module K = Darm_kernels
module E = Darm_harness.Experiment

let () =
  Printf.printf "%-8s %18s %20s %16s\n" "kernel" "divergent branches"
    "dynamic warp splits" "splits after DARM";
  Printf.printf "%s\n" (String.make 66 '-');
  List.iter
    (fun (kernel : K.Kernel.t) ->
      let block_size = List.hd kernel.K.Kernel.block_sizes in
      let inst =
        kernel.K.Kernel.make ~seed:1 ~block_size
          ~n:(min kernel.K.Kernel.default_n 512)
      in
      let dvg = A.Divergence.compute inst.K.Kernel.func in
      let static_count =
        List.length (A.Divergence.divergent_branches dvg inst.K.Kernel.func)
      in
      let r = E.run kernel ~block_size ~n:(min kernel.K.Kernel.default_n 512) in
      Printf.printf "%-8s %18d %20d %16d\n" kernel.K.Kernel.tag static_count
        r.E.base.Darm_sim.Metrics.divergent_branches
        r.E.opt.Darm_sim.Metrics.divergent_branches)
    K.Registry.all;
  print_newline ();
  print_endline
    "note: LUD's branch is statically divergent at every block size, but\n\
     dynamically uniform when half the block is a multiple of the warp\n\
     width - compare LUD here (divergent at its small default) with the\n\
     block-size sweep in Figure 8."
