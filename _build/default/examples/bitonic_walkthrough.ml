(* The paper's running example, stage by stage: the bitonic sort kernel
   (paper Fig. 1 / Fig. 5), its meldable divergent region, the subgraph
   decomposition, and the CFG before and after melding.

     dune exec examples/bitonic_walkthrough.exe
*)

open Darm_ir
module A = Darm_analysis
module C = Darm_core
module K = Darm_kernels

let () =
  let block_size = 64 in
  let f = K.Bitonic.build ~block_size in

  print_endline "=== bitonic sort: original CFG (paper Fig. 5a) ===";
  print_endline (Printer.cfg_summary f);

  (* --- region detection, as the pass does it --- *)
  let dvg = A.Divergence.compute f in
  let dt = A.Domtree.compute f in
  let pdt = A.Domtree.compute_post f in
  let region =
    List.fold_left
      (fun acc b ->
        match acc with
        | Some _ -> acc
        | None -> C.Region.detect f dvg dt pdt b)
      None
      (A.Cfg.reachable_blocks f)
  in
  (match region with
  | None -> failwith "no meldable divergent region found?!"
  | Some r ->
      Printf.printf
        "\n=== meldable divergent region (Definition 5) ===\n\
         entry %s (the divergent branch on (tid & k) == 0)\n\
         exit  %s (the immediate post-dominator)\n"
        r.C.Region.r_entry.Ssa.bname r.C.Region.r_exit.Ssa.bname;
      let ts = C.Region.true_subgraphs pdt r in
      let fs = C.Region.false_subgraphs pdt r in
      let show side sgs =
        Printf.printf "%s path: %d SESE subgraph(s):\n" side (List.length sgs);
        List.iter
          (fun sg ->
            Printf.printf "  entry %-12s  %d block(s)\n"
              sg.C.Region.sg_entry.Ssa.bname
              (C.Region.subgraph_size sg))
          sgs
      in
      show "true" ts;
      show "false" fs;
      (* the first pair is the profitable one: the two if-then compare
         and swap subgraphs *)
      let st = List.hd ts and sf = List.hd fs in
      (match C.Isomorphism.match_subgraphs st sf with
      | None -> print_endline "subgraphs not isomorphic?!"
      | Some pairs ->
          Printf.printf
            "\n=== subgraph alignment ===\nisomorphic pair, FP_S = %.3f \
             (0.5 = identical instruction mix)\n"
            (C.Profitability.fp_s A.Latency.default pairs);
          List.iter
            (fun (a, b) ->
              Printf.printf "  %s  <->  %s\n" a.Ssa.bname b.Ssa.bname)
            pairs));

  print_endline "\n=== applying DARM (Algorithm 1) ===";
  let stats = C.Pass.run ~verify_each:true f in
  Printf.printf
    "iterations: %d, melds: %d, aligned pairs: %d, gap instrs: %d, \
     selects: %d, unpredicated runs: %d\n"
    stats.C.Pass.iterations stats.C.Pass.melds_applied
    stats.C.Pass.meld_stats.C.Meld.melded_pairs
    stats.C.Pass.meld_stats.C.Meld.gap_instrs
    stats.C.Pass.meld_stats.C.Meld.selects_inserted
    stats.C.Pass.meld_stats.C.Meld.unpredicated_runs;

  print_endline "\n=== melded CFG (paper Fig. 5e) ===";
  print_endline (Printer.cfg_summary f);

  print_endline "\n=== performance (paper Fig. 8, BIT) ===";
  let r =
    Darm_harness.Experiment.run K.Bitonic.kernel ~block_size ~n:256
  in
  Printf.printf "block size %d: %.2fx speedup, output %s\n" block_size
    (Darm_harness.Experiment.speedup r)
    (if r.Darm_harness.Experiment.correct then "correct" else "INCORRECT")
