(* Shared helpers for the test suites. *)

open Darm_ir
module Kernel = Darm_kernels.Kernel
module Simulator = Darm_sim.Simulator
module Memory = Darm_sim.Memory
module Metrics = Darm_sim.Metrics
module Pass = Darm_core.Pass

let small_sim_config =
  { Simulator.default_config with max_cycles_per_warp = 50_000_000 }

let run_instance (inst : Kernel.instance) : Metrics.t =
  Simulator.run ~config:small_sim_config inst.Kernel.func
    ~args:inst.Kernel.args ~global:inst.Kernel.global inst.Kernel.launch

let show_mismatch tagline a b =
  match Kernel.first_mismatch a b with
  | None -> ()
  | Some k ->
      Alcotest.failf "%s: first mismatch at %d: %s vs %s" tagline k
        (if k < Array.length a then Kernel.rv_to_string a.(k) else "<none>")
        (if k < Array.length b then Kernel.rv_to_string b.(k) else "<none>")

(** The central correctness oracle: simulate [kernel] untransformed and
    after [transform]; both must match each other and the host
    reference. Returns (baseline metrics, transformed metrics). *)
let check_equivalence ?(transform = fun f -> ignore (Pass.run ~verify_each:true f))
    (kernel : Kernel.t) ~(block_size : int) ~(n : int) ~(seed : int) :
    Metrics.t * Metrics.t =
  let base = kernel.Kernel.make ~seed ~block_size ~n in
  let melded = kernel.Kernel.make ~seed ~block_size ~n in
  transform melded.Kernel.func;
  Verify.run_exn melded.Kernel.func;
  let m_base = run_instance base in
  let m_meld = run_instance melded in
  let out_base = base.Kernel.read_result () in
  let out_meld = melded.Kernel.read_result () in
  let expected = base.Kernel.reference () in
  show_mismatch
    (Printf.sprintf "%s bs=%d: baseline vs reference" kernel.Kernel.tag
       block_size)
    out_base expected;
  show_mismatch
    (Printf.sprintf "%s bs=%d: transformed vs baseline" kernel.Kernel.tag
       block_size)
    out_meld out_base;
  (m_base, m_meld)

(* A hand-built diamond kernel used by several suites:
   out[i] = in[i] < 0 ? (-in[i]) * 2 : in[i] * 3 *)
let diamond_func () : Ssa.func =
  let module D = Dsl in
  D.build_kernel ~name:"diamond"
    ~params:[ ("inp", Types.Ptr Types.Global); ("out", Types.Ptr Types.Global) ]
    (fun ctx params ->
      let inp, out =
        match params with [ i; o ] -> (i, o) | _ -> assert false
      in
      let tid = D.tid ctx in
      let gid = D.add ctx (D.mul ctx (D.bid ctx) (D.bdim ctx)) tid in
      let v = D.load ctx (D.gep ctx inp gid) in
      let r = D.local ctx ~name:"r" Types.I32 in
      D.if_ ctx
        (D.slt ctx v (D.i32 0))
        (fun () -> D.set ctx r (D.mul ctx (D.sub ctx (D.i32 0) v) (D.i32 2)))
        (fun () -> D.set ctx r (D.mul ctx v (D.i32 3)));
      D.store ctx (D.get ctx r) (D.gep ctx out gid))

(* ------------------------------------------------------------------ *)
(* Seed ranges and transform thunks shared by the fuzz-style suites    *)

module RK = Darm_kernels.Random_kernel
module Tf = Darm_transforms

(** [seeds lo hi] is the inclusive range [lo..hi]. *)
let seeds lo hi =
  let rec go k acc = if k < lo then acc else go (k - 1) (k :: acc) in
  go hi []

let darm f = ignore (Pass.run ~verify_each:true f)

let darm_no_unpred f =
  ignore
    (Pass.run
       ~config:{ Pass.default_config with unpredicate = false }
       ~verify_each:true f)

let fusion f = ignore (Pass.run_branch_fusion ~verify_each:true f)

let tail_merge f =
  ignore (Tf.Tail_merge.run f);
  Verify.run_exn f

let cleanups f =
  ignore (Tf.Simplify_cfg.run f);
  ignore (Tf.Constfold.run f);
  ignore (Tf.Dce.run f);
  Verify.run_exn f

let everything f =
  cleanups f;
  darm f;
  tail_merge f;
  ignore (Tf.Simplify_cfg.if_convert f);
  cleanups f

let rk_small_cfg =
  { RK.default_cfg with array_size = 128; max_depth = 2; stmts_per_block = 3 }

(** Run [transform] over [Random_kernel] instances for every seed;
    collects all failures before reporting so one bad seed doesn't mask
    the others. *)
let run_rk_seeds ?(cfg = rk_small_cfg) ?(block_size = 64) ~name ~transform
    ~seeds:seed_list () =
  let failures = ref [] in
  List.iter
    (fun seed ->
      match RK.check_transform ~cfg ~seed ~block_size ~transform () with
      | Ok () -> ()
      | Error e -> failures := e :: !failures)
    seed_list;
  match !failures with
  | [] -> ()
  | fs ->
      Alcotest.failf "%s: %d failure(s):\n%s" name (List.length fs)
        (String.concat "\n" fs)
