(* Fleet-scale batch driver and its persistence layer: the
   content-addressed result cache must treat every form of on-disk
   damage as a miss (never an error), a warm run must replay the cold
   run's bytes verbatim at any pool size, manifests must report
   1-based line numbers, the budget must cut at a deterministic chunk
   boundary, and the bench-history sentinel must gate batch
   throughput.  Also pins the Fsio atomic-write contract the cache and
   the trace/bench writers share. *)

module B = Darm_fuzz.Batch
module Cache = Darm_harness.Result_cache
module History = Darm_harness.History
module J = Darm_obs.Json
module MR = Darm_obs.Metrics_registry
module Fsio = Darm_obs.Fsio
module Export = Darm_obs.Export
module Trace = Darm_obs.Trace

let contains (hay : string) (needle : string) : bool =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* fresh scratch directory; tests clean up what they care about and
   the OS tempdir absorbs the rest *)
let temp_dir () =
  let path = Filename.temp_file "darm_batch_test" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let write_raw path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let valid_payload =
  J.to_string
    (J.Obj [ ("schema", J.Str Cache.default_schema); ("x", J.Int 1) ])
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* Result cache *)

let test_cache_store_find_identical () =
  let c = Cache.create ~dir:(Filename.concat (temp_dir ()) "cache") () in
  let key = Cache.key c [ "ir"; "pass"; "workload" ] in
  Alcotest.(check (option string)) "missing entry is a miss" None
    (Cache.find c ~key);
  Cache.store c ~key valid_payload;
  Alcotest.(check (option string)) "hit replays the exact bytes"
    (Some valid_payload) (Cache.find c ~key)

let test_cache_key_unambiguous () =
  let c = Cache.create ~dir:(Filename.concat (temp_dir ()) "cache") () in
  (* length-prefixed joining: part boundaries must matter *)
  Alcotest.(check bool) "[ab;c] <> [a;bc]" false
    (Cache.key c [ "ab"; "c" ] = Cache.key c [ "a"; "bc" ]);
  Alcotest.(check string) "deterministic"
    (Cache.key c [ "a"; "b" ])
    (Cache.key c [ "a"; "b" ])

let test_cache_damaged_entries_are_misses () =
  let c = Cache.create ~dir:(Filename.concat (temp_dir ()) "cache") () in
  let key = Cache.key c [ "damaged" ] in
  Cache.store c ~key valid_payload;
  let path = Cache.entry_path c ~key in
  (* corrupt: not JSON at all *)
  write_raw path "not json {{{";
  Alcotest.(check (option string)) "corrupt entry recomputes" None
    (Cache.find c ~key);
  (* truncated: a prefix of a valid payload *)
  write_raw path (String.sub valid_payload 0 (String.length valid_payload / 2));
  Alcotest.(check (option string)) "truncated entry recomputes" None
    (Cache.find c ~key);
  (* wrong schema: valid JSON from some other (or future) writer *)
  write_raw path "{\"schema\":\"darm-batchres-v999\",\"x\":1}\n";
  Alcotest.(check (option string)) "wrong-schema entry recomputes" None
    (Cache.find c ~key);
  (* empty file *)
  write_raw path "";
  Alcotest.(check (option string)) "empty entry recomputes" None
    (Cache.find c ~key);
  (* and a repaired entry is served again *)
  write_raw path valid_payload;
  Alcotest.(check (option string)) "repaired entry hits"
    (Some valid_payload) (Cache.find c ~key)

let test_cache_evicts_poison_entries () =
  let c = Cache.create ~dir:(Filename.concat (temp_dir ()) "cache") () in
  let key = Cache.key c [ "poison" ] in
  Cache.store c ~key valid_payload;
  let path = Cache.entry_path c ~key in
  (* a truncated entry is a miss AND is removed from disk, so the next
     store rewrites it instead of every lookup re-parsing garbage *)
  write_raw path (String.sub valid_payload 0 (String.length valid_payload / 2));
  Alcotest.(check (option string)) "truncated entry misses" None
    (Cache.find c ~key);
  Alcotest.(check bool) "truncated entry evicted" false (Sys.file_exists path);
  Alcotest.(check (option string)) "second lookup still a miss" None
    (Cache.find c ~key);
  (* a valid entry is never evicted *)
  Cache.store c ~key valid_payload;
  Alcotest.(check (option string)) "restored entry hits" (Some valid_payload)
    (Cache.find c ~key);
  Alcotest.(check bool) "valid entry kept" true (Sys.file_exists path)

let test_cache_store_rejects_invalid_payload () =
  let c = Cache.create ~dir:(Filename.concat (temp_dir ()) "cache") () in
  let key = Cache.key c [ "bad" ] in
  (match Cache.store c ~key "not json" with
  | () -> Alcotest.fail "non-JSON payload must be rejected at store time"
  | exception Invalid_argument _ -> ());
  match Cache.store c ~key "{\"schema\":\"other-v1\"}\n" with
  | () -> Alcotest.fail "wrong-schema payload must be rejected at store time"
  | exception Invalid_argument _ -> ()

let test_cache_clear () =
  let c = Cache.create ~dir:(Filename.concat (temp_dir ()) "cache") () in
  Cache.store c ~key:(Cache.key c [ "a" ]) valid_payload;
  Cache.store c ~key:(Cache.key c [ "b" ]) valid_payload;
  Alcotest.(check int) "two entries removed" 2 (Cache.clear c);
  Alcotest.(check (option string)) "cleared entry is a miss" None
    (Cache.find c ~key:(Cache.key c [ "a" ]));
  Alcotest.(check int) "second clear is a no-op" 0 (Cache.clear c)

(* ------------------------------------------------------------------ *)
(* Manifests *)

let test_manifest_round_trip () =
  let dir = temp_dir () in
  let path = Filename.concat dir "m.jsonl" in
  B.write_fuzz_manifest ~path ~count:5 ~seed_start:10 ();
  match B.read_manifest path with
  | Error e -> Alcotest.failf "read_manifest: %s" e
  | Ok specs ->
      Alcotest.(check int) "count" 5 (List.length specs);
      Alcotest.(check (list string)) "names in file order"
        [ "fuzz_10"; "fuzz_11"; "fuzz_12"; "fuzz_13"; "fuzz_14" ]
        (List.map B.spec_name specs)

let test_manifest_blank_lines_skipped () =
  let dir = temp_dir () in
  let path = Filename.concat dir "m.jsonl" in
  write_raw path
    "\n{\"kind\":\"fuzz\",\"seed\":1}\n   \n\n{\"kind\":\"registry\",\"kernel\":\"BIT\"}\n\n";
  match B.read_manifest path with
  | Error e -> Alcotest.failf "read_manifest: %s" e
  | Ok specs ->
      Alcotest.(check (list string)) "blank lines skipped"
        [ "fuzz_1"; "BIT" ]
        (List.map B.spec_name specs)

let test_manifest_error_line_numbers () =
  let dir = temp_dir () in
  let path = Filename.concat dir "m.jsonl" in
  (* the bad line is line 3 (1-based), after a spec and a blank *)
  write_raw path "{\"kind\":\"fuzz\",\"seed\":1}\n\n{oops\n";
  (match B.read_manifest path with
  | Ok _ -> Alcotest.fail "malformed manifest must not parse"
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error %S carries path:3:" e)
        true
        (contains e (path ^ ":3:")));
  write_raw path "{\"kind\":\"teapot\"}\n";
  (match B.read_manifest path with
  | Ok _ -> Alcotest.fail "unknown kind must not parse"
  | Error e ->
      Alcotest.(check bool) "unknown kind names the line" true
        (contains e ":1:" && contains e "teapot"));
  match B.read_manifest (Filename.concat dir "absent.jsonl") with
  | Ok _ -> Alcotest.fail "missing manifest must not parse"
  | Error e ->
      Alcotest.(check bool) "missing file reported" true
        (contains e "no such file")

let test_spec_validation () =
  let parse line =
    match J.parse line with
    | Ok j -> B.spec_of_json j
    | Error e -> Alcotest.failf "test line is not JSON: %s" e
  in
  (match parse "{\"kind\":\"fuzz\",\"seed\":1,\"profile\":\"huge\"}" with
  | Ok _ -> Alcotest.fail "unknown profile must be rejected"
  | Error e ->
      Alcotest.(check bool) "profile error" true (contains e "profile"));
  (match parse "{\"kind\":\"fuzz\",\"seed\":1,\"block_size\":4096}" with
  | Ok _ -> Alcotest.fail "block_size beyond array_size must be rejected"
  | Error e ->
      Alcotest.(check bool) "block-size error" true
        (contains e "block_size"));
  (match parse "{\"kind\":\"fuzz\",\"seed\":1,\"features\":\"warp-drives\"}" with
  | Ok _ -> Alcotest.fail "bad feature spec must be rejected"
  | Error _ -> ());
  match parse "{\"kind\":\"fuzz\",\"seed\":7}" with
  | Error e -> Alcotest.failf "defaults must apply: %s" e
  | Ok s -> Alcotest.(check string) "defaulted spec" "fuzz_7" (B.spec_name s)

(* ------------------------------------------------------------------ *)
(* The driver *)

let smoke_specs ~count =
  List.init count (fun i ->
      B.Fuzz
        { fz_seed = i; fz_block_size = 64; fz_smoke = true;
          fz_features = "all"; fz_inject = None })

let test_batch_two_pass_warm_hits () =
  let dir = temp_dir () in
  let cache = Cache.create ~dir:(Filename.concat dir "cache") () in
  let cold_out = Filename.concat dir "cold.jsonl" in
  let warm_out = Filename.concat dir "warm.jsonl" in
  let specs = smoke_specs ~count:5 in
  let cold = B.run ~jobs:1 ~cache ~out:cold_out specs in
  Alcotest.(check int) "cold run processes all" 5 cold.B.bt_run;
  Alcotest.(check int) "cold run has no hits" 0 cold.B.bt_hits;
  Alcotest.(check int) "cold run computes all" 5 cold.B.bt_misses;
  Alcotest.(check int) "no incorrect" 0 cold.B.bt_incorrect;
  Alcotest.(check int) "no errors" 0 cold.B.bt_errors;
  let warm = B.run ~jobs:4 ~cache ~out:warm_out specs in
  Alcotest.(check int) "warm run hits everything" 5 warm.B.bt_hits;
  Alcotest.(check (float 0.)) "hit rate 1.0" 1.0 (B.hit_rate warm);
  (* the byte-identity contract: warm bytes = cold bytes, across
     different pool sizes *)
  Alcotest.(check string) "warm replay is byte-identical"
    (Fsio.read_file cold_out) (Fsio.read_file warm_out);
  Alcotest.(check int) "one line per spec" 5
    (List.length
       (String.split_on_char '\n' (String.trim (Fsio.read_file cold_out))));
  Alcotest.(check bool) "payload schema stamped" true
    (contains (Fsio.read_file cold_out) "\"schema\":\"darm-batchres-v1\"")

let test_batch_damaged_cache_recomputes () =
  let dir = temp_dir () in
  let cache = Cache.create ~dir:(Filename.concat dir "cache") () in
  let out = Filename.concat dir "r.jsonl" in
  let specs = smoke_specs ~count:2 in
  let cold = B.run ~jobs:1 ~cache ~out specs in
  Alcotest.(check int) "cold misses" 2 cold.B.bt_misses;
  let bytes0 = Fsio.read_file out in
  (* smash every cache entry; the run must quietly recompute *)
  Alcotest.(check int) "cache held both" 2 (Cache.clear cache);
  let again = B.run ~jobs:1 ~cache ~out specs in
  Alcotest.(check int) "cleared cache recomputes" 2 again.B.bt_misses;
  Alcotest.(check int) "no errors from the damage" 0 again.B.bt_errors;
  (* drop the one wall-clock field so the recomputed runs compare *)
  let scrub s =
    String.split_on_char '\n' s
    |> List.map (fun line ->
           match J.parse line with
           | Ok (J.Obj fields) ->
               J.to_string
                 (J.Obj (List.filter (fun (k, _) -> k <> "pass_ms") fields))
           | _ -> line)
    |> String.concat "\n"
  in
  Alcotest.(check string) "recomputed bytes identical modulo pass_ms"
    (scrub bytes0)
    (scrub (Fsio.read_file out))

let test_batch_budget_cuts_deterministically () =
  let dir = temp_dir () in
  let out = Filename.concat dir "r.jsonl" in
  let sum = B.run ~jobs:1 ~budget_s:0. ~out (smoke_specs ~count:3) in
  Alcotest.(check int) "nothing starts past the deadline" 0 sum.B.bt_run;
  Alcotest.(check bool) "budget flagged" true sum.B.bt_budget_exhausted;
  Alcotest.(check string) "valid (empty) JSONL prefix" ""
    (Fsio.read_file out)

let test_batch_error_specs_not_cached () =
  let dir = temp_dir () in
  let cache = Cache.create ~dir:(Filename.concat dir "cache") () in
  let out = Filename.concat dir "r.jsonl" in
  let specs =
    [ B.Registry
        { rs_tag = "NO_SUCH_KERNEL"; rs_block_size = None; rs_n = None;
          rs_seed = 1 } ]
  in
  let first = B.run ~jobs:1 ~cache ~out specs in
  Alcotest.(check int) "error counted" 1 first.B.bt_errors;
  Alcotest.(check bool) "status error emitted" true
    (contains (Fsio.read_file out) "\"status\":\"error\"");
  let second = B.run ~jobs:1 ~cache ~out specs in
  Alcotest.(check int) "errors never come from the cache" 0
    second.B.bt_hits

let test_batch_metrics_export () =
  let dir = temp_dir () in
  let out = Filename.concat dir "r.jsonl" in
  let sum = B.run ~jobs:1 ~out (smoke_specs ~count:2) in
  let reg = MR.create () in
  B.fill_metrics reg sum;
  Alcotest.(check (option (float 0.))) "kernel counter" (Some 2.)
    (MR.find reg "darm_batch_kernels_total");
  Alcotest.(check (option (float 0.))) "hit-rate gauge" (Some 0.)
    (MR.find reg "darm_batch_cache_hit_rate");
  let doc = MR.to_prometheus (MR.snapshot reg) in
  Alcotest.(check bool) "throughput exposed" true
    (contains doc "darm_batch_kernels_per_sec");
  Alcotest.(check bool) "summary line format" true
    (contains (B.summary_to_string sum) "hit-rate 0.0%")

(* ------------------------------------------------------------------ *)
(* Bench-history integration *)

let batch_stats ?(kernels = 100) ?(hits = 50) ?(incorrect = 0)
    ?(wall_s = 1.0) () =
  {
    History.b_kernels = kernels;
    b_hits = hits;
    b_misses = kernels - hits;
    b_incorrect = incorrect;
    b_wall_s = wall_s;
    b_pass_ms_p99 = None;
  }

let test_history_batch_round_trip () =
  let r = History.of_batch ~jobs:2 ~time:1722800000. (batch_stats ()) in
  match History.record_of_json (History.record_to_json r) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok r' ->
      Alcotest.(check bool) "batch stats survive" true
        (r'.History.r_batch = r.History.r_batch);
      Alcotest.(check bool) "entry-less" true (r'.History.r_entries = []);
      let b = Option.get r'.History.r_batch in
      Alcotest.(check (float 1e-9)) "hit rate recomputed" 0.5
        (History.batch_hit_rate b);
      Alcotest.(check (float 1e-9)) "kernels/sec recomputed" 100.
        (History.batch_kernels_per_sec b)

let test_sentinel_batch_only_records_ok () =
  let base = History.of_batch ~time:0. (batch_stats ()) in
  let cand = History.of_batch ~time:1. (batch_stats ~hits:100 ()) in
  let d = History.diff ~baseline:base cand in
  Alcotest.(check bool) "two batch-only records compare clean" true
    (History.diff_ok d);
  Alcotest.(check bool) "hit-rate improvement noted" true
    (List.exists (fun n -> contains n "hit-rate") d.History.d_notes)

let test_sentinel_batch_throughput_collapse_fires () =
  let base = History.of_batch ~time:0. (batch_stats ~wall_s:1.0 ()) in
  (* 100 -> 0.5 kernels/sec: far below the default 0.1 ratio *)
  let cand = History.of_batch ~time:1. (batch_stats ~wall_s:200.0 ()) in
  let d = History.diff ~baseline:base cand in
  Alcotest.(check bool) "collapse is a regression" false (History.diff_ok d);
  Alcotest.(check bool) "finding names kernels/sec" true
    (List.exists
       (fun r -> contains r "kernels/sec")
       d.History.d_regressions);
  (* a mild slowdown stays inside the generous default ratio *)
  let mild = History.of_batch ~time:1. (batch_stats ~wall_s:3.0 ()) in
  Alcotest.(check bool) "3x wall-clock noise tolerated" true
    (History.diff_ok (History.diff ~baseline:base mild))

let test_sentinel_batch_incorrect_fires () =
  let base = History.of_batch ~time:0. (batch_stats ()) in
  let cand = History.of_batch ~time:1. (batch_stats ~incorrect:1 ()) in
  Alcotest.(check bool) "new incorrect kernel is a regression" false
    (History.diff_ok (History.diff ~baseline:base cand))

(* ------------------------------------------------------------------ *)
(* History-file robustness (the I/O layer the batch records land in) *)

let test_history_load_skips_blank_lines () =
  let path = Filename.temp_file "darm_hist_blank" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let r = History.of_batch ~time:0. (batch_stats ()) in
      let line = J.to_string (History.record_to_json r) in
      write_raw path ("\n" ^ line ^ "\n\n   \n" ^ line ^ "\n\n");
      match History.load ~path () with
      | Error e -> Alcotest.failf "blank lines must be skipped: %s" e
      | Ok rs -> Alcotest.(check int) "two records" 2 (List.length rs))

let test_history_load_reports_line_numbers () =
  let path = Filename.temp_file "darm_hist_bad" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let r = History.of_batch ~time:0. (batch_stats ()) in
      let line = J.to_string (History.record_to_json r) in
      (* the malformed line is line 3: record, blank, garbage *)
      write_raw path (line ^ "\n\n{nope\n");
      match History.load ~path () with
      | Ok _ -> Alcotest.fail "garbage line must fail the load"
      | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "error %S carries :3:" e)
            true (contains e ":3:"))

(* ------------------------------------------------------------------ *)
(* Atomic writes *)

let test_fsio_atomic_failure_keeps_old_file () =
  let dir = temp_dir () in
  let path = Filename.concat dir "out.bin" in
  write_raw path "precious";
  (match
     Fsio.write_atomic
       ~validate:(fun _ -> failwith "reject")
       ~path "replacement"
   with
  | () -> Alcotest.fail "validation failure must propagate"
  | exception Failure _ -> ());
  Alcotest.(check string) "pre-existing bytes untouched" "precious"
    (Fsio.read_file path);
  Alcotest.(check (list string)) "no temp litter" [ "out.bin" ]
    (Array.to_list (Sys.readdir dir));
  Fsio.write_atomic ~path "replacement";
  Alcotest.(check string) "clean write replaces" "replacement"
    (Fsio.read_file path)

let test_export_empty_trace_keeps_old_file () =
  let dir = temp_dir () in
  let path = Filename.concat dir "trace.json" in
  write_raw path "old trace";
  (match
     Export.write_file ~format:Export.Chrome ~path (Trace.create ())
   with
  | () -> Alcotest.fail "an empty trace must fail validation"
  | exception Failure _ -> ());
  Alcotest.(check string) "failed export leaves the old file" "old trace"
    (Fsio.read_file path)

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "result-cache",
      [
        Alcotest.test_case "store + find: byte-identical" `Quick
          test_cache_store_find_identical;
        Alcotest.test_case "key: part boundaries matter" `Quick
          test_cache_key_unambiguous;
        Alcotest.test_case "damaged entries are misses" `Quick
          test_cache_damaged_entries_are_misses;
        Alcotest.test_case "poison entries are evicted" `Quick
          test_cache_evicts_poison_entries;
        Alcotest.test_case "store rejects invalid payloads" `Quick
          test_cache_store_rejects_invalid_payload;
        Alcotest.test_case "clear" `Quick test_cache_clear;
      ] );
    ( "batch",
      [
        Alcotest.test_case "manifest: write + read round-trip" `Quick
          test_manifest_round_trip;
        Alcotest.test_case "manifest: blank lines skipped" `Quick
          test_manifest_blank_lines_skipped;
        Alcotest.test_case "manifest: 1-based error lines" `Quick
          test_manifest_error_line_numbers;
        Alcotest.test_case "manifest: spec validation" `Quick
          test_spec_validation;
        Alcotest.test_case "two-pass: warm run hits and replays bytes" `Slow
          test_batch_two_pass_warm_hits;
        Alcotest.test_case "damaged cache recomputes" `Slow
          test_batch_damaged_cache_recomputes;
        Alcotest.test_case "budget cuts before the first chunk" `Quick
          test_batch_budget_cuts_deterministically;
        Alcotest.test_case "error specs are never cached" `Quick
          test_batch_error_specs_not_cached;
        Alcotest.test_case "metrics export + summary line" `Slow
          test_batch_metrics_export;
      ] );
    ( "batch-history",
      [
        Alcotest.test_case "batch record round-trips" `Quick
          test_history_batch_round_trip;
        Alcotest.test_case "sentinel: batch-only records pass" `Quick
          test_sentinel_batch_only_records_ok;
        Alcotest.test_case "sentinel: throughput collapse fires" `Quick
          test_sentinel_batch_throughput_collapse_fires;
        Alcotest.test_case "sentinel: new incorrect kernels fire" `Quick
          test_sentinel_batch_incorrect_fires;
        Alcotest.test_case "history: blank lines skipped" `Quick
          test_history_load_skips_blank_lines;
        Alcotest.test_case "history: 1-based error lines" `Quick
          test_history_load_reports_line_numbers;
      ] );
    ( "fsio",
      [
        Alcotest.test_case "failed atomic write keeps the old file" `Quick
          test_fsio_atomic_failure_keeps_old_file;
        Alcotest.test_case "empty-trace export keeps the old file" `Quick
          test_export_empty_trace_keeps_old_file;
      ] );
  ]
