(* The feature-flagged kernel generator (lib/fuzz/gen.ml): determinism,
   edge-case configurations, the oracle's array-size precondition, and
   feature-flag coverage markers in the printed IR. *)

module G = Darm_fuzz.Gen
module O = Darm_fuzz.Oracle

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let gen_text ?(cfg = G.smoke_cfg) seed =
  Darm_ir.Printer.func_to_string (G.generate ~cfg ~seed ())

(* run the full oracle matrix on a generated subject; [] means clean *)
let matrix ?cfg seed =
  O.run_subject (O.subject_of_seed ?cfg ~block_size:64 ~seed ())

let check_clean ~what ?cfg seed =
  match matrix ?cfg seed with
  | [] -> ()
  | fs ->
      Alcotest.failf "%s seed %d: %d failure(s):\n%s" what seed
        (List.length fs)
        (String.concat "\n" (List.map O.failure_to_string fs))

let suites =
  [
    ( "gen",
      [
        Alcotest.test_case "same seed and cfg give byte-identical IR" `Quick
          (fun () ->
            List.iter
              (fun seed ->
                Alcotest.(check string)
                  (Printf.sprintf "smoke seed %d" seed)
                  (gen_text seed) (gen_text seed);
                Alcotest.(check string)
                  (Printf.sprintf "default seed %d" seed)
                  (gen_text ~cfg:G.default_cfg seed)
                  (gen_text ~cfg:G.default_cfg seed))
              [ 0; 1; 7 ]);
        Alcotest.test_case "different seeds differ" `Quick
          (fun () ->
            if gen_text 0 = gen_text 1 then
              Alcotest.fail "seeds 0 and 1 generated identical kernels");
        Alcotest.test_case "max_depth = 0 still generates and conforms"
          `Quick
          (fun () ->
            let cfg = { G.smoke_cfg with G.max_depth = 0 } in
            List.iter
              (fun seed ->
                Darm_ir.Verify.run_exn (G.generate ~cfg ~seed ());
                check_clean ~what:"depth-0" ~cfg seed)
              [ 0; 1; 2 ]);
        Alcotest.test_case "stmts_per_block = 1 still generates and conforms"
          `Quick
          (fun () ->
            let cfg = { G.smoke_cfg with G.stmts_per_block = 1 } in
            List.iter
              (fun seed ->
                Darm_ir.Verify.run_exn (G.generate ~cfg ~seed ());
                check_clean ~what:"stmts-1" ~cfg seed)
              [ 0; 1; 2 ]);
        Alcotest.test_case "array_size < block_size is rejected by the oracle"
          `Quick
          (fun () ->
            let cfg = { G.smoke_cfg with G.array_size = 32 } in
            match O.subject_of_seed ~cfg ~block_size:64 ~seed:0 () with
            | exception Invalid_argument _ -> ()
            | _ ->
                Alcotest.fail
                  "subject_of_seed accepted array_size 32 < block_size 64");
        Alcotest.test_case "feature flags leave their markers" `Quick
          (fun () ->
            let with_features fs =
              { G.smoke_cfg with G.features = fs }
            in
            (* no features: straight-line diamonds only *)
            let bare = gen_text ~cfg:(with_features G.no_features) 1 in
            List.iter
              (fun needle ->
                if contains ~needle bare then
                  Alcotest.failf "feature-free kernel contains %S" needle)
              [ "syncthreads"; "alloc.shared"; "while." ];
            (* each flag mints its marker in at least one smoke seed *)
            let some_seed_has ~needle fs =
              List.exists
                (fun seed -> contains ~needle (gen_text ~cfg:(with_features fs) seed))
                [ 0; 1; 2; 3 ]
            in
            let check name spec needle =
              let fs = Result.get_ok (G.features_of_string spec) in
              if not (some_seed_has ~needle fs) then
                Alcotest.failf "%s: no smoke seed produced %S" name needle
            in
            check "loops" "loops-uniform,loops-divergent" "while.";
            check "barriers" "barriers,shared-tile" "syncthreads";
            check "shared-tile" "shared-tile" "alloc.shared");
        Alcotest.test_case "features_of_string round-trips and rejects junk"
          `Quick
          (fun () ->
            (match G.features_of_string "all" with
            | Ok fs ->
                Alcotest.(check string)
                  "all round-trip"
                  (G.features_to_string G.all_features)
                  (G.features_to_string fs)
            | Error e -> Alcotest.failf "all: %s" e);
            (match G.features_of_string "barriers,shared-tile" with
            | Ok fs ->
                if not fs.G.barriers || not fs.G.shared_tile then
                  Alcotest.fail "subset spec dropped a flag";
                if fs.G.loops_uniform then
                  Alcotest.fail "subset spec turned on an unlisted flag"
            | Error e -> Alcotest.failf "subset: %s" e);
            match G.features_of_string "barriers,bogus" with
            | Ok _ -> Alcotest.fail "bogus feature accepted"
            | Error _ -> ());
      ] );
  ]
