(* Dominators, post-dominators, loops, divergence analysis. *)

open Darm_ir
module A = Darm_analysis
module D = Dsl

let check = Alcotest.(check bool)

(* Hand-built diamond CFG: entry -> (t | f) -> join -> ret *)
let diamond_cfg () =
  let f = Ssa.mk_func "d" [] in
  let e = Ssa.mk_block "entry"
  and t = Ssa.mk_block "t"
  and fl = Ssa.mk_block "f"
  and j = Ssa.mk_block "join" in
  List.iter (Ssa.append_block f) [ e; t; fl; j ];
  let tidi = Ssa.mk_instr Op.Thread_idx [||] [||] Types.I32 in
  Ssa.append_instr e tidi;
  let c =
    Ssa.mk_instr (Op.Icmp Op.Islt) [| Ssa.Instr tidi; Ssa.Int 3 |] [||]
      Types.I1
  in
  Ssa.append_instr e c;
  Ssa.append_instr e
    (Ssa.mk_instr Op.Condbr [| Ssa.Instr c |] [| t; fl |] Types.Void);
  Ssa.append_instr t (Ssa.mk_instr Op.Br [||] [| j |] Types.Void);
  Ssa.append_instr fl (Ssa.mk_instr Op.Br [||] [| j |] Types.Void);
  Ssa.append_instr j (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
  (f, e, t, fl, j)

let test_domtree_diamond () =
  let f, e, t, fl, j = diamond_cfg () in
  let dt = A.Domtree.compute f in
  check "entry dom t" true (A.Domtree.dominates dt e t);
  check "entry dom join" true (A.Domtree.dominates dt e j);
  check "t not dom join" false (A.Domtree.dominates dt t j);
  check "reflexive" true (A.Domtree.dominates dt t t);
  check "strict" false (A.Domtree.strictly_dominates dt t t);
  check "idom of join is entry" true
    (match A.Domtree.idom dt j with Some b -> b.Ssa.bid = e.Ssa.bid | None -> false);
  check "idom of t is entry" true
    (match A.Domtree.idom dt t with Some b -> b.Ssa.bid = e.Ssa.bid | None -> false);
  ignore fl

let test_postdom_diamond () =
  let f, e, t, fl, j = diamond_cfg () in
  let pdt = A.Domtree.compute_post f in
  check "join pdom entry" true (A.Domtree.dominates pdt j e);
  check "join pdom t" true (A.Domtree.dominates pdt j t);
  check "t not pdom f" false (A.Domtree.dominates pdt t fl);
  check "ipdom of entry is join" true
    (match A.Domtree.idom pdt e with
    | Some b -> b.Ssa.bid = j.Ssa.bid
    | None -> false)

let test_domtree_loop () =
  (* entry -> head <-> body; head -> exit *)
  let f =
    D.build_kernel ~name:"lp" ~params:[ ("n", Types.I32) ]
      (fun ctx params ->
        let n = List.hd params in
        D.for_up ctx ~from:(D.i32 0) ~until:n (fun _ -> ()))
  in
  let dt = A.Domtree.compute f in
  let head = List.find (fun b -> b.Ssa.bname = "while.head") f.Ssa.blocks_list in
  let body = List.find (fun b -> b.Ssa.bname = "while.body") f.Ssa.blocks_list in
  let exit_ = List.find (fun b -> b.Ssa.bname = "while.end") f.Ssa.blocks_list in
  check "head dom body" true (A.Domtree.dominates dt head body);
  check "head dom exit" true (A.Domtree.dominates dt head exit_);
  check "body not dom exit" false (A.Domtree.dominates dt body exit_);
  let li = A.Loops.compute f in
  check "one loop" true (List.length li.A.Loops.loops = 1);
  let l = List.hd li.A.Loops.loops in
  check "header" true (l.A.Loops.header.Ssa.bid = head.Ssa.bid);
  check "body in loop" true (A.Loops.in_loop l body);
  check "exit not in loop" false (A.Loops.in_loop l exit_);
  check "depth" true (A.Loops.loop_depth li body = 1);
  check "exit depth" true (A.Loops.loop_depth li exit_ = 0)

let test_nested_loops () =
  let f =
    D.build_kernel ~name:"lp2" ~params:[ ("n", Types.I32) ]
      (fun ctx params ->
        let n = List.hd params in
        D.for_up ctx ~name:"i" ~from:(D.i32 0) ~until:n (fun _ ->
            D.for_up ctx ~name:"j" ~from:(D.i32 0) ~until:n (fun _ -> ())))
  in
  let li = A.Loops.compute f in
  check "two loops" true (List.length li.A.Loops.loops = 2);
  check "max depth 2" true
    (List.exists (fun l -> l.A.Loops.depth = 2) li.A.Loops.loops)

let test_divergence_tid () =
  let f, e, _, _, j = diamond_cfg () in
  let dvg = A.Divergence.compute f in
  check "branch divergent" true (A.Divergence.is_divergent_branch dvg e);
  ignore j

let test_divergence_uniform_branch () =
  (* branch on a parameter: uniform *)
  let f =
    D.build_kernel ~name:"u" ~params:[ ("n", Types.I32) ]
      (fun ctx params ->
        let n = List.hd params in
        D.if_ ctx (D.slt ctx n (D.i32 5)) (fun () -> ()) (fun () -> ()))
  in
  let dvg = A.Divergence.compute f in
  check "no divergent branches" true
    (A.Divergence.divergent_branches dvg f = [])

let test_divergence_sync_dependence () =
  (* r is assigned under a divergent branch: the join phi is divergent *)
  let f = Testlib.diamond_func () in
  let dvg = A.Divergence.compute f in
  let join = List.find (fun b -> b.Ssa.bname = "if.end") f.Ssa.blocks_list in
  List.iter
    (fun phi ->
      check "join phi divergent" true (A.Divergence.is_divergent_instr dvg phi))
    (Ssa.phis join)

let test_divergence_loop_dependent () =
  (* loop bound depends on tid: the exit branch is divergent *)
  let f =
    D.build_kernel ~name:"ld" ~params:[]
      (fun ctx _ ->
        let t = D.tid ctx in
        let acc = D.local ctx ~name:"acc" Types.I32 in
        D.set ctx acc (D.i32 0);
        D.for_up ctx ~from:(D.i32 0) ~until:t (fun _ ->
            D.set ctx acc (D.add ctx (D.get ctx acc) (D.i32 1)));
        ignore (D.get ctx acc))
  in
  let dvg = A.Divergence.compute f in
  check "loop branch divergent" true
    (A.Divergence.divergent_branches dvg f <> [])

let test_uniform_load_uniform_addr () =
  (* load at a uniform address is uniform; at tid it is divergent *)
  let f =
    D.build_kernel ~name:"lu" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let u = D.load ctx (D.gep ctx a (D.i32 0)) in
        let d = D.load ctx (D.gep ctx a (D.tid ctx)) in
        ignore u;
        ignore d)
  in
  let dvg = A.Divergence.compute f in
  let loads =
    Ssa.fold_instrs f
      (fun acc i -> if i.Ssa.op = Op.Load then i :: acc else acc)
      []
  in
  match List.rev loads with
  | [ u; d ] ->
      check "uniform load" false (A.Divergence.is_divergent_instr dvg u);
      check "divergent load" true (A.Divergence.is_divergent_instr dvg d)
  | _ -> Alcotest.fail "expected two loads"

let test_latency_model () =
  let c = A.Latency.default in
  let mk op operands ty = Ssa.mk_instr op operands [||] ty in
  let shared_ptr = Ssa.Undef (Types.Ptr Types.Shared) in
  let global_ptr = Ssa.Undef (Types.Ptr Types.Global) in
  let flat_ptr = Ssa.Undef (Types.Ptr Types.Flat) in
  let l_sh = A.Latency.of_instr c (mk Op.Load [| shared_ptr |] Types.I32) in
  let l_gl = A.Latency.of_instr c (mk Op.Load [| global_ptr |] Types.I32) in
  let l_fl = A.Latency.of_instr c (mk Op.Load [| flat_ptr |] Types.I32) in
  let l_add =
    A.Latency.of_instr c (mk (Op.Ibin Op.Add) [| Ssa.Int 1; Ssa.Int 2 |] Types.I32)
  in
  check "alu < shared" true (l_add < l_sh);
  check "shared < global" true (l_sh < l_gl);
  check "global <= flat" true (l_gl <= l_fl);
  check "store space keyed by ptr" true
    (A.Latency.of_instr c (mk Op.Store [| Ssa.Int 0; shared_ptr |] Types.Void)
    = l_sh);
  check "class distinguishes spaces" true
    (A.Latency.class_of (mk Op.Load [| shared_ptr |] Types.I32)
    <> A.Latency.class_of (mk Op.Load [| global_ptr |] Types.I32))

let test_sync_joins_no_postdom () =
  (* divergent branch straight to two separate rets: the branch block
     has no real immediate post-dominator, so sync_joins must fall back
     to every multi-pred block reachable from it (here the inner
     diamond's join) rather than returning nothing *)
  let f = Ssa.mk_func "sj" [] in
  let e = Ssa.mk_block "entry"
  and t = Ssa.mk_block "t"
  and ta = Ssa.mk_block "ta"
  and tb = Ssa.mk_block "tb"
  and tj = Ssa.mk_block "tj"
  and fl = Ssa.mk_block "f" in
  List.iter (Ssa.append_block f) [ e; t; ta; tb; tj; fl ];
  let tidi = Ssa.mk_instr Op.Thread_idx [||] [||] Types.I32 in
  Ssa.append_instr e tidi;
  let c =
    Ssa.mk_instr (Op.Icmp Op.Islt) [| Ssa.Instr tidi; Ssa.Int 3 |] [||]
      Types.I1
  in
  Ssa.append_instr e c;
  Ssa.append_instr e
    (Ssa.mk_instr Op.Condbr [| Ssa.Instr c |] [| t; fl |] Types.Void);
  Ssa.append_instr t
    (Ssa.mk_instr Op.Condbr [| Ssa.Bool true |] [| ta; tb |] Types.Void);
  Ssa.append_instr ta (Ssa.mk_instr Op.Br [||] [| tj |] Types.Void);
  Ssa.append_instr tb (Ssa.mk_instr Op.Br [||] [| tj |] Types.Void);
  Ssa.append_instr tj (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
  Ssa.append_instr fl (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
  Verify.run_exn f;
  let pdt = A.Domtree.compute_post f in
  check "entry has no real ipdom" true (A.Domtree.idom pdt e = None);
  (match A.Divergence.sync_joins f pdt e with
  | [ b ] -> check "fallback join is tj" true (b.Ssa.bid = tj.Ssa.bid)
  | joins ->
      Alcotest.failf "expected exactly one fallback join, got %d"
        (List.length joins));
  (* and the fallback feeds the divergence fixpoint: tj has no phis
     here, but the branch itself must still be divergent *)
  let dvg = A.Divergence.compute f in
  check "branch divergent" true (A.Divergence.is_divergent_branch dvg e)

let test_divergence_temporal () =
  (* x is 0 before and 1 inside a loop whose trip count depends on tid.
     Both incomings of the header phi are uniform constants, yet the
     value is divergent: threads exit the loop at different iterations
     (temporal divergence), so after the loop x differs per thread. *)
  let f =
    D.build_kernel ~name:"tmp" ~params:[ ("a", Types.Ptr Types.Global) ]
      (fun ctx params ->
        let a = List.hd params in
        let t = D.tid ctx in
        let x = D.local ctx ~name:"x" Types.I32 in
        D.set ctx x (D.i32 0);
        let i = D.local ctx ~name:"i" Types.I32 in
        D.set ctx i (D.i32 0);
        D.while_ ctx
          (fun () -> D.slt ctx (D.get ctx i) t)
          (fun () ->
            D.set ctx x (D.i32 1);
            D.set ctx i (D.add ctx (D.get ctx i) (D.i32 1)));
        D.store ctx (D.get ctx x) (D.gep ctx a t))
  in
  let dvg = A.Divergence.compute f in
  let head =
    List.find (fun b -> b.Ssa.bname = "while.head") f.Ssa.blocks_list
  in
  let is_const = function Ssa.Int _ -> true | _ -> false in
  let xphi =
    List.find
      (fun p -> Array.for_all is_const p.Ssa.operands)
      (Ssa.phis head)
  in
  check "constant-incoming phi is divergent" true
    (A.Divergence.is_divergent_instr dvg xphi)

let test_cfg_reachable_without () =
  let f, e, t, fl, j = diamond_cfg () in
  ignore f;
  let side = A.Cfg.reachable_without t ~stop:[ j ] in
  check "true side is just t" true
    (List.length side = 1 && (List.hd side).Ssa.bid = t.Ssa.bid);
  let all = A.Cfg.reachable_without e ~stop:[] in
  check "all reachable" true (List.length all = 4);
  ignore fl

let test_remove_unreachable () =
  let f, _, _, _, _ = diamond_cfg () in
  let dead = Ssa.mk_block "dead" in
  Ssa.append_block f dead;
  Ssa.append_instr dead (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
  check "removed" true (A.Cfg.remove_unreachable f);
  check "gone" true
    (not (List.exists (fun b -> b.Ssa.bname = "dead") f.Ssa.blocks_list));
  check "idempotent" false (A.Cfg.remove_unreachable f)

let suites =
  [
    ( "analysis",
      [
        Alcotest.test_case "domtree diamond" `Quick test_domtree_diamond;
        Alcotest.test_case "postdom diamond" `Quick test_postdom_diamond;
        Alcotest.test_case "domtree + loops" `Quick test_domtree_loop;
        Alcotest.test_case "nested loops" `Quick test_nested_loops;
        Alcotest.test_case "divergence: tid" `Quick test_divergence_tid;
        Alcotest.test_case "divergence: uniform branch" `Quick
          test_divergence_uniform_branch;
        Alcotest.test_case "divergence: sync dependence" `Quick
          test_divergence_sync_dependence;
        Alcotest.test_case "divergence: loop dependent" `Quick
          test_divergence_loop_dependent;
        Alcotest.test_case "divergence: loads" `Quick
          test_uniform_load_uniform_addr;
        Alcotest.test_case "sync_joins: no-postdom fallback" `Quick
          test_sync_joins_no_postdom;
        Alcotest.test_case "divergence: temporal (loop exit)" `Quick
          test_divergence_temporal;
        Alcotest.test_case "latency model" `Quick test_latency_model;
        Alcotest.test_case "cfg reachable_without" `Quick
          test_cfg_reachable_without;
        Alcotest.test_case "cfg remove_unreachable" `Quick
          test_remove_unreachable;
      ] );
  ]
