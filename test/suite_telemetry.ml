(* Fleet telemetry, metric side: histogram percentile estimation and
   the darm-metrics-v1 parser, atomic snapshot files under a concurrent
   reader, the per-worker stall watchdog on a simulated clock, the
   result cache's own counters, and the p99 tail-latency gate of the
   bench-history sentinel. *)

module MR = Darm_obs.Metrics_registry
module Snapshot = Darm_obs.Snapshot
module Health = Darm_obs.Health
module Cache = Darm_harness.Result_cache
module History = Darm_harness.History
module J = Darm_obs.Json

let contains (hay : string) (needle : string) : bool =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let temp_dir () =
  let path = Filename.temp_file "darm_telemetry_test" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let valid_payload =
  J.to_string
    (J.Obj [ ("schema", J.Str Cache.default_schema); ("x", J.Int 1) ])
  ^ "\n"

let write_raw path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* histogram series for [name] out of a one-shot registry *)
let hist ?buckets name samples =
  let reg = MR.create () in
  List.iter (fun v -> MR.observe reg ?buckets name v) samples;
  match MR.find_series (MR.snapshot reg) name with
  | Some s -> s
  | None -> Alcotest.failf "series %s not registered" name

let check_pct msg expected series q =
  match MR.percentile series q with
  | None -> Alcotest.failf "%s: no estimate" msg
  | Some v -> Alcotest.(check (float 1e-9)) msg expected v

(* ------------------------------------------------------------------ *)
(* Percentiles *)

let test_percentile_empty_histogram () =
  (* zero samples: no rank to locate, whatever the bucket layout *)
  let empty =
    {
      MR.s_labels = [];
      s_value = 0.;
      s_count = 0;
      s_buckets = [ (1., 0); (infinity, 0) ];
    }
  in
  Alcotest.(check (option (float 0.))) "empty -> None" None
    (MR.percentile empty 0.5)

let test_percentile_non_histogram () =
  let reg = MR.create () in
  MR.inc reg "c_total";
  let s = Option.get (MR.find_series (MR.snapshot reg) "c_total") in
  Alcotest.(check (option (float 0.))) "counter -> None" None
    (MR.percentile s 0.5)

let test_percentile_single_sample () =
  let s = hist ~buckets:[ 10. ] "h" [ 5. ] in
  (* one sample in (0, 10]: the estimate interpolates the bucket *)
  check_pct "p50 of one sample" 5. s 0.5;
  check_pct "p100 of one sample" 10. s 1.0

let test_percentile_exact_boundary () =
  (* samples sitting exactly on bucket bounds, quantile ranks sitting
     exactly on cumulative counts: the estimate is exact *)
  let s = hist ~buckets:[ 1.; 2.; 3. ] "h" [ 1.; 2.; 3. ] in
  check_pct "rank 1 -> first bound" 1. s (1. /. 3.);
  check_pct "rank 2 -> second bound" 2. s (2. /. 3.);
  check_pct "rank 3 -> third bound" 3. s 1.0

let test_percentile_inf_bucket_caps () =
  (* the quantile lands in +Inf: report the highest finite bound
     rather than inventing a value *)
  let s = hist ~buckets:[ 10. ] "h" [ 50. ] in
  check_pct "+Inf caps at highest finite bound" 10. s 0.99

let test_percentile_no_finite_bounds_mean () =
  (* degenerate layout (only +Inf): the mean is the best estimate *)
  let s = hist ~buckets:[] "h" [ 4.; 6. ] in
  check_pct "mean fallback" 5. s 0.99

let test_percentile_clamps_q () =
  let s = hist ~buckets:[ 10. ] "h" [ 5. ] in
  (match MR.percentile s (-1.) with
  | Some v -> Alcotest.(check bool) "q<0 clamps" true (v >= 0.)
  | None -> Alcotest.fail "q<0 must clamp, not fail");
  match MR.percentile s 2. with
  | Some v -> Alcotest.(check (float 1e-9)) "q>1 clamps to max bound" 10. v
  | None -> Alcotest.fail "q>1 must clamp, not fail"

(* ------------------------------------------------------------------ *)
(* darm-metrics-v1 parser *)

let test_metrics_json_round_trip () =
  let reg = MR.create () in
  MR.inc reg ~by:3. "c_total";
  MR.help reg "c_total" "a counter";
  MR.set reg ~labels:[ ("worker", "0") ] "g" 1.5;
  MR.set reg ~labels:[ ("worker", "1") ] "g" 2.5;
  MR.observe reg ~buckets:[ 1.; 10. ] "h_ms" 0.5;
  MR.observe reg ~buckets:[ 1.; 10. ] "h_ms" 42.;
  let fams = MR.snapshot reg in
  match MR.of_json (MR.to_json fams) with
  | Error msg -> Alcotest.failf "round trip failed: %s" msg
  | Ok back ->
      Alcotest.(check bool) "structural round trip" true (back = fams);
      Alcotest.(check string) "prometheus round trip"
        (MR.to_prometheus fams) (MR.to_prometheus back)

let test_metrics_json_rejects_wrong_schema () =
  let doc = J.Obj [ ("schema", J.Str "darm-metrics-v999") ] in
  match MR.of_json doc with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema must be rejected"

(* ------------------------------------------------------------------ *)
(* Snapshot files *)

let test_snapshot_round_trip () =
  let base = Filename.concat (temp_dir ()) "snap" in
  let reg = MR.create () in
  MR.inc reg ~by:7. "darm_batch_kernels_total";
  MR.observe reg ~buckets:[ 1.; 10. ] "darm_batch_pass_ms" 3.;
  let fams = MR.snapshot reg in
  Snapshot.write ~base fams;
  (match Snapshot.read_json ~path:(Snapshot.json_path base) with
  | Error msg -> Alcotest.failf "json unreadable: %s" msg
  | Ok back -> Alcotest.(check bool) "json round trip" true (back = fams));
  let prom =
    In_channel.with_open_bin (Snapshot.prom_path base) In_channel.input_all
  in
  Alcotest.(check bool) "prom rendering present" true
    (contains prom "darm_batch_pass_ms_bucket")

let test_snapshot_read_missing_is_error () =
  match Snapshot.read_json ~path:"/nonexistent/snap.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing snapshot must be an Error"

let test_snapshot_atomic_under_concurrent_reader () =
  (* a reader polling mid-rewrite must never observe a torn file: every
     successful open parses and schema-checks *)
  let base = Filename.concat (temp_dir ()) "snap" in
  let path = Snapshot.json_path base in
  let fams_at i =
    let reg = MR.create () in
    MR.set reg "darm_batch_done" (float_of_int i);
    (* bulk so each rewrite is a non-trivial file *)
    for w = 0 to 15 do
      MR.set reg ~labels:[ ("worker", string_of_int w) ] "darm_worker_state" 1.
    done;
    MR.snapshot reg
  in
  Snapshot.write ~base (fams_at 0);
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  let reader =
    Domain.spawn (fun () ->
        let n = ref 0 in
        while not (Atomic.get stop) do
          (match Snapshot.read_json ~path with
          | Ok _ -> ()
          | Error _ -> Atomic.incr torn);
          incr n
        done;
        !n)
  in
  for i = 1 to 200 do
    Snapshot.write ~base (fams_at i)
  done;
  Atomic.set stop true;
  let reads = Domain.join reader in
  Alcotest.(check int) "no torn reads" 0 (Atomic.get torn);
  Alcotest.(check bool) "reader actually raced the writer" true (reads > 0)

(* ------------------------------------------------------------------ *)
(* Stall watchdog (simulated clock — Health never reads one itself) *)

let test_watchdog_flags_and_recovers () =
  let h = Health.create ~workers:2 ~deadline_s:10. in
  Health.set_busy h ~worker:0 ~now:0.;
  (* worker 1 stays idle throughout: never flagged *)
  Alcotest.(check (list int)) "inside deadline" [] (Health.check h ~now:5.);
  Alcotest.(check (list int)) "past deadline: newly stalled" [ 0 ]
    (Health.check h ~now:11.);
  Alcotest.(check bool) "state is Stalled" true
    (Health.state h ~worker:0 = Health.Stalled);
  Alcotest.(check (float 1e-9)) "health degrades" 0.5 (Health.health h);
  Alcotest.(check (list int)) "not re-reported" [] (Health.check h ~now:12.);
  Health.beat h ~worker:0 ~now:13.;
  Alcotest.(check bool) "beat recovers to Busy" true
    (Health.state h ~worker:0 = Health.Busy);
  Alcotest.(check (float 1e-9)) "health recovers" 1. (Health.health h);
  Alcotest.(check (list int)) "deadline re-armed by the beat" []
    (Health.check h ~now:20.);
  Alcotest.(check int) "incidents accumulate" 1 (Health.stalled_total h);
  Alcotest.(check int) "beats counted" 1 (Health.beats h ~worker:0)

let test_watchdog_idle_never_stalls () =
  let h = Health.create ~workers:3 ~deadline_s:0.1 in
  Alcotest.(check (list int)) "all idle, far future" []
    (Health.check h ~now:1e9);
  Health.set_busy h ~worker:1 ~now:0.;
  Health.set_idle h ~worker:1;
  Alcotest.(check (list int)) "returned to idle before deadline" []
    (Health.check h ~now:1e9);
  Alcotest.(check (float 1e-9)) "healthy" 1. (Health.health h)

let test_watchdog_rejects_degenerate_config () =
  (match Health.create ~workers:0 ~deadline_s:1. with
  | _ -> Alcotest.fail "workers=0 must be rejected"
  | exception Invalid_argument _ -> ());
  match Health.create ~workers:1 ~deadline_s:0. with
  | _ -> Alcotest.fail "deadline=0 must be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Result-cache counters *)

let test_cache_stats_count_lookups () =
  let c = Cache.create ~dir:(Filename.concat (temp_dir ()) "cache") () in
  let key = Cache.key c [ "stats" ] in
  ignore (Cache.find c ~key);
  Cache.store c ~key valid_payload;
  ignore (Cache.find c ~key);
  ignore (Cache.find c ~key);
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 2 s.Cache.st_hits;
  Alcotest.(check int) "misses" 1 s.Cache.st_misses;
  Alcotest.(check int) "no evictions yet" 0 s.Cache.st_evictions;
  (* a truncated entry is a miss AND a poison eviction *)
  write_raw (Cache.entry_path c ~key)
    (String.sub valid_payload 0 (String.length valid_payload / 2));
  ignore (Cache.find c ~key);
  let s = Cache.stats c in
  Alcotest.(check int) "poison lookup is a miss" 2 s.Cache.st_misses;
  Alcotest.(check int) "poison eviction counted" 1 s.Cache.st_poison_evictions;
  Cache.store c ~key valid_payload;
  let removed = Cache.clear c in
  let s = Cache.stats c in
  Alcotest.(check int) "clear counts evictions" removed s.Cache.st_evictions

let test_cache_fill_metrics_names () =
  let c = Cache.create ~dir:(Filename.concat (temp_dir ()) "cache") () in
  let key = Cache.key c [ "metrics" ] in
  ignore (Cache.find c ~key);
  Cache.store c ~key valid_payload;
  ignore (Cache.find c ~key);
  let reg = MR.create () in
  Cache.fill_metrics reg c;
  let text = MR.to_prometheus (MR.snapshot reg) in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " exported") true (contains text name))
    [
      "darm_cache_hits_total"; "darm_cache_misses_total";
      "darm_cache_evictions_total"; "darm_cache_poison_evictions_total";
    ];
  Alcotest.(check (option (float 0.))) "hit count value" (Some 1.)
    (MR.find reg "darm_cache_hits_total")

(* ------------------------------------------------------------------ *)
(* History p99 gate *)

let batch_stats ?pass_ms_p99 () =
  {
    History.b_kernels = 100;
    b_hits = 50;
    b_misses = 50;
    b_incorrect = 0;
    b_wall_s = 10.;
    b_pass_ms_p99 = pass_ms_p99;
  }

let record ?pass_ms_p99 () =
  History.of_batch ~jobs:4 ~time:0. (batch_stats ?pass_ms_p99 ())

let round_trip r =
  match History.record_of_json (History.record_to_json r) with
  | Ok r' -> r'
  | Error msg -> Alcotest.failf "record round trip: %s" msg

let test_history_p99_round_trips () =
  let some = round_trip (record ~pass_ms_p99:12.5 ()) in
  (match some.History.r_batch with
  | Some b ->
      Alcotest.(check (option (float 1e-9))) "Some survives" (Some 12.5)
        b.History.b_pass_ms_p99
  | None -> Alcotest.fail "batch stats lost");
  let none = round_trip (record ()) in
  (match none.History.r_batch with
  | Some b ->
      Alcotest.(check (option (float 1e-9))) "None survives" None
        b.History.b_pass_ms_p99
  | None -> Alcotest.fail "batch stats lost");
  (* the optional field must not leak into the serialized form *)
  Alcotest.(check bool) "absent field not serialized" false
    (contains (J.to_string (History.record_to_json (record ()))) "pass_ms_p99")

let test_history_p99_gate_fires () =
  (* default envelope: 10x + 100ms slack over a 10ms baseline = 200ms *)
  let d =
    History.diff ~baseline:(record ~pass_ms_p99:10. ())
      (record ~pass_ms_p99:2000. ())
  in
  Alcotest.(check bool) "tail blowup is a regression" false
    (History.diff_ok d);
  Alcotest.(check bool) "finding names the p99" true
    (List.exists (fun r -> contains r "p99") d.History.d_regressions)

let test_history_p99_gate_needs_both () =
  let ok baseline candidate =
    History.diff_ok (History.diff ~baseline candidate)
  in
  Alcotest.(check bool) "within envelope passes" true
    (ok (record ~pass_ms_p99:10. ()) (record ~pass_ms_p99:150. ()));
  Alcotest.(check bool) "candidate None skips the gate" true
    (ok (record ~pass_ms_p99:10. ()) (record ()));
  Alcotest.(check bool) "baseline None skips the gate" true
    (ok (record ()) (record ~pass_ms_p99:5000. ()))

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "telemetry-percentiles",
      [
        Alcotest.test_case "empty histogram -> None" `Quick
          test_percentile_empty_histogram;
        Alcotest.test_case "counter series -> None" `Quick
          test_percentile_non_histogram;
        Alcotest.test_case "single sample interpolates" `Quick
          test_percentile_single_sample;
        Alcotest.test_case "exact bucket boundaries" `Quick
          test_percentile_exact_boundary;
        Alcotest.test_case "+Inf bucket caps at finite bound" `Quick
          test_percentile_inf_bucket_caps;
        Alcotest.test_case "no finite bounds -> mean" `Quick
          test_percentile_no_finite_bounds_mean;
        Alcotest.test_case "quantile clamped to 0..1" `Quick
          test_percentile_clamps_q;
        Alcotest.test_case "darm-metrics-v1 round trip" `Quick
          test_metrics_json_round_trip;
        Alcotest.test_case "parser rejects wrong schema" `Quick
          test_metrics_json_rejects_wrong_schema;
      ] );
    ( "telemetry-snapshot",
      [
        Alcotest.test_case "write/read round trip" `Quick
          test_snapshot_round_trip;
        Alcotest.test_case "missing file is an Error" `Quick
          test_snapshot_read_missing_is_error;
        Alcotest.test_case "atomic under a concurrent reader" `Slow
          test_snapshot_atomic_under_concurrent_reader;
      ] );
    ( "telemetry-watchdog",
      [
        Alcotest.test_case "flags on deadline, recovers on beat" `Quick
          test_watchdog_flags_and_recovers;
        Alcotest.test_case "idle workers never stall" `Quick
          test_watchdog_idle_never_stalls;
        Alcotest.test_case "degenerate config rejected" `Quick
          test_watchdog_rejects_degenerate_config;
      ] );
    ( "telemetry-cache-stats",
      [
        Alcotest.test_case "hits/misses/evictions counted" `Quick
          test_cache_stats_count_lookups;
        Alcotest.test_case "fill_metrics exports the families" `Quick
          test_cache_fill_metrics_names;
      ] );
    ( "telemetry-history",
      [
        Alcotest.test_case "pass_ms_p99 round-trips (Some and None)" `Quick
          test_history_p99_round_trips;
        Alcotest.test_case "sentinel: p99 blowup fires" `Quick
          test_history_p99_gate_fires;
        Alcotest.test_case "sentinel: gate needs both records" `Quick
          test_history_p99_gate_needs_both;
      ] );
  ]
