(* Regression-corpus replay: every shrunk repro in test/corpus/ is
   parsed and run through the oracle matrix, and its verdict must match
   the expect= header — a fixed bug or a changed failure mode flips the
   replay red.  Plus header codec round-trips. *)

module C = Darm_fuzz.Corpus
module O = Darm_fuzz.Oracle

(* cwd is _build/default/test under [dune runtest] (the glob_files dep
   copies the corpus next to the binary) but the project root under
   [dune exec test/test_darm.exe] *)
let corpus_dir =
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let entries =
  lazy (if Sys.file_exists corpus_dir then C.load_dir corpus_dir else [])

let replay_case (path, parsed) =
  Alcotest.test_case (Filename.basename path) `Quick (fun () ->
      match parsed with
      | Error e -> Alcotest.failf "%s: %s" path e
      | Ok entry -> (
          match C.replay entry with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: %s" path e))

let codec_cases =
  [
    Alcotest.test_case "header round-trips through to_string/of_string"
      `Quick
      (fun () ->
        let entry =
          {
            C.en_name = "roundtrip"; en_seed = 7; en_block_size = 32;
            en_n = 64; en_input_seed = 9;
            en_expect = C.Fail { stage = "darm"; kind = "checker:shared-race-ww" };
            en_note = Some "codec test";
            en_text = "kernel @k(%a: ptr(global), %b: ptr(global)) {\n}";
          }
        in
        match C.of_string (C.to_string entry) with
        | Error e -> Alcotest.failf "reparse: %s" e
        | Ok e2 ->
            Alcotest.(check string) "name" entry.C.en_name e2.C.en_name;
            Alcotest.(check int) "seed" entry.C.en_seed e2.C.en_seed;
            Alcotest.(check int) "block" entry.C.en_block_size e2.C.en_block_size;
            Alcotest.(check int) "n" entry.C.en_n e2.C.en_n;
            Alcotest.(check int) "input" entry.C.en_input_seed e2.C.en_input_seed;
            Alcotest.(check string) "expect"
              (C.expectation_to_string entry.C.en_expect)
              (C.expectation_to_string e2.C.en_expect);
            Alcotest.(check (option string)) "note" entry.C.en_note e2.C.en_note);
    Alcotest.test_case "expectation_of_string" `Quick (fun () ->
        (match C.expectation_of_string "pass" with
        | Ok C.Pass -> ()
        | _ -> Alcotest.fail "pass not parsed");
        (match C.expectation_of_string "fail/base/checker:barrier-divergence" with
        | Ok (C.Fail { stage = "base"; kind = "checker:barrier-divergence" }) ->
            ()
        | _ -> Alcotest.fail "fail spec not parsed");
        (match C.expectation_of_string "fail/onlystage" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "fail spec without kind accepted");
        match C.expectation_of_string "maybe" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "junk expectation accepted");
    Alcotest.test_case "corpus is non-empty and well-formed" `Quick
      (fun () ->
        let es = Lazy.force entries in
        if List.length es < 4 then
          Alcotest.failf "only %d corpus entries found in %s/"
            (List.length es) corpus_dir;
        List.iter
          (fun (path, parsed) ->
            match parsed with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "%s: %s" path e)
          es);
    Alcotest.test_case "flipping a fail entry's expectation turns replay red"
      `Quick
      (fun () ->
        let fail_entry =
          List.find_map
            (fun (_, parsed) ->
              match parsed with
              | Ok ({ C.en_expect = C.Fail _; _ } as e) -> Some e
              | _ -> None)
            (Lazy.force entries)
        in
        match fail_entry with
        | None -> Alcotest.fail "no expect=fail entry in the corpus"
        | Some entry -> (
            match C.replay { entry with C.en_expect = C.Pass } with
            | Error _ -> ()
            | Ok () ->
                Alcotest.failf "%s replayed Ok with expect flipped to pass"
                  entry.C.en_name));
  ]

let suites =
  [ ("corpus", List.map replay_case (Lazy.force entries) @ codec_cases) ]
