; darm-corpus-v1 name=gen-shared-tile seed=1 input_seed=1 block_size=64 n=128 expect=pass
; note: generator feature class: shared tile with affine tid addressing
kernel @fuzz_1(%a: ptr(global), %b: ptr(global)) {
entry:
  %0 = alloc.shared 128
  %1 = thread.idx
  %2 = gep %b, 0
  %3 = block.dim
  %4 = sdiv 0, %3
  %5 = smax %4, 0
  br while.head
while.head:
  %6 = icmp slt 0, %5
  condbr %6, while.body, while.end
while.body:
  %7 = and %1, 0
  %8 = gep %0, %7
  store 0, %8
  br while.head
while.end:
  %9 = gep %a, 0
  %10 = load i32, %9
  %11 = xor 0, %1
  %12 = icmp slt 0, %11
  condbr %12, if.end.1, if.else
if.else:
  br if.end.1
if.end.1:
  %13 = phi i32 [%1, if.else], [%10, while.end]
  %14 = add %13, %1
  %15 = xor %14, 0
  store %15, %2
  ret
}
