; darm-corpus-v1 name=fuzz_3-XRW seed=3 input_seed=3 block_size=64 n=128 expect=fail/base/checker:shared-race-rw
; note: shrunk by darm_opt fuzz --minimize in 14 steps
kernel @fuzz_3(%a: ptr(global), %b: ptr(global)) {
entry:
  %0 = alloc.shared 128
  %1 = gep %0, 0
  store 0, %1
  %2 = gep %0, 0
  %3 = load i32, %2
  %4 = gep %b, 0
  store %3, %4
  ret
}
