; darm-corpus-v1 name=gen-loops seed=1 input_seed=1 block_size=64 n=128 expect=pass
; note: generator feature class: loops (uniform + divergent trip)
kernel @fuzz_1(%a: ptr(global), %b: ptr(global)) {
entry:
  %0 = thread.idx
  %1 = gep %b, 0
  %2 = xor %0, 0
  %3 = and %2, 3
  br while.head
while.head:
  %4 = phi i32 [%6, while.body], [0, entry]
  %5 = icmp slt %4, %3
  condbr %5, while.body, while.end
while.body:
  %6 = add %4, 1
  br while.head
while.end:
  store 0, %1
  ret
}
