; darm-corpus-v1 name=fuzz_3-XBAR seed=3 input_seed=3 block_size=64 n=128 expect=fail/base/checker:barrier-divergence
; note: shrunk by darm_opt fuzz --minimize in 11 steps
kernel @fuzz_3(%a: ptr(global), %b: ptr(global)) {
entry:
  %0 = thread.idx
  %1 = icmp slt %0, 0
  condbr %1, xbar_sync, xbar_join
xbar_sync:
  syncthreads
  br xbar_join
xbar_join:
  ret
}
