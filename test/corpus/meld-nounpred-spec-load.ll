; darm-corpus-v1 name=meld-nounpred-spec-load seed=5 input_seed=5 block_size=64 n=128 expect=pass
; note: regression: DARM with unpredicate=false left an unsafe-to-speculate load inline behind a pure gap run (speculative execution crashed wrong-side lanes); fixed by scanning past pure runs in unpredicate_block
kernel @fuzz_5(%a: ptr(global), %b: ptr(global)) {
entry:
  %0 = alloc.shared 128
  %1 = thread.idx
  %2 = gep %b, 0
  %3 = block.dim
  %4 = sdiv 0, %3
  %5 = smax %4, 1
  br while.head
while.head:
  %6 = phi i32 [%10, while.body], [0, entry]
  %7 = icmp slt %6, %5
  condbr %7, while.body, while.end
while.body:
  %8 = and %1, 127
  %9 = gep %0, %8
  store 0, %9
  %10 = add %6, 1
  br while.head
while.end:
  %11 = add %1, %1
  %12 = xor 0, %11
  %13 = smax %12, 0
  %14 = add 40, %13
  %15 = and %14, 127
  %16 = gep %0, %15
  %17 = load i32, %16
  %18 = and %1, 0
  %19 = icmp eq %18, 2
  condbr %19, if.then.31, if.else.30
if.then.31:
  %20 = and %14, 0
  %21 = gep %a, %20
  %22 = load i32, %21
  %23 = xor 0, %22
  %24 = xor %23, 0
  store 0, %2
  br if.end.31
if.else.30:
  %25 = smax %17, %1
  %26 = and %25, 0
  store %26, %2
  br if.end.31
if.end.31:
  %27 = phi i32 [%17, if.else.30], [%24, if.then.31]
  %28 = xor 0, %27
  %29 = add %28, %14
  store %29, %2
  ret
}

