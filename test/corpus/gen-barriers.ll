; darm-corpus-v1 name=gen-barriers seed=1 input_seed=1 block_size=64 n=128 expect=pass
; note: generator feature class: block-uniform guarded barriers fencing shared-tile writes
kernel @fuzz_1(%a: ptr(global), %b: ptr(global)) {
entry:
  %0 = alloc.shared 128
  %1 = thread.idx
  %2 = block.dim
  %3 = block.idx
  %4 = mul %3, %2
  %5 = add %4, %1
  %6 = gep %b, 0
  %7 = and %1, 0
  syncthreads
  %8 = gep %0, %7
  store 0, %8
  syncthreads
  %9 = smin %5, 34
  %10 = icmp sgt 29, %9
  condbr %10, if.then.4, if.end.4
if.then.4:
  br if.end.4
if.end.4:
  %11 = phi i32 [0, if.then.4], [%1, entry]
  %12 = xor %11, 0
  store %12, %6
  ret
}
