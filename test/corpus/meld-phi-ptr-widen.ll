; darm-corpus-v1 name=meld-phi-ptr-widen seed=111 input_seed=111 block_size=64 n=128 expect=pass
; note: regression: operand substitution widened a melded pointer to flat (select over mixed-space operands), but an unpredication phi from an earlier meld kept its concrete-space type and narrowed the widened value, crashing the verifier; fixed by the widen-only pointer type repair fixpoint (meld pass 7)
kernel @fuzz_111(%a: ptr(global), %b: ptr(global)) {
entry:
  %0 = alloc.shared 128
  %1 = thread.idx
  %2 = block.dim
  %3 = block.idx
  %4 = mul %3, %2
  %5 = add %4, %1
  %6 = and %5, 127
  %7 = gep %b, %6
  %8 = block.dim
  %9 = sdiv 128, %8
  %10 = smax %9, 1
  br while.head
while.head:
  %11 = phi i32 [%21, while.body], [0, entry]
  %12 = icmp slt %11, %10
  condbr %12, while.body, while.end
while.body:
  %13 = mul %11, %8
  %14 = add %1, %13
  %15 = and %14, 127
  %16 = gep %0, %15
  %17 = gep %a, %15
  %18 = load i32, %17
  %19 = mul %15, 3
  %20 = add %19, %18
  store %20, %16
  %21 = add %11, 1
  br while.head
while.end:
  syncthreads
  %22 = and %5, 127
  %23 = gep %a, %22
  %24 = load i32, %23
  %25 = and %24, 127
  %26 = gep %a, %25
  %27 = load i32, %26
  %28 = add 75, %1
  %29 = add 16, %5
  %30 = icmp sle %28, %29
  %31 = select %30, %27, %5
  %32 = and %31, 3
  %33 = icmp eq %32, 0
  condbr %33, if.then, if.else
if.then:
  %34 = load i32, %7
  %35 = smax 30, %5
  %36 = icmp sgt %35, %24
  %37 = select %36, %5, %34
  %38 = icmp sgt %37, 13
  %39 = select %38, %5, %24
  %40 = and %1, 127
  %41 = gep %0, %40
  %42 = load i32, %41
  %43 = and %42, %1
  %44 = and %24, 127
  %45 = gep %0, %44
  %46 = load i32, %45
  %47 = smax %46, 55
  %48 = smin %1, 75
  %49 = icmp sgt %47, %48
  %50 = select %49, %43, %39
  %51 = and %50, 127
  %52 = gep %a, %51
  %53 = load i32, %52
  %54 = smax %53, %5
  %55 = load i32, %7
  %56 = xor 20, %1
  %57 = icmp slt %55, %56
  %58 = select %57, 39, 30
  %59 = and %54, 3
  %60 = icmp eq %59, 3
  condbr %60, if.then.1, if.else.1
if.else:
  %61 = icmp eq %32, 1
  condbr %61, if.then.17, if.else.16
if.end:
  %62 = phi i32 [%389, if.end.17], [%259, if.end.9]
  %63 = phi i32 [%390, if.end.17], [%260, if.end.9]
  %64 = phi i32 [%391, if.end.17], [%261, if.end.9]
  %65 = phi i32 [%392, if.end.17], [%262, if.end.9]
  %66 = smin 61, %62
  %67 = and %66, 3
  %68 = icmp eq %67, 0
  condbr %68, if.then.37, if.else.33
if.then.1:
  %69 = and 75, 127
  %70 = gep %a, %69
  %71 = load i32, %70
  %72 = xor %71, %50
  %73 = and %72, 3
  %74 = icmp eq %73, 0
  condbr %74, if.then.2, if.else.2
if.else.1:
  %75 = xor %1, 2
  %76 = and %75, 3
  %77 = add %76, 1
  br while.head.1
if.end.1:
  %78 = phi i32 [%225, if.end.6], [%178, if.end.5]
  %79 = phi i32 [%226, if.end.6], [%179, if.end.5]
  %80 = phi i32 [%227, if.end.6], [%180, if.end.5]
  %81 = phi i32 [%228, if.end.6], [%93, if.end.5]
  %82 = add 43, 7
  %83 = and %82, 3
  %84 = icmp eq %83, 0
  condbr %84, if.then.9, if.else.9
if.then.2:
  %85 = and %5, 75
  %86 = mul %85, 7
  %87 = and 50, %86
  %88 = add 8, %5
  %89 = sub %88, %87
  %90 = sub %89, 47
  %91 = smax 30, %90
  store %91, %7
  br if.end.2
if.else.2:
  %92 = icmp eq %73, 1
  condbr %92, if.then.3, if.else.3
if.end.2:
  %93 = phi i32 [%153, if.end.3], [%86, if.then.2]
  %94 = phi i32 [%1, if.end.3], [%89, if.then.2]
  %95 = sub %1, %93
  %96 = mul %95, 5
  store %96, %7
  %97 = mul %1, 1
  %98 = and %5, 127
  %99 = gep %a, %98
  %100 = load i32, %99
  %101 = smin %93, %1
  %102 = and %50, 127
  %103 = gep %a, %102
  %104 = load i32, %103
  %105 = icmp slt %101, %104
  %106 = select %105, %5, 1
  %107 = xor %50, %1
  %108 = and %106, 3
  %109 = icmp eq %108, 3
  %110 = select %109, %1, %100
  %111 = load i32, %7
  %112 = xor 36, %5
  %113 = smin %5, 39
  %114 = and %112, 3
  %115 = icmp eq %114, 2
  %116 = select %115, %111, 14
  %117 = icmp sgt %110, %116
  %118 = select %117, %1, %5
  %119 = icmp sle %97, %118
  condbr %119, if.then.5, if.else.5
if.then.3:
  %120 = and %1, 127
  %121 = gep %a, %120
  %122 = load i32, %121
  %123 = and 75, 127
  %124 = gep %0, %123
  %125 = load i32, %124
  %126 = smax %125, %122
  %127 = and %5, 2
  %128 = and %126, 3
  %129 = icmp eq %128, 3
  %130 = select %129, %1, %5
  %131 = smax %1, %5
  %132 = icmp sgt %130, %131
  %133 = select %132, %50, %5
  %134 = load i32, %7
  %135 = load i32, %7
  %136 = smin %135, %134
  %137 = add %136, %133
  store %137, %7
  %138 = and %1, 127
  %139 = gep %0, %138
  %140 = load i32, %139
  %141 = xor %140, %1
  %142 = add 29, 23
  %143 = load i32, %7
  %144 = smin 57, %143
  %145 = smax %5, 53
  %146 = icmp sgt %144, %145
  %147 = select %146, 33, %1
  %148 = smax 40, %5
  %149 = and %147, 3
  %150 = icmp eq %149, 0
  %151 = select %150, %142, %141
  br if.end.3
if.else.3:
  %152 = icmp eq %73, 2
  condbr %152, if.then.4, if.else.4
if.end.3:
  %153 = phi i32 [75, if.end.4], [%151, if.then.3]
  br if.end.2
if.then.4:
  %154 = and %5, 49
  %155 = load i32, %7
  %156 = smin 31, %155
  %157 = smin %156, %154
  store %157, %7
  br if.end.4
if.else.4:
  store %5, %7
  br if.end.4
if.end.4:
  br if.end.3
if.then.5:
  %158 = smin %94, %5
  %159 = xor %5, %94
  %160 = smin %159, %158
  %161 = xor %5, %5
  %162 = and %1, %1
  %163 = smax %162, %161
  br if.end.5
if.else.5:
  %164 = and %50, 127
  %165 = gep %a, %164
  %166 = load i32, %165
  %167 = xor %166, %50
  %168 = sub %50, %5
  %169 = smax %168, %167
  %170 = and %94, 127
  %171 = gep %0, %170
  %172 = load i32, %171
  %173 = smax %172, %50
  %174 = xor %173, %1
  %175 = smax 37, %1
  %176 = smin %169, %50
  %177 = and %176, %175
  store %177, %7
  br if.end.5
if.end.5:
  %178 = phi i32 [%50, if.else.5], [%5, if.then.5]
  %179 = phi i32 [%169, if.else.5], [%163, if.then.5]
  %180 = phi i32 [%174, if.else.5], [%94, if.then.5]
  br if.end.1
while.head.1:
  %181 = phi i32 [%202, while.body.1], [0, if.else.1]
  %182 = phi i32 [%189, while.body.1], [%5, if.else.1]
  %183 = phi i32 [%195, while.body.1], [75, if.else.1]
  %184 = icmp slt %181, %77
  condbr %184, while.body.1, while.end.1
while.body.1:
  %185 = xor %50, %181
  %186 = load i32, %7
  %187 = add %5, %186
  %188 = smax 18, %5
  %189 = xor %188, %187
  %190 = and %1, 127
  %191 = gep %0, %190
  %192 = load i32, %191
  %193 = xor %1, %192
  %194 = sub 40, %1
  %195 = sub %194, %193
  %196 = xor %1, %5
  %197 = and %1, 127
  %198 = gep %a, %197
  %199 = load i32, %198
  %200 = and %199, %195
  %201 = xor %200, %196
  store %201, %7
  %202 = add %181, 1
  br while.head.1
while.end.1:
  %203 = load i32, %7
  %204 = and %203, %5
  %205 = and %204, 3
  %206 = icmp eq %205, 0
  condbr %206, if.then.6, if.else.6
if.then.6:
  %207 = smax 35, %182
  %208 = sub %50, %5
  %209 = and %183, 127
  %210 = gep %a, %209
  %211 = load i32, %210
  %212 = smax %211, %5
  %213 = xor %5, %1
  %214 = icmp sle %212, %213
  %215 = select %214, %208, %207
  %216 = smax 15, %1
  %217 = and %1, %216
  %218 = and %217, 127
  %219 = gep %0, %218
  %220 = load i32, %219
  %221 = add %220, %50
  %222 = and %182, %5
  %223 = xor %222, %221
  br if.end.6
if.else.6:
  %224 = icmp eq %205, 1
  condbr %224, if.then.7, if.else.7
if.end.6:
  %225 = phi i32 [%232, if.end.7], [%50, if.then.6]
  %226 = phi i32 [%233, if.end.7], [%182, if.then.6]
  %227 = phi i32 [%1, if.end.7], [%223, if.then.6]
  %228 = phi i32 [%183, if.end.7], [%215, if.then.6]
  br if.end.1
if.then.7:
  %229 = sub %1, %1
  %230 = mul %229, 1
  store %230, %7
  br if.end.7
if.else.7:
  %231 = icmp eq %205, 2
  condbr %231, if.then.8, if.else.8
if.end.7:
  %232 = phi i32 [%248, if.end.8], [%50, if.then.7]
  %233 = phi i32 [%249, if.end.8], [%182, if.then.7]
  br if.end.6
if.then.8:
  %234 = add 16, 0
  %235 = sub %234, 41
  %236 = and %1, 127
  %237 = gep %a, %236
  %238 = load i32, %237
  %239 = mul %238, 7
  %240 = and %1, 127
  %241 = gep %0, %240
  %242 = load i32, %241
  %243 = and %242, %1
  %244 = sub %243, %239
  store %244, %7
  %245 = load i32, %7
  %246 = xor %245, %5
  %247 = smin %246, 49
  store %247, %7
  br if.end.8
if.else.8:
  br if.end.8
if.end.8:
  %248 = phi i32 [60, if.else.8], [%50, if.then.8]
  %249 = phi i32 [%182, if.else.8], [%235, if.then.8]
  br if.end.7
if.then.9:
  %250 = and %79, 127
  %251 = gep %0, %250
  %252 = load i32, %251
  %253 = smax 9, %252
  %254 = icmp sgt %253, %5
  %255 = select %254, %78, %5
  %256 = add %80, 56
  %257 = icmp sle %255, %256
  condbr %257, if.then.10, if.end.10
if.else.9:
  %258 = icmp eq %83, 1
  condbr %258, if.then.11, if.else.10
if.end.9:
  %259 = phi i32 [%284, if.end.11], [%78, if.end.10]
  %260 = phi i32 [%285, if.end.11], [%81, if.end.10]
  %261 = phi i32 [%286, if.end.11], [%79, if.end.10]
  %262 = phi i32 [%287, if.end.11], [%80, if.end.10]
  br if.end
if.then.10:
  %263 = and %80, 127
  %264 = gep %0, %263
  %265 = load i32, %264
  %266 = and %79, 127
  %267 = gep %0, %266
  %268 = load i32, %267
  %269 = smin %78, %1
  %270 = load i32, %7
  %271 = mul %270, 1
  %272 = icmp sgt %269, %271
  %273 = select %272, 26, 34
  %274 = add %1, 50
  %275 = and %273, 3
  %276 = icmp eq %275, 2
  %277 = select %276, %268, %265
  %278 = mul %277, 5
  store %278, %7
  br if.end.10
if.end.10:
  br if.end.9
if.then.11:
  %279 = load i32, %7
  %280 = sub %279, %5
  %281 = and %280, 3
  %282 = icmp eq %281, 0
  condbr %282, if.then.12, if.else.11
if.else.10:
  %283 = icmp eq %83, 2
  condbr %283, if.then.15, if.else.14
if.end.11:
  %284 = phi i32 [%78, if.end.15], [%308, if.end.12]
  %285 = phi i32 [%81, if.end.15], [%302, if.end.12]
  %286 = phi i32 [%349, if.end.15], [%301, if.end.12]
  %287 = phi i32 [%350, if.end.15], [%300, if.end.12]
  br if.end.9
if.then.12:
  %288 = sub %5, 63
  %289 = smax %5, %79
  %290 = smin %289, %288
  %291 = and %81, 127
  %292 = gep %0, %291
  %293 = load i32, %292
  %294 = and %1, 20
  %295 = sub 30, %81
  %296 = icmp slt %294, %295
  %297 = select %296, %5, %293
  %298 = add %5, %297
  store %298, %7
  br if.end.12
if.else.11:
  %299 = icmp eq %281, 1
  condbr %299, if.then.13, if.else.12
if.end.12:
  %300 = phi i32 [%319, if.end.13], [%80, if.then.12]
  %301 = phi i32 [%79, if.end.13], [%290, if.then.12]
  %302 = phi i32 [%320, if.end.13], [%81, if.then.12]
  %303 = add %1, %300
  %304 = add %301, %1
  %305 = add %1, %5
  %306 = mul %78, 7
  %307 = icmp slt %305, %306
  %308 = select %307, %304, %303
  br if.end.11
if.then.13:
  %309 = and %78, 127
  %310 = gep %a, %309
  %311 = load i32, %310
  %312 = load i32, %7
  %313 = smax %312, %311
  %314 = mul %1, 6
  %315 = icmp sgt %314, %1
  %316 = select %315, %5, %81
  %317 = add %316, %313
  br if.end.13
if.else.12:
  %318 = icmp eq %281, 2
  condbr %318, if.then.14, if.else.13
if.end.13:
  %319 = phi i32 [%80, if.end.14], [%317, if.then.13]
  %320 = phi i32 [%339, if.end.14], [%81, if.then.13]
  br if.end.12
if.then.14:
  %321 = and 45, 38
  %322 = and %5, %321
  %323 = add 39, 29
  %324 = xor %322, 9
  %325 = sub %324, %323
  store %325, %7
  store %5, %7
  br if.end.14
if.else.13:
  %326 = and %81, 127
  %327 = gep %0, %326
  %328 = load i32, %327
  store %328, %7
  %329 = and %81, 127
  %330 = gep %a, %329
  %331 = load i32, %330
  %332 = add %331, %78
  %333 = icmp slt %1, %332
  %334 = select %333, %1, %5
  %335 = xor 15, 37
  %336 = icmp sle %334, %335
  %337 = select %336, %5, %1
  %338 = smin %337, 47
  store %338, %7
  br if.end.14
if.end.14:
  %339 = phi i32 [%81, if.else.13], [%322, if.then.14]
  br if.end.13
if.then.15:
  %340 = load i32, %7
  %341 = sub %340, 22
  %342 = load i32, %7
  %343 = sub %342, 57
  %344 = sub %343, %341
  br if.end.15
if.else.14:
  %345 = load i32, %7
  %346 = smin %345, %1
  %347 = and %1, 3
  %348 = icmp eq %347, 2
  condbr %348, if.then.16, if.else.15
if.end.15:
  %349 = phi i32 [%363, while.end.3], [%344, if.then.15]
  %350 = phi i32 [%371, while.end.3], [%80, if.then.15]
  br if.end.11
if.then.16:
  %351 = mul %81, 3
  %352 = smin %79, 40
  %353 = sub %352, %351
  store %353, %7
  br if.end.16
if.else.15:
  %354 = smax %1, %5
  %355 = add %354, %5
  %356 = add 24, 6
  %357 = xor %1, %356
  store %357, %7
  br if.end.16
if.end.16:
  %358 = phi i32 [%355, if.else.15], [%79, if.then.16]
  %359 = xor %1, 1
  %360 = and %359, 3
  %361 = add %360, 1
  br while.head.2
while.head.2:
  %362 = phi i32 [%369, while.body.2], [0, if.end.16]
  %363 = phi i32 [%365, while.body.2], [%358, if.end.16]
  %364 = icmp slt %362, %361
  condbr %364, while.body.2, while.end.2
while.body.2:
  %365 = xor %80, %362
  %366 = sub 25, 61
  %367 = mul %5, 2
  %368 = xor %367, %366
  store %368, %7
  %369 = add %362, 1
  br while.head.2
while.end.2:
  br while.head.3
while.head.3:
  %370 = phi i32 [%382, while.body.3], [0, while.end.2]
  %371 = phi i32 [%373, while.body.3], [%80, while.end.2]
  %372 = icmp slt %370, 2
  condbr %372, while.body.3, while.end.3
while.body.3:
  %373 = add %78, %370
  %374 = load i32, %7
  %375 = and %373, 127
  %376 = gep %a, %375
  %377 = load i32, %376
  %378 = and %377, %374
  %379 = load i32, %7
  %380 = sub %379, 57
  %381 = smax %380, %378
  store %381, %7
  %382 = add %370, 1
  br while.head.3
while.end.3:
  br if.end.15
if.then.17:
  %383 = smax %5, %5
  %384 = mul %383, 1
  store %384, %7
  %385 = xor %1, 7
  %386 = and %385, 3
  %387 = add %386, 1
  br while.head.4
if.else.16:
  %388 = icmp eq %32, 2
  condbr %388, if.then.19, if.else.17
if.end.17:
  %389 = phi i32 [%431, if.end.19], [%24, while.end.5]
  %390 = phi i32 [%432, if.end.19], [%400, while.end.5]
  %391 = phi i32 [%433, if.end.19], [%395, while.end.5]
  %392 = phi i32 [%434, if.end.19], [%394, while.end.5]
  br if.end
while.head.4:
  %393 = phi i32 [%398, while.body.4], [0, if.then.17]
  %394 = phi i32 [%5, while.body.4], [%1, if.then.17]
  %395 = phi i32 [%397, while.body.4], [%5, if.then.17]
  %396 = icmp slt %393, %387
  condbr %396, while.body.4, while.end.4
while.body.4:
  %397 = xor 75, %393
  %398 = add %393, 1
  br while.head.4
while.end.4:
  br while.head.5
while.head.5:
  %399 = phi i32 [%422, if.end.18], [0, while.end.4]
  %400 = phi i32 [%421, if.end.18], [75, while.end.4]
  %401 = icmp slt %399, 2
  condbr %401, while.body.5, while.end.5
while.body.5:
  %402 = add %400, %399
  %403 = and %395, 127
  %404 = gep %0, %403
  %405 = load i32, %404
  %406 = sub %1, %405
  %407 = add %5, %5
  %408 = icmp slt %406, %407
  condbr %408, if.then.18, if.end.18
while.end.5:
  br if.end.17
if.then.18:
  %409 = and %395, 127
  %410 = gep %a, %409
  %411 = load i32, %410
  %412 = add 17, %5
  %413 = smax %395, %1
  %414 = and %412, 3
  %415 = icmp eq %414, 0
  %416 = select %415, %24, %411
  %417 = add %5, %394
  %418 = sub %417, %416
  %419 = mul 8, 6
  %420 = smax %419, 32
  store %420, %7
  br if.end.18
if.end.18:
  %421 = phi i32 [%418, if.then.18], [%402, while.body.5]
  %422 = add %399, 1
  br while.head.5
if.then.19:
  %423 = smin %5, %5
  %424 = smin 39, %5
  %425 = and %423, 3
  %426 = icmp eq %425, 1
  condbr %426, if.then.20, if.else.18
if.else.17:
  %427 = smin 47, 23
  %428 = smax %5, 75
  %429 = and %427, 3
  %430 = icmp eq %429, 1
  condbr %430, if.then.33, if.end.33
if.end.19:
  %431 = phi i32 [%764, if.end.33], [%553, if.end.23]
  %432 = phi i32 [%765, if.end.33], [%554, if.end.23]
  %433 = phi i32 [%766, if.end.33], [%552, if.end.23]
  %434 = phi i32 [%1, if.end.33], [%555, if.end.23]
  br if.end.17
if.then.20:
  %435 = load i32, %7
  %436 = load i32, %7
  %437 = icmp sgt %436, %1
  condbr %437, if.then.21, if.end.21
if.else.18:
  %438 = smax %1, %1
  %439 = and %1, 127
  %440 = gep %0, %439
  %441 = load i32, %440
  %442 = xor %1, %441
  %443 = and %438, 3
  %444 = icmp eq %443, 1
  %445 = select %444, 46, 52
  %446 = sub 51, 53
  %447 = add %446, %445
  store %447, %7
  %448 = and %24, 127
  %449 = gep %a, %448
  %450 = load i32, %449
  %451 = smin %5, %450
  %452 = smax %24, 48
  %453 = mul %5, 2
  %454 = smin 4, %5
  %455 = icmp sgt %453, %454
  %456 = select %455, %452, %451
  br if.end.20
if.end.20:
  %457 = phi i32 [75, if.end.21], [%456, if.else.18]
  %458 = phi i32 [%470, if.end.21], [%24, if.else.18]
  %459 = icmp sle 27, 26
  condbr %459, if.then.22, if.else.19
if.then.21:
  %460 = sub %5, %5
  %461 = load i32, %7
  %462 = and %5, 127
  %463 = gep %a, %462
  %464 = load i32, %463
  %465 = sub %464, %461
  %466 = smax 44, %5
  %467 = and %465, 3
  %468 = icmp eq %467, 0
  %469 = select %468, %460, 75
  br if.end.21
if.end.21:
  %470 = phi i32 [%469, if.then.21], [%435, if.then.20]
  br if.end.20
if.then.22:
  %471 = xor %1, 5
  %472 = and %471, 3
  %473 = add %472, 1
  br while.head.6
if.else.19:
  %474 = xor %1, 5
  %475 = and %474, 3
  %476 = add %475, 1
  br while.head.8
if.end.22:
  %477 = phi i32 [%5, while.end.8], [%507, while.end.7]
  %478 = phi i32 [%457, while.end.8], [%508, while.end.7]
  %479 = phi i32 [%458, while.end.8], [%488, while.end.7]
  %480 = phi i32 [%542, while.end.8], [%1, while.end.7]
  %481 = and %478, 127
  %482 = gep %a, %481
  %483 = load i32, %482
  %484 = xor %483, %477
  %485 = smax 8, %477
  %486 = icmp sgt %484, %485
  condbr %486, if.then.23, if.else.20
while.head.6:
  %487 = phi i32 [%505, while.body.6], [0, if.then.22]
  %488 = phi i32 [%504, while.body.6], [%458, if.then.22]
  %489 = icmp slt %487, %473
  condbr %489, while.body.6, while.end.6
while.body.6:
  %490 = xor %488, %487
  %491 = add %1, %5
  %492 = smin 44, %1
  %493 = sub %5, 39
  %494 = and 18, 3
  %495 = icmp eq %494, 1
  %496 = select %495, %492, %491
  store %496, %7
  %497 = mul %5, 7
  %498 = xor %1, %457
  %499 = smin %498, %497
  %500 = and %1, 127
  %501 = gep %a, %500
  %502 = load i32, %501
  %503 = add %5, %502
  %504 = mul %503, 3
  %505 = add %487, 1
  br while.head.6
while.end.6:
  br while.head.7
while.head.7:
  %506 = phi i32 [%533, while.body.7], [0, while.end.6]
  %507 = phi i32 [%532, while.body.7], [%5, while.end.6]
  %508 = phi i32 [%510, while.body.7], [%457, while.end.6]
  %509 = icmp slt %506, 2
  condbr %509, while.body.7, while.end.7
while.body.7:
  %510 = add %507, %506
  %511 = sub %1, 32
  %512 = and %1, 127
  %513 = gep %0, %512
  %514 = load i32, %513
  %515 = and %514, %511
  store %515, %7
  %516 = and %1, 127
  %517 = gep %a, %516
  %518 = load i32, %517
  %519 = and %488, 127
  %520 = gep %a, %519
  %521 = load i32, %520
  %522 = sub %521, 34
  %523 = and %507, 127
  %524 = gep %0, %523
  %525 = load i32, %524
  %526 = and %510, 127
  %527 = gep %0, %526
  %528 = load i32, %527
  %529 = smin %528, %525
  %530 = icmp slt %522, %529
  %531 = select %530, %1, %488
  %532 = add %531, %518
  %533 = add %506, 1
  br while.head.7
while.end.7:
  %534 = smin %1, %488
  %535 = and %508, 127
  %536 = gep %a, %535
  %537 = load i32, %536
  %538 = load i32, %7
  %539 = add %538, %537
  %540 = sub %539, %534
  store %540, %7
  br if.end.22
while.head.8:
  %541 = phi i32 [%545, while.body.8], [0, if.else.19]
  %542 = phi i32 [%544, while.body.8], [%1, if.else.19]
  %543 = icmp slt %541, %476
  condbr %543, while.body.8, while.end.8
while.body.8:
  %544 = xor %458, %541
  store %5, %7
  %545 = add %541, 1
  br while.head.8
while.end.8:
  br if.end.22
if.then.23:
  %546 = add %479, %478
  %547 = and %546, 3
  %548 = icmp eq %547, 0
  condbr %548, if.then.24, if.else.21
if.else.20:
  %549 = sub %5, 41
  %550 = and %549, 3
  %551 = icmp eq %550, 0
  condbr %551, if.then.30, if.else.27
if.end.23:
  %552 = phi i32 [%740, while.end.11], [%637, if.end.27]
  %553 = phi i32 [%741, while.end.11], [%479, if.end.27]
  %554 = phi i32 [%689, while.end.11], [%638, if.end.27]
  %555 = phi i32 [%480, while.end.11], [%564, if.end.27]
  %556 = and %552, 127
  %557 = gep %0, %556
  %558 = load i32, %557
  %559 = smin %5, %558
  %560 = mul %559, 4
  store %560, %7
  br if.end.19
if.then.24:
  %561 = mul %5, 5
  %562 = sub %561, 13
  store %562, %7
  br if.end.24
if.else.21:
  %563 = icmp eq %547, 1
  condbr %563, if.then.25, if.else.22
if.end.24:
  %564 = phi i32 [%583, if.end.25], [%480, if.then.24]
  %565 = phi i32 [%584, if.end.25], [%478, if.then.24]
  %566 = xor %1, 6
  %567 = and %566, 3
  %568 = add %567, 1
  br while.head.9
if.then.25:
  %569 = add 46, %1
  %570 = smax %479, %5
  %571 = add %570, %569
  store %571, %7
  %572 = sub %1, %5
  %573 = sub %1, 56
  %574 = xor %573, %572
  store %574, %7
  %575 = load i32, %7
  %576 = mul %575, 3
  %577 = and %479, 127
  %578 = gep %0, %577
  %579 = load i32, %578
  %580 = add %478, %579
  %581 = add %580, %576
  br if.end.25
if.else.22:
  %582 = icmp eq %547, 2
  condbr %582, if.then.26, if.else.23
if.end.25:
  %583 = phi i32 [%622, if.end.26], [%480, if.then.25]
  %584 = phi i32 [%623, if.end.26], [%581, if.then.25]
  br if.end.24
if.then.26:
  %585 = add %1, %477
  %586 = load i32, %7
  %587 = and %586, %478
  %588 = add %587, %585
  %589 = and %5, 35
  %590 = and %588, 127
  %591 = gep %0, %590
  %592 = load i32, %591
  %593 = add %479, %5
  %594 = and %588, 127
  %595 = gep %a, %594
  %596 = load i32, %595
  %597 = xor %596, %478
  %598 = icmp slt %593, %597
  %599 = select %598, 14, %592
  %600 = smax %599, %589
  store %600, %7
  %601 = mul %5, 4
  %602 = and %478, 127
  %603 = gep %a, %602
  %604 = load i32, %603
  %605 = xor %477, %604
  %606 = sub %605, %601
  store %606, %7
  br if.end.26
if.else.23:
  %607 = load i32, %7
  %608 = add %478, %607
  %609 = load i32, %7
  %610 = smax %609, 45
  %611 = add %610, %608
  %612 = smin %1, %5
  %613 = load i32, %7
  %614 = smin 45, %613
  %615 = and %477, 127
  %616 = gep %a, %615
  %617 = load i32, %616
  %618 = smax %617, %477
  %619 = and %618, 3
  %620 = icmp eq %619, 2
  %621 = select %620, %614, %612
  store %621, %7
  br if.end.26
if.end.26:
  %622 = phi i32 [%480, if.else.23], [%588, if.then.26]
  %623 = phi i32 [%611, if.else.23], [%478, if.then.26]
  br if.end.25
while.head.9:
  %624 = phi i32 [%630, while.body.9], [0, if.end.24]
  %625 = phi i32 [%627, while.body.9], [%565, if.end.24]
  %626 = icmp slt %624, %568
  condbr %626, while.body.9, while.end.9
while.body.9:
  %627 = xor %564, %624
  %628 = xor %1, %5
  %629 = mul %628, 1
  store %629, %7
  %630 = add %624, 1
  br while.head.9
while.end.9:
  %631 = and %564, 3
  %632 = icmp eq %631, 0
  condbr %632, if.then.27, if.else.24
if.then.27:
  %633 = smax %5, 54
  %634 = and %477, 61
  %635 = smax %634, %633
  store %635, %7
  br if.end.27
if.else.24:
  %636 = icmp eq %631, 1
  condbr %636, if.then.28, if.else.25
if.end.27:
  %637 = phi i32 [%650, if.end.28], [%477, if.then.27]
  %638 = phi i32 [%651, if.end.28], [%625, if.then.27]
  br if.end.23
if.then.28:
  %639 = and %564, 127
  %640 = gep %a, %639
  %641 = load i32, %640
  %642 = add %641, %625
  %643 = mul %479, 4
  %644 = xor %643, %642
  store %644, %7
  store %564, %7
  %645 = load i32, %7
  %646 = xor %5, %645
  %647 = mul %564, 3
  %648 = xor %647, %646
  store %648, %7
  br if.end.28
if.else.25:
  %649 = icmp eq %631, 2
  condbr %649, if.then.29, if.else.26
if.end.28:
  %650 = phi i32 [%671, if.end.29], [%477, if.then.28]
  %651 = phi i32 [%672, if.end.29], [%625, if.then.28]
  br if.end.27
if.then.29:
  %652 = add %1, %625
  %653 = and %564, 127
  %654 = gep %a, %653
  %655 = load i32, %654
  %656 = add %655, 61
  %657 = and %5, %477
  %658 = load i32, %7
  %659 = add 9, %658
  %660 = icmp slt %657, %659
  %661 = select %660, %656, %652
  store %661, %7
  %662 = xor %5, %5
  %663 = xor %479, %5
  %664 = smax %663, %662
  br if.end.29
if.else.26:
  %665 = mul %5, 4
  %666 = and %564, 127
  %667 = gep %0, %666
  %668 = load i32, %667
  %669 = smax %668, 2
  %670 = mul %669, 7
  store %670, %7
  br if.end.29
if.end.29:
  %671 = phi i32 [%665, if.else.26], [%5, if.then.29]
  %672 = phi i32 [%625, if.else.26], [%664, if.then.29]
  br if.end.28
if.then.30:
  %673 = and %479, 127
  %674 = gep %0, %673
  %675 = load i32, %674
  %676 = smax %477, %5
  %677 = icmp sle %676, %478
  %678 = select %677, %675, 8
  %679 = add %5, %1
  %680 = icmp slt %678, %679
  %681 = select %680, 11, %5
  %682 = and %681, 40
  %683 = and %479, 127
  %684 = gep %a, %683
  %685 = load i32, %684
  %686 = smax %685, %5
  %687 = xor 5, %686
  store %687, %7
  br if.end.30
if.else.27:
  %688 = icmp eq %550, 1
  condbr %688, if.then.31, if.else.28
if.end.30:
  %689 = phi i32 [%478, if.end.31], [%682, if.then.30]
  %690 = phi i32 [%705, if.end.31], [%477, if.then.30]
  %691 = phi i32 [%706, if.end.31], [%479, if.then.30]
  %692 = xor %1, 7
  %693 = and %692, 3
  %694 = add %693, 1
  br while.head.10
if.then.31:
  %695 = smin %1, %1
  %696 = mul 20, 3
  %697 = add %696, %695
  store %697, %7
  %698 = mul %5, 3
  %699 = smax %1, %5
  %700 = smin %699, %698
  store %700, %7
  %701 = smax %1, %1
  %702 = smin %1, %478
  %703 = and %702, %701
  store %703, %7
  br if.end.31
if.else.28:
  %704 = icmp eq %550, 2
  condbr %704, if.then.32, if.else.29
if.end.31:
  %705 = phi i32 [%729, if.end.32], [%477, if.then.31]
  %706 = phi i32 [%730, if.end.32], [%479, if.then.31]
  br if.end.30
if.then.32:
  %707 = add 22, %1
  %708 = and %480, 127
  %709 = gep %0, %708
  %710 = load i32, %709
  %711 = load i32, %7
  %712 = and %477, 127
  %713 = gep %a, %712
  %714 = load i32, %713
  %715 = smin %5, %714
  %716 = xor 23, %5
  %717 = icmp slt %715, %716
  %718 = select %717, %711, %710
  %719 = smax 50, %1
  %720 = smax 48, 38
  %721 = icmp slt %719, %720
  %722 = select %721, %718, %707
  store %722, %7
  br if.end.32
if.else.29:
  %723 = sub %1, %5
  %724 = mul %723, 3
  store %724, %7
  %725 = add %479, %5
  %726 = sub %479, %725
  %727 = sub %1, 13
  %728 = smax %727, %5
  br if.end.32
if.end.32:
  %729 = phi i32 [%726, if.else.29], [%477, if.then.32]
  %730 = phi i32 [%728, if.else.29], [%479, if.then.32]
  br if.end.31
while.head.10:
  %731 = phi i32 [%738, while.body.10], [0, if.end.30]
  %732 = phi i32 [%734, while.body.10], [%690, if.end.30]
  %733 = icmp slt %731, %694
  condbr %733, while.body.10, while.end.10
while.body.10:
  %734 = xor %480, %731
  %735 = sub %5, %480
  %736 = and %1, %5
  %737 = smax %736, %735
  store %737, %7
  %738 = add %731, 1
  br while.head.10
while.end.10:
  br while.head.11
while.head.11:
  %739 = phi i32 [%760, while.body.11], [0, while.end.10]
  %740 = phi i32 [%759, while.body.11], [%732, while.end.10]
  %741 = phi i32 [%757, while.body.11], [%691, while.end.10]
  %742 = icmp slt %739, 3
  condbr %742, while.body.11, while.end.11
while.body.11:
  %743 = add %480, %739
  %744 = and %743, 127
  %745 = gep %a, %744
  %746 = load i32, %745
  %747 = smax %746, %5
  %748 = and %743, 127
  %749 = gep %a, %748
  %750 = load i32, %749
  %751 = load i32, %7
  %752 = smax %751, %750
  %753 = smax %752, %747
  %754 = smin %5, %480
  %755 = load i32, %7
  %756 = add %753, %755
  %757 = add %756, %754
  %758 = add %689, %5
  %759 = mul %758, 2
  %760 = add %739, 1
  br while.head.11
while.end.11:
  br if.end.23
if.then.33:
  %761 = smin 5, 0
  %762 = and %761, 3
  %763 = icmp eq %762, 0
  condbr %763, if.then.34, if.else.30
if.end.33:
  %764 = phi i32 [%832, while.end.12], [%24, if.else.17]
  %765 = phi i32 [%775, while.end.12], [75, if.else.17]
  %766 = phi i32 [%773, while.end.12], [%5, if.else.17]
  br if.end.19
if.then.34:
  %767 = sub %24, %1
  %768 = mul %767, 4
  store %768, %7
  %769 = sub 12, %1
  %770 = add 29, %5
  %771 = smax %770, %769
  br if.end.34
if.else.30:
  %772 = icmp eq %762, 1
  condbr %772, if.then.35, if.else.31
if.end.34:
  %773 = phi i32 [%799, if.end.35], [%5, if.then.34]
  %774 = phi i32 [%800, if.end.35], [%24, if.then.34]
  %775 = phi i32 [75, if.end.35], [%771, if.then.34]
  br while.head.12
if.then.35:
  %776 = smin 49, %1
  %777 = smax 43, %1
  %778 = and %1, 12
  %779 = and 75, 127
  %780 = gep %0, %779
  %781 = load i32, %780
  %782 = mul %781, 5
  %783 = and %778, 3
  %784 = icmp eq %783, 1
  %785 = select %784, 75, 33
  %786 = icmp sgt %777, %785
  %787 = select %786, %776, %5
  store %787, %7
  %788 = load i32, %7
  %789 = sub %788, 75
  %790 = mul %5, 3
  %791 = sub %790, %789
  %792 = smin 41, %5
  %793 = and %24, 127
  %794 = gep %a, %793
  %795 = load i32, %794
  %796 = add %795, 48
  %797 = sub %796, %792
  br if.end.35
if.else.31:
  %798 = icmp eq %762, 2
  condbr %798, if.then.36, if.else.32
if.end.35:
  %799 = phi i32 [%829, if.end.36], [%791, if.then.35]
  %800 = phi i32 [%830, if.end.36], [%797, if.then.35]
  br if.end.34
if.then.36:
  %801 = and %24, 127
  %802 = gep %a, %801
  %803 = load i32, %802
  %804 = xor %24, %803
  %805 = and %5, 127
  %806 = gep %0, %805
  %807 = load i32, %806
  %808 = and %5, %807
  %809 = smax 75, %5
  %810 = sub %24, %5
  %811 = and %809, 3
  %812 = icmp eq %811, 2
  %813 = select %812, %808, %804
  br if.end.36
if.else.32:
  %814 = and 75, 127
  %815 = gep %0, %814
  %816 = load i32, %815
  %817 = add %816, %1
  %818 = load i32, %7
  %819 = mul %818, 1
  %820 = smin %819, %817
  %821 = mul %1, 3
  %822 = mul 26, 5
  %823 = icmp sgt %821, %822
  %824 = select %823, 75, %1
  %825 = xor %5, 61
  %826 = icmp slt %824, %825
  %827 = select %826, %820, %1
  %828 = mul %827, 5
  br if.end.36
if.end.36:
  %829 = phi i32 [%828, if.else.32], [%5, if.then.36]
  %830 = phi i32 [%24, if.else.32], [%813, if.then.36]
  br if.end.35
while.head.12:
  %831 = phi i32 [%845, while.body.12], [0, if.end.34]
  %832 = phi i32 [%834, while.body.12], [%774, if.end.34]
  %833 = icmp slt %831, 1
  condbr %833, while.body.12, while.end.12
while.body.12:
  %834 = add %1, %831
  %835 = load i32, %7
  %836 = mul %835, 3
  %837 = and %773, 127
  %838 = gep %0, %837
  %839 = load i32, %838
  %840 = smax %5, 43
  %841 = mul %1, 1
  %842 = icmp sle %840, %841
  %843 = select %842, 33, %839
  %844 = smax %843, %836
  store %844, %7
  %845 = add %831, 1
  br while.head.12
while.end.12:
  br if.end.33
if.then.37:
  %846 = xor %1, 20
  %847 = mul 48, 3
  %848 = icmp sle %846, %847
  condbr %848, if.then.38, if.else.34
if.else.33:
  %849 = icmp eq %67, 1
  condbr %849, if.then.49, if.else.39
if.end.37:
  %850 = phi i32 [%1211, if.end.49], [%1046, if.end.46]
  %851 = phi i32 [%1212, if.end.49], [%1047, if.end.46]
  %852 = phi i32 [%1213, if.end.49], [%1048, if.end.46]
  %853 = phi i32 [%1214, if.end.49], [%1049, if.end.46]
  %854 = and %850, 127
  %855 = gep %0, %854
  %856 = load i32, %855
  %857 = sub %856, %1
  %858 = and %850, 127
  %859 = gep %0, %858
  %860 = load i32, %859
  %861 = xor %860, %1
  %862 = and %861, %857
  %863 = and %1, 127
  syncthreads
  %864 = gep %0, %863
  store %862, %864
  syncthreads
  %865 = smin 2, 38
  %866 = and %851, 127
  %867 = gep %a, %866
  %868 = load i32, %867
  %869 = and 28, 28
  %870 = and %852, 127
  %871 = gep %a, %870
  %872 = load i32, %871
  %873 = add %872, %850
  %874 = icmp slt %869, %873
  %875 = select %874, %1, %868
  %876 = and %865, 3
  %877 = icmp eq %876, 3
  condbr %877, if.then.64, if.else.51
if.then.38:
  %878 = xor %1, %5
  %879 = add %1, %1
  %880 = and %878, 3
  %881 = icmp eq %880, 1
  condbr %881, if.then.39, if.else.35
if.else.34:
  %882 = xor %1, 5
  %883 = and %882, 3
  %884 = add %883, 1
  br while.head.13
if.end.38:
  %885 = phi i32 [%65, if.end.41], [%915, if.end.40]
  %886 = phi i32 [%922, if.end.41], [%63, if.end.40]
  %887 = add %1, 12
  %888 = smin %5, %1
  %889 = icmp sle %888, 42
  %890 = select %889, 31, 19
  %891 = icmp sgt %887, %890
  condbr %891, if.then.42, if.else.36
if.then.39:
  %892 = mul %1, 4
  %893 = smin %63, 17
  %894 = sub %893, %892
  store %894, %7
  br if.end.39
if.else.35:
  %895 = and %64, 127
  %896 = gep %a, %895
  %897 = load i32, %896
  %898 = smin %897, %5
  %899 = mul 54, 6
  %900 = and %899, %898
  store %900, %7
  %901 = and %1, %5
  %902 = and %63, 127
  %903 = gep %0, %902
  %904 = load i32, %903
  %905 = smax %62, %904
  %906 = and %905, %901
  store %906, %7
  br if.end.39
if.end.39:
  %907 = mul %62, 6
  %908 = and %62, 127
  %909 = gep %0, %908
  %910 = load i32, %909
  %911 = sub %910, %1
  %912 = icmp sle %907, %911
  condbr %912, if.then.40, if.end.40
if.then.40:
  %913 = and 59, %5
  %914 = mul %913, 7
  br if.end.40
if.end.40:
  %915 = phi i32 [%914, if.then.40], [%65, if.end.39]
  %916 = xor %63, %1
  %917 = and %63, 127
  %918 = gep %a, %917
  %919 = load i32, %918
  %920 = smax %919, %916
  store %920, %7
  br if.end.38
while.head.13:
  %921 = phi i32 [%934, while.body.13], [0, if.else.34]
  %922 = phi i32 [%924, while.body.13], [%63, if.else.34]
  %923 = icmp slt %921, %884
  condbr %923, while.body.13, while.end.13
while.body.13:
  %924 = xor %64, %921
  %925 = smin %5, %1
  %926 = and %65, 127
  %927 = gep %0, %926
  %928 = load i32, %927
  %929 = and %62, 127
  %930 = gep %a, %929
  %931 = load i32, %930
  %932 = add %931, %928
  %933 = and %932, %925
  store %933, %7
  %934 = add %921, 1
  br while.head.13
while.end.13:
  %935 = and %62, 127
  %936 = gep %0, %935
  %937 = load i32, %936
  %938 = and %937, %64
  %939 = add %1, %64
  %940 = xor %1, 46
  %941 = and %939, 3
  %942 = icmp eq %941, 1
  %943 = select %942, %62, 9
  %944 = sub %943, %938
  store %944, %7
  %945 = and %922, 127
  %946 = gep %a, %945
  %947 = load i32, %946
  %948 = sub %5, %1
  %949 = icmp slt %947, %948
  condbr %949, if.then.41, if.end.41
if.then.41:
  %950 = and 58, %922
  %951 = smax %5, %62
  %952 = and %65, 127
  %953 = gep %a, %952
  %954 = load i32, %953
  %955 = sub 23, %954
  %956 = and %65, 127
  %957 = gep %a, %956
  %958 = load i32, %957
  %959 = mul %958, 2
  %960 = and %955, 3
  %961 = icmp eq %960, 0
  %962 = select %961, %5, 13
  %963 = add 39, %65
  %964 = icmp sle %962, %963
  %965 = select %964, %951, %950
  store %965, %7
  br if.end.41
if.end.41:
  br if.end.38
if.then.42:
  %966 = and %886, %885
  %967 = load i32, %7
  %968 = and %1, %967
  %969 = icmp sle %966, %968
  %970 = select %969, %5, 3
  %971 = icmp sle 12, %970
  condbr %971, if.then.43, if.end.43
if.else.36:
  %972 = smin 36, %1
  %973 = and %5, %1
  %974 = smin %973, %972
  %975 = mul 27, 6
  %976 = mul %5, 7
  %977 = icmp sgt %975, %976
  condbr %977, if.then.44, if.end.44
if.end.42:
  %978 = phi i32 [%1012, if.end.45], [%62, if.end.43]
  %979 = phi i32 [%885, if.end.45], [%1001, if.end.43]
  %980 = phi i32 [%1041, if.end.45], [%1002, if.end.43]
  %981 = phi i32 [%1042, if.end.45], [%886, if.end.43]
  %982 = load i32, %7
  %983 = smax %982, %1
  %984 = and 59, 3
  %985 = icmp eq %984, 2
  condbr %985, if.then.46, if.else.37
if.then.43:
  %986 = xor 43, %5
  %987 = smax %1, %5
  %988 = add %987, %986
  %989 = and %62, 127
  %990 = gep %a, %989
  %991 = load i32, %990
  %992 = and 19, %991
  %993 = and %988, 127
  %994 = gep %0, %993
  %995 = load i32, %994
  %996 = and %988, 127
  %997 = gep %0, %996
  %998 = load i32, %997
  %999 = sub %998, %995
  %1000 = xor %999, %992
  br if.end.43
if.end.43:
  %1001 = phi i32 [%1000, if.then.43], [%885, if.then.42]
  %1002 = phi i32 [%988, if.then.43], [%64, if.then.42]
  br if.end.42
if.then.44:
  %1003 = xor 12, %1
  %1004 = xor 62, %886
  %1005 = xor %1004, %1003
  %1006 = smin %1, %885
  %1007 = and %64, 127
  %1008 = gep %0, %1007
  %1009 = load i32, %1008
  %1010 = xor %64, %1009
  %1011 = sub %1010, %1006
  br if.end.44
if.end.44:
  %1012 = phi i32 [%1005, if.then.44], [%974, if.else.36]
  %1013 = phi i32 [%1011, if.then.44], [%886, if.else.36]
  %1014 = smax %1, %64
  %1015 = and %1012, 127
  %1016 = gep %0, %1015
  %1017 = load i32, %1016
  %1018 = and %885, 127
  %1019 = gep %0, %1018
  %1020 = load i32, %1019
  %1021 = and %1020, %1017
  %1022 = mul %5, 3
  %1023 = icmp slt %1021, %1022
  %1024 = select %1023, 45, %1
  %1025 = icmp slt %1014, %1024
  condbr %1025, if.then.45, if.end.45
if.then.45:
  %1026 = mul %1013, 2
  %1027 = sub %1, %5
  %1028 = icmp sgt %1026, %1027
  %1029 = select %1028, %5, %885
  %1030 = mul %1029, 4
  %1031 = mul %1, 6
  store %1031, %7
  %1032 = and %885, 127
  %1033 = gep %0, %1032
  %1034 = load i32, %1033
  %1035 = add %1034, %885
  %1036 = and %1012, 127
  %1037 = gep %0, %1036
  %1038 = load i32, %1037
  %1039 = mul %1038, 1
  %1040 = smax %1039, %1035
  br if.end.45
if.end.45:
  %1041 = phi i32 [%1040, if.then.45], [%64, if.end.44]
  %1042 = phi i32 [%1030, if.then.45], [%1013, if.end.44]
  br if.end.42
if.then.46:
  %1043 = xor %1, 7
  %1044 = and %1043, 3
  %1045 = add %1044, 1
  br while.head.14
if.else.37:
  br while.head.16
if.end.46:
  %1046 = phi i32 [%1154, if.end.48], [%1150, if.end.47]
  %1047 = phi i32 [%1197, if.end.48], [%1151, if.end.47]
  %1048 = phi i32 [%981, if.end.48], [%1052, if.end.47]
  %1049 = phi i32 [%978, if.end.48], [%1152, if.end.47]
  br if.end.37
while.head.14:
  %1050 = phi i32 [%1077, while.body.14], [0, if.then.46]
  %1051 = phi i32 [%1076, while.body.14], [%978, if.then.46]
  %1052 = phi i32 [%1061, while.body.14], [%981, if.then.46]
  %1053 = icmp slt %1050, %1045
  condbr %1053, while.body.14, while.end.14
while.body.14:
  %1054 = xor %980, %1050
  %1055 = mul %1, 5
  %1056 = xor 31, 18
  %1057 = icmp slt %1055, %1056
  %1058 = select %1057, %979, 1
  %1059 = load i32, %7
  %1060 = add %1059, %1051
  %1061 = xor %1060, %1058
  %1062 = and %1061, 127
  %1063 = gep %a, %1062
  %1064 = load i32, %1063
  %1065 = sub %5, %1064
  %1066 = sub %1051, %5
  %1067 = mul %980, 3
  %1068 = and %1061, 127
  %1069 = gep %0, %1068
  %1070 = load i32, %1069
  %1071 = smin %1061, %1070
  %1072 = icmp sgt %1067, %1071
  %1073 = select %1072, %1066, %1065
  store %1073, %7
  %1074 = sub 53, %980
  %1075 = sub %5, %1061
  %1076 = add %1075, %1074
  %1077 = add %1050, 1
  br while.head.14
while.end.14:
  %1078 = xor %1, 4
  %1079 = and %1078, 3
  %1080 = add %1079, 1
  br while.head.15
while.head.15:
  %1081 = phi i32 [%1099, while.body.15], [0, while.end.14]
  %1082 = phi i32 [%1085, while.body.15], [%980, while.end.14]
  %1083 = phi i32 [%1098, while.body.15], [%1051, while.end.14]
  %1084 = icmp slt %1081, %1080
  condbr %1084, while.body.15, while.end.15
while.body.15:
  %1085 = xor %1082, %1081
  %1086 = sub %1085, %1083
  %1087 = and %1083, 127
  %1088 = gep %a, %1087
  %1089 = load i32, %1088
  %1090 = add 26, %5
  %1091 = load i32, %7
  %1092 = add %1052, %1091
  %1093 = and %1090, 3
  %1094 = icmp eq %1093, 3
  %1095 = select %1094, %1089, %1083
  %1096 = icmp sle %1086, %1095
  %1097 = select %1096, %5, %1
  %1098 = mul %1097, 1
  %1099 = add %1081, 1
  br while.head.15
while.end.15:
  %1100 = add %1082, %5
  %1101 = and %1083, 127
  %1102 = gep %0, %1101
  %1103 = load i32, %1102
  %1104 = add %1103, 22
  %1105 = and %1100, 3
  %1106 = icmp eq %1105, 1
  condbr %1106, if.then.47, if.else.38
if.then.47:
  %1107 = and %1, %5
  %1108 = sub %5, %1
  %1109 = xor %1108, %1107
  store %1109, %7
  %1110 = and %1052, 127
  %1111 = gep %0, %1110
  %1112 = load i32, %1111
  %1113 = mul %1, 4
  %1114 = icmp slt %5, %1113
  %1115 = select %1114, %1112, %1
  %1116 = add %1083, %1082
  %1117 = icmp slt %1115, %1116
  %1118 = select %1117, %979, 3
  %1119 = load i32, %7
  %1120 = sub %1119, 5
  %1121 = smin %1120, %1118
  %1122 = mul %1052, 1
  %1123 = and %1083, 127
  %1124 = gep %0, %1123
  %1125 = load i32, %1124
  %1126 = and %1083, 127
  %1127 = gep %0, %1126
  %1128 = load i32, %1127
  %1129 = smax 26, %1128
  %1130 = and %1052, 3
  %1131 = icmp eq %1130, 3
  %1132 = select %1131, %1121, %1125
  %1133 = icmp sle %1122, %1132
  %1134 = select %1133, %1083, 25
  %1135 = xor 17, 6
  %1136 = icmp sle %1134, %1135
  %1137 = select %1136, %1121, %1052
  %1138 = smin %1137, 11
  br if.end.47
if.else.38:
  %1139 = and %1083, 127
  %1140 = gep %0, %1139
  %1141 = load i32, %1140
  %1142 = add %1, %1
  %1143 = and %1052, 127
  %1144 = gep %a, %1143
  %1145 = load i32, %1144
  %1146 = sub %1145, %1052
  %1147 = icmp sgt %1142, %1146
  %1148 = select %1147, %1, %979
  %1149 = and %1148, %1141
  br if.end.47
if.end.47:
  %1150 = phi i32 [%1082, if.else.38], [%1121, if.then.47]
  %1151 = phi i32 [%1149, if.else.38], [%979, if.then.47]
  %1152 = phi i32 [%1083, if.else.38], [%1138, if.then.47]
  br if.end.46
while.head.16:
  %1153 = phi i32 [%1190, while.body.16], [0, if.else.37]
  %1154 = phi i32 [%1180, while.body.16], [%980, if.else.37]
  %1155 = icmp slt %1153, 1
  condbr %1155, while.body.16, while.end.16
while.body.16:
  %1156 = add %978, %1153
  %1157 = and %1156, 127
  %1158 = gep %0, %1157
  %1159 = load i32, %1158
  %1160 = mul %1159, 3
  %1161 = and %979, 127
  %1162 = gep %0, %1161
  %1163 = load i32, %1162
  %1164 = sub %978, %1163
  %1165 = sub %1, %5
  %1166 = and %981, 127
  %1167 = gep %0, %1166
  %1168 = load i32, %1167
  %1169 = xor %1168, %978
  %1170 = and %1156, 127
  %1171 = gep %a, %1170
  %1172 = load i32, %1171
  %1173 = xor %1172, %5
  %1174 = icmp sgt %1169, %1173
  %1175 = select %1174, %5, 29
  %1176 = icmp sle %1165, %1175
  %1177 = select %1176, %978, %981
  %1178 = smin %981, %981
  %1179 = icmp sgt %1177, %1178
  %1180 = select %1179, %1164, %1160
  %1181 = smin %5, %978
  %1182 = smax %1, %5
  %1183 = and %1182, %1181
  store %1183, %7
  %1184 = and %978, 127
  %1185 = gep %0, %1184
  %1186 = load i32, %1185
  %1187 = add %1, %1186
  %1188 = xor 2, %1
  %1189 = xor %1188, %1187
  store %1189, %7
  %1190 = add %1153, 1
  br while.head.16
while.end.16:
  %1191 = and %979, %5
  %1192 = smin %978, %1154
  %1193 = icmp sgt %1191, %1192
  condbr %1193, if.then.48, if.end.48
if.then.48:
  %1194 = xor %5, %5
  %1195 = mul %1154, 5
  %1196 = xor %1195, %1194
  br if.end.48
if.end.48:
  %1197 = phi i32 [%1196, if.then.48], [%979, while.end.16]
  br if.end.46
if.then.49:
  %1198 = and %64, 127
  %1199 = gep %0, %1198
  %1200 = load i32, %1199
  %1201 = xor %5, %1
  %1202 = smin %63, 59
  %1203 = icmp sgt %1201, %1202
  %1204 = select %1203, 39, %1200
  %1205 = and %63, 127
  %1206 = gep %0, %1205
  %1207 = load i32, %1206
  %1208 = mul %1207, 3
  %1209 = icmp slt %1204, %1208
  condbr %1209, if.then.50, if.else.40
if.else.39:
  %1210 = icmp eq %67, 2
  condbr %1210, if.then.53, if.else.43
if.end.49:
  %1211 = phi i32 [%1301, if.end.53], [%1230, if.end.50]
  %1212 = phi i32 [%1302, if.end.53], [%1232, if.end.50]
  %1213 = phi i32 [%1303, if.end.53], [%63, if.end.50]
  %1214 = phi i32 [%1304, if.end.53], [%1231, if.end.50]
  br if.end.37
if.then.50:
  %1215 = sub %1, 35
  %1216 = and %64, 127
  %1217 = gep %0, %1216
  %1218 = load i32, %1217
  %1219 = and %5, %1
  %1220 = smax %1, %5
  %1221 = icmp sgt %1219, %1220
  %1222 = select %1221, %1218, %5
  %1223 = xor %1222, %1215
  store %1223, %7
  %1224 = mul 50, 2
  %1225 = mul 30, 3
  %1226 = icmp sgt %1224, %1225
  condbr %1226, if.then.51, if.else.41
if.else.40:
  %1227 = mul %65, 4
  %1228 = and 34, %5
  %1229 = icmp slt %1227, %1228
  condbr %1229, if.then.52, if.else.42
if.end.50:
  %1230 = phi i32 [%64, if.end.52], [%1257, if.end.51]
  %1231 = phi i32 [%1285, if.end.52], [%62, if.end.51]
  %1232 = phi i32 [%65, if.end.52], [%1258, if.end.51]
  %1233 = sub %1230, %5
  %1234 = and %1231, 127
  %1235 = gep %a, %1234
  %1236 = load i32, %1235
  %1237 = smax %1, %1236
  %1238 = add %5, %63
  %1239 = sub %1, 43
  %1240 = and %1238, 3
  %1241 = icmp eq %1240, 1
  %1242 = select %1241, %1237, %1233
  store %1242, %7
  br if.end.49
if.then.51:
  %1243 = and %64, 127
  %1244 = gep %0, %1243
  %1245 = load i32, %1244
  %1246 = smax %65, %1245
  %1247 = sub 11, %64
  %1248 = smin %1247, %1246
  %1249 = and 22, 1
  %1250 = xor %1, 8
  %1251 = sub %1250, %1249
  br if.end.51
if.else.41:
  %1252 = and %63, 127
  %1253 = gep %a, %1252
  %1254 = load i32, %1253
  %1255 = smin %1254, %64
  %1256 = xor %1, %1255
  br if.end.51
if.end.51:
  %1257 = phi i32 [%64, if.else.41], [%1251, if.then.51]
  %1258 = phi i32 [%1256, if.else.41], [%1248, if.then.51]
  br if.end.50
if.then.52:
  %1259 = sub %1, %1
  %1260 = and %5, %64
  %1261 = xor %1260, %1259
  store %1261, %7
  %1262 = and %62, 127
  %1263 = gep %a, %1262
  %1264 = load i32, %1263
  %1265 = xor %1, %63
  %1266 = smax 19, %5
  %1267 = icmp slt %1265, %1266
  %1268 = select %1267, 16, %1264
  %1269 = smax %63, %5
  %1270 = and %65, 127
  %1271 = gep %a, %1270
  %1272 = load i32, %1271
  %1273 = add %5, %1272
  %1274 = smax %63, %64
  %1275 = icmp sle %1273, %1274
  %1276 = select %1275, %1269, %1268
  %1277 = load i32, %7
  %1278 = sub %1277, 57
  %1279 = xor %5, 21
  %1280 = smin %1279, %1278
  store %1280, %7
  br if.end.52
if.else.42:
  %1281 = load i32, %7
  %1282 = sub %5, %1281
  %1283 = add %64, 21
  %1284 = smin %1283, %1282
  br if.end.52
if.end.52:
  %1285 = phi i32 [%1284, if.else.42], [%1276, if.then.52]
  %1286 = add 11, %1285
  %1287 = smax 34, %1
  %1288 = and %1286, 3
  %1289 = icmp eq %1288, 1
  %1290 = select %1289, %5, %5
  %1291 = and %63, 127
  %1292 = gep %a, %1291
  %1293 = load i32, %1292
  %1294 = mul %1293, 3
  %1295 = xor %1294, %1290
  store %1295, %7
  br if.end.50
if.then.53:
  %1296 = and %64, %5
  %1297 = icmp slt %1296, %5
  condbr %1297, if.then.54, if.end.54
if.else.43:
  %1298 = xor %1, 1
  %1299 = and %1298, 3
  %1300 = add %1299, 1
  br while.head.20
if.end.53:
  %1301 = phi i32 [%1573, if.end.59], [%1462, if.end.58]
  %1302 = phi i32 [%1574, if.end.59], [%1308, if.end.58]
  %1303 = phi i32 [%1575, if.end.59], [%1463, if.end.58]
  %1304 = phi i32 [%1576, if.end.59], [%1464, if.end.58]
  br if.end.49
if.then.54:
  %1305 = sub %5, %65
  %1306 = and %1305, 3
  %1307 = icmp eq %1306, 0
  condbr %1307, if.then.55, if.else.44
if.end.54:
  %1308 = phi i32 [%1378, while.end.17], [%65, if.then.53]
  %1309 = phi i32 [%1350, while.end.17], [%63, if.then.53]
  %1310 = phi i32 [%1379, while.end.17], [%62, if.then.53]
  %1311 = phi i32 [%1351, while.end.17], [%64, if.then.53]
  %1312 = smax %1309, %1308
  %1313 = and %1309, 127
  %1314 = gep %0, %1313
  %1315 = load i32, %1314
  %1316 = smax %1315, %5
  %1317 = icmp slt %1312, %1316
  condbr %1317, if.then.58, if.end.58
if.then.55:
  %1318 = mul %1, 7
  %1319 = mul %1318, 5
  %1320 = smax %1, %65
  %1321 = smax 31, 27
  %1322 = smin %63, %63
  %1323 = and %1321, 3
  %1324 = icmp eq %1323, 2
  %1325 = select %1324, %1, %1320
  store %1325, %7
  %1326 = and %65, 127
  %1327 = gep %0, %1326
  %1328 = load i32, %1327
  %1329 = and %1319, 127
  %1330 = gep %0, %1329
  %1331 = load i32, %1330
  %1332 = load i32, %7
  %1333 = sub 36, %1332
  %1334 = load i32, %7
  %1335 = mul %1334, 1
  %1336 = smax 35, 36
  %1337 = icmp sle %1335, %1336
  %1338 = select %1337, %64, %64
  %1339 = icmp slt %1333, %1338
  %1340 = select %1339, %1, %1331
  %1341 = sub 51, 58
  %1342 = icmp sle %1340, %1341
  %1343 = select %1342, 50, %1328
  %1344 = and %65, 127
  %1345 = gep %0, %1344
  %1346 = load i32, %1345
  %1347 = smin 50, %1346
  %1348 = and %1347, %1343
  br if.end.55
if.else.44:
  %1349 = icmp eq %1306, 1
  condbr %1349, if.then.56, if.else.45
if.end.55:
  %1350 = phi i32 [%63, if.end.56], [%1348, if.then.55]
  %1351 = phi i32 [%1359, if.end.56], [%64, if.then.55]
  %1352 = phi i32 [%62, if.end.56], [%1319, if.then.55]
  br while.head.17
if.then.56:
  %1353 = xor %1, %65
  %1354 = smin %5, %5
  %1355 = and %1354, %1353
  store %1355, %7
  %1356 = mul 24, 1
  %1357 = mul %1356, 5
  store %1357, %7
  br if.end.56
if.else.45:
  %1358 = icmp eq %1306, 2
  condbr %1358, if.then.57, if.else.46
if.end.56:
  %1359 = phi i32 [%1376, if.end.57], [%64, if.then.56]
  br if.end.55
if.then.57:
  %1360 = mul %5, 5
  %1361 = and %63, 127
  %1362 = gep %a, %1361
  %1363 = load i32, %1362
  %1364 = and %1363, 17
  %1365 = and %63, 127
  %1366 = gep %0, %1365
  %1367 = load i32, %1366
  %1368 = xor %1, %1367
  %1369 = and %1364, 3
  %1370 = icmp eq %1369, 2
  %1371 = select %1370, %1, 43
  %1372 = sub %1371, %1360
  br if.end.57
if.else.46:
  %1373 = mul %65, 7
  %1374 = smin %5, %5
  %1375 = xor %1374, %1373
  store %1375, %7
  br if.end.57
if.end.57:
  %1376 = phi i32 [%64, if.else.46], [%1372, if.then.57]
  br if.end.56
while.head.17:
  %1377 = phi i32 [%1461, while.body.17], [0, if.end.55]
  %1378 = phi i32 [%1460, while.body.17], [%65, if.end.55]
  %1379 = phi i32 [%1381, while.body.17], [%1352, if.end.55]
  %1380 = icmp slt %1377, 1
  condbr %1380, while.body.17, while.end.17
while.body.17:
  %1381 = add %1378, %1377
  %1382 = smin %1381, %1351
  %1383 = sub %5, %5
  %1384 = and %1378, 127
  %1385 = gep %a, %1384
  %1386 = load i32, %1385
  %1387 = and %1381, 127
  %1388 = gep %a, %1387
  %1389 = load i32, %1388
  %1390 = and %1351, 127
  %1391 = gep %0, %1390
  %1392 = load i32, %1391
  %1393 = load i32, %7
  %1394 = smax %1393, %1392
  %1395 = and %1378, 127
  %1396 = gep %a, %1395
  %1397 = load i32, %1396
  %1398 = load i32, %7
  %1399 = smin %1, %1398
  %1400 = load i32, %7
  %1401 = add %1, %1400
  %1402 = icmp sgt %1399, %1401
  %1403 = select %1402, %1397, %5
  %1404 = add 45, %1
  %1405 = icmp sle %1403, %1404
  %1406 = select %1405, 16, %1
  %1407 = and %1394, 3
  %1408 = icmp eq %1407, 1
  %1409 = select %1408, %1389, %1386
  %1410 = and %1351, 127
  %1411 = gep %a, %1410
  %1412 = load i32, %1411
  %1413 = and %1378, 127
  %1414 = gep %0, %1413
  %1415 = load i32, %1414
  %1416 = smax %5, %1415
  %1417 = and %1378, 127
  %1418 = gep %a, %1417
  %1419 = load i32, %1418
  %1420 = icmp sgt %1416, %1419
  %1421 = select %1420, %1412, %5
  %1422 = and %1409, 3
  %1423 = icmp eq %1422, 1
  %1424 = select %1423, %1383, %1382
  store %1424, %7
  %1425 = mul %1381, 7
  %1426 = and %1381, 127
  %1427 = gep %0, %1426
  %1428 = load i32, %1427
  %1429 = and %1378, 127
  %1430 = gep %0, %1429
  %1431 = load i32, %1430
  %1432 = sub %1431, %1378
  %1433 = icmp sgt %5, %1432
  %1434 = select %1433, %1428, %1
  %1435 = add %1434, %1425
  store %1435, %7
  %1436 = add %5, %5
  %1437 = smax %1350, 53
  %1438 = icmp slt %1436, %1437
  %1439 = select %1438, 5, %1381
  %1440 = and %1381, 127
  %1441 = gep %0, %1440
  %1442 = load i32, %1441
  %1443 = and %1351, 127
  %1444 = gep %0, %1443
  %1445 = load i32, %1444
  %1446 = load i32, %7
  %1447 = and %1381, 127
  %1448 = gep %0, %1447
  %1449 = load i32, %1448
  %1450 = load i32, %7
  %1451 = xor %1450, %1449
  %1452 = and %1351, 127
  %1453 = gep %a, %1452
  %1454 = load i32, %1453
  %1455 = smin 13, %1454
  %1456 = icmp sgt %1451, %1455
  %1457 = select %1456, %1446, %1445
  %1458 = add 62, %5
  %1459 = icmp sgt %1457, %1458
  %1460 = select %1459, %1442, %1439
  %1461 = add %1377, 1
  br while.head.17
while.end.17:
  br if.end.54
if.then.58:
  br while.head.18
if.end.58:
  %1462 = phi i32 [%1496, while.end.19], [%1311, if.end.54]
  %1463 = phi i32 [%1467, while.end.19], [%1309, if.end.54]
  %1464 = phi i32 [%1531, while.end.19], [%1310, if.end.54]
  br if.end.53
while.head.18:
  %1465 = phi i32 [%1494, while.body.18], [0, if.then.58]
  %1466 = phi i32 [%1490, while.body.18], [%1310, if.then.58]
  %1467 = phi i32 [%1493, while.body.18], [%1309, if.then.58]
  %1468 = phi i32 [%1470, while.body.18], [%1311, if.then.58]
  %1469 = icmp slt %1465, 1
  condbr %1469, while.body.18, while.end.18
while.body.18:
  %1470 = add %1466, %1465
  %1471 = smin %1, %1466
  %1472 = and %1308, 127
  %1473 = gep %0, %1472
  %1474 = load i32, %1473
  %1475 = xor 59, %1474
  %1476 = add 10, %1470
  %1477 = smax %5, 7
  %1478 = and %1477, 3
  %1479 = icmp eq %1478, 2
  %1480 = select %1479, %5, %5
  %1481 = icmp slt %1476, %1480
  %1482 = select %1481, %1475, %1471
  store %1482, %7
  %1483 = and %5, %5
  %1484 = icmp sle %1483, %1470
  %1485 = select %1484, %1467, %5
  %1486 = and %1467, 127
  %1487 = gep %a, %1486
  %1488 = load i32, %1487
  %1489 = sub 61, %1488
  %1490 = sub %1489, %1485
  %1491 = load i32, %7
  %1492 = sub %1490, %1308
  %1493 = xor %1492, %1491
  %1494 = add %1465, 1
  br while.head.18
while.end.18:
  br while.head.19
while.head.19:
  %1495 = phi i32 [%1508, while.body.19], [0, while.end.18]
  %1496 = phi i32 [%1498, while.body.19], [%1468, while.end.18]
  %1497 = icmp slt %1495, 1
  condbr %1497, while.body.19, while.end.19
while.body.19:
  %1498 = add %1496, %1495
  %1499 = load i32, %7
  %1500 = smax %1499, %5
  %1501 = and %1308, 127
  %1502 = gep %0, %1501
  %1503 = load i32, %1502
  %1504 = add %1, %1503
  %1505 = and %1504, %1500
  store %1505, %7
  %1506 = smin %1, %5
  %1507 = sub %1, %1506
  store %1507, %7
  %1508 = add %1495, 1
  br while.head.19
while.end.19:
  %1509 = and %1466, 127
  %1510 = gep %0, %1509
  %1511 = load i32, %1510
  %1512 = smax %1308, %1511
  %1513 = and %1496, 127
  %1514 = gep %0, %1513
  %1515 = load i32, %1514
  %1516 = add %1515, 54
  %1517 = and %1308, 127
  %1518 = gep %0, %1517
  %1519 = load i32, %1518
  %1520 = and %1466, 127
  %1521 = gep %0, %1520
  %1522 = load i32, %1521
  %1523 = xor %1, %5
  %1524 = load i32, %7
  %1525 = and %1524, %5
  %1526 = icmp sle %1523, %1525
  %1527 = select %1526, %1522, %1519
  %1528 = xor %1467, 40
  %1529 = and %1527, 3
  %1530 = icmp eq %1529, 0
  %1531 = select %1530, %1516, %1512
  br if.end.58
while.head.20:
  %1532 = phi i32 [%1568, while.end.21], [0, if.else.43]
  %1533 = phi i32 [%1560, while.end.21], [%62, if.else.43]
  %1534 = phi i32 [%1559, while.end.21], [%63, if.else.43]
  %1535 = icmp slt %1532, %1300
  condbr %1535, while.body.20, while.end.20
while.body.20:
  %1536 = xor %1533, %1532
  %1537 = mul %1, 6
  %1538 = xor %1, 9
  %1539 = and %1538, %1537
  store %1539, %7
  br while.head.21
while.end.20:
  %1540 = and %1533, 127
  %1541 = gep %0, %1540
  %1542 = load i32, %1541
  %1543 = add %1542, %1533
  %1544 = mul %1, 7
  %1545 = and %1533, 127
  %1546 = gep %0, %1545
  %1547 = load i32, %1546
  %1548 = and %1534, 127
  %1549 = gep %0, %1548
  %1550 = load i32, %1549
  %1551 = smin %1550, %5
  %1552 = sub %1, 29
  %1553 = icmp sgt %1551, %1552
  %1554 = select %1553, %1547, 40
  %1555 = icmp sgt %1544, %1554
  %1556 = select %1555, %5, %1533
  %1557 = icmp sle %1543, %1556
  condbr %1557, if.then.59, if.else.47
while.head.21:
  %1558 = phi i32 [%1567, while.body.21], [0, while.body.20]
  %1559 = phi i32 [%1562, while.body.21], [%1534, while.body.20]
  %1560 = phi i32 [%1566, while.body.21], [%1536, while.body.20]
  %1561 = icmp slt %1558, 2
  condbr %1561, while.body.21, while.end.21
while.body.21:
  %1562 = add %1559, %1558
  %1563 = xor %1560, %1560
  %1564 = load i32, %7
  %1565 = xor %5, %1564
  %1566 = add %1565, %1563
  %1567 = add %1558, 1
  br while.head.21
while.end.21:
  %1568 = add %1532, 1
  br while.head.20
if.then.59:
  %1569 = smin %1, 19
  %1570 = load i32, %7
  %1571 = sub %5, %1570
  %1572 = icmp slt %1569, %1571
  condbr %1572, if.then.60, if.end.60
if.else.47:
  br while.head.23
if.end.59:
  %1573 = phi i32 [%1677, while.end.24], [%64, while.end.22]
  %1574 = phi i32 [%1665, while.end.24], [%1603, while.end.22]
  %1575 = phi i32 [%1666, while.end.24], [%1654, while.end.22]
  %1576 = phi i32 [%1678, while.end.24], [%1655, while.end.22]
  br if.end.53
if.then.60:
  %1577 = load i32, %7
  %1578 = add %1577, %5
  %1579 = mul %5, 1
  %1580 = smax %1579, %1578
  store %1, %7
  br if.end.60
if.end.60:
  %1581 = phi i32 [%1580, if.then.60], [%1533, if.then.59]
  %1582 = mul %5, 3
  %1583 = mul %5, 4
  %1584 = icmp sgt %1582, %1583
  %1585 = select %1584, %1, %5
  %1586 = and %1585, 3
  %1587 = icmp eq %1586, 0
  condbr %1587, if.then.61, if.else.48
if.then.61:
  %1588 = load i32, %7
  %1589 = smax %1588, %1534
  %1590 = load i32, %7
  %1591 = smin %1534, %1590
  %1592 = smax %1591, %1589
  %1593 = and %1581, %1
  %1594 = sub %1593, 26
  store %1594, %7
  %1595 = and %64, 127
  %1596 = gep %a, %1595
  %1597 = load i32, %1596
  %1598 = and 46, %1597
  %1599 = load i32, %7
  %1600 = add %5, %1599
  %1601 = xor %1600, %1598
  store %1601, %7
  br if.end.61
if.else.48:
  %1602 = icmp eq %1586, 1
  condbr %1602, if.then.62, if.else.49
if.end.61:
  %1603 = phi i32 [%1635, if.end.62], [%65, if.then.61]
  %1604 = phi i32 [%1534, if.end.62], [%1592, if.then.61]
  %1605 = phi i32 [%1636, if.end.62], [%1581, if.then.61]
  %1606 = xor %1, 7
  %1607 = and %1606, 3
  %1608 = add %1607, 1
  br while.head.22
if.then.62:
  %1609 = smax %1, %1
  %1610 = load i32, %7
  %1611 = sub %1610, 34
  %1612 = sub %1611, %1609
  store %1612, %7
  %1613 = and %65, %1
  %1614 = and %65, 127
  %1615 = gep %a, %1614
  %1616 = load i32, %1615
  %1617 = add %1616, %1
  %1618 = mul 17, 3
  %1619 = and %65, 127
  %1620 = gep %0, %1619
  %1621 = load i32, %1620
  %1622 = xor %1621, %5
  %1623 = icmp sgt %1618, %1622
  %1624 = select %1623, %1617, %1613
  %1625 = smin 2, 20
  %1626 = and %1581, 127
  %1627 = gep %a, %1626
  %1628 = load i32, %1627
  %1629 = load i32, %7
  %1630 = smin %1629, %1628
  %1631 = smax %1534, 30
  %1632 = icmp slt %1624, %1631
  %1633 = select %1632, %1630, %1625
  store %1633, %7
  br if.end.62
if.else.49:
  %1634 = icmp eq %1586, 2
  condbr %1634, if.then.63, if.else.50
if.end.62:
  %1635 = phi i32 [%1651, if.end.63], [%1624, if.then.62]
  %1636 = phi i32 [%1652, if.end.63], [%1581, if.then.62]
  br if.end.61
if.then.63:
  %1637 = smin %1, %1
  %1638 = mul %1637, 7
  br if.end.63
if.else.50:
  %1639 = and %65, 127
  %1640 = gep %a, %1639
  %1641 = load i32, %1640
  %1642 = and %1641, 127
  %1643 = gep %0, %1642
  %1644 = load i32, %1643
  %1645 = xor 49, %1644
  %1646 = and %65, 127
  %1647 = gep %a, %1646
  %1648 = load i32, %1647
  %1649 = smin %64, %1648
  %1650 = smax %1649, %1645
  store %5, %7
  br if.end.63
if.end.63:
  %1651 = phi i32 [%1650, if.else.50], [%1638, if.then.63]
  %1652 = phi i32 [%1641, if.else.50], [%1581, if.then.63]
  br if.end.62
while.head.22:
  %1653 = phi i32 [%1663, while.body.22], [0, if.end.61]
  %1654 = phi i32 [%1662, while.body.22], [%1604, if.end.61]
  %1655 = phi i32 [%1657, while.body.22], [%1605, if.end.61]
  %1656 = icmp slt %1653, %1608
  condbr %1656, while.body.22, while.end.22
while.body.22:
  %1657 = xor %1603, %1653
  %1658 = and %5, %1
  %1659 = and 53, %5
  %1660 = icmp sgt %1658, %1659
  %1661 = select %1660, %5, %5
  %1662 = mul %1661, 3
  %1663 = add %1653, 1
  br while.head.22
while.end.22:
  br if.end.59
while.head.23:
  %1664 = phi i32 [%1672, while.body.23], [0, if.else.47]
  %1665 = phi i32 [57, while.body.23], [%65, if.else.47]
  %1666 = phi i32 [%1671, while.body.23], [%1534, if.else.47]
  %1667 = icmp slt %1664, 2
  condbr %1667, while.body.23, while.end.23
while.body.23:
  %1668 = add %64, %1664
  %1669 = xor %1, %5
  %1670 = smin %5, %5
  %1671 = add %1670, %1669
  %1672 = add %1664, 1
  br while.head.23
while.end.23:
  %1673 = xor %1, 3
  %1674 = and %1673, 3
  %1675 = add %1674, 1
  br while.head.24
while.head.24:
  %1676 = phi i32 [%1687, while.body.24], [0, while.end.23]
  %1677 = phi i32 [%1686, while.body.24], [%64, while.end.23]
  %1678 = phi i32 [%1680, while.body.24], [%1533, while.end.23]
  %1679 = icmp slt %1676, %1675
  condbr %1679, while.body.24, while.end.24
while.body.24:
  %1680 = xor %1665, %1676
  %1681 = mul 29, 2
  %1682 = sub %1, 33
  %1683 = icmp sle %1681, %1682
  %1684 = select %1683, 44, %5
  %1685 = sub 11, %1
  %1686 = and %1685, %1684
  %1687 = add %1676, 1
  br while.head.24
while.end.24:
  br if.end.59
if.then.64:
  %1688 = sub 33, %5
  %1689 = and %1, 36
  %1690 = xor %1689, %1688
  store %1690, %7
  br if.end.64
if.else.51:
  %1691 = and %852, 127
  %1692 = gep %a, %1691
  %1693 = load i32, %1692
  %1694 = mul %1693, 2
  %1695 = add 7, %5
  %1696 = sub %1695, %1694
  store %1696, %7
  %1697 = load i32, %7
  %1698 = and 33, 41
  %1699 = smax %1698, %1697
  br if.end.64
if.end.64:
  %1700 = phi i32 [%1699, if.else.51], [%850, if.then.64]
  br while.head.25
while.head.25:
  %1701 = phi i32 [%1711, while.body.25], [0, if.end.64]
  %1702 = phi i32 [%1704, while.body.25], [%853, if.end.64]
  %1703 = icmp slt %1701, 1
  condbr %1703, while.body.25, while.end.25
while.body.25:
  %1704 = add %1700, %1701
  %1705 = and %851, 127
  %1706 = gep %a, %1705
  %1707 = load i32, %1706
  %1708 = smin %1700, %1707
  %1709 = smax %5, %5
  %1710 = sub %1709, %1708
  store %1710, %7
  %1711 = add %1701, 1
  br while.head.25
while.end.25:
  %1712 = add %1700, %851
  %1713 = xor %1712, %852
  %1714 = add %1713, %1702
  store %1714, %7
  ret
}
