; darm-corpus-v1 name=gen-nested-diamonds seed=2 input_seed=2 block_size=64 n=128 expect=pass
; note: generator feature class: nested and sequential diamonds
kernel @fuzz_2(%a: ptr(global), %b: ptr(global)) {
entry:
  %0 = thread.idx
  %1 = gep %b, 0
  %2 = gep %a, 0
  %3 = load i32, %2
  %4 = smax 0, %3
  %5 = icmp sle 0, %4
  condbr %5, if.then.3, if.end.3
if.then.3:
  %6 = gep %a, 0
  %7 = load i32, %6
  %8 = and %0, 127
  %9 = gep %a, %8
  %10 = load i32, %9
  %11 = smin %10, %7
  %12 = gep %a, 0
  %13 = load i32, %12
  %14 = and %0, %13
  %15 = icmp sgt %11, %14
  condbr %15, if.end.3, if.else.2
if.end.3:
  %16 = phi i32 [%0, entry], [0, if.else.2], [0, if.then.3]
  %17 = xor %16, 0
  store %17, %1
  ret
if.else.2:
  br if.end.3
}
