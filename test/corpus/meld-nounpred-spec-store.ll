; darm-corpus-v1 name=meld-nounpred-spec-store seed=8 input_seed=8 block_size=64 n=128 expect=pass
; note: regression: DARM with unpredicate=false left an unsafe gap run with a store inline, so wrong-side lanes executed it speculatively and corrupted output; fixed by scanning past pure runs in unpredicate_block
kernel @fuzz_8(%a: ptr(global), %b: ptr(global)) {
entry:
  %0 = alloc.shared 128
  %1 = thread.idx
  %2 = gep %b, 0
  %3 = block.dim
  %4 = sdiv 0, %3
  %5 = smax %4, 1
  br while.head
while.head:
  %6 = phi i32 [%10, while.body], [0, entry]
  %7 = icmp slt %6, %5
  condbr %7, while.body, while.end
while.body:
  %8 = and %1, 0
  %9 = gep %0, %8
  store 0, %9
  %10 = add %6, 1
  br while.head
while.end:
  %11 = xor 0, %1
  %12 = mul %1, 6
  %13 = icmp sgt %12, %1
  condbr %13, if.then.11, if.else.7
if.then.11:
  %14 = xor 0, %1
  %15 = and %14, 0
  %16 = icmp eq %15, 0
  condbr %16, if.then.17, if.end.17
if.else.7:
  %17 = mul %11, 5
  %18 = icmp sle 0, %17
  condbr %18, if.then.20, if.end.11
if.end.11:
  ret
if.then.17:
  %19 = gep %0, 0
  %20 = load i32, %19
  %21 = icmp sle 0, %20
  %22 = select %21, 15, 0
  br if.end.17
if.end.17:
  %23 = phi i32 [%22, if.then.17], [%1, if.then.11]
  br while.head.6
while.head.6:
  %24 = phi i32 [%28, while.body.6], [0, if.end.17]
  %25 = phi i32 [%27, while.body.6], [%23, if.end.17]
  %26 = icmp slt %24, 0
  condbr %26, while.body.6, if.end.11
while.body.6:
  %27 = xor %25, %24
  %28 = add %24, 1
  br while.head.6
if.then.20:
  %29 = and %11, 0
  %30 = gep %0, %29
  %31 = load i32, %30
  %32 = icmp sgt %31, %1
  %33 = select %32, 0, %1
  store %33, %2
  br if.end.11
}

