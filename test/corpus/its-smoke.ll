; darm-corpus-v1 name=its-smoke seed=0 input_seed=7 block_size=64 n=128 expect=pass
; note: reconvergence-model stressor: divergent-trip loop, barriers after divergence, cross-lane shared-tile read -- stack and its must agree on final memory (the xmodel leg)
kernel @its_smoke(%a: ptr(global), %b: ptr(global)) {
entry:
  %0 = alloc.shared 128
  %1 = thread.idx
  %2 = block.dim
  %3 = block.idx
  %4 = mul %3, %2
  %5 = add %4, %1
  %6 = gep %b, %5
  %7 = gep %a, %5
  %8 = load i32, %7
  %9 = and %1, 3
  %10 = gep %0, %1
  store %8, %10
  syncthreads
  br while.head
while.head:
  %11 = phi i32 [%14, while.body], [0, entry]
  %12 = phi i32 [%15, while.body], [%8, entry]
  %13 = icmp slt %11, %9
  condbr %13, while.body, while.end
while.body:
  %14 = add %11, 1
  %15 = add %12, %11
  br while.head
while.end:
  syncthreads
  %16 = and %1, 1
  %17 = icmp slt 0, %16
  condbr %17, if.then, if.else
if.then:
  %18 = sub %1, 1
  %19 = gep %0, %18
  %20 = load i32, %19
  br if.end
if.else:
  br if.end
if.end:
  %21 = phi i32 [%20, if.then], [%12, if.else]
  %22 = add %21, %12
  store %22, %6
  ret
}
