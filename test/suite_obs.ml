(* Observability subsystem (lib/obs + harness profiling): span
   balancing, serialization round-trips, Chrome schema, trace
   determinism across pool sizes, and the zero-overhead guarantee. *)

module Trace = Darm_obs.Trace
module Export = Darm_obs.Export
module Json = Darm_obs.Json
module Profile = Darm_harness.Profile
module E = Darm_harness.Experiment
module Registry = Darm_kernels.Registry
module Kernel = Darm_kernels.Kernel

let qcheck t = QCheck_alcotest.to_alcotest t

let kernel tag =
  match Registry.find tag with
  | Some k -> k
  | None -> Alcotest.failf "kernel %s not registered" tag

(* ------------------------------------------------------------------ *)
(* Span structure *)

(* random well-nested span tree: with_span can only produce balanced
   buffers, whatever the shape *)
let test_with_span_balanced_prop =
  let gen =
    QCheck2.Gen.(list_size (0 -- 40) (pair (0 -- 3) (0 -- 2)))
  in
  qcheck
    (QCheck2.Test.make ~count:200 ~name:"with_span always balances" gen
       (fun shape ->
         let t = Trace.create () in
         let rec emit depth rest =
           match rest with
           | [] -> []
           | (tid, width) :: tl ->
               if depth > 4 || width = 0 then begin
                 Trace.instant t ~tid "leaf";
                 emit depth tl
               end
               else
                 Trace.with_span t ~tid
                   (Printf.sprintf "s%d" depth)
                   (fun () -> emit (depth + 1) tl)
         in
         ignore (emit 0 shape);
         Trace.balanced t))

let test_balanced_detects_open_span () =
  let t = Trace.create () in
  Trace.begin_span t "open";
  Alcotest.(check bool) "unclosed" false (Trace.balanced t);
  Trace.end_span t "open";
  Alcotest.(check bool) "closed" true (Trace.balanced t)

let test_balanced_is_per_track () =
  (* interleaved spans on different (pid, tid) tracks must not be
     mistaken for bad nesting *)
  let t = Trace.create () in
  Trace.begin_span t ~tid:1 "a";
  Trace.begin_span t ~tid:2 "b";
  Trace.end_span t ~tid:1 "a";
  Trace.end_span t ~tid:2 "b";
  Alcotest.(check bool) "balanced" true (Trace.balanced t)

let test_with_span_balances_on_raise () =
  let t = Trace.create () in
  (try Trace.with_span t "boom" (fun () -> failwith "x") with
  | Failure _ -> ());
  Alcotest.(check bool) "end emitted on raise" true (Trace.balanced t)

let test_clock_monotone () =
  let t = Trace.create () in
  Trace.instant t ~ts:100 "late";
  Trace.instant t "auto";
  (* an explicit ts behind the clock must not run it backwards *)
  Trace.instant t ~ts:5 "early";
  let ts = List.map (fun e -> e.Trace.ev_ts) (Trace.events t) in
  Alcotest.(check (list int)) "never backwards" [ 100; 101; 102 ] ts

let test_merge_order_and_shift () =
  let mk name =
    let t = Trace.create () in
    Trace.instant t name;
    t
  in
  let a = mk "a" and b = mk "b" in
  Trace.shift_pid b 1000;
  let m = Trace.merge [ a; b ] in
  let names = List.map (fun e -> e.Trace.ev_name) (Trace.events m) in
  let pids = List.map (fun e -> e.Trace.ev_pid) (Trace.events m) in
  Alcotest.(check (list string)) "list order" [ "a"; "b" ] names;
  Alcotest.(check (list int)) "pid namespaces" [ 0; 1000 ] pids

(* ------------------------------------------------------------------ *)
(* Serialization *)

(* one buffer exercising every phase and every attribute type *)
let sample_trace () =
  let t = Trace.create () in
  Trace.begin_span t ~cat:"pass" ~pid:3 ~tid:7
    ~args:
      [
        ("s", Trace.Str "v\"\\\n");
        ("i", Trace.Int (-42));
        ("f", Trace.Float 1.5);
        ("b", Trace.Bool true);
      ]
    "span";
  Trace.instant t ~cat:"sim" ~ts:99 "tick";
  Trace.counter t ~cat:"sim" "gauge" 2.25;
  Trace.end_span t ~cat:"pass" ~pid:3 ~tid:7 "span";
  t

let test_jsonl_round_trip () =
  let t = sample_trace () in
  match Export.events_of_jsonl (Export.to_jsonl t) with
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg
  | Ok evs ->
      Alcotest.(check bool) "same events" true (evs = Trace.events t)

let test_jsonl_rejects_incomplete () =
  match Export.events_of_jsonl "{\"name\":\"x\",\"ph\":\"i\"}" with
  | Ok _ -> Alcotest.fail "event without ts/pid/tid must be rejected"
  | Error _ -> ()

let required_fields = [ "name"; "ph"; "ts"; "pid"; "tid" ]

let check_chrome_schema (doc : string) : int =
  match Json.parse doc with
  | Error msg -> Alcotest.failf "chrome trace does not parse: %s" msg
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          List.iter
            (fun ev ->
              List.iter
                (fun field ->
                  if Json.member field ev = None then
                    Alcotest.failf "event missing %S: %s" field
                      (Json.to_string ev))
                required_fields)
            evs;
          List.length evs
      | _ -> Alcotest.fail "no traceEvents array")

let test_chrome_schema () =
  let n = check_chrome_schema (Export.to_chrome (sample_trace ())) in
  Alcotest.(check int) "all events exported" 4 n

(* ------------------------------------------------------------------ *)
(* End-to-end profiling *)

let profile_point () =
  let k = kernel "BIT" in
  let transform =
    match Profile.transform_named "darm" with
    | Ok t -> t
    | Error msg -> Alcotest.fail msg
  in
  Profile.run_point ~n:128 ~transform k
    ~block_size:(List.hd k.Kernel.block_sizes)

let has_event ?arg name tr =
  List.exists
    (fun e ->
      e.Trace.ev_name = name
      &&
      match arg with
      | None -> true
      | Some a -> List.mem_assoc a e.Trace.ev_args)
    (Trace.events tr)

let test_profile_point_events () =
  let tr, r = profile_point () in
  Alcotest.(check bool) "correct" true r.E.correct;
  Alcotest.(check bool) "balanced" true (Trace.balanced tr);
  List.iter
    (fun (name, arg) ->
      Alcotest.(check bool)
        (Printf.sprintf "has %s" name)
        true
        (has_event ?arg name tr))
    [
      ("pass.run", None);
      ("pass.iteration", Some "iteration");
      (* every meld decision carries the profitability score *)
      ("meld.decision", Some "fp_s");
      ("meld.apply", None);
      ("warp.diverge", Some "t_mask");
      ("warp.reconverge", None);
      ("block", None);
      ("experiment", None);
    ]

let test_profile_pid_tracks () =
  let tr, _ = profile_point () in
  let pids =
    List.sort_uniq compare
      (List.map (fun e -> e.Trace.ev_pid) (Trace.events tr))
  in
  (* pid 0 = pass/harness, 1 = baseline sim, 2 = optimized sim *)
  Alcotest.(check (list int)) "tracks" [ 0; 1; 2 ] pids

let test_sweep_deterministic_across_jobs () =
  let k = kernel "SB1" in
  let doc jobs =
    let tr, _ = Profile.sweep ~jobs ~n:128 k in
    Export.to_jsonl tr
  in
  let reference = doc 1 in
  Alcotest.(check bool) "non-trivial" true (String.length reference > 1000);
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d bytes" jobs)
        reference (doc jobs))
    [ 2; 4 ]

let test_sweep_chrome_valid () =
  let tr, _ = Profile.sweep ~jobs:2 ~n:128 (kernel "SB1") in
  let n = check_chrome_schema (Export.to_chrome tr) in
  Alcotest.(check bool) "non-trivial" true (n = Trace.length tr && n > 50)

let test_zero_overhead () =
  (* with no buffer installed the observed computation is bit-identical:
     same cycle counts with obs absent and present *)
  let k = kernel "BIT" in
  let block_size = List.hd k.Kernel.block_sizes in
  let transform =
    match Profile.transform_named "darm" with
    | Ok t -> t
    | Error msg -> Alcotest.fail msg
  in
  let _, observed = Profile.run_point ~n:128 ~transform k ~block_size in
  let plain =
    E.run ~transform:(E.darm_transform ()) ~n:128 k ~block_size
  in
  Alcotest.(check int) "base cycles" plain.E.base.Darm_sim.Metrics.cycles
    observed.E.base.Darm_sim.Metrics.cycles;
  Alcotest.(check int) "opt cycles" plain.E.opt.Darm_sim.Metrics.cycles
    observed.E.opt.Darm_sim.Metrics.cycles;
  Alcotest.(check int) "divergent branches"
    plain.E.opt.Darm_sim.Metrics.divergent_branches
    observed.E.opt.Darm_sim.Metrics.divergent_branches

let test_write_file_validates () =
  let path = Filename.temp_file "darm_obs" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Export.write_file ~format:Export.Chrome ~path (sample_trace ());
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let doc = really_input_string ic len in
      close_in ic;
      ignore (check_chrome_schema doc);
      (* an empty buffer must fail validation instead of writing an
         unloadable file *)
      match Export.write_file ~format:Export.Chrome ~path (Trace.create ())
      with
      | () -> Alcotest.fail "empty trace must be rejected"
      | exception Failure _ -> ())

(* ------------------------------------------------------------------ *)
(* Counter events across pid tracks: sweep tasks get disjoint pid
   namespaces (Profile.pid_stride apart), and the Chrome export must
   keep each counter sample on its own track with its value intact. *)

let test_chrome_counter_tracks () =
  let stride = Profile.pid_stride in
  let pids = [ 0; stride; 2 * stride ] in
  let tr =
    Trace.merge
      (List.map
         (fun pid ->
           let t = Trace.create () in
           Trace.counter t ~cat:"sim" "block.cycles" (float_of_int (pid + 7));
           Trace.shift_pid t pid;
           t)
         pids)
  in
  let doc = Export.to_chrome tr in
  ignore (check_chrome_schema doc);
  let evs =
    match Json.parse doc with
    | Ok j -> (
        match Json.member "traceEvents" j with
        | Some (Json.List evs) -> evs
        | _ -> Alcotest.fail "no traceEvents")
    | Error msg -> Alcotest.failf "parse: %s" msg
  in
  let counters =
    List.filter (fun e -> Json.member "ph" e = Some (Json.Str "C")) evs
  in
  Alcotest.(check int) "one counter per track" (List.length pids)
    (List.length counters);
  let got_pids =
    List.filter_map (fun e ->
        match Json.member "pid" e with Some (Json.Int p) -> Some p | _ -> None)
      counters
    |> List.sort compare
  in
  Alcotest.(check (list int)) "pid namespaces preserved" pids got_pids;
  (* each sample's value must ride in args under the "value" key
     (the Trace.counter convention; Perfetto plots one series per
     args key, so every counter here is a single-series track) *)
  List.iter
    (fun e ->
      let pid =
        match Json.member "pid" e with Some (Json.Int p) -> p | _ -> -1
      in
      match Json.member "args" e with
      | Some args -> (
          match Json.member "value" args with
          | Some (Json.Float v) ->
              Alcotest.(check (float 0.0)) "counter value"
                (float_of_int (pid + 7))
                v
          | Some (Json.Int v) ->
              Alcotest.(check int) "counter value" (pid + 7) v
          | _ -> Alcotest.fail "counter args missing sample value")
      | None -> Alcotest.fail "counter event without args")
    counters

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "balanced: open span detected" `Quick
          test_balanced_detects_open_span;
        Alcotest.test_case "balanced: per-track" `Quick
          test_balanced_is_per_track;
        Alcotest.test_case "with_span: balances on raise" `Quick
          test_with_span_balances_on_raise;
        Alcotest.test_case "clock: monotone" `Quick test_clock_monotone;
        Alcotest.test_case "merge: order + pid shift" `Quick
          test_merge_order_and_shift;
        test_with_span_balanced_prop;
        Alcotest.test_case "jsonl: round-trip" `Quick test_jsonl_round_trip;
        Alcotest.test_case "jsonl: rejects incomplete events" `Quick
          test_jsonl_rejects_incomplete;
        Alcotest.test_case "chrome: schema" `Quick test_chrome_schema;
        Alcotest.test_case "chrome: counter events across pid tracks" `Quick
          test_chrome_counter_tracks;
        Alcotest.test_case "profile: pass + sim events present" `Quick
          test_profile_point_events;
        Alcotest.test_case "profile: pid track conventions" `Quick
          test_profile_pid_tracks;
        Alcotest.test_case "profile: deterministic across jobs" `Quick
          test_sweep_deterministic_across_jobs;
        Alcotest.test_case "profile: sweep chrome valid" `Quick
          test_sweep_chrome_valid;
        Alcotest.test_case "zero overhead: metrics unchanged" `Quick
          test_zero_overhead;
        Alcotest.test_case "write_file: self-validation" `Quick
          test_write_file_validates;
      ] );
  ]
