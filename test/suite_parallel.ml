(* The domain pool must be invisible in the results: same values, same
   order, same CSV bytes for any job count, and deterministic error
   selection.  Also pins the Experiment.speedup zero-cycle guard. *)

module PS = Darm_harness.Parallel_sweep
module E = Darm_harness.Experiment
module Csv = Darm_harness.Csv_export
module Metrics = Darm_sim.Metrics

let test_map_preserves_order () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * x) + 7 in
  let seq = List.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        seq
        (PS.map ~jobs f xs))
    [ 1; 2; 4; 13 ]

let test_map_more_jobs_than_tasks () =
  Alcotest.(check (list int)) "2 tasks, 8 jobs" [ 2; 4 ]
    (PS.map ~jobs:8 (fun x -> 2 * x) [ 1; 2 ])

let test_map_empty () =
  Alcotest.(check (list int)) "empty" [] (PS.map ~jobs:4 (fun x -> x) [])

let test_run_all_order () =
  let thunks = List.init 20 (fun i () -> 3 * i) in
  Alcotest.(check (list int))
    "run_all" (List.init 20 (fun i -> 3 * i))
    (PS.run_all ~jobs:4 thunks)

exception Boom of int

let test_lowest_index_error_wins () =
  List.iter
    (fun jobs ->
      match
        PS.map ~jobs
          (fun x -> if x mod 2 = 0 then raise (Boom x) else x)
          [ 1; 3; 4; 5; 6; 8 ]
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom v ->
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d raises first failure" jobs)
            4 v)
    [ 1; 4 ]

let test_error_backtrace_preserved () =
  (* the pool's deferred re-raise must carry the backtrace captured at
     the failing task, not a fresh (empty) one from the plumbing; the
     recording flag is set inside the task because worker domains do
     not inherit the caller's *)
  List.iter
    (fun jobs ->
      match
        PS.map ~jobs
          (fun x ->
            Printexc.record_backtrace true;
            if x mod 2 = 0 then raise (Boom x) else x)
          [ 1; 3; 4; 5; 6; 8 ]
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom v ->
          let bt = Printexc.get_raw_backtrace () in
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d first failing task" jobs)
            4 v;
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d backtrace survives the pool" jobs)
            true
            (Printexc.raw_backtrace_length bt > 0))
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)

(* a fresh transform instance bypasses the experiment result cache, so
   the two pool sizes genuinely recompute the sweep *)
let projected ~jobs =
  let kernels = [ Darm_kernels.Sb.sb1; Darm_kernels.Sb.sb3 ] in
  List.map
    (fun r ->
      ( r.E.tag,
        r.E.block_size,
        r.E.rewrites,
        r.E.base.Metrics.cycles,
        r.E.opt.Metrics.cycles,
        r.E.correct ))
    (E.sweep_many ~jobs ~transform:(E.darm_transform ()) ~n:256 kernels)

let test_sweep_many_deterministic () =
  let one = projected ~jobs:1 in
  let four = projected ~jobs:4 in
  Alcotest.(check int) "count" (List.length one) (List.length four);
  List.iter2
    (fun (tag, bs, rw, bc, oc, ok) (tag', bs', rw', bc', oc', ok') ->
      Alcotest.(check string) "tag" tag tag';
      Alcotest.(check int) "block size" bs bs';
      Alcotest.(check int) "rewrites" rw rw';
      Alcotest.(check int) "base cycles" bc bc';
      Alcotest.(check int) "opt cycles" oc oc';
      Alcotest.(check bool) "correct" ok ok')
    one four

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let test_csv_bytes_identical () =
  let export jobs dir =
    Csv.export ~n:256 ~jobs ~dir ();
    (read_file (Filename.concat dir "fig7.csv"),
     read_file (Filename.concat dir "fig8.csv"))
  in
  let f7a, f8a = export 1 "csv_jobs1" in
  let f7b, f8b = export 4 "csv_jobs4" in
  Alcotest.(check string) "fig7.csv bytes" f7a f7b;
  Alcotest.(check string) "fig8.csv bytes" f8a f8b;
  Alcotest.(check bool) "fig7.csv non-trivial" true
    (String.length f7a > 100 && String.split_on_char '\n' f7a |> List.length > 10)

(* ------------------------------------------------------------------ *)

let test_speedup_zero_cycles_raises () =
  let m_base = Metrics.create () in
  m_base.Metrics.cycles <- 1000;
  let m_opt = Metrics.create () in
  (* opt.cycles stays 0: the optimized kernel never executed *)
  let r =
    {
      E.tag = "FAKE";
      block_size = 64;
      transform_name = "DARM";
      rewrites = 1;
      base = m_base;
      opt = m_opt;
      correct = false;
      t_ms = 0.;
    }
  in
  match E.speedup r with
  | v -> Alcotest.failf "expected Invalid_argument, got %f" v
  | exception Invalid_argument _ -> ()

let test_default_jobs_env () =
  (* cannot mutate the environment portably mid-process, but the
     default must at least be a sane positive count *)
  Alcotest.(check bool) "positive" true (PS.default_jobs () >= 1)

let suites =
  [
    ( "parallel",
      [
        Alcotest.test_case "map preserves order" `Quick
          test_map_preserves_order;
        Alcotest.test_case "more jobs than tasks" `Quick
          test_map_more_jobs_than_tasks;
        Alcotest.test_case "empty input" `Quick test_map_empty;
        Alcotest.test_case "run_all preserves order" `Quick
          test_run_all_order;
        Alcotest.test_case "lowest-index error wins" `Quick
          test_lowest_index_error_wins;
        Alcotest.test_case "error backtrace preserved" `Quick
          test_error_backtrace_preserved;
        Alcotest.test_case "sweep_many jobs=1 = jobs=4" `Quick
          test_sweep_many_deterministic;
        Alcotest.test_case "fig7/fig8 csv bytes jobs-independent" `Slow
          test_csv_bytes_identical;
        Alcotest.test_case "speedup raises on zero cycles" `Quick
          test_speedup_zero_cycles_raises;
        Alcotest.test_case "default_jobs is positive" `Quick
          test_default_jobs_env;
      ] );
  ]
