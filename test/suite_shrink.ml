(* The delta-debugging shrinker (lib/fuzz/shrink.ml), exercised on an
   XRACE-injected smoke kernel with a checker-only predicate — cheap
   (no transformed runs) yet a real end-to-end minimization. *)

module G = Darm_fuzz.Gen
module M = Darm_fuzz.Mutate
module O = Darm_fuzz.Oracle
module S = Darm_fuzz.Shrink

let cfg = G.smoke_cfg
let seed = 3
let key = "base/checker:shared-race-ww"

(* the injected kernel, printed *)
let text0 =
  lazy
    (let f = G.generate ~cfg ~seed () in
     (match M.inject M.Xrace f with
     | Ok () -> ()
     | Error e -> Alcotest.failf "inject: %s" e);
     Darm_ir.Printer.func_to_string f)

(* base-only oracle (verifier + checkers + single-warp run) keyed on
   the injected race diagnostic *)
let still_failing text =
  let subj =
    O.subject_of_text ~name:"shrink-test" ~block_size:64
      ~n:cfg.G.array_size ~input_seed:seed text
  in
  List.exists
    (fun fl -> O.failure_key fl = key)
    (O.run_subject ~stages:[] ~warps:[ 64 ] subj)

let minimize ?max_steps () =
  S.minimize ?max_steps ~still_failing (Lazy.force text0)

(* one full minimization shared by the fixpoint/predicate/verify cases;
   the determinism case pays for its own second, independent run *)
let full = lazy (minimize ())

let suites =
  [
    ( "shrink",
      [
        Alcotest.test_case "terminates at a small fixpoint" `Quick
          (fun () ->
            let r = Lazy.force full in
            if r.S.sh_steps <= 0 then
              Alcotest.fail "shrinker accepted no reductions";
            if r.S.sh_blocks > 8 then
              Alcotest.failf "repro still has %d blocks (> 8)" r.S.sh_blocks);
        Alcotest.test_case "result still fails the predicate" `Quick
          (fun () ->
            let r = Lazy.force full in
            if not (still_failing r.S.sh_text) then
              Alcotest.fail "minimized kernel no longer fails");
        Alcotest.test_case "result parses and verifies" `Quick
          (fun () ->
            let r = Lazy.force full in
            match Darm_ir.Parser.parse_func r.S.sh_text with
            | Ok f -> Darm_ir.Verify.run_exn f
            | Error e -> Alcotest.failf "parse: %s" e);
        Alcotest.test_case "deterministic: two runs are byte-identical"
          `Quick
          (fun () ->
            let r1 = Lazy.force full and r2 = minimize () in
            Alcotest.(check string) "text" r1.S.sh_text r2.S.sh_text;
            Alcotest.(check int) "steps" r1.S.sh_steps r2.S.sh_steps);
        Alcotest.test_case "max_steps caps accepted reductions" `Quick
          (fun () ->
            let r = minimize ~max_steps:1 () in
            if r.S.sh_steps > 1 then
              Alcotest.failf "accepted %d reductions under max_steps:1"
                r.S.sh_steps;
            if not (still_failing r.S.sh_text) then
              Alcotest.fail "capped result no longer fails");
        Alcotest.test_case "rejects an input that does not fail" `Quick
          (fun () ->
            match
              S.minimize ~still_failing:(fun _ -> false) (Lazy.force text0)
            with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail "minimize accepted a passing input");
      ] );
  ]
