(* Incremental analysis manager + similarity prefilter (the caching /
   candidate-search layer): the invalidation table per edit kind,
   debug-mode cross-validation catching under-reported edits, the
   conditional loop retention, and the exactness of the meld-candidate
   prefilter — decisions must be byte-identical with it on or off, over
   the registry, the regression corpus, and fuzz-generated kernels. *)

open Darm_ir
module A = Darm_analysis
module M = A.Manager
module E = A.Edit
module G = Darm_fuzz.Gen
module C = Darm_fuzz.Corpus
module Pass = Darm_core.Pass
module Region = Darm_core.Region
module Iso = Darm_core.Isomorphism
module Prof = Darm_core.Profitability
module Kernel = Darm_kernels.Kernel
module Registry = Darm_kernels.Registry

let qcheck t = QCheck_alcotest.to_alcotest t
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Hand-built CFGs *)

(* entry -> (t | f) -> join, branching on the thread id (divergent) *)
let diamond_cfg () =
  let f = Ssa.mk_func "d" [] in
  let e = Ssa.mk_block "entry"
  and t = Ssa.mk_block "t"
  and fl = Ssa.mk_block "f"
  and j = Ssa.mk_block "join" in
  List.iter (Ssa.append_block f) [ e; t; fl; j ];
  let tidi = Ssa.mk_instr Op.Thread_idx [||] [||] Types.I32 in
  Ssa.append_instr e tidi;
  let c =
    Ssa.mk_instr (Op.Icmp Op.Islt) [| Ssa.Instr tidi; Ssa.Int 3 |] [||]
      Types.I1
  in
  Ssa.append_instr e c;
  Ssa.append_instr e
    (Ssa.mk_instr Op.Condbr [| Ssa.Instr c |] [| t; fl |] Types.Void);
  Ssa.append_instr t (Ssa.mk_instr Op.Br [||] [| j |] Types.Void);
  Ssa.append_instr fl (Ssa.mk_instr Op.Br [||] [| j |] Types.Void);
  Ssa.append_instr j (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
  (f, e, t, fl, j)

(* entry -> (d1 | d2) -> join -> head; head -> (body | exit);
   body -> head.  A diamond disjoint from the natural loop {head, body},
   so a Cfg_local edit confined to the diamond must retain the cached
   loop forest while one touching the loop body must not. *)
let loop_diamond_cfg () =
  let f = Ssa.mk_func "ld" [] in
  let e = Ssa.mk_block "entry"
  and d1 = Ssa.mk_block "d1"
  and d2 = Ssa.mk_block "d2"
  and j = Ssa.mk_block "join"
  and h = Ssa.mk_block "head"
  and b = Ssa.mk_block "body"
  and x = Ssa.mk_block "exit" in
  List.iter (Ssa.append_block f) [ e; d1; d2; j; h; b; x ];
  let tidi = Ssa.mk_instr Op.Thread_idx [||] [||] Types.I32 in
  Ssa.append_instr e tidi;
  let c =
    Ssa.mk_instr (Op.Icmp Op.Islt) [| Ssa.Instr tidi; Ssa.Int 3 |] [||]
      Types.I1
  in
  Ssa.append_instr e c;
  Ssa.append_instr e
    (Ssa.mk_instr Op.Condbr [| Ssa.Instr c |] [| d1; d2 |] Types.Void);
  Ssa.append_instr d1 (Ssa.mk_instr Op.Br [||] [| j |] Types.Void);
  Ssa.append_instr d2 (Ssa.mk_instr Op.Br [||] [| j |] Types.Void);
  Ssa.append_instr j (Ssa.mk_instr Op.Br [||] [| h |] Types.Void);
  let c2 =
    Ssa.mk_instr (Op.Icmp Op.Islt) [| Ssa.Instr tidi; Ssa.Int 2 |] [||]
      Types.I1
  in
  Ssa.append_instr h c2;
  Ssa.append_instr h
    (Ssa.mk_instr Op.Condbr [| Ssa.Instr c2 |] [| b; x |] Types.Void);
  Ssa.append_instr b (Ssa.mk_instr Op.Br [||] [| h |] Types.Void);
  Ssa.append_instr x (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
  (f, e, d1, d2, j, h, b, x)

let terminator (bl : Ssa.block) : Ssa.instr = List.hd (List.rev bl.Ssa.instrs)

(* ------------------------------------------------------------------ *)
(* Manager unit tests: the invalidation table *)

let test_reuse_and_pdt_share () =
  let f, _, _, _, _ = diamond_cfg () in
  let m = M.create ~debug:true f in
  let s = M.stats m in
  (* divergence computes a post-dominator tree internally; the explicit
     postdomtree query right after must be a cache hit *)
  let d = M.divergence m in
  ignore (M.postdomtree m);
  check "postdomtree shared with divergence" true (s.M.reuses >= 1);
  let d2 = M.divergence m in
  check "repeat query serves the same result" true (d == d2);
  check "recomputes_avoided tracks reuses" true (M.recomputes_avoided m >= 2)

let test_nothing_keeps_all () =
  let f, _, _, _, _ = diamond_cfg () in
  let m = M.create ~debug:true f in
  ignore (M.divergence m);
  ignore (M.domtree m);
  ignore (M.loops m);
  let s = M.stats m in
  let c0 = s.M.computes in
  M.note m E.Nothing;
  ignore (M.divergence m);
  ignore (M.domtree m);
  ignore (M.loops m);
  check_int "Nothing invalidates nothing" c0 s.M.computes

let test_instrs_drops_divergence_only () =
  let f, _, t, _, _ = diamond_cfg () in
  let m = M.create ~debug:true f in
  ignore (M.divergence m);
  ignore (M.domtree m);
  ignore (M.loops m);
  let s = M.stats m in
  let c0 = s.M.computes in
  M.note m (E.Instrs [ t.Ssa.bid ]);
  ignore (M.domtree m);
  ignore (M.loops m);
  check_int "domtree/loops survive Instrs" c0 s.M.computes;
  ignore (M.divergence m);
  check "divergence recomputed after Instrs" true (s.M.computes > c0)

let test_dce_drops_divergence_only () =
  let f, _, t, _, _ = diamond_cfg () in
  let m = M.create ~debug:true f in
  ignore (M.divergence m);
  ignore (M.domtree m);
  ignore (M.loops m);
  let s = M.stats m in
  let c0 = s.M.computes in
  M.note m (E.Dce [ t.Ssa.bid ]);
  ignore (M.domtree m);
  ignore (M.loops m);
  check_int "CFG-derived analyses survive Dce" c0 s.M.computes;
  ignore (M.divergence m);
  check "divergent-id set may shrink: divergence recomputed" true
    (s.M.computes > c0)

let test_cfg_local_drops_cfg () =
  let f, _, t, _, _ = diamond_cfg () in
  let m = M.create ~debug:true f in
  ignore (M.domtree m);
  ignore (M.divergence m);
  let s = M.stats m in
  let c0 = s.M.computes in
  M.note m (E.Cfg_local [ t.Ssa.bid ]);
  ignore (M.domtree m);
  ignore (M.divergence m);
  check "Cfg_local recomputes domtree and divergence" true
    (s.M.computes >= c0 + 2)

let test_invalidate_all () =
  let f, _, _, _, _ = diamond_cfg () in
  let m = M.create ~debug:true f in
  ignore (M.divergence m);
  ignore (M.domtree m);
  let s = M.stats m in
  let inv0 = s.M.invalidations in
  M.invalidate_all m;
  check "invalidate_all drops cached results" true (s.M.invalidations > inv0);
  let c0 = s.M.computes in
  ignore (M.domtree m);
  check "domtree recomputed after invalidate_all" true (s.M.computes > c0)

let test_loop_retention_positive () =
  let f, _, d1, _, _, _, _, _ = loop_diamond_cfg () in
  let fresh = A.Loops.compute f in
  let m = M.create ~debug:true f in
  ignore (M.loops m);
  let s = M.stats m in
  M.note m (E.Cfg_local [ d1.Ssa.bid ]);
  let l = M.loops m in
  check_int "diamond-confined edit retains the loop forest" 1
    s.M.loops_retained;
  check "retained forest matches a fresh compute" true (A.Loops.equal l fresh)

let test_loop_retention_negative () =
  let f, _, _, _, _, _, b, _ = loop_diamond_cfg () in
  let m = M.create ~debug:true f in
  ignore (M.loops m);
  let s = M.stats m in
  M.note m (E.Cfg_local [ b.Ssa.bid ]);
  ignore (M.loops m);
  check_int "edit inside the loop body defeats retention" 0 s.M.loops_retained

let test_debug_catches_underreport () =
  let f, e, t, _, _ = diamond_cfg () in
  let m = M.create ~debug:true f in
  ignore (M.domtree m);
  (* rewire the false arm onto the true arm WITHOUT telling the
     manager: the join's idom moves from entry to t, so the next
     cache-served domtree query must fail the debug cross-check *)
  (terminator e).Ssa.blocks.(1) <- t;
  let raised =
    try
      ignore (M.domtree m);
      false
    with M.Stale_analysis _ -> true
  in
  check "stale domtree caught by debug mode" true raised

let test_analysis_equal_sanity () =
  let f, e, _, _, _ = diamond_cfg () in
  let f2, _, _, _, _ = diamond_cfg () in
  check "Domtree.equal reflexive across recomputes" true
    (A.Domtree.equal (A.Domtree.compute f) (A.Domtree.compute f));
  check "Divergence.equal reflexive across recomputes" true
    (A.Divergence.equal (A.Divergence.compute f) (A.Divergence.compute f));
  check "Loops.equal reflexive across recomputes" true
    (A.Loops.equal (A.Loops.compute f) (A.Loops.compute f));
  (* collapse the diamond in f2's clone-by-construction: domtree differs *)
  let dt = A.Domtree.compute f in
  (terminator e).Ssa.blocks.(1) <- List.nth f.Ssa.blocks_list 1;
  check "Domtree.equal detects a CFG change" false
    (A.Domtree.equal dt (A.Domtree.compute f));
  ignore f2

(* ------------------------------------------------------------------ *)
(* Similarity vs the exhaustive search: compatible is necessary for
   isomorphism and profit_upper_bound bounds FP_S from above — the two
   facts the prefilter's exactness rests on.  Checked over every
   subgraph pair of every meldable region of the registry kernels plus
   a band of fuzz-generated kernels; the pair count is asserted
   non-zero so the property cannot pass vacuously. *)

let sg_sig lat (sg : Region.subgraph) : A.Similarity.t =
  A.Similarity.signature ~lat
    ~blocks:(Region.subgraph_block_list sg)
    ~entry:sg.Region.sg_entry
    ~in_subgraph:(Region.in_subgraph sg)
    ~exit_dest:sg.Region.sg_exit_dest

let check_bounds_on_func lat (f : Ssa.func) (matched : int ref) : unit =
  let dvg = A.Divergence.compute f in
  let dt = A.Domtree.compute f in
  let pdt = A.Domtree.compute_post f in
  let preds = Ssa.predecessors f in
  List.iter
    (fun bl ->
      match Region.detect ~preds f dvg dt pdt bl with
      | None -> ()
      | Some r ->
          let ts = Region.true_subgraphs pdt r in
          let fs = Region.false_subgraphs pdt r in
          List.iter
            (fun st ->
              List.iter
                (fun sf ->
                  let sa = sg_sig lat st and sb = sg_sig lat sf in
                  match Iso.match_subgraphs st sf with
                  | None -> ()
                  | Some pairs ->
                      incr matched;
                      check "isomorphic pair is signature-compatible" true
                        (A.Similarity.compatible sa sb);
                      let fp = Prof.fp_s lat pairs in
                      check "profit_upper_bound dominates FP_S" true
                        (A.Similarity.profit_upper_bound sa sb >= fp -. 1e-9))
                fs)
            ts)
    f.Ssa.blocks_list

let test_similarity_bounds () =
  let lat = Pass.default_config.Pass.latency in
  let matched = ref 0 in
  List.iter
    (fun (k : Kernel.t) ->
      let inst =
        k.Kernel.make ~seed:1
          ~block_size:(List.hd k.Kernel.block_sizes)
          ~n:k.Kernel.default_n
      in
      check_bounds_on_func lat inst.Kernel.func matched)
    Registry.all;
  let cfg = { G.default_cfg with G.max_depth = 4 } in
  for seed = 0 to 10 do
    check_bounds_on_func lat (G.generate ~cfg ~seed ()) matched
  done;
  check "at least one isomorphic pair exercised the bound" true (!matched > 0)

(* ------------------------------------------------------------------ *)
(* Prefilter exactness: meld decisions byte-identical with the
   prefilter on and off *)

let meld_key (m : Pass.meld_record) : string =
  Printf.sprintf "%d:%s:%s:%s:%.9g" m.Pass.m_index m.Pass.m_region
    m.Pass.m_st m.Pass.m_sf m.Pass.m_fp_s

let melds_string (s : Pass.stats) : string =
  String.concat ";" (List.map meld_key s.Pass.melds)

(* run the pass twice on independently-built copies of the same
   function and demand identical decisions and identical final IR *)
let check_identity ~tag (base : Pass.config) (mk : unit -> Ssa.func) :
    Pass.stats * Pass.stats =
  let f_on = mk () and f_off = mk () in
  let s_on = Pass.run ~config:{ base with Pass.prefilter = true } f_on in
  let s_off = Pass.run ~config:{ base with Pass.prefilter = false } f_off in
  Alcotest.(check string)
    (tag ^ ": meld decisions identical")
    (melds_string s_off) (melds_string s_on);
  Alcotest.(check string)
    (tag ^ ": final IR identical")
    (Pass.snapshot_func f_off) (Pass.snapshot_func f_on);
  (s_on, s_off)

let registry_mk (k : Kernel.t) () : Ssa.func =
  (k.Kernel.make ~seed:1
     ~block_size:(List.hd k.Kernel.block_sizes)
     ~n:k.Kernel.default_n)
    .Kernel.func

let test_prefilter_identity_registry () =
  let filtered = ref 0 in
  List.iter
    (fun (k : Kernel.t) ->
      let s_on, s_off =
        check_identity ~tag:k.Kernel.tag Pass.default_config (registry_mk k)
      in
      filtered := !filtered + s_on.Pass.candidates_prefiltered;
      check
        (k.Kernel.tag ^ ": prefilter never scores more pairs")
        true
        (s_on.Pass.pairs_scored <= s_off.Pass.pairs_scored))
    Registry.all;
  check "prefilter skipped work somewhere on the registry" true (!filtered > 0)

let test_prefilter_identity_alignment () =
  let base = { Pass.default_config with Pass.pairing = Pass.Alignment } in
  List.iter
    (fun (k : Kernel.t) ->
      ignore (check_identity ~tag:("align:" ^ k.Kernel.tag) base (registry_mk k)))
    Registry.all

(* corpus replay: every parseable corpus kernel must produce the same
   outcome (same decisions and IR, or the same failure) either way *)
let corpus_dir =
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let test_prefilter_identity_corpus () =
  let entries = if Sys.file_exists corpus_dir then C.load_dir corpus_dir else [] in
  let outcome prefilter (text : string) : string =
    match Parser.parse_func text with
    | Error e -> "unparseable:" ^ e
    | Ok f -> (
        match
          Pass.run ~config:{ Pass.default_config with Pass.prefilter } f
        with
        | s -> Printf.sprintf "ok|%s|%s" (melds_string s) (Pass.snapshot_func f)
        | exception exn -> "raised:" ^ Printexc.to_string exn)
  in
  List.iter
    (fun (path, parsed) ->
      match parsed with
      | Error _ -> ()
      | Ok entry ->
          Alcotest.(check string)
            (Filename.basename path ^ ": corpus outcome identical")
            (outcome false entry.C.en_text)
            (outcome true entry.C.en_text))
    entries

(* ------------------------------------------------------------------ *)
(* Whole-pass properties over fuzz-generated kernels *)

let fuzz_cfg = { G.default_cfg with G.max_depth = 3 }

(* incremental == from-scratch: the debug manager cross-validates every
   cache-served query along real meld edit sequences (meld, simplify,
   cleanups, Vreject rollback); any under-reported edit raises
   Stale_analysis and fails the property *)
let prop_debug_no_stale =
  qcheck
    (QCheck2.Test.make ~count:20
       ~name:"debug pass over fuzz kernels raises no Stale_analysis"
       QCheck2.Gen.(int_range 0 500)
       (fun seed ->
         let run validate =
           let f = G.generate ~cfg:fuzz_cfg ~seed () in
           ignore
             (Pass.run
                ~config:
                  {
                    Pass.default_config with
                    Pass.analysis_debug = true;
                    validate;
                  }
                f)
         in
         run Pass.Vnone;
         run Pass.Vreject;
         true))

let prop_prefilter_identity_fuzz =
  qcheck
    (QCheck2.Test.make ~count:20
       ~name:"prefilter decisions identical on fuzz kernels"
       QCheck2.Gen.(int_range 0 500)
       (fun seed ->
         ignore
           (check_identity
              ~tag:("fuzz-" ^ string_of_int seed)
              Pass.default_config
              (fun () -> G.generate ~cfg:fuzz_cfg ~seed ()));
         true))

(* the debug pass over the registry — the same gate scripts/ci.sh runs,
   pinned here so a plain `dune runtest` catches staleness too *)
let test_debug_registry () =
  List.iter
    (fun (k : Kernel.t) ->
      let f = registry_mk k () in
      let s =
        Pass.run
          ~config:{ Pass.default_config with Pass.analysis_debug = true }
          f
      in
      check
        (k.Kernel.tag ^ ": manager reused analyses")
        true
        (s.Pass.analysis_recomputes_avoided >= 0))
    Registry.all

let suites =
  [
    ( "incremental manager",
      [
        Alcotest.test_case "reuse + pdt/divergence sharing" `Quick
          test_reuse_and_pdt_share;
        Alcotest.test_case "Nothing keeps everything" `Quick
          test_nothing_keeps_all;
        Alcotest.test_case "Instrs drops divergence only" `Quick
          test_instrs_drops_divergence_only;
        Alcotest.test_case "Dce drops divergence only" `Quick
          test_dce_drops_divergence_only;
        Alcotest.test_case "Cfg_local drops CFG analyses" `Quick
          test_cfg_local_drops_cfg;
        Alcotest.test_case "invalidate_all" `Quick test_invalidate_all;
        Alcotest.test_case "loop retention: disjoint diamond edit" `Quick
          test_loop_retention_positive;
        Alcotest.test_case "loop retention: loop-body edit" `Quick
          test_loop_retention_negative;
        Alcotest.test_case "debug mode catches under-reported edit" `Quick
          test_debug_catches_underreport;
        Alcotest.test_case "analysis equal sanity" `Quick
          test_analysis_equal_sanity;
        Alcotest.test_case "debug pass over the registry" `Slow
          test_debug_registry;
        prop_debug_no_stale;
      ] );
    ( "similarity prefilter",
      [
        Alcotest.test_case "upper bound dominates FP_S" `Quick
          test_similarity_bounds;
        Alcotest.test_case "decision identity: registry (greedy)" `Quick
          test_prefilter_identity_registry;
        Alcotest.test_case "decision identity: registry (alignment)" `Quick
          test_prefilter_identity_alignment;
        Alcotest.test_case "decision identity: corpus replay" `Quick
          test_prefilter_identity_corpus;
        prop_prefilter_identity_fuzz;
      ] );
  ]
