(* Memory-model invariants.

   Flat is the contract: introducing the hierarchical model must not
   move a single Flat cycle, so the registry kernels are pinned against
   golden cycle counts recorded immediately before the hierarchy
   landed.  Hier is accounting: the L1 classification and the per-site
   attribution must close exactly against the global counters — on
   every registry kernel and on generated kernels (qcheck) — and the
   memory section of [darm_opt report] must stay byte-identical for
   any domain-pool size. *)

module E = Darm_harness.Experiment
module Report = Darm_harness.Report
module Registry = Darm_kernels.Registry
module Kernel = Darm_kernels.Kernel
module M = Darm_sim.Metrics
module Sim = Darm_sim.Simulator
module Gen = Darm_fuzz.Gen
module J = Darm_obs.Json

let qcheck t = QCheck_alcotest.to_alcotest t

let hier = Sim.Hier Sim.default_hier_params

(* ------------------------------------------------------------------ *)
(* Flat byte-identity *)

(* (tag, block size, base cycles, DARM cycles) under E.run defaults
   (seed 2022, each kernel's default n), recorded on the commit before
   the hierarchical model was introduced.  The Flat path shares all its
   accounting code with Hier, so any drift here means the "pure
   addition" claim broke. *)
let golden_flat =
  [
    ("SB1", 64, 114816, 72064);
    ("SB2", 64, 96998, 63538);
    ("SB3", 64, 210662, 121906);
    ("SB1-R", 64, 115328, 79744);
    ("SB2-R", 64, 133142, 105384);
    ("SB3-R", 64, 209190, 129070);
    ("LUD", 16, 544000, 272640);
    ("BIT", 64, 215776, 145408);
    ("DCT", 64, 24576, 22656);
    ("MS", 64, 215585, 198612);
  ]

let test_flat_golden_cycles () =
  List.iter
    (fun (tag, block_size, base_cycles, opt_cycles) ->
      match Registry.find tag with
      | None -> Alcotest.failf "golden kernel %s not registered" tag
      | Some k ->
          let r = E.run k ~block_size in
          Alcotest.(check bool) (tag ^ " correct") true r.E.correct;
          Alcotest.(check int)
            (Printf.sprintf "%s/bs%d base cycles" tag block_size)
            base_cycles r.E.base.M.cycles;
          Alcotest.(check int)
            (Printf.sprintf "%s/bs%d DARM cycles" tag block_size)
            opt_cycles r.E.opt.M.cycles)
    golden_flat

(* Under Flat the hierarchy's counters must stay silent: nothing is
   classified, nothing stalls, and mem_cycles never exceeds the total. *)
let test_flat_hier_counters_silent () =
  List.iter
    (fun (k : Kernel.t) ->
      let block_size = List.hd k.Kernel.block_sizes in
      let n = min k.Kernel.default_n 512 in
      let r = E.run ~n k ~block_size in
      List.iter
        (fun (side, (m : M.t)) ->
          let name what = Printf.sprintf "%s %s %s" k.Kernel.tag side what in
          Alcotest.(check int) (name "l1_hits") 0 m.M.l1_hits;
          Alcotest.(check int) (name "l1_misses") 0 m.M.l1_misses;
          Alcotest.(check int) (name "mem_stall_cycles") 0 m.M.mem_stall_cycles;
          Alcotest.(check int)
            (name "bank_conflict_cycles")
            0 m.M.bank_conflict_cycles;
          Alcotest.(check bool)
            (name "mem_cycles bounded")
            true
            (m.M.mem_cycles >= 0 && m.M.mem_cycles <= m.M.cycles))
        [ ("base", r.E.base); ("opt", r.E.opt) ])
    Registry.all

(* ------------------------------------------------------------------ *)
(* Hier accounting identities *)

(* Every identity the hierarchical model promises, checked on one
   metrics snapshot. *)
let check_hier_identities ~what (m : M.t) =
  let name field = Printf.sprintf "%s %s" what field in
  Alcotest.(check int)
    (name "l1 classification covers every access")
    m.M.global_accesses
    (m.M.l1_hits + m.M.l1_misses);
  let sites = List.map snd (M.site_stats m) in
  let sum f = List.fold_left (fun a s -> a + f s) 0 sites in
  Alcotest.(check int)
    (name "site accesses sum")
    m.M.global_accesses
    (sum (fun s -> s.M.ms_accesses));
  Alcotest.(check int)
    (name "site transactions sum")
    m.M.global_transactions
    (sum (fun s -> s.M.ms_transactions));
  Alcotest.(check int)
    (name "site l1 hits sum")
    m.M.l1_hits
    (sum (fun s -> s.M.ms_l1_hits));
  Alcotest.(check int)
    (name "site l1 misses sum")
    m.M.l1_misses
    (sum (fun s -> s.M.ms_l1_misses));
  Alcotest.(check int)
    (name "site stall cycles sum")
    m.M.mem_stall_cycles
    (sum (fun s -> s.M.ms_stall_cycles));
  Alcotest.(check int)
    (name "site conflict cycles sum")
    m.M.bank_conflict_cycles
    (sum (fun s -> s.M.ms_bank_conflict_cycles));
  Alcotest.(check int)
    (name "site mem cycles sum")
    m.M.mem_cycles
    (sum (fun s -> s.M.ms_cycles));
  List.iter
    (fun (id, (s : M.mem_site_stat)) ->
      Alcotest.(check int)
        (name (id ^ " per-site l1 classification"))
        s.M.ms_accesses
        (s.M.ms_l1_hits + s.M.ms_l1_misses);
      Alcotest.(check bool)
        (name (id ^ " per-site counters sane"))
        true
        (s.M.ms_issues >= 0 && s.M.ms_cycles >= 0 && s.M.ms_stall_cycles >= 0))
    (M.site_stats m)

let test_hier_identities_all_kernels () =
  List.iter
    (fun (k : Kernel.t) ->
      let block_size = List.hd k.Kernel.block_sizes in
      let n = min k.Kernel.default_n 512 in
      let r = E.run ~n ~mem_model:hier k ~block_size in
      Alcotest.(check bool) (k.Kernel.tag ^ " correct") true r.E.correct;
      check_hier_identities ~what:(k.Kernel.tag ^ " base") r.E.base;
      check_hier_identities ~what:(k.Kernel.tag ^ " opt") r.E.opt)
    Registry.all

(* The same identities must hold on arbitrary generated kernels — the
   registry exercises a handful of access shapes; the generator covers
   the long tail (divergent loops, shared tiles, switch ladders). *)
let test_hier_identities_generated =
  qcheck
    (QCheck2.Test.make ~count:25
       ~name:"hier accounting identities on generated kernels"
       QCheck2.Gen.(1 -- 10_000)
       (fun seed ->
         let inst =
           Gen.instance ~cfg:Gen.smoke_cfg ~seed ~block_size:64 ()
         in
         let config = { E.sim_config with Sim.mem_model = hier } in
         let m = E.run_instance ~config inst in
         check_hier_identities
           ~what:(Printf.sprintf "gen seed %d" seed)
           m;
         true))

(* Switching the model rescales memory latency (an L1 hit costs less
   than the flat global latency, a miss or a stall costs more) but must
   never touch anything else: non-memory cycles — total minus
   memory-charged — are identical across models, and both models agree
   on every count-shaped counter. *)
let test_hier_changes_only_memory_cycles () =
  List.iter
    (fun (k : Kernel.t) ->
      let block_size = List.hd k.Kernel.block_sizes in
      let n = min k.Kernel.default_n 512 in
      let flat = E.run ~n k ~block_size in
      let h = E.run ~n ~mem_model:hier k ~block_size in
      List.iter
        (fun (side, (f : M.t), (hm : M.t)) ->
          let name what = Printf.sprintf "%s %s %s" k.Kernel.tag side what in
          Alcotest.(check int)
            (name "non-memory cycles identical")
            (f.M.cycles - f.M.mem_cycles)
            (hm.M.cycles - hm.M.mem_cycles);
          Alcotest.(check int)
            (name "instructions") f.M.instructions hm.M.instructions;
          Alcotest.(check int)
            (name "global accesses")
            f.M.global_accesses hm.M.global_accesses;
          Alcotest.(check int)
            (name "global transactions")
            f.M.global_transactions hm.M.global_transactions;
          Alcotest.(check int)
            (name "divergent branches")
            f.M.divergent_branches hm.M.divergent_branches)
        [ ("base", flat.E.base, h.E.base); ("opt", flat.E.opt, h.E.opt) ])
    Registry.all

(* ------------------------------------------------------------------ *)
(* Report: exact sums and pool-size independence under Hier *)

let test_hier_report_exact_sums () =
  List.iter
    (fun (k : Kernel.t) ->
      let block_size = List.hd k.Kernel.block_sizes in
      let n = min k.Kernel.default_n 512 in
      let r = Report.compute ~n ~mem_model:hier k ~block_size in
      Alcotest.(check string)
        (k.Kernel.tag ^ " model tag")
        "hier" r.Report.rp_mem_model;
      let site_saved =
        List.fold_left
          (fun a mj -> a + Report.mem_site_saved mj)
          0 r.Report.rp_mem_sites
      in
      Alcotest.(check int)
        (k.Kernel.tag ^ " site deltas close the memory delta")
        (Report.mem_delta r) site_saved;
      Alcotest.(check int)
        (k.Kernel.tag ^ " memory identity closes the total delta")
        (Report.delta r)
        (Report.mem_delta r + Report.mem_residual r))
    Registry.all

let test_hier_report_byte_identical_across_jobs () =
  let points =
    List.map (fun k -> (k, List.hd k.Kernel.block_sizes)) Registry.all
  in
  let render jobs =
    let rs = Report.compute_many ~jobs ~n:256 ~mem_model:hier points in
    ( String.concat "\n" (List.map Report.to_text rs),
      J.to_string (Report.many_to_json rs) )
  in
  let t1, j1 = render 1 in
  let t2, j2 = render 2 in
  let t4, j4 = render 4 in
  Alcotest.(check string) "hier text jobs 1 = 2" t1 t2;
  Alcotest.(check string) "hier text jobs 1 = 4" t1 t4;
  Alcotest.(check string) "hier json jobs 1 = 2" j1 j2;
  Alcotest.(check string) "hier json jobs 1 = 4" j1 j4

let suites =
  [
    ( "mem-model",
      [
        Alcotest.test_case "flat: golden cycles pinned" `Slow
          test_flat_golden_cycles;
        Alcotest.test_case "flat: hier counters stay silent" `Quick
          test_flat_hier_counters_silent;
        Alcotest.test_case "hier: accounting identities (registry)" `Quick
          test_hier_identities_all_kernels;
        test_hier_identities_generated;
        Alcotest.test_case "hier: changes only memory cycles" `Quick
          test_hier_changes_only_memory_cycles;
        Alcotest.test_case "hier: report exact sums" `Quick
          test_hier_report_exact_sums;
        Alcotest.test_case "hier: report byte-identical across jobs" `Slow
          test_hier_report_byte_identical_across_jobs;
      ] );
  ]
