(* Differential fuzzing: random structured divergent kernels must
   behave identically before and after every transformation.  The
   untransformed simulation is the oracle, so this covers the whole
   pipeline end to end with no hand-written expectations.

   Seed ranges and transform thunks live in {!Testlib} and are shared
   with the generative-conformance suites (suite_gen, suite_shrink,
   suite_corpus). *)

module RK = Darm_kernels.Random_kernel
module K = Darm_kernels.Kernel
module C = Darm_core
module CK = Darm_checks
open Testlib

let small_cfg = rk_small_cfg

let run_seeds ~name ~transform ~seeds () =
  run_rk_seeds ~cfg:small_cfg ~name ~transform ~seeds ()

let suites =
  [
    ( "fuzz",
      [
        Alcotest.test_case "darm on random kernels" `Quick
          (run_seeds ~name:"darm" ~transform:darm ~seeds:(seeds 0 39));
        Alcotest.test_case "darm without unpredication" `Quick
          (run_seeds ~name:"darm-no-unpred" ~transform:darm_no_unpred
             ~seeds:(seeds 40 59));
        Alcotest.test_case "branch fusion on random kernels" `Quick
          (run_seeds ~name:"fusion" ~transform:fusion ~seeds:(seeds 60 79));
        Alcotest.test_case "tail merging on random kernels" `Quick
          (run_seeds ~name:"tail-merge" ~transform:tail_merge
             ~seeds:(seeds 80 99));
        Alcotest.test_case "cleanup pipeline on random kernels" `Quick
          (run_seeds ~name:"cleanups" ~transform:cleanups
             ~seeds:(seeds 100 119));
        Alcotest.test_case "full pipeline on random kernels" `Quick
          (run_seeds ~name:"everything" ~transform:everything
             ~seeds:(seeds 120 149));
        Alcotest.test_case "darm, deep nesting" `Quick
          (fun () ->
            let deep =
              { RK.default_cfg with array_size = 128; max_depth = 4;
                stmts_per_block = 2 }
            in
            run_rk_seeds ~cfg:deep ~name:"deep" ~transform:darm
              ~seeds:(seeds 300 314) ());
        Alcotest.test_case "darm, no shared memory" `Quick
          (fun () ->
            let cfg =
              { RK.default_cfg with array_size = 128; max_depth = 2;
                use_shared = false }
            in
            run_rk_seeds ~cfg ~name:"no-shared" ~transform:darm
              ~seeds:(seeds 320 334) ());
        Alcotest.test_case "darm, partial warp (block 32 on warp 64)"
          `Quick
          (fun () ->
            run_rk_seeds ~cfg:small_cfg ~block_size:32 ~name:"partial-warp"
              ~transform:darm ~seeds:(seeds 340 354) ());
        Alcotest.test_case "alignment pairing on random kernels" `Quick
          (fun () ->
            let transform f =
              ignore
                (C.Pass.run
                   ~config:{ C.Pass.default_config with pairing = C.Pass.Alignment }
                   ~verify_each:true f)
            in
            run_rk_seeds ~cfg:small_cfg ~name:"alignment" ~transform
              ~seeds:(seeds 360 374) ());
        Alcotest.test_case "checker cross-validation vs schedule" `Quick
          (fun () ->
            (* Cross-validate the race checker's sound verdict against
               the simulator: a kernel the checker proves race-free must
               produce schedule-independent output.  Warp size is the
               schedule knob — it changes which threads run in lockstep
               and therefore the interleaving of memory accesses — so a
               proved-free kernel must give identical results at warp
               sizes 64, 16 and 4, both before and after melding (run
               with Vfail validation, so the TV hook is exercised on
               random kernels too). *)
            let cfg =
              { RK.default_cfg with array_size = 128; max_depth = 2;
                use_shared = false }
            in
            let meld f =
              ignore
                (C.Pass.run
                   ~config:{ C.Pass.default_config with validate = C.Pass.Vfail }
                   ~verify_each:true f)
            in
            List.iter
              (fun seed ->
                let f0 = RK.generate ~cfg ~seed () in
                let report = CK.Checker.check_func f0 in
                if CK.Checker.has_errors report then
                  Alcotest.failf "seed %d: checker errors:\n%s" seed
                    (CK.Checker.report_to_string report);
                if report.CK.Checker.verdict <> CK.Race_check.Proved_free
                then
                  Alcotest.failf "seed %d: expected proved-free, got %s" seed
                    (CK.Race_check.verdict_to_string
                       report.CK.Checker.verdict);
                (* melding must not mint new checker errors either *)
                let fm = RK.generate ~cfg ~seed () in
                meld fm;
                let after = CK.Checker.check_func fm in
                (match CK.Checker.new_errors ~before:report ~after with
                | [] -> ()
                | news ->
                    Alcotest.failf "seed %d: melding introduced:\n%s" seed
                      (String.concat "\n"
                         (List.map CK.Diag.to_string news)));
                let outputs ~melded ws =
                  let inst = RK.instance ~cfg ~seed ~block_size:64 () in
                  if melded then meld inst.K.func;
                  let config =
                    { Darm_sim.Simulator.default_config with warp_size = ws }
                  in
                  ignore
                    (Darm_sim.Simulator.run ~config inst.K.func
                       ~args:inst.K.args ~global:inst.K.global inst.K.launch);
                  inst.K.read_result ()
                in
                List.iter
                  (fun melded ->
                    let base = outputs ~melded 64 in
                    List.iter
                      (fun ws ->
                        match K.first_mismatch base (outputs ~melded ws) with
                        | None -> ()
                        | Some i ->
                            Alcotest.failf
                              "seed %d melded=%b warp=%d: mismatch at %d"
                              seed melded ws i)
                      [ 16; 4 ])
                  [ false; true ])
              (seeds 400 411));
        Alcotest.test_case "printer-parser roundtrip on random kernels"
          `Quick
          (fun () ->
            List.iter
              (fun seed ->
                let f = RK.generate ~cfg:small_cfg ~seed () in
                let text = Darm_ir.Printer.func_to_string f in
                match Darm_ir.Parser.parse_func text with
                | Ok f2 ->
                    Darm_ir.Verify.run_exn f2;
                    let text2 = Darm_ir.Printer.func_to_string f2 in
                    Alcotest.(check string)
                      (Printf.sprintf "roundtrip seed %d" seed)
                      text text2
                | Error e ->
                    Alcotest.failf "seed %d: parse error: %s" seed e)
              (seeds 0 19));
      ] );
  ]
