(* Metrics registry, divergence attribution and the bench-history
   regression sentinel: deterministic snapshots, the exact-sum
   attribution identity on every registry kernel, byte-identity across
   pool sizes, degenerate inputs (empty registry, zero-divergence
   kernel, single-sample histogram), and the sentinel's firing
   conditions. *)

module MR = Darm_obs.Metrics_registry
module J = Darm_obs.Json
module M = Darm_sim.Metrics
module Pass = Darm_core.Pass
module E = Darm_harness.Experiment
module Report = Darm_harness.Report
module History = Darm_harness.History
module Registry = Darm_kernels.Registry
module Kernel = Darm_kernels.Kernel

let kernel tag =
  match Registry.find tag with
  | Some k -> k
  | None -> Alcotest.failf "kernel %s not registered" tag

let contains (hay : string) (needle : string) : bool =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_registry_counter_basic () =
  let r = MR.create () in
  MR.inc r "requests_total";
  MR.inc r ~by:2.5 "requests_total";
  MR.inc r ~labels:[ ("kernel", "BIT") ] "requests_total";
  Alcotest.(check (option (float 0.))) "unlabelled" (Some 3.5)
    (MR.find r "requests_total");
  Alcotest.(check (option (float 0.))) "labelled" (Some 1.)
    (MR.find r ~labels:[ ("kernel", "BIT") ] "requests_total");
  Alcotest.(check int) "two series" 2 (MR.cardinality r)

let test_registry_label_normalization () =
  let r = MR.create () in
  (* order and duplicates normalize away: one series, not three *)
  MR.inc r ~labels:[ ("a", "1"); ("b", "2") ] "m";
  MR.inc r ~labels:[ ("b", "2"); ("a", "1") ] "m";
  MR.inc r ~labels:[ ("a", "0"); ("b", "2"); ("a", "1") ] "m";
  Alcotest.(check int) "one series" 1 (MR.cardinality r);
  Alcotest.(check (option (float 0.))) "all three landed" (Some 3.)
    (MR.find r ~labels:[ ("a", "1"); ("b", "2") ] "m")

let test_registry_kind_conflict () =
  let r = MR.create () in
  MR.inc r "mixed";
  (match MR.set r "mixed" 1. with
  | () -> Alcotest.fail "gauge write to a counter name must raise"
  | exception Invalid_argument _ -> ());
  match MR.observe r "mixed" 1. with
  | () -> Alcotest.fail "histogram write to a counter name must raise"
  | exception Invalid_argument _ -> ()

let test_registry_negative_inc () =
  let r = MR.create () in
  match MR.inc r ~by:(-1.) "down" with
  | () -> Alcotest.fail "negative counter increment must raise"
  | exception Invalid_argument _ -> ()

(* degenerate: an empty registry snapshots to nothing, and both
   expositions stay well-formed *)
let test_registry_empty_snapshot () =
  let r = MR.create () in
  let snap = MR.snapshot r in
  Alcotest.(check int) "no families" 0 (List.length snap);
  Alcotest.(check string) "empty prometheus" "" (MR.to_prometheus snap);
  match MR.to_json snap with
  | J.Obj fields ->
      Alcotest.(check bool) "schema present" true
        (List.assoc_opt "schema" fields = Some (J.Str "darm-metrics-v1"));
      Alcotest.(check bool) "families empty" true
        (List.assoc_opt "families" fields = Some (J.List []))
  | _ -> Alcotest.fail "to_json must yield an object"

(* degenerate: one observation still produces coherent cumulative
   buckets, sum and count *)
let test_registry_single_sample_histogram () =
  let r = MR.create () in
  MR.observe r ~buckets:[ 10.; 20. ] "lat" 15.;
  match MR.snapshot r with
  | [ { MR.f_kind = MR.Histogram; f_series = [ s ]; _ } ] ->
      Alcotest.(check int) "count" 1 s.MR.s_count;
      Alcotest.(check (float 0.)) "sum" 15. s.MR.s_value;
      Alcotest.(check bool) "cumulative buckets" true
        (s.MR.s_buckets = [ (10., 0); (20., 1); (infinity, 1) ])
  | _ -> Alcotest.fail "expected one histogram family with one series"

let test_registry_deterministic () =
  let fill order =
    let r = MR.create () in
    List.iter
      (fun i ->
        match i with
        | 0 -> MR.inc r ~labels:[ ("k", "a") ] "zz_counter"
        | 1 -> MR.set r "aa_gauge" 4.25
        | 2 -> MR.observe r ~buckets:[ 1.; 2. ] "mm_hist" 1.5
        | _ -> MR.inc r ~labels:[ ("k", "b") ] "zz_counter")
      order;
    MR.help r "zz_counter" "a counter";
    r
  in
  let a = fill [ 0; 1; 2; 3 ] and b = fill [ 3; 2; 1; 0 ] in
  Alcotest.(check string) "prometheus bytes identical"
    (MR.to_prometheus (MR.snapshot a))
    (MR.to_prometheus (MR.snapshot b));
  Alcotest.(check string) "json bytes identical"
    (J.to_string (MR.to_json (MR.snapshot a)))
    (J.to_string (MR.to_json (MR.snapshot b)))

let test_registry_prometheus_format () =
  let r = MR.create () in
  MR.inc r ~labels:[ ("kernel", "BIT") ] "sim_cycles_total";
  MR.help r "sim_cycles_total" "total issue cycles";
  MR.observe r ~buckets:[ 5. ] "block_cycles" 3.;
  let doc = MR.to_prometheus (MR.snapshot r) in
  let has s =
    Alcotest.(check bool) (Printf.sprintf "contains %S" s) true
      (contains doc s)
  in
  has "# HELP sim_cycles_total total issue cycles";
  has "# TYPE sim_cycles_total counter";
  has "sim_cycles_total{kernel=\"BIT\"} 1";
  has "# TYPE block_cycles histogram";
  has "block_cycles_bucket{le=\"+Inf\"} 1";
  has "block_cycles_sum 3";
  has "block_cycles_count 1"

(* ------------------------------------------------------------------ *)
(* Simulator attribution invariants *)

let test_sim_branch_attribution_consistent () =
  let r = E.run (kernel "BIT") ~block_size:64 ~n:256 in
  let stats = M.branch_stats r.E.base in
  Alcotest.(check bool) "baseline diverges" true (stats <> []);
  let sum f = List.fold_left (fun a (_, s) -> a + f s) 0 stats in
  Alcotest.(check int) "per-branch splits sum to the aggregate"
    r.E.base.M.divergent_branches
    (sum (fun s -> s.M.br_divergences));
  Alcotest.(check bool) "divergent cycles bounded by total" true
    (sum (fun s -> s.M.br_cycles) <= r.E.base.M.cycles);
  Alcotest.(check bool) "reconvergences bounded by aggregate" true
    (sum (fun s -> s.M.br_reconvergences) <= r.E.base.M.reconvergences)

let test_metrics_add_merges_branches () =
  let a = M.create () and b = M.create () in
  let sa = M.touch_branch a "br" in
  sa.M.br_divergences <- 2;
  sa.M.br_cycles <- 10;
  let sb = M.touch_branch b "br" in
  sb.M.br_divergences <- 3;
  sb.M.br_cycles <- 5;
  let s2 = M.touch_branch b "other" in
  s2.M.br_lost_lane_cycles <- 7;
  M.add a b;
  match M.branch_stats a with
  | [ ("br", s); ("other", o) ] ->
      Alcotest.(check int) "divergences merged" 5 s.M.br_divergences;
      Alcotest.(check int) "cycles merged" 15 s.M.br_cycles;
      Alcotest.(check int) "new branch carried over" 7 o.M.br_lost_lane_cycles
  | l -> Alcotest.failf "unexpected branch set (%d entries)" (List.length l)

(* ------------------------------------------------------------------ *)
(* Pass provenance *)

let test_pass_provenance () =
  let k = kernel "BIT" in
  let inst = k.Kernel.make ~seed:1 ~block_size:64 ~n:256 in
  let stats = Pass.run inst.Kernel.func in
  Alcotest.(check int) "one record per applied meld"
    stats.Pass.melds_applied
    (List.length stats.Pass.melds);
  List.iteri
    (fun i (m : Pass.meld_record) ->
      Alcotest.(check int) "indices consecutive" (i + 1) m.Pass.m_index;
      Alcotest.(check bool) "region is a subsumed branch" true
        (List.mem m.Pass.m_region m.Pass.m_branches);
      Alcotest.(check bool) "profitability above threshold" true
        (m.Pass.m_fp_s > Pass.default_config.Pass.threshold);
      Alcotest.(check bool) "branches sorted and unique" true
        (m.Pass.m_branches = List.sort_uniq String.compare m.Pass.m_branches))
    stats.Pass.melds

(* ------------------------------------------------------------------ *)
(* Attribution report *)

(* the acceptance identity: on every registry kernel the per-meld rows
   plus the residual sum exactly to the total base-vs-opt cycle delta *)
let test_report_identity_all_kernels () =
  List.iter
    (fun (k : Kernel.t) ->
      let block_size = List.hd k.Kernel.block_sizes in
      let n = min k.Kernel.default_n 512 in
      let r = Report.compute ~n k ~block_size in
      Alcotest.(check bool) (k.Kernel.tag ^ " correct") true r.Report.rp_correct;
      let attributed =
        List.fold_left
          (fun a row -> a + Report.meld_saved row)
          0 r.Report.rp_melds
      in
      Alcotest.(check int)
        (k.Kernel.tag ^ " attribution identity")
        (Report.delta r)
        (attributed + Report.residual r);
      Alcotest.(check int)
        (k.Kernel.tag ^ " one row per meld")
        r.Report.rp_rewrites
        (List.length r.Report.rp_melds);
      (* a claimed branch id never appears in two meld rows *)
      let claimed = List.concat_map (fun m -> m.Report.mr_claimed) r.Report.rp_melds in
      Alcotest.(check int)
        (k.Kernel.tag ^ " claims disjoint")
        (List.length claimed)
        (List.length (List.sort_uniq String.compare claimed)))
    Registry.all

let test_report_byte_identical_across_jobs () =
  let points =
    List.map (fun k -> (k, List.hd k.Kernel.block_sizes)) Registry.all
  in
  let render jobs =
    let rs = Report.compute_many ~jobs ~n:256 points in
    ( String.concat "\n" (List.map Report.to_text rs),
      J.to_string (Report.many_to_json rs),
      String.concat "\n" (List.map Report.to_markdown rs) )
  in
  let t1, j1, m1 = render 1 in
  let t2, j2, m2 = render 2 in
  let t4, j4, m4 = render 4 in
  Alcotest.(check string) "text jobs 1 = 2" t1 t2;
  Alcotest.(check string) "text jobs 1 = 4" t1 t4;
  Alcotest.(check string) "json jobs 1 = 2" j1 j2;
  Alcotest.(check string) "json jobs 1 = 4" j1 j4;
  Alcotest.(check string) "markdown jobs 1 = 2" m1 m2;
  Alcotest.(check string) "markdown jobs 1 = 4" m1 m4

(* degenerate: a kernel with no divergence and no melds must say so,
   with no division anywhere (including a zero-cycle opt run) *)
let test_report_zero_divergence () =
  let base = M.create () and opt = M.create () in
  base.M.cycles <- 100;
  opt.M.cycles <- 100;
  let r =
    Report.build ~kernel:"UNIFORM" ~block_size:32 ~seed:1 ~n:64 ~correct:true
      ~rewrites:0 ~pass_ms:0. ~base ~opt ~melds:[] ()
  in
  Alcotest.(check bool) "no_divergence" true (Report.no_divergence r);
  Alcotest.(check int) "delta zero" 0 (Report.delta r);
  Alcotest.(check int) "residual zero" 0 (Report.residual r);
  let text = Report.to_text r in
  Alcotest.(check bool) "text says no divergence" true
    (contains text "no divergence");
  (match J.member "no_divergence" (Report.to_json r) with
  | Some (J.Bool true) -> ()
  | _ -> Alcotest.fail "json must flag no_divergence");
  (* zero-cycle opt run: renderers must not divide *)
  let opt0 = M.create () in
  let r0 =
    Report.build ~kernel:"DEAD" ~block_size:32 ~seed:1 ~n:64 ~correct:false
      ~rewrites:0 ~pass_ms:0. ~base ~opt:opt0 ~melds:[] ()
  in
  let t0 = Report.to_text r0 in
  Alcotest.(check bool) "zero-cycle speedup prints n/a" true
    (contains t0 "n/a")

let test_report_metrics_export () =
  let r = Report.compute ~n:256 (kernel "BIT") ~block_size:64 in
  let reg = MR.create () in
  Report.fill_metrics reg r;
  Alcotest.(check (option (float 0.))) "base cycles exported"
    (Some (float_of_int r.Report.rp_base.M.cycles))
    (MR.find reg ~labels:[ ("kernel", "BIT"); ("run", "base") ]
       "sim_cycles_total");
  let doc = MR.to_prometheus (MR.snapshot reg) in
  Alcotest.(check bool) "per-branch series present" true
    (contains doc "sim_branch_divergences_total{")

(* ------------------------------------------------------------------ *)
(* Bench history + regression sentinel *)

let entry ?(correct = true) ?(pass_ms = 1.) k bs base opt =
  {
    History.e_kernel = k;
    e_block_size = bs;
    e_transform = "DARM";
    e_mem_model = "flat";
    e_reconvergence = "stack";
    e_rewrites = 1;
    e_base_cycles = base;
    e_opt_cycles = opt;
    e_pass_ms = pass_ms;
    e_correct = correct;
  }

let record entries =
  {
    History.r_time = 1722800000.;
    r_env = History.current_env ~jobs:1 ();
    r_wall_s = Some 1.5;
    r_entries = entries;
    r_batch = None;
  }

let test_history_json_round_trip () =
  let r = record [ entry "BIT" 64 2000 1000; entry "MS" 64 500 400 ] in
  match History.record_of_json (History.record_to_json r) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok r' ->
      Alcotest.(check bool) "entries survive" true
        (r'.History.r_entries = r.History.r_entries);
      Alcotest.(check bool) "env survives" true
        (r'.History.r_env = r.History.r_env);
      Alcotest.(check bool) "wall_s survives" true
        (r'.History.r_wall_s = r.History.r_wall_s)

let test_history_rejects_wrong_schema () =
  let j =
    match History.record_to_json (record [ entry "BIT" 64 2 1 ]) with
    | J.Obj fields ->
        J.Obj
          (List.map
             (fun (k, v) ->
               if k = "schema" then (k, J.Str "darm-bogus-v9") else (k, v))
             fields)
    | _ -> Alcotest.fail "record_to_json must yield an object"
  in
  match History.record_of_json j with
  | Ok _ -> Alcotest.fail "wrong schema must be rejected"
  | Error _ -> ()

let test_history_file_round_trip () =
  let path = Filename.temp_file "darm_hist_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let a = record [ entry "BIT" 64 2000 1000 ] in
      let b = record [ entry "BIT" 64 2000 990 ] in
      History.append ~path a;
      History.append ~path b;
      match History.load ~path () with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok [ a'; b' ] ->
          Alcotest.(check bool) "first record" true
            (a'.History.r_entries = a.History.r_entries);
          Alcotest.(check bool) "second record" true
            (b'.History.r_entries = b.History.r_entries)
      | Ok l -> Alcotest.failf "expected 2 records, got %d" (List.length l))

let test_sentinel_identical_ok () =
  let r = record [ entry "BIT" 64 2000 1000; entry "MS" 64 500 400 ] in
  let d = History.diff ~baseline:r r in
  Alcotest.(check bool) "no regression on identical runs" true
    (History.diff_ok d);
  Alcotest.(check int) "both points compared" 2 d.History.d_compared

let test_sentinel_fires_on_inflation () =
  let base = record [ entry "BIT" 64 2000 1000; entry "MS" 64 500 400 ] in
  let cand = record [ entry "BIT" 64 2000 10000; entry "MS" 64 500 4000 ] in
  let d = History.diff ~baseline:base cand in
  Alcotest.(check bool) "regression detected" false (History.diff_ok d);
  (* both the per-point cycle gates and the geomean gate must fire *)
  Alcotest.(check bool) "at least 3 findings" true
    (List.length d.History.d_regressions >= 3)

let test_sentinel_tolerates_noise () =
  let base = record [ entry "BIT" 64 2000 1000 ] in
  (* +1% opt cycles: inside the default 2% threshold *)
  let cand = record [ entry "BIT" 64 2000 1010 ] in
  Alcotest.(check bool) "1% growth tolerated" true
    (History.diff_ok (History.diff ~baseline:base cand))

let test_sentinel_correctness_flip () =
  let base = record [ entry "BIT" 64 2000 1000 ] in
  let cand = record [ entry ~correct:false "BIT" 64 2000 1000 ] in
  Alcotest.(check bool) "flip is a regression" false
    (History.diff_ok (History.diff ~baseline:base cand))

let test_sentinel_pass_ms () =
  let base = record [ entry ~pass_ms:10. "BIT" 64 2000 1000 ] in
  let slow = record [ entry ~pass_ms:250. "BIT" 64 2000 1000 ] in
  (* 250 > 10 * 10 + 100 fires; 150 <= 200 does not *)
  Alcotest.(check bool) "compile-time blowup fires" false
    (History.diff_ok (History.diff ~baseline:base slow));
  let ok = record [ entry ~pass_ms:150. "BIT" 64 2000 1000 ] in
  Alcotest.(check bool) "wall-clock noise tolerated" true
    (History.diff_ok (History.diff ~baseline:base ok))

let test_sentinel_zero_cycles () =
  let base = record [ entry "BIT" 64 2000 1000 ] in
  let cand = record [ entry "BIT" 64 2000 0 ] in
  Alcotest.(check bool) "zero-cycle run is a regression" false
    (History.diff_ok (History.diff ~baseline:base cand))

let test_sentinel_disjoint_records () =
  let base = record [ entry "BIT" 64 2000 1000 ] in
  let cand = record [ entry "MS" 64 500 400 ] in
  let d = History.diff ~baseline:base cand in
  Alcotest.(check bool) "nothing comparable is a regression" false
    (History.diff_ok d);
  Alcotest.(check int) "no points compared" 0 d.History.d_compared

let test_history_of_results () =
  let r = E.run (kernel "BIT") ~block_size:64 ~n:256 in
  let rec_ = History.of_results ~jobs:1 ~time:0. [ r ] in
  match rec_.History.r_entries with
  | [ e ] ->
      Alcotest.(check string) "kernel" "BIT" e.History.e_kernel;
      Alcotest.(check int) "base cycles" r.E.base.M.cycles
        e.History.e_base_cycles;
      Alcotest.(check int) "opt cycles" r.E.opt.M.cycles
        e.History.e_opt_cycles;
      Alcotest.(check (float 0.001)) "speedup recomputed" (E.speedup r)
        (History.entry_speedup e)
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "metrics-registry",
      [
        Alcotest.test_case "counter: inc + labels" `Quick
          test_registry_counter_basic;
        Alcotest.test_case "labels: normalization" `Quick
          test_registry_label_normalization;
        Alcotest.test_case "kind conflict raises" `Quick
          test_registry_kind_conflict;
        Alcotest.test_case "negative inc raises" `Quick
          test_registry_negative_inc;
        Alcotest.test_case "empty registry snapshot" `Quick
          test_registry_empty_snapshot;
        Alcotest.test_case "single-sample histogram" `Quick
          test_registry_single_sample_histogram;
        Alcotest.test_case "snapshot deterministic across orders" `Quick
          test_registry_deterministic;
        Alcotest.test_case "prometheus exposition format" `Quick
          test_registry_prometheus_format;
      ] );
    ( "attribution",
      [
        Alcotest.test_case "sim: per-branch counters consistent" `Quick
          test_sim_branch_attribution_consistent;
        Alcotest.test_case "metrics: add merges branch stats" `Quick
          test_metrics_add_merges_branches;
        Alcotest.test_case "pass: meld provenance records" `Quick
          test_pass_provenance;
        Alcotest.test_case "report: exact-sum identity on all kernels" `Slow
          test_report_identity_all_kernels;
        Alcotest.test_case "report: byte-identical across jobs" `Slow
          test_report_byte_identical_across_jobs;
        Alcotest.test_case "report: zero-divergence degenerate" `Quick
          test_report_zero_divergence;
        Alcotest.test_case "report: metrics export" `Quick
          test_report_metrics_export;
      ] );
    ( "bench-history",
      [
        Alcotest.test_case "record: json round-trip" `Quick
          test_history_json_round_trip;
        Alcotest.test_case "record: wrong schema rejected" `Quick
          test_history_rejects_wrong_schema;
        Alcotest.test_case "file: append + load round-trip" `Quick
          test_history_file_round_trip;
        Alcotest.test_case "sentinel: identical runs pass" `Quick
          test_sentinel_identical_ok;
        Alcotest.test_case "sentinel: fires on 10x inflation" `Quick
          test_sentinel_fires_on_inflation;
        Alcotest.test_case "sentinel: tolerates 1% noise" `Quick
          test_sentinel_tolerates_noise;
        Alcotest.test_case "sentinel: correctness flip" `Quick
          test_sentinel_correctness_flip;
        Alcotest.test_case "sentinel: pass_ms thresholds" `Quick
          test_sentinel_pass_ms;
        Alcotest.test_case "sentinel: zero-cycle candidate" `Quick
          test_sentinel_zero_cycles;
        Alcotest.test_case "sentinel: disjoint records" `Quick
          test_sentinel_disjoint_records;
        Alcotest.test_case "history: built from experiment results" `Quick
          test_history_of_results;
      ] );
  ]
