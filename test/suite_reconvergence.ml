(* Reconvergence-model invariants.

   Stack is the contract: making reconvergence pluggable must not move
   a single stack-model cycle, so the registry kernels are pinned
   against golden cycle counts recorded immediately before the
   independent-thread-scheduling model landed (and the explicit
   [~reconvergence:Stack] spelling must agree with the default).  ITS
   is accounting plus liveness: the per-branch lost-lane attribution
   must close exactly against the global counter under both models,
   non-divergent kernels must cost identical cycles under both,
   barriers reached through divergent control flow must not deadlock,
   MinPC scheduling must be deterministic (byte-identical reports for
   any domain-pool size), the runaway-loop guard must be per-lane, and
   generated kernels must produce the same final memory under both
   models (qcheck). *)

module E = Darm_harness.Experiment
module Report = Darm_harness.Report
module Registry = Darm_kernels.Registry
module Kernel = Darm_kernels.Kernel
module Memory = Darm_sim.Memory
module M = Darm_sim.Metrics
module Sim = Darm_sim.Simulator
module Gen = Darm_fuzz.Gen
module Parser = Darm_ir.Parser
module J = Darm_obs.Json

let qcheck t = QCheck_alcotest.to_alcotest t
let its = Sim.Its Sim.default_its_params
let hier = Sim.Hier Sim.default_hier_params

(* ------------------------------------------------------------------ *)
(* Stack byte-identity *)

(* (tag, block size, base cycles, DARM cycles) under E.run defaults
   (seed 2022, each kernel's default n), recorded on the commit before
   reconvergence became pluggable.  The same table pins the flat memory
   model in suite_mem_model.ml; any drift here means the stack path was
   not a pure refactor. *)
let golden_stack =
  [
    ("SB1", 64, 114816, 72064);
    ("SB2", 64, 96998, 63538);
    ("SB3", 64, 210662, 121906);
    ("SB1-R", 64, 115328, 79744);
    ("SB2-R", 64, 133142, 105384);
    ("SB3-R", 64, 209190, 129070);
    ("LUD", 16, 544000, 272640);
    ("BIT", 64, 215776, 145408);
    ("DCT", 64, 24576, 22656);
    ("MS", 64, 215585, 198612);
  ]

let test_stack_golden_cycles () =
  List.iter
    (fun (tag, block_size, base_cycles, opt_cycles) ->
      match Registry.find tag with
      | None -> Alcotest.failf "golden kernel %s not registered" tag
      | Some k ->
          let r = E.run ~reconvergence:Sim.Stack k ~block_size in
          Alcotest.(check bool) (tag ^ " correct") true r.E.correct;
          Alcotest.(check int)
            (Printf.sprintf "%s/bs%d base cycles" tag block_size)
            base_cycles r.E.base.M.cycles;
          Alcotest.(check int)
            (Printf.sprintf "%s/bs%d DARM cycles" tag block_size)
            opt_cycles r.E.opt.M.cycles;
          (* the explicit spelling and the default must be the same run *)
          let d = E.run k ~block_size in
          Alcotest.(check int)
            (tag ^ " explicit Stack = default, base")
            d.E.base.M.cycles r.E.base.M.cycles;
          Alcotest.(check int)
            (tag ^ " explicit Stack = default, opt")
            d.E.opt.M.cycles r.E.opt.M.cycles)
    golden_stack

(* ------------------------------------------------------------------ *)
(* Attribution identities (both models) *)

(* The per-branch divergence attribution must close exactly against
   the global counters: splits sum to [divergent_branches], lost-lane
   cycles sum to [lost_lane_cycles], reconvergence joins never exceed
   the global count, nothing goes negative. *)
let check_attr_identities ~what (m : M.t) =
  let stats = M.branch_stats m in
  let sum f = List.fold_left (fun a (_, s) -> a + f s) 0 stats in
  List.iter
    (fun (id, (s : M.branch_stat)) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s %s counters non-negative" what id)
        true
        (s.M.br_divergences >= 0 && s.M.br_cycles >= 0
        && s.M.br_lost_lane_cycles >= 0
        && s.M.br_reconvergences >= 0))
    stats;
  Alcotest.(check int)
    (what ^ " per-branch splits sum")
    m.M.divergent_branches
    (sum (fun s -> s.M.br_divergences));
  Alcotest.(check int)
    (what ^ " per-branch lost-lane cycles sum exactly")
    m.M.lost_lane_cycles
    (sum (fun s -> s.M.br_lost_lane_cycles));
  Alcotest.(check bool)
    (what ^ " per-branch reconvergences bounded")
    true
    (sum (fun s -> s.M.br_reconvergences) <= m.M.reconvergences)

let test_attr_identities_both_models () =
  List.iter
    (fun (k : Kernel.t) ->
      let block_size = List.hd k.Kernel.block_sizes in
      let n = min k.Kernel.default_n 512 in
      List.iter
        (fun (model, rc) ->
          let r = E.run ~n ~reconvergence:rc k ~block_size in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s correct" k.Kernel.tag model)
            true r.E.correct;
          check_attr_identities
            ~what:(Printf.sprintf "%s %s base" k.Kernel.tag model)
            r.E.base;
          check_attr_identities
            ~what:(Printf.sprintf "%s %s opt" k.Kernel.tag model)
            r.E.opt)
        [ ("stack", Sim.Stack); ("its", its) ])
    Registry.all

(* ------------------------------------------------------------------ *)
(* Direct-execution helper for hand-written kernels *)

let parse text =
  match Parser.parse_func text with
  | Ok f -> f
  | Error e -> Alcotest.failf "parse: %s" e

(* Mirrors the fuzz oracle's launch convention: two global arrays with
   deterministic contents, one block-per-128/64 launch. *)
let exec ?(reconvergence = Sim.Stack) ?(max_cycles = 1_000_000)
    ?(block_size = 64) ?(n = 128) text : M.t * Memory.rv array =
  let f = parse text in
  let a_init = Kernel.random_int_array ~seed:11 ~n ~bound:1000 in
  let b_init = Kernel.random_int_array ~seed:12 ~n ~bound:1000 in
  let global = Memory.create ~space:Memory.Sp_global (2 * n) in
  let pa = Memory.alloc_of_int_array global a_init in
  let pb = Memory.alloc_of_int_array global b_init in
  let config =
    {
      Sim.default_config with
      max_cycles_per_warp = max_cycles;
      reconvergence;
    }
  in
  let launch =
    { Sim.grid_dim = max 1 (n / block_size); block_dim = block_size }
  in
  let m = Sim.run ~config f ~args:[| pa; pb |] ~global launch in
  let out =
    Array.append
      (Memory.read_int_array global pa n)
      (Memory.read_int_array global pb n)
    |> Kernel.ints
  in
  (m, out)

(* ------------------------------------------------------------------ *)
(* Non-divergent kernels: the models must agree cycle-for-cycle *)

let uniform_kernel =
  {|
kernel @uniform(%a: ptr(global), %b: ptr(global)) {
entry:
  %0 = thread.idx
  %1 = block.dim
  %2 = block.idx
  %3 = mul %2, %1
  %4 = add %3, %0
  %5 = gep %a, %4
  %6 = load i32, %5
  %7 = add %6, 7
  %8 = gep %b, %4
  store %7, %8
  ret
}
|}

let test_uniform_identical_cycles () =
  let ms, out_s = exec ~reconvergence:Sim.Stack uniform_kernel in
  let mi, out_i = exec ~reconvergence:its uniform_kernel in
  Alcotest.(check int) "cycles identical" ms.M.cycles mi.M.cycles;
  Alcotest.(check int) "instructions identical" ms.M.instructions
    mi.M.instructions;
  Alcotest.(check int) "no divergence (stack)" 0 ms.M.divergent_branches;
  Alcotest.(check int) "no divergence (its)" 0 mi.M.divergent_branches;
  Alcotest.(check bool) "memory identical" true
    (Kernel.rv_array_equal out_s out_i)

(* ------------------------------------------------------------------ *)
(* Barrier reached through divergent control flow *)

(* Lanes take divergent-trip loops, then all meet a block-uniform
   barrier and read a neighbour's shared-tile cell.  Under ITS the
   lanes arrive at the barrier at different points of the schedule;
   the convergence optimizer must still release them (no deadlock) and
   the final memory must match the stack model. *)
let barrier_kernel =
  {|
kernel @its_smoke(%a: ptr(global), %b: ptr(global)) {
entry:
  %0 = alloc.shared 128
  %1 = thread.idx
  %2 = block.dim
  %3 = block.idx
  %4 = mul %3, %2
  %5 = add %4, %1
  %6 = gep %b, %5
  %7 = gep %a, %5
  %8 = load i32, %7
  %9 = and %1, 3
  %10 = gep %0, %1
  store %8, %10
  syncthreads
  br while.head
while.head:
  %11 = phi i32 [%14, while.body], [0, entry]
  %12 = phi i32 [%15, while.body], [%8, entry]
  %13 = icmp slt %11, %9
  condbr %13, while.body, while.end
while.body:
  %14 = add %11, 1
  %15 = add %12, %11
  br while.head
while.end:
  syncthreads
  %16 = and %1, 1
  %17 = icmp slt 0, %16
  condbr %17, if.then, if.else
if.then:
  %18 = sub %1, 1
  %19 = gep %0, %18
  %20 = load i32, %19
  br if.end
if.else:
  br if.end
if.end:
  %21 = phi i32 [%20, if.then], [%12, if.else]
  %22 = add %21, %12
  store %22, %6
  ret
}
|}

let test_barrier_under_divergence () =
  let ms, out_s = exec ~reconvergence:Sim.Stack barrier_kernel in
  let mi, out_i = exec ~reconvergence:its barrier_kernel in
  Alcotest.(check bool) "stack run retired cycles" true (ms.M.cycles > 0);
  Alcotest.(check bool) "its run retired cycles" true (mi.M.cycles > 0);
  Alcotest.(check bool) "final memory identical" true
    (Kernel.rv_array_equal out_s out_i);
  check_attr_identities ~what:"barrier-kernel its" mi

(* ------------------------------------------------------------------ *)
(* Per-lane runaway-loop guard *)

(* Odd and even lanes run disjoint 200-trip loops.  The stack model
   serializes the two arms on one warp-wide budget (~1600+ issues);
   under ITS each lane only spends budget on issues it participates in
   (~800).  A 1200-issue budget therefore separates the two models:
   ITS completes, the stack model must trip its guard — proof the ITS
   guard is per-lane, not per-warp-total. *)
let perlane_kernel =
  {|
kernel @perlane(%a: ptr(global), %b: ptr(global)) {
entry:
  %0 = thread.idx
  %1 = and %0, 1
  %2 = icmp slt 0, %1
  condbr %2, odd.head, even.head
odd.head:
  %3 = phi i32 [%5, odd.body], [0, entry]
  %4 = icmp slt %3, 200
  condbr %4, odd.body, odd.end
odd.body:
  %5 = add %3, 1
  br odd.head
odd.end:
  ret
even.head:
  %6 = phi i32 [%8, even.body], [0, entry]
  %7 = icmp slt %6, 200
  condbr %7, even.body, even.end
even.body:
  %8 = add %6, 1
  br even.head
even.end:
  ret
}
|}

(* Odd lanes spin forever; the guard must turn the hang into a
   deterministic [Sim_error] under both models. *)
let runaway_kernel =
  {|
kernel @runaway(%a: ptr(global), %b: ptr(global)) {
entry:
  %0 = thread.idx
  %1 = and %0, 1
  %2 = icmp slt 0, %1
  condbr %2, spin, exit
spin:
  br spin
exit:
  ret
}
|}

let test_per_lane_budget () =
  (match exec ~reconvergence:its ~max_cycles:1200 perlane_kernel with
  | m, _ -> Alcotest.(check bool) "its completes" true (m.M.cycles > 0)
  | exception Sim.Sim_error e ->
      Alcotest.failf "its tripped a per-lane budget it should fit: %s" e);
  (match exec ~reconvergence:Sim.Stack ~max_cycles:1200 perlane_kernel with
  | _ -> Alcotest.fail "stack budget should exhaust on the serialized arms"
  | exception Sim.Sim_error _ -> ())

let test_runaway_guard_both_models () =
  List.iter
    (fun (model, rc) ->
      match exec ~reconvergence:rc ~max_cycles:10_000 runaway_kernel with
      | _ -> Alcotest.failf "%s: runaway loop must trip the guard" model
      | exception Sim.Sim_error _ -> ())
    [ ("stack", Sim.Stack); ("its", its) ]

(* ------------------------------------------------------------------ *)
(* MinPC determinism: byte-identical reports for any pool size *)

let test_its_report_byte_identical_across_jobs () =
  let points =
    List.map (fun k -> (k, List.hd k.Kernel.block_sizes)) Registry.all
  in
  let render jobs =
    let rs = Report.compute_many ~jobs ~n:256 ~reconvergence:its points in
    List.iter
      (fun r ->
        Alcotest.(check string)
          (r.Report.rp_kernel ^ " model tag")
          "its" r.Report.rp_reconvergence)
      rs;
    ( String.concat "\n" (List.map Report.to_text rs),
      J.to_string (Report.many_to_json rs) )
  in
  let t1, j1 = render 1 in
  let t2, j2 = render 2 in
  let t4, j4 = render 4 in
  Alcotest.(check string) "its text jobs 1 = 2" t1 t2;
  Alcotest.(check string) "its text jobs 1 = 4" t1 t4;
  Alcotest.(check string) "its json jobs 1 = 2" j1 j2;
  Alcotest.(check string) "its json jobs 1 = 4" j1 j4

(* ------------------------------------------------------------------ *)
(* Cross-model differential on generated kernels *)

let test_xmodel_generated =
  qcheck
    (QCheck2.Test.make ~count:25
       ~name:"stack and its agree on final memory (generated kernels)"
       QCheck2.Gen.(1 -- 10_000)
       (fun seed ->
         let run rc =
           (* a fresh instance per run: the kernel writes its buffers *)
           let inst = Gen.instance ~cfg:Gen.smoke_cfg ~seed ~block_size:64 () in
           let config = { E.sim_config with Sim.reconvergence = rc } in
           let m = E.run_instance ~config inst in
           (m, inst.Kernel.read_result ())
         in
         let _, out_s = run Sim.Stack in
         let mi, out_i = run its in
         check_attr_identities
           ~what:(Printf.sprintf "gen seed %d its" seed)
           mi;
         Kernel.rv_array_equal out_s out_i))

(* ------------------------------------------------------------------ *)
(* Composition: Hier x Its *)

let test_hier_its_composition () =
  List.iter
    (fun (k : Kernel.t) ->
      let block_size = List.hd k.Kernel.block_sizes in
      let n = min k.Kernel.default_n 512 in
      let r = E.run ~n ~mem_model:hier ~reconvergence:its k ~block_size in
      Alcotest.(check bool) (k.Kernel.tag ^ " correct") true r.E.correct;
      List.iter
        (fun (side, (m : M.t)) ->
          Alcotest.(check int)
            (Printf.sprintf "%s %s l1 classification covers every access"
               k.Kernel.tag side)
            m.M.global_accesses
            (m.M.l1_hits + m.M.l1_misses);
          check_attr_identities
            ~what:(Printf.sprintf "%s hier+its %s" k.Kernel.tag side)
            m)
        [ ("base", r.E.base); ("opt", r.E.opt) ])
    Registry.all

let suites =
  [
    ( "reconvergence",
      [
        Alcotest.test_case "stack: golden cycles pinned" `Slow
          test_stack_golden_cycles;
        Alcotest.test_case "attribution identities under both models" `Quick
          test_attr_identities_both_models;
        Alcotest.test_case "non-divergent kernels cost identical cycles"
          `Quick test_uniform_identical_cycles;
        Alcotest.test_case "its: barrier under divergence is deadlock-free"
          `Quick test_barrier_under_divergence;
        Alcotest.test_case "its: runaway guard is per-lane" `Quick
          test_per_lane_budget;
        Alcotest.test_case "runaway loop trips the guard under both models"
          `Quick test_runaway_guard_both_models;
        Alcotest.test_case "its: report byte-identical across jobs" `Slow
          test_its_report_byte_identical_across_jobs;
        test_xmodel_generated;
        Alcotest.test_case "hier x its: composition invariants" `Quick
          test_hier_its_composition;
      ] );
  ]
