(* GPU sanity checkers: dataflow framework, affine address analysis,
   barrier-divergence, shared-memory races, hygiene lints, and the
   meld translation-validation hook. *)

open Darm_ir
module A = Darm_analysis
module CK = Darm_checks
module D = Dsl
module K = Darm_kernels
module IntSet = Set.Make (Int)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- helpers ------------------------------------------------------- *)

let diag_ids (ds : CK.Diag.t list) : string list =
  List.map (fun d -> d.CK.Diag.id) ds

let has_id id ds = List.mem id (diag_ids ds)

let build_shared_kernel name body =
  D.build_kernel ~name ~params:[ ("a", Types.Ptr Types.Global) ] body

(* --- dataflow framework -------------------------------------------- *)

let test_dataflow_reaching_blocks () =
  (* domain: set of block ids seen on some path; at the join of a
     diamond both arms must be present *)
  let f =
    build_shared_kernel "df" (fun ctx _ ->
        let tid = D.tid ctx in
        D.if_ ctx (D.slt ctx tid (D.i32 3)) (fun () -> ()) (fun () -> ()))
  in
  let module S = CK.Dataflow.Forward (struct
    type t = IntSet.t

    let equal = IntSet.equal
    let join = IntSet.union
  end) in
  let r =
    S.solve ~entry:IntSet.empty ~init:IntSet.empty
      ~transfer:(fun b fact -> IntSet.add b.Ssa.bid fact)
      f
  in
  let block name =
    List.find (fun b -> b.Ssa.bname = name) f.Ssa.blocks_list
  in
  let then_ = block "if.then" and else_ = block "if.else" in
  let join_in = S.block_in r (block "if.end") in
  check "then arm reaches join" true (IntSet.mem then_.Ssa.bid join_in);
  check "else arm reaches join" true (IntSet.mem else_.Ssa.bid join_in);
  check "join not in its own in-fact" false
    (IntSet.mem (block "if.end").Ssa.bid join_in);
  (* entry's in-fact is the entry fact *)
  check "entry in-fact empty" true
    (IntSet.is_empty (S.block_in r (Ssa.entry_block f)))

(* --- affine analysis ----------------------------------------------- *)

let test_affine_forms () =
  let f =
    D.build_kernel ~name:"af"
      ~params:[ ("a", Types.Ptr Types.Global); ("n", Types.I32) ]
      (fun ctx params ->
        let a = List.nth params 0 and n = List.nth params 1 in
        let tid = D.tid ctx in
        let i1 = D.add ctx (D.mul ctx tid (D.i32 4)) (D.i32 2) in
        let i2 = D.add ctx tid n in
        let i3 = D.xor ctx tid (D.i32 5) in
        let i4 = D.sub ctx (D.add ctx n (D.i32 7)) n in
        D.store ctx (D.i32 0) (D.gep ctx a i1);
        D.store ctx (D.i32 0) (D.gep ctx a i2);
        D.store ctx (D.i32 0) (D.gep ctx a i3);
        D.store ctx (D.i32 0) (D.gep ctx a i4))
  in
  let dvg = A.Divergence.compute f in
  let af = CK.Affine.compute dvg f in
  let geps =
    List.rev
      (Ssa.fold_instrs f
         (fun acc i -> if i.Ssa.op = Op.Gep then i :: acc else acc)
         [])
  in
  let index_av k =
    CK.Affine.value_av af (List.nth geps k).Ssa.operands.(1)
  in
  (match index_av 0 with
  | CK.Affine.Form { c; m; k; _ } ->
      check_int "4*tid+2: c" 4 c;
      check_int "4*tid+2: m" 0 m;
      check_int "4*tid+2: k" 2 k
  | CK.Affine.Top -> Alcotest.fail "4*tid+2 should be affine");
  (match index_av 1 with
  | CK.Affine.Form { c; m; sym = Some (Ssa.Param p); k } ->
      check_int "tid+n: c" 1 c;
      check_int "tid+n: m" 1 m;
      check_int "tid+n: k" 0 k;
      check "tid+n: sym is n" true (p.Ssa.pname = "n")
  | _ -> Alcotest.fail "tid+n should carry the n symbol");
  (* xor of tid fits no rule and is divergent: Top *)
  check "tid^5 unknown" true (index_av 2 = CK.Affine.Top);
  (* (n+7) - n: the uniform symbol cancels *)
  (match index_av 3 with
  | CK.Affine.Form { c = 0; m = 0; sym = None; k = 7 } -> ()
  | _ -> Alcotest.fail "(n+7)-n should fold to the constant 7")

let test_affine_uniform_fallback () =
  (* n/2 fits no structural rule but is uniform: it becomes its own
     symbol, so it compares equal to itself across accesses *)
  let f =
    D.build_kernel ~name:"af2"
      ~params:[ ("a", Types.Ptr Types.Global); ("n", Types.I32) ]
      (fun ctx params ->
        let a = List.nth params 0 and n = List.nth params 1 in
        let half = D.sdiv ctx n (D.i32 2) in
        D.store ctx (D.i32 0) (D.gep ctx a (D.add ctx (D.tid ctx) half)))
  in
  let dvg = A.Divergence.compute f in
  let af = CK.Affine.compute dvg f in
  let gep =
    Ssa.fold_instrs f
      (fun acc i -> if i.Ssa.op = Op.Gep then Some i else acc)
      None
    |> Option.get
  in
  match CK.Affine.value_av af gep.Ssa.operands.(1) with
  | CK.Affine.Form { c = 1; m = 1; sym = Some (Ssa.Instr s); k = 0 } ->
      check "sym is the sdiv" true (s.Ssa.op = Op.Ibin Op.Sdiv)
  | _ -> Alcotest.fail "tid + n/2 should be affine in a uniform symbol"

(* --- barrier-divergence -------------------------------------------- *)

let test_barrier_divergent_guard () =
  let f =
    build_shared_kernel "bd" (fun ctx _ ->
        let tid = D.tid ctx in
        D.if_then ctx (D.slt ctx tid (D.i32 16)) (fun () -> D.sync ctx))
  in
  let ds = CK.Barrier_check.check f in
  check "flagged" true (has_id CK.Barrier_check.id_barrier_divergence ds);
  check "is an error" true (List.for_all CK.Diag.is_error ds)

let test_barrier_after_join_clean () =
  (* barrier at the reconvergence point of a divergent diamond: fine *)
  let f =
    build_shared_kernel "bj" (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        let g = D.gep ctx a tid in
        D.if_ ctx
          (D.slt ctx tid (D.i32 16))
          (fun () -> D.store ctx (D.i32 1) g)
          (fun () -> D.store ctx (D.i32 2) g);
        D.sync ctx)
  in
  check "clean" true (CK.Barrier_check.check f = [])

let test_barrier_uniform_guard_clean () =
  (* barrier under a uniform branch: every thread takes the same path *)
  let f =
    D.build_kernel ~name:"bu"
      ~params:[ ("a", Types.Ptr Types.Global); ("n", Types.I32) ]
      (fun ctx params ->
        let n = List.nth params 1 in
        D.if_then ctx (D.slt ctx n (D.i32 64)) (fun () -> D.sync ctx))
  in
  check "clean" true (CK.Barrier_check.check f = [])

let test_barrier_temporal_divergence () =
  (* barrier inside a loop whose trip count depends on tid: threads
     leave the loop at different iterations, so the barrier diverges *)
  let f =
    build_shared_kernel "bt" (fun ctx _ ->
        let tid = D.tid ctx in
        D.for_up ctx ~from:(D.i32 0) ~until:tid (fun _ -> D.sync ctx))
  in
  let ds = CK.Barrier_check.check f in
  check "temporal flagged" true
    (has_id CK.Barrier_check.id_barrier_divergence ds)

let test_barrier_uniform_loop_clean () =
  let f =
    D.build_kernel ~name:"bl"
      ~params:[ ("a", Types.Ptr Types.Global); ("n", Types.I32) ]
      (fun ctx params ->
        let n = List.nth params 1 in
        D.for_up ctx ~from:(D.i32 0) ~until:n (fun _ -> D.sync ctx))
  in
  check "clean" true (CK.Barrier_check.check f = [])

let test_barrier_open_in () =
  let f =
    build_shared_kernel "bo" (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        D.if_then ctx
          (D.slt ctx tid (D.i32 16))
          (fun () -> D.store ctx (D.i32 1) (D.gep ctx a tid)))
  in
  let t = CK.Barrier_check.analyze f in
  let block name =
    List.find (fun b -> b.Ssa.bname = name) f.Ssa.blocks_list
  in
  check "then-arm under divergence" true
    (CK.Barrier_check.open_in t (block "if.then") <> []);
  check "join reconverged" true
    (CK.Barrier_check.open_in t (block "if.end") = [])

(* --- shared-memory races ------------------------------------------- *)

let test_race_negative_kernels () =
  let report tag =
    let k = Option.get (K.Registry.find_any tag) in
    let inst = k.K.Kernel.make ~seed:1 ~block_size:64 ~n:k.K.Kernel.default_n in
    CK.Checker.check_func inst.K.Kernel.func
  in
  let xbar = report "XBAR" in
  check "XBAR has errors" true (CK.Checker.has_errors xbar);
  check "XBAR id" true
    (has_id CK.Barrier_check.id_barrier_divergence xbar.CK.Checker.diags);
  let xrace = report "XRACE" in
  check "XRACE ww" true
    (has_id CK.Race_check.id_race_ww xrace.CK.Checker.diags);
  check "XRACE verdict racy" true
    (xrace.CK.Checker.verdict = CK.Race_check.Racy);
  let xrw = report "XRW" in
  check "XRW rw" true (has_id CK.Race_check.id_race_rw xrw.CK.Checker.diags);
  check "XRW no ww" false
    (has_id CK.Race_check.id_race_ww xrw.CK.Checker.diags)

let test_race_barrier_separates () =
  (* the classic correct pattern: write your slot, sync, read your
     neighbour's slot *)
  let f =
    build_shared_kernel "ok1" (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        let s = D.shared_array ctx 65 in
        D.store ctx (D.load ctx (D.gep ctx a tid)) (D.gep ctx s tid);
        D.sync ctx;
        let v = D.load ctx (D.gep ctx s (D.add ctx tid (D.i32 1))) in
        D.store ctx v (D.gep ctx a tid))
  in
  let r = CK.Race_check.analyze f in
  check "no diags" true (CK.Race_check.diags r = []);
  check "proved free" true
    (CK.Race_check.verdict r = CK.Race_check.Proved_free)

let test_race_distinct_roots () =
  (* same indexes into two different shared arrays never conflict *)
  let f =
    build_shared_kernel "ok2" (fun ctx params ->
        let a = List.hd params in
        let tid = D.tid ctx in
        let s1 = D.shared_array ctx 64 in
        let s2 = D.shared_array ctx 64 in
        D.store ctx (D.i32 1) (D.gep ctx s1 tid);
        D.store ctx (D.load ctx (D.gep ctx s2 tid)) (D.gep ctx a tid);
        ignore a)
  in
  let r = CK.Race_check.analyze f in
  check "no diags" true (CK.Race_check.diags r = [])

let test_race_uniform_write () =
  (* every thread writes s[0]: a definite write-write race *)
  let f =
    build_shared_kernel "uw" (fun ctx _ ->
        let s = D.shared_array ctx 4 in
        D.store ctx (D.i32 1) (D.gep ctx s (D.i32 0)))
  in
  let r = CK.Race_check.analyze f in
  check "ww error" true (has_id CK.Race_check.id_race_ww (CK.Race_check.diags r));
  check "racy" true (CK.Race_check.verdict r = CK.Race_check.Racy)

let test_race_solo_guard () =
  (* ... unless a tid == k guard makes the write single-threaded *)
  let f =
    build_shared_kernel "solo" (fun ctx _ ->
        let tid = D.tid ctx in
        let s = D.shared_array ctx 4 in
        D.if_then ctx
          (D.eq ctx tid (D.i32 0))
          (fun () -> D.store ctx (D.i32 1) (D.gep ctx s (D.i32 0))))
  in
  let r = CK.Race_check.analyze f in
  check "no error" true
    (List.filter CK.Diag.is_error (CK.Race_check.diags r) = [])

let test_race_divergent_demoted () =
  (* a definite overlap under a divergent branch is only a warning:
     lockstep execution can mask it *)
  let f =
    build_shared_kernel "dw" (fun ctx _ ->
        let tid = D.tid ctx in
        let s = D.shared_array ctx 65 in
        D.if_then ctx
          (D.slt ctx tid (D.i32 16))
          (fun () ->
            D.store ctx (D.i32 1) (D.gep ctx s tid);
            D.store ctx (D.i32 1) (D.gep ctx s (D.add ctx tid (D.i32 1)))))
  in
  let ds = CK.Race_check.diags (CK.Race_check.analyze f) in
  check "demoted to warning" true
    (has_id CK.Race_check.id_race_divergent ds);
  check "no errors" true (List.filter CK.Diag.is_error ds = [])

let test_race_strided_proved_free () =
  (* s[4*tid + j] for uniform j in 0..3 would alias only if the offset
     difference were stride-aligned; here it never is *)
  let f =
    build_shared_kernel "st" (fun ctx _ ->
        let tid = D.tid ctx in
        let s = D.shared_array ctx 260 in
        let base = D.mul ctx tid (D.i32 4) in
        D.store ctx (D.i32 1) (D.gep ctx s base);
        D.store ctx (D.i32 2) (D.gep ctx s (D.add ctx base (D.i32 1))))
  in
  let r = CK.Race_check.analyze f in
  check "no diags" true (CK.Race_check.diags r = []);
  check "proved free" true
    (CK.Race_check.verdict r = CK.Race_check.Proved_free)

(* --- hygiene lints -------------------------------------------------- *)

let test_hygiene_lints () =
  let f = Ssa.mk_func "hy" [] in
  let e = Ssa.mk_block "entry" and b = Ssa.mk_block "b" in
  List.iter (Ssa.append_block f) [ e; b ];
  Ssa.append_instr e (Ssa.mk_instr Op.Br [||] [| b |] Types.Void);
  (* alloc.shared outside the entry block *)
  Ssa.append_instr b
    (Ssa.mk_instr (Op.Alloc_shared 8) [||] [||] (Types.Ptr Types.Shared));
  (* poison arithmetic *)
  Ssa.append_instr b
    (Ssa.mk_instr (Op.Ibin Op.Add)
       [| Ssa.Undef Types.I32; Ssa.Int 1 |]
       [||] Types.I32);
  (* trap hazard: load through undef *)
  Ssa.append_instr b
    (Ssa.mk_instr Op.Load
       [| Ssa.Undef (Types.Ptr Types.Global) |]
       [||] Types.I32);
  (* store through a non-pointer *)
  Ssa.append_instr b
    (Ssa.mk_instr Op.Store [| Ssa.Int 1; Ssa.Int 2 |] [||] Types.Void);
  (* gep that changes address space *)
  Ssa.append_instr b
    (Ssa.mk_instr Op.Gep
       [| Ssa.Undef (Types.Ptr Types.Shared); Ssa.Int 0 |]
       [||] (Types.Ptr Types.Global));
  Ssa.append_instr b (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
  let ds = CK.Hygiene.check f in
  check "alloc outside entry" true
    (has_id CK.Hygiene.id_alloc_outside_entry ds);
  check "undef operand" true (has_id CK.Hygiene.id_undef_operand ds);
  check "undef trap" true (has_id CK.Hygiene.id_undef_trap ds);
  check "addr not pointer" true (has_id CK.Hygiene.id_addr_not_pointer ds);
  check "addrspace mismatch" true
    (has_id CK.Hygiene.id_addrspace_mismatch ds)

let test_hygiene_select_undef_ok () =
  (* undef in select arms / phi incomings is legitimate (melding
     introduces them); no warning *)
  let f = Ssa.mk_func "hs" [] in
  let e = Ssa.mk_block "entry" in
  Ssa.append_block f e;
  Ssa.append_instr e
    (Ssa.mk_instr Op.Select
       [| Ssa.Bool true; Ssa.Undef Types.I32; Ssa.Int 1 |]
       [||] Types.I32);
  Ssa.append_instr e (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
  check "clean" true (CK.Hygiene.check f = [])

(* --- verifier address-space rules ---------------------------------- *)

let mk_alloc () =
  Ssa.mk_instr (Op.Alloc_shared 4) [||] [||] (Types.Ptr Types.Shared)

let test_verify_gep_space () =
  let f = Ssa.mk_func "vg" [] in
  let e = Ssa.mk_block "entry" in
  Ssa.append_block f e;
  let alloc = mk_alloc () in
  Ssa.append_instr e alloc;
  Ssa.append_instr e
    (Ssa.mk_instr Op.Gep
       [| Ssa.Instr alloc; Ssa.Int 0 |]
       [||] (Types.Ptr Types.Global));
  Ssa.append_instr e (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
  check "rejected" true (Verify.run f <> [])

let test_verify_cast_result () =
  let f = Ssa.mk_func "vc" [] in
  let e = Ssa.mk_block "entry" in
  Ssa.append_block f e;
  let alloc = mk_alloc () in
  Ssa.append_instr e alloc;
  Ssa.append_instr e
    (Ssa.mk_instr Op.Addrspace_cast
       [| Ssa.Instr alloc |]
       [||] (Types.Ptr Types.Shared));
  Ssa.append_instr e (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
  check "rejected" true (Verify.run f <> []);
  (* the flat result form verifies *)
  let g = Ssa.mk_func "vc2" [] in
  let e2 = Ssa.mk_block "entry" in
  Ssa.append_block g e2;
  let alloc2 = mk_alloc () in
  Ssa.append_instr e2 alloc2;
  Ssa.append_instr e2
    (Ssa.mk_instr Op.Addrspace_cast
       [| Ssa.Instr alloc2 |]
       [||] (Types.Ptr Types.Flat));
  Ssa.append_instr e2 (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
  check "flat ok" true (Verify.run g = [])

let test_verify_phi_narrowing () =
  (* a shared-typed phi fed a flat incoming narrows: rejected; the
     flat-typed phi over mixed spaces (what melding produces) is fine *)
  let mk_diamond result_ty incoming_t =
    let f = Ssa.mk_func "vp" [] in
    let e = Ssa.mk_block "entry"
    and t = Ssa.mk_block "t"
    and fl = Ssa.mk_block "f"
    and j = Ssa.mk_block "join" in
    List.iter (Ssa.append_block f) [ e; t; fl; j ];
    let alloc = mk_alloc () in
    Ssa.append_instr e alloc;
    Ssa.append_instr e
      (Ssa.mk_instr Op.Condbr [| Ssa.Bool true |] [| t; fl |] Types.Void);
    Ssa.append_instr t (Ssa.mk_instr Op.Br [||] [| j |] Types.Void);
    Ssa.append_instr fl (Ssa.mk_instr Op.Br [||] [| j |] Types.Void);
    Ssa.append_instr j
      (Ssa.mk_instr Op.Phi
         [| incoming_t; Ssa.Instr alloc |]
         [| t; fl |] result_ty);
    Ssa.append_instr j (Ssa.mk_instr Op.Ret [||] [||] Types.Void);
    f
  in
  check "narrowing rejected" true
    (Verify.run
       (mk_diamond (Types.Ptr Types.Shared) (Ssa.Undef (Types.Ptr Types.Flat)))
    <> []);
  check "widening ok" true
    (Verify.run
       (mk_diamond (Types.Ptr Types.Flat) (Ssa.Undef (Types.Ptr Types.Global)))
    = [])

(* --- orchestration, reports, JSON ---------------------------------- *)

let test_checker_invalid_ir () =
  let f = Ssa.mk_func "bad" [] in
  Ssa.append_block f (Ssa.mk_block "entry");
  let r = CK.Checker.check_func f in
  check "invalid-ir" true (has_id CK.Checker.id_invalid_ir r.CK.Checker.diags);
  check "verdict unknown" true
    (r.CK.Checker.verdict = CK.Race_check.Unknown)

let test_diag_json_roundtrip () =
  let f = Ssa.mk_func "k" [] in
  let d =
    CK.Diag.make ~id:"shared-race-ww" ~severity:CK.Diag.Error ~func:f
      "a \"quoted\" message"
  in
  let module J = Darm_obs.Json in
  match J.parse (J.to_string (CK.Diag.to_json d)) with
  | Ok js ->
      check "id" true (J.member "id" js = Some (J.Str "shared-race-ww"));
      check "severity" true (J.member "severity" js = Some (J.Str "error"));
      check "kernel" true (J.member "kernel" js = Some (J.Str "k"));
      check "message round-trips" true
        (J.member "message" js = Some (J.Str "a \"quoted\" message"))
  | Error e -> Alcotest.failf "diag json does not parse: %s" e

let test_report_json_schema () =
  let k = Option.get (K.Registry.find_any "XRACE") in
  let inst = k.K.Kernel.make ~seed:1 ~block_size:64 ~n:256 in
  let r = CK.Checker.check_func inst.K.Kernel.func in
  let module J = Darm_obs.Json in
  match J.parse (J.to_string (CK.Checker.report_to_json r)) with
  | Ok js ->
      check "format" true
        (J.member "format" js = Some (J.Str "darm-check-v1"));
      check "verdict" true (J.member "verdict" js = Some (J.Str "racy"));
      check "errors positive" true
        (match J.member "errors" js with
        | Some (J.Int n) -> n > 0
        | _ -> false)
  | Error e -> Alcotest.failf "report json does not parse: %s" e

let test_new_errors_diff () =
  let clean =
    CK.Checker.check_func
      (build_shared_kernel "c" (fun ctx params ->
           let a = List.hd params in
           D.store ctx (D.i32 1) (D.gep ctx a (D.tid ctx))))
  in
  let k = Option.get (K.Registry.find_any "XRACE") in
  let inst = k.K.Kernel.make ~seed:1 ~block_size:64 ~n:256 in
  let bad = CK.Checker.check_func inst.K.Kernel.func in
  check "bad vs clean: new" true
    (CK.Checker.new_errors ~before:clean ~after:bad <> []);
  check "clean vs bad: none" true
    (CK.Checker.new_errors ~before:bad ~after:clean = []);
  check "self diff empty" true
    (CK.Checker.new_errors ~before:bad ~after:bad = [])

(* --- registry cleanliness + translation validation ------------------ *)

let registry_instances () =
  List.map
    (fun k ->
      let bs = List.hd k.K.Kernel.block_sizes in
      (k.K.Kernel.tag, k.K.Kernel.make ~seed:7 ~block_size:bs ~n:256))
    K.Registry.all

let test_registry_clean_pre_and_post_meld () =
  List.iter
    (fun (tag, inst) ->
      let f = inst.K.Kernel.func in
      let before = CK.Checker.check_func f in
      if CK.Checker.has_errors before then
        Alcotest.failf "%s has pre-meld errors:\n%s" tag
          (CK.Checker.report_to_string before);
      ignore (Darm_core.Pass.run ~verify_each:true f);
      let after = CK.Checker.check_func f in
      match CK.Checker.new_errors ~before ~after with
      | [] -> ()
      | news ->
          Alcotest.failf "%s: melding introduced errors:\n%s" tag
            (String.concat "\n" (List.map CK.Diag.to_string news)))
    (registry_instances ())

let test_pass_validation_modes () =
  (* with clean kernels, both validation modes must behave exactly like
     an unvalidated run: nothing raised, nothing rejected *)
  List.iter
    (fun (tag, inst) ->
      let f = inst.K.Kernel.func in
      let stats =
        Darm_core.Pass.run
          ~config:
            { Darm_core.Pass.default_config with
              validate = Darm_core.Pass.Vfail }
          ~verify_each:true f
      in
      check (tag ^ ": vfail no rejections") true
        (stats.Darm_core.Pass.melds_rejected = 0))
    (registry_instances ());
  List.iter
    (fun (tag, inst) ->
      let f = inst.K.Kernel.func in
      let stats =
        Darm_core.Pass.run
          ~config:
            { Darm_core.Pass.default_config with
              validate = Darm_core.Pass.Vreject }
          ~verify_each:true f
      in
      check (tag ^ ": vreject no rejections") true
        (stats.Darm_core.Pass.melds_rejected = 0))
    (registry_instances ())

let test_snapshot_restore_roundtrip () =
  let k = Option.get (K.Registry.find "SB1") in
  let inst = k.K.Kernel.make ~seed:3 ~block_size:64 ~n:256 in
  let f = inst.K.Kernel.func in
  let snap = Darm_core.Pass.snapshot_func f in
  ignore (Darm_core.Pass.run ~verify_each:true f);
  check "melding changed the body" false
    (Darm_ir.Printer.func_to_string f = snap);
  Darm_core.Pass.restore_func f snap;
  Darm_ir.Verify.run_exn f;
  Alcotest.(check string) "restored" snap (Darm_ir.Printer.func_to_string f)

let suites =
  [
    ( "checks",
      [
        Alcotest.test_case "dataflow: reaching blocks" `Quick
          test_dataflow_reaching_blocks;
        Alcotest.test_case "affine: structural forms" `Quick test_affine_forms;
        Alcotest.test_case "affine: uniform fallback" `Quick
          test_affine_uniform_fallback;
        Alcotest.test_case "barrier: divergent guard" `Quick
          test_barrier_divergent_guard;
        Alcotest.test_case "barrier: after join clean" `Quick
          test_barrier_after_join_clean;
        Alcotest.test_case "barrier: uniform guard clean" `Quick
          test_barrier_uniform_guard_clean;
        Alcotest.test_case "barrier: temporal divergence" `Quick
          test_barrier_temporal_divergence;
        Alcotest.test_case "barrier: uniform loop clean" `Quick
          test_barrier_uniform_loop_clean;
        Alcotest.test_case "barrier: open_in" `Quick test_barrier_open_in;
        Alcotest.test_case "race: negative kernels" `Quick
          test_race_negative_kernels;
        Alcotest.test_case "race: barrier separates" `Quick
          test_race_barrier_separates;
        Alcotest.test_case "race: distinct roots" `Quick
          test_race_distinct_roots;
        Alcotest.test_case "race: uniform write" `Quick test_race_uniform_write;
        Alcotest.test_case "race: solo guard" `Quick test_race_solo_guard;
        Alcotest.test_case "race: divergent demoted" `Quick
          test_race_divergent_demoted;
        Alcotest.test_case "race: strided proved free" `Quick
          test_race_strided_proved_free;
        Alcotest.test_case "hygiene: lints" `Quick test_hygiene_lints;
        Alcotest.test_case "hygiene: select undef ok" `Quick
          test_hygiene_select_undef_ok;
        Alcotest.test_case "verify: gep space" `Quick test_verify_gep_space;
        Alcotest.test_case "verify: cast result" `Quick test_verify_cast_result;
        Alcotest.test_case "verify: phi narrowing" `Quick
          test_verify_phi_narrowing;
        Alcotest.test_case "checker: invalid ir" `Quick
          test_checker_invalid_ir;
        Alcotest.test_case "diag json roundtrip" `Quick
          test_diag_json_roundtrip;
        Alcotest.test_case "report json schema" `Quick test_report_json_schema;
        Alcotest.test_case "new_errors diff" `Quick test_new_errors_diff;
        Alcotest.test_case "registry clean pre/post meld" `Quick
          test_registry_clean_pre_and_post_meld;
        Alcotest.test_case "pass validation modes" `Quick
          test_pass_validation_modes;
        Alcotest.test_case "snapshot/restore roundtrip" `Quick
          test_snapshot_restore_roundtrip;
      ] );
  ]
