(* Metrics unit tests: the block_cycles ordering contract, the makespan
   estimator's documented edge cases, and the zero-denominator guards of
   the derived ratios. *)

module Metrics = Darm_sim.Metrics

let with_blocks ?(cycles = 0) blocks =
  let m = Metrics.create () in
  m.Metrics.cycles <- cycles;
  m.Metrics.block_cycles <- blocks;
  m

(* ------------------------------------------------------------------ *)
(* block_cycles ordering contract: most recently executed block first *)

let test_add_prepends_recent_blocks () =
  let a = with_blocks [ 2; 1 ] in
  let b = with_blocks [ 4; 3 ] in
  Metrics.add a b;
  (* [b] is the more recent run, so its blocks land in front *)
  Alcotest.(check (list int)) "most-recent-first" [ 4; 3; 2; 1 ]
    a.Metrics.block_cycles;
  Alcotest.(check (list int)) "b untouched" [ 4; 3 ] b.Metrics.block_cycles

let test_add_into_empty () =
  let a = with_blocks [] in
  Metrics.add a (with_blocks [ 7 ]);
  Alcotest.(check (list int)) "prepend to empty" [ 7 ] a.Metrics.block_cycles

(* ------------------------------------------------------------------ *)
(* makespan *)

let test_makespan_one_cu_is_cycles () =
  let m = with_blocks ~cycles:123 [ 60; 63 ] in
  Alcotest.(check int) "1 CU" 123 (Metrics.makespan m ~num_cus:1)

let test_makespan_more_cus_than_blocks () =
  let m = with_blocks ~cycles:15 [ 4; 5; 6 ] in
  Alcotest.(check int) "longest block" 6 (Metrics.makespan m ~num_cus:8)

let test_makespan_empty () =
  let m = with_blocks ~cycles:0 [] in
  Alcotest.(check int) "no blocks" 0 (Metrics.makespan m ~num_cus:4)

let test_makespan_lpt_schedule () =
  (* LPT on 2 CUs over [4;3;3;2]: {4,2} vs {3,3} -> 6 *)
  let m = with_blocks ~cycles:12 [ 3; 2; 4; 3 ] in
  Alcotest.(check int) "2 CUs" 6 (Metrics.makespan m ~num_cus:2)

let test_makespan_order_insensitive () =
  let a = with_blocks ~cycles:12 [ 4; 3; 3; 2 ] in
  let b = with_blocks ~cycles:12 [ 2; 3; 3; 4 ] in
  List.iter
    (fun num_cus ->
      Alcotest.(check int)
        (Printf.sprintf "%d CUs" num_cus)
        (Metrics.makespan a ~num_cus)
        (Metrics.makespan b ~num_cus))
    [ 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* zero-denominator guards *)

let test_transactions_per_access_zero () =
  Alcotest.(check (float 0.)) "no accesses" 0.
    (Metrics.transactions_per_access (Metrics.create ()))

let test_transactions_per_access_ratio () =
  let m = Metrics.create () in
  m.Metrics.global_accesses <- 4;
  m.Metrics.global_transactions <- 10;
  Alcotest.(check (float 1e-9)) "ratio" 2.5 (Metrics.transactions_per_access m)

let test_alu_utilization_zero () =
  Alcotest.(check (float 0.)) "no ALU issues" 0.
    (Metrics.alu_utilization (Metrics.create ()) ~warp_size:64)

let test_alu_utilization_ratio () =
  let m = Metrics.create () in
  m.Metrics.alu_issues <- 10;
  m.Metrics.alu_active_lanes <- 320;
  Alcotest.(check (float 1e-9)) "percent" 50.
    (Metrics.alu_utilization m ~warp_size:64)

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "metrics",
      [
        Alcotest.test_case "add: prepends recent blocks" `Quick
          test_add_prepends_recent_blocks;
        Alcotest.test_case "add: into empty" `Quick test_add_into_empty;
        Alcotest.test_case "makespan: 1 CU = cycles" `Quick
          test_makespan_one_cu_is_cycles;
        Alcotest.test_case "makespan: more CUs than blocks" `Quick
          test_makespan_more_cus_than_blocks;
        Alcotest.test_case "makespan: empty" `Quick test_makespan_empty;
        Alcotest.test_case "makespan: LPT schedule" `Quick
          test_makespan_lpt_schedule;
        Alcotest.test_case "makespan: order-insensitive" `Quick
          test_makespan_order_insensitive;
        Alcotest.test_case "txn/access: zero accesses" `Quick
          test_transactions_per_access_zero;
        Alcotest.test_case "txn/access: ratio" `Quick
          test_transactions_per_access_ratio;
        Alcotest.test_case "alu_util: zero issues" `Quick
          test_alu_utilization_zero;
        Alcotest.test_case "alu_util: ratio" `Quick
          test_alu_utilization_ratio;
      ] );
  ]
