(* Fleet telemetry, stream side: the darm-events-v1 sink and its
   validation, the canonical form (runtime events dropped, rt stripped,
   vt renumbered) that makes the stream byte-comparable across pool
   sizes, and the batch driver's end-to-end emission — canonical
   identity at jobs 1/2/4, injected-bug manifests, and mid-run
   snapshots. *)

module Ev = Darm_obs.Events
module Snapshot = Darm_obs.Snapshot
module MR = Darm_obs.Metrics_registry
module B = Darm_fuzz.Batch
module J = Darm_obs.Json

let contains (hay : string) (needle : string) : bool =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let temp_dir () =
  let path = Filename.temp_file "darm_events_test" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* a small emitted stream: 2 core events bracketed by runtime ones,
   every event carrying an rt envelope *)
let emit_sample path =
  let s = Ev.open_sink ~path in
  Ev.emit s ~ev:"run_start"
    ~rt:[ ("jobs", J.Int 4) ]
    [ ("total", J.Int 2) ];
  Ev.emit s ~ev:"worker_start" [ ("worker", J.Int 0) ];
  Ev.emit s ~ev:"spec_start"
    ~rt:[ ("wall_s", J.Float 0.5) ]
    [ ("spec", J.Int 0) ];
  Ev.emit s ~ev:"worker_finish" [ ("worker", J.Int 0) ];
  Alcotest.(check int) "count" 4 (Ev.count s);
  Ev.close s

(* ------------------------------------------------------------------ *)
(* Sink, read, validate *)

let test_emit_read_validate () =
  let path = Filename.concat (temp_dir ()) "ev.jsonl" in
  emit_sample path;
  let text = read_file path in
  (match Ev.validate text with
  | Ok n -> Alcotest.(check int) "validates" 4 n
  | Error msg -> Alcotest.failf "valid stream rejected: %s" msg);
  match Ev.read text with
  | Error msg -> Alcotest.failf "read failed: %s" msg
  | Ok views ->
      Alcotest.(check (list int)) "vt sequence" [ 0; 1; 2; 3 ]
        (List.map (fun v -> v.Ev.vw_vt) views);
      Alcotest.(check (list string)) "event order"
        [ "run_start"; "worker_start"; "spec_start"; "worker_finish" ]
        (List.map (fun v -> v.Ev.vw_ev) views);
      (* every line self-describes its schema *)
      List.iter
        (fun v ->
          Alcotest.(check bool) "schema stamped" true
            (J.member "schema" v.Ev.vw_json = Some (J.Str Ev.schema)))
        views

let test_emit_rejects_unknown_event () =
  let path = Filename.concat (temp_dir ()) "ev.jsonl" in
  let s = Ev.open_sink ~path in
  (match Ev.emit s ~ev:"bogus_event" [] with
  | () -> Alcotest.fail "unknown event type must be rejected"
  | exception Invalid_argument _ -> ());
  (match Ev.emit s ~ev:"run_start" [ ("vt", J.Int 0) ] with
  | () -> Alcotest.fail "reserved field name must be rejected"
  | exception Invalid_argument _ -> ());
  (* the sink survives the rejections *)
  Ev.emit s ~ev:"run_start" [];
  Alcotest.(check int) "only the valid emit counted" 1 (Ev.count s);
  Ev.close s

let test_validate_catches_damage () =
  let expect_error label text =
    match Ev.validate text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s must be rejected" label
  in
  let line ?(schema = Ev.schema) ?(ev = "run_start") vt =
    Printf.sprintf "{\"schema\":%s,\"vt\":%d,\"ev\":%s}\n"
      (J.to_string (J.Str schema))
      vt
      (J.to_string (J.Str ev))
  in
  expect_error "wrong schema" (line ~schema:"darm-events-v999" 0);
  expect_error "unknown event" (line ~ev:"bogus" 0);
  expect_error "vt going backwards" (line 0 ^ line 0);
  expect_error "non-object line" "[1,2,3]\n";
  expect_error "rt not an object"
    "{\"schema\":\"darm-events-v1\",\"vt\":0,\"ev\":\"run_start\",\"rt\":3}\n"

let test_canonicalize () =
  let path = Filename.concat (temp_dir ()) "ev.jsonl" in
  emit_sample path;
  match Ev.canonicalize (read_file path) with
  | Error msg -> Alcotest.failf "canonicalize failed: %s" msg
  | Ok canon -> (
      Alcotest.(check bool) "runtime events dropped" false
        (contains canon "worker_start" || contains canon "worker_finish");
      Alcotest.(check bool) "rt envelopes stripped" false
        (contains canon "\"rt\"");
      match Ev.read canon with
      | Error msg -> Alcotest.failf "canonical form unreadable: %s" msg
      | Ok views ->
          Alcotest.(check (list int)) "vt renumbered" [ 0; 1 ]
            (List.map (fun v -> v.Ev.vw_vt) views);
          Alcotest.(check (list string)) "core order preserved"
            [ "run_start"; "spec_start" ]
            (List.map (fun v -> v.Ev.vw_ev) views);
          (* canonicalizing a canonical stream is the identity *)
          Alcotest.(check string) "idempotent" canon
            (match Ev.canonicalize canon with
            | Ok c -> c
            | Error msg -> Alcotest.failf "re-canonicalize: %s" msg))

(* ------------------------------------------------------------------ *)
(* Injected-bug specs *)

let fuzz_spec ?inject seed =
  B.Fuzz
    {
      fz_seed = seed;
      fz_block_size = 64;
      fz_smoke = true;
      fz_features = "all";
      fz_inject = inject;
    }

let test_inject_spec_round_trip () =
  let spec = fuzz_spec ~inject:"XBAR" 7 in
  (match B.spec_of_json (B.spec_to_json spec) with
  | Ok spec' -> Alcotest.(check bool) "round trips" true (spec = spec')
  | Error msg -> Alcotest.failf "round trip failed: %s" msg);
  Alcotest.(check bool) "inject field serialized" true
    (contains (J.to_string (B.spec_to_json spec)) "\"inject\":\"XBAR\"");
  let bad =
    J.Obj
      [
        ("kind", J.Str "fuzz"); ("seed", J.Int 0);
        ("block_size", J.Int 64); ("profile", J.Str "smoke");
        ("features", J.Str "all"); ("inject", J.Str "NOPE");
      ]
  in
  match B.spec_of_json bad with
  | Error msg ->
      Alcotest.(check bool) "error lists the known tags" true
        (contains msg "XBAR")
  | Ok _ -> Alcotest.fail "unknown inject tag must be rejected"

let test_injected_batch_check_fails () =
  let dir = temp_dir () in
  let out = Filename.concat dir "out.jsonl" in
  let sum =
    B.run ~jobs:1 ~out [ fuzz_spec ~inject:"XBAR" 0; fuzz_spec ~inject:"XBAR" 1 ]
  in
  (* a grafted bug is caught by the checker, not mis-simulated *)
  Alcotest.(check int) "all check-failed" 2 sum.B.bt_check_failed;
  Alcotest.(check int) "none incorrect" 0 sum.B.bt_incorrect;
  Alcotest.(check int) "none errored" 0 sum.B.bt_errors;
  Alcotest.(check (option (float 0.))) "nothing computed ok -> no p99" None
    sum.B.bt_pass_ms_p99

(* ------------------------------------------------------------------ *)
(* Batch emission end-to-end *)

let specs_under_test = List.init 6 (fun i -> fuzz_spec i)

let run_with_events dir jobs =
  let tag = string_of_int jobs in
  let events = Filename.concat dir ("ev" ^ tag ^ ".jsonl") in
  let out = Filename.concat dir ("out" ^ tag ^ ".jsonl") in
  let cache =
    (* fresh cache per run: all runs start equally cold, so their
       hit/miss event sequences match *)
    Darm_harness.Result_cache.create
      ~dir:(Filename.concat dir ("cache" ^ tag))
      ()
  in
  let sum = B.run ~jobs ~cache ~events ~out specs_under_test in
  Alcotest.(check int) "all processed" (List.length specs_under_test)
    sum.B.bt_run;
  read_file events

let test_batch_events_canonical_identity () =
  let dir = temp_dir () in
  let canon jobs =
    let text = run_with_events dir jobs in
    (match Ev.validate text with
    | Ok _ -> ()
    | Error msg -> Alcotest.failf "jobs=%d stream invalid: %s" jobs msg);
    match Ev.canonicalize text with
    | Ok c -> c
    | Error msg -> Alcotest.failf "jobs=%d canonicalize: %s" jobs msg
  in
  let c1 = canon 1 and c2 = canon 2 and c4 = canon 4 in
  Alcotest.(check string) "jobs 1 = jobs 2 (canonical bytes)" c1 c2;
  Alcotest.(check string) "jobs 1 = jobs 4 (canonical bytes)" c1 c4;
  (* the canonical stream still tells the whole core story *)
  List.iter
    (fun ev ->
      Alcotest.(check bool) (ev ^ " present") true (contains c1 ev))
    [
      "run_start"; "chunk_start"; "spec_start"; "cache_miss"; "spec_finish";
      "chunk_finish"; "run_finish";
    ]

let test_batch_snapshot_written_during_run () =
  let dir = temp_dir () in
  let base = Filename.concat dir "snap" in
  let out = Filename.concat dir "out.jsonl" in
  let reg = MR.create () in
  let sum =
    B.run ~jobs:2 ~registry:reg ~snapshot:base ~cadence_s:0.05 ~out
      specs_under_test
  in
  (* the monitor's first write is immediate, so even a fast run leaves
     valid files behind; the final write reflects the whole run *)
  (match Snapshot.read_json ~path:(Snapshot.json_path base) with
  | Error msg -> Alcotest.failf "snapshot unreadable: %s" msg
  | Ok fams -> (
      match MR.find_series fams "darm_batch_done" with
      | Some s ->
          Alcotest.(check (float 1e-9)) "final snapshot sees the whole run"
            (float_of_int sum.B.bt_run) s.MR.s_value
      | None -> Alcotest.fail "darm_batch_done missing from snapshot"));
  Alcotest.(check bool) "prom sibling written" true
    (Sys.file_exists (Snapshot.prom_path base));
  (* the live registry agrees with the summary *)
  Alcotest.(check (option (float 1e-9))) "registry kernel counter"
    (Some (float_of_int sum.B.bt_run))
    (MR.find reg "darm_batch_kernels_total");
  Alcotest.(check int) "no stalls in a healthy run" 0 sum.B.bt_stalled

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "events-stream",
      [
        Alcotest.test_case "emit/read/validate round trip" `Quick
          test_emit_read_validate;
        Alcotest.test_case "unknown events and reserved fields rejected"
          `Quick test_emit_rejects_unknown_event;
        Alcotest.test_case "validate catches damage" `Quick
          test_validate_catches_damage;
        Alcotest.test_case "canonical form (drop/strip/renumber)" `Quick
          test_canonicalize;
      ] );
    ( "events-batch",
      [
        Alcotest.test_case "inject spec round-trips" `Quick
          test_inject_spec_round_trip;
        Alcotest.test_case "injected bugs check-fail" `Slow
          test_injected_batch_check_fails;
        Alcotest.test_case "canonical byte-identity at jobs 1/2/4" `Slow
          test_batch_events_canonical_identity;
        Alcotest.test_case "snapshot written during the run" `Slow
          test_batch_snapshot_written_during_run;
      ] );
  ]
