(* Test-suite entry point: each Suite_* module contributes cases. *)

let () =
  Alcotest.run "darm"
    (Suite_ir.suites @ Suite_analysis.suites @ Suite_align.suites
   @ Suite_transforms.suites @ Suite_melding.suites @ Suite_sim.suites
   @ Suite_end2end.suites @ Suite_fuzz.suites @ Suite_unroll.suites @ Suite_parser.suites @ Suite_properties.suites @ Suite_meld_ir.suites @ Suite_regions.suites @ Suite_dsl.suites @ Suite_harness.suites @ Suite_frontend.suites @ Suite_hip_kernels.suites @ Suite_memory.suites @ Suite_i32.suites @ Suite_parallel.suites
   @ Suite_metrics.suites @ Suite_obs.suites @ Suite_checks.suites
   @ Suite_attribution.suites @ Suite_gen.suites @ Suite_shrink.suites
   @ Suite_corpus.suites @ Suite_batch.suites @ Suite_mem_model.suites
   @ Suite_incremental.suites @ Suite_telemetry.suites
   @ Suite_events.suites @ Suite_reconvergence.suites)
