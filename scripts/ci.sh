#!/usr/bin/env bash
# Tier-1 verification: build, full test suite, then a smoke pass of the
# evaluation harness (every kernel once, smallest config) and a profile
# trace of one kernel.  Any correctness failure exits non-zero.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build @all
dune runtest

# bench smoke pass; must leave a non-empty machine-readable summary
rm -f BENCH_darm.json
dune exec bench/main.exe -- --smoke
test -s BENCH_darm.json
grep -q '"schema":"darm-bench-v1"' BENCH_darm.json
grep -q '"geomean_speedup"' BENCH_darm.json

# sanity checkers: every registry kernel must be diagnostic-clean both
# before and after melding (non-zero exit on any error diagnostic), and
# the seeded negative kernels must be flagged with the expected ids
dune exec bin/darm_opt.exe -- check --all
dune exec bin/darm_opt.exe -- check --all --pass darm
if dune exec bin/darm_opt.exe -- check --kernel XBAR --block-size 64 \
    --json > /tmp/darm_check_xbar.json; then
  echo "ci: XBAR unexpectedly clean" >&2; exit 1
fi
grep -q '"id":"barrier-divergence"' /tmp/darm_check_xbar.json
if dune exec bin/darm_opt.exe -- check --kernel XRACE --block-size 64 \
    --json > /tmp/darm_check_xrace.json; then
  echo "ci: XRACE unexpectedly clean" >&2; exit 1
fi
grep -q '"id":"shared-race-ww"' /tmp/darm_check_xrace.json
if dune exec bin/darm_opt.exe -- check --kernel XRW --block-size 64 \
    --json > /tmp/darm_check_xrw.json; then
  echo "ci: XRW unexpectedly clean" >&2; exit 1
fi
grep -q '"id":"shared-race-rw"' /tmp/darm_check_xrw.json
rm -f /tmp/darm_check_xbar.json /tmp/darm_check_xrace.json /tmp/darm_check_xrw.json

# observability: profile one kernel end to end and validate the trace
trace=$(mktemp /tmp/darm_trace.XXXXXX.json)
trap 'rm -f "$trace"' EXIT
dune exec bin/darm_opt.exe -- profile --kernel BIT -n 256 \
  --format chrome --trace-out "$trace"
test -s "$trace"
grep -q '"traceEvents"' "$trace"
grep -q '"meld.decision"' "$trace"
grep -q '"warp.diverge"' "$trace"

echo "ci: OK"
