#!/usr/bin/env bash
# Tier-1 verification: build, full test suite, then a smoke pass of the
# evaluation harness (every kernel once, smallest config) and a profile
# trace of one kernel.  Any correctness failure exits non-zero.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build @all
dune runtest

# bench smoke pass; must leave a non-empty machine-readable summary and
# append an env-fingerprinted record to the bench history.  Two smoke
# runs back to back give the regression sentinel an identical pair to
# compare (cycle counts are deterministic, so the diff must be clean).
rm -f BENCH_darm.json BENCH_history.jsonl
dune exec bench/main.exe -- --smoke
dune exec bench/main.exe -- --smoke
test -s BENCH_darm.json
grep -q '"schema":"darm-bench-v1"' BENCH_darm.json
grep -q '"geomean_speedup"' BENCH_darm.json
test -s BENCH_history.jsonl
grep -q '"schema":"darm-bench-hist-v2"' BENCH_history.jsonl
test "$(wc -l < BENCH_history.jsonl)" -eq 2
# every record covers both memory models; flat and hier entries are
# both present and keyed apart
grep -q '"mem_model":"flat+hier"' BENCH_history.jsonl
grep -q '"mem_model":"flat"' BENCH_history.jsonl
grep -q '"mem_model":"hier"' BENCH_history.jsonl
# ...and both reconvergence models: the stack and its trajectories ride
# in the same record, keyed apart by their reconvergence field
grep -q '"reconvergence":"stack+its"' BENCH_history.jsonl
grep -q '"reconvergence":"stack"' BENCH_history.jsonl
grep -q '"reconvergence":"its"' BENCH_history.jsonl
# the 1000+-block stress kernel is part of the smoke gate: a full meld
# pass at that scale must finish inside the CI budget, and its pass_ms
# lands in the history so bench-diff tracks the compile-time trajectory
grep -q '"kernel":"STRESS1K"' BENCH_history.jsonl

# regression sentinel: the history must schema-validate, an identical
# re-run must pass the diff, and a synthetically inflated candidate
# (every opt_cycles gains a trailing zero = exact 10x) must trip it
dune exec bin/darm_opt.exe -- bench-diff --validate-only
dune exec bin/darm_opt.exe -- bench-diff
hist_inflated=$(mktemp /tmp/darm_hist_inflated.XXXXXX.jsonl)
sed 's/"opt_cycles":\([0-9]*\)/"opt_cycles":\10/g' BENCH_history.jsonl \
  > "$hist_inflated"
if dune exec bin/darm_opt.exe -- bench-diff \
    --history "$hist_inflated" --baseline-history BENCH_history.jsonl; then
  echo "ci: bench-diff sentinel failed to fire on 10x cycle inflation" >&2
  rm -f "$hist_inflated"; exit 1
fi
rm -f "$hist_inflated"

# the sentinel gates the hierarchical trajectory independently:
# inflating ONLY the hier entries' opt_cycles must also trip it
hist_hier_inflated=$(mktemp /tmp/darm_hist_hier_inflated.XXXXXX.jsonl)
sed 's/\("mem_model":"hier",[^{}]*"opt_cycles":[0-9]*\)/\10/g' \
  BENCH_history.jsonl > "$hist_hier_inflated"
if cmp -s BENCH_history.jsonl "$hist_hier_inflated"; then
  echo "ci: hier-entry inflation sed matched nothing" >&2
  rm -f "$hist_hier_inflated"; exit 1
fi
if dune exec bin/darm_opt.exe -- bench-diff \
    --history "$hist_hier_inflated" --baseline-history BENCH_history.jsonl; then
  echo "ci: bench-diff sentinel failed to fire on hier-only inflation" >&2
  rm -f "$hist_hier_inflated"; exit 1
fi
rm -f "$hist_hier_inflated"

# ...and the independent-thread-scheduling trajectory: inflating ONLY
# the its entries' opt_cycles must also trip it
hist_its_inflated=$(mktemp /tmp/darm_hist_its_inflated.XXXXXX.jsonl)
sed 's/\("reconvergence":"its",[^{}]*"opt_cycles":[0-9]*\)/\10/g' \
  BENCH_history.jsonl > "$hist_its_inflated"
if cmp -s BENCH_history.jsonl "$hist_its_inflated"; then
  echo "ci: its-entry inflation sed matched nothing" >&2
  rm -f "$hist_its_inflated"; exit 1
fi
if dune exec bin/darm_opt.exe -- bench-diff \
    --history "$hist_its_inflated" --baseline-history BENCH_history.jsonl; then
  echo "ci: bench-diff sentinel failed to fire on its-only inflation" >&2
  rm -f "$hist_its_inflated"; exit 1
fi
rm -f "$hist_its_inflated"

# divergence attribution: the report must be byte-identical for any
# --jobs count, and must join melds with per-branch counters
dune exec bin/darm_opt.exe -- report --all -j 1 > /tmp/darm_report_j1.txt
dune exec bin/darm_opt.exe -- report --all -j 4 > /tmp/darm_report_j4.txt
cmp /tmp/darm_report_j1.txt /tmp/darm_report_j4.txt
grep -q 'per-meld attribution' /tmp/darm_report_j1.txt
dune exec bin/darm_opt.exe -- report --kernel BIT --block-size 64 --json \
  > /tmp/darm_report_bit.json
grep -q '"schema":"darm-report-v2"' /tmp/darm_report_bit.json
grep -q '"cycles_saved"' /tmp/darm_report_bit.json
rm -f /tmp/darm_report_j1.txt /tmp/darm_report_j4.txt /tmp/darm_report_bit.json

# memory-model observability: the default model is flat and spelling
# it out changes nothing; the hierarchical model must classify every
# access (per-site table + exact-sum residual line), stay byte-identical
# across --jobs, and export its schema'd counters
dune exec bin/darm_opt.exe -- report --all --mem-model flat -j 4 \
  > /tmp/darm_report_flat.txt
dune exec bin/darm_opt.exe -- report --all -j 4 > /tmp/darm_report_dflt.txt
cmp /tmp/darm_report_dflt.txt /tmp/darm_report_flat.txt
dune exec bin/darm_opt.exe -- report --all --mem-model hier -j 1 \
  > /tmp/darm_report_hier_j1.txt
dune exec bin/darm_opt.exe -- report --all --mem-model hier -j 4 \
  > /tmp/darm_report_hier_j4.txt
cmp /tmp/darm_report_hier_j1.txt /tmp/darm_report_hier_j4.txt
grep -q 'memory (hier model)' /tmp/darm_report_hier_j1.txt
grep -q 'non-memory residual' /tmp/darm_report_hier_j1.txt
dune exec bin/darm_opt.exe -- report --kernel BIT --block-size 64 \
  --mem-model hier --json > /tmp/darm_report_bit_hier.json
grep -q '"mem_model":"hier"' /tmp/darm_report_bit_hier.json
grep -q '"mem_sites"' /tmp/darm_report_bit_hier.json
dune exec bin/darm_opt.exe -- report --kernel BIT --block-size 64 \
  --mem-model hier --metrics-out /tmp/darm_metrics_hier.json
grep -q 'sim_l1_hits_total' /tmp/darm_metrics_hier.json
grep -q 'sim_site_cycles_total' /tmp/darm_metrics_hier.json
rm -f /tmp/darm_report_flat.txt /tmp/darm_report_dflt.txt \
  /tmp/darm_report_hier_j1.txt /tmp/darm_report_hier_j4.txt \
  /tmp/darm_report_bit_hier.json /tmp/darm_metrics_hier.json

# reconvergence models (doc/simulation.md): the default is the SIMT
# stack and spelling it out changes nothing; independent thread
# scheduling must run the whole matrix byte-identically across --jobs,
# compose with the hierarchical memory model, and tag its reports
dune exec bin/darm_opt.exe -- report --all --reconvergence stack -j 4 \
  > /tmp/darm_report_rc_stack.txt
dune exec bin/darm_opt.exe -- report --all -j 4 > /tmp/darm_report_rc_dflt.txt
cmp /tmp/darm_report_rc_dflt.txt /tmp/darm_report_rc_stack.txt
dune exec bin/darm_opt.exe -- report --all --reconvergence its -j 1 \
  > /tmp/darm_report_its_j1.txt
dune exec bin/darm_opt.exe -- report --all --reconvergence its -j 4 \
  > /tmp/darm_report_its_j4.txt
cmp /tmp/darm_report_its_j1.txt /tmp/darm_report_its_j4.txt
grep -q 'its reconvergence' /tmp/darm_report_its_j1.txt
dune exec bin/darm_opt.exe -- report --kernel BIT --block-size 64 \
  --reconvergence its --json > /tmp/darm_report_bit_its.json
grep -q '"reconvergence":"its"' /tmp/darm_report_bit_its.json
dune exec bin/darm_opt.exe -- simulate --kernel SB3 --mem-model hier \
  --reconvergence its > /tmp/darm_sim_hier_its.txt
grep -q 'output correct' /tmp/darm_sim_hier_its.txt
rm -f /tmp/darm_report_rc_stack.txt /tmp/darm_report_rc_dflt.txt \
  /tmp/darm_report_its_j1.txt /tmp/darm_report_its_j4.txt \
  /tmp/darm_report_bit_its.json /tmp/darm_sim_hier_its.txt

# sanity checkers: every registry kernel must be diagnostic-clean both
# before and after melding (non-zero exit on any error diagnostic), and
# the seeded negative kernels must be flagged with the expected ids
dune exec bin/darm_opt.exe -- check --all
dune exec bin/darm_opt.exe -- check --all --pass darm
if dune exec bin/darm_opt.exe -- check --kernel XBAR --block-size 64 \
    --json > /tmp/darm_check_xbar.json; then
  echo "ci: XBAR unexpectedly clean" >&2; exit 1
fi
grep -q '"id":"barrier-divergence"' /tmp/darm_check_xbar.json
if dune exec bin/darm_opt.exe -- check --kernel XRACE --block-size 64 \
    --json > /tmp/darm_check_xrace.json; then
  echo "ci: XRACE unexpectedly clean" >&2; exit 1
fi
grep -q '"id":"shared-race-ww"' /tmp/darm_check_xrace.json
if dune exec bin/darm_opt.exe -- check --kernel XRW --block-size 64 \
    --json > /tmp/darm_check_xrw.json; then
  echo "ci: XRW unexpectedly clean" >&2; exit 1
fi
grep -q '"id":"shared-race-rw"' /tmp/darm_check_xrw.json
rm -f /tmp/darm_check_xbar.json /tmp/darm_check_xrace.json /tmp/darm_check_xrw.json

# incremental analysis + similarity prefilter (doc/static-analysis.md):
# the prefilter is exact — disabling it (and changing the job count)
# must leave every meld decision, and therefore the whole attribution
# report, byte-identical; a debug-mode meld pass over the registry
# cross-validates every cached analysis against a fresh recompute; and
# the meld CLI must export the new darm_pass_* counter families
dune exec bin/darm_opt.exe -- report --all -j 1 > /tmp/darm_pref_on.txt
DARM_NO_PREFILTER=1 dune exec bin/darm_opt.exe -- report --all -j 4 \
  > /tmp/darm_pref_off.txt
cmp /tmp/darm_pref_on.txt /tmp/darm_pref_off.txt
rm -f /tmp/darm_pref_on.txt /tmp/darm_pref_off.txt
DARM_ANALYSIS_DEBUG=1 dune exec bin/darm_opt.exe -- check --all --pass darm
dune exec bin/darm_opt.exe -- meld --kernel BIT --pass darm \
  --metrics-out /tmp/darm_pass_metrics.prom > /tmp/darm_meld_bit.txt
grep -q ';; candidates:' /tmp/darm_meld_bit.txt
grep -q 'darm_pass_candidates_prefiltered_total' /tmp/darm_pass_metrics.prom
grep -q 'darm_pass_analysis_recomputes_avoided_total' /tmp/darm_pass_metrics.prom
rm -f /tmp/darm_pass_metrics.prom /tmp/darm_meld_bit.txt

# generative conformance fuzzing (doc/fuzzing.md): a time-boxed oracle
# matrix sweep (DARM_FUZZ_BUDGET seconds, smoke default), the regression
# corpus replayed against its recorded expectations, a --jobs
# determinism diff, and a mutation-kill probe — the oracle must flag a
# deliberately re-broken kernel
fuzz_budget="${DARM_FUZZ_BUDGET:-30}"
dune exec bin/darm_opt.exe -- fuzz --smoke --count 200 \
  --budget-s "$fuzz_budget" --jobs 4
dune exec bin/darm_opt.exe -- fuzz --replay test/corpus
dune exec bin/darm_opt.exe -- fuzz --smoke --count 10 --jobs 1 \
  > /tmp/darm_fuzz_j1.txt
dune exec bin/darm_opt.exe -- fuzz --smoke --count 10 --jobs 4 \
  > /tmp/darm_fuzz_j4.txt
cmp /tmp/darm_fuzz_j1.txt /tmp/darm_fuzz_j4.txt
rm -f /tmp/darm_fuzz_j1.txt /tmp/darm_fuzz_j4.txt
if dune exec bin/darm_opt.exe -- fuzz --smoke --count 5 --inject XBAR \
    > /tmp/darm_fuzz_inject.txt; then
  echo "ci: fuzz oracle missed an injected XBAR bug" >&2; exit 1
fi
grep -q 'checker:barrier-divergence' /tmp/darm_fuzz_inject.txt
rm -f /tmp/darm_fuzz_inject.txt

# cross-model differential: every oracle run above already re-executes
# each subject under independent thread scheduling (the xmodel legs);
# this wider sweep pins >=1000 generator seeds through stack-vs-its
# memory-image comparison and must complete inside its budget
xmodel_budget="${DARM_XMODEL_BUDGET:-900}"
dune exec bin/darm_opt.exe -- fuzz --smoke --count 1000 \
  --budget-s "$xmodel_budget" --jobs 4 | tee /tmp/darm_fuzz_xmodel.txt
grep -q '1000/1000 seed(s), 0 failure(s)' /tmp/darm_fuzz_xmodel.txt
rm -f /tmp/darm_fuzz_xmodel.txt

# fleet-scale batch sweep (doc/fleet.md): a smoke fuzz manifest swept
# cold (jobs 1, empty cache) then warm (jobs 4) — the warm run must be
# served ~entirely from the result cache and replay byte-identical
# results, the history must gain batch throughput records the sentinel
# accepts, and a synthetically inflated wall-clock must trip the
# kernels/sec gate
batch_dir=$(mktemp -d /tmp/darm_batch.XXXXXX)
dune exec bin/darm_opt.exe -- batch --gen-fuzz 64 -m "$batch_dir/m.jsonl"
dune exec bin/darm_opt.exe -- batch -m "$batch_dir/m.jsonl" \
  -o "$batch_dir/cold.jsonl" --cache-dir "$batch_dir/cache" --jobs 1
dune exec bin/darm_opt.exe -- batch -m "$batch_dir/m.jsonl" \
  -o "$batch_dir/warm.jsonl" --cache-dir "$batch_dir/cache" --jobs 4 \
  | tee "$batch_dir/warm.txt"
grep -q 'hit-rate 100.0%' "$batch_dir/warm.txt"
cmp "$batch_dir/cold.jsonl" "$batch_dir/warm.jsonl"
test "$(wc -l < "$batch_dir/cold.jsonl")" -eq 64
grep -q '"schema":"darm-batchres-v1"' "$batch_dir/cold.jsonl"
grep -q '"batch"' BENCH_history.jsonl
# the cold run computed every spec, so its batch record carries the
# p99 pass-latency tail the sentinel gates
grep -q '"pass_ms_p99"' BENCH_history.jsonl
dune exec bin/darm_opt.exe -- bench-diff
sed 's/"wall_s":[0-9.]*/"wall_s":999999/g' BENCH_history.jsonl \
  > "$batch_dir/hist_slow.jsonl"
if dune exec bin/darm_opt.exe -- bench-diff \
    --history "$batch_dir/hist_slow.jsonl" \
    --baseline-history BENCH_history.jsonl; then
  echo "ci: bench-diff sentinel failed to fire on batch throughput collapse" >&2
  rm -rf "$batch_dir"; exit 1
fi
rm -rf "$batch_dir"

# fleet telemetry (doc/observability.md): two cold runs with separate
# fresh caches at different job counts must emit schema-valid event
# streams whose canonical forms are byte-identical, leave mid-run
# snapshots that validate in both renderings, and feed a top --once
# health view; an injected-bug manifest is tolerated by default and
# fatal under --fail-on-error
tel_dir=$(mktemp -d /tmp/darm_telemetry.XXXXXX)
dune exec bin/darm_opt.exe -- batch --gen-fuzz 48 -m "$tel_dir/m.jsonl"
dune exec bin/darm_opt.exe -- batch -m "$tel_dir/m.jsonl" \
  -o "$tel_dir/r1.jsonl" --cache-dir "$tel_dir/cache1" --jobs 1 \
  --events "$tel_dir/ev1.jsonl" --snapshot "$tel_dir/snap1" \
  --snapshot-cadence-s 0.2 --no-history
dune exec bin/darm_opt.exe -- batch -m "$tel_dir/m.jsonl" \
  -o "$tel_dir/r4.jsonl" --cache-dir "$tel_dir/cache4" --jobs 4 \
  --events "$tel_dir/ev4.jsonl" --snapshot "$tel_dir/snap4" \
  --snapshot-cadence-s 0.2 --no-history
dune exec bin/darm_opt.exe -- events "$tel_dir/ev1.jsonl" --validate-only
dune exec bin/darm_opt.exe -- events "$tel_dir/ev4.jsonl" --validate-only
dune exec bin/darm_opt.exe -- events "$tel_dir/ev1.jsonl" --canonical \
  > "$tel_dir/canon1.jsonl"
dune exec bin/darm_opt.exe -- events "$tel_dir/ev4.jsonl" --canonical \
  > "$tel_dir/canon4.jsonl"
cmp "$tel_dir/canon1.jsonl" "$tel_dir/canon4.jsonl"
grep -q '"schema":"darm-metrics-v1"' "$tel_dir/snap1.json"
grep -q 'darm_batch_pass_ms_bucket' "$tel_dir/snap1.prom"
dune exec bin/darm_opt.exe -- top --snapshot "$tel_dir/snap4" \
  --events "$tel_dir/ev4.jsonl" --once > "$tel_dir/top.txt"
grep -q 'kernels/s' "$tel_dir/top.txt"
grep -q 'p99' "$tel_dir/top.txt"
dune exec bin/darm_opt.exe -- batch --gen-fuzz 4 -m "$tel_dir/bad.jsonl" \
  --inject XBAR
dune exec bin/darm_opt.exe -- batch -m "$tel_dir/bad.jsonl" \
  -o "$tel_dir/bad.out.jsonl" --no-cache --no-history
if dune exec bin/darm_opt.exe -- batch -m "$tel_dir/bad.jsonl" \
    -o "$tel_dir/bad.out.jsonl" --no-cache --no-history --fail-on-error; then
  echo "ci: batch --fail-on-error missed an injected-bug manifest" >&2
  rm -rf "$tel_dir"; exit 1
fi
rm -rf "$tel_dir"

# observability: profile one kernel end to end and validate the trace
trace=$(mktemp /tmp/darm_trace.XXXXXX.json)
trap 'rm -f "$trace"' EXIT
dune exec bin/darm_opt.exe -- profile --kernel BIT -n 256 \
  --format chrome --trace-out "$trace"
test -s "$trace"
grep -q '"traceEvents"' "$trace"
grep -q '"meld.decision"' "$trace"
grep -q '"warp.diverge"' "$trace"

echo "ci: OK"
