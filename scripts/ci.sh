#!/usr/bin/env bash
# Tier-1 verification: build, full test suite, then a smoke pass of the
# evaluation harness (every kernel once, smallest config).  Any
# correctness failure exits non-zero.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build @all
dune runtest
dune exec bench/main.exe -- --smoke
