#!/usr/bin/env bash
# Tier-1 verification: build, full test suite, then a smoke pass of the
# evaluation harness (every kernel once, smallest config) and a profile
# trace of one kernel.  Any correctness failure exits non-zero.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build @all
dune runtest

# bench smoke pass; must leave a non-empty machine-readable summary
rm -f BENCH_darm.json
dune exec bench/main.exe -- --smoke
test -s BENCH_darm.json
grep -q '"schema":"darm-bench-v1"' BENCH_darm.json
grep -q '"geomean_speedup"' BENCH_darm.json

# observability: profile one kernel end to end and validate the trace
trace=$(mktemp /tmp/darm_trace.XXXXXX.json)
trap 'rm -f "$trace"' EXIT
dune exec bin/darm_opt.exe -- profile --kernel BIT -n 256 \
  --format chrome --trace-out "$trace"
test -s "$trace"
grep -q '"traceEvents"' "$trace"
grep -q '"meld.decision"' "$trace"
grep -q '"warp.diverge"' "$trace"

echo "ci: OK"
