(* Divergence analysis as a standalone tool: print, for every
   benchmark kernel, which branches are divergent and how much dynamic
   divergence the simulator actually observes — static analysis vs
   dynamic truth, side by side — plus the sanity checkers' verdict
   (barrier divergence, shared-memory races, hygiene lints).

     dune exec examples/divergence_report.exe
*)

module A = Darm_analysis
module CK = Darm_checks
module K = Darm_kernels
module E = Darm_harness.Experiment
module M = Darm_sim.Metrics

(* per-branch attribution rows accumulated across kernels for the
   top-5 table: (kernel, branch id, baseline stat, post-DARM stat) *)
let branch_rows : (string * string * M.branch_stat * M.branch_stat option) list
    ref =
  ref []

let collect_branches (tag : string) (r : E.result) : unit =
  List.iter
    (fun (id, s) ->
      let after = Hashtbl.find_opt r.E.opt.M.branches id in
      branch_rows := (tag, id, s, after) :: !branch_rows)
    (M.branch_stats r.E.base)

let () =
  Printf.printf "%-8s %18s %20s %16s %12s\n" "kernel" "divergent branches"
    "dynamic warp splits" "splits after DARM" "races";
  Printf.printf "%s\n" (String.make 79 '-');
  List.iter
    (fun (kernel : K.Kernel.t) ->
      let block_size = List.hd kernel.K.Kernel.block_sizes in
      let inst =
        kernel.K.Kernel.make ~seed:1 ~block_size
          ~n:(min kernel.K.Kernel.default_n 512)
      in
      let dvg = A.Divergence.compute inst.K.Kernel.func in
      let static_count =
        List.length (A.Divergence.divergent_branches dvg inst.K.Kernel.func)
      in
      let report = CK.Checker.check_func ~dvg inst.K.Kernel.func in
      let r = E.run kernel ~block_size ~n:(min kernel.K.Kernel.default_n 512) in
      collect_branches kernel.K.Kernel.tag r;
      Printf.printf "%-8s %18d %20d %16d %12s\n" kernel.K.Kernel.tag
        static_count r.E.base.Darm_sim.Metrics.divergent_branches
        r.E.opt.Darm_sim.Metrics.divergent_branches
        (CK.Race_check.verdict_to_string report.CK.Checker.verdict);
      List.iter
        (fun d -> Printf.printf "         %s\n" (CK.Diag.to_string d))
        report.CK.Checker.diags)
    K.Registry.all;
  print_newline ();
  (* the five branches that waste the most SIMD capacity across all
     kernels — the static branch ids here are the join key [darm_opt
     report] uses to attribute cycles saved to individual melds *)
  print_endline
    "top-5 most-divergent branches (by baseline idle-lane cycles), before \
     -> after DARM:";
  Printf.printf "%-8s %-16s %8s %12s %14s   %s\n" "kernel" "branch" "splits"
    "div cycles" "lost-lane cyc" "after DARM";
  Printf.printf "%s\n" (String.make 79 '-');
  let top5 =
    List.sort
      (fun (ka, ia, (a : M.branch_stat), _) (kb, ib, (b : M.branch_stat), _) ->
        match compare b.M.br_lost_lane_cycles a.M.br_lost_lane_cycles with
        | 0 -> compare (ka, ia) (kb, ib)
        | c -> c)
      !branch_rows
    |> List.filteri (fun i _ -> i < 5)
  in
  List.iter
    (fun (tag, id, (s : M.branch_stat), after) ->
      let after_str =
        match (after : M.branch_stat option) with
        | None -> "melded away"
        | Some a ->
            Printf.sprintf "%d splits / %d cyc" a.M.br_divergences
              a.M.br_cycles
      in
      Printf.printf "%-8s %-16s %8d %12d %14d   %s\n" tag id
        s.M.br_divergences s.M.br_cycles s.M.br_lost_lane_cycles after_str)
    top5;
  print_newline ();
  (* and one deliberately broken kernel, to show what a finding looks
     like (XBAR/XRACE/XRW are outside Registry.all for good reason) *)
  (match K.Registry.find_any "XRACE" with
  | None -> ()
  | Some bad ->
      let inst =
        bad.K.Kernel.make ~seed:1 ~block_size:64 ~n:bad.K.Kernel.default_n
      in
      let report = CK.Checker.check_func inst.K.Kernel.func in
      print_endline "a seeded-broken kernel, for contrast:";
      print_endline (CK.Checker.report_to_string report));
  print_newline ();
  print_endline
    "note: LUD's branch is statically divergent at every block size, but\n\
     dynamically uniform when half the block is a multiple of the warp\n\
     width - compare LUD here (divergent at its small default) with the\n\
     block-size sweep in Figure 8."
