(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table I, Table II, Figures 7-10) on the SIMT simulator,
   plus Bechamel wall-clock micro-benchmarks of the compile pipelines
   (one Test per Table II row).

   Experiment points fan out over a domain pool sized by DARM_JOBS
   (default: the core count); the printed figures are byte-identical
   for any pool size.  The process exits non-zero if any experiment
   fails its output-equivalence check.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig7 table2  # a subset
     dune exec bench/main.exe -- --smoke      # CI smoke pass
*)

module H = Darm_harness
module Registry = Darm_kernels.Registry
module Kernel = Darm_kernels.Kernel

(* correctness gate: every figure reports whether its experiments
   passed the built-in output-equivalence check, and one failure must
   fail the whole run *)
let all_ok = ref true

let gate (ok : bool) = if not ok then all_ok := false

(* per-kernel experiment points accumulated for BENCH_darm.json — the
   machine-readable perf trajectory tracked across PRs *)
let bench_results : H.Experiment.result list ref = ref []

let collect (rs : H.Experiment.result list) =
  bench_results := !bench_results @ rs

(* 1000+-block generated stress kernel (fuzz CFG depth 5, seed 8):
   exercises the analysis manager and the similarity prefilter at a
   scale no registry kernel reaches.  Deliberately NOT in the registry,
   so the hierarchical re-run below skips it (Registry.find fails) and
   sweeps never pick it up.  Generated kernels have no host reference;
   the oracle is differential — the baseline simulation's own output —
   so the gate still catches a miscompiling meld. *)
let stress_seed = 8

let stress_kernel : Kernel.t =
  let gen_cfg =
    { Darm_fuzz.Gen.default_cfg with Darm_fuzz.Gen.max_depth = 5 }
  in
  let make ~seed ~block_size ~n:_ =
    let inst = Darm_fuzz.Gen.instance ~cfg:gen_cfg ~seed ~block_size () in
    { inst with Kernel.reference = inst.Kernel.read_result }
  in
  {
    Kernel.name = "generated large-CFG stress kernel";
    tag = "STRESS1K";
    description =
      "fuzz-generated kernel with >1000 basic blocks; differential \
       output oracle";
    default_n = 128;
    block_sizes = [ 64 ];
    make;
  }

let run_stress () =
  print_newline ();
  print_endline "== STRESS1K: 1000+-block generated kernel, full meld pass ==";
  let r =
    H.Experiment.run ~seed:stress_seed stress_kernel ~block_size:64
  in
  Printf.printf "STRESS1K: pass_ms=%.1f speedup=%.3fx correct=%b\n"
    r.H.Experiment.t_ms (H.Experiment.speedup r) r.H.Experiment.correct;
  collect [ r ];
  gate (H.Experiment.all_correct [ r ])

let run_figures which =
  let want name = which = [] || List.mem name which in
  if want "table1" then gate (H.Figures.table1 ());
  if want "fig7" then begin
    let rs = H.Figures.fig7 () in
    collect rs;
    gate (H.Experiment.all_correct rs)
  end;
  if want "fig8" then begin
    let rs = H.Figures.fig8 () in
    collect rs;
    gate (H.Experiment.all_correct rs)
  end;
  if want "fig9" then
    gate (H.Experiment.all_correct (snd (H.Figures.fig9 ())));
  if want "fig10" then
    gate (H.Experiment.all_correct (snd (H.Figures.fig10 ())));
  if want "table2" then H.Figures.table2 ();
  if want "stress" then run_stress ();
  if want "ablation" then gate (H.Ablation.run ());
  if List.mem "csv" which then H.Csv_export.export ~dir:"bench_csv" ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of compile time (Table II's measurement,
   with proper statistics). *)

open Bechamel
open Toolkit

let compile_tests () =
  let mk_test (kernel : Kernel.t) (name : string)
      (pipeline : Darm_ir.Ssa.func -> unit) =
    let block_size = List.nth kernel.Kernel.block_sizes 1 in
    Test.make ~name
      (Staged.stage (fun () ->
           let inst =
             kernel.Kernel.make ~seed:1 ~block_size ~n:kernel.Kernel.default_n
           in
           pipeline inst.Kernel.func))
  in
  let o3 f =
    ignore (Darm_transforms.Simplify_cfg.run f);
    ignore (Darm_transforms.Constfold.run f);
    ignore (Darm_transforms.Dce.run f)
  in
  let darm f =
    o3 f;
    ignore (Darm_core.Pass.run f)
  in
  Test.make_grouped ~name:"compile"
    (List.concat_map
       (fun k ->
         [
           mk_test k (k.Kernel.tag ^ "/O3") o3;
           mk_test k (k.Kernel.tag ^ "/DARM") darm;
         ])
       Registry.real_world)

let run_bechamel () =
  print_newline ();
  print_endline "== Bechamel: compile-time micro-benchmarks (Table II) ==";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances (compile_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name ols_r acc -> (name, ols_r) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Printf.printf "%-24s %16s\n" "test" "time/run";
  Printf.printf "%s\n" (String.make 42 '-');
  List.iter
    (fun (name, r) ->
      let est =
        match Analyze.OLS.estimates r with
        | Some (t :: _) -> Printf.sprintf "%10.3f ms" (t /. 1e6)
        | _ -> "n/a"
      in
      Printf.printf "%-24s %16s\n" name est)
    rows

let () =
  let t_start = Unix.gettimeofday () in
  let args = List.tl (Array.to_list Sys.argv) in
  Printf.printf
    "DARM evaluation harness (simulated AMD-style GPU, warp size %d)\n"
    Darm_sim.Simulator.default_config.Darm_sim.Simulator.warp_size;
  Printf.printf "domain pool: %d job(s) (override with DARM_JOBS)\n"
    (H.Parallel_sweep.default_jobs ());
  if List.mem "--smoke" args || List.mem "smoke" args then begin
    let ok, rs = H.Figures.smoke () in
    collect rs;
    gate ok;
    (* the stress kernel is part of the smoke gate: a full meld pass
       over 1000+ blocks must stay inside the CI budget *)
    run_stress ()
  end
  else begin
    let figure_args =
      List.filter (fun a -> a <> "bechamel" && a <> "quick") args
    in
    if args = [] then begin
      run_figures [];
      run_bechamel ()
    end
    else begin
      if figure_args <> [] then run_figures figure_args;
      if List.mem "bechamel" args then run_bechamel ()
    end
  end;
  (* machine-readable summary: written and validated whenever any
     experiment points were collected (full run, fig7/fig8, --smoke) *)
  if !bench_results <> [] then begin
    H.Bench_json.write
      ~wall_s:(Unix.gettimeofday () -. t_start)
      !bench_results;
    Printf.printf "\nbench: wrote %s (%d points, geomean %.3fx)\n"
      H.Bench_json.default_path
      (List.length !bench_results)
      (H.Experiment.geomean (List.map H.Experiment.speedup !bench_results));
    (* re-run the collected matrix under the hierarchical memory model:
       both model variants land in ONE history record (flat and hier
       entries distinguished by their mem_model key), so bench-diff
       gates the hierarchical geomean alongside the flat one *)
    let hier_points =
      List.sort_uniq compare
        (List.map
           (fun (r : H.Experiment.result) ->
             (r.H.Experiment.tag, r.H.Experiment.block_size))
           !bench_results)
    in
    let hier_mm =
      Darm_sim.Simulator.Hier Darm_sim.Simulator.default_hier_params
    in
    let hier_results =
      H.Experiment.run_many
        (List.filter_map
           (fun (tag, bs) ->
             Registry.find tag
             |> Option.map (fun k () ->
                    H.Experiment.run ~mem_model:hier_mm k ~block_size:bs))
           hier_points)
    in
    gate (H.Experiment.all_correct hier_results);
    Printf.printf "bench: hier model re-run (%d points, geomean %.3fx)\n"
      (List.length hier_results)
      (H.Experiment.geomean (List.map H.Experiment.speedup hier_results));
    (* ...and under independent thread scheduling: the headline
       cross-model comparison.  The stack/its geomean pair quantifies
       how much of DARM's benefit survives when the hardware does not
       force IPDOM reconvergence; both trajectories ride in the same
       record (entries distinguished by their reconvergence key) so
       bench-diff gates them together *)
    let its_rc =
      Darm_sim.Simulator.Its Darm_sim.Simulator.default_its_params
    in
    let its_results =
      H.Experiment.run_many
        (List.filter_map
           (fun (tag, bs) ->
             Registry.find tag
             |> Option.map (fun k () ->
                    H.Experiment.run ~reconvergence:its_rc k ~block_size:bs))
           hier_points)
    in
    gate (H.Experiment.all_correct its_results);
    Printf.printf
      "bench: its model re-run (%d points, geomean %.3fx; stack %.3fx)\n"
      (List.length its_results)
      (H.Experiment.geomean (List.map H.Experiment.speedup its_results))
      (H.Experiment.geomean (List.map H.Experiment.speedup !bench_results));
    let wall_s = Unix.gettimeofday () -. t_start in
    let record =
      {
        (H.History.of_results ~wall_s ~mem_model:"flat+hier"
           ~reconvergence:"stack+its" ~time:(Unix.time ()) !bench_results)
        with
        H.History.r_entries =
          H.History.entries_of_results ~mem_model:"flat" !bench_results
          @ H.History.entries_of_results ~mem_model:"hier" hier_results
          @ H.History.entries_of_results ~reconvergence:"its" its_results;
      }
    in
    H.History.append record;
    Printf.printf "bench: appended run to %s\n" H.History.default_path
  end;
  if not !all_ok then begin
    prerr_endline "bench: correctness failures detected";
    exit 1
  end
