(* darm_opt: command-line driver for the DARM melding pipeline.

   Examples:
     darm_opt list
     darm_opt show --kernel BIT --block-size 128
     darm_opt meld --kernel BIT --block-size 128 --dump-after
     darm_opt meld --kernel SB3 --pass branch-fusion
     darm_opt divergence --kernel PCM
     darm_opt simulate --kernel BIT --block-size 128 -n 512
     darm_opt profile --kernel BIT --format chrome --trace-out trace.json
*)

open Cmdliner
module Kernel = Darm_kernels.Kernel
module Registry = Darm_kernels.Registry
module E = Darm_harness.Experiment
module Profile = Darm_harness.Profile
module Export = Darm_obs.Export

let find_kernel tag =
  match Registry.find tag with
  | Some k -> k
  | None ->
      Printf.eprintf "unknown kernel %s; available: %s\n" tag
        (String.concat ", " (Registry.tags ()));
      exit 2

let kernel_arg =
  let doc = "Benchmark kernel tag (see the list command)." in
  Arg.(value & opt string "BIT" & info [ "k"; "kernel" ] ~docv:"TAG" ~doc)

let block_size_arg =
  let doc = "Thread-block size." in
  Arg.(value & opt int 128 & info [ "b"; "block-size" ] ~docv:"N" ~doc)

let n_arg =
  let doc = "Number of input elements (defaults to the kernel's choice)." in
  Arg.(value & opt (some int) None & info [ "n" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Input random seed." in
  Arg.(value & opt int 2022 & info [ "seed" ] ~docv:"SEED" ~doc)

let pass_arg =
  let doc = "Transformation: darm, branch-fusion, tail-merge or none." in
  Arg.(value & opt string "darm" & info [ "p"; "pass" ] ~docv:"PASS" ~doc)

let jobs_arg =
  let doc =
    "Domain-pool size for independent simulations (default: DARM_JOBS from \
     the environment, else the core count)."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let mem_model_arg =
  let doc =
    "Memory model: flat (per-opcode latencies, the default) or hier \
     (coalescing/L1/LDS-conflict/MSHR hierarchy with per-site attribution; \
     see doc/observability.md)."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("flat", Darm_sim.Simulator.Flat);
             ( "hier",
               Darm_sim.Simulator.Hier Darm_sim.Simulator.default_hier_params
             );
           ])
        Darm_sim.Simulator.Flat
    & info [ "mem-model" ] ~docv:"MODEL" ~doc)

let reconvergence_arg =
  let doc =
    "Reconvergence model: stack (IPDOM SIMT stack, the default) or its \
     (independent thread scheduling: per-lane PCs, MinPC group issue, \
     opportunistic reconvergence; see doc/simulation.md)."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("stack", Darm_sim.Simulator.Stack);
             ( "its",
               Darm_sim.Simulator.Its Darm_sim.Simulator.default_its_params
             );
           ])
        Darm_sim.Simulator.Stack
    & info [ "reconvergence" ] ~docv:"MODEL" ~doc)

let format_arg =
  let doc = "Trace output format: chrome (Perfetto / chrome://tracing) or \
             jsonl (one event object per line)." in
  Arg.(
    value
    & opt (enum [ ("chrome", Export.Chrome); ("jsonl", Export.Jsonl) ])
        Export.Chrome
    & info [ "format" ] ~docv:"FMT" ~doc)

let trace_out_arg =
  let doc = "Write the structured execution trace to $(docv) (see \
             doc/observability.md)." in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let obs_transform_of_name name =
  match Profile.transform_named name with
  | Ok tf -> tf
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2

let write_trace ~format ~path trace =
  Export.write_file ~format ~path trace;
  Printf.printf ";; trace: %s (%d events, %s)\n" path
    (Darm_obs.Trace.length trace)
    (match format with Export.Chrome -> "chrome" | Export.Jsonl -> "jsonl")

let transform_of_name = function
  | "darm" -> E.darm_transform ()
  | "branch-fusion" -> E.branch_fusion_transform
  | "tail-merge" -> E.tail_merge_transform
  | "none" -> E.identity_transform
  | other ->
      Printf.eprintf "unknown pass %s\n" other;
      exit 2

let make_instance kernel ~seed ~block_size ~n =
  let n = Option.value ~default:kernel.Kernel.default_n n in
  kernel.Kernel.make ~seed ~block_size ~n

(* --- commands --- *)

let list_cmd =
  let run () =
    List.iter
      (fun k ->
        Printf.printf "%-8s %-36s block sizes: %s\n" k.Kernel.tag
          k.Kernel.name
          (String.concat ", " (List.map string_of_int k.Kernel.block_sizes)))
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available benchmark kernels.")
    Term.(const run $ const ())

let show_cmd =
  let run tag block_size n seed =
    let kernel = find_kernel tag in
    let inst = make_instance kernel ~seed ~block_size ~n in
    print_string (Darm_ir.Printer.func_to_string inst.Kernel.func)
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a kernel's SSA IR before any transformation.")
    Term.(const run $ kernel_arg $ block_size_arg $ n_arg $ seed_arg)

let divergence_cmd =
  let run tag block_size n seed =
    let kernel = find_kernel tag in
    let inst = make_instance kernel ~seed ~block_size ~n in
    let f = inst.Kernel.func in
    let dvg = Darm_analysis.Divergence.compute f in
    print_string (Darm_analysis.Divergence.report dvg f)
  in
  Cmd.v
    (Cmd.info "divergence"
       ~doc:"Run divergence analysis on a kernel and print the report.")
    Term.(const run $ kernel_arg $ block_size_arg $ n_arg $ seed_arg)

let meld_cmd =
  let module MR = Darm_obs.Metrics_registry in
  let dump_before =
    Arg.(value & flag & info [ "dump-before" ] ~doc:"Print the input IR.")
  in
  let dump_after =
    Arg.(value & flag & info [ "dump-after" ] ~doc:"Print the output IR.")
  in
  let no_prefilter =
    Arg.(
      value & flag
      & info [ "no-prefilter" ]
          ~doc:
            "Disable the similarity prefilter in front of the candidate \
             search (exhaustive pair scoring; the chosen melds are \
             identical either way).  Equivalent to DARM_NO_PREFILTER=1.")
  in
  let analysis_debug =
    Arg.(
      value & flag
      & info [ "analysis-debug" ]
          ~doc:
            "Cross-validate every cached analysis query against a \
             from-scratch recompute; fails loudly on a stale result.  \
             Equivalent to DARM_ANALYSIS_DEBUG=1.")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Export the pass's darm_pass_* counters (melds, scored and \
             prefiltered candidate pairs, avoided analysis recomputes) as \
             a metrics snapshot to $(docv).")
  in
  let metrics_fmt_arg =
    Arg.(
      value
      & opt (enum [ ("prom", `Prom); ("json", `Json) ]) `Prom
      & info [ "metrics-format" ] ~docv:"FMT"
          ~doc:"Metrics snapshot format: prom or json (darm-metrics-v1).")
  in
  let run tag block_size n seed pass before after no_prefilter analysis_debug
      metrics_out metrics_fmt =
    let kernel = find_kernel tag in
    let inst = make_instance kernel ~seed ~block_size ~n in
    let f = inst.Kernel.func in
    if before then begin
      print_endline ";; --- before ---";
      print_string (Darm_ir.Printer.func_to_string f)
    end;
    (* the darm pass runs directly (not through the transform wrapper)
       so the candidate-search and analysis-cache counters survive *)
    let rewrites, pass_stats =
      match pass with
      | "darm" ->
          let config =
            {
              Darm_core.Pass.default_config with
              Darm_core.Pass.prefilter = not no_prefilter;
              analysis_debug;
            }
          in
          let stats = Darm_core.Pass.run ~config f in
          (stats.Darm_core.Pass.melds_applied, Some stats)
      | _ ->
          let t = transform_of_name pass in
          (t.E.t_apply f, None)
    in
    Darm_ir.Verify.run_exn f;
    Printf.printf ";; pass %s applied %d rewrite(s)\n" pass rewrites;
    (match pass_stats with
    | None -> ()
    | Some s ->
        Printf.printf
          ";; candidates: %d scored, %d prefiltered; analysis: %d \
           recompute(s) avoided\n"
          s.Darm_core.Pass.pairs_scored
          s.Darm_core.Pass.candidates_prefiltered
          s.Darm_core.Pass.analysis_recomputes_avoided);
    if after then begin
      print_endline ";; --- after ---";
      print_string (Darm_ir.Printer.func_to_string f)
    end;
    match metrics_out, pass_stats with
    | None, _ | _, None -> ()
    | Some path, Some s ->
        let reg = MR.create () in
        Darm_core.Pass.fill_metrics reg ~labels:[ ("kernel", tag) ] s;
        let snap = MR.snapshot reg in
        let contents =
          match metrics_fmt with
          | `Prom -> MR.to_prometheus snap
          | `Json -> Darm_obs.Json.to_string (MR.to_json snap) ^ "\n"
        in
        Darm_obs.Fsio.write_atomic ~path contents;
        Printf.eprintf ";; metrics: %s (%d famil%s)\n" path
          (List.length snap)
          (if List.length snap = 1 then "y" else "ies")
  in
  Cmd.v
    (Cmd.info "meld" ~doc:"Apply a divergence-reduction pass to a kernel.")
    Term.(
      const run $ kernel_arg $ block_size_arg $ n_arg $ seed_arg $ pass_arg
      $ dump_before $ dump_after $ no_prefilter $ analysis_debug
      $ metrics_out_arg $ metrics_fmt_arg)

let simulate_cmd =
  let run tag block_size n seed pass trace_out format mem_model reconvergence
      =
    let kernel = find_kernel tag in
    let r, trace =
      match trace_out with
      | None ->
          (E.run ~transform:(transform_of_name pass) ~seed ?n ~mem_model
             ~reconvergence kernel ~block_size,
           None)
      | Some path ->
          let transform = obs_transform_of_name pass in
          let tr, r =
            Profile.run_point ~seed ?n ~mem_model ~reconvergence ~transform
              kernel ~block_size
          in
          (r, Some (path, tr))
    in
    let ws = E.sim_config.Darm_sim.Simulator.warp_size in
    Printf.printf "kernel %s, block size %d, pass %s (%d rewrites)\n" r.E.tag
      r.E.block_size r.E.transform_name r.E.rewrites;
    Printf.printf "  baseline: %s\n"
      (Darm_sim.Metrics.to_string r.E.base ~warp_size:ws);
    Printf.printf "  %-9s %s\n"
      (r.E.transform_name ^ ":")
      (Darm_sim.Metrics.to_string r.E.opt ~warp_size:ws);
    Printf.printf "  speedup: %.3fx   output %s\n" (E.speedup r)
      (if r.E.correct then "correct" else "INCORRECT");
    (match trace with
    | None -> ()
    | Some (path, tr) -> write_trace ~format ~path tr);
    if not r.E.correct then exit 1
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Simulate a kernel with and without a pass; report metrics and \
          verify output equivalence.  With --trace-out, also record the \
          structured execution trace.")
    Term.(
      const run $ kernel_arg $ block_size_arg $ n_arg $ seed_arg $ pass_arg
      $ trace_out_arg $ format_arg $ mem_model_arg $ reconvergence_arg)

let print_sweep_table (kernel : Kernel.t) (results : E.result list) : unit =
  Printf.printf "%-8s %8s %12s %12s %9s %9s %8s\n" "bench" "bs" "base cyc"
    "opt cyc" "speedup" "alu-util" "correct";
  List.iter2
    (fun block_size r ->
      Printf.printf "%-8s %8d %12d %12d %8.2fx %8.1f%% %8s\n" r.E.tag
        block_size r.E.base.Darm_sim.Metrics.cycles
        r.E.opt.Darm_sim.Metrics.cycles (E.speedup r)
        (Darm_sim.Metrics.alu_utilization r.E.opt
           ~warp_size:E.sim_config.Darm_sim.Simulator.warp_size)
        (if r.E.correct then "yes" else "NO"))
    kernel.Kernel.block_sizes results

let sweep_cmd =
  let run tag n seed pass jobs trace_out format mem_model reconvergence =
    let kernel = find_kernel tag in
    let results =
      match trace_out with
      | None ->
          let t = transform_of_name pass in
          E.run_many ?jobs
            (List.map
               (fun block_size () ->
                 E.run ~transform:t ~seed ?n ~mem_model ~reconvergence kernel
                   ~block_size)
               kernel.Kernel.block_sizes)
      | Some path ->
          let transform = obs_transform_of_name pass in
          let trace, results =
            Profile.sweep ?jobs ~seed ?n ~mem_model ~reconvergence ~transform
              kernel
          in
          write_trace ~format ~path trace;
          results
    in
    print_sweep_table kernel results;
    if not (E.all_correct results) then exit 1
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a kernel's full block-size sweep and tabulate the metrics.  \
          With --trace-out, also record the merged structured trace \
          (byte-identical for any --jobs count).")
    Term.(
      const run $ kernel_arg $ n_arg $ seed_arg $ pass_arg $ jobs_arg
      $ trace_out_arg $ format_arg $ mem_model_arg $ reconvergence_arg)

let profile_cmd =
  let out_arg =
    let doc = "Trace output file." in
    Arg.(
      value
      & opt string "trace.json"
      & info [ "o"; "trace-out" ] ~docv:"FILE" ~doc)
  in
  let run tag n seed pass jobs format trace_out =
    let kernel = find_kernel tag in
    let transform = obs_transform_of_name pass in
    let trace, results = Profile.sweep ?jobs ~seed ?n ~transform kernel in
    print_sweep_table kernel results;
    write_trace ~format ~path:trace_out trace;
    if not (E.all_correct results) then exit 1
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile a kernel's block-size sweep with full observability: \
          pass-pipeline spans and meld decisions (region, subgraph pair, \
          FP_S, accept/reject), per-warp divergence timelines of both the \
          baseline and transformed simulations, and per-block cycle spans \
          — written as a Chrome trace-event file (open in Perfetto) or \
          JSONL.  Output is byte-identical for any --jobs count.")
    Term.(
      const run $ kernel_arg $ n_arg $ seed_arg $ pass_arg $ jobs_arg
      $ format_arg $ out_arg)

let parse_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Textual IR file (.cir).")
  in
  let run file =
    match Darm_ir.Parser.parse_file file with
    | Ok m ->
        List.iter
          (fun f ->
            Darm_ir.Verify.run_exn f;
            print_string (Darm_ir.Printer.func_to_string f))
          m.Darm_ir.Ssa.funcs
    | Error msg ->
        Printf.eprintf "parse error: %s\n" msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "parse"
       ~doc:"Parse, verify and re-print a textual IR file (round-trip).")
    Term.(const run $ file)

let compile_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Textual IR file (.cir).")
  in
  let pipeline =
    Arg.(
      value
      & opt (list string) [ "simplify"; "darm" ]
      & info [ "passes" ] ~docv:"P1,P2,..."
          ~doc:
            "Comma-separated pipeline over: simplify, constfold, dce, \
             unroll, tail-merge, branch-fusion, darm, if-convert.")
  in
  let run file passes =
    let parsed =
      if Filename.check_suffix file ".hip" || Filename.check_suffix file ".cu"
      then Darm_frontend.Lower.compile_file file
      else Darm_ir.Parser.parse_file file
    in
    match parsed with
    | Error msg ->
        Printf.eprintf "parse error: %s\n" msg;
        exit 1
    | Ok m ->
        let apply f = function
          | "simplify" -> ignore (Darm_transforms.Simplify_cfg.run f)
          | "constfold" -> ignore (Darm_transforms.Constfold.run f)
          | "dce" -> ignore (Darm_transforms.Dce.run f)
          | "unroll" -> ignore (Darm_transforms.Loop_unroll.run f)
          | "tail-merge" -> ignore (Darm_transforms.Tail_merge.run f)
          | "branch-fusion" ->
              ignore (Darm_core.Pass.run_branch_fusion f)
          | "darm" -> ignore (Darm_core.Pass.run f)
          | "if-convert" ->
              ignore (Darm_transforms.Simplify_cfg.if_convert f)
          | other ->
              Printf.eprintf "unknown pass %s\n" other;
              exit 2
        in
        List.iter
          (fun f ->
            List.iter (apply f) passes;
            Darm_ir.Verify.run_exn f)
          m.Darm_ir.Ssa.funcs;
        print_string (Darm_ir.Printer.module_to_string m)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Parse a module (.cir textual IR, or .hip/.cu Mini-HIP source), \
          run a pass pipeline over every kernel, verify, and print the \
          resulting IR.")
    Term.(const run $ file $ pipeline)

let dot_cmd =
  let melded =
    Arg.(value & flag & info [ "melded" ] ~doc:"Run DARM before exporting.")
  in
  let run tag block_size n seed melded =
    let kernel = find_kernel tag in
    let inst = make_instance kernel ~seed ~block_size ~n in
    let f = inst.Kernel.func in
    if melded then ignore (Darm_core.Pass.run f);
    let dvg = Darm_analysis.Divergence.compute f in
    print_string
      (Darm_ir.Dot.func_to_dot
         ~highlight:(Darm_analysis.Divergence.is_divergent_branch dvg)
         f)
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:
         "Export a kernel's CFG as Graphviz dot (divergent branches \
          highlighted); pipe into `dot -Tsvg`.")
    Term.(
      const run $ kernel_arg $ block_size_arg $ n_arg $ seed_arg $ melded)

let trace_cmd =
  let run tag block_size n seed pass =
    let kernel = find_kernel tag in
    let inst = make_instance kernel ~seed ~block_size ~n in
    let f = inst.Kernel.func in
    let t = transform_of_name pass in
    ignore (t.E.t_apply f);
    Darm_ir.Verify.run_exn f;
    let config =
      { Darm_sim.Simulator.default_config with trace = Some print_endline }
    in
    let m =
      Darm_sim.Simulator.run ~config f ~args:inst.Kernel.args
        ~global:inst.Kernel.global inst.Kernel.launch
    in
    Printf.printf ";; %s\n"
      (Darm_sim.Metrics.to_string m
         ~warp_size:config.Darm_sim.Simulator.warp_size)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Execute a kernel printing one line per basic block a warp \
          executes - divergence appears as interleaved half-mask lines.")
    Term.(
      const run $ kernel_arg $ block_size_arg $ n_arg $ seed_arg $ pass_arg)

let check_cmd =
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Check every registry kernel (at its first block size) instead \
             of a single one.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the darm-check-v1 JSON report instead of text.")
  in
  let check_pass_arg =
    let doc =
      "Transformation to apply before checking: none, darm, branch-fusion \
       or tail-merge."
    in
    Arg.(value & opt string "none" & info [ "p"; "pass" ] ~docv:"PASS" ~doc)
  in
  let run tag block_size n seed pass all json =
    let kernels =
      if all then Registry.all
      else
        match Registry.find_any tag with
        | Some k -> [ k ]
        | None ->
            Printf.eprintf "unknown kernel %s; available: %s\n" tag
              (String.concat ", "
                 (Registry.tags ()
                 @ List.map
                     (fun k -> k.Kernel.tag)
                     Registry.negative));
            exit 2
    in
    let transform = transform_of_name pass in
    let reports =
      List.map
        (fun k ->
          let bs =
            if all then
              match k.Kernel.block_sizes with b :: _ -> b | [] -> block_size
            else block_size
          in
          let inst = make_instance k ~seed ~block_size:bs ~n in
          let f = inst.Kernel.func in
          ignore (transform.E.t_apply f);
          Darm_checks.Checker.check_func f)
        kernels
    in
    let module C = Darm_checks.Checker in
    if json then
      let js = List.map C.report_to_json reports in
      match js with
      | [ one ] when not all ->
          print_endline (Darm_obs.Json.to_string one)
      | _ -> print_endline (Darm_obs.Json.to_string (Darm_obs.Json.List js))
    else
      List.iter (fun r -> print_string (C.report_to_string r)) reports;
    let errors =
      List.fold_left (fun acc r -> acc + List.length (C.errors r)) 0 reports
    in
    if not json then
      Printf.printf ";; checked %d kernel(s), pass %s: %d error(s)\n"
        (List.length reports) transform.E.t_name errors;
    if errors > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the GPU sanity checkers (barrier divergence, shared-memory \
          races, IR hygiene) over a kernel — or all of them — optionally \
          after a transformation; non-zero exit on any error diagnostic.")
    Term.(
      const run $ kernel_arg $ block_size_arg $ n_arg $ seed_arg
      $ check_pass_arg $ all_flag $ json_flag)

let fuzz_cmd =
  let module O = Darm_fuzz.Oracle in
  let module G = Darm_fuzz.Gen in
  let module M = Darm_fuzz.Mutate in
  let module Sh = Darm_fuzz.Shrink in
  let module Corpus = Darm_fuzz.Corpus in
  let count =
    Arg.(value & opt int 50 & info [ "count" ] ~docv:"N"
           ~doc:"Number of generator seeds to run through the oracle.")
  in
  let seed_start =
    Arg.(value & opt int 0 & info [ "seed-start" ] ~docv:"S"
           ~doc:"First generator seed of the range.")
  in
  let fuzz_block_size =
    Arg.(value & opt int 64 & info [ "b"; "block-size" ] ~docv:"N"
           ~doc:"Thread-block size of the generated launches.")
  in
  let budget =
    Arg.(value & opt (some float) None & info [ "budget-s" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget; no new seed chunk starts past the \
                 deadline, so a generous budget never changes the outcome.")
  in
  let features =
    Arg.(value & opt string "all" & info [ "features" ] ~docv:"SPEC"
           ~doc:"Generator features: $(b,all), $(b,none), or a comma list \
                 drawn from loops-uniform, loops-divergent, barriers, \
                 shared-tile, nested-diamonds, switch-ladders.")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"Small generator profile (shallow nesting, short blocks).")
  in
  let inject =
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"TAG"
           ~doc:"Inject a seeded bug (XBAR, XRACE or XRW) into every \
                 generated kernel; the oracle must flag each one, so the \
                 exit status is non-zero exactly when detection works.")
  in
  let minimize =
    Arg.(value & flag & info [ "minimize" ]
           ~doc:"Delta-debug each failing seed to a minimal repro.")
  in
  let corpus_dir =
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR"
           ~doc:"With $(b,--minimize): save each shrunk repro to DIR as a \
                 replayable corpus entry.")
  in
  let replay_dir =
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"DIR"
           ~doc:"Replay a corpus directory instead of generating kernels; \
                 every entry must match its recorded expectation.")
  in
  let replay dir =
    let entries = Corpus.load_dir dir in
    if entries = [] then begin
      Printf.eprintf "no corpus entries under %s\n" dir;
      exit 2
    end;
    let bad = ref 0 in
    List.iter
      (fun (file, e) ->
        match e with
        | Error msg ->
            incr bad;
            Printf.printf "REPLAY %s: bad entry: %s\n" file msg
        | Ok entry -> (
            match Corpus.replay entry with
            | Ok () ->
                Printf.printf "REPLAY %s: ok (%s)\n" file
                  (Corpus.expectation_to_string entry.Corpus.en_expect)
            | Error msg ->
                incr bad;
                Printf.printf "REPLAY %s: %s\n" file msg))
      entries;
    Printf.printf "fuzz replay: %d entries, %d bad\n" (List.length entries)
      !bad;
    if !bad > 0 then exit 1
  in
  let seed_of_subject name =
    let stem =
      match String.index_opt name '+' with
      | Some i -> String.sub name 0 i
      | None -> name
    in
    if String.length stem > 5 && String.sub stem 0 5 = "fuzz_" then
      int_of_string_opt (String.sub stem 5 (String.length stem - 5))
    else None
  in
  let shrink_failure ~cfg ~inject ~block_size ~corpus_dir (fl : O.failure) =
    match seed_of_subject fl.O.fl_subject with
    | None ->
        Printf.printf "MINIMIZE %s: cannot recover seed\n" fl.O.fl_subject
    | Some seed ->
        let f = G.generate ~cfg ~seed () in
        (match inject with
        | Some bug -> (
            match M.inject bug f with
            | Ok () -> ()
            | Error e -> failwith ("inject: " ^ e))
        | None -> ());
        let text0 = Darm_ir.Printer.func_to_string f in
        let key0 = O.failure_key fl in
        let stages =
          List.filter
            (fun st -> st.O.st_name = fl.O.fl_stage)
            O.default_stages
        in
        (* only spend simulations on warp sizes that can reproduce the
           recorded failure *)
        let warps =
          if
            String.length fl.O.fl_detail >= 7
            && String.sub fl.O.fl_detail 0 7 = "warp=64"
          then [ 64 ]
          else O.warp_sizes
        in
        let still_failing t =
          let subj =
            O.subject_of_text ~name:fl.O.fl_subject ~block_size
              ~n:cfg.G.array_size ~input_seed:seed t
          in
          List.exists
            (fun f' -> O.failure_key f' = key0)
            (O.run_subject ~stages ~warps subj)
        in
        let r = Sh.minimize ~still_failing text0 in
        Printf.printf "MINIMIZED subject=%s key=%s blocks=%d steps=%d\n%s"
          fl.O.fl_subject key0 r.Sh.sh_blocks r.Sh.sh_steps r.Sh.sh_text;
        Option.iter
          (fun dir ->
            let entry =
              {
                Corpus.en_name =
                  String.map
                    (fun c -> if c = '+' then '-' else c)
                    fl.O.fl_subject;
                en_seed = seed;
                en_block_size = block_size;
                en_n = cfg.G.array_size;
                en_input_seed = seed;
                en_expect =
                  Corpus.Fail { stage = fl.O.fl_stage; kind = fl.O.fl_kind };
                en_note =
                  Some
                    (Printf.sprintf
                       "shrunk by darm_opt fuzz --minimize in %d steps"
                       r.Sh.sh_steps);
                en_text = r.Sh.sh_text;
              }
            in
            Printf.printf "CORPUS %s\n" (Corpus.save ~dir entry))
          corpus_dir
  in
  let run count seed_start block_size jobs budget_s features smoke inject
      minimize corpus_dir replay_dir =
    match replay_dir with
    | Some dir -> replay dir
    | None ->
        let features =
          match G.features_of_string features with
          | Ok fs -> fs
          | Error e ->
              Printf.eprintf "%s\n" e;
              exit 2
        in
        let cfg =
          { (if smoke then G.smoke_cfg else G.default_cfg) with G.features }
        in
        let inject =
          Option.map
            (fun tag ->
              match M.of_tag tag with
              | Some b -> b
              | None ->
                  Printf.eprintf "unknown bug tag %s (XBAR, XRACE, XRW)\n"
                    tag;
                  exit 2)
            inject
        in
        let seeds = List.init count (fun i -> seed_start + i) in
        let sum =
          O.run_seeds ?jobs ?budget_s ~cfg ?inject ~block_size ~seeds ()
        in
        List.iter
          (fun fl -> print_endline (O.failure_to_string fl))
          sum.O.sm_failures;
        (if minimize then
           (* one shrink per failing subject, in seed order *)
           let firsts =
             List.rev
               (List.fold_left
                  (fun acc (fl : O.failure) ->
                    if
                      List.exists
                        (fun (o : O.failure) ->
                          o.O.fl_subject = fl.O.fl_subject)
                        acc
                    then acc
                    else fl :: acc)
                  [] sum.O.sm_failures)
           in
           List.iter
             (shrink_failure ~cfg ~inject ~block_size ~corpus_dir)
             firsts);
        Printf.printf "fuzz: %d/%d seed(s), %d failure(s)%s\n"
          sum.O.sm_seeds_run sum.O.sm_seeds_total
          (List.length sum.O.sm_failures)
          (if sum.O.sm_budget_exhausted then " [budget exhausted]" else "");
        if sum.O.sm_failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generative conformance fuzzing: structured random kernels (loops, \
          barriers, shared tiles, nested diamonds) run through every \
          pipeline stage under a lockstep differential oracle; failures \
          shrink to minimal corpus repros.")
    Term.(
      const run $ count $ seed_start $ fuzz_block_size $ jobs_arg $ budget
      $ features $ smoke $ inject $ minimize $ corpus_dir $ replay_dir)

let report_cmd =
  let module Report = Darm_harness.Report in
  let module MR = Darm_obs.Metrics_registry in
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Report every registry kernel (at its first block size) instead \
             of a single one.")
  in
  let fmt_arg =
    let doc = "Output format: text, json (darm-report-v2) or markdown." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("markdown", `Md) ])
          `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Shorthand for --format json.")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Also export both runs' counters (including the per-branch \
             attribution series) as a metrics snapshot to $(docv).")
  in
  let metrics_fmt_arg =
    Arg.(
      value
      & opt (enum [ ("prom", `Prom); ("json", `Json) ]) `Prom
      & info [ "metrics-format" ] ~docv:"FMT"
          ~doc:
            "Metrics snapshot format: prom (Prometheus text exposition) or \
             json (darm-metrics-v1).")
  in
  let run tag block_size n seed jobs all fmt json metrics_out metrics_fmt
      mem_model reconvergence =
    let fmt = if json then `Json else fmt in
    let points =
      if all then
        List.map
          (fun k ->
            ( k,
              match k.Kernel.block_sizes with
              | b :: _ -> b
              | [] -> block_size ))
          Registry.all
      else [ (find_kernel tag, block_size) ]
    in
    let reports =
      Report.compute_many ?jobs ~seed ?n ~mem_model ~reconvergence points
    in
    (match fmt with
    | `Json -> (
        match reports with
        | [ one ] when not all ->
            print_endline (Darm_obs.Json.to_string (Report.to_json one))
        | _ ->
            print_endline
              (Darm_obs.Json.to_string (Report.many_to_json reports)))
    | `Text ->
        List.iteri
          (fun i r ->
            if i > 0 then print_newline ();
            print_string (Report.to_text r))
          reports
    | `Md ->
        List.iteri
          (fun i r ->
            if i > 0 then print_newline ();
            print_string (Report.to_markdown r))
          reports);
    (match metrics_out with
    | None -> ()
    | Some path ->
        let reg = MR.create () in
        List.iter (Report.fill_metrics reg) reports;
        let snap = MR.snapshot reg in
        let contents =
          match metrics_fmt with
          | `Prom -> MR.to_prometheus snap
          | `Json -> Darm_obs.Json.to_string (MR.to_json snap) ^ "\n"
        in
        Darm_obs.Fsio.write_atomic ~path contents;
        Printf.eprintf ";; metrics: %s (%d famil%s)\n" path (List.length snap)
          (if List.length snap = 1 then "y" else "ies"));
    if List.exists (fun r -> not r.Report.rp_correct) reports then exit 1
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Divergence attribution: run a kernel (or all of them) \
          baseline-vs-DARM and join the simulator's per-branch divergence \
          counters with the pass's meld provenance into a \
          cycles-saved-per-meld table, plus the per-access-site memory \
          table (coalescing, L1, conflicts, stalls under --mem-model \
          hier).  Per-meld rows plus an explicit residual row sum exactly \
          to the total cycle delta, and per-site memory deltas close the \
          same identity through the non-memory residual.  Output is \
          byte-identical for any --jobs count.")
    Term.(
      const run $ kernel_arg $ block_size_arg $ n_arg $ seed_arg $ jobs_arg
      $ all_flag $ fmt_arg $ json_flag $ metrics_out_arg $ metrics_fmt_arg
      $ mem_model_arg $ reconvergence_arg)

let batch_cmd =
  let module B = Darm_fuzz.Batch in
  let module Cache = Darm_harness.Result_cache in
  let module History = Darm_harness.History in
  let module MR = Darm_obs.Metrics_registry in
  let manifest_arg =
    let doc =
      "JSONL manifest of kernel specs, one darm-manifest-v1 object per \
       line (see doc/fleet.md)."
    in
    Arg.(
      required
      & opt (some string) None
      & info [ "m"; "manifest" ] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Result file: one darm-batchres-v1 JSON line per manifest \
               entry, in manifest order at any --jobs count." in
    Arg.(
      value
      & opt string "batch_results.jsonl"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let budget =
    Arg.(value & opt (some float) None & info [ "budget-s" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget; no new chunk starts past the deadline, \
                 so a generous budget never changes the outcome.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string Cache.default_dir
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Root of the content-addressed result cache.")
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ]
           ~doc:"Recompute every entry; neither read nor write the cache.")
  in
  let clear_cache =
    Arg.(value & flag & info [ "clear-cache" ]
           ~doc:"Empty the cache before running.")
  in
  let history_path_arg =
    Arg.(
      value
      & opt string History.default_path
      & info [ "history" ] ~docv:"FILE"
          ~doc:"Bench history file the run's throughput record appends to.")
  in
  let no_history =
    Arg.(value & flag & info [ "no-history" ]
           ~doc:"Do not append a throughput record to the bench history.")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Export the run's darm_batch_* counters as a metrics \
                snapshot to $(docv).")
  in
  let metrics_fmt_arg =
    Arg.(
      value
      & opt (enum [ ("prom", `Prom); ("json", `Json) ]) `Prom
      & info [ "metrics-format" ] ~docv:"FMT"
          ~doc:"Metrics snapshot format: prom or json (darm-metrics-v1).")
  in
  let gen_fuzz_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "gen-fuzz" ] ~docv:"COUNT"
          ~doc:
            "Instead of running, write a manifest of $(docv) consecutive \
             fuzz seeds to --manifest and exit.")
  in
  let seed_start =
    Arg.(value & opt int 0 & info [ "seed-start" ] ~docv:"S"
           ~doc:"With --gen-fuzz: first generator seed.")
  in
  let gen_block_size =
    Arg.(value & opt int 64 & info [ "b"; "block-size" ] ~docv:"N"
           ~doc:"With --gen-fuzz: thread-block size of the specs.")
  in
  let profile =
    Arg.(
      value
      & opt (enum [ ("smoke", true); ("default", false) ]) true
      & info [ "profile" ] ~docv:"PROFILE"
          ~doc:"With --gen-fuzz: generator profile, smoke or default.")
  in
  let gen_features =
    Arg.(value & opt string "all" & info [ "features" ] ~docv:"SPEC"
           ~doc:"With --gen-fuzz: generator feature spec.")
  in
  let gen_inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"TAG"
          ~doc:
            "With --gen-fuzz: graft a known bug (XBAR, XRACE or XRW) onto \
             every generated kernel, producing a known-bad manifest whose \
             specs the checker rejects — for exercising failure paths \
             (--fail-on-error, CI).")
  in
  let events_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Journal the run as a darm-events-v1 JSONL event stream to \
             $(docv) (run/chunk/spec lifecycle, cache hits/misses, \
             stalls).  The canonicalized stream (darm_opt events \
             --canonical) is byte-identical at any --jobs count.")
  in
  let snapshot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"BASE"
          ~doc:
            "Write periodic atomic metrics snapshots to $(docv).prom \
             (Prometheus text) and $(docv).json (darm-metrics-v1) while \
             the run is in flight — the darm_opt top data source.")
  in
  let cadence_arg =
    Arg.(value & opt float 1.0 & info [ "snapshot-cadence-s" ] ~docv:"S"
           ~doc:"Seconds between snapshot rewrites (with --snapshot).")
  in
  let stall_arg =
    Arg.(value & opt float 30. & info [ "stall-deadline-s" ] ~docv:"S"
           ~doc:
             "Flag a busy worker stalled after $(docv) seconds without a \
              completed spec (with --events/--snapshot).  Size it well \
              above the slowest expected spec.")
  in
  let fail_on_error =
    Arg.(
      value & flag
      & info [ "fail-on-error" ]
          ~doc:
            "Also exit non-zero when any spec failed to complete cleanly \
             (status error or check-failed).  Without it only incorrect \
             kernels — melding bugs — fail the run; fleet sweeps tolerate \
             the occasional degenerate generator seed.")
  in
  let run manifest out jobs budget_s cache_dir no_cache clear_cache
      history_path no_history metrics_out metrics_fmt gen_fuzz seed_start
      block_size smoke features inject events snapshot cadence_s
      stall_deadline_s fail_on_error =
    match gen_fuzz with
    | Some count ->
        (try
           B.write_fuzz_manifest ~path:manifest ~count ~seed_start
             ~block_size ~smoke ~features ?inject ()
         with Invalid_argument msg ->
           Printf.eprintf "batch: %s\n" msg;
           exit 2);
        Printf.printf ";; manifest: %s (%d fuzz spec(s))\n" manifest count
    | None -> (
        match B.read_manifest manifest with
        | Error msg ->
            Printf.eprintf "batch: %s\n" msg;
            exit 2
        | Ok specs ->
            let cache =
              if no_cache then None else Some (Cache.create ~dir:cache_dir ())
            in
            (match (clear_cache, cache) with
            | true, Some c ->
                Printf.eprintf ";; cache cleared (%d entrie(s))\n"
                  (Cache.clear c)
            | _ -> ());
            (* the registry lives through the run (live accounting), so
               --metrics-out exports it directly afterwards *)
            let reg = MR.create () in
            let sum =
              B.run ?jobs ?budget_s ?cache ~registry:reg ?events ?snapshot
                ~cadence_s ~stall_deadline_s ~out specs
            in
            Printf.printf ";; results: %s\n" out;
            (match events with
            | Some p -> Printf.eprintf ";; events: %s\n" p
            | None -> ());
            (match snapshot with
            | Some b -> Printf.eprintf ";; snapshot: %s.{prom,json}\n" b
            | None -> ());
            (match metrics_out with
            | None -> ()
            | Some path ->
                let snap = MR.snapshot reg in
                let contents =
                  match metrics_fmt with
                  | `Prom -> MR.to_prometheus snap
                  | `Json -> Darm_obs.Json.to_string (MR.to_json snap) ^ "\n"
                in
                Darm_obs.Fsio.write_atomic ~path contents;
                Printf.eprintf ";; metrics: %s\n" path);
            if not no_history then begin
              History.append ~path:history_path
                (History.of_batch ?jobs ~time:(Unix.gettimeofday ())
                   (B.to_batch_stats sum));
              Printf.eprintf ";; history: %s\n" history_path
            end;
            print_endline (B.summary_to_string sum);
            if
              sum.B.bt_incorrect > 0
              || (fail_on_error
                 && sum.B.bt_errors + sum.B.bt_check_failed > 0)
            then exit 1)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Fleet-scale sweep: stream a JSONL manifest of kernel specs \
          (registry benchmarks and/or fuzz seeds) through meld + check + \
          simulate on the domain pool, backed by a content-addressed \
          on-disk result cache.  Results are one JSON line per entry, in \
          manifest order and byte-identical at any --jobs count; a warm \
          cache replays stored bytes verbatim.  Appends a throughput \
          record (cache hit-rate, kernels/sec, p99 pass_ms) to the bench \
          history for the bench-diff sentinel.  --events and --snapshot \
          add live telemetry (see doc/observability.md); darm_opt top \
          renders it.  Exits non-zero on incorrect kernels, and with \
          --fail-on-error also on errored or checker-rejected specs.")
    Term.(
      const run $ manifest_arg $ out_arg $ jobs_arg $ budget $ cache_dir_arg
      $ no_cache $ clear_cache $ history_path_arg $ no_history
      $ metrics_out_arg $ metrics_fmt_arg $ gen_fuzz_arg $ seed_start
      $ gen_block_size $ profile $ gen_features $ gen_inject $ events_arg
      $ snapshot_arg $ cadence_arg $ stall_arg $ fail_on_error)

let top_cmd =
  let module MR = Darm_obs.Metrics_registry in
  let module Snapshot = Darm_obs.Snapshot in
  let module Ev = Darm_obs.Events in
  let module J = Darm_obs.Json in
  let snapshot_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"BASE"
          ~doc:
            "Snapshot base path of the batch run under observation \
             (reads $(docv).json, the darm-metrics-v1 rendering).")
  in
  let events_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:"Also tail the run's darm-events-v1 stream (last few \
                events at the bottom of the view).")
  in
  let once_flag =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Render one frame and exit (exit 2 when the snapshot \
                   is missing or invalid) instead of following the run.")
  in
  let interval_arg =
    Arg.(value & opt float 1.0 & info [ "interval-s" ] ~docv:"S"
           ~doc:"Refresh interval in follow mode.")
  in
  let gauge fams ?labels name =
    Option.map (fun s -> s.MR.s_value) (MR.find_series fams ?labels name)
  in
  let g0 fams name = Option.value ~default:0. (gauge fams name) in
  let render buf fams events =
    let bpf fmt = Printf.bprintf buf fmt in
    let total = g0 fams "darm_batch_total" in
    let done_ = g0 fams "darm_batch_done" in
    let pct = if total > 0. then 100. *. done_ /. total else 0. in
    bpf "darm batch — done %.0f/%.0f (%.1f%%)  health %.2f  wall %.1fs\n"
      done_ total pct (g0 fams "darm_run_health")
      (g0 fams "darm_batch_wall_seconds");
    let kps = g0 fams "darm_batch_kernels_per_sec" in
    let eta =
      if kps > 0. && total > done_ then
        Printf.sprintf "%.1fs" ((total -. done_) /. kps)
      else "-"
    in
    bpf "throughput %.1f kernels/s   ETA %s   cache %.0f hit(s) / %.0f \
         miss(es), hit-rate %.1f%%\n"
      kps eta
      (g0 fams "darm_batch_cache_hits_total")
      (g0 fams "darm_batch_cache_misses_total")
      (100. *. g0 fams "darm_batch_cache_hit_rate");
    bpf "status ok=%.0f incorrect=%.0f check-failed=%.0f errors=%.0f\n"
      (done_ -. g0 fams "darm_batch_incorrect_total"
      -. g0 fams "darm_batch_check_failed_total"
      -. g0 fams "darm_batch_errors_total")
      (g0 fams "darm_batch_incorrect_total")
      (g0 fams "darm_batch_check_failed_total")
      (g0 fams "darm_batch_errors_total");
    bpf "latency (ms)          p50       p90       p99     count\n";
    let lat_row label name =
      match MR.find_series fams name with
      | None -> ()
      | Some s ->
          let cell q =
            match MR.percentile s q with
            | Some v -> Printf.sprintf "%9.3f" v
            | None -> Printf.sprintf "%9s" "-"
          in
          bpf "  %-14s%s %s %s  %8d\n" label (cell 0.5) (cell 0.9)
            (cell 0.99) s.MR.s_count
    in
    lat_row "pass" "darm_batch_pass_ms";
    lat_row "sim" "darm_batch_sim_ms";
    lat_row "cache lookup" "darm_batch_cache_lookup_ms";
    lat_row "spec" "darm_batch_spec_ms";
    (match MR.find_series fams "darm_worker_state" with
    | None -> ()
    | Some _ ->
        let fam =
          List.find_opt (fun f -> f.MR.f_name = "darm_worker_state") fams
        in
        let series = match fam with Some f -> f.MR.f_series | None -> [] in
        let state_name v =
          if v >= 2. then "stalled" else if v >= 1. then "busy" else "idle"
        in
        let row s =
          let w =
            match List.assoc_opt "worker" s.MR.s_labels with
            | Some w -> w
            | None -> "?"
          in
          let beats =
            Option.value ~default:0.
              (gauge fams
                 ~labels:[ ("worker", w) ]
                 "darm_worker_heartbeats_total")
          in
          Printf.sprintf "%s:%s(%.0f)" w (state_name s.MR.s_value) beats
        in
        let sorted =
          List.sort
            (fun a b ->
              let num s =
                match List.assoc_opt "worker" s.MR.s_labels with
                | Some w -> ( try int_of_string w with _ -> max_int)
                | None -> max_int
              in
              compare (num a) (num b))
            series
        in
        bpf "workers: %s\n" (String.concat " " (List.map row sorted)));
    (match events with
    | None -> ()
    | Some views ->
        let tail =
          let n = List.length views in
          if n <= 6 then views
          else List.filteri (fun i _ -> i >= n - 6) views
        in
        let one v =
          let extra =
            match v.Ev.vw_ev with
            | "spec_finish" -> (
                match J.member "spec" v.Ev.vw_json with
                | Some (J.Int i) -> Printf.sprintf " spec=%d" i
                | _ -> "")
            | "chunk_start" | "chunk_finish" -> (
                match J.member "chunk" v.Ev.vw_json with
                | Some (J.Int i) -> Printf.sprintf " chunk=%d" i
                | _ -> "")
            | _ -> ""
          in
          Printf.sprintf "vt=%d %s%s" v.Ev.vw_vt v.Ev.vw_ev extra
        in
        bpf "events: %s\n" (String.concat " | " (List.map one tail)))
  in
  let read_events = function
    | None -> None
    | Some path -> (
        match
          try
            Some (In_channel.with_open_bin path In_channel.input_all)
          with Sys_error _ -> None
        with
        | None -> None
        | Some text -> (
            match Ev.read text with Ok vs -> Some vs | Error _ -> None))
  in
  let run base events once interval_s =
    let path = Snapshot.json_path base in
    let frame () =
      match Snapshot.read_json ~path with
      | Error msg -> Error msg
      | Ok fams ->
          let buf = Buffer.create 1024 in
          render buf fams (read_events events);
          Ok (buf, fams)
    in
    if once then (
      match frame () with
      | Error msg ->
          Printf.eprintf "top: %s\n" msg;
          exit 2
      | Ok (buf, _) -> print_string (Buffer.contents buf))
    else
      let interval = Float.max 0.1 interval_s in
      let rec loop () =
        (match frame () with
        | Error msg ->
            print_string "\027[2J\027[H";
            Printf.printf "top: waiting for %s (%s)\n" path msg;
            flush stdout
        | Ok (buf, fams) ->
            print_string "\027[2J\027[H";
            print_string (Buffer.contents buf);
            flush stdout;
            let total = g0 fams "darm_batch_total" in
            if total > 0. && g0 fams "darm_batch_done" >= total then exit 0);
        Unix.sleepf interval;
        loop ()
      in
      loop ()
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live health view of a darm_opt batch run, rendered from its \
          --snapshot files (and optionally its --events stream): \
          progress, kernels/s, ETA, cache hit-rate, per-spec latency \
          percentiles (p50/p90/p99), per-worker state and heartbeats.  \
          Follows the run until it completes; --once renders a single \
          frame for scripts and CI.")
    Term.(const run $ snapshot_arg $ events_arg $ once_flag $ interval_arg)

let events_cmd =
  let module Ev = Darm_obs.Events in
  let module J = Darm_obs.Json in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"darm-events-v1 JSONL stream to read.")
  in
  let validate_flag =
    Arg.(value & flag
         & info [ "validate-only" ]
             ~doc:"Only validate the stream (schema, event catalogue, \
                   strictly increasing vt); print the event count and \
                   exit, non-zero when invalid.")
  in
  let canonical_flag =
    Arg.(value & flag
         & info [ "canonical" ]
             ~doc:"Print the canonical form — runtime events dropped, rt \
                   envelopes stripped, vt renumbered — the byte-comparable \
                   artifact of the determinism contract (doc/fleet.md).")
  in
  let ev_filter =
    Arg.(
      value
      & opt (some string) None
      & info [ "ev" ] ~docv:"TYPE"
          ~doc:"Only print events of this type (e.g. spec_finish).")
  in
  let run file validate canonical ev_filter =
    let text =
      try In_channel.with_open_bin file In_channel.input_all
      with Sys_error msg ->
        Printf.eprintf "events: %s\n" msg;
        exit 2
    in
    if validate then (
      match Ev.validate text with
      | Ok n -> Printf.printf "events: %s: %d valid %s event(s)\n" file n
                  Ev.schema
      | Error msg ->
          Printf.eprintf "events: %s: %s\n" file msg;
          exit 2)
    else if canonical then (
      match Ev.canonicalize text with
      | Ok s -> print_string s
      | Error msg ->
          Printf.eprintf "events: %s: %s\n" file msg;
          exit 2)
    else
      match Ev.read text with
      | Error msg ->
          Printf.eprintf "events: %s: %s\n" file msg;
          exit 2
      | Ok views ->
          let scalar = function
            | J.Str s -> Some s
            | J.Int i -> Some (string_of_int i)
            | J.Float f -> Some (J.float_repr f)
            | J.Bool b -> Some (string_of_bool b)
            | J.Null -> Some "null"
            | J.List _ | J.Obj _ -> None
          in
          let fields ?(skip = []) = function
            | J.Obj kvs ->
                List.filter_map
                  (fun (k, v) ->
                    if List.mem k skip then None
                    else
                      match scalar v with
                      | Some s -> Some (Printf.sprintf "%s=%s" k s)
                      | None -> None)
                  kvs
            | _ -> []
          in
          List.iter
            (fun v ->
              if ev_filter = None || ev_filter = Some v.Ev.vw_ev then begin
                let core =
                  fields ~skip:[ "schema"; "vt"; "ev"; "rt" ] v.Ev.vw_json
                in
                let rt =
                  match J.member "rt" v.Ev.vw_json with
                  | Some o -> fields o
                  | None -> []
                in
                Printf.printf "vt=%-4d %-14s %s%s\n" v.Ev.vw_vt v.Ev.vw_ev
                  (String.concat " " core)
                  (if rt = [] then ""
                   else Printf.sprintf "  [rt %s]" (String.concat " " rt))
              end)
            views
  in
  Cmd.v
    (Cmd.info "events"
       ~doc:
         "Inspect a darm-events-v1 stream written by darm_opt batch \
          --events: pretty-print it (optionally filtered by event type), \
          validate it, or emit its canonical byte-comparable form for \
          determinism checks.")
    Term.(const run $ file_arg $ validate_flag $ canonical_flag $ ev_filter)

let bench_diff_cmd =
  let module History = Darm_harness.History in
  let history_arg =
    let doc = "Candidate history file (JSONL, darm-bench-hist-v2); the \
               candidate is its last record." in
    Arg.(
      value
      & opt string History.default_path
      & info [ "history" ] ~docv:"FILE" ~doc)
  in
  let baseline_arg =
    let doc =
      "Baseline history file; the baseline is its last record.  Default: \
       the candidate file itself, using its second-to-last record."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline-history" ] ~docv:"FILE" ~doc)
  in
  let validate_flag =
    Arg.(
      value & flag
      & info [ "validate-only" ]
          ~doc:
            "Only load and schema-check the history file; print the record \
             count and exit (non-zero on a corrupt or missing history).")
  in
  let tol name default doc =
    Arg.(value & opt float default & info [ name ] ~docv:"X" ~doc)
  in
  let geomean_tol =
    tol "geomean-tol" History.default_thresholds.History.max_geomean_drop
      "Relative geomean-speedup drop that counts as a regression."
  in
  let cycles_tol =
    tol "cycles-tol" History.default_thresholds.History.max_cycle_growth
      "Per-point relative opt_cycles growth that counts as a regression."
  in
  let pass_ms_factor =
    tol "pass-ms-factor" History.default_thresholds.History.pass_ms_factor
      "pass_ms beyond FACTOR * baseline + SLACK is a regression."
  in
  let pass_ms_slack =
    tol "pass-ms-slack" History.default_thresholds.History.pass_ms_slack
      "Absolute pass_ms slack in milliseconds."
  in
  let kps_ratio =
    tol "kps-ratio" History.default_thresholds.History.min_kps_ratio
      "Batch throughput (kernels/sec) below RATIO * baseline is a \
       regression; applies when both records carry batch stats."
  in
  let load_or_die path =
    match History.load ~path () with
    | Ok records -> records
    | Error msg ->
        Printf.eprintf "bench-diff: %s\n" msg;
        exit 2
  in
  let run history baseline validate gt ct pf ps kr =
    let cand_records = load_or_die history in
    if validate then begin
      Printf.printf "bench-diff: %s: %d valid %s record(s)\n" history
        (List.length cand_records) History.schema;
      if cand_records = [] then exit 2
    end
    else begin
      let last l = List.nth l (List.length l - 1) in
      let candidate =
        match cand_records with
        | [] ->
            Printf.eprintf "bench-diff: %s holds no records\n" history;
            exit 2
        | rs -> last rs
      in
      let baseline =
        match baseline with
        | Some path -> (
            match load_or_die path with
            | [] ->
                Printf.eprintf "bench-diff: %s holds no records\n" path;
                exit 2
            | rs -> last rs)
        | None -> (
            match cand_records with
            | _ :: _ :: _ ->
                List.nth cand_records (List.length cand_records - 2)
            | _ ->
                Printf.eprintf
                  "bench-diff: %s holds fewer than two records and no \
                   --baseline-history was given\n"
                  history;
                exit 2)
      in
      let thresholds =
        {
          History.max_geomean_drop = gt;
          max_cycle_growth = ct;
          pass_ms_factor = pf;
          pass_ms_slack = ps;
          min_kps_ratio = kr;
        }
      in
      let d = History.diff ~thresholds ~baseline candidate in
      print_string (History.diff_to_text d);
      if not (History.diff_ok d) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Regression sentinel: compare the last record of a bench history \
          (BENCH_history.jsonl) against the previous one — or against the \
          last record of a separate baseline history — under configurable \
          noise thresholds.  Speedups and geomeans are recomputed from the \
          stored cycle counts.  Exits non-zero on any regression.")
    Term.(
      const run $ history_arg $ baseline_arg $ validate_flag $ geomean_tol
      $ cycles_tol $ pass_ms_factor $ pass_ms_slack $ kps_ratio)

let main =
  let info =
    Cmd.info "darm_opt" ~version:"1.0"
      ~doc:
        "DARM control-flow melding: analyses, transformations and SIMT \
         simulation."
  in
  Cmd.group info
    [ list_cmd; show_cmd; divergence_cmd; meld_cmd; simulate_cmd; sweep_cmd;
      profile_cmd; parse_cmd;
      compile_cmd; dot_cmd; trace_cmd; check_cmd; fuzz_cmd; report_cmd;
      batch_cmd; top_cmd; events_cmd; bench_diff_cmd ]

let () = exit (Cmd.eval main)
