(** Region simplification (paper Definition 4): rewrite each SESE
    subgraph so that it has a {e single, dedicated, unconditional} exit
    edge, and so that its entry has a unique external predecessor.

    After simplification:
    - [sg_exit_src] is a block whose only instruction besides phis is
      [br sg_exit_dest], and it is the only subgraph block with an edge
      to [sg_exit_dest];
    - the phis of [sg_exit_dest] have exactly one incoming entry from the
      subgraph (via [sg_exit_src]).

    This mirrors the paper's conversion of regions into simple regions
    with fresh entry/exit blocks and makes the melding code generation
    uniform: the melded exit is always an unconditional branch that can
    be replaced by [condbr C, B_T', B_F']. *)

open Darm_ir
open Darm_ir.Ssa

(** Insert a fresh block [q] between a set of edges [srcs -> dest]:
    every [src] in [srcs] is redirected to [q] and [q] branches to
    [dest].  Phi nodes in [dest] are split: the entries for [srcs] move
    into a new phi in [q].  Returns [q]. *)
let split_edges ?edits (f : func) ~(srcs : block list) ~(dest : block)
    ~(name : string) : block =
  let q = mk_block name in
  append_block f q;
  Darm_analysis.Edit.note edits
    (Darm_analysis.Edit.Cfg_local
       (q.bid :: dest.bid :: List.map (fun b -> b.bid) srcs));
  let src_ids = List.map (fun b -> b.bid) srcs in
  List.iter
    (fun phi ->
      let from_srcs, others =
        List.partition
          (fun (_, blk) -> List.mem blk.bid src_ids)
          (phi_incoming phi)
      in
      match from_srcs with
      | [] -> ()
      | [ (v, _) ] -> set_phi_incoming phi (others @ [ (v, q) ])
      | _ :: _ :: _ ->
          let merged = mk_instr Op.Phi [||] [||] phi.ty in
          merged.parent <- Some q;
          q.instrs <- merged :: q.instrs;
          set_phi_incoming merged from_srcs;
          set_phi_incoming phi (others @ [ (Instr merged, q) ]))
    (phis dest);
  let t = mk_instr Op.Br [||] [| dest |] Types.Void in
  t.parent <- Some q;
  q.instrs <- q.instrs @ [ t ];
  List.iter (fun src -> redirect_edge src ~old_dest:dest ~new_dest:q) srcs;
  q

(** Blocks of [sg] with an edge to [sg_exit_dest]. *)
let exit_sources (sg : Region.subgraph) : block list =
  List.filter
    (fun b ->
      List.exists (fun s -> s.bid = sg.sg_exit_dest.bid) (successors b))
    (Region.subgraph_block_list sg)

(** Normalize the exit of [sg]: afterwards [sg_exit_src] is a dedicated
    block holding only [br sg_exit_dest].  Returns the (possibly
    updated) subgraph. *)
let normalize_exit ?edits (f : func) (sg : Region.subgraph) :
    Region.subgraph =
  match exit_sources sg with
  | [] ->
      invalid_arg "Simplify_region.normalize_exit: subgraph has no exit edge"
  | srcs ->
      (* Always introduce the dedicated exit block, even for a unique
         unconditional source: melding normalizes both subgraphs of a
         pair, and an unconditional insertion keeps the two sides
         isomorphic to each other. *)
      let q =
        split_edges ?edits f ~srcs ~dest:sg.sg_exit_dest ~name:"meld.exit"
      in
      Hashtbl.replace sg.sg_blocks q.bid q;
      { sg with sg_exit_src = q }

(** Unique external predecessor of the subgraph entry; splits the edge
    when the entry has several external predecessors or when an external
    predecessor also reaches other blocks (shared entry from the region
    entry's conditional branch). *)
let normalize_entry ?edits (f : func) (sg : Region.subgraph) :
    Region.subgraph * block =
  let preds_tbl = predecessors f in
  let external_preds =
    List.filter
      (fun p -> not (Region.in_subgraph sg p))
      (preds_of preds_tbl sg.sg_entry)
  in
  match external_preds with
  | [ p ]
    when (terminator p).op = Op.Br ->
      (sg, p)
  | [] ->
      invalid_arg "Simplify_region.normalize_entry: entry has no external pred"
  | ps ->
      (* Either several external predecessors, or a single one arriving
         via a conditional branch (e.g. the region entry E): insert a
         dedicated pre-entry block. *)
      let q =
        split_edges ?edits f ~srcs:ps ~dest:sg.sg_entry ~name:"meld.pre"
      in
      (sg, q)
