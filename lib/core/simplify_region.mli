(** Region simplification (paper Definition 4): rewrite a SESE subgraph
    so that it has a single, dedicated, unconditional exit edge and a
    unique external predecessor — the paper's conversion of regions into
    simple regions with fresh entry/exit blocks, which makes the melding
    code generation uniform.

    Every function takes an optional [?edits] log
    ({!Darm_analysis.Edit.log}) into which it reports the blocks it
    dirtied, so a caller holding a {!Darm_analysis.Manager} can
    invalidate selectively. *)

open Darm_ir

(** Insert a fresh block [q] between the edges [srcs -> dest]: every
    source is redirected to [q] and [q] branches to [dest].  Phi nodes
    in [dest] are split: the entries for [srcs] move into a new phi in
    [q].  Returns [q]. *)
val split_edges :
  ?edits:Darm_analysis.Edit.log ->
  Ssa.func -> srcs:Ssa.block list -> dest:Ssa.block -> name:string -> Ssa.block

(** Blocks of the subgraph with an edge to its exit destination. *)
val exit_sources : Region.subgraph -> Ssa.block list

(** Normalize the exit: afterwards [sg_exit_src] is a dedicated block
    holding only [br sg_exit_dest].  Always inserts the fresh block so
    that both subgraphs of a melding pair stay isomorphic. *)
val normalize_exit :
  ?edits:Darm_analysis.Edit.log ->
  Ssa.func -> Region.subgraph -> Region.subgraph

(** Unique external predecessor of the subgraph entry; splits the edge
    when the entry has several external predecessors or a single one
    arriving via a conditional branch (the region entry E). *)
val normalize_entry :
  ?edits:Darm_analysis.Edit.log ->
  Ssa.func -> Region.subgraph -> Region.subgraph * Ssa.block
