(** The DARM melding pass driver (paper Algorithm 1).

    Repeatedly: find a meldable divergent region, decompose both paths
    into SESE subgraph sequences, pick the most profitable isomorphic
    subgraph pair (greedily or through sequence alignment), meld it,
    clean up, recompute the control-flow analyses — until no profitable
    meld remains. *)

open Darm_ir
module Latency = Darm_analysis.Latency

(** How the subgraph pair to meld is chosen (paper §IV-C): [Greedy] is
    the paper's implementation (m × n profitability comparison);
    [Alignment] computes an optimal order-preserving Needleman–Wunsch
    alignment of the two subgraph sequences (Definition 7) and picks the
    most profitable aligned pair. *)
type pairing = Greedy | Alignment

(** Translation validation of each meld: after a candidate is melded
    (and cleaned up), the {!Darm_checks} sanity checkers re-run and the
    report is diffed against the pre-meld one with
    {!Darm_checks.Checker.new_errors}. *)
type validation =
  | Vnone  (** no validation (default) *)
  | Vfail  (** raise {!Validation_failed} on any new error diagnostic *)
  | Vreject
      (** roll back the offending meld from a snapshot, skip that
          candidate for the rest of the run, and keep going;
          rejections are counted in [stats.melds_rejected] *)

exception Validation_failed of string

type config = {
  latency : Latency.config;
  pairing : pairing;
  threshold : float;
      (** minimum FP_S to meld; the paper uses a small positive cutoff *)
  unpredicate : bool;
      (** move {e all} gap runs out of line (§IV-E);
          unsafe-to-speculate runs always move *)
  diamonds_only : bool;  (** branch-fusion compatibility mode *)
  max_iterations : int;
  run_cleanups : bool;  (** SimplifyCFG + DCE after each meld *)
  if_convert_after : bool;
      (** re-run the predicating if-conversion after the pass, modelling
          the later -O3 pipeline (the paper's §VI-C observation) *)
  obs : Darm_obs.Trace.t option;
      (** trace buffer for the pass-pipeline instrumentation: a
          [pass.run] span wrapping one [pass.iteration] span per
          Algorithm 1 iteration, each broken down into [pass.analysis]
          (manager queries), [pass.candidates] (region detection +
          pair search), [pass.apply] (normalization + melding) and
          [pass.cleanup] child spans; a [meld.decision] instant per
          scored subgraph pair (region entry, pair entries, FP_S,
          threshold, accept/reject — prefiltered pairs emit none) and
          a [meld.apply] instant for each meld actually performed.
          Translation validation adds a [meld.validation_failed]
          instant per offending meld.  [None] (the default) emits
          nothing and adds no measurable overhead. *)
  validate : validation;
      (** translation validation mode (see doc/static-analysis.md) *)
  prefilter : bool;
      (** similarity prefilter in front of the candidate search
          (default [true]): subgraph pairs whose
          {!Darm_analysis.Similarity} signatures prove the exhaustive
          search would reject them (CFG-shape mismatch, or FP_S upper
          bound at most [threshold]) are skipped before isomorphism
          matching.  The filter is {e exact} — the chosen melds are
          identical with it on or off — but skipped pairs emit no
          [meld.decision] trace instant.  ANDed with the
          [DARM_NO_PREFILTER] environment variable (set to a non-empty
          value other than ["0"] to force the exhaustive search). *)
  analysis_debug : bool;
      (** run the analysis manager in debug mode: every cache-served
          query is cross-validated against a from-scratch recompute and
          {!Darm_analysis.Manager.Stale_analysis} is raised on mismatch.
          ORed with the [DARM_ANALYSIS_DEBUG] environment variable. *)
}

val default_config : config

(** [default_config] restricted to single-block diamonds — branch fusion
    (Coutinho et al.), the Table I baseline. *)
val branch_fusion_config : config

(** Provenance of one applied meld — the join key between the pass and
    the simulator's per-branch divergence attribution: [darm_opt
    report] matches the [m_branches] ids against
    {!Darm_sim.Metrics.branch_stats} of the baseline run to attribute
    cycles saved to individual melds. *)
type meld_record = {
  m_index : int;  (** 1-based application order within the run *)
  m_region : string;
      (** region entry block name — the stable static branch id of the
          divergent branch this meld targets *)
  m_st : string;  (** melded true-path subgraph entry block name *)
  m_sf : string;  (** melded false-path subgraph entry block name *)
  m_fp_s : float;  (** the FP_S profitability score that won *)
  m_branches : string list;
      (** static branch ids subsumed by this meld: the region entry plus
          every conditional branch inside the two melded subgraphs
          (captured {e before} normalization renames blocks), sorted and
          deduplicated *)
}

type stats = {
  mutable iterations : int;
  mutable regions_found : int;
  mutable melds_applied : int;
  mutable melds_rejected : int;
      (** melds rolled back by [Vreject] translation validation *)
  mutable pairs_scored : int;
      (** subgraph pairs that went through full isomorphism matching +
          FP_S scoring (in [Alignment] mode a pair may be scored in
          both the alignment and the selection phase) *)
  mutable candidates_prefiltered : int;
      (** pair evaluations skipped by the similarity prefilter *)
  mutable analysis_recomputes_avoided : int;
      (** analysis queries served from the manager cache — each one is
          a recompute the unmanaged driver would have performed *)
  mutable melds : meld_record list;
      (** provenance of the applied melds, in application order;
          [Vreject]ed melds are removed, so
          [List.length melds = melds_applied] *)
  meld_stats : Meld.stats;
}

val empty_stats : unit -> stats

(** {2 Snapshot / restore}

    Used by [Vreject] validation to roll back a meld; exposed because
    the test suites exercise the round-trip directly. *)

(** Printed-IR snapshot of the function body. *)
val snapshot_func : Ssa.func -> string

(** Graft the re-parsed snapshot back onto [f] (in place).  Raises
    [Invalid_argument] if the snapshot no longer parses. *)
val restore_func : Ssa.func -> string -> unit

(** Run the melding pass to a fixpoint; returns the statistics.  The
    function is verified after every meld when [verify_each] is set (the
    test suites use this). *)
val run : ?config:config -> ?verify_each:bool -> Ssa.func -> stats

(** Export the run counters into a metrics registry as the
    [darm_pass_*] families ([iterations], [melds_applied],
    [melds_rejected], [pairs_scored], [candidates_prefiltered],
    [analysis_recomputes_avoided] — all [_total] counters; see
    doc/observability.md).  [labels] (e.g. [("kernel", tag)]) are
    attached to every sample. *)
val fill_metrics :
  Darm_obs.Metrics_registry.t ->
  ?labels:(string * string) list ->
  stats ->
  unit

(** Branch fusion: the diamond-only restriction of control-flow melding,
    used as a baseline in Table I and §VI. *)
val run_branch_fusion : ?verify_each:bool -> Ssa.func -> stats

(** Run the melding pass over every kernel of a module; returns the
    per-function statistics. *)
val run_module :
  ?config:config -> ?verify_each:bool -> Ssa.modul -> (string * stats) list
