(** Meldable divergent regions and their SESE subgraph decomposition
    (paper §IV-A/§IV-B, Definitions 1–5).

    A {e divergent region} is the smallest region enclosing a divergent
    branch: its entry [E] is the block with the branch, its exit [X] is
    [E]'s immediate post-dominator.  The region is {e meldable} when
    neither successor of [E] post-dominates the other (Definition 5),
    so both paths contain at least one SESE subgraph.

    Each path decomposes into an ordered sequence of SESE subgraphs: the
    {e cut points} of a path are the blocks that post-dominate the
    path's first block; the subgraph between two consecutive cut points
    is either a single basic block or a simple region (Definition 3).
    The sequence order coincides with the post-dominance order used for
    subgraph alignment (Definition 7). *)

open Darm_ir
module Domtree = Darm_analysis.Domtree
module Divergence = Darm_analysis.Divergence

type subgraph = {
  sg_entry : Ssa.block;
  sg_blocks : (int, Ssa.block) Hashtbl.t;
      (** includes entry and exit_src *)
  sg_exit_src : Ssa.block;
      (** unique block carrying the exit edge (after
          {!Simplify_region}); before simplification an arbitrary
          representative *)
  sg_exit_dest : Ssa.block;
      (** the next cut point (not part of the subgraph) *)
}

type t = {
  r_entry : Ssa.block;  (** E — ends in the divergent conditional branch *)
  r_cond : Ssa.value;   (** the branch condition C *)
  r_exit : Ssa.block;   (** X = ipdom(E) *)
  r_t_succ : Ssa.block;
  r_f_succ : Ssa.block;
  r_t_side : Ssa.block list;
      (** blocks reachable from the true successor without passing
          through X *)
  r_f_side : Ssa.block list;
}

val in_subgraph : subgraph -> Ssa.block -> bool
val subgraph_block_list : subgraph -> Ssa.block list
val subgraph_size : subgraph -> int

(** [detect f dvg dt pdt b] checks whether [b] is the entry of a
    meldable divergent region (Definition 5) and returns it.  Beyond the
    branch conditions, every block of both paths must be dominated by
    [b] and post-dominated by the exit — the defining property of a
    region — which rules out pseudo-regions whose reachability sets leak
    through loop back edges into unrelated control flow.  [preds] (when
    supplied) must be the current predecessor table of [f] and saves
    rebuilding it per closure check. *)
val detect :
  ?preds:(int, Ssa.block list) Hashtbl.t ->
  Ssa.func -> Divergence.t -> Domtree.t -> Domtree.t -> Ssa.block -> t option

(** Ordered SESE subgraph sequences of the two paths; earlier subgraphs
    execute first. *)
val true_subgraphs : Domtree.t -> t -> subgraph list

val false_subgraphs : Domtree.t -> t -> subgraph list
