(** Subgraph melding code generation (paper §IV-D/§IV-E, Algorithm 2).

    Given two isomorphic SESE subgraphs [S_T] / [S_F] of a meldable
    divergent region with branch condition [C], this module produces one
    melded subgraph executed by both paths:

    - corresponding basic blocks are processed in pre-order
      (linearization), so dominating definitions are melded before uses;
    - within each block pair, the body instructions are aligned with
      Needleman–Wunsch under the FP_I score; aligned pairs ("I-I") are
      cloned once, gap instructions ("I-G") are cloned as-is;
    - operands of melded instructions are looked up through the operand
      map; where the true-side and false-side operands still differ, a
      [select C] chooses between them (reused within a block for repeated
      pairs);
    - phi nodes are never merged with selects in front of them; instead
      both sides' phis are copied into the melded block (paper: "Melding
      phi nodes") and redundant copies are left to the post
      optimizations;
    - values defined on one path {e outside} the subgraphs but used
      inside them no longer dominate the melded code; they are routed
      through entry phis with [undef] on the opposite edge (paper Fig. 4,
      "pre-processing");
    - the melded exit ends in [condbr C, B_T', B_F'] where the fresh
      blocks [B_T'] / [B_F'] jump to the original exit destinations and
      give the exit phis distinguishable predecessors (paper: "Melding
      branch instructions");
    - finally, {e unpredication} moves runs of gap instructions into
      fresh blocks guarded by [C] (true-side runs) or its complement
      (false-side runs), merging their values back with phis whose
      opposite-edge value is [undef] (paper §IV-E, Fig. 3c).  Runs
      containing instructions that are unsafe to speculate (stores,
      possibly-trapping divisions, loads) are {e always} unpredicated;
      pure runs only when the [unpredicate] flag is set. *)

open Darm_ir
open Darm_ir.Ssa
module Latency = Darm_analysis.Latency
module Domtree = Darm_analysis.Domtree

type side = T | F

type provenance = Melded | Gap of side

type stats = {
  mutable melded_pairs : int;       (** I-I pairs collapsed into one *)
  mutable gap_instrs : int;         (** I-G instructions cloned *)
  mutable selects_inserted : int;
  mutable entry_phis : int;
  mutable unpredicated_runs : int;
}

let empty_stats () =
  {
    melded_pairs = 0;
    gap_instrs = 0;
    selects_inserted = 0;
    entry_phis = 0;
    unpredicated_runs = 0;
  }

type env = {
  fn : func;
  cond : value;
  dt : Domtree.t;
  lat : Latency.config;
  s_t : Region.subgraph;
  s_f : Region.subgraph;
  pre_t : block;
  pre_f : block;
  operand_map : (int, value) Hashtbl.t;  (** original instr id -> melded *)
  block_map_t : (int, block) Hashtbl.t;  (** S_T block id -> melded block *)
  block_map_f : (int, block) Hashtbl.t;
  provenance : (int, provenance) Hashtbl.t;  (** melded instr id -> origin *)
  entry_phi_cache : (int, value) Hashtbl.t;  (** outside def id -> phi *)
  mutable melded_entry : block option;
  mutable exit_fixups : (block * block) list;
      (** (exit destination, fresh exit block B') pairs whose phi
          incoming values still need side-aware resolution *)
  stats : stats;
}

let lookup env (v : value) : value =
  match v with
  | Instr i -> (
      match Hashtbl.find_opt env.operand_map i.id with
      | Some m -> m
      | None -> v)
  | Int _ | Bool _ | Float _ | Undef _ | Param _ -> v

(* Pre-processing phis (paper Fig. 4): route a definition that only
   dominates one entry edge through a phi at the melded entry. *)
let entry_phi env (d : instr) ~(from_true : bool) : value =
  match Hashtbl.find_opt env.entry_phi_cache d.id with
  | Some v -> v
  | None ->
      let m0 =
        match env.melded_entry with
        | Some b -> b
        | None -> invalid_arg "Meld.entry_phi: no melded entry yet"
      in
      let phi = mk_instr Op.Phi [||] [||] d.ty in
      phi.parent <- Some m0;
      m0.instrs <- phi :: m0.instrs;
      let incoming =
        if from_true then [ (Instr d, env.pre_t); (Undef d.ty, env.pre_f) ]
        else [ (Undef d.ty, env.pre_t); (Instr d, env.pre_f) ]
      in
      (* If the melded entry is a loop header, the back edges carry the
         phi's own value around the loop. *)
      let internal_preds =
        let tbl = predecessors env.fn in
        List.filter
          (fun p -> p.bid <> env.pre_t.bid && p.bid <> env.pre_f.bid)
          (preds_of tbl m0)
      in
      let incoming =
        incoming @ List.map (fun p -> (Instr phi, p)) internal_preds
      in
      set_phi_incoming phi incoming;
      Hashtbl.replace env.entry_phi_cache d.id (Instr phi);
      env.stats.entry_phis <- env.stats.entry_phis + 1;
      Instr phi

(** Translate an original operand into a value valid inside the melded
    subgraph: melded instructions map through the operand map; values
    defined above the region pass through unchanged; values defined on
    one side outside the subgraph get an entry phi. *)
let resolve env (v : value) : value =
  match lookup env v with
  | Instr d as looked ->
      if Hashtbl.mem env.provenance d.id then looked
      else begin
        (* an original instruction: check dominance over both entries *)
        let dom_t = Domtree.instr_dominates env.dt d (terminator env.pre_t) in
        let dom_f = Domtree.instr_dominates env.dt d (terminator env.pre_f) in
        if dom_t && dom_f then looked
        else entry_phi env d ~from_true:dom_t
      end
  | other -> other

(* select reuse: one per (block, vt, vf) triple *)
let value_key (v : value) : string =
  match v with
  | Instr i -> "i" ^ string_of_int i.id
  | Int k -> "c" ^ string_of_int k
  | Bool b -> "b" ^ string_of_bool b
  | Float x -> "f" ^ Printf.sprintf "%h" x
  | Undef t -> "u" ^ Types.to_string t
  | Param p -> "p" ^ string_of_int p.pindex

let select_for env (blk : block) (anchor : instr) (vt : value) (vf : value)
    (cache : (string * string, value) Hashtbl.t) : value =
  let key = (value_key vt, value_key vf) in
  match Hashtbl.find_opt cache key with
  | Some s -> s
  | None ->
      let ty =
        match value_ty vt, value_ty vf with
        | Types.Ptr a, Types.Ptr b -> Types.Ptr (Types.join_ptr a b)
        | ta, _ -> ta
      in
      let sel = mk_instr Op.Select [| env.cond; vt; vf |] [||] ty in
      sel.parent <- Some blk;
      (* insert before the instruction that needs it *)
      let rec go = function
        | [] -> [ sel ]
        | x :: tl -> if x.id = anchor.id then sel :: x :: tl else x :: go tl
      in
      blk.instrs <- go blk.instrs;
      Hashtbl.replace env.provenance sel.id Melded;
      Hashtbl.replace cache key (Instr sel);
      env.stats.selects_inserted <- env.stats.selects_inserted + 1;
      Instr sel

(* After operand substitution some result types must be recomputed:
   geps and selects over pointers may have degraded to flat. *)
let refresh_result_ty (i : instr) =
  match i.op with
  | Op.Gep -> (
      match value_ty i.operands.(0) with
      | Types.Ptr a -> i.ty <- Types.Ptr a
      | _ -> ())
  | Op.Select -> (
      match value_ty i.operands.(1), value_ty i.operands.(2) with
      | Types.Ptr a, Types.Ptr b -> i.ty <- Types.Ptr (Types.join_ptr a b)
      | _ -> ())
  | _ -> ()

type clone_record =
  | Both_src of instr * instr * instr  (** melded, orig_t, orig_f *)
  | Gap_src of instr * instr * side    (** clone, orig, side *)
  | Phi_copy of instr * instr * side   (** copy, orig phi, side *)
  | Term_both of instr * instr * instr (** melded term, orig_t, orig_f *)

(** The main melding procedure.  [pairs] is the isomorphism
    correspondence in pre-order; the subgraphs must be normalized
    ({!Simplify_region}) and [dt] computed after normalization.
    Returns the melded entry block. *)
let run ?edits (fn : func) ~(cond : value) ~(dt : Domtree.t)
    ~(lat : Latency.config) ~(s_t : Region.subgraph)
    ~(s_f : Region.subgraph) ~(pre_t : block) ~(pre_f : block)
    ~(pairs : (block * block) list) ~(unpredicate : bool) ~(stats : stats) :
    block =
  (* dirty set for the Edit protocol: blocks created or deleted here,
     the rewired entry predecessors, and the exit destinations whose
     incoming edges and phis change *)
  let dirty : int list ref = ref [] in
  let touch (b : block) = dirty := b.bid :: !dirty in
  let env =
    {
      fn;
      cond;
      dt;
      lat;
      s_t;
      s_f;
      pre_t;
      pre_f;
      operand_map = Hashtbl.create 64;
      block_map_t = Hashtbl.create 8;
      block_map_f = Hashtbl.create 8;
      provenance = Hashtbl.create 64;
      entry_phi_cache = Hashtbl.create 8;
      melded_entry = None;
      exit_fixups = [];
      stats;
    }
  in
  (* -------- pass 0: create melded blocks -------- *)
  let melded_blocks =
    List.map
      (fun (bt, bf) ->
        let m = mk_block ("m." ^ bt.bname) in
        append_block fn m;
        touch m;
        Hashtbl.replace env.block_map_t bt.bid m;
        Hashtbl.replace env.block_map_f bf.bid m;
        (bt, bf, m))
      pairs
  in
  (match melded_blocks with
  | (_, _, m0) :: _ -> env.melded_entry <- Some m0
  | [] -> invalid_arg "Meld.run: empty correspondence");
  let melded_of_t b = Hashtbl.find env.block_map_t b.bid in
  let _melded_of_f b = Hashtbl.find env.block_map_f b.bid in
  (* -------- pass 1: clone instructions -------- *)
  let records : clone_record list ref = ref [] in
  let record r = records := r :: !records in
  List.iter
    (fun (bt, bf, m) ->
      (* phis from both sides are copied, never merged (selects cannot
         precede them); incoming lists are fixed up in pass 2 *)
      List.iter
        (fun (orig, side) ->
          let copy = mk_instr Op.Phi [||] [||] orig.ty in
          copy.parent <- Some m;
          m.instrs <- m.instrs @ [ copy ];
          Hashtbl.replace env.operand_map orig.id (Instr copy);
          Hashtbl.replace env.provenance copy.id Melded;
          record (Phi_copy (copy, orig, side)))
        (List.map (fun p -> (p, T)) (phis bt)
        @ List.map (fun p -> (p, F)) (phis bf));
      (* aligned body *)
      let alignment = Darm_align.Instr_align.align_blocks lat bt bf in
      List.iter
        (fun item ->
          match item with
          | Darm_align.Sequence.Both (it, if_) ->
              let clone = mk_instr it.op (Array.copy it.operands) [||] it.ty in
              clone.parent <- Some m;
              m.instrs <- m.instrs @ [ clone ];
              Hashtbl.replace env.operand_map it.id (Instr clone);
              Hashtbl.replace env.operand_map if_.id (Instr clone);
              Hashtbl.replace env.provenance clone.id Melded;
              env.stats.melded_pairs <- env.stats.melded_pairs + 1;
              record (Both_src (clone, it, if_))
          | Darm_align.Sequence.Left it ->
              let clone = mk_instr it.op (Array.copy it.operands) [||] it.ty in
              clone.parent <- Some m;
              m.instrs <- m.instrs @ [ clone ];
              Hashtbl.replace env.operand_map it.id (Instr clone);
              Hashtbl.replace env.provenance clone.id (Gap T);
              env.stats.gap_instrs <- env.stats.gap_instrs + 1;
              record (Gap_src (clone, it, T))
          | Darm_align.Sequence.Right if_ ->
              let clone =
                mk_instr if_.op (Array.copy if_.operands) [||] if_.ty
              in
              clone.parent <- Some m;
              m.instrs <- m.instrs @ [ clone ];
              Hashtbl.replace env.operand_map if_.id (Instr clone);
              Hashtbl.replace env.provenance clone.id (Gap F);
              env.stats.gap_instrs <- env.stats.gap_instrs + 1;
              record (Gap_src (clone, if_, F)))
        alignment;
      (* terminator *)
      let tt = terminator bt and tf = terminator bf in
      let is_exit_t blk = not (Region.in_subgraph s_t blk) in
      match tt.op with
      | Op.Br when is_exit_t tt.blocks.(0) ->
          (* melded exit: condbr C, B_T', B_F' *)
          let bt' = mk_block "m.exit.t" and bf' = mk_block "m.exit.f" in
          append_block fn bt';
          append_block fn bf';
          touch bt';
          touch bf';
          let jt =
            mk_instr Op.Br [||] [| s_t.sg_exit_dest |] Types.Void
          in
          jt.parent <- Some bt';
          bt'.instrs <- [ jt ];
          let jf =
            mk_instr Op.Br [||] [| s_f.sg_exit_dest |] Types.Void
          in
          jf.parent <- Some bf';
          bf'.instrs <- [ jf ];
          let term =
            mk_instr Op.Condbr [| cond |] [| bt'; bf' |] Types.Void
          in
          term.parent <- Some m;
          m.instrs <- m.instrs @ [ term ];
          Hashtbl.replace env.provenance term.id Melded;
          (* exit-destination phis: retarget the incoming edges; the
             values are resolved side-aware after pass 2 (they may be
             one-sided definitions needing an entry phi, paper Fig. 4) *)
          List.iter
            (fun phi ->
              let updated =
                List.map
                  (fun (v, blk) ->
                    if blk.bid = bt.bid then (v, bt') else (v, blk))
                  (phi_incoming phi)
              in
              set_phi_incoming phi updated)
            (phis s_t.sg_exit_dest);
          List.iter
            (fun phi ->
              let updated =
                List.map
                  (fun (v, blk) ->
                    if blk.bid = bf.bid then (v, bf') else (v, blk))
                  (phi_incoming phi)
              in
              set_phi_incoming phi updated)
            (phis s_f.sg_exit_dest);
          env.exit_fixups <-
            (s_t.sg_exit_dest, bt') :: (s_f.sg_exit_dest, bf')
            :: env.exit_fixups
      | Op.Br ->
          let term =
            mk_instr Op.Br [||] [| melded_of_t tt.blocks.(0) |] Types.Void
          in
          term.parent <- Some m;
          m.instrs <- m.instrs @ [ term ];
          Hashtbl.replace env.provenance term.id Melded
      | Op.Condbr ->
          (* normalization guarantees conditional branches stay internal *)
          assert (Region.in_subgraph s_t tt.blocks.(0));
          assert (Region.in_subgraph s_t tt.blocks.(1));
          let term =
            mk_instr Op.Condbr
              (Array.copy tt.operands)
              [| melded_of_t tt.blocks.(0); melded_of_t tt.blocks.(1) |]
              Types.Void
          in
          term.parent <- Some m;
          m.instrs <- m.instrs @ [ term ];
          Hashtbl.replace env.provenance term.id Melded;
          record (Term_both (term, tt, tf))
      | _ ->
          invalid_arg "Meld.run: unexpected terminator in subgraph")
    melded_blocks;
  (* -------- pass 2: set operands -------- *)
  let select_caches : (int, (string * string, value) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let cache_for (m : block) =
    match Hashtbl.find_opt select_caches m.bid with
    | Some c -> c
    | None ->
        let c = Hashtbl.create 8 in
        Hashtbl.replace select_caches m.bid c;
        c
  in
  let set_both (clone : instr) (it : instr) (if_ : instr) =
    let m = match clone.parent with Some b -> b | None -> assert false in
    let cache = cache_for m in
    let ops =
      Array.mapi
        (fun k vt_orig ->
          let vt = resolve env vt_orig in
          let vf = resolve env if_.operands.(k) in
          if value_equal vt vf then vt
          else select_for env m clone vt vf cache)
        it.operands
    in
    clone.operands <- ops;
    refresh_result_ty clone
  in
  List.iter
    (fun r ->
      match r with
      | Both_src (clone, it, if_) -> set_both clone it if_
      | Term_both (term, tt, tf) ->
          let m = match term.parent with Some b -> b | None -> assert false in
          let cache = cache_for m in
          let vt = resolve env tt.operands.(0) in
          let vf = resolve env tf.operands.(0) in
          let c =
            if value_equal vt vf then vt
            else select_for env m term vt vf cache
          in
          term.operands <- [| c |]
      | Gap_src (clone, _orig, _side) ->
          clone.operands <- Array.map (resolve env) clone.operands;
          refresh_result_ty clone
      | Phi_copy (copy, orig, side) ->
          let m0 = match env.melded_entry with Some b -> b | None -> assert false in
          let my_block =
            match copy.parent with Some b -> b | None -> assert false
          in
          let map_pred blk =
            match side with
            | T -> (
                match Hashtbl.find_opt env.block_map_t blk.bid with
                | Some mb -> Some mb
                | None -> None)
            | F -> (
                match Hashtbl.find_opt env.block_map_f blk.bid with
                | Some mb -> Some mb
                | None -> None)
          in
          let incoming =
            List.map
              (fun (v, blk) ->
                match map_pred blk with
                | Some mb -> (resolve env v, mb)
                | None ->
                    (* external predecessor: only at the melded entry *)
                    (lookup env v, (match side with T -> pre_t | F -> pre_f)))
              (phi_incoming orig)
          in
          (* at the melded entry the opposite edge needs an undef entry *)
          let incoming =
            if my_block.bid = m0.bid then begin
              let opposite = match side with T -> pre_f | F -> pre_t in
              if
                not
                  (List.exists
                     (fun (_, blk) -> blk.bid = opposite.bid)
                     incoming)
              then incoming @ [ (Undef copy.ty, opposite) ]
              else incoming
            end
            else incoming
          in
          set_phi_incoming copy incoming)
    (List.rev !records);
  (* -------- pass 2b: resolve exit-phi incoming values -------- *)
  (* A value flowing out of the region along the melded exit edge may be
     defined on only one side outside the subgraphs; it must then be
     routed through an entry phi exactly like in-region uses. *)
  List.iter
    (fun (dest, b') ->
      List.iter
        (fun phi ->
          let updated =
            List.map
              (fun (v, blk) ->
                if blk.bid = b'.bid then (resolve env v, blk) else (v, blk))
              (phi_incoming phi)
          in
          set_phi_incoming phi updated)
        (phis dest))
    env.exit_fixups;
  (* -------- pass 3: replace external uses of the original values ----- *)
  let melded_ids = Hashtbl.create 64 in
  List.iter
    (fun (bt, bf, _) ->
      List.iter (fun i -> Hashtbl.replace melded_ids i.id ()) bt.instrs;
      List.iter (fun i -> Hashtbl.replace melded_ids i.id ()) bf.instrs)
    melded_blocks;
  iter_instrs fn (fun user ->
      (* skip instructions that are about to be deleted *)
      let in_doomed =
        match user.parent with
        | Some b ->
            Region.in_subgraph s_t b || Region.in_subgraph s_f b
        | None -> false
      in
      if not in_doomed then
        user.operands <-
          Array.map
            (fun v ->
              match v with
              | Instr d when Hashtbl.mem melded_ids d.id -> lookup env v
              | _ -> v)
            user.operands);
  (* -------- pass 4: rewire entries and delete the originals -------- *)
  let m0 = match env.melded_entry with Some b -> b | None -> assert false in
  redirect_edge pre_t ~old_dest:s_t.sg_entry ~new_dest:m0;
  redirect_edge pre_f ~old_dest:s_f.sg_entry ~new_dest:m0;
  touch pre_t;
  touch pre_f;
  touch s_t.sg_exit_dest;
  touch s_f.sg_exit_dest;
  List.iter
    (fun b ->
      touch b;
      remove_block fn b)
    (Region.subgraph_block_list s_t);
  List.iter
    (fun b ->
      touch b;
      remove_block fn b)
    (Region.subgraph_block_list s_f);
  (* -------- pass 5: unpredication -------- *)
  let unpredicate_block (m : block) =
    (* repeatedly extract the first run that must move *)
    let continue_ = ref true in
    let current = ref m in
    while !continue_ do
      let blk = !current in
      let body_instrs =
        List.filter
          (fun i -> i.op <> Op.Phi && not (Op.is_terminator i.op))
          blk.instrs
      in
      (* find first maximal same-side gap run; also return the scan
         position after it so pure runs can be skipped *)
      let rec find_run acc side = function
        | i :: tl -> (
            match Hashtbl.find_opt env.provenance i.id with
            | Some (Gap s) when side = None || side = Some s ->
                find_run (i :: acc) (Some s) tl
            | _ ->
                if acc = [] then find_run [] None tl
                else (List.rev acc, side, i :: tl))
        | [] -> (List.rev acc, side, [])
      in
      (* the first run that must move: every run when unpredicating,
         otherwise only runs containing unsafe-to-speculate
         instructions — a pure run may stay in line, but scanning must
         continue past it, or an unsafe load/store behind it would be
         left to execute speculatively *)
      let rec find_movable = function
        | [] -> None
        | instrs -> (
            match find_run [] None instrs with
            | [], _, _ -> None
            | run, side, rest ->
                if
                  unpredicate
                  || List.exists
                       (fun i -> Op.unsafe_to_speculate i.op)
                       run
                then Some (run, side)
                else find_movable rest)
      in
      match find_movable body_instrs with
      | None -> continue_ := false
      | Some (run_instrs, side) ->
      begin
        let side = match side with Some s -> s | None -> assert false in
        let run_ids = List.map (fun i -> i.id) run_instrs in
        (* split blk into head / guard / tail *)
        let guard = mk_block (blk.bname ^ ".split") in
        let tail = mk_block (blk.bname ^ ".tail") in
        append_block fn guard;
        append_block fn tail;
        touch guard;
        touch tail;
        let rec partition_instrs seen_run = function
          | [] -> ([], [])
          | i :: tl ->
              if List.mem i.id run_ids then
                let h, t = partition_instrs true tl in
                (h, t)
              else if seen_run then ([], i :: tl)
              else
                let h, t = partition_instrs false tl in
                (i :: h, t)
        in
        let head_instrs, tail_instrs = partition_instrs false blk.instrs in
        blk.instrs <- head_instrs;
        List.iter (fun i -> i.parent <- Some guard) run_instrs;
        guard.instrs <- run_instrs;
        List.iter (fun i -> i.parent <- Some tail) tail_instrs;
        tail.instrs <- tail_instrs;
        (* successors' phis now come from tail *)
        List.iter
          (fun s -> phi_replace_incoming_block s ~old_pred:blk ~new_pred:tail)
          (Array.to_list (terminator tail).blocks);
        (* branch head -> guard/tail on cond (true side) or swapped *)
        let targets =
          match side with
          | T -> [| guard; tail |]
          | F -> [| tail; guard |]
        in
        let hterm = mk_instr Op.Condbr [| cond |] targets Types.Void in
        hterm.parent <- Some blk;
        blk.instrs <- blk.instrs @ [ hterm ];
        Hashtbl.replace env.provenance hterm.id Melded;
        let gterm = mk_instr Op.Br [||] [| tail |] Types.Void in
        gterm.parent <- Some guard;
        guard.instrs <- guard.instrs @ [ gterm ];
        Hashtbl.replace env.provenance gterm.id Melded;
        (* values escaping the guard get a phi in tail *)
        List.iter
          (fun r ->
            if not (Types.equal r.ty Types.Void) then begin
              let escaping =
                List.filter
                  (fun u ->
                    match u.parent with
                    | Some pb -> pb.bid <> guard.bid
                    | None -> false)
                  (users fn (Instr r))
              in
              if escaping <> [] then begin
                let phi = mk_instr Op.Phi [||] [||] r.ty in
                phi.parent <- Some tail;
                tail.instrs <- phi :: tail.instrs;
                Hashtbl.replace env.provenance phi.id Melded;
                set_phi_incoming phi
                  [ (Instr r, guard); (Undef r.ty, blk) ];
                List.iter
                  (fun u ->
                    if u.op = Op.Phi then begin
                      let updated =
                        List.map
                          (fun (v, src) ->
                            if value_equal v (Instr r) && src.bid <> guard.bid
                            then (Instr phi, src)
                            else (v, src))
                          (phi_incoming u)
                      in
                      set_phi_incoming u updated
                    end
                    else
                      u.operands <-
                        Array.map
                          (fun v ->
                            if value_equal v (Instr r) then Instr phi else v)
                          u.operands)
                  escaping
              end
            end)
          run_instrs;
        env.stats.unpredicated_runs <- env.stats.unpredicated_runs + 1;
        (* keep scanning the tail for further runs *)
        current := tail
      end
    done
  in
  List.iter (fun (_, _, m) -> unpredicate_block m) melded_blocks;
  (* -------- pass 6: dominance repair --------
     Melding merges the two paths, so a definition on one side no longer
     dominates the side's remaining blocks downstream of the melded
     subgraph (they are now also reachable through the other side's
     entry).  Such uses are dynamically dead for wrong-side threads;
     statically they are routed through an entry phi with undef on the
     opposite edge — the general form of the paper's Fig. 4
     pre-processing. *)
  let dt2 = Domtree.compute fn in
  let repair (d : instr) : value option =
    let dom_t = Domtree.instr_dominates dt2 d (terminator pre_t) in
    let dom_f = Domtree.instr_dominates dt2 d (terminator pre_f) in
    if dom_t <> dom_f then Some (entry_phi env d ~from_true:dom_t) else None
  in
  iter_instrs fn (fun u ->
      if u.op = Op.Phi then begin
        let updated =
          List.map
            (fun (v, src) ->
              match v with
              | Instr d
                when not (Domtree.instr_dominates dt2 d (terminator src)) -> (
                  match repair d with
                  | Some v' -> (v', src)
                  | None -> (v, src))
              | _ -> (v, src))
            (phi_incoming u)
        in
        set_phi_incoming u updated
      end
      else
        u.operands <-
          Array.map
            (fun v ->
              match v with
              | Instr d when not (Domtree.instr_dominates dt2 d u) -> (
                  match repair d with Some v' -> v' | None -> v)
              | _ -> v)
            u.operands);
  (* -------- pass 7: pointer type repair --------
     Operand substitution can widen a melded pointer definition to flat
     (a select over mixed-space operands joins to Flat, and geps follow
     their base).  A phi copied with its original concrete-space type —
     in particular an unpredication phi from an {e earlier} meld whose
     sides this meld just merged — would then "narrow" the widened
     value, which the verifier rejects.  Repair only instructions the
     widening made invalid, propagating to a fixpoint; valid types are
     never touched, so unaffected kernels keep their exact latencies. *)
  let changed = ref true in
  while !changed do
    changed := false;
    iter_instrs fn (fun i ->
        match i.op with
        | Op.Phi -> (
            match i.ty with
            | Types.Ptr rs when not (Types.addrspace_equal rs Types.Flat) ->
                let narrows =
                  Array.exists
                    (fun v ->
                      match v with
                      | Undef _ -> false
                      | _ -> (
                          match value_ty v with
                          | Types.Ptr vs ->
                              not (Types.addrspace_equal rs vs)
                          | _ -> false))
                    i.operands
                in
                if narrows then begin
                  i.ty <- Types.Ptr Types.Flat;
                  i.operands <-
                    Array.map
                      (function Undef _ -> Undef i.ty | v -> v)
                      i.operands;
                  changed := true
                end
            | _ -> ())
        | Op.Gep -> (
            match value_ty i.operands.(0), i.ty with
            | Types.Ptr base, Types.Ptr rs
              when not (Types.addrspace_equal base rs) ->
                i.ty <- Types.Ptr base;
                changed := true
            | _ -> ())
        | Op.Select -> (
            match i.ty, value_ty i.operands.(1), value_ty i.operands.(2) with
            | Types.Ptr rs, Types.Ptr a, Types.Ptr b
              when (not (Types.addrspace_equal rs Types.Flat))
                   && not
                        (Types.addrspace_equal rs a
                        && Types.addrspace_equal rs b) ->
                i.ty <- Types.Ptr (Types.join_ptr a b);
                changed := true
            | _ -> ())
        | _ -> ())
  done;
  Darm_analysis.Edit.note edits (Darm_analysis.Edit.Cfg_local !dirty);
  m0
