(** Subgraph melding code generation (paper §IV-D/§IV-E, Algorithm 2).

    Given two isomorphic, normalized SESE subgraphs of a meldable
    divergent region with branch condition [C], produces one melded
    subgraph executed by both paths: block pairs are processed in
    pre-order; within each pair the body instructions are aligned with
    Needleman–Wunsch under FP_I; aligned pairs are cloned once with
    [select C] disambiguating differing operands; phis are copied from
    both sides; one-sided outside definitions are routed through entry
    phis with [undef] on the opposite edge (paper Fig. 4); the melded
    exit ends in [condbr C, B_T', B_F'] so exit phis can distinguish
    paths; and {e unpredication} moves runs of gap instructions into
    guarded blocks (always for unsafe-to-speculate runs, and for all
    runs when requested). *)

open Darm_ir
module Latency = Darm_analysis.Latency
module Domtree = Darm_analysis.Domtree

type stats = {
  mutable melded_pairs : int;     (** I-I pairs collapsed into one *)
  mutable gap_instrs : int;       (** I-G instructions cloned *)
  mutable selects_inserted : int;
  mutable entry_phis : int;       (** Fig. 4 pre-processing phis *)
  mutable unpredicated_runs : int;
}

val empty_stats : unit -> stats

(** The main melding procedure.  [pairs] is the isomorphism
    correspondence in pre-order; the subgraphs must be normalized
    ({!Simplify_region}) with unique external predecessors [pre_t] /
    [pre_f], and [dt] computed after normalization.  Returns the melded
    entry block.

    [edits] (when supplied) receives one {!Darm_analysis.Edit.Cfg_local}
    edit listing every block this meld created or deleted, the rewired
    entry predecessors and the exit destinations — the input to
    {!Darm_analysis.Manager.note}'s selective invalidation. *)
val run :
  ?edits:Darm_analysis.Edit.log ->
  Ssa.func ->
  cond:Ssa.value ->
  dt:Domtree.t ->
  lat:Latency.config ->
  s_t:Region.subgraph ->
  s_f:Region.subgraph ->
  pre_t:Ssa.block ->
  pre_f:Ssa.block ->
  pairs:(Ssa.block * Ssa.block) list ->
  unpredicate:bool ->
  stats:stats ->
  Ssa.block
