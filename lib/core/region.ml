(** Meldable divergent regions and their SESE subgraph decomposition
    (paper §IV-A/§IV-B, Definitions 1–5).

    A {e divergent region} is the smallest region enclosing a divergent
    branch: its entry [E] is the block with the branch, its exit [X] is
    [E]'s immediate post-dominator.  The region is {e meldable} when
    neither successor of [E] post-dominates the other (Definition 5), so
    both the true and the false path contain at least one SESE subgraph.

    Each path decomposes into an ordered sequence of SESE subgraphs: the
    {e cut points} of a path are the blocks that post-dominate the path's
    first block; the subgraph between two consecutive cut points is
    either a single basic block or a simple region (Definition 3).  The
    sequence order coincides with the post-dominance order used for
    subgraph alignment (Definition 7). *)

open Darm_ir.Ssa
module Cfg = Darm_analysis.Cfg
module Domtree = Darm_analysis.Domtree
module Divergence = Darm_analysis.Divergence

type subgraph = {
  sg_entry : block;
  sg_blocks : (int, block) Hashtbl.t;  (** includes entry and exit_src *)
  sg_exit_src : block;  (** unique block carrying the exit edge (after
                            {!Simplify_region}); before simplification this
                            is an arbitrary representative *)
  sg_exit_dest : block;  (** the next cut point (not part of the subgraph) *)
}

type t = {
  r_entry : block;   (** E — ends in the divergent conditional branch *)
  r_cond : value;    (** the branch condition C *)
  r_exit : block;    (** X = ipdom(E) *)
  r_t_succ : block;
  r_f_succ : block;
  r_t_side : block list;  (** blocks reachable from the true successor
                              without passing through X *)
  r_f_side : block list;
}

let in_subgraph (s : subgraph) (b : block) = Hashtbl.mem s.sg_blocks b.bid

let subgraph_block_list (s : subgraph) : block list =
  Hashtbl.fold (fun _ b acc -> b :: acc) s.sg_blocks []

let subgraph_size (s : subgraph) = Hashtbl.length s.sg_blocks

(** Side sets must be disjoint and closed: every edge out of a side block
    stays on that side or goes to [X]; every edge into a side block other
    than the side's entry comes from within the side.  This is what makes
    the region transformable without re-routing unrelated control flow. *)
let side_closed ?preds (f : func) ~(side : block list)
    ~(side_entry : block) ~(region_entry : block) ~(exit_ : block) : bool =
  let in_side = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace in_side b.bid ()) side;
  let preds = match preds with Some p -> p | None -> predecessors f in
  List.for_all
    (fun b ->
      List.for_all
        (fun s -> Hashtbl.mem in_side s.bid || s.bid = exit_.bid)
        (successors b)
      && List.for_all
           (fun p ->
             Hashtbl.mem in_side p.bid
             || (b.bid = side_entry.bid && p.bid = region_entry.bid))
           (preds_of preds b))
    side

(** [detect f dvg dt pdt b] checks whether [b] is the entry of a
    meldable divergent region (Definition 5) and returns it.  Besides
    the branch conditions, every block of both paths must be dominated
    by [b] and post-dominated by the exit — the defining property of a
    region — which rules out pseudo-regions whose reachability sets leak
    through loop back edges into unrelated control flow. *)
let detect ?preds (f : func) (dvg : Divergence.t) (dt : Domtree.t)
    (pdt : Domtree.t) (b : block) : t option =
  if not (Divergence.is_divergent_branch dvg b) then None
  else
    let term = terminator b in
    let t_succ = term.blocks.(0) and f_succ = term.blocks.(1) in
    match Domtree.idom pdt b with
    | None -> None
    | Some x ->
        if
          t_succ.bid = f_succ.bid || t_succ.bid = x.bid || f_succ.bid = x.bid
          || Domtree.dominates pdt t_succ f_succ
          || Domtree.dominates pdt f_succ t_succ
        then None
        else
          let t_side = Cfg.reachable_without t_succ ~stop:[ x ] in
          let f_side = Cfg.reachable_without f_succ ~stop:[ x ] in
          let disjoint =
            let ids = Hashtbl.create 16 in
            List.iter (fun blk -> Hashtbl.replace ids blk.bid ()) t_side;
            List.for_all (fun blk -> not (Hashtbl.mem ids blk.bid)) f_side
          in
          let dominated side =
            List.for_all
              (fun blk ->
                Domtree.dominates dt b blk && Domtree.dominates pdt x blk)
              side
          in
          if
            disjoint
            && dominated t_side && dominated f_side
            && side_closed ?preds f ~side:t_side ~side_entry:t_succ
                 ~region_entry:b ~exit_:x
            && side_closed ?preds f ~side:f_side ~side_entry:f_succ
                 ~region_entry:b ~exit_:x
          then
            Some
              {
                r_entry = b;
                r_cond = term.operands.(0);
                r_exit = x;
                r_t_succ = t_succ;
                r_f_succ = f_succ;
                r_t_side = t_side;
                r_f_side = f_side;
              }
          else None

(** Ordered SESE subgraph sequence of one side of a region.

    Cut points are the side blocks that post-dominate the side's entry;
    consecutive cut points delimit one subgraph.  The returned sequence
    is ordered by post-dominance: earlier subgraphs execute first. *)
let side_subgraphs (pdt : Domtree.t) ~(side : block list)
    ~(side_entry : block) ~(exit_ : block) : subgraph list =
  let cuts =
    List.filter
      (fun v -> v.bid <> side_entry.bid && Domtree.dominates pdt v side_entry)
      side
  in
  (* Total order: u before v iff v post-dominates u. *)
  let sorted =
    List.sort
      (fun u v ->
        if u.bid = v.bid then 0
        else if Domtree.strictly_dominates pdt v u then -1
        else 1)
      cuts
  in
  let cut_seq = (side_entry :: sorted) @ [ exit_ ] in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  List.map
    (fun (c, next_c) ->
      let blocks = Cfg.reachable_without c ~stop:[ next_c ] in
      let tbl = Hashtbl.create 8 in
      List.iter (fun blk -> Hashtbl.replace tbl blk.bid blk) blocks;
      (* representative exit source: any block with an edge to next_c;
         Simplify_region later guarantees uniqueness *)
      let exit_src =
        match
          List.find_opt
            (fun blk ->
              List.exists (fun s -> s.bid = next_c.bid) (successors blk))
            blocks
        with
        | Some blk -> blk
        | None -> c
      in
      {
        sg_entry = c;
        sg_blocks = tbl;
        sg_exit_src = exit_src;
        sg_exit_dest = next_c;
      })
    (pairs cut_seq)

let true_subgraphs (pdt : Domtree.t) (r : t) : subgraph list =
  side_subgraphs pdt ~side:r.r_t_side ~side_entry:r.r_t_succ ~exit_:r.r_exit

let false_subgraphs (pdt : Domtree.t) (r : t) : subgraph list =
  side_subgraphs pdt ~side:r.r_f_side ~side_entry:r.r_f_succ ~exit_:r.r_exit
