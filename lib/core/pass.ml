(** The DARM melding pass driver (paper Algorithm 1).

    Repeatedly: find a meldable divergent region, decompose both paths
    into SESE subgraph sequences, greedily pick the most profitable
    isomorphic subgraph pair (FP_S above the threshold, ties broken
    towards the pair that dominates the most remaining subgraphs), meld
    it, clean up, recompute the control-flow analyses — until no
    profitable meld remains.

    [diamonds_only] restricts the transformation to regions whose two
    paths are single basic blocks, which is exactly the {e branch
    fusion} baseline of Coutinho et al. (Table I). *)

open Darm_ir.Ssa
module Latency = Darm_analysis.Latency
module Domtree = Darm_analysis.Domtree
module Divergence = Darm_analysis.Divergence
module Manager = Darm_analysis.Manager
module Edit = Darm_analysis.Edit
module Similarity = Darm_analysis.Similarity

(** How the subgraph pair to meld is chosen (paper §IV-C): [Greedy] is
    the paper's implementation (m x n profitability comparison);
    [Alignment] computes an optimal order-preserving Needleman–Wunsch
    alignment of the two subgraph sequences first (Definition 7) and
    picks the most profitable aligned pair. *)
type pairing = Greedy | Alignment

(** Translation validation: re-run the {!Darm_checks} sanity checkers
    after each meld and compare against the pre-meld report. *)
type validation =
  | Vnone  (** no validation (default) *)
  | Vfail  (** raise {!Validation_failed} on any new error diagnostic *)
  | Vreject
      (** roll back the offending meld, skip that candidate, continue *)

exception Validation_failed of string

type config = {
  latency : Latency.config;
  pairing : pairing;
  threshold : float;  (** minimum FP_S to meld; the paper uses a small
                          positive cutoff *)
  unpredicate : bool;  (** move {e all} gap runs out of line (§IV-E);
                           unsafe-to-speculate runs always move *)
  diamonds_only : bool;  (** branch-fusion compatibility mode *)
  max_iterations : int;
  run_cleanups : bool;  (** run SimplifyCFG + DCE after each meld *)
  if_convert_after : bool;
      (** re-run the predicating if-conversion after the pass, modelling
          the later -O3 pipeline (the paper's §VI-C observation) *)
  obs : Darm_obs.Trace.t option;
      (** trace buffer for pass-pipeline spans and meld-decision events
          (see doc/observability.md); [None] = no instrumentation *)
  validate : validation;
      (** translation validation of each meld against the sanity
          checkers (see doc/static-analysis.md) *)
  prefilter : bool;
      (** skip subgraph pairs whose {!Darm_analysis.Similarity}
          signatures prove the exhaustive search would reject them
          (shape mismatch or FP_S upper bound at most the threshold);
          meld decisions are unchanged.  ANDed with the
          [DARM_NO_PREFILTER] environment variable (set = off). *)
  analysis_debug : bool;
      (** cross-validate every cache-served analysis query against a
          from-scratch recompute ({!Darm_analysis.Manager} debug mode);
          ORed with the [DARM_ANALYSIS_DEBUG] environment variable *)
}

let default_config : config =
  {
    latency = Latency.default;
    pairing = Greedy;
    threshold = 0.1;
    unpredicate = true;
    diamonds_only = false;
    max_iterations = 64;
    run_cleanups = true;
    if_convert_after = false;
    obs = None;
    validate = Vnone;
    prefilter = true;
    analysis_debug = false;
  }

(* [DARM_NO_PREFILTER] set (non-empty, non-"0") forces the exhaustive
   candidate search — the CI equivalence stage uses it. *)
let prefilter_enabled () =
  match Sys.getenv_opt "DARM_NO_PREFILTER" with
  | Some ("" | "0") | None -> true
  | Some _ -> false

let branch_fusion_config : config =
  { default_config with diamonds_only = true }

(** Provenance of one applied meld — the join key between the pass and
    the simulator's per-branch divergence attribution ([darm_opt
    report]). *)
type meld_record = {
  m_index : int;  (** 1-based application order within the run *)
  m_region : string;
      (** region entry block: the divergent branch this meld targets —
          its name is the stable static branch id the simulator
          reports divergence under *)
  m_st : string;  (** melded true-path subgraph entry *)
  m_sf : string;  (** melded false-path subgraph entry *)
  m_fp_s : float;  (** the FP_S profitability score that won *)
  m_branches : string list;
      (** static branch ids subsumed by this meld: the region entry
          plus every conditional branch inside the two melded
          subgraphs, sorted *)
}

type stats = {
  mutable iterations : int;
  mutable regions_found : int;
  mutable melds_applied : int;
  mutable melds_rejected : int;
      (** melds rolled back by [Vreject] translation validation *)
  mutable pairs_scored : int;
      (** subgraph pairs that went through full isomorphism matching +
          FP_S scoring *)
  mutable candidates_prefiltered : int;
      (** subgraph pair evaluations skipped by the similarity
          prefilter *)
  mutable analysis_recomputes_avoided : int;
      (** analysis queries served from the manager cache *)
  mutable melds : meld_record list;
      (** provenance of the applied melds, in application order *)
  meld_stats : Meld.stats;
}

let empty_stats () =
  {
    iterations = 0;
    regions_found = 0;
    melds_applied = 0;
    melds_rejected = 0;
    pairs_scored = 0;
    candidates_prefiltered = 0;
    analysis_recomputes_avoided = 0;
    melds = [];
    meld_stats = Meld.empty_stats ();
  }

type candidate = {
  c_region : Region.t;
  c_st : Region.subgraph;
  c_sf : Region.subgraph;
  c_profit : float;
  c_rank : int;  (** position sum: smaller dominates more of the rest *)
}

(* Provenance must be captured BEFORE apply_candidate: normalization
   renames blocks and melding merges them, so the subsumed branch ids
   are only readable from the pre-meld subgraphs. *)
let record_of_candidate (c : candidate) (index : int) : meld_record =
  let condbrs sg =
    List.filter_map
      (fun b ->
        if has_terminator b && (terminator b).op = Darm_ir.Op.Condbr then
          Some b.bname
        else None)
      (Region.subgraph_block_list sg)
  in
  let branches =
    c.c_region.Region.r_entry.bname :: (condbrs c.c_st @ condbrs c.c_sf)
    |> List.sort_uniq String.compare
  in
  {
    m_index = index;
    m_region = c.c_region.Region.r_entry.bname;
    m_st = c.c_st.Region.sg_entry.bname;
    m_sf = c.c_sf.Region.sg_entry.bname;
    m_fp_s = c.c_profit;
    m_branches = branches;
  }

(* profitability of a subgraph pair, when meldable *)
let pair_profit (cfg : config) (st : Region.subgraph) (sf : Region.subgraph)
    : float option =
  match Isomorphism.match_subgraphs st sf with
  | None -> None
  | Some pairs -> Some (Profitability.fp_s cfg.latency pairs)

(* one auditable event per scored subgraph pair: Algorithm 1's
   accept/reject of FP_S against the threshold *)
let obs_decision (cfg : config) (r : Region.t) (st : Region.subgraph)
    (sf : Region.subgraph) (profit : float) : unit =
  match cfg.obs with
  | None -> ()
  | Some tr ->
      Darm_obs.Trace.instant tr ~cat:"pass"
        ~args:
          [
            ("region", Darm_obs.Trace.Str r.Region.r_entry.bname);
            ("st", Darm_obs.Trace.Str st.Region.sg_entry.bname);
            ("sf", Darm_obs.Trace.Str sf.Region.sg_entry.bname);
            ("fp_s", Darm_obs.Trace.Float profit);
            ("threshold", Darm_obs.Trace.Float cfg.threshold);
            ("accepted", Darm_obs.Trace.Bool (profit > cfg.threshold));
          ]
        "meld.decision"

(* Identifying key of a candidate, stable across snapshot/restore: the
   region entry and the two subgraph entries by name.  Used to skip
   candidates already rolled back by translation validation. *)
let candidate_key (r : Region.t) (st : Region.subgraph)
    (sf : Region.subgraph) : string * string * string =
  ( r.Region.r_entry.bname,
    st.Region.sg_entry.bname,
    sf.Region.sg_entry.bname )

(* Greedy MostProfitableSubgraphPair: m x n comparison (paper §IV-C).
   [admit] is the similarity prefilter (a pair it refuses is one the
   exhaustive search provably rejects, so the winner is unchanged);
   [score] is the counted [pair_profit]. *)
let best_pair_greedy ~skip ~admit ~score (cfg : config) (r : Region.t)
    (t_sgs : Region.subgraph list) (f_sgs : Region.subgraph list) :
    candidate option =
  let best = ref None in
  List.iteri
    (fun ti st ->
      List.iteri
        (fun fi sf ->
          if skip (candidate_key r st sf) || not (admit st sf) then ()
          else
          match score st sf with
          | None -> ()
          | Some profit ->
              obs_decision cfg r st sf profit;
              if profit > cfg.threshold then begin
                let rank = ti + fi in
                match !best with
                | Some b
                  when b.c_profit > profit
                       || (b.c_profit = profit && b.c_rank <= rank) ->
                    ()
                | _ ->
                    best :=
                      Some
                        {
                          c_region = r;
                          c_st = st;
                          c_sf = sf;
                          c_profit = profit;
                          c_rank = rank;
                        }
              end)
        f_sgs)
    t_sgs;
  !best

(* Subgraph-sequence alignment (Definition 7): an order-preserving
   Needleman-Wunsch over the two sequences, scored by FP_S; the most
   profitable aligned pair is melded this iteration (the rest re-align
   after the CFG is rebuilt). *)
let best_pair_alignment ~skip ~admit ~score (cfg : config) (r : Region.t)
    (t_sgs : Region.subgraph list) (f_sgs : Region.subgraph list) :
    candidate option =
  let cell_score st sf =
    if skip (candidate_key r st sf) || not (admit st sf) then None
    else
      match score st sf with
      | Some p when p > cfg.threshold -> Some p
      | Some _ | None -> None
  in
  let aligned, _ =
    Darm_align.Sequence.needleman_wunsch ~score:cell_score ~gap_open:0.
      ~gap_extend:0.
      (Array.of_list t_sgs) (Array.of_list f_sgs)
  in
  List.fold_left
    (fun acc item ->
      match item with
      | Darm_align.Sequence.Both (st, sf)
        when skip (candidate_key r st sf) || not (admit st sf) ->
          acc
      | Darm_align.Sequence.Both (st, sf) -> (
          match score st sf with
          | None -> acc
          | Some profit -> (
              obs_decision cfg r st sf profit;
              if profit <= cfg.threshold then acc
              else
                match acc with
                | Some b when b.c_profit >= profit -> acc
                | _ ->
                    Some
                      {
                        c_region = r;
                        c_st = st;
                        c_sf = sf;
                        c_profit = profit;
                        c_rank = 0;
                      }))
      | Darm_align.Sequence.Left _ | Darm_align.Sequence.Right _ -> acc)
    None aligned

let sg_signature (lat : Latency.config) (sg : Region.subgraph) :
    Similarity.t =
  Similarity.signature ~lat
    ~blocks:(Region.subgraph_block_list sg)
    ~entry:sg.Region.sg_entry
    ~in_subgraph:(Region.in_subgraph sg)
    ~exit_dest:sg.Region.sg_exit_dest

let best_pair ?(skip = fun _ -> false) ?(prefilter = false)
    ?(stats = empty_stats ()) (cfg : config) (r : Region.t)
    (pdt : Domtree.t) : candidate option =
  let t_sgs = Region.true_subgraphs pdt r in
  let f_sgs = Region.false_subgraphs pdt r in
  let single_block sg = Region.subgraph_size sg = 1 in
  if
    cfg.diamonds_only
    && not
         (List.length t_sgs = 1 && List.length f_sgs = 1
         && List.for_all single_block t_sgs
         && List.for_all single_block f_sgs)
  then None
  else begin
    let score st sf =
      stats.pairs_scored <- stats.pairs_scored + 1;
      pair_profit cfg st sf
    in
    let admit =
      if not prefilter then fun _ _ -> true
      else begin
        (* one signature per subgraph per search, keyed by entry bid *)
        let sigs = Hashtbl.create 16 in
        let sig_of sg =
          match Hashtbl.find_opt sigs sg.Region.sg_entry.bid with
          | Some s -> s
          | None ->
              let s = sg_signature cfg.latency sg in
              Hashtbl.replace sigs sg.Region.sg_entry.bid s;
              s
        in
        fun st sf ->
          let ok =
            Similarity.may_profit ~threshold:cfg.threshold (sig_of st)
              (sig_of sf)
          in
          if not ok then
            stats.candidates_prefiltered <-
              stats.candidates_prefiltered + 1;
          ok
      end
    in
    match cfg.pairing with
    | Greedy -> best_pair_greedy ~skip ~admit ~score cfg r t_sgs f_sgs
    | Alignment -> best_pair_alignment ~skip ~admit ~score cfg r t_sgs f_sgs
  end

(* Meld one candidate; the subgraphs are re-matched after normalization
   since normalization adds the dedicated exit blocks.  Normalization
   and melding report their dirty blocks into [elog]; the edits are
   flushed into [mgr] so the post-normalization dominator tree and any
   later analysis query come from the (selectively invalidated)
   manager. *)
let apply_candidate (cfg : config) (mgr : Manager.t) (elog : Edit.log)
    (f : func) (c : candidate) (stats : stats) : unit =
  let st = Simplify_region.normalize_exit ~edits:elog f c.c_st in
  let sf = Simplify_region.normalize_exit ~edits:elog f c.c_sf in
  let st, pre_t = Simplify_region.normalize_entry ~edits:elog f st in
  let sf, pre_f = Simplify_region.normalize_entry ~edits:elog f sf in
  let pairs =
    match Isomorphism.match_subgraphs st sf with
    | Some p -> p
    | None ->
        invalid_arg
          "Pass.apply_candidate: normalization broke subgraph isomorphism"
  in
  Manager.note_all mgr (Edit.drain elog);
  let dt = Manager.domtree mgr in
  ignore
    (Meld.run ~edits:elog f ~cond:c.c_region.Region.r_cond ~dt
       ~lat:cfg.latency ~s_t:st ~s_f:sf ~pre_t ~pre_f ~pairs
       ~unpredicate:cfg.unpredicate ~stats:stats.meld_stats);
  Manager.note_all mgr (Edit.drain elog);
  stats.melds_applied <- stats.melds_applied + 1

(* Snapshot/restore for [Vreject]: the printed IR round-trips through
   the parser (a property the test suites already rely on), and the
   simulator binds parameters by index, so grafting the re-parsed
   body onto the original [func] record restores pre-meld behaviour. *)
let snapshot_func (f : func) : string = Darm_ir.Printer.func_to_string f

let restore_func (f : func) (snap : string) : unit =
  match Darm_ir.Parser.parse_func snap with
  | Error e ->
      invalid_arg ("Pass.restore_func: snapshot does not re-parse: " ^ e)
  | Ok g ->
      f.blocks_list <- g.blocks_list;
      List.iter (fun b -> b.bparent <- Some f) f.blocks_list

(** Run the melding pass on [f] to a fixpoint; returns the statistics.
    The function is verified after every meld when [verify_each] is set
    (the test suites use this). *)
let run ?(config = default_config) ?(verify_each = false) (f : func) : stats =
  let stats = empty_stats () in
  let prefilter = config.prefilter && prefilter_enabled () in
  (* one manager per run: analyses persist across iterations and are
     selectively invalidated by the edits each transform reports *)
  let mgr =
    Manager.create
      ?debug:(if config.analysis_debug then Some true else None)
      f
  in
  let elog = Edit.log () in
  let obs_span name args body =
    match config.obs with
    | None -> body ()
    | Some tr -> Darm_obs.Trace.with_span tr ~cat:"pass" ~args name body
  in
  obs_span "pass.run"
    [ ("func", Darm_obs.Trace.Str f.fname) ]
  @@ fun () ->
  let continue_ = ref true in
  (* candidates rolled back by Vreject validation, by stable key; a key
     rejected twice means restore did not reproduce the pre-meld shape,
     so stop rather than loop *)
  let rejected : (string * string * string, unit) Hashtbl.t =
    Hashtbl.create 4
  in
  let skip key = Hashtbl.mem rejected key in
  while !continue_ && stats.iterations < config.max_iterations do
    stats.iterations <- stats.iterations + 1;
    obs_span "pass.iteration"
      [ ("iteration", Darm_obs.Trace.Int stats.iterations) ]
    @@ fun () ->
    let dvg, dt, pdt, preds =
      obs_span "pass.analysis" [] @@ fun () ->
      (* divergence first: it computes a post-dominator tree internally,
         so the postdomtree query right after is a cache hit *)
      let dvg = Manager.divergence mgr in
      let dt = Manager.domtree mgr in
      let pdt = Manager.postdomtree mgr in
      let preds = Manager.preds mgr in
      (dvg, dt, pdt, preds)
    in
    let candidate =
      obs_span "pass.candidates" [] @@ fun () ->
      List.fold_left
        (fun acc b ->
          match acc with
          | Some _ -> acc
          | None -> (
              match Region.detect ~preds f dvg dt pdt b with
              | None -> None
              | Some r ->
                  stats.regions_found <- stats.regions_found + 1;
                  best_pair ~skip ~prefilter ~stats config r pdt))
        None (Manager.reachable mgr)
    in
    match candidate with
    | None -> continue_ := false
    | Some c ->
        (match config.obs with
        | None -> ()
        | Some tr ->
            Darm_obs.Trace.instant tr ~cat:"pass"
              ~args:
                [
                  ("region", Darm_obs.Trace.Str c.c_region.Region.r_entry.bname);
                  ("st", Darm_obs.Trace.Str c.c_st.Region.sg_entry.bname);
                  ("sf", Darm_obs.Trace.Str c.c_sf.Region.sg_entry.bname);
                  ("fp_s", Darm_obs.Trace.Float c.c_profit);
                ]
              "meld.apply");
        let key = candidate_key c.c_region c.c_st c.c_sf in
        let pre_meld =
          if config.validate = Vnone then None
          else
            Some
              (snapshot_func f, Darm_checks.Checker.check_func ~facts:mgr f)
        in
        let record = record_of_candidate c (stats.melds_applied + 1) in
        obs_span "pass.apply" [] (fun () ->
            apply_candidate config mgr elog f c stats);
        (* most-recent-first while running so Vreject can pop; reversed
           into application order before [run] returns *)
        stats.melds <- record :: stats.melds;
        obs_span "pass.cleanup" [] (fun () ->
            if config.run_cleanups then begin
              (* the cleanups don't track their rewrites; a changed CFG
                 falls back to whole-function invalidation, a pure DCE
                 sweep keeps every CFG-derived analysis *)
              if Darm_transforms.Simplify_cfg.run f then
                Manager.note mgr Edit.Whole;
              if Darm_transforms.Dce.run f then
                Manager.note mgr (Edit.Dce [])
            end);
        if verify_each then Darm_ir.Verify.run_exn f;
        (match pre_meld with
        | None -> ()
        | Some (snap, before) -> (
            let after = Darm_checks.Checker.check_func ~facts:mgr f in
            match Darm_checks.Checker.new_errors ~before ~after with
            | [] -> ()
            | news -> (
                let detail =
                  String.concat "\n"
                    (List.map Darm_checks.Diag.to_string news)
                in
                (match config.obs with
                | None -> ()
                | Some tr ->
                    Darm_obs.Trace.instant tr ~cat:"pass"
                      ~args:
                        [
                          ("region",
                           Darm_obs.Trace.Str
                             c.c_region.Region.r_entry.bname);
                          ("new_errors",
                           Darm_obs.Trace.Int (List.length news));
                        ]
                      "meld.validation_failed");
                match config.validate with
                | Vnone -> ()
                | Vfail ->
                    raise
                      (Validation_failed
                         (Printf.sprintf
                            "meld of region %s in @%s introduced new \
                             checker errors:\n%s"
                            c.c_region.Region.r_entry.bname f.fname detail))
                | Vreject ->
                    restore_func f snap;
                    (* the graft replaces the whole body *)
                    Manager.invalidate_all mgr;
                    stats.melds_applied <- stats.melds_applied - 1;
                    stats.melds_rejected <- stats.melds_rejected + 1;
                    (match stats.melds with
                    | _rolled_back :: rest -> stats.melds <- rest
                    | [] -> ());
                    if Hashtbl.mem rejected key then continue_ := false
                    else Hashtbl.replace rejected key ())))
  done;
  if config.if_convert_after then begin
    ignore (Darm_transforms.Simplify_cfg.if_convert f);
    ignore (Darm_transforms.Dce.run f)
  end;
  stats.analysis_recomputes_avoided <- Manager.recomputes_avoided mgr;
  stats.melds <- List.rev stats.melds;
  stats

(** Export the run counters as [darm_pass_*] metric families (see
    doc/observability.md). *)
let fill_metrics (reg : Darm_obs.Metrics_registry.t)
    ?(labels : (string * string) list = []) (s : stats) : unit =
  let module MR = Darm_obs.Metrics_registry in
  let count name help v =
    MR.inc reg ~labels ~by:(float_of_int v) name;
    MR.help reg name help
  in
  count "darm_pass_iterations_total" "Algorithm 1 fixpoint iterations"
    s.iterations;
  count "darm_pass_melds_applied_total" "Subgraph melds applied"
    s.melds_applied;
  count "darm_pass_melds_rejected_total"
    "Melds rolled back by translation validation" s.melds_rejected;
  count "darm_pass_pairs_scored_total"
    "Subgraph pairs through full isomorphism matching + FP_S scoring"
    s.pairs_scored;
  count "darm_pass_candidates_prefiltered_total"
    "Pair evaluations skipped by the similarity prefilter"
    s.candidates_prefiltered;
  count "darm_pass_analysis_recomputes_avoided_total"
    "Analysis queries served from the manager cache instead of recomputed"
    s.analysis_recomputes_avoided

(** Branch fusion (Coutinho et al.): the diamond-only restriction of
    control-flow melding, used as a baseline in Table I and §VI. *)
let run_branch_fusion ?(verify_each = false) (f : func) : stats =
  run ~config:branch_fusion_config ~verify_each f

(** Run the melding pass over every kernel of a module; returns the
    per-function statistics. *)
let run_module ?config ?verify_each (m : Darm_ir.Ssa.modul) :
    (string * stats) list =
  List.map
    (fun f -> (f.Darm_ir.Ssa.fname, run ?config ?verify_each f))
    m.Darm_ir.Ssa.funcs
