(** Experiment runner: executes a kernel baseline-vs-transformed on the
    simulator and collects the paper's metrics. *)

module Kernel = Darm_kernels.Kernel
module Registry = Darm_kernels.Registry
module Sim = Darm_sim.Simulator
module Metrics = Darm_sim.Metrics
module Memory = Darm_sim.Memory
module Pass = Darm_core.Pass

type transform = {
  t_name : string;
  t_apply : Darm_ir.Ssa.func -> int;  (** returns #rewrites applied *)
}

let darm_transform ?(config = Pass.default_config) () : transform =
  {
    t_name = "DARM";
    t_apply =
      (fun f ->
        let stats = Pass.run ~config f in
        stats.Pass.melds_applied);
  }

let darm_default : transform = darm_transform ()

let branch_fusion_transform : transform =
  {
    t_name = "branch-fusion";
    t_apply =
      (fun f ->
        let stats = Pass.run_branch_fusion f in
        stats.Pass.melds_applied);
  }

let tail_merge_transform : transform =
  { t_name = "tail-merging"; t_apply = Darm_transforms.Tail_merge.run }

let identity_transform : transform =
  { t_name = "baseline"; t_apply = (fun _ -> 0) }

type result = {
  tag : string;
  block_size : int;
  transform_name : string;
  rewrites : int;  (** melds / merges applied *)
  base : Metrics.t;
  opt : Metrics.t;
  correct : bool;  (** transformed output == baseline output == reference *)
  t_ms : float;  (** wall-clock time of the transform itself *)
}

let speedup (r : result) : float =
  if r.opt.Metrics.cycles = 0 then
    invalid_arg
      (Printf.sprintf
         "Experiment.speedup: %s %s bs=%d retired zero cycles — the run \
          never executed"
         r.tag r.transform_name r.block_size)
  else float_of_int r.base.Metrics.cycles /. float_of_int r.opt.Metrics.cycles

let all_correct (rs : result list) : bool =
  List.for_all (fun r -> r.correct) rs

let sim_config = Sim.default_config

let run_instance ?(config = sim_config) (inst : Kernel.instance) : Metrics.t =
  Sim.run ~config inst.Kernel.func ~args:inst.Kernel.args
    ~global:inst.Kernel.global inst.Kernel.launch

(* ------------------------------------------------------------------ *)
(* Memoization.

   Figures, tables and CSV exports all replay the same baseline
   simulations: every transform of a (kernel, block size, seed, n)
   point re-runs the untransformed kernel for its reference cycles and
   expected output.  Those runs are deterministic, so we compute each
   one once and share it.  Caching applies only under the default
   machine model ([sim = None]); a custom config bypasses the caches
   entirely.  Cached arrays are written once and only ever read
   afterwards, so sharing them across domains is safe; the tables are
   mutex-protected.  A concurrent miss on the same key computes the
   value twice and both writers store an identical entry — wasteful but
   harmless, and it keeps the baseline simulation outside the lock. *)

type point = { c_tag : string; c_bs : int; c_seed : int; c_n : int }

let base_cache :
    (point, Metrics.t * Memory.rv array * Memory.rv array) Hashtbl.t =
  Hashtbl.create 64

let base_mutex = Mutex.create ()

(* full results are additionally memoized for the stock transforms
   (identified physically, since a user-built transform with a custom
   Pass.config can produce different IR under the same name) *)
let canonical (t : transform) : bool =
  t == darm_default || t == branch_fusion_transform
  || t == tail_merge_transform || t == identity_transform

let result_cache : (point * string, result) Hashtbl.t = Hashtbl.create 64

let result_mutex = Mutex.create ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let baseline ?sim (kernel : Kernel.t) ~seed ~block_size ~n :
    Metrics.t * Memory.rv array * Memory.rv array =
  let compute () =
    let inst = kernel.Kernel.make ~seed ~block_size ~n in
    let m = run_instance ?config:sim inst in
    (m, inst.Kernel.read_result (), inst.Kernel.reference ())
  in
  match sim with
  | Some _ -> compute ()
  | None -> (
      let key = { c_tag = kernel.Kernel.tag; c_bs = block_size; c_seed = seed;
                  c_n = n }
      in
      match
        with_lock base_mutex (fun () -> Hashtbl.find_opt base_cache key)
      with
      | Some v -> v
      | None ->
          let v = compute () in
          with_lock base_mutex (fun () ->
              match Hashtbl.find_opt base_cache key with
              | Some v' -> v'
              | None ->
                  Hashtbl.add base_cache key v;
                  v))

(** Run [kernel] at [block_size] with and without [transform]; check
    output equivalence against the host reference as a built-in sanity
    gate.  [sim] overrides the machine model (e.g. the warp width).

    [obs] wraps the whole experiment in an [experiment] span and routes
    both simulations into the buffer (baseline on pid 1, transformed on
    pid 2; override via [sim.obs_pid] conventions in
    doc/observability.md).  An observed run always recomputes — the
    caches would otherwise swallow the events of a repeated point. *)
let run ?(transform = darm_default) ?(seed = 2022) ?n ?sim ?obs ?mem_model
    ?reconvergence (kernel : Kernel.t) ~(block_size : int) : result =
  let n = Option.value ~default:kernel.Kernel.default_n n in
  (* a mem-model override folds into [sim], so a [Hier] run naturally
     bypasses the memoization caches below (their entries are
     default-model only) *)
  let sim =
    match (mem_model, sim) with
    | None, _ -> sim
    | Some Sim.Flat, None -> None (* the default model: keep cacheable *)
    | Some mm, _ ->
        Some { (Option.value ~default:sim_config sim) with Sim.mem_model = mm }
  in
  (* likewise for the reconvergence model: [Stack] is the default and
     stays cacheable, [Its] folds into [sim] and bypasses the caches *)
  let sim =
    match (reconvergence, sim) with
    | None, _ -> sim
    | Some Sim.Stack, None -> None
    | Some rc, _ ->
        Some
          { (Option.value ~default:sim_config sim) with Sim.reconvergence = rc }
  in
  let compute () =
    let span body =
      match obs with
      | None -> body ()
      | Some tr ->
          Darm_obs.Trace.with_span tr ~cat:"bench"
            ~args:
              [
                ("kernel", Darm_obs.Trace.Str kernel.Kernel.tag);
                ("block_size", Darm_obs.Trace.Int block_size);
                ("n", Darm_obs.Trace.Int n);
                ("seed", Darm_obs.Trace.Int seed);
                ("transform", Darm_obs.Trace.Str transform.t_name);
              ]
            "experiment" body
    in
    span @@ fun () ->
    let sim_with pid =
      match obs with
      | None -> sim
      | Some tr ->
          Some
            {
              (Option.value ~default:sim_config sim) with
              Sim.obs = Some tr;
              obs_pid = pid;
            }
    in
    let base, out_base, expected =
      match obs with
      | None -> baseline ?sim kernel ~seed ~block_size ~n
      | Some _ ->
          (* inline (uncached) baseline so its events land in the buffer *)
          let inst = kernel.Kernel.make ~seed ~block_size ~n in
          let m = run_instance ?config:(sim_with 1) inst in
          (m, inst.Kernel.read_result (), inst.Kernel.reference ())
    in
    let opt_inst = kernel.Kernel.make ~seed ~block_size ~n in
    let t0 = Unix.gettimeofday () in
    let rewrites = transform.t_apply opt_inst.Kernel.func in
    let t_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    Darm_ir.Verify.run_exn opt_inst.Kernel.func;
    let opt = run_instance ?config:(sim_with 2) opt_inst in
    let out_opt = opt_inst.Kernel.read_result () in
    let correct =
      base.Metrics.cycles > 0
      && opt.Metrics.cycles > 0
      && Kernel.rv_array_equal out_base expected
      && Kernel.rv_array_equal out_opt out_base
    in
    {
      tag = kernel.Kernel.tag;
      block_size;
      transform_name = transform.t_name;
      rewrites;
      base;
      opt;
      correct;
      t_ms;
    }
  in
  if sim <> None || obs <> None || not (canonical transform) then compute ()
  else
    let key =
      ( { c_tag = kernel.Kernel.tag; c_bs = block_size; c_seed = seed;
          c_n = n },
        transform.t_name )
    in
    match
      with_lock result_mutex (fun () -> Hashtbl.find_opt result_cache key)
    with
    | Some r -> r
    | None ->
        let r = compute () in
        with_lock result_mutex (fun () ->
            match Hashtbl.find_opt result_cache key with
            | Some r' -> r'
            | None ->
                Hashtbl.add result_cache key r;
                r)

(** Sweep a kernel over its block sizes. *)
let sweep ?jobs ?transform ?seed ?n ?mem_model ?reconvergence
    (kernel : Kernel.t) : result list =
  Parallel_sweep.map ?jobs
    (fun block_size ->
      run ?transform ?seed ?n ?mem_model ?reconvergence kernel ~block_size)
    kernel.Kernel.block_sizes

(** Sweep several kernels over their block sizes on the domain pool;
    results come back flattened in kernel-major, block-size-minor
    order regardless of the pool size. *)
let sweep_many ?jobs ?transform ?seed ?n ?mem_model ?reconvergence
    (kernels : Kernel.t list) : result list =
  let tasks =
    List.concat_map
      (fun k -> List.map (fun bs -> (k, bs)) k.Kernel.block_sizes)
      kernels
  in
  Parallel_sweep.map ?jobs
    (fun (k, bs) ->
      run ?transform ?seed ?n ?mem_model ?reconvergence k ~block_size:bs)
    tasks

(** Force a list of independent experiment thunks on the domain pool,
    preserving list order. *)
let run_many ?jobs (thunks : (unit -> result) list) : result list =
  Parallel_sweep.run_all ?jobs thunks

let geomean (xs : float list) : float =
  match xs with
  | [] -> 1.
  | _ ->
      exp (List.fold_left (fun a x -> a +. log x) 0. xs
           /. float_of_int (List.length xs))
