(** Deterministic domain pool for fanning experiment runs across cores.

    All entry points preserve input order: [map f xs] returns exactly
    [List.map f xs] for any [jobs], so figures and CSV exports are
    byte-identical regardless of parallelism.  If any application
    raises, the exception of the lowest-index failing task is re-raised
    after all domains are joined, with the backtrace captured at the
    original raise site ({!Printexc.raise_with_backtrace}), so a
    failing sweep reports the same task — and the same stack — at any
    job count. *)

(** Pool size: [DARM_JOBS] from the environment if set (must be a
    positive integer), otherwise {!Domain.recommended_domain_count}. *)
val default_jobs : unit -> int

(** [map ?jobs f xs] applies [f] to every element of [xs] across a pool
    of [jobs] domains (default {!default_jobs}; the calling domain
    participates, so [jobs = 1] runs inline). *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [map_with ?jobs f xs] is {!map} with the worker index exposed: [f]
    is called as [f ~worker x] where [worker] identifies the pool
    domain serving [x] — the calling domain is worker [0], spawned
    domains [1 .. jobs-1].  The index is {e runtime} information (which
    worker claims which task depends on scheduling): callers feed it to
    telemetry (per-worker heartbeats, the [rt] envelope of event
    streams), never into the results themselves, which stay in input
    order at any job count. *)
val map_with : ?jobs:int -> (worker:int -> 'a -> 'b) -> 'a list -> 'b list

(** [run_all ?jobs thunks] forces every thunk, in input order. *)
val run_all : ?jobs:int -> (unit -> 'a) list -> 'a list
