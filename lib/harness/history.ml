(* Append-only bench history (BENCH_history.jsonl) and the regression
   sentinel behind [darm_opt bench-diff].  See history.mli. *)

module J = Darm_obs.Json
module Metrics = Darm_sim.Metrics
module E = Experiment

let schema = "darm-bench-hist-v2"

(* previous version, still parsed for one version window (the
   version-bump policy in doc/schemas.md): v1 lines carry no
   mem_model fields, which default to "flat" on load *)
let schema_v1 = "darm-bench-hist-v1"

let default_path = "BENCH_history.jsonl"

type env = {
  ocaml_version : string;
  os_type : string;
  word_size : int;
  warp_size : int;
  jobs : int;
  mem_model : string;
      (** memory model(s) the run covered: "flat", "hier" or
          "flat+hier" — part of the v2 fingerprint *)
  reconvergence : string;
      (** reconvergence model(s) the run covered: "stack", "its" or
          "stack+its"; absent from older v2 lines, which load as
          "stack" *)
}

let current_env ?jobs ?(mem_model = "flat") ?(reconvergence = "stack") () :
    env =
  {
    ocaml_version = Sys.ocaml_version;
    os_type = Sys.os_type;
    word_size = Sys.word_size;
    warp_size = E.sim_config.E.Sim.warp_size;
    jobs = (match jobs with Some j -> j | None -> Parallel_sweep.default_jobs ());
    mem_model;
    reconvergence;
  }

type entry = {
  e_kernel : string;
  e_block_size : int;
  e_transform : string;
  e_mem_model : string;  (** "flat" or "hier"; part of the point key *)
  e_reconvergence : string;
      (** "stack" or "its"; part of the point key, "stack" when absent
          from an older line *)
  e_rewrites : int;
  e_base_cycles : int;
  e_opt_cycles : int;
  e_pass_ms : float;
  e_correct : bool;
}

let entry_speedup (e : entry) : float =
  if e.e_opt_cycles = 0 then 0.
  else float_of_int e.e_base_cycles /. float_of_int e.e_opt_cycles

type batch = {
  b_kernels : int;
  b_hits : int;
  b_misses : int;
  b_incorrect : int;
  b_wall_s : float;
  b_pass_ms_p99 : float option;
}

let batch_hit_rate (b : batch) : float =
  let looked_up = b.b_hits + b.b_misses in
  if looked_up = 0 then 0.
  else float_of_int b.b_hits /. float_of_int looked_up

let batch_kernels_per_sec (b : batch) : float =
  if b.b_wall_s <= 0. then 0. else float_of_int b.b_kernels /. b.b_wall_s

type record = {
  r_time : float;
  r_env : env;
  r_wall_s : float option;
  r_entries : entry list;
  r_batch : batch option;
}

let of_batch ?jobs ~time (b : batch) : record =
  {
    r_time = time;
    r_env = current_env ?jobs ();
    r_wall_s = Some b.b_wall_s;
    r_entries = [];
    r_batch = Some b;
  }

let entries_of_results ?(mem_model = "flat") ?(reconvergence = "stack")
    (results : E.result list) : entry list =
  List.map
    (fun (r : E.result) ->
      {
        e_kernel = r.E.tag;
        e_block_size = r.E.block_size;
        e_transform = r.E.transform_name;
        e_mem_model = mem_model;
        e_reconvergence = reconvergence;
        e_rewrites = r.E.rewrites;
        e_base_cycles = r.E.base.Metrics.cycles;
        e_opt_cycles = r.E.opt.Metrics.cycles;
        e_pass_ms = r.E.t_ms;
        e_correct = r.E.correct;
      })
    results

let of_results ?wall_s ?jobs ?mem_model ?reconvergence ~time
    (results : E.result list) : record =
  {
    r_time = time;
    r_env = current_env ?jobs ?mem_model ?reconvergence ();
    r_wall_s = wall_s;
    r_batch = None;
    r_entries = entries_of_results ?mem_model ?reconvergence results;
  }

(* ------------------------------------------------------------------ *)
(* Serialization *)

let env_to_json (e : env) : J.t =
  J.Obj
    [
      ("ocaml_version", J.Str e.ocaml_version);
      ("os_type", J.Str e.os_type);
      ("word_size", J.Int e.word_size);
      ("warp_size", J.Int e.warp_size);
      ("jobs", J.Int e.jobs);
      ("mem_model", J.Str e.mem_model);
      ("reconvergence", J.Str e.reconvergence);
    ]

let entry_to_json (e : entry) : J.t =
  J.Obj
    [
      ("kernel", J.Str e.e_kernel);
      ("block_size", J.Int e.e_block_size);
      ("transform", J.Str e.e_transform);
      ("mem_model", J.Str e.e_mem_model);
      ("reconvergence", J.Str e.e_reconvergence);
      ("rewrites", J.Int e.e_rewrites);
      ("base_cycles", J.Int e.e_base_cycles);
      ("opt_cycles", J.Int e.e_opt_cycles);
      ("pass_ms", J.Float e.e_pass_ms);
      ("correct", J.Bool e.e_correct);
    ]

let batch_to_json (b : batch) : J.t =
  J.Obj
    ([
       ("kernels", J.Int b.b_kernels);
       ("cache_hits", J.Int b.b_hits);
       ("cache_misses", J.Int b.b_misses);
       ("incorrect", J.Int b.b_incorrect);
       ("wall_s", J.Float b.b_wall_s);
     ]
    @ (match b.b_pass_ms_p99 with
      | None -> []
      | Some p -> [ ("pass_ms_p99", J.Float p) ])
    @ [
        (* derived, for greppability; the loader recomputes them *)
        ("hit_rate", J.Float (batch_hit_rate b));
        ("kernels_per_sec", J.Float (batch_kernels_per_sec b));
      ])

let record_to_json (r : record) : J.t =
  J.Obj
    ([
       ("schema", J.Str schema);
       ("time", J.Float r.r_time);
       ("env", env_to_json r.r_env);
     ]
    @ (match r.r_wall_s with
      | None -> []
      | Some s -> [ ("wall_s", J.Float s) ])
    @ (match r.r_batch with
      | None -> []
      | Some b -> [ ("batch", batch_to_json b) ])
    @ [ ("results", J.List (List.map entry_to_json r.r_entries)) ])

(* tolerant field accessors: ints may have been written as floats *)
let get_str j k =
  match J.member k j with
  | Some (J.Str s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" k)

let get_int j k =
  match J.member k j with
  | Some (J.Int i) -> Ok i
  | Some (J.Float f) when Float.is_integer f -> Ok (int_of_float f)
  | _ -> Error (Printf.sprintf "missing int field %S" k)

let get_float j k =
  match J.member k j with
  | Some (J.Float f) -> Ok f
  | Some (J.Int i) -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "missing number field %S" k)

(* a string field absent from pre-v2 lines *)
let get_str_default j k ~default =
  match J.member k j with Some (J.Str s) -> s | _ -> default

let get_bool j k =
  match J.member k j with
  | Some (J.Bool b) -> Ok b
  | _ -> Error (Printf.sprintf "missing bool field %S" k)

let ( let* ) = Result.bind

let env_of_json (j : J.t) : (env, string) result =
  let* ocaml_version = get_str j "ocaml_version" in
  let* os_type = get_str j "os_type" in
  let* word_size = get_int j "word_size" in
  let* warp_size = get_int j "warp_size" in
  let* jobs = get_int j "jobs" in
  let mem_model = get_str_default j "mem_model" ~default:"flat" in
  let reconvergence = get_str_default j "reconvergence" ~default:"stack" in
  Ok
    {
      ocaml_version;
      os_type;
      word_size;
      warp_size;
      jobs;
      mem_model;
      reconvergence;
    }

let entry_of_json (j : J.t) : (entry, string) result =
  let* e_kernel = get_str j "kernel" in
  let* e_block_size = get_int j "block_size" in
  let* e_transform = get_str j "transform" in
  let e_mem_model = get_str_default j "mem_model" ~default:"flat" in
  let e_reconvergence = get_str_default j "reconvergence" ~default:"stack" in
  let* e_rewrites = get_int j "rewrites" in
  let* e_base_cycles = get_int j "base_cycles" in
  let* e_opt_cycles = get_int j "opt_cycles" in
  let* e_pass_ms = get_float j "pass_ms" in
  let* e_correct = get_bool j "correct" in
  Ok
    {
      e_kernel;
      e_block_size;
      e_transform;
      e_mem_model;
      e_reconvergence;
      e_rewrites;
      e_base_cycles;
      e_opt_cycles;
      e_pass_ms;
      e_correct;
    }

let batch_of_json (j : J.t) : (batch, string) result =
  let* b_kernels = get_int j "kernels" in
  let* b_hits = get_int j "cache_hits" in
  let* b_misses = get_int j "cache_misses" in
  let* b_incorrect = get_int j "incorrect" in
  let* b_wall_s = get_float j "wall_s" in
  let* b_pass_ms_p99 =
    match J.member "pass_ms_p99" j with
    | None -> Ok None
    | Some _ -> Result.map Option.some (get_float j "pass_ms_p99")
  in
  Ok { b_kernels; b_hits; b_misses; b_incorrect; b_wall_s; b_pass_ms_p99 }

let record_of_json (j : J.t) : (record, string) result =
  let* s = get_str j "schema" in
  if s <> schema && s <> schema_v1 then
    Error (Printf.sprintf "schema mismatch: expected %S, got %S" schema s)
  else
    let* r_time = get_float j "time" in
    let* env_j =
      match J.member "env" j with
      | Some e -> Ok e
      | None -> Error "missing object field \"env\""
    in
    let* r_env = env_of_json env_j in
    let r_wall_s =
      match J.member "wall_s" j with
      | Some (J.Float f) -> Some f
      | Some (J.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    let* r_batch =
      match J.member "batch" j with
      | None -> Ok None
      | Some bj -> Result.map Option.some (batch_of_json bj)
    in
    let* entries =
      match J.member "results" j with
      | Some (J.List l) ->
          List.fold_left
            (fun acc e ->
              let* acc = acc in
              let* entry = entry_of_json e in
              Ok (entry :: acc))
            (Ok []) l
          |> Result.map List.rev
      | _ -> Error "missing list field \"results\""
    in
    Ok { r_time; r_env; r_wall_s; r_batch; r_entries = entries }

let append ?(path = default_path) (r : record) : unit =
  (* Open_binary: the history's determinism contract is cmp-able bytes *)
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (J.to_string (record_to_json r) ^ "\n"))

let load ?(path = default_path) () : (record list, string) result =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no such file" path)
  else
    let ic = open_in path in
    let lines =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | line -> go (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          go [])
    in
    let rec parse i acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest when String.trim line = "" -> parse (i + 1) acc rest
      | line :: rest -> (
          match J.parse line with
          | Error e -> Error (Printf.sprintf "%s:%d: invalid JSON: %s" path i e)
          | Ok j -> (
              match record_of_json j with
              | Error e -> Error (Printf.sprintf "%s:%d: %s" path i e)
              | Ok r -> parse (i + 1) (r :: acc) rest))
    in
    parse 1 [] lines

(* ------------------------------------------------------------------ *)
(* Regression sentinel *)

type thresholds = {
  max_geomean_drop : float;
  max_cycle_growth : float;
  pass_ms_factor : float;
  pass_ms_slack : float;
  min_kps_ratio : float;
}

let default_thresholds =
  {
    max_geomean_drop = 0.02;
    max_cycle_growth = 0.02;
    pass_ms_factor = 10.;
    pass_ms_slack = 100.;
    min_kps_ratio = 0.1;
  }

type diff = {
  d_regressions : string list;
  d_notes : string list;
  d_geomean_base : float;
  d_geomean_cand : float;
  d_compared : int;
}

let key (e : entry) =
  (e.e_kernel, e.e_block_size, e.e_transform, e.e_mem_model, e.e_reconvergence)

let key_str (k, bs, t, mm, rc) =
  Printf.sprintf "%s/bs%d/%s/%s/%s" k bs t mm rc

let diff ?(thresholds = default_thresholds) ~(baseline : record)
    (candidate : record) : diff =
  let regressions = ref [] and notes = ref [] in
  let regress fmt = Printf.ksprintf (fun s -> regressions := s :: !regressions) fmt in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let be = baseline.r_env and ce = candidate.r_env in
  if be.warp_size <> ce.warp_size then
    note "env: warp_size changed %d -> %d (cycle counts not comparable)"
      be.warp_size ce.warp_size;
  if be.ocaml_version <> ce.ocaml_version then
    note "env: ocaml_version changed %s -> %s" be.ocaml_version
      ce.ocaml_version;
  if be.word_size <> ce.word_size then
    note "env: word_size changed %d -> %d" be.word_size ce.word_size;
  if be.mem_model <> ce.mem_model then
    note "env: mem_model coverage changed %s -> %s" be.mem_model ce.mem_model;
  if be.reconvergence <> ce.reconvergence then
    note "env: reconvergence coverage changed %s -> %s" be.reconvergence
      ce.reconvergence;
  let base_tbl = Hashtbl.create 32 in
  List.iter (fun e -> Hashtbl.replace base_tbl (key e) e) baseline.r_entries;
  let compared = ref [] in
  List.iter
    (fun (c : entry) ->
      match Hashtbl.find_opt base_tbl (key c) with
      | None -> note "new point %s (no baseline)" (key_str (key c))
      | Some b ->
          Hashtbl.remove base_tbl (key c);
          compared := (b, c) :: !compared)
    candidate.r_entries;
  Hashtbl.iter
    (fun k _ -> note "point %s disappeared from the candidate" (key_str k))
    base_tbl;
  let compared = List.rev !compared in
  (* per-point gates, in candidate order for deterministic output *)
  List.iter
    (fun ((b : entry), (c : entry)) ->
      let ks = key_str (key c) in
      if (not c.e_correct) && b.e_correct then
        regress "%s: correctness flipped to INCORRECT" ks;
      if c.e_opt_cycles = 0 then
        regress "%s: optimized run retired zero cycles" ks
      else begin
        let growth =
          float_of_int (c.e_opt_cycles - b.e_opt_cycles)
          /. float_of_int (max 1 b.e_opt_cycles)
        in
        if growth > thresholds.max_cycle_growth then
          regress "%s: opt_cycles grew %d -> %d (+%.1f%%, threshold %.1f%%)"
            ks b.e_opt_cycles c.e_opt_cycles (growth *. 100.)
            (thresholds.max_cycle_growth *. 100.)
        else if growth < -.thresholds.max_cycle_growth then
          note "%s: opt_cycles improved %d -> %d (%.1f%%)" ks b.e_opt_cycles
            c.e_opt_cycles (growth *. 100.)
      end;
      let limit =
        (thresholds.pass_ms_factor *. b.e_pass_ms) +. thresholds.pass_ms_slack
      in
      if c.e_pass_ms > limit then
        regress "%s: pass_ms %.1f -> %.1f exceeds %.1f (%.0fx + %.0fms slack)"
          ks b.e_pass_ms c.e_pass_ms limit thresholds.pass_ms_factor
          thresholds.pass_ms_slack)
    compared;
  (* geomean gate over the compared intersection, recomputed from
     cycles so a tampered speedup field cannot mask a regression *)
  let geo f =
    Experiment.geomean
      (List.filter_map
         (fun (b, c) ->
           let s = entry_speedup (f (b, c)) in
           if s > 0. then Some s else None)
         compared)
  in
  let g_base = geo fst and g_cand = geo snd in
  if compared <> [] && g_base > 0. then begin
    let drop = (g_base -. g_cand) /. g_base in
    if drop > thresholds.max_geomean_drop then
      regress "geomean speedup dropped %.3fx -> %.3fx (-%.1f%%, threshold %.1f%%)"
        g_base g_cand (drop *. 100.)
        (thresholds.max_geomean_drop *. 100.)
    else if drop < -.thresholds.max_geomean_drop then
      note "geomean speedup improved %.3fx -> %.3fx" g_base g_cand
  end;
  (* batch throughput gate: wall-clock and machine-dependent, so the
     ratio threshold is generous; hit-rate changes are informational *)
  (match (baseline.r_batch, candidate.r_batch) with
  | Some bb, Some cb ->
      let kb = batch_kernels_per_sec bb and kc = batch_kernels_per_sec cb in
      if kb > 0. && kc > 0. && kc < thresholds.min_kps_ratio *. kb then
        regress
          "batch throughput dropped %.1f -> %.1f kernels/sec (below %.0f%% \
           of baseline)"
          kb kc
          (thresholds.min_kps_ratio *. 100.)
      else if kb > 0. && kc > kb then
        note "batch throughput improved %.1f -> %.1f kernels/sec" kb kc;
      note "batch cache hit-rate %.1f%% -> %.1f%%"
        (batch_hit_rate bb *. 100.)
        (batch_hit_rate cb *. 100.);
      if cb.b_incorrect > bb.b_incorrect then
        regress "batch incorrect kernels grew %d -> %d" bb.b_incorrect
          cb.b_incorrect;
      (* tail-latency gate: the p99 of the candidate's computed
         pass_ms, under the same factor+slack envelope as per-point
         pass_ms.  Only when both records carry it — a fully-warm run
         computes nothing and legitimately has no p99. *)
      (match (bb.b_pass_ms_p99, cb.b_pass_ms_p99) with
      | Some pb, Some pc ->
          let limit =
            (thresholds.pass_ms_factor *. pb) +. thresholds.pass_ms_slack
          in
          if pc > limit then
            regress
              "batch p99 pass_ms %.1f -> %.1f exceeds %.1f (%.0fx + %.0fms \
               slack)"
              pb pc limit thresholds.pass_ms_factor thresholds.pass_ms_slack
      | _ -> ())
  | _ -> ());
  (* two entry-less batch records legitimately share no experiment
     points: they compare on throughput above instead *)
  let batch_only =
    baseline.r_entries = [] && candidate.r_entries = []
    && baseline.r_batch <> None
    && candidate.r_batch <> None
  in
  if compared = [] && not batch_only then
    regress "no common points between the two records";
  {
    d_regressions = List.rev !regressions;
    d_notes = List.rev !notes;
    d_geomean_base = g_base;
    d_geomean_cand = g_cand;
    d_compared = List.length compared;
  }

let diff_ok (d : diff) : bool = d.d_regressions = []

let diff_to_text (d : diff) : string =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "bench-diff: %d point(s) compared, geomean %.3fx -> %.3fx" d.d_compared
    d.d_geomean_base d.d_geomean_cand;
  List.iter (fun n -> line "  note: %s" n) d.d_notes;
  if d.d_regressions = [] then line "  OK: no regression"
  else
    List.iter (fun r -> line "  REGRESSION: %s" r) d.d_regressions;
  Buffer.contents b
