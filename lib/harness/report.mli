(** Per-meld divergence attribution: joins the simulator's per-branch
    divergence counters from a baseline and an optimized run with the
    melding pass's provenance records ({!Darm_core.Pass.meld_record})
    into a cycles-saved-per-meld table — the [darm_opt report]
    pipeline.

    {2 Attribution model}

    Every conditional branch that splits a warp is keyed by its stable
    static branch id (block name), which survives the melding pass for
    unmelded code.  A meld's provenance lists the branch ids it
    subsumed; each branch id is {e claimed} by the first meld (in
    application order) that lists it, so no cycle is counted twice.  A
    meld's [cycles saved] is the drop in divergent-arm issue cycles
    over its claimed branches between the baseline and optimized runs.

    The sum of the per-meld rows does not equal the total cycle delta:
    melded code still executes (once instead of twice), reconvergence
    and unpredicated gap blocks cost cycles, and cleanups shift uniform
    code.  Those effects are collected in an explicit {e residual} row,
    so that [sum(melds) + residual = base_cycles - opt_cycles] holds
    {e exactly} — an accounting identity the test suite checks on every
    registry kernel.  See doc/observability.md for the residual's
    interpretation and typical magnitude. *)

module Kernel = Darm_kernels.Kernel
module Metrics = Darm_sim.Metrics
module Pass = Darm_core.Pass

val schema : string
(** ["darm-report-v2"] — the [schema] key of the JSON rendering (see
    doc/schemas.md).  v2 added the memory section ([mem_model],
    [mem_sites], the memory cycle deltas). *)

(** One static branch id joined across the two runs.  [None] means the
    branch never split a warp in that run (melded away, newly created,
    or simply uniform). *)
type branch_join = {
  bj_id : string;
  bj_base : Metrics.branch_stat option;
  bj_opt : Metrics.branch_stat option;
  bj_meld : int option;
      (** [m_index] of the meld that claimed this branch, if any *)
}

(** One applied meld with the divergence counters of its claimed
    branches aggregated from both runs. *)
type meld_row = {
  mr_meld : Pass.meld_record;
  mr_claimed : string list;
      (** subsumed branch ids claimed by this meld (first claim in
          application order wins), sorted *)
  mr_base_divergences : int;
  mr_opt_divergences : int;
  mr_base_cycles : int;  (** divergent-arm issue cycles, baseline *)
  mr_opt_cycles : int;  (** divergent-arm issue cycles, optimized *)
  mr_base_lost : int;  (** idle-lane cycles, baseline *)
  mr_opt_lost : int;  (** idle-lane cycles, optimized *)
}

(** [mr_base_cycles - mr_opt_cycles]: the divergent-arm cycles this
    meld eliminated. *)
val meld_saved : meld_row -> int

(** One static memory access site ("<block>#<k>") joined across the two
    runs.  [None] means the run never issued that load/store (melded
    away, newly created, or dead). *)
type mem_join = {
  mj_id : string;
  mj_base : Metrics.mem_site_stat option;
  mj_opt : Metrics.mem_site_stat option;
}

type t = {
  rp_kernel : string;
  rp_block_size : int;
  rp_seed : int;
  rp_n : int;
  rp_correct : bool;
  rp_rewrites : int;  (** melds applied by the pass *)
  rp_pass_ms : float;  (** wall-clock ms inside the pass pipeline *)
  rp_mem_model : string;  (** "flat" or "hier" *)
  rp_reconvergence : string;  (** "stack" or "its" *)
  rp_base : Metrics.t;
  rp_opt : Metrics.t;
  rp_melds : meld_row list;  (** in application order *)
  rp_branches : branch_join list;  (** sorted by branch id *)
  rp_mem_sites : mem_join list;  (** sorted by site id *)
}

(** Total cycle delta, [base - opt]; positive = the pass helped. *)
val delta : t -> int

(** [delta t - sum(meld_saved)]: cycles explained by melded-path
    execution, reconvergence overhead and secondary effects rather than
    by any single meld.  [sum(meld_saved) + residual = delta] exactly. *)
val residual : t -> int

(** True when the baseline run never split a warp and no meld was
    applied — the renderers then say so instead of emitting an empty
    table. *)
val no_divergence : t -> bool

(** {2 Memory attribution} — the per-access-site analogue of the
    per-meld table, with its own exact-sum discipline: the per-site
    cycle deltas sum to [mem_delta] by construction (the simulator
    attributes every memory issue to a site), and
    [mem_delta + mem_residual = delta] closes the identity against the
    total. *)

(** Memory issue cycles this site gained or lost, [base - opt]. *)
val mem_site_saved : mem_join -> int

(** Global memory-cycle delta, [base.mem_cycles - opt.mem_cycles]. *)
val mem_delta : t -> int

(** [delta - mem_delta]: the non-memory share of the total cycle
    delta. *)
val mem_residual : t -> int

(** True when neither run issued a load or store. *)
val no_memory : t -> bool

(** Assemble a report from raw pieces (exposed so the tests can build
    synthetic inputs without running kernels).  Claims branches to
    melds, builds the joined branch table and the joined per-site
    memory table.  [mem_model] and [reconvergence] are display/schema
    tags only (defaults "flat" and "stack"); the site counters come
    from the two metrics records. *)
val build :
  ?mem_model:string ->
  ?reconvergence:string ->
  kernel:string ->
  block_size:int ->
  seed:int ->
  n:int ->
  correct:bool ->
  rewrites:int ->
  pass_ms:float ->
  base:Metrics.t ->
  opt:Metrics.t ->
  melds:Pass.meld_record list ->
  unit ->
  t

(** Run [kernel] baseline-vs-DARM at [block_size] (capturing the pass's
    provenance) and assemble the attribution report.  Deterministic:
    identical inputs produce identical reports.  [mem_model] selects
    the simulator's memory model for both runs (default [Flat]);
    [reconvergence] the divergence-handling model (default [Stack]) —
    the two compose freely. *)
val compute :
  ?config:Pass.config ->
  ?seed:int ->
  ?n:int ->
  ?mem_model:Darm_sim.Simulator.mem_model ->
  ?reconvergence:Darm_sim.Simulator.reconvergence ->
  Kernel.t ->
  block_size:int ->
  t

(** [compute] over several (kernel, block size) points on the domain
    pool; results come back in input order for any [jobs], so rendered
    output is byte-identical across pool sizes. *)
val compute_many :
  ?jobs:int ->
  ?config:Pass.config ->
  ?seed:int ->
  ?n:int ->
  ?mem_model:Darm_sim.Simulator.mem_model ->
  ?reconvergence:Darm_sim.Simulator.reconvergence ->
  (Kernel.t * int) list ->
  t list

(** {2 Renderers} — all three are pure functions of the report. *)

val to_text : t -> string
val to_markdown : t -> string

(** Single-report JSON document: [{"schema":"darm-report-v1",...}]. *)
val to_json : t -> Darm_obs.Json.t

(** Multi-report document:
    [{"schema":"darm-report-v1","reports":[...]}]. *)
val many_to_json : t list -> Darm_obs.Json.t

(** Export both runs' counters into a metrics registry, labelled
    [kernel=<tag>], [run=base|opt] (plus the per-branch series of
    {!Metrics.fill_registry}). *)
val fill_metrics : Darm_obs.Metrics_registry.t -> t -> unit
