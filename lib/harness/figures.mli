(** Reproduction of every figure and table of the paper's evaluation
    (§VI).  Each function runs the experiment and prints the same
    rows/series the paper reports, with the paper's headline numbers
    quoted alongside; see EXPERIMENTS.md for the recorded
    paper-vs-measured comparison.

    Experiment points are computed on the {!Parallel_sweep} domain pool
    ([jobs] defaults to [DARM_JOBS] / the core count) and printed from
    the main domain in a fixed order: the bytes written are identical
    for any pool size. *)

module E = Experiment

(** Print a failure banner for incorrect results; [true] = all clean. *)
val check_banner : E.result list -> bool

(** Synthetic benchmark speedups per block size, with geomean. *)
val fig7 : ?n:int -> ?jobs:int -> unit -> E.result list

(** Real-world benchmark speedups per block size ('+' = best baseline
    block size); GM, GM-best, and the speedup spread over input seeds. *)
val fig8 : ?n:int -> ?jobs:int -> unit -> E.result list

(** ALU utilization, baseline vs DARM, at each benchmark's
    best-improvement block size.  Returns (tag, baseline%, darm%) per
    kernel plus the underlying results for correctness gating. *)
val fig9 :
  ?n:int -> ?jobs:int -> unit -> (string * float * float) list * E.result list

(** Memory instruction counters after DARM normalized to baseline.
    Returns (tag, vector, shared, flat) per kernel plus the underlying
    results. *)
val fig10 :
  ?n:int ->
  ?jobs:int ->
  unit ->
  (string * float * float * float) list * E.result list

(** Capability matrix: tail merging / branch fusion / DARM on the three
    control-flow pattern classes.  [true] = every cell passed its
    equivalence check. *)
val table1 : ?n:int -> ?jobs:int -> unit -> bool

(** Compile time of the pass pipelines, averaged over [reps] runs.
    Serial by design — it measures wall clock. *)
val table2 : ?reps:int -> unit -> unit

(** CI smoke pass: every registered kernel once at its smallest
    workload, one block size, one seed.  Returns all-correct plus the
    results (input to {!Bench_json}). *)
val smoke : ?jobs:int -> unit -> bool * E.result list
