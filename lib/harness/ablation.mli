(** Ablation studies beyond the paper: unpredication on/off, the melding
    profitability threshold, the select-latency term of FP_I, greedy vs
    alignment subgraph pairing, warp width, and post-meld
    re-predication.

    Experiment points run on the {!Parallel_sweep} domain pool; the
    printed output is byte-identical for any [jobs]. *)

(** Run every ablation; [true] = every underlying experiment passed its
    equivalence check. *)
val run : ?jobs:int -> unit -> bool
