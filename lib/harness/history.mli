(** Append-only bench history and the regression sentinel.

    Every bench run appends one env-fingerprinted record to a JSONL
    file ([BENCH_history.jsonl] by default, one JSON document per
    line, schema [darm-bench-hist-v2] — see doc/schemas.md), so the
    performance trajectory across commits survives the overwrite of
    [BENCH_darm.json].  {!diff} compares two records under configurable
    noise thresholds and is the engine of [darm_opt bench-diff] — the
    CI regression sentinel.

    Cycle counts are deterministic per (kernel, block size, seed, n,
    warp size), so the cycle thresholds can be tight; [pass_ms] is
    wall-clock and needs generous slack. *)

val schema : string
(** ["darm-bench-hist-v2"] — v2 added the memory-model fingerprint
    ([env.mem_model], per-entry [mem_model]).  The reconvergence-model
    fingerprint ([env.reconvergence], per-entry [reconvergence]) was
    added within the v2 window: it is always written going forward, and
    lines without it load as ["stack"] (the only model that existed
    when they were recorded). *)

val default_path : string
(** ["BENCH_history.jsonl"]. *)

(** Environment fingerprint stamped on every record: enough to tell
    "the code regressed" from "the machine changed". *)
type env = {
  ocaml_version : string;
  os_type : string;
  word_size : int;
  warp_size : int;
  jobs : int;  (** domain-pool size the run used *)
  mem_model : string;
      (** memory model(s) the run covered: "flat", "hier" or
          "flat+hier" *)
  reconvergence : string;
      (** reconvergence model(s) the run covered: "stack", "its" or
          "stack+its"; "stack" when absent from an older line *)
}

(** Fingerprint of the current process ([jobs] defaults to
    {!Parallel_sweep.default_jobs}, [mem_model] to "flat",
    [reconvergence] to "stack"). *)
val current_env :
  ?jobs:int -> ?mem_model:string -> ?reconvergence:string -> unit -> env

(** One experiment point, flattened to the serialized fields. *)
type entry = {
  e_kernel : string;
  e_block_size : int;
  e_transform : string;
  e_mem_model : string;  (** "flat" or "hier"; part of the point key *)
  e_reconvergence : string;
      (** "stack" or "its"; part of the point key, "stack" when absent
          from an older line *)
  e_rewrites : int;
  e_base_cycles : int;
  e_opt_cycles : int;
  e_pass_ms : float;
  e_correct : bool;
}

(** Speedup recomputed from the stored cycles (never trusted from the
    file); 0 when the optimized run retired zero cycles. *)
val entry_speedup : entry -> float

(** Aggregate throughput stats of one [darm_opt batch] run — the
    "millions of users" axis of the trajectory.  Batch records carry no
    per-kernel entries (a 100k-kernel sweep would dwarf the history);
    instead the sentinel gates on cache hit-rate and kernels/sec. *)
type batch = {
  b_kernels : int;  (** manifest entries actually processed *)
  b_hits : int;  (** result-cache hits *)
  b_misses : int;  (** result-cache misses (computed kernels) *)
  b_incorrect : int;  (** kernels whose melded output mismatched *)
  b_wall_s : float;  (** wall-clock of the whole batch run *)
  b_pass_ms_p99 : float option;
      (** p99 of the computed (cache-missed) specs' [pass_ms]; [None]
          when the run computed nothing (fully warm) — serialized as
          [pass_ms_p99] only when present, so the field addition keeps
          the schema version (doc/schemas.md).  {!diff} gates it under
          the same factor+slack envelope as per-point [pass_ms], and
          only when both records carry it. *)
}

(** [hits / (hits + misses)]; 0 when nothing ran. *)
val batch_hit_rate : batch -> float

(** [kernels / wall_s]; 0 when the wall-clock is degenerate. *)
val batch_kernels_per_sec : batch -> float

type record = {
  r_time : float;  (** unix seconds at append time *)
  r_env : env;
  r_wall_s : float option;  (** harness wall-clock, when known *)
  r_entries : entry list;
  r_batch : batch option;  (** present on [darm_opt batch] records *)
}

(** Flatten results into entries tagged with [mem_model] (default
    "flat") and [reconvergence] (default "stack") — for composing
    multi-model records by hand. *)
val entries_of_results :
  ?mem_model:string ->
  ?reconvergence:string ->
  Experiment.result list ->
  entry list

val of_results :
  ?wall_s:float ->
  ?jobs:int ->
  ?mem_model:string ->
  ?reconvergence:string ->
  time:float ->
  Experiment.result list ->
  record

(** An entry-less record carrying batch throughput stats. *)
val of_batch : ?jobs:int -> time:float -> batch -> record

val record_to_json : record -> Darm_obs.Json.t

(** Parse one history line; checks the [schema] key.  Accepts
    [darm-bench-hist-v1] lines for one version window — their missing
    [mem_model] fields default to ["flat"].  Missing [reconvergence]
    fields (v1 and pre-ITS v2 lines alike) default to ["stack"]. *)
val record_of_json : Darm_obs.Json.t -> (record, string) result

(** Append one line to the history file (creating it if needed). *)
val append : ?path:string -> record -> unit

(** All records of a history file in file order.  [Error] on a missing
    file, unparsable line or wrong schema — CI treats any of these as a
    corrupt history. *)
val load : ?path:string -> unit -> (record list, string) result

(** {2 Regression sentinel} *)

type thresholds = {
  max_geomean_drop : float;
      (** relative drop of recomputed geomean speedup that counts as a
          regression (default 0.02 = 2%) *)
  max_cycle_growth : float;
      (** per-point relative growth of [opt_cycles] that counts as a
          regression (default 0.02); cycles are deterministic, so this
          is headroom for intentional trade-offs, not timer noise *)
  pass_ms_factor : float;
      (** candidate [pass_ms] beyond [factor * base + slack] is a
          regression; wall-clock, so generous (default 10.0) *)
  pass_ms_slack : float;  (** absolute ms slack (default 100.0) *)
  min_kps_ratio : float;
      (** when both records carry {!batch} stats, candidate
          kernels/sec below [ratio * baseline] is a throughput
          regression; wall-clock and machine-dependent, so very
          generous (default 0.1 = a 10x slowdown) *)
}

val default_thresholds : thresholds

type diff = {
  d_regressions : string list;
      (** human-readable findings, deterministic order; empty = pass *)
  d_notes : string list;
      (** non-fatal observations (env changes, coverage differences,
          improvements) *)
  d_geomean_base : float;  (** over the compared points, baseline *)
  d_geomean_cand : float;  (** over the compared points, candidate *)
  d_compared : int;  (** points present in both records *)
}

(** [diff ~baseline candidate] compares the candidate record against
    the baseline.  Points are keyed by
    (kernel, block size, transform, mem model, reconvergence model);
    only keys present in both are compared (coverage differences become
    notes).  Speedups and geomeans are recomputed from cycles.
    Correctness flips and zero-cycle entries are always regressions.
    When both records carry {!batch} stats the sentinel additionally
    gates batch throughput (kernels/sec, threshold [min_kps_ratio]) and
    new incorrect kernels; two entry-less batch records compare on
    throughput alone instead of tripping the no-common-points gate. *)
val diff : ?thresholds:thresholds -> baseline:record -> record -> diff

val diff_ok : diff -> bool

(** Render a diff for the terminal (deterministic). *)
val diff_to_text : diff -> string
