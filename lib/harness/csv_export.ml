(** CSV export of the evaluation data, one file per figure/table —
    the artifact-style output format, convenient for external plotting. *)

module Kernel = Darm_kernels.Kernel
module Registry = Darm_kernels.Registry
module Metrics = Darm_sim.Metrics
module E = Experiment

(* binary so the cmp-based byte-identity guarantee holds on any
   platform, atomic so a crashed export never leaves a torn figure *)
let write_file (path : string) (header : string) (rows : string list) : unit =
  let b = Buffer.create 4096 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      Buffer.add_string b r;
      Buffer.add_char b '\n')
    rows;
  Darm_obs.Fsio.write_atomic ~path (Buffer.contents b)

let result_row (r : E.result) : string =
  Printf.sprintf "%s,%d,%s,%d,%d,%d,%.4f,%.2f,%.2f,%d,%d,%d,%d,%d,%d,%d"
    r.E.tag r.E.block_size r.E.transform_name r.E.rewrites
    r.E.base.Metrics.cycles r.E.opt.Metrics.cycles (E.speedup r)
    (Metrics.alu_utilization r.E.base
       ~warp_size:E.sim_config.Darm_sim.Simulator.warp_size)
    (Metrics.alu_utilization r.E.opt
       ~warp_size:E.sim_config.Darm_sim.Simulator.warp_size)
    r.E.base.Metrics.mem_global r.E.opt.Metrics.mem_global
    r.E.base.Metrics.mem_shared r.E.opt.Metrics.mem_shared
    r.E.base.Metrics.mem_flat r.E.opt.Metrics.mem_flat
    (if r.E.correct then 1 else 0)

let header =
  "bench,block_size,transform,rewrites,base_cycles,opt_cycles,speedup,\
   base_alu_util,opt_alu_util,base_mem_global,opt_mem_global,\
   base_mem_shared,opt_mem_shared,base_mem_flat,opt_mem_flat,correct"

(** Run the full evaluation and write [fig7.csv] (synthetic sweep) and
    [fig8.csv] (real-world sweep) — these two carry all the per-metric
    columns from which Figures 7-10 derive — into [dir].  The sweeps
    fan out over the {!Parallel_sweep} domain pool; the emitted bytes
    are identical for any [jobs]. *)
let export ?n ?jobs ~(dir : string) () : unit =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let rows kernels =
    List.map result_row (E.sweep_many ?jobs ?n kernels)
  in
  write_file (Filename.concat dir "fig7.csv") header
    (rows Registry.synthetic);
  write_file (Filename.concat dir "fig8.csv") header
    (rows Registry.real_world);
  Printf.printf "wrote %s and %s\n"
    (Filename.concat dir "fig7.csv")
    (Filename.concat dir "fig8.csv")
