(** Machine-readable bench summary: [BENCH_darm.json].

    One JSON document per bench run recording, per experiment point,
    the baseline/optimized cycle counts, speedup, ALU utilization,
    divergent-branch counts and the pass wall time — plus the geomean
    speedup.  Written by [bench/main.exe] (both the full run and
    [--smoke]) so the performance trajectory is tracked across PRs; see
    doc/observability.md for the schema. *)

module Json = Darm_obs.Json
module E = Experiment

(** Schema identifier embedded in the document ("darm-bench-v1"). *)
val schema : string

val default_path : string

(** The summary document.  [wall_s], when given, records the whole
    bench run's wall-clock seconds (the only non-deterministic field
    besides [pass_ms]). *)
val summary : ?wall_s:float -> E.result list -> Json.t

(** Serialize to [path] (default {!default_path}) and validate the
    written bytes by re-reading and re-parsing them; raises [Failure]
    if the file does not parse back with a non-empty [results] list. *)
val write : ?path:string -> ?wall_s:float -> E.result list -> unit
