(** CSV export of the evaluation data — the artifact-style output
    format, convenient for external plotting. *)

val header : string

(** One CSV row for a single experiment result. *)
val result_row : Experiment.result -> string

(** Run the full evaluation and write fig7.csv / fig8.csv into [dir].
    [n] overrides the element count, [jobs] the domain-pool size; the
    emitted bytes do not depend on [jobs]. *)
val export : ?n:int -> ?jobs:int -> dir:string -> unit -> unit
