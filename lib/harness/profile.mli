(** Deterministic profiling pipeline behind [darm_opt profile] (and the
    [--trace-out] flags of [simulate]/[sweep]).

    A profiled point runs one (kernel, block size) experiment with full
    observability: the pass driver emits its iteration spans and
    meld-decision events, both simulations emit their per-warp
    divergence timelines, and the harness wraps everything in an
    experiment span.  {!sweep} fans the kernel's block sizes over the
    {!Parallel_sweep} domain pool with one private buffer per task and
    merges the buffers in block-size order, shifting each task into its
    own pid namespace ({!pid_stride}) — so the merged trace is
    byte-identical for any [jobs] count, matching the harness-wide
    determinism guarantee. *)

module Kernel = Darm_kernels.Kernel
module Trace = Darm_obs.Trace
module E = Experiment
module Pass = Darm_core.Pass

(** The DARM transform with its pass instrumentation routed into the
    given buffer. *)
val darm_obs_transform : ?config:Pass.config -> Trace.t -> E.transform

(** CLI pass-name mapping: "darm" and "branch-fusion" are instrumented
    ({!darm_obs_transform}); "tail-merge" and "none" run uninstrumented
    (they do not go through the melding driver). *)
val transform_named : string -> (Trace.t -> E.transform, string) result

(** Profile a single (kernel, block size) point into a fresh buffer.
    [mem_model] selects the simulator's memory model (default
    [Flat]); [reconvergence] the divergence-handling model (default
    [Stack]). *)
val run_point :
  ?seed:int ->
  ?n:int ->
  ?mem_model:Darm_sim.Simulator.mem_model ->
  ?reconvergence:Darm_sim.Simulator.reconvergence ->
  transform:(Trace.t -> E.transform) ->
  Kernel.t ->
  block_size:int ->
  Trace.t * E.result

(** pid distance between consecutive block-size tasks in a merged sweep
    trace (each task occupies pids 0..2 of its namespace). *)
val pid_stride : int

(** Profile the kernel's whole block-size sweep; the merged trace and
    the per-block-size results, both in block-size order regardless of
    the pool size. *)
val sweep :
  ?jobs:int ->
  ?seed:int ->
  ?n:int ->
  ?mem_model:Darm_sim.Simulator.mem_model ->
  ?reconvergence:Darm_sim.Simulator.reconvergence ->
  ?transform:(Trace.t -> E.transform) ->
  Kernel.t ->
  Trace.t * E.result list
