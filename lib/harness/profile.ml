(* Deterministic profiling pipeline: run a kernel's block-size sweep
   with full observability (pass spans + meld decisions, per-warp
   divergence timelines, experiment spans) and merge the per-task
   buffers in block-size order.  See profile.mli. *)

module Kernel = Darm_kernels.Kernel
module Trace = Darm_obs.Trace
module E = Experiment
module Pass = Darm_core.Pass

let darm_obs_transform ?(config = Pass.default_config) (tr : Trace.t) :
    E.transform =
  {
    E.t_name = (if config.Pass.diamonds_only then "branch-fusion" else "DARM");
    t_apply =
      (fun f ->
        let stats = Pass.run ~config:{ config with Pass.obs = Some tr } f in
        stats.Pass.melds_applied);
  }

let transform_named (name : string) :
    (Trace.t -> E.transform, string) result =
  match name with
  | "darm" -> Ok (fun tr -> darm_obs_transform tr)
  | "branch-fusion" ->
      Ok (fun tr -> darm_obs_transform ~config:Pass.branch_fusion_config tr)
  | "tail-merge" -> Ok (fun _ -> E.tail_merge_transform)
  | "none" -> Ok (fun _ -> E.identity_transform)
  | other -> Error (Printf.sprintf "unknown pass %S for profiling" other)

let run_point ?seed ?n ?mem_model ?reconvergence ~(transform : Trace.t -> E.transform)
    (kernel : Kernel.t) ~(block_size : int) : Trace.t * E.result =
  let tr = Trace.create () in
  Trace.instant tr ~cat:"profile"
    ~args:
      [
        ("kernel", Trace.Str kernel.Kernel.tag);
        ("block_size", Trace.Int block_size);
      ]
    "profile.task";
  let r =
    E.run ~transform:(transform tr) ?seed ?n ?mem_model ?reconvergence
      ~obs:tr kernel
      ~block_size
  in
  Trace.instant tr ~cat:"profile"
    ~args:
      [
        ("kernel", Trace.Str r.E.tag);
        ("block_size", Trace.Int r.E.block_size);
        ("transform", Trace.Str r.E.transform_name);
        ("rewrites", Trace.Int r.E.rewrites);
        ("base_cycles", Trace.Int r.E.base.E.Metrics.cycles);
        ("opt_cycles", Trace.Int r.E.opt.E.Metrics.cycles);
        ("speedup", Trace.Float (E.speedup r));
        ("correct", Trace.Bool r.E.correct);
      ]
    "profile.result";
  (tr, r)

(* pid namespace stride between the tasks of a merged sweep trace: each
   task uses pids 0 (pass/harness), 1 (baseline sim), 2 (melded sim) *)
let pid_stride = 1000

let sweep ?jobs ?seed ?n ?mem_model ?reconvergence
    ?(transform = fun tr -> darm_obs_transform tr)
    (kernel : Kernel.t) : Trace.t * E.result list =
  let points =
    Parallel_sweep.map ?jobs
      (fun block_size ->
        run_point ?seed ?n ?mem_model ?reconvergence ~transform kernel
          ~block_size)
      kernel.Kernel.block_sizes
  in
  let traces =
    List.mapi
      (fun i (tr, _) ->
        Trace.shift_pid tr (i * pid_stride);
        tr)
      points
  in
  (Trace.merge traces, List.map snd points)
