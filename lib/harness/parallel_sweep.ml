(** Deterministic domain pool for fanning experiment runs across cores.

    The pool is a work-stealing index over an immutable task array: each
    domain repeatedly claims the next unclaimed index with an atomic
    fetch-and-add and writes its result into a slot owned by that index,
    so the output order is the input order no matter how the domains
    interleave.  The calling domain participates as a worker, which
    makes [jobs = 1] run everything inline with no domain spawned at
    all — the sequential and parallel paths produce identical results
    by construction. *)

let default_jobs () =
  match Sys.getenv_opt "DARM_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf
               "DARM_JOBS must be a positive integer, got %S" s))
  | None -> Domain.recommended_domain_count ()

let map_with ?jobs (f : worker:int -> 'a -> 'b) (xs : 'a list) : 'b list =
  let tasks = Array.of_list xs in
  let n = Array.length tasks in
  if n = 0 then []
  else
    let jobs =
      let j = match jobs with Some j -> j | None -> default_jobs () in
      min (max 1 j) n
    in
    if jobs = 1 then List.map (f ~worker:0) xs
    else begin
      let results : 'b option array = Array.make n None in
      let errors : (exn * Printexc.raw_backtrace) option array =
        Array.make n None
      in
      let next = Atomic.make 0 in
      let worker w () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (try results.(i) <- Some (f ~worker:w tasks.(i))
             with e ->
               (* capture the backtrace at the catch site so the
                  deferred re-raise below still points at the failing
                  task, not at the pool plumbing *)
               errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
            loop ()
          end
        in
        loop ()
      in
      (* the calling domain is worker 0, spawned domains 1..jobs-1 *)
      let domains =
        List.init (jobs - 1) (fun i -> Domain.spawn (worker (i + 1)))
      in
      worker 0 ();
      List.iter Domain.join domains;
      (* re-raise the error of the lowest failed index, so a failing
         sweep reports the same task regardless of the domain count *)
      Array.iter
        (function
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
        errors;
      Array.to_list
        (Array.map
           (function Some v -> v | None -> assert false)
           results)
    end

let map ?jobs (f : 'a -> 'b) (xs : 'a list) : 'b list =
  map_with ?jobs (fun ~worker:_ x -> f x) xs

let run_all ?jobs (thunks : (unit -> 'a) list) : 'a list =
  map ?jobs (fun t -> t ()) thunks
