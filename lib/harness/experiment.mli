(** Experiment runner: executes a kernel baseline-vs-transformed on the
    simulator and collects the paper's metrics, with a built-in output
    equivalence check against the host reference.

    Under the default machine model the runner memoizes both the
    baseline simulation of each (kernel, block size, seed, n) point and
    the full results of the stock transforms, so figures, tables and
    CSV exports that revisit the same point share one simulation.  The
    caches are mutex-protected and safe to hit from the
    {!Parallel_sweep} domain pool. *)

module Kernel = Darm_kernels.Kernel
module Sim = Darm_sim.Simulator
module Metrics = Darm_sim.Metrics
module Pass = Darm_core.Pass

type transform = {
  t_name : string;
  t_apply : Darm_ir.Ssa.func -> int;  (** returns #rewrites applied *)
}

val darm_transform : ?config:Pass.config -> unit -> transform

(** The shared default-config DARM transform.  Results produced through
    this instance (and the other stock transforms below) are memoized;
    a fresh [darm_transform ()] behaves identically but bypasses the
    result cache. *)
val darm_default : transform

val branch_fusion_transform : transform
val tail_merge_transform : transform
val identity_transform : transform

type result = {
  tag : string;
  block_size : int;
  transform_name : string;
  rewrites : int;
  base : Metrics.t;
  opt : Metrics.t;
  correct : bool;
      (** transformed output == baseline output == reference, and both
          runs retired a non-zero cycle count *)
  t_ms : float;
      (** wall-clock milliseconds spent inside the transform (the pass
          pipeline only — simulation time excluded); feeds the
          [pass_ms] column of BENCH_darm.json *)
}

(** Baseline cycles over optimized cycles.  Raises [Invalid_argument]
    if the optimized run retired zero cycles — a zero-cycle run means
    the simulation never executed, and reporting 1.0x for it would
    silently hide the failure. *)
val speedup : result -> float

(** [all_correct rs] — every result passed its equivalence check. *)
val all_correct : result list -> bool

val sim_config : Sim.config

val run_instance : ?config:Sim.config -> Kernel.instance -> Metrics.t

(** Run [kernel] at [block_size] with and without [transform]; [sim]
    overrides the machine model (e.g. the warp width).

    [obs] instruments the run: the whole experiment is wrapped in an
    [experiment] span carrying kernel/block-size/transform attributes,
    and both simulations emit their divergence timelines into the
    buffer (baseline on pid 1, transformed on pid 2).  Observed runs
    bypass the memoization caches so the events are always emitted.

    [mem_model] selects the memory model for both simulations (folded
    into [sim]); [Hier] runs bypass the memoization caches, which hold
    default-model results only.  [reconvergence] selects the
    divergence-handling model the same way: [Stack] (the default) stays
    cacheable, [Its] folds into [sim] and bypasses the caches.  The two
    overrides compose — Flat/Hier x Stack/Its are all valid. *)
val run :
  ?transform:transform ->
  ?seed:int ->
  ?n:int ->
  ?sim:Sim.config ->
  ?obs:Darm_obs.Trace.t ->
  ?mem_model:Sim.mem_model ->
  ?reconvergence:Sim.reconvergence ->
  Kernel.t ->
  block_size:int ->
  result

(** Sweep a kernel over its block sizes on the domain pool. *)
val sweep :
  ?jobs:int ->
  ?transform:transform ->
  ?seed:int ->
  ?n:int ->
  ?mem_model:Sim.mem_model ->
  ?reconvergence:Sim.reconvergence ->
  Kernel.t ->
  result list

(** Sweep several kernels over their block sizes on the domain pool;
    the flattened results are in kernel-major, block-size-minor order
    for any pool size. *)
val sweep_many :
  ?jobs:int ->
  ?transform:transform ->
  ?seed:int ->
  ?n:int ->
  ?mem_model:Sim.mem_model ->
  ?reconvergence:Sim.reconvergence ->
  Kernel.t list ->
  result list

(** Force independent experiment thunks on the domain pool, preserving
    list order. *)
val run_many : ?jobs:int -> (unit -> result) list -> result list

val geomean : float list -> float
