(* Machine-readable bench summary (BENCH_darm.json): per-kernel
   base/opt cycles, speedup, ALU utilization and pass wall time, plus
   the geomean — the cross-PR performance trajectory record. *)

module Json = Darm_obs.Json
module Metrics = Darm_sim.Metrics
module E = Experiment

let schema = "darm-bench-v1"

let default_path = "BENCH_darm.json"

let result_json (warp_size : int) (r : E.result) : Json.t =
  Json.Obj
    [
      ("kernel", Json.Str r.E.tag);
      ("block_size", Json.Int r.E.block_size);
      ("transform", Json.Str r.E.transform_name);
      ("rewrites", Json.Int r.E.rewrites);
      ("base_cycles", Json.Int r.E.base.Metrics.cycles);
      ("opt_cycles", Json.Int r.E.opt.Metrics.cycles);
      ("speedup", Json.Float (E.speedup r));
      ( "alu_util_base",
        Json.Float (Metrics.alu_utilization r.E.base ~warp_size) );
      ( "alu_util_opt",
        Json.Float (Metrics.alu_utilization r.E.opt ~warp_size) );
      ( "divergent_branches_base",
        Json.Int r.E.base.Metrics.divergent_branches );
      ("divergent_branches_opt", Json.Int r.E.opt.Metrics.divergent_branches);
      ("pass_ms", Json.Float r.E.t_ms);
      ("correct", Json.Bool r.E.correct);
    ]

let summary ?wall_s (results : E.result list) : Json.t =
  let warp_size = E.sim_config.E.Sim.warp_size in
  Json.Obj
    ([
       ("schema", Json.Str schema);
       ("warp_size", Json.Int warp_size);
       ("geomean_speedup", Json.Float (E.geomean (List.map E.speedup results)));
       ("results", Json.List (List.map (result_json warp_size) results));
     ]
    @ match wall_s with None -> [] | Some s -> [ ("wall_s", Json.Float s) ])

(** Write the summary and validate it by re-reading and re-parsing the
    written bytes; raises [Failure] on an unwritable or corrupt result.
    The write is binary and atomic (temp file + rename): a crash
    mid-write can never leave a torn [BENCH_darm.json] for the
    validator — or a later [bench-diff] — to reject. *)
let write ?(path = default_path) ?wall_s (results : E.result list) : unit =
  let contents = Json.to_string (summary ?wall_s results) ^ "\n" in
  let validate written =
    match Json.parse written with
    | Error msg -> failwith (Printf.sprintf "%s: invalid JSON: %s" path msg)
    | Ok j -> (
        match Json.member "results" j with
        | Some (Json.List (_ :: _)) -> ()
        | _ -> failwith (Printf.sprintf "%s: missing or empty results" path))
  in
  Darm_obs.Fsio.write_atomic ~validate ~path contents
