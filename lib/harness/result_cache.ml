(* Content-addressed on-disk result cache.  See result_cache.mli. *)

module Json = Darm_obs.Json
module Fsio = Darm_obs.Fsio

type t = { c_dir : string; c_schema : string }

let default_schema = "darm-batchres-v1"

let default_dir = ".darm-cache"

let create ?(dir = default_dir) ?(schema = default_schema) () =
  { c_dir = dir; c_schema = schema }

let dir t = t.c_dir
let schema t = t.c_schema

(* Length-prefix every part so ["ab"; "c"] and ["a"; "bc"] hash apart,
   and fold the schema version in so a payload format bump is a whole
   new key space. *)
let key t (parts : string list) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b t.c_schema;
  List.iter
    (fun p ->
      Buffer.add_char b '\x00';
      Buffer.add_string b (string_of_int (String.length p));
      Buffer.add_char b ':';
      Buffer.add_string b p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents b))

let shard_of_key k = if String.length k >= 2 then String.sub k 0 2 else "xx"

let entry_path t ~key =
  Filename.concat (Filename.concat t.c_dir (shard_of_key key)) (key ^ ".json")

let payload_valid t (bytes : string) : bool =
  match Json.parse bytes with
  | Error _ -> false
  | Ok j -> (
      match Json.member "schema" j with
      | Some (Json.Str s) -> s = t.c_schema
      | _ -> false)

let find t ~key : string option =
  let path = entry_path t ~key in
  (* Sys_error: missing/unreadable.  End_of_file: the file shrank
     between the length probe and the read (a concurrent truncation) —
     both are misses, never crashes. *)
  match Fsio.read_file path with
  | exception (Sys_error _ | End_of_file) -> None
  | bytes ->
      if payload_valid t bytes then Some bytes
      else begin
        (* corrupt, truncated or wrong-schema bytes: evict the poison
           file so the next store rewrites it, instead of re-parsing
           the same garbage on every lookup forever *)
        (try Sys.remove path with Sys_error _ -> ());
        None
      end

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ when Sys.file_exists d -> ()
  end

let store t ~key payload =
  if not (payload_valid t payload) then
    invalid_arg
      (Printf.sprintf
         "Result_cache.store: payload is not valid %S JSON" t.c_schema);
  let path = entry_path t ~key in
  mkdir_p (Filename.dirname path);
  Fsio.write_atomic ~path payload

let clear t : int =
  let removed = ref 0 in
  if Sys.file_exists t.c_dir && Sys.is_directory t.c_dir then
    Array.iter
      (fun shard ->
        let sdir = Filename.concat t.c_dir shard in
        if Sys.is_directory sdir then
          Array.iter
            (fun f ->
              if Filename.check_suffix f ".json" then begin
                (try
                   Sys.remove (Filename.concat sdir f);
                   incr removed
                 with Sys_error _ -> ())
              end)
            (Sys.readdir sdir))
      (Sys.readdir t.c_dir);
  !removed
