(* Content-addressed on-disk result cache.  See result_cache.mli. *)

module Json = Darm_obs.Json
module Fsio = Darm_obs.Fsio

type stats = {
  st_hits : int;
  st_misses : int;
  st_evictions : int;
  st_poison_evictions : int;
}

type t = {
  c_dir : string;
  c_schema : string;
  (* lifetime telemetry of this handle; atomics because batch pool
     domains share one handle *)
  c_hits : int Atomic.t;
  c_misses : int Atomic.t;
  c_evictions : int Atomic.t;
  c_poison : int Atomic.t;
}

let default_schema = "darm-batchres-v1"

let default_dir = ".darm-cache"

let create ?(dir = default_dir) ?(schema = default_schema) () =
  {
    c_dir = dir;
    c_schema = schema;
    c_hits = Atomic.make 0;
    c_misses = Atomic.make 0;
    c_evictions = Atomic.make 0;
    c_poison = Atomic.make 0;
  }

let stats t : stats =
  {
    st_hits = Atomic.get t.c_hits;
    st_misses = Atomic.get t.c_misses;
    st_evictions = Atomic.get t.c_evictions;
    st_poison_evictions = Atomic.get t.c_poison;
  }

let dir t = t.c_dir
let schema t = t.c_schema

(* Length-prefix every part so ["ab"; "c"] and ["a"; "bc"] hash apart,
   and fold the schema version in so a payload format bump is a whole
   new key space. *)
let key t (parts : string list) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b t.c_schema;
  List.iter
    (fun p ->
      Buffer.add_char b '\x00';
      Buffer.add_string b (string_of_int (String.length p));
      Buffer.add_char b ':';
      Buffer.add_string b p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents b))

let shard_of_key k = if String.length k >= 2 then String.sub k 0 2 else "xx"

let entry_path t ~key =
  Filename.concat (Filename.concat t.c_dir (shard_of_key key)) (key ^ ".json")

let payload_valid t (bytes : string) : bool =
  match Json.parse bytes with
  | Error _ -> false
  | Ok j -> (
      match Json.member "schema" j with
      | Some (Json.Str s) -> s = t.c_schema
      | _ -> false)

let find t ~key : string option =
  let path = entry_path t ~key in
  (* Sys_error: missing/unreadable.  End_of_file: the file shrank
     between the length probe and the read (a concurrent truncation) —
     both are misses, never crashes. *)
  match Fsio.read_file path with
  | exception (Sys_error _ | End_of_file) ->
      Atomic.incr t.c_misses;
      None
  | bytes ->
      if payload_valid t bytes then begin
        Atomic.incr t.c_hits;
        Some bytes
      end
      else begin
        (* corrupt, truncated or wrong-schema bytes: evict the poison
           file so the next store rewrites it, instead of re-parsing
           the same garbage on every lookup forever *)
        (try Sys.remove path with Sys_error _ -> ());
        Atomic.incr t.c_poison;
        Atomic.incr t.c_misses;
        None
      end

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ when Sys.file_exists d -> ()
  end

let store t ~key payload =
  if not (payload_valid t payload) then
    invalid_arg
      (Printf.sprintf
         "Result_cache.store: payload is not valid %S JSON" t.c_schema);
  let path = entry_path t ~key in
  mkdir_p (Filename.dirname path);
  Fsio.write_atomic ~path payload

let clear t : int =
  let removed = ref 0 in
  if Sys.file_exists t.c_dir && Sys.is_directory t.c_dir then
    Array.iter
      (fun shard ->
        let sdir = Filename.concat t.c_dir shard in
        if Sys.is_directory sdir then
          Array.iter
            (fun f ->
              if Filename.check_suffix f ".json" then begin
                (try
                   Sys.remove (Filename.concat sdir f);
                   incr removed
                 with Sys_error _ -> ())
              end)
            (Sys.readdir sdir))
      (Sys.readdir t.c_dir);
  Atomic.set t.c_evictions (Atomic.get t.c_evictions + !removed);
  !removed

let fill_metrics (reg : Darm_obs.Metrics_registry.t) t : unit =
  let module MR = Darm_obs.Metrics_registry in
  let s = stats t in
  let count name help v =
    MR.inc reg ~by:(float_of_int v) name;
    MR.help reg name help
  in
  count "darm_cache_hits_total" "Result-cache lookups served from disk"
    s.st_hits;
  count "darm_cache_misses_total"
    "Result-cache lookups that found no usable entry" s.st_misses;
  count "darm_cache_evictions_total" "Entries removed by clear"
    s.st_evictions;
  count "darm_cache_poison_evictions_total"
    "Corrupt/wrong-schema entries evicted on lookup" s.st_poison_evictions
