(** Reproduction of every figure and table of the paper's evaluation
    (§VI).  Each [figN]/[tableN] function runs the experiment and prints
    the same rows/series the paper reports; {!Experiment} supplies the
    raw data.

    All experiment points are computed first — fanned over the
    {!Parallel_sweep} domain pool — and printed afterwards from the
    main domain in a fixed order, so the output is byte-identical for
    any [DARM_JOBS]. *)

module Kernel = Darm_kernels.Kernel
module Registry = Darm_kernels.Registry
module Metrics = Darm_sim.Metrics
module E = Experiment

let pf = Printf.printf

let hr () = pf "%s\n" (String.make 78 '-')

let warp_size = E.sim_config.Darm_sim.Simulator.warp_size

let check_banner (results : E.result list) : bool =
  let bad = List.filter (fun r -> not r.E.correct) results in
  if bad <> [] then begin
    pf "!! CORRECTNESS FAILURES:\n";
    List.iter
      (fun r -> pf "!!   %s bs=%d (%s)\n" r.E.tag r.E.block_size r.E.transform_name)
      bad
  end;
  bad = []

(* the flattened kernel-major output of {!E.sweep_many}, re-grouped per
   kernel in registry order *)
let group_per_kernel (kernels : Kernel.t list) (results : E.result list) :
    (Kernel.t * E.result list) list =
  let rec take n = function
    | rest when n = 0 -> ([], rest)
    | [] -> invalid_arg "Figures.group_per_kernel: short result list"
    | r :: rest ->
        let own, rest = take (n - 1) rest in
        (r :: own, rest)
  in
  let groups, rest =
    List.fold_left
      (fun (acc, rest) k ->
        let own, rest = take (List.length k.Kernel.block_sizes) rest in
        ((k, own) :: acc, rest))
      ([], results) kernels
  in
  assert (rest = []);
  List.rev groups

(* ------------------------------------------------------------------ *)

(** Figure 7: synthetic benchmark speedups per block size, with the
    geometric mean. *)
let fig7 ?n ?jobs () : E.result list =
  let all = E.sweep_many ?jobs ?n Registry.synthetic in
  pf "\n== Figure 7: synthetic benchmark performance (DARM vs baseline) ==\n";
  pf "%-8s" "bench";
  List.iter (fun bs -> pf "%8s" ("bs" ^ string_of_int bs))
    [ 64; 128; 256; 512; 1024 ];
  pf "\n";
  hr ();
  List.iter
    (fun (kernel, results) ->
      pf "%-8s" kernel.Kernel.tag;
      List.iter (fun r -> pf "%8.2f" (E.speedup r)) results;
      pf "\n")
    (group_per_kernel Registry.synthetic all);
  let gm = E.geomean (List.map E.speedup all) in
  hr ();
  pf "%-8s%8.2f   (paper: 1.32x geomean)\n" "GM" gm;
  ignore (check_banner all);
  all

(** Figure 8: real-world benchmark speedups per block size; '+' marks
    the block size with the best baseline runtime; GM and GM-best.
    Each configuration runs over three input seeds; the printed value is
    the mean speedup (the spread is tiny, matching the paper's "error
    bars ... negligible"). *)
let fig8 ?n ?jobs () : E.result list =
  let all = E.sweep_many ?jobs ?n Registry.real_world in
  (* spread across seeds at the first block size *)
  let spread_runs =
    Parallel_sweep.map ?jobs
      (fun (kernel, seed) ->
        E.run ~seed ?n kernel ~block_size:(List.hd kernel.Kernel.block_sizes))
      (List.concat_map
         (fun k -> List.map (fun s -> (k, s)) [ 11; 22; 33 ])
         Registry.real_world)
  in
  pf "\n== Figure 8: real-world benchmark performance (DARM vs baseline) ==\n";
  pf "   (mean speedup over 3 input seeds; max spread printed at the end)\n";
  let best_speedups = ref [] in
  let max_spread = ref 0. in
  List.iteri
    (fun ki (kernel, results) ->
      let speeds =
        List.map E.speedup
          (List.filteri
             (fun i _ -> i / 3 = ki)
             spread_runs)
      in
      let spread =
        List.fold_left max neg_infinity speeds
        -. List.fold_left min infinity speeds
      in
      if spread > !max_spread then max_spread := spread;
      (* best baseline block size = fewest baseline cycles *)
      let best =
        List.fold_left
          (fun acc r ->
            match acc with
            | None -> Some r
            | Some b ->
                if r.E.base.Metrics.cycles < b.E.base.Metrics.cycles then
                  Some r
                else acc)
          None results
      in
      pf "%-6s" kernel.Kernel.tag;
      List.iter
        (fun r ->
          let mark =
            match best with
            | Some b when b.E.block_size = r.E.block_size -> "+"
            | _ -> ""
          in
          pf "  bs%-4d %5.2f%-1s" r.E.block_size (E.speedup r) mark)
        results;
      pf "\n";
      match best with
      | Some b -> best_speedups := E.speedup b :: !best_speedups
      | None -> ())
    (group_per_kernel Registry.real_world all);
  hr ();
  pf "GM      %5.2f   (paper: 1.15x geomean)\n"
    (E.geomean (List.map E.speedup all));
  pf "GM-best %5.2f   (paper: slightly above GM)\n"
    (E.geomean !best_speedups);
  pf "max speedup spread across seeds: %.4f (paper: negligible)\n"
    !max_spread;
  ignore (check_banner (all @ spread_runs));
  all

(* block size with the largest DARM improvement, as §VI-C/D use *)
let best_improvement (results : E.result list) : E.result =
  List.fold_left
    (fun acc r -> if E.speedup r > E.speedup acc then r else acc)
    (List.hd results) (List.tl results)

(** Figure 9: ALU utilization, baseline vs DARM, at each benchmark's
    best-improvement block size.  Returns the printed series plus the
    underlying experiment results (for correctness gating). *)
let fig9 ?n ?jobs () : (string * float * float) list * E.result list =
  let kernels = Registry.synthetic @ Registry.real_world in
  let grouped = group_per_kernel kernels (E.sweep_many ?jobs ?n kernels) in
  pf "\n== Figure 9: ALU utilization %% (baseline vs DARM) ==\n";
  pf "%-8s %10s %10s %8s\n" "bench" "baseline" "DARM" "delta";
  hr ();
  let picked = List.map (fun (_, results) -> best_improvement results) grouped in
  let series =
    List.map
      (fun r ->
        let u_base = Metrics.alu_utilization r.E.base ~warp_size in
        let u_darm = Metrics.alu_utilization r.E.opt ~warp_size in
        pf "%-8s %9.1f%% %9.1f%% %+7.1f%%   (bs=%d)\n" r.E.tag u_base u_darm
          (u_darm -. u_base) r.E.block_size;
        (r.E.tag, u_base, u_darm))
      picked
  in
  (series, picked)

(** Figure 10: memory instruction counters after DARM, normalized to the
    baseline (vector/global, LDS/shared, flat).  Returns the printed
    series plus the underlying experiment results. *)
let fig10 ?n ?jobs () :
    (string * float * float * float) list * E.result list =
  let kernels = Registry.synthetic @ Registry.real_world in
  let grouped = group_per_kernel kernels (E.sweep_many ?jobs ?n kernels) in
  pf "\n== Figure 10: normalized memory instruction counters (DARM/base) ==\n";
  pf "%-8s %10s %10s %10s\n" "bench" "vector" "shared" "flat";
  hr ();
  let norm a b =
    if b = 0 then if a = 0 then 1. else float_of_int (a + 1)
    else float_of_int a /. float_of_int b
  in
  let picked = List.map (fun (_, results) -> best_improvement results) grouped in
  let series =
    List.map
      (fun r ->
        let v = norm r.E.opt.Metrics.mem_global r.E.base.Metrics.mem_global in
        let s = norm r.E.opt.Metrics.mem_shared r.E.base.Metrics.mem_shared in
        let fl = norm r.E.opt.Metrics.mem_flat r.E.base.Metrics.mem_flat in
        pf "%-8s %10.2f %10.2f %10.2f   (bs=%d)\n" r.E.tag v s fl
          r.E.block_size;
        (r.E.tag, v, s, fl))
      picked
  in
  (series, picked)

(* ------------------------------------------------------------------ *)

(** Table I: capability matrix of tail merging / branch fusion / DARM on
    the three control-flow-pattern classes.  A technique "handles" a
    pattern when it removes (almost) all dynamic warp splits.  Returns
    [true] when every cell's experiment passed its equivalence check. *)
let table1 ?(n = 256) ?jobs () : bool =
  let patterns =
    [
      ("diamond, identical paths", Darm_kernels.Patterns.identical_diamond);
      ("diamond, distinct paths", Darm_kernels.Sb.sb1_r);
      ("complex control flow", Darm_kernels.Sb.sb3);
    ]
  in
  let techniques =
    [ E.tail_merge_transform; E.branch_fusion_transform; E.darm_default ]
  in
  let cells =
    Parallel_sweep.map ?jobs
      (fun ((_, kernel), t) -> E.run ~transform:t kernel ~block_size:64 ~n)
      (List.concat_map
         (fun p -> List.map (fun t -> (p, t)) techniques)
         patterns)
  in
  pf "\n== Table I: divergence-reduction capability matrix ==\n";
  pf "%-28s %14s %14s %14s\n" "pattern" "tail-merging" "branch-fusion" "DARM";
  hr ();
  List.iteri
    (fun pi (label, _) ->
      pf "%-28s" label;
      List.iteri
        (fun ti _ ->
          let r = List.nth cells ((pi * List.length techniques) + ti) in
          let residual =
            if r.E.base.Metrics.divergent_branches = 0 then 0.
            else
              float_of_int r.E.opt.Metrics.divergent_branches
              /. float_of_int r.E.base.Metrics.divergent_branches
          in
          (* "yes": the divergent serialization is (nearly) gone;
             "partial": the technique applied and helps, but divergence
             remains (e.g. unpredication guards, inner melded branches) *)
          let verdict =
            if not r.E.correct then "BROKEN"
            else if r.E.rewrites = 0 then "no"
            else if residual <= 0.10 then "yes"
            else if E.speedup r > 1.02 then "partial"
            else "no"
          in
          pf " %13s " verdict)
        techniques;
      pf "\n")
    patterns;
  pf "(paper: tail merging only partial on identical diamonds; branch \n";
  pf " fusion up to diamonds; DARM handles all three)\n";
  E.all_correct cells

(** Table II: compile time of the melding pass, normalized to the
    baseline cleanup pipeline, averaged over [reps] runs.  Stays serial:
    it measures wall clock, and contending domains would perturb it. *)
let table2 ?(reps = 5) () : unit =
  pf "\n== Table II: average compile time (pass pipeline) ==\n";
  pf "%-6s %12s %12s %12s\n" "bench" "O3 (ms)" "DARM (ms)" "normalized";
  hr ();
  let time_ms f =
    let t0 = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. t0) *. 1000.
  in
  List.iter
    (fun kernel ->
      let block_size = List.nth kernel.Kernel.block_sizes 1 in
      let baseline_ms = ref 0. and darm_ms = ref 0. in
      (* both timings include IR construction (the frontend analogue) so
         the "normalized" column compares full device-code pipelines, as
         the paper does *)
      let cleanup f =
        ignore (Darm_transforms.Simplify_cfg.run f);
        ignore (Darm_transforms.Constfold.run f);
        ignore (Darm_transforms.Dce.run f)
      in
      for _ = 1 to reps do
        baseline_ms :=
          !baseline_ms
          +. time_ms (fun () ->
                 let inst =
                   kernel.Kernel.make ~seed:1 ~block_size
                     ~n:kernel.Kernel.default_n
                 in
                 cleanup inst.Kernel.func);
        darm_ms :=
          !darm_ms
          +. time_ms (fun () ->
                 let inst =
                   kernel.Kernel.make ~seed:1 ~block_size
                     ~n:kernel.Kernel.default_n
                 in
                 cleanup inst.Kernel.func;
                 ignore (Darm_core.Pass.run inst.Kernel.func))
      done;
      let b = !baseline_ms /. float_of_int reps in
      let d = !darm_ms /. float_of_int reps in
      pf "%-6s %12.3f %12.3f %12.4f\n" kernel.Kernel.tag b d
        (if b > 0. then d /. b else 0.))
    Registry.real_world;
  pf "(paper: LUD 1.57x and PCM 1.18x slower to compile; rest ~1.0x)\n"

(* ------------------------------------------------------------------ *)

(** Smoke mode: every registered kernel once — smallest workload, one
    block size, one seed — through the full transform + equivalence
    pipeline.  Fast enough for CI; returns whether everything checked
    out, plus the results (the bench harness feeds them into
    BENCH_darm.json). *)
let smoke ?jobs () : bool * E.result list =
  let kernels = Registry.synthetic @ Registry.real_world in
  let results =
    Parallel_sweep.map ?jobs
      (fun (kernel : Kernel.t) ->
        let n = min 256 kernel.Kernel.default_n in
        E.run ~n kernel ~block_size:(List.hd kernel.Kernel.block_sizes))
      kernels
  in
  pf "\n== Smoke: every kernel, smallest config, DARM vs baseline ==\n";
  pf "%-8s %10s %8s %8s %8s\n" "bench" "n" "bs" "melds" "speedup";
  hr ();
  List.iter2
    (fun (kernel : Kernel.t) r ->
      pf "%-8s %10d %8d %8d %7.2fx%s\n" r.E.tag
        (min 256 kernel.Kernel.default_n)
        r.E.block_size r.E.rewrites (E.speedup r)
        (if r.E.correct then "" else "  INCORRECT"))
    kernels results;
  (check_banner results, results)
