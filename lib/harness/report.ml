(** Per-meld divergence attribution — the [darm_opt report] pipeline.
    See report.mli for the attribution model and the exact-sum
    contract. *)

module Kernel = Darm_kernels.Kernel
module Metrics = Darm_sim.Metrics
module Pass = Darm_core.Pass
module J = Darm_obs.Json

let schema = "darm-report-v2"

type branch_join = {
  bj_id : string;
  bj_base : Metrics.branch_stat option;
  bj_opt : Metrics.branch_stat option;
  bj_meld : int option;
}

type meld_row = {
  mr_meld : Pass.meld_record;
  mr_claimed : string list;
  mr_base_divergences : int;
  mr_opt_divergences : int;
  mr_base_cycles : int;
  mr_opt_cycles : int;
  mr_base_lost : int;
  mr_opt_lost : int;
}

let meld_saved (r : meld_row) : int = r.mr_base_cycles - r.mr_opt_cycles

type mem_join = {
  mj_id : string;
  mj_base : Metrics.mem_site_stat option;
  mj_opt : Metrics.mem_site_stat option;
}

type t = {
  rp_kernel : string;
  rp_block_size : int;
  rp_seed : int;
  rp_n : int;
  rp_correct : bool;
  rp_rewrites : int;
  rp_pass_ms : float;
  rp_mem_model : string;  (** "flat" or "hier" *)
  rp_reconvergence : string;  (** "stack" or "its" *)
  rp_base : Metrics.t;
  rp_opt : Metrics.t;
  rp_melds : meld_row list;
  rp_branches : branch_join list;
  rp_mem_sites : mem_join list;  (** sorted by site id *)
}

let delta (t : t) : int = t.rp_base.Metrics.cycles - t.rp_opt.Metrics.cycles

let residual (t : t) : int =
  delta t - List.fold_left (fun a r -> a + meld_saved r) 0 t.rp_melds

let no_divergence (t : t) : bool =
  t.rp_base.Metrics.divergent_branches = 0 && t.rp_melds = []

(* memory attribution: per-site issue-cycle deltas sum to the global
   memory-cycle delta by construction (the simulator attributes every
   memory issue to a site), and the non-memory residual closes the
   second identity against the total delta *)

let mem_site_saved (mj : mem_join) : int =
  let c = Option.fold ~none:0 ~some:(fun s -> s.Metrics.ms_cycles) in
  c mj.mj_base - c mj.mj_opt

let mem_delta (t : t) : int =
  t.rp_base.Metrics.mem_cycles - t.rp_opt.Metrics.mem_cycles

let mem_residual (t : t) : int = delta t - mem_delta t

let no_memory (t : t) : bool = t.rp_mem_sites = []

(* ------------------------------------------------------------------ *)
(* Assembly: claim branches to melds (first application wins), join
   the two runs' per-branch counters. *)

let build ?(mem_model = "flat") ?(reconvergence = "stack") ~kernel
    ~block_size ~seed ~n ~correct
    ~rewrites ~pass_ms ~(base : Metrics.t) ~(opt : Metrics.t)
    ~(melds : Pass.meld_record list) () : t =
  let stat_of m id = Hashtbl.find_opt m.Metrics.branches id in
  let claimed_by : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let meld_rows =
    List.map
      (fun (m : Pass.meld_record) ->
        let claimed =
          List.filter
            (fun id ->
              if Hashtbl.mem claimed_by id then false
              else begin
                Hashtbl.replace claimed_by id m.Pass.m_index;
                true
              end)
            m.Pass.m_branches
        in
        let sum f =
          List.fold_left
            (fun (b, o) id ->
              let get m = Option.fold ~none:0 ~some:f (stat_of m id) in
              (b + get base, o + get opt))
            (0, 0) claimed
        in
        let bd, od = sum (fun s -> s.Metrics.br_divergences) in
        let bc, oc = sum (fun s -> s.Metrics.br_cycles) in
        let bl, ol = sum (fun s -> s.Metrics.br_lost_lane_cycles) in
        {
          mr_meld = m;
          mr_claimed = claimed;
          mr_base_divergences = bd;
          mr_opt_divergences = od;
          mr_base_cycles = bc;
          mr_opt_cycles = oc;
          mr_base_lost = bl;
          mr_opt_lost = ol;
        })
      melds
  in
  let ids = Hashtbl.create 16 in
  let note m =
    Hashtbl.iter (fun id _ -> Hashtbl.replace ids id ()) m.Metrics.branches
  in
  note base;
  note opt;
  let branches =
    Hashtbl.fold (fun id () acc -> id :: acc) ids []
    |> List.sort String.compare
    |> List.map (fun id ->
           {
             bj_id = id;
             bj_base = stat_of base id;
             bj_opt = stat_of opt id;
             bj_meld = Hashtbl.find_opt claimed_by id;
           })
  in
  let site_of m id = Hashtbl.find_opt m.Metrics.mem_sites id in
  let site_ids = Hashtbl.create 16 in
  let note_sites m =
    Hashtbl.iter
      (fun id _ -> Hashtbl.replace site_ids id ())
      m.Metrics.mem_sites
  in
  note_sites base;
  note_sites opt;
  let mem_sites =
    Hashtbl.fold (fun id () acc -> id :: acc) site_ids []
    |> List.sort String.compare
    |> List.map (fun id ->
           { mj_id = id; mj_base = site_of base id; mj_opt = site_of opt id })
  in
  {
    rp_kernel = kernel;
    rp_block_size = block_size;
    rp_seed = seed;
    rp_n = n;
    rp_correct = correct;
    rp_rewrites = rewrites;
    rp_pass_ms = pass_ms;
    rp_mem_model = mem_model;
    rp_reconvergence = reconvergence;
    rp_base = base;
    rp_opt = opt;
    rp_melds = meld_rows;
    rp_branches = branches;
    rp_mem_sites = mem_sites;
  }

let compute ?(config = Pass.default_config) ?(seed = 2022) ?n ?mem_model
    ?reconvergence (kernel : Kernel.t) ~(block_size : int) : t =
  let n = Option.value ~default:kernel.Kernel.default_n n in
  let stats_ref = ref None in
  (* custom transform (bypasses the result cache) so the pass's
     provenance records are captured, not just the meld count *)
  let transform =
    {
      Experiment.t_name = "DARM";
      t_apply =
        (fun f ->
          let st = Pass.run ~config f in
          stats_ref := Some st;
          st.Pass.melds_applied);
    }
  in
  let r =
    Experiment.run ~transform ~seed ~n ?mem_model ?reconvergence kernel
      ~block_size
  in
  let melds =
    match !stats_ref with Some st -> st.Pass.melds | None -> []
  in
  let mm_name =
    match mem_model with
    | None | Some Darm_sim.Simulator.Flat -> "flat"
    | Some (Darm_sim.Simulator.Hier _) -> "hier"
  in
  let rc_name =
    match reconvergence with
    | None | Some Darm_sim.Simulator.Stack -> "stack"
    | Some (Darm_sim.Simulator.Its _) -> "its"
  in
  build ~mem_model:mm_name ~reconvergence:rc_name ~kernel:r.Experiment.tag
    ~block_size ~seed ~n
    ~correct:r.Experiment.correct ~rewrites:r.Experiment.rewrites
    ~pass_ms:r.Experiment.t_ms ~base:r.Experiment.base
    ~opt:r.Experiment.opt ~melds ()

let compute_many ?jobs ?config ?seed ?n ?mem_model ?reconvergence
    (points : (Kernel.t * int) list) : t list =
  Parallel_sweep.map ?jobs
    (fun (k, bs) ->
      compute ?config ?seed ?n ?mem_model ?reconvergence k ~block_size:bs)
    points

(* ------------------------------------------------------------------ *)
(* Renderers.  All three consume only the report record, so they are
   deterministic wherever the report is. *)

let speedup_str (t : t) : string =
  if t.rp_opt.Metrics.cycles = 0 then "n/a"
  else
    Printf.sprintf "%.2fx"
      (float_of_int t.rp_base.Metrics.cycles
      /. float_of_int t.rp_opt.Metrics.cycles)

let pair_str (m : Pass.meld_record) : string =
  Printf.sprintf "%s ~ %s" m.Pass.m_st m.Pass.m_sf

let header_lines (t : t) : string list =
  [
    Printf.sprintf "kernel %s  block_size %d  (seed %d, n %d, %s \
                    reconvergence)"
      t.rp_kernel t.rp_block_size t.rp_seed t.rp_n t.rp_reconvergence;
    Printf.sprintf
      "base %d cycles -> opt %d cycles  (delta %d, speedup %s)  %s"
      t.rp_base.Metrics.cycles t.rp_opt.Metrics.cycles (delta t)
      (speedup_str t)
      (if t.rp_correct then "correct" else "INCORRECT");
  ]

let to_text (t : t) : string =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  List.iter (fun s -> line "%s" s) (header_lines t);
  if no_divergence t then
    line
      "no divergence: the baseline never split a warp and no meld was \
       applied; nothing to attribute."
  else begin
    line "per-meld attribution (divergent-arm issue cycles, base -> opt):";
    line "  %3s  %-14s %-24s %8s %9s  %16s %10s" "#" "region" "melded pair"
      "FP_S" "branches" "div cycles" "saved";
    List.iter
      (fun r ->
        line "  %3d  %-14s %-24s %8.2f %9d  %7d -> %-6d %10d"
          r.mr_meld.Pass.m_index r.mr_meld.Pass.m_region
          (pair_str r.mr_meld) r.mr_meld.Pass.m_fp_s
          (List.length r.mr_claimed) r.mr_base_cycles r.mr_opt_cycles
          (meld_saved r))
      t.rp_melds;
    let attributed =
      List.fold_left (fun a r -> a + meld_saved r) 0 t.rp_melds
    in
    line "  residual (melded-path execution, reconvergence, secondary): %d"
      (residual t);
    line "  sum: %d attributed + %d residual = %d = total delta" attributed
      (residual t) (delta t);
    let unclaimed =
      List.filter
        (fun bj -> bj.bj_meld = None && bj.bj_base <> None)
        t.rp_branches
    in
    if unclaimed <> [] then begin
      line "unmelded divergent branches (baseline divergences / cycles):";
      List.iter
        (fun bj ->
          match bj.bj_base with
          | None -> ()
          | Some s ->
              line "  %-24s %6d / %d" bj.bj_id s.Metrics.br_divergences
                s.Metrics.br_cycles)
        unclaimed
    end
  end;
  line "memory (%s model): base %d mem cycles -> opt %d  (delta %d)"
    t.rp_mem_model t.rp_base.Metrics.mem_cycles t.rp_opt.Metrics.mem_cycles
    (mem_delta t);
  if no_memory t then
    line "  no memory traffic: neither run issued a load or store."
  else begin
    line
      "per-site memory attribution (base -> opt; txn/acc = transactions \
       per access):";
    line "  %-18s %11s %13s %11s %9s %9s %16s %8s" "site" "accesses"
      "txn/acc" "L1 hit" "conf cyc" "stall cyc" "cycles" "saved";
    let g f = Option.fold ~none:0 ~some:f in
    let coal = Option.fold ~none:0. ~some:Metrics.site_coalescing in
    let hitp o =
      match o with
      | None -> "-"
      | Some s ->
          let acc = s.Metrics.ms_accesses in
          if acc = 0 then "-"
          else
            Printf.sprintf "%.0f%%"
              (100. *. float_of_int s.Metrics.ms_l1_hits /. float_of_int acc)
    in
    List.iter
      (fun mj ->
        let b = mj.mj_base and o = mj.mj_opt in
        line "  %-18s %5d>%-5d %6.2f>%-6.2f %5s>%-5s %4d>%-4d %4d>%-4d \
              %7d>%-8d %8d"
          mj.mj_id
          (g (fun s -> s.Metrics.ms_accesses) b)
          (g (fun s -> s.Metrics.ms_accesses) o)
          (coal b) (coal o) (hitp b) (hitp o)
          (g (fun s -> s.Metrics.ms_bank_conflict_cycles) b)
          (g (fun s -> s.Metrics.ms_bank_conflict_cycles) o)
          (g (fun s -> s.Metrics.ms_stall_cycles) b)
          (g (fun s -> s.Metrics.ms_stall_cycles) o)
          (g (fun s -> s.Metrics.ms_cycles) b)
          (g (fun s -> s.Metrics.ms_cycles) o)
          (mem_site_saved mj))
      t.rp_mem_sites;
    let attributed =
      List.fold_left (fun a mj -> a + mem_site_saved mj) 0 t.rp_mem_sites
    in
    line "  sum: %d site-attributed + %d non-memory residual = %d = total \
          delta"
      attributed (mem_residual t) (delta t)
  end;
  Buffer.contents b

let to_markdown (t : t) : string =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "### %s (block size %d)" t.rp_kernel t.rp_block_size;
  line "";
  line "base %d cycles, opt %d cycles, delta %d, speedup %s, %s"
    t.rp_base.Metrics.cycles t.rp_opt.Metrics.cycles (delta t)
    (speedup_str t)
    (if t.rp_correct then "correct" else "**INCORRECT**");
  line "";
  if no_divergence t then
    line "_no divergence: nothing to attribute._"
  else begin
    line "| # | region | melded pair | FP_S | branches | base cycles | \
          opt cycles | saved |";
    line "|---|--------|-------------|------|----------|-------------|\
          ------------|-------|";
    List.iter
      (fun r ->
        line "| %d | `%s` | `%s` | %.2f | %d | %d | %d | %d |"
          r.mr_meld.Pass.m_index r.mr_meld.Pass.m_region
          (pair_str r.mr_meld) r.mr_meld.Pass.m_fp_s
          (List.length r.mr_claimed) r.mr_base_cycles r.mr_opt_cycles
          (meld_saved r))
      t.rp_melds;
    line "| | residual | | | | | | %d |" (residual t);
    line "| | **total** | | | | | | **%d** |" (delta t)
  end;
  if not (no_memory t) then begin
    line "";
    line "memory (%s model), base -> opt:" t.rp_mem_model;
    line "";
    line "| site | accesses | txn/access | L1 hit %% | conflict cyc | \
          stall cyc | cycles | saved |";
    line "|------|----------|------------|----------|--------------|\
          -----------|--------|-------|";
    let g f = Option.fold ~none:0 ~some:f in
    let coal = Option.fold ~none:0. ~some:Metrics.site_coalescing in
    let hitp = function
      | None -> "-"
      | Some s ->
          if s.Metrics.ms_accesses = 0 then "-"
          else
            Printf.sprintf "%.0f"
              (100.
              *. float_of_int s.Metrics.ms_l1_hits
              /. float_of_int s.Metrics.ms_accesses)
    in
    List.iter
      (fun mj ->
        let b = mj.mj_base and o = mj.mj_opt in
        line "| `%s` | %d → %d | %.2f → %.2f | %s → %s | %d → %d | \
              %d → %d | %d → %d | %d |"
          mj.mj_id
          (g (fun s -> s.Metrics.ms_accesses) b)
          (g (fun s -> s.Metrics.ms_accesses) o)
          (coal b) (coal o) (hitp b) (hitp o)
          (g (fun s -> s.Metrics.ms_bank_conflict_cycles) b)
          (g (fun s -> s.Metrics.ms_bank_conflict_cycles) o)
          (g (fun s -> s.Metrics.ms_stall_cycles) b)
          (g (fun s -> s.Metrics.ms_stall_cycles) o)
          (g (fun s -> s.Metrics.ms_cycles) b)
          (g (fun s -> s.Metrics.ms_cycles) o)
          (mem_site_saved mj))
      t.rp_mem_sites;
    line "| | | | | | non-memory residual | | %d |" (mem_residual t);
    line "| | | | | | **total** | | **%d** |" (delta t)
  end;
  Buffer.contents b

let json_branch_stat (s : Metrics.branch_stat) : J.t =
  J.Obj
    [
      ("divergences", J.Int s.Metrics.br_divergences);
      ("divergent_cycles", J.Int s.Metrics.br_cycles);
      ("lost_lane_cycles", J.Int s.Metrics.br_lost_lane_cycles);
      ("reconvergences", J.Int s.Metrics.br_reconvergences);
    ]

let json_site_stat (s : Metrics.mem_site_stat) : J.t =
  J.Obj
    [
      ("issues", J.Int s.Metrics.ms_issues);
      ("accesses", J.Int s.Metrics.ms_accesses);
      ("transactions", J.Int s.Metrics.ms_transactions);
      ("coalescing", J.Float (Metrics.site_coalescing s));
      ("l1_hits", J.Int s.Metrics.ms_l1_hits);
      ("l1_misses", J.Int s.Metrics.ms_l1_misses);
      ("bank_conflicts", J.Int s.Metrics.ms_bank_conflicts);
      ("bank_conflict_cycles", J.Int s.Metrics.ms_bank_conflict_cycles);
      ("stall_cycles", J.Int s.Metrics.ms_stall_cycles);
      ("cycles", J.Int s.Metrics.ms_cycles);
    ]

let json_body (t : t) : (string * J.t) list =
  [
    ("kernel", J.Str t.rp_kernel);
    ("block_size", J.Int t.rp_block_size);
    ("seed", J.Int t.rp_seed);
    ("n", J.Int t.rp_n);
    ("correct", J.Bool t.rp_correct);
    ("rewrites", J.Int t.rp_rewrites);
    ("base_cycles", J.Int t.rp_base.Metrics.cycles);
    ("opt_cycles", J.Int t.rp_opt.Metrics.cycles);
    ("cycles_delta", J.Int (delta t));
    ("no_divergence", J.Bool (no_divergence t));
    ( "melds",
      J.List
        (List.map
           (fun r ->
             J.Obj
               [
                 ("index", J.Int r.mr_meld.Pass.m_index);
                 ("region", J.Str r.mr_meld.Pass.m_region);
                 ("st", J.Str r.mr_meld.Pass.m_st);
                 ("sf", J.Str r.mr_meld.Pass.m_sf);
                 ("fp_s", J.Float r.mr_meld.Pass.m_fp_s);
                 ( "branches",
                   J.List
                     (List.map (fun s -> J.Str s) r.mr_meld.Pass.m_branches)
                 );
                 ( "claimed",
                   J.List (List.map (fun s -> J.Str s) r.mr_claimed) );
                 ("base_divergences", J.Int r.mr_base_divergences);
                 ("opt_divergences", J.Int r.mr_opt_divergences);
                 ("base_divergent_cycles", J.Int r.mr_base_cycles);
                 ("opt_divergent_cycles", J.Int r.mr_opt_cycles);
                 ("base_lost_lane_cycles", J.Int r.mr_base_lost);
                 ("opt_lost_lane_cycles", J.Int r.mr_opt_lost);
                 ("cycles_saved", J.Int (meld_saved r));
               ])
           t.rp_melds) );
    ("residual_cycles", J.Int (residual t));
    ("mem_model", J.Str t.rp_mem_model);
    ("reconvergence", J.Str t.rp_reconvergence);
    ("base_mem_cycles", J.Int t.rp_base.Metrics.mem_cycles);
    ("opt_mem_cycles", J.Int t.rp_opt.Metrics.mem_cycles);
    ("mem_cycles_delta", J.Int (mem_delta t));
    ("mem_residual_cycles", J.Int (mem_residual t));
    ( "mem_sites",
      J.List
        (List.map
           (fun mj ->
             J.Obj
               ([ ("id", J.Str mj.mj_id) ]
               @ (match mj.mj_base with
                 | None -> []
                 | Some s -> [ ("base", json_site_stat s) ])
               @
               match mj.mj_opt with
               | None -> []
               | Some s -> [ ("opt", json_site_stat s) ]))
           t.rp_mem_sites) );
    ( "branches",
      J.List
        (List.map
           (fun bj ->
             J.Obj
               ([ ("id", J.Str bj.bj_id) ]
               @ (match bj.bj_base with
                 | None -> []
                 | Some s -> [ ("base", json_branch_stat s) ])
               @ (match bj.bj_opt with
                 | None -> []
                 | Some s -> [ ("opt", json_branch_stat s) ])
               @
               match bj.bj_meld with
               | None -> []
               | Some i -> [ ("meld", J.Int i) ]))
           t.rp_branches) );
  ]

let to_json (t : t) : J.t = J.Obj (("schema", J.Str schema) :: json_body t)

let many_to_json (ts : t list) : J.t =
  J.Obj
    [
      ("schema", J.Str schema);
      ("reports", J.List (List.map (fun t -> J.Obj (json_body t)) ts));
    ]

let fill_metrics (reg : Darm_obs.Metrics_registry.t) (t : t) : unit =
  let ws = Experiment.sim_config.Darm_sim.Simulator.warp_size in
  let fill run m =
    Metrics.fill_registry reg
      ~labels:[ ("kernel", t.rp_kernel); ("run", run) ]
      m ~warp_size:ws
  in
  fill "base" t.rp_base;
  fill "opt" t.rp_opt
