(** Content-addressed on-disk result cache — the persistence layer of
    the fleet-scale batch driver ([darm_opt batch], doc/fleet.md).

    A cache maps a {e key} — the hex digest of the printed IR, the pass
    configuration signature and the payload schema version — to one
    JSON payload stored as a file.  Because the key covers everything
    the result depends on, a hit can be replayed verbatim: {!find}
    returns the exact stored bytes, so a warm batch run emits output
    byte-identical to the cold run that populated the cache.

    {b Layout.}  Entries live under [dir/<k0k1>/<key>.json] where
    [k0k1] is the first two hex characters of the key — 256 shard
    directories, so even a 100k-kernel corpus keeps directory listings
    short.  Nothing else is stored: the cache has no index to corrupt,
    and eviction is [rm -rf] of the directory (or {!clear}).

    {b Robustness.}  A cache must never turn a crash into a wrong
    answer or a fatal error: {!find} treats a missing, unreadable,
    truncated, unparsable or wrong-schema entry as a miss (returning
    [None], so the caller recomputes), and {!store} writes atomically
    (temp file + rename) so readers — including concurrent batch
    processes sharing the directory — only ever observe complete
    entries. *)

type t

(** ["darm-batchres-v1"] — the payload schema of the batch driver;
    {!create}'s default [schema]. *)
val default_schema : string

(** [".darm-cache"]. *)
val default_dir : string

(** Open (and lazily create) a cache rooted at [dir].  [schema] is the
    value the ["schema"] field of every stored payload must carry;
    entries that disagree are treated as misses, so bumping the payload
    schema version invalidates the whole cache without deleting it. *)
val create : ?dir:string -> ?schema:string -> unit -> t

val dir : t -> string
val schema : t -> string

(** [key t parts] — hex digest of [parts] (joined unambiguously) and
    the cache schema version.  Deterministic across processes. *)
val key : t -> string list -> string

(** Path the entry for [key] lives at (whether or not it exists). *)
val entry_path : t -> key:string -> string

(** The stored payload bytes, or [None] when the entry is missing or
    fails validation (unreadable, truncated mid-read by a concurrent
    writer, not JSON, or its ["schema"] field differs from the
    cache's).  An entry whose bytes fail validation is also evicted
    (best-effort [Sys.remove]) so a poison file is recomputed once,
    not re-parsed on every lookup.  Never raises. *)
val find : t -> key:string -> string option

(** Atomically store a payload (newline-terminated JSON line).  Raises
    [Invalid_argument] if [payload] does not parse as JSON carrying the
    cache's schema — a malformed payload must fail the writer, not
    every future reader. *)
val store : t -> key:string -> string -> unit

(** Delete every entry; returns how many were removed. *)
val clear : t -> int

(** {2 Telemetry}

    Lifetime counters of one handle (atomics — pool domains share the
    handle): a {!find} that returns bytes is a hit; any {!find} that
    returns [None] is a miss; a miss that also removed a poison file
    additionally counts as a poison eviction; {!clear} counts its
    removals as evictions.  The counters observe this handle only, not
    the directory — two processes sharing a cache dir each see their
    own traffic. *)

type stats = {
  st_hits : int;
  st_misses : int;
  st_evictions : int;  (** removed by {!clear} *)
  st_poison_evictions : int;  (** invalid entries evicted by {!find} *)
}

val stats : t -> stats

(** Export the handle's counters into a registry as the
    [darm_cache_{hits,misses,evictions,poison_evictions}_total]
    counter families.  Increments by the current totals — call once
    per registry (the batch driver instead delta-syncs its live
    registry on the snapshot cadence). *)
val fill_metrics : Darm_obs.Metrics_registry.t -> t -> unit
