(** Ablation studies for the design choices called out in DESIGN.md:

    - unpredication on/off (paper §IV-E);
    - melding-profitability threshold sweep (the [threshold] of
      Algorithm 1);
    - select-latency sensitivity of the FP_I scoring;
    - re-predication by later passes (if-conversion after melding,
      the §VI-C bitonic effect).

    Each study computes its experiment points on the {!Parallel_sweep}
    domain pool and prints afterwards, and returns the results it
    consumed so {!run} can gate the harness exit code on them. *)

module Kernel = Darm_kernels.Kernel
module Pass = Darm_core.Pass
module Latency = Darm_analysis.Latency
module E = Experiment

let pf = Printf.printf

let run_with (config : Pass.config) (kernel : Kernel.t) ~block_size :
    E.result =
  E.run ~transform:(E.darm_transform ~config ()) kernel ~block_size

let unpredication_ablation ?jobs () : E.result list =
  let kernels =
    [ Darm_kernels.Sb.sb1_r; Darm_kernels.Sb.sb3_r; Darm_kernels.Bitonic.kernel ]
  in
  let rows =
    E.run_many ?jobs
      (List.concat_map
         (fun (kernel : Kernel.t) ->
           let block_size = List.hd kernel.Kernel.block_sizes in
           [
             (fun () ->
               run_with { Pass.default_config with unpredicate = true } kernel
                 ~block_size);
             (fun () ->
               run_with { Pass.default_config with unpredicate = false } kernel
                 ~block_size);
           ])
         kernels)
  in
  pf "\n-- ablation: unpredication on/off --\n";
  pf "%-8s %14s %14s\n" "bench" "unpred=on" "unpred=off";
  List.iteri
    (fun i (kernel : Kernel.t) ->
      let on = List.nth rows (2 * i) and off = List.nth rows ((2 * i) + 1) in
      pf "%-8s %13.2fx %13.2fx%s\n" kernel.Kernel.tag (E.speedup on)
        (E.speedup off)
        (if on.E.correct && off.E.correct then "" else "  (INCORRECT)"))
    kernels;
  rows

let threshold_ablation ?jobs () : E.result list =
  let kernel = Darm_kernels.Sb.sb3 in
  let thresholds = [ 0.05; 0.1; 0.2; 0.3; 0.45; 0.6 ] in
  let rows =
    E.run_many ?jobs
      (List.map
         (fun threshold () ->
           run_with { Pass.default_config with threshold } kernel
             ~block_size:64)
         thresholds)
  in
  pf "\n-- ablation: melding profitability threshold --\n";
  pf "%-12s %10s %10s\n" "threshold" "melds" "speedup";
  List.iter2
    (fun threshold r ->
      pf "%-12.2f %10d %9.2fx\n" threshold r.E.rewrites (E.speedup r))
    thresholds rows;
  rows

let select_latency_ablation ?jobs () : E.result list =
  let kernel = Darm_kernels.Sb.sb1_r in
  let selects = [ 0; 1; 4; 16 ] in
  let rows =
    E.run_many ?jobs
      (List.map
         (fun select () ->
           let config =
             {
               Pass.default_config with
               latency = { Latency.default with select };
             }
           in
           run_with config kernel ~block_size:64)
         selects)
  in
  pf "\n-- ablation: select latency in FP_I --\n";
  pf "%-12s %10s %10s\n" "l_sel" "melds" "speedup";
  List.iter2
    (fun select r ->
      pf "%-12d %10d %9.2fx\n" select r.E.rewrites (E.speedup r))
    selects rows;
  rows

let pairing_ablation ?jobs () : E.result list =
  let kernels =
    [
      Darm_kernels.Sb.sb3;
      Darm_kernels.Sb.sb3_r;
      Darm_kernels.Bitonic.kernel;
      Darm_kernels.Pcm.kernel;
    ]
  in
  let rows =
    E.run_many ?jobs
      (List.concat_map
         (fun (kernel : Kernel.t) ->
           let block_size = List.hd kernel.Kernel.block_sizes in
           [
             (fun () -> run_with Pass.default_config kernel ~block_size);
             (fun () ->
               run_with
                 { Pass.default_config with pairing = Pass.Alignment }
                 kernel ~block_size);
           ])
         kernels)
  in
  pf "\n-- ablation: greedy vs alignment subgraph pairing --\n";
  pf "%-8s %14s %14s\n" "bench" "greedy" "alignment";
  List.iteri
    (fun i (kernel : Kernel.t) ->
      let g = List.nth rows (2 * i) and a = List.nth rows ((2 * i) + 1) in
      pf "%-8s %13.2fx %13.2fx%s\n" kernel.Kernel.tag (E.speedup g)
        (E.speedup a)
        (if g.E.correct && a.E.correct then "" else "  (INCORRECT)"))
    kernels;
  rows

let repredication_ablation ?jobs () : E.result list =
  let kernel = Darm_kernels.Bitonic.kernel in
  let block_size = 128 in
  let rows =
    E.run_many ?jobs
      [
        (fun () -> run_with Pass.default_config kernel ~block_size);
        (fun () ->
          run_with { Pass.default_config with if_convert_after = true } kernel
            ~block_size);
      ]
  in
  let plain = List.nth rows 0 and repred = List.nth rows 1 in
  pf "\n-- ablation: re-predication by later passes (paper SVI-C) --\n";
  pf "DARM:                %5.2fx\n" (E.speedup plain);
  pf "DARM + if-convert:   %5.2fx%s\n" (E.speedup repred)
    (if repred.E.correct then "" else "  (INCORRECT)");
  rows

let memory_latency_ablation ?jobs () : E.result list =
  let shared_latencies =
    [ Latency.default.Latency.shared_mem; 8; 1 ]
  in
  let rows =
    E.run_many ?jobs
      (List.map
         (fun shared_mem () ->
           let sim =
             {
               Darm_sim.Simulator.default_config with
               latency = { Latency.default with shared_mem };
             }
           in
           E.run ~sim Darm_kernels.Sb.sb1 ~block_size:64)
         shared_latencies)
  in
  pf "\n-- ablation: why melding shared memory wins (paper SVI-D) --\n";
  pf "SB1's melded region is shared-memory-heavy; if LDS were as cheap\n";
  pf "as the ALU, melding would save far less:\n";
  pf "%-26s %10s\n" "latency model" "speedup";
  List.iter2
    (fun label r -> pf "%-26s %9.2fx\n" label (E.speedup r))
    [ "LDS = default (24 cycles)"; "LDS = 8 cycles"; "LDS = 1 cycle (ALU-cheap)" ]
    rows;
  rows

let multi_cu_ablation ?jobs () : E.result list =
  let kernels =
    [ Darm_kernels.Sb.sb1; Darm_kernels.Bitonic.kernel; Darm_kernels.Pcm.kernel ]
  in
  let rows =
    E.run_many ?jobs
      (List.map
         (fun (kernel : Kernel.t) () ->
           E.run kernel ~block_size:(List.hd kernel.Kernel.block_sizes))
         kernels)
  in
  pf "\n-- ablation: does the speedup survive multi-CU scheduling? --\n";
  pf "%-8s %10s %10s %10s\n" "bench" "1 CU" "8 CUs" "64 CUs";
  List.iter2
    (fun (kernel : Kernel.t) r ->
      let speed cus =
        float_of_int (Darm_sim.Metrics.makespan r.E.base ~num_cus:cus)
        /. float_of_int (Darm_sim.Metrics.makespan r.E.opt ~num_cus:cus)
      in
      pf "%-8s %9.2fx %9.2fx %9.2fx\n" kernel.Kernel.tag (speed 1) (speed 8)
        (speed 64))
    kernels rows;
  rows

let warp_size_ablation ?jobs () : E.result list =
  let block_sizes = [ 16; 32; 64; 128; 256 ] in
  let rows =
    E.run_many ?jobs
      (List.concat_map
         (fun block_size ->
           List.map
             (fun warp_size () ->
               let sim =
                 { Darm_sim.Simulator.default_config with warp_size }
               in
               E.run ~sim Darm_kernels.Lud.kernel ~block_size)
             [ 32; 64 ])
         block_sizes)
  in
  pf "\n-- ablation: warp width (wave32 vs wave64) --\n";
  pf "LUD's branch splits the block in half, so it is dynamically\n";
  pf "divergent only when half the block is narrower than the warp:\n";
  pf "%-10s %12s %12s\n" "block size" "wave32" "wave64";
  List.iteri
    (fun i block_size ->
      let w32 = List.nth rows (2 * i) and w64 = List.nth rows ((2 * i) + 1) in
      pf "%-10d %11.2fx %11.2fx\n" block_size (E.speedup w32) (E.speedup w64))
    block_sizes;
  rows

(** Run every ablation; [true] = every underlying experiment passed its
    equivalence check. *)
let run ?jobs () : bool =
  pf "\n== Ablation studies ==\n";
  let all =
    List.concat
      [
        unpredication_ablation ?jobs ();
        threshold_ablation ?jobs ();
        pairing_ablation ?jobs ();
        select_latency_ablation ?jobs ();
        warp_size_ablation ?jobs ();
        memory_latency_ablation ?jobs ();
        multi_cu_ablation ?jobs ();
        repredication_ablation ?jobs ();
      ]
  in
  E.all_correct all
